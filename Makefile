GO ?= go

.PHONY: all build vet test race bench

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One testing.B benchmark per paper figure lives in bench_test.go;
# store microbenchmarks live under the internal packages.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
