GO ?= go

.PHONY: all build vet test race fuzz bench bench-core bench-delta gray

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The stress battery interleaves differently at different GOMAXPROCS;
# CI runs this at 2 and 8.
race:
	$(GO) test -race ./...

# Short smoke run of every fuzz target (CI cadence); raise FUZZTIME for a
# real hunt.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/binio/ -fuzz 'FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/binio/ -fuzz 'FuzzDecodeRecordFrame$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -fuzz FuzzParseManifest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -fuzz FuzzParseDeltaManifest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/spe/ -fuzz FuzzDecodeJobRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/spe/ -fuzz FuzzDecodeMigrationRecord -fuzztime $(FUZZTIME)

# Gray-failure battery: stall injection, deadline-bounded I/O, progress
# watchdogs, and the manager hung-fsync failover + latency-driven
# rebalancing legs, under -race. Raise GRAY_ITERS to deepen the
# randomized failover battery (CI's nightly schedule runs 20).
GRAY_ITERS ?=
gray:
	$(GO) test -race -count=1 ./internal/faultfs/ -run 'TestStall' -timeout 5m
	$(GO) test -race -count=1 ./internal/logfile/ -run 'TestDeadline' -timeout 5m
	$(GO) test -race -count=1 ./internal/core/ -run 'TestPureSlowDiskDegradesOnLatency|TestHungSyncDegradesWithStallReason' -timeout 10m
	$(GO) test -race -count=1 ./internal/spe/ -run 'TestJobProgressWatchdog' -timeout 10m
	FLOWKV_GRAY_ITERS=$(GRAY_ITERS) $(GO) test -race -count=1 ./internal/jobmanager/ -run 'TestGrayFailure|TestAutoRebalance|TestRebalanceTick|TestPoolAcquire|TestPoolAwaitStatus' -timeout 20m

# One testing.B benchmark per paper figure lives in bench_test.go;
# store microbenchmarks live under the internal packages.
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Concurrent composite-store benchmark: 1 vs 8 workers on one core.Store,
# results recorded in BENCH_core.json.
bench-core:
	$(GO) run ./cmd/storebench -parallel 8 -syncEvery 250 -json BENCH_core.json

# Incremental-checkpoint benchmark: commit bytes and p99 commit latency
# as state grows 100x, full vs incremental vs incremental+group-commit,
# merged into BENCH_core.json under the "delta" key.
bench-delta:
	$(GO) run ./cmd/storebench -delta -json BENCH_core.json
