// Package flowkv_test holds the figure-level benchmarks: one testing.B
// benchmark per table/figure of the paper's evaluation (§6), built on the
// same harness that cmd/flowbench uses. Each benchmark iteration executes
// a complete scaled query run and reports events/sec (plus figure-specific
// metrics such as prefetch hit ratio), so `go test -bench=.` regenerates
// the comparisons and EXPERIMENTS.md records the paper-vs-measured shapes.
//
// Full-size runs (the numbers recorded in EXPERIMENTS.md) come from
// `go run ./cmd/flowbench -all`; the benchmarks here default to a smaller
// per-iteration dataset so the full suite stays minutes, not hours.
package flowkv_test

import (
	"fmt"
	"testing"

	"flowkv/internal/harness"
	"flowkv/internal/metrics"
	"flowkv/internal/nexmark"
	"flowkv/internal/statebackend"
)

const benchEvents = 20_000

func benchScale(b *testing.B) harness.Scale {
	b.Helper()
	sc := harness.QuickScale(b.TempDir())
	sc.Events = benchEvents
	return sc
}

func runOnce(b *testing.B, sc harness.Scale, query string, kind statebackend.Kind,
	opts harness.Options, events []nexmark.Event) harness.RunOutcome {
	b.Helper()
	out := harness.RunQuery(sc, query, kind, opts, events)
	if out.Failed {
		b.Fatalf("%s on %s failed: %s", query, kind, out.FailReason)
	}
	return out
}

// BenchmarkFig04Breakdown reproduces Figure 4: execution time and store
// share of the baseline stores on the pattern-representative queries.
func BenchmarkFig04Breakdown(b *testing.B) {
	events := harness.GenerateEvents(benchEvents)
	for _, q := range []string{"Q7", "Q11-Median", "Q11"} {
		for _, kind := range []statebackend.Kind{statebackend.KindRocksDB, statebackend.KindFaster} {
			b.Run(fmt.Sprintf("%s/%s", q, kind), func(b *testing.B) {
				sc := benchScale(b)
				var storeFrac float64
				for i := 0; i < b.N; i++ {
					opts := harness.ScaledStoreOptions()
					opts.WindowMs = 5_000
					out := runOnce(b, sc, q, kind, opts, events)
					storeFrac = float64(out.Breakdown.StoreTotal()) / float64(out.Elapsed)
					b.ReportMetric(out.ThroughputTPS, "events/s")
				}
				b.ReportMetric(storeFrac*100, "store-cpu-%")
			})
		}
	}
}

// BenchmarkFig08Throughput reproduces Figure 8: throughput of every query
// on every store (single window size here; the full 3-size sweep is
// `flowbench -fig 8`).
func BenchmarkFig08Throughput(b *testing.B) {
	events := harness.GenerateEvents(benchEvents)
	for _, q := range []string{"Q5", "Q5-Append", "Q7", "Q7-Session", "Q8", "Q11", "Q11-Median", "Q12"} {
		for _, kind := range statebackend.Kinds() {
			b.Run(fmt.Sprintf("%s/%s", q, kind), func(b *testing.B) {
				sc := benchScale(b)
				for i := 0; i < b.N; i++ {
					opts := harness.ScaledStoreOptions()
					opts.WindowMs = 5_000
					out := harness.RunQuery(sc, q, kind, opts, events)
					if out.Failed {
						b.Skipf("%s on %s: %s (expected for inmem at large state)", q, kind, out.FailReason)
					}
					b.ReportMetric(out.ThroughputTPS, "events/s")
				}
			})
		}
	}
}

// BenchmarkFig09Latency reproduces Figure 9: P95 latency at a fixed tuple
// rate.
func BenchmarkFig09Latency(b *testing.B) {
	const rate = 10_000
	for _, q := range []string{"Q7", "Q11-Median", "Q11"} {
		for _, kind := range []statebackend.Kind{statebackend.KindFlowKV, statebackend.KindRocksDB} {
			b.Run(fmt.Sprintf("%s/%s", q, kind), func(b *testing.B) {
				sc := benchScale(b)
				events := harness.TruncateEvents(harness.GenerateEvents(5_000), 5_000)
				for i := 0; i < b.N; i++ {
					opts := harness.ScaledStoreOptions()
					opts.WindowMs = 5_000
					opts.RateEPS = rate
					out := runOnce(b, sc, q, kind, opts, events)
					b.ReportMetric(float64(out.P95.Microseconds()), "p95-µs")
					b.ReportMetric(float64(out.P50.Microseconds()), "p50-µs")
				}
			})
		}
	}
}

// BenchmarkFig10CPUBreakdown reproduces Figure 10: store CPU time split
// into write / read+delete / compaction.
func BenchmarkFig10CPUBreakdown(b *testing.B) {
	events := harness.GenerateEvents(benchEvents)
	for _, q := range []string{"Q7", "Q11-Median", "Q11"} {
		for _, kind := range []statebackend.Kind{statebackend.KindFlowKV, statebackend.KindRocksDB, statebackend.KindFaster} {
			b.Run(fmt.Sprintf("%s/%s", q, kind), func(b *testing.B) {
				sc := benchScale(b)
				for i := 0; i < b.N; i++ {
					opts := harness.ScaledStoreOptions()
					opts.WindowMs = 5_000
					out := runOnce(b, sc, q, kind, opts, events)
					b.ReportMetric(out.Breakdown.Total(metrics.OpWrite).Seconds()*1000, "write-ms")
					b.ReportMetric(out.Breakdown.Total(metrics.OpRead).Seconds()*1000, "read-ms")
					b.ReportMetric(out.Breakdown.Total(metrics.OpCompact).Seconds()*1000, "compact-ms")
				}
			})
		}
	}
}

// BenchmarkFig11ReadBatchRatio reproduces Figure 11: throughput and
// prefetch hit ratio across read-batch ratios.
func BenchmarkFig11ReadBatchRatio(b *testing.B) {
	events := harness.GenerateEvents(benchEvents)
	for _, q := range []string{"Q11-Median", "Q7-Session"} {
		for _, ratio := range harness.Fig11Ratios() {
			b.Run(fmt.Sprintf("%s/ratio=%v", q, ratio), func(b *testing.B) {
				sc := benchScale(b)
				for i := 0; i < b.N; i++ {
					opts := harness.ScaledStoreOptions()
					opts.WindowMs = 5_000
					opts.FlowKV.WriteBufferBytes = 64 << 10
					if ratio == 0 {
						opts.FlowKV.ReadBatchRatio = -1
					} else {
						opts.FlowKV.ReadBatchRatio = ratio
					}
					out := runOnce(b, sc, q, statebackend.KindFlowKV, opts, events)
					b.ReportMetric(out.ThroughputTPS, "events/s")
					b.ReportMetric(out.FlowKV.HitRatio(), "hit-ratio")
				}
			})
		}
	}
}

// BenchmarkFig12MSA reproduces Figure 12: throughput across MSA
// (compaction threshold) settings.
func BenchmarkFig12MSA(b *testing.B) {
	events := harness.GenerateEvents(benchEvents)
	for _, q := range []string{"Q11-Median", "Q7-Session"} {
		for _, msa := range harness.Fig12MSAs() {
			b.Run(fmt.Sprintf("%s/msa=%v", q, msa), func(b *testing.B) {
				sc := benchScale(b)
				for i := 0; i < b.N; i++ {
					opts := harness.ScaledStoreOptions()
					opts.WindowMs = 5_000
					opts.FlowKV.WriteBufferBytes = 64 << 10
					opts.FlowKV.MaxSpaceAmplification = msa
					out := runOnce(b, sc, q, statebackend.KindFlowKV, opts, events)
					b.ReportMetric(out.ThroughputTPS, "events/s")
					b.ReportMetric(float64(out.FlowKV.Compactions), "compactions")
				}
			})
		}
	}
}

// BenchmarkFig13Scalability reproduces Figure 13: Q11-Median throughput
// over share-nothing worker counts.
func BenchmarkFig13Scalability(b *testing.B) {
	events := harness.GenerateEvents(benchEvents)
	for _, workers := range harness.Fig13Workers() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sc := benchScale(b)
			sc.Parallelism = workers
			for i := 0; i < b.N; i++ {
				opts := harness.ScaledStoreOptions()
				opts.WindowMs = 5_000
				out := runOnce(b, sc, "Q11-Median", statebackend.KindFlowKV, opts, events)
				b.ReportMetric(out.ThroughputTPS, "events/s")
			}
		})
	}
}

// BenchmarkStoresAsymmetry sanity-checks the structural asymmetries the
// paper's argument rests on, at figure scale: the hash log beats the LSM
// on RMW (Q11), the LSM beats the hash log on appends (Q7), and FlowKV
// beats both on both.
func BenchmarkStoresAsymmetry(b *testing.B) {
	events := harness.GenerateEvents(benchEvents)
	cases := []struct {
		query string
		kind  statebackend.Kind
	}{
		{"Q11", statebackend.KindFaster},
		{"Q11", statebackend.KindRocksDB},
		{"Q11", statebackend.KindFlowKV},
		{"Q7", statebackend.KindRocksDB},
		{"Q7", statebackend.KindFaster},
		{"Q7", statebackend.KindFlowKV},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s/%s", c.query, c.kind), func(b *testing.B) {
			sc := benchScale(b)
			for i := 0; i < b.N; i++ {
				opts := harness.ScaledStoreOptions()
				opts.WindowMs = 5_000
				out := runOnce(b, sc, c.query, c.kind, opts, events)
				b.ReportMetric(out.ThroughputTPS, "events/s")
			}
		})
	}
}
