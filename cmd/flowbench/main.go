// Command flowbench regenerates the paper's evaluation figures against
// the Go reproduction. Each figure prints the same rows/series the paper
// plots; EXPERIMENTS.md records paper-vs-measured comparisons.
//
// Usage:
//
//	flowbench -fig 8                 # one figure (4, 8, 9, 10, 11, 12, 13)
//	flowbench -all                   # every figure
//	flowbench -ablations             # design-choice ablations
//	flowbench -events 300000 -fig 8  # bigger dataset
//	flowbench -quick -all            # fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flowkv/internal/harness"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to run: 4, 8, 9, 10, 11, 12 or 13")
		all       = flag.Bool("all", false, "run every figure")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		events    = flag.Int("events", 0, "dataset size in events (default 150000, quick 12000)")
		par       = flag.Int("parallelism", 2, "workers per stage")
		dir       = flag.String("dir", "", "state directory (default: a temp dir)")
		quick     = flag.Bool("quick", false, "small smoke-test scale")
	)
	flag.Parse()

	base := *dir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "flowbench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(base)
	}
	sc := harness.DefaultScale(base)
	if *quick {
		sc = harness.QuickScale(base)
	}
	if *events > 0 {
		sc.Events = *events
	}
	if *par > 0 {
		sc.Parallelism = *par
	}

	ran := false
	if *ablations {
		ran = true
		if _, err := harness.Ablations(sc, os.Stdout); err != nil {
			fatal(err)
		}
	}
	want := map[string]bool{}
	if *fig != "" {
		for _, f := range strings.Split(*fig, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(f, "fig")))
			if err != nil {
				fatal(fmt.Errorf("bad -fig value %q", f))
			}
			want[fmt.Sprintf("fig%d", n)] = true
		}
	}
	for _, f := range harness.Figures() {
		if !*all && !want[f.ID] {
			continue
		}
		ran = true
		fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
		if err := f.Run(sc, os.Stdout); err != nil {
			fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowbench:", err)
	os.Exit(1)
}
