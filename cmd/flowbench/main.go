// Command flowbench regenerates the paper's evaluation figures against
// the Go reproduction. Each figure prints the same rows/series the paper
// plots; EXPERIMENTS.md records paper-vs-measured comparisons.
//
// Usage:
//
//	flowbench -fig 8                 # one figure (4, 8, 9, 10, 11, 12, 13)
//	flowbench -all                   # every figure
//	flowbench -ablations             # design-choice ablations
//	flowbench -events 300000 -fig 8  # bigger dataset
//	flowbench -quick -all            # fast smoke run
//	flowbench -query Q7 -backend flowkv -json -   # one run, JSON report
//	flowbench -recovery              # crash-restart recovery demo
//	flowbench -recovery -rescale     # recovery with resume at parallelism+1
//	flowbench -migrate               # live key-range migration demo (bounded p99 on untouched keys)
//	flowbench -tenants 4             # noisy-neighbor demo: 4 noisy tenants + 1 victim
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flowkv/internal/harness"
	"flowkv/internal/statebackend"
)

// report is the -json output: single-query runs (with per-backend health
// and error counters) and recovery-demo outcomes.
type report struct {
	Runs     []harness.RunOutcome       `json:"runs,omitempty"`
	Recovery []harness.RecoveryOutcome  `json:"recovery,omitempty"`
	Migrate  []harness.MigrateOutcome   `json:"migrate,omitempty"`
	Tenants  *harness.TenantDemoOutcome `json:"tenants,omitempty"`
}

func main() {
	var (
		fig       = flag.String("fig", "", "figure to run: 4, 8, 9, 10, 11, 12 or 13")
		all       = flag.Bool("all", false, "run every figure")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations")
		events    = flag.Int("events", 0, "dataset size in events (default 150000, quick 12000)")
		par       = flag.Int("parallelism", 2, "workers per stage")
		dir       = flag.String("dir", "", "state directory (default: a temp dir)")
		quick     = flag.Bool("quick", false, "small smoke-test scale")
		query     = flag.String("query", "", "run one query (e.g. Q7) and report measurements and store health")
		backend   = flag.String("backend", "flowkv", "backend for -query: flowkv, rocksdb, faster or inmem")
		windowMs  = flag.Int64("window", 1000, "window size / session gap in ms for -query")
		recovery  = flag.Bool("recovery", false, "run the crash-restart recovery demo (kill, resume, verify exactly-once)")
		rescale   = flag.Bool("rescale", false, "with -recovery: resume crashed jobs at parallelism+1, splitting committed key ranges on restart")
		migrate   = flag.Bool("migrate", false, "run the live key-range migration demo (hand off one hash bucket mid-stream, verify exactly-once and bounded p99 on untouched keys)")
		tenants   = flag.Int("tenants", 0, "run the multi-tenant demo: this many noisy tenants over-submitting their quota next to one SLO victim, with an injected slot failure")
		jsonPath  = flag.String("json", "", "write -query/-recovery outcomes as JSON to this file (\"-\" for stdout)")
	)
	flag.Parse()

	base := *dir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "flowbench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(base)
	}
	sc := harness.DefaultScale(base)
	if *quick {
		sc = harness.QuickScale(base)
	}
	if *events > 0 {
		sc.Events = *events
	}
	if *par > 0 {
		sc.Parallelism = *par
	}

	ran := false
	var rep report
	var runErr error
	if *query != "" {
		ran = true
		kind := statebackend.Kind(*backend)
		if !validKind(kind) {
			fatal(fmt.Errorf("unknown -backend %q (want one of %v)", *backend, statebackend.Kinds()))
		}
		opts := harness.ScaledStoreOptions()
		opts.WindowMs = *windowMs
		fmt.Printf("== %s over %s ==\n", *query, kind)
		out := harness.RunQuery(sc, *query, kind, opts, nil)
		printRun(out)
		rep.Runs = append(rep.Runs, out)
		if out.Failed {
			runErr = fmt.Errorf("%s over %s failed: %s", out.Query, out.Backend, out.FailReason)
		}
	}
	if *recovery {
		ran = true
		if *rescale {
			sc.ResumeParallelism = sc.Parallelism + 1
			fmt.Printf("== crash-restart recovery (rescale %d->%d) ==\n", sc.Parallelism, sc.ResumeParallelism)
		} else {
			fmt.Println("== crash-restart recovery ==")
		}
		outs, err := harness.RecoveryDemo(sc, os.Stdout)
		rep.Recovery = outs
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	if *migrate {
		ran = true
		fmt.Println("== live key-range migration ==")
		outs, err := harness.MigrateDemo(sc, os.Stdout)
		rep.Migrate = outs
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	if *tenants > 0 {
		ran = true
		fmt.Printf("== multi-tenant demo: %d noisy tenants + 1 victim, 3 slots, 1 forced failure ==\n", *tenants)
		out, err := harness.TenantDemo(sc, *tenants, os.Stdout)
		rep.Tenants = &out
		if err != nil && runErr == nil {
			runErr = err
		}
	}
	if *ablations {
		ran = true
		if _, err := harness.Ablations(sc, os.Stdout); err != nil {
			fatal(err)
		}
	}
	want := map[string]bool{}
	if *fig != "" {
		for _, f := range strings.Split(*fig, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(f, "fig")))
			if err != nil {
				fatal(fmt.Errorf("bad -fig value %q", f))
			}
			want[fmt.Sprintf("fig%d", n)] = true
		}
	}
	for _, f := range harness.Figures() {
		if !*all && !want[f.ID] {
			continue
		}
		ran = true
		fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
		if err := f.Run(sc, os.Stdout); err != nil {
			fatal(err)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *jsonPath != "" && (rep.Runs != nil || rep.Recovery != nil || rep.Migrate != nil || rep.Tenants != nil) {
		if err := writeJSON(*jsonPath, rep); err != nil {
			fatal(err)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func validKind(k statebackend.Kind) bool {
	for _, want := range statebackend.Kinds() {
		if k == want {
			return true
		}
	}
	return false
}

// printRun reports one run's measurements plus the per-worker store
// health surface: health state, degraded-reason, and the write/read
// error and recovery counters, and which backend halted a failed run.
func printRun(out harness.RunOutcome) {
	if out.Failed {
		fmt.Printf("FAILED: %s\n", out.FailReason)
		if out.Halt != nil {
			fmt.Printf("halted at %s\n", out.Halt.Error())
		}
	} else {
		fmt.Printf("throughput %.0f events/s  elapsed %v  p50 %v  p95 %v  results %d\n",
			out.ThroughputTPS, out.Elapsed.Round(1e6), out.P50, out.P95, out.Results)
	}
	if len(out.Backends) == 0 {
		return
	}
	fmt.Printf("%-10s %6s  %-8s %-9s %6s %6s %6s\n",
		"stage", "worker", "backend", "health", "werr", "rerr", "heals")
	for _, bs := range out.Backends {
		fmt.Printf("%-10s %6d  %-8s %-9s %6d %6d %6d\n",
			bs.Stage, bs.Worker, bs.Backend, bs.Health, bs.WriteErrors, bs.ReadErrors, bs.Recoveries)
		if bs.HealthErr != "" {
			fmt.Printf("  cause: %s\n", bs.HealthErr)
		}
	}
}

func writeJSON(path string, rep report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowbench:", err)
	os.Exit(1)
}
