// Command flowkvctl inspects on-disk FlowKV store state: it decodes AAR
// per-window logs, AUR data/index logs, and RMW logs, printing entry
// summaries and space accounting. Useful for debugging store behaviour
// and for verifying what a checkpoint contains.
//
// Usage:
//
//	flowkvctl ls    <store-dir>        # list files with sizes and kinds
//	flowkvctl index <index-log-file>   # decode an AUR index log
//	flowkvctl data  <data-log-file>    # summarize an AUR data log
//	flowkvctl aar   <win_*.log file>   # decode an AAR per-window log
//	flowkvctl rmw   <rmw-*.log file>   # decode an RMW log
//	flowkvctl health <store-dir>       # offline log integrity scan
//	flowkvctl checkpoints <parent-dir> # list and verify checkpoints
//	flowkvctl job <job-dir>            # inspect a job's committed progress
//	flowkvctl job <job-dir> <par>      # additionally: can it resume at <par> workers?
//	flowkvctl migration <job-dir>      # live-migration journal and routing tables
//	flowkvctl tenants <manager-dir>    # per-tenant admission stats and pool health
//	flowkvctl verify <job-dir>         # deep offline verification of committed job state
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/jobmanager"
	"flowkv/internal/metrics"
	"flowkv/internal/spe"
	"flowkv/internal/window"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	var err error
	switch cmd {
	case "ls":
		err = cmdLs(path)
	case "index":
		err = cmdIndex(path)
	case "data":
		err = cmdData(path)
	case "aar":
		err = cmdAAR(path)
	case "rmw":
		err = cmdRMW(path)
	case "health":
		err = cmdHealth(path)
	case "checkpoints":
		err = cmdCheckpoints(path)
	case "job":
		target := 0
		if len(os.Args) > 3 {
			if target, err = strconv.Atoi(os.Args[3]); err != nil || target <= 0 {
				fmt.Fprintln(os.Stderr, "flowkvctl: target parallelism must be a positive integer")
				os.Exit(2)
			}
		}
		err = cmdJob(path, target)
	case "migration":
		err = cmdMigration(path)
	case "tenants":
		err = cmdTenants(path)
	case "verify":
		err = cmdVerify(path)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowkvctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flowkvctl {ls|index|data|aar|rmw|health|checkpoints|job|migration|tenants|verify} <path> [job-target-parallelism]")
	os.Exit(2)
}

func cmdLs(dir string) error {
	return filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		kind := "unknown"
		switch {
		case strings.HasPrefix(d.Name(), "win_"):
			kind = "aar-window-log"
		case strings.HasPrefix(d.Name(), "data-"):
			kind = "aur-data-log"
		case strings.HasPrefix(d.Name(), "index-"):
			kind = "aur-index-log"
		case strings.HasPrefix(d.Name(), "rmw-"):
			kind = "rmw-log"
		case strings.HasSuffix(d.Name(), ".sst"):
			kind = "sstable"
		case strings.HasPrefix(d.Name(), "hlog-"):
			kind = "hybrid-log"
		case d.Name() == "stat.snap":
			kind = "aur-stat-snapshot"
		}
		rel, _ := filepath.Rel(dir, path)
		fmt.Printf("%-16s %10d  %s\n", kind, info.Size(), rel)
		return nil
	})
}

func scanRecords(path string, fn func(i int, off int64, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := binio.NewRecordScannerSniff(bufio.NewReaderSize(f, 1<<20), 0)
	var i int
	var off int64
	for sc.Scan() {
		if err := fn(i, off, sc.Record()); err != nil {
			return err
		}
		off = sc.Offset()
		i++
	}
	if sc.Truncated() {
		fmt.Printf("(torn tail after offset %d)\n", sc.Offset())
	}
	return sc.Err()
}

func cmdIndex(path string) error {
	fmt.Println("#   key                window                 data-off  data-len")
	var total int64
	err := scanRecords(path, func(i int, _ int64, payload []byte) error {
		key, n, err := binio.Bytes(payload)
		if err != nil {
			return err
		}
		payload = payload[n:]
		w, n, err := window.Decode(payload)
		if err != nil {
			return err
		}
		payload = payload[n:]
		off, n, err := binio.Uvarint(payload)
		if err != nil {
			return err
		}
		payload = payload[n:]
		ln, _, err := binio.Uvarint(payload)
		if err != nil {
			return err
		}
		total += int64(ln)
		fmt.Printf("%-3d %-18s %-22s %9d %9d\n", i, key, w, off, ln)
		return nil
	})
	fmt.Printf("total indexed data: %d bytes\n", total)
	return err
}

func cmdData(path string) error {
	fmt.Println("#   off        values  bytes")
	var records, values int
	err := scanRecords(path, func(i int, off int64, payload []byte) error {
		count, _, err := binio.Uvarint(payload)
		if err != nil {
			return err
		}
		records++
		values += int(count)
		fmt.Printf("%-3d %-10d %6d %6d\n", i, off, count, len(payload))
		return nil
	})
	fmt.Printf("%d records, %d values\n", records, values)
	return err
}

func cmdAAR(path string) error {
	fmt.Println("#   tuples  bytes   first-key")
	var tuples int
	err := scanRecords(path, func(i int, _ int64, payload []byte) error {
		count, n, err := binio.Uvarint(payload)
		if err != nil {
			return err
		}
		firstKey := []byte("-")
		if count > 0 {
			if k, _, err := binio.Bytes(payload[n:]); err == nil {
				firstKey = k
			}
		}
		tuples += int(count)
		fmt.Printf("%-3d %6d %6d   %s\n", i, count, len(payload), firstKey)
		return nil
	})
	fmt.Printf("%d tuples total\n", tuples)
	return err
}

// cmdHealth is an offline integrity scan: every recognized log file in
// the store directory is walked record by record, so CRC corruption and
// torn tails are reported per file. A torn tail alone is recoverable
// (open-time recovery truncates to the last whole record); corrupt
// records in the middle of a log are not, and make the command fail.
func cmdHealth(dir string) error {
	fmt.Println("status   records      bytes  file")
	var files, torn, corrupt int
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		isLog := strings.HasPrefix(name, "win_") || strings.HasPrefix(name, "data-") ||
			strings.HasPrefix(name, "index-") || strings.HasPrefix(name, "rmw-")
		if !isLog {
			return nil
		}
		files++
		rel, _ := filepath.Rel(dir, path)
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := binio.NewRecordScannerSniff(bufio.NewReaderSize(f, 1<<20), 0)
		var records int
		for sc.Scan() {
			records++
		}
		status := "ok"
		switch {
		case sc.Err() != nil:
			corrupt++
			status = fmt.Sprintf("corrupt: %v", sc.Err())
		case sc.Truncated():
			torn++
			status = fmt.Sprintf("torn@%d", sc.Offset())
		}
		fmt.Printf("%-8s %7d %10d  %s\n", status, records, sc.Offset(), rel)
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("%d log files: %d clean, %d torn tails (recoverable), %d corrupt\n",
		files, files-torn-corrupt, torn, corrupt)
	if corrupt > 0 {
		return fmt.Errorf("%d log files have unrecoverable corruption", corrupt)
	}
	return nil
}

// cmdCheckpoints lists every checkpoint under parent, verifying each
// against its MANIFEST (file sizes and CRC32C checksums). Incremental
// checkpoints additionally show their chain: depth and the resolved
// parent path back toward the base, truncated with "…" where ancestors
// have already been garbage-collected (the directories are physically
// self-contained, so a truncated chain is still restorable).
func cmdCheckpoints(parent string) error {
	infos, err := core.ListCheckpoints(nil, parent)
	if err != nil {
		return err
	}
	if len(infos) == 0 {
		fmt.Println("no checkpoints found")
		return nil
	}
	fmt.Println("checkpoint            pattern  inst  files       size       age  chain  status")
	var invalid int
	for _, ci := range infos {
		status := "verified"
		if ci.Err != nil {
			invalid++
			status = fmt.Sprintf("INVALID: %v", ci.Err)
		}
		age := "?"
		if !ci.ModTime.IsZero() {
			age = time.Since(ci.ModTime).Round(time.Second).String()
		}
		chain := "base"
		if ci.Depth > 0 && ci.Parent == "" {
			// Incremental, but the parent lives outside this directory
			// (the SPE chains across generation dirs): depth only.
			chain = fmt.Sprintf("d%d", ci.Depth)
		}
		if ci.Parent != "" {
			chain = fmt.Sprintf("d%d", ci.Depth)
			if names, cerr := core.CheckpointChain(nil, ci.Path); cerr != nil {
				invalid++
				status = fmt.Sprintf("INVALID: %v", cerr)
			} else {
				suffix := ""
				// names runs child -> base; Depth+1 entries means the walk
				// reached the base, fewer means GC truncated the chain.
				if len(names) < ci.Depth+1 {
					suffix = "…"
				}
				chain = fmt.Sprintf("d%d←%s%s", ci.Depth, strings.Join(names[1:], "←"), suffix)
			}
		}
		fmt.Printf("%-20s  %-7s %5d %6d %10s %9s  %-5s  %s\n",
			filepath.Base(ci.Path), ci.Pattern, ci.Instances, ci.Files,
			metrics.FormatBytes(ci.SizeBytes), age, chain, status)
	}
	if invalid > 0 {
		return fmt.Errorf("%d of %d checkpoints failed verification", invalid, len(infos))
	}
	return nil
}

// cmdJob inspects a job directory: the committed JOB record (generation,
// source offset, committed ledger length), the key-range manifest
// (per-stage parallelism at commit time), the generation directories on
// disk, MANIFEST verification of every worker checkpoint in the
// committed generation, and a committed-ledger summary. With a target
// parallelism it additionally reports how a resume at that worker count
// would restore each stage — direct, rescaled (key ranges split/merged),
// or fanned out from a shared single-owner cut. This is the operator's
// pre-restart check: if it passes, Resume will succeed.
func cmdJob(dir string, target int) error {
	meta, err := spe.ReadJobMeta(nil, dir)
	if err != nil {
		return err
	}
	state := "resumable"
	if meta.Final {
		state = "final (complete)"
	}
	fmt.Printf("job state:            %s\n", state)
	fmt.Printf("committed generation: %d\n", meta.Gen)
	fmt.Printf("source offset:        %d tuples\n", meta.Offset)
	fmt.Printf("tuples in / max ts:   %d / %d\n", meta.TuplesIn, meta.MaxTS)
	fmt.Printf("committed ledger:     %d bytes\n", meta.LedgerLen)

	gens, err := spe.ListGenerations(nil, dir)
	if err != nil {
		return err
	}
	for _, g := range gens {
		if g != meta.Gen {
			fmt.Printf("generation %d on disk: uncommitted (removed on resume)\n", g)
		}
	}

	layout, err := spe.CommittedLayout(nil, dir, meta.Gen)
	if err != nil {
		return err
	}
	stages := make([]int, 0, len(layout))
	for si := range layout {
		stages = append(stages, si)
	}
	sort.Ints(stages)
	fmt.Println("key-range manifest:")
	for _, si := range stages {
		cs := layout[si]
		par := cs.Workers
		if si < len(meta.StagePars) && meta.StagePars[si] > 0 {
			par = int(meta.StagePars[si])
		}
		switch {
		case cs.Shared:
			fmt.Printf("  stage %2d: shared single-owner cut, %d operator snapshots\n", si, par)
		default:
			fmt.Printf("  stage %2d: %d workers; worker w owns keys with hash(key) mod %d == w\n",
				si, par, par)
		}
	}

	genDir := filepath.Join(dir, fmt.Sprintf("gen-%06d", meta.Gen))
	ents, err := os.ReadDir(genDir)
	if err != nil {
		return fmt.Errorf("committed generation unreadable: %w", err)
	}
	fmt.Println("worker checkpoints:")
	var workers, invalid int
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		workers++
		pat, inst, err := core.VerifyCheckpointDir(nil, filepath.Join(genDir, e.Name()))
		if err != nil {
			invalid++
			fmt.Printf("  %-10s INVALID: %v\n", e.Name(), err)
			continue
		}
		fmt.Printf("  %-10s %-7s x%d  verified\n", e.Name(), pat, inst)
	}

	recs, err := spe.ReadLedger(nil, dir)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Println("ledger: empty")
	} else {
		fmt.Printf("ledger: %d records, event time [%d, %d]\n",
			len(recs), recs[0].TS, recs[len(recs)-1].TS)
	}

	if target > 0 {
		if meta.Final {
			fmt.Printf("resume at %d workers: job is final; Resume is a no-op\n", target)
		} else {
			fmt.Printf("resume at %d workers:\n", target)
			for _, si := range stages {
				cs := layout[si]
				switch {
				case cs.Shared:
					fmt.Printf("  stage %2d: shared store restores whole; operator snapshots fan out to %d workers\n", si, target)
				case cs.Workers == target:
					fmt.Printf("  stage %2d: direct worker-for-worker restore\n", si)
				default:
					fmt.Printf("  stage %2d: rescale %d -> %d; committed key ranges split/merged by rehash\n",
						si, cs.Workers, target)
				}
			}
			// Show where the committed results' keys land under the new
			// partitioning, as a concrete sample of the re-route.
			seen := map[string]bool{}
			for _, rec := range recs {
				if len(seen) >= 5 || seen[string(rec.Key)] {
					continue
				}
				seen[string(rec.Key)] = true
				fmt.Printf("  key %-12q -> worker %d of %d\n",
					rec.Key, spe.WorkerForKey(rec.Key, target), target)
			}
		}
	}
	if invalid > 0 {
		return fmt.Errorf("%d of %d worker checkpoints failed verification", invalid, workers)
	}
	return nil
}

// cmdMigration inspects a job's live-migration state: the committed
// routing tables from the JOB record (flagging buckets that no longer
// live on their hash-default worker) and every journaled migration
// attempt with its protocol state. In-flight attempts (preparing /
// prepared) are normal only while the job runs; seen in a cold
// directory they mean the job died mid-handoff and the next Resume
// will reconcile them — committed iff the routing flip made it into
// the JOB record, aborted otherwise. Leftover mig-* staging
// directories are reported too (Resume clears them).
func cmdMigration(dir string) error {
	meta, err := spe.ReadJobMeta(nil, dir)
	if err != nil {
		return err
	}
	fmt.Printf("committed generation: %d\n", meta.Gen)
	fmt.Println("routing tables:")
	if len(meta.Routing) == 0 {
		fmt.Println("  (none recorded: every bucket on its hash-default worker)")
	}
	moved := 0
	for si, tab := range meta.Routing {
		par := len(tab)
		if si < len(meta.StagePars) && meta.StagePars[si] > 0 {
			par = int(meta.StagePars[si])
		}
		fmt.Printf("  stage %2d (%d workers, %d buckets):", si, par, len(tab))
		anyMoved := false
		for b, w := range tab {
			if par > 0 && int(w) != b%par {
				fmt.Printf(" bucket %d->worker %d", b, w)
				anyMoved = true
				moved++
			}
		}
		if !anyMoved {
			fmt.Print(" identity (no buckets migrated)")
		}
		fmt.Println()
	}

	recs, err := spe.ReadMigrationJournal(nil, dir)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Println("migration journal: empty (no migrations attempted)")
		return nil
	}
	fmt.Println("migration journal:")
	fmt.Println("  seq     stage  bucket  from  to   base-gen  state      detail")
	var inflight int
	for _, r := range recs {
		detail := r.Detail
		if r.State == spe.MigStatePreparing || r.State == spe.MigStatePrepared {
			inflight++
			if detail == "" {
				detail = "(in flight; reconciled on next Resume)"
			}
		}
		fmt.Printf("  %-7d %5d %7d %5d %4d %10d  %-9s  %s\n",
			r.Seq, r.Stage, r.Bucket, r.From, r.To, r.BaseGen, r.State, detail)
		staging := filepath.Join(dir, fmt.Sprintf("mig-%06d", r.Seq))
		if _, serr := os.Stat(staging); serr == nil {
			fmt.Printf("          staging dir present: %s\n", staging)
		}
	}
	fmt.Printf("%d attempts: %d in flight, %d buckets off their hash-default worker\n",
		len(recs), inflight, moved)
	return nil
}

// cmdVerify deep-verifies a job directory offline: JOB record decode,
// MANIFEST verification (sizes + CRC32C) of every checkpoint in every
// retained generation, GENMETA sidecar agreement, quarantine markers,
// and a record-by-record payload decode of the committed sink ledger.
// This catches silent at-rest corruption — including zeroed pages that
// legacy v0 framing cannot distinguish from empty records — before an
// operator trusts the directory for a resume. Exit status is non-zero
// on the first failure.
func cmdVerify(dir string) error {
	if err := spe.VerifyJobDir(nil, dir); err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Printf("%s: every committed byte verified (JOB, checkpoints, GENMETA, ledger)\n", dir)
	return nil
}

func cmdRMW(path string) error {
	fmt.Println("#   key                window                 agg-bytes")
	err := scanRecords(path, func(i int, _ int64, payload []byte) error {
		key, n, err := binio.Bytes(payload)
		if err != nil {
			return err
		}
		payload = payload[n:]
		w, n, err := window.Decode(payload)
		if err != nil {
			return err
		}
		payload = payload[n:]
		agg, _, err := binio.Bytes(payload)
		if err != nil {
			return err
		}
		fmt.Printf("%-3d %-18s %-22s %9d\n", i, key, w, len(agg))
		return nil
	})
	return err
}

// cmdTenants renders a job manager directory's persisted TENANTS.json:
// per-tenant admission counters (admitted/throttled/shed), write-side
// bandwidth accounting, admit-latency quantiles, failovers, and the
// store pool's slot health.
func cmdTenants(dir string) error {
	doc, err := jobmanager.ReadTenantsFile(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-14s %-8s %-7s %9s %9s %8s %10s %10s %7s %9s %8s %9s %6s\n",
		"tenant", "strategy", "state", "slot", "admitted", "throttled", "shed",
		"admit-p50", "admit-p99", "stalls", "io-stalls", "write-p99", "failovers", "ckpts")
	for _, s := range doc.Tenants {
		fmt.Printf("%-10s %-14s %-8s %-7s %9d %9d %8d %10v %10v %7d %9d %8v %9d %6d\n",
			s.Tenant, s.Strategy, s.State, s.Slot, s.Admitted, s.Throttled, s.Shed,
			s.AdmitP50.Round(time.Microsecond), s.AdmitP99.Round(time.Microsecond),
			s.WriteStalls, s.StoreStalls, s.StoreWriteP99.Round(time.Microsecond),
			s.Failovers, s.Checkpoints)
		if s.Err != "" {
			fmt.Printf("  error: %s\n", s.Err)
		}
	}
	fmt.Println()
	fmt.Printf("%-8s %-9s %-8s %10s %9s %11s  %s\n",
		"slot", "health", "reason", "probe-lat", "failovers", "rebalances", "tenants")
	for _, s := range doc.Slots {
		health := "healthy"
		switch {
		case !s.Healthy:
			health = "FAILED"
		case s.Slow:
			health = "SLOW"
		}
		probe := "-"
		if s.ProbeLatency > 0 {
			probe = s.ProbeLatency.Round(time.Microsecond).String()
		}
		fmt.Printf("%-8s %-9s %-8s %10s %9d %11d  %s\n",
			s.ID, health, s.Reason, probe, s.Failovers, s.Rebalances, strings.Join(s.Tenants, ","))
		if s.Err != "" {
			fmt.Printf("  cause: %s\n", s.Err)
		}
	}
	return nil
}
