// Command nexmarkgen generates NEXMark event datasets: a framed binary
// file replayable by examples and benchmarks, or a human-readable sample.
//
// Usage:
//
//	nexmarkgen -events 1000000 -out events.bin
//	nexmarkgen -events 20 -text           # print a sample to stdout
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"flowkv/internal/binio"
	"flowkv/internal/nexmark"
)

func main() {
	var (
		events = flag.Int("events", 100_000, "number of events")
		seed   = flag.Int64("seed", 1, "generator seed")
		gapMs  = flag.Int64("interval", 1, "event-time gap between events (ms)")
		out    = flag.String("out", "", "output file (framed binary records)")
		text   = flag.Bool("text", false, "print events as text to stdout")
	)
	flag.Parse()

	g := nexmark.NewGenerator(nexmark.GeneratorConfig{
		Events:       *events,
		Seed:         *seed,
		InterEventMs: *gapMs,
	})

	if *text {
		for {
			ev, ok := g.Next()
			if !ok {
				return
			}
			switch ev.Kind {
			case nexmark.KindPerson:
				fmt.Printf("person  t=%-10d id=%d name=%s city=%s\n",
					ev.Person.DateTime, ev.Person.ID, ev.Person.Name, ev.Person.City)
			case nexmark.KindAuction:
				fmt.Printf("auction t=%-10d id=%d seller=%d category=%d initial=%d\n",
					ev.Auction.DateTime, ev.Auction.ID, ev.Auction.Seller, ev.Auction.Category, ev.Auction.InitialBid)
			case nexmark.KindBid:
				fmt.Printf("bid     t=%-10d auction=%d bidder=%d price=%d\n",
					ev.Bid.DateTime, ev.Bid.Auction, ev.Bid.Bidder, ev.Bid.Price)
			}
		}
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "nexmarkgen: need -out or -text")
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	rw := binio.NewRecordWriter(w, 0)
	var n int
	for {
		ev, ok := g.Next()
		if !ok {
			break
		}
		if _, _, err := rw.Write(ev.Encode()); err != nil {
			fatal(err)
		}
		n++
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("nexmarkgen: wrote %d events (%d bytes) to %s\n", n, rw.Offset(), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexmarkgen:", err)
	os.Exit(1)
}
