package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// The -delta benchmark prices durability as state grows: a store ingests
// a constant-size batch per round for many rounds (so live state at the
// last barrier is ~rounds× the state at the first) and commits a
// checkpoint at every barrier under three modes — "full" rewrites the
// whole store each time, "incr" hard-links the parent's sealed segments
// and rewrites only the delta but still fsyncs each file as it is
// written, and "incr+group" additionally batches all fsyncs into one
// group-commit window per barrier. The claim under test: full commit
// cost grows with total state while incremental commit cost tracks the
// per-barrier delta and stays flat as state grows 100x.

type deltaPoint struct {
	Round       int     `json:"round"`
	CommitBytes int64   `json:"commit_bytes"`
	LatencyMS   float64 `json:"latency_ms"`
}

type deltaModeResult struct {
	Pattern          string       `json:"pattern"`
	Mode             string       `json:"mode"`
	Rounds           int          `json:"rounds"`
	FirstCommitBytes int64        `json:"first_commit_bytes"`
	LastCommitBytes  int64        `json:"last_commit_bytes"`
	GrowthRatio      float64      `json:"growth_ratio"`
	TotalCommitBytes int64        `json:"total_commit_bytes"`
	P99LatencyMS     float64      `json:"p99_latency_ms"`
	Points           []deltaPoint `json:"points"`
}

type deltaReport struct {
	Rounds      int               `json:"rounds"`
	OpsPerRound int               `json:"ops_per_round"`
	Instances   int               `json:"instances"`
	Results     []deltaModeResult `json:"results"`
}

func runDeltaBench(base string, ops int, jsonPath string) {
	const rounds = 100
	const instances = 4
	perRound := ops / rounds
	if perRound < 100 {
		perRound = 100
	}
	tb := metrics.NewTable("pattern", "mode", "rounds", "commit@1", "commit@100", "growth", "p99 commit")
	rep := deltaReport{Rounds: rounds, OpsPerRound: perRound, Instances: instances}
	for _, p := range []core.Pattern{core.PatternAAR, core.PatternAUR, core.PatternRMW} {
		for _, mode := range []string{"full", "incr", "incr+group"} {
			r := runDeltaWorkload(base, p, mode, rounds, perRound, instances)
			rep.Results = append(rep.Results, r)
			tb.AddRow(r.Pattern, r.Mode, r.Rounds,
				metrics.FormatBytes(r.FirstCommitBytes),
				metrics.FormatBytes(r.LastCommitBytes),
				fmt.Sprintf("%.2fx", r.GrowthRatio),
				time.Duration(r.P99LatencyMS*float64(time.Millisecond)).Round(10*time.Microsecond))
		}
	}
	fmt.Print(tb)
	if jsonPath != "" {
		mergeJSON(jsonPath, "delta", rep)
	}
}

// mergeJSON sets key in the JSON object stored at path (creating the
// file, or replacing a non-object, as needed), preserving other keys so
// the delta report can live alongside the -parallel report in one file.
func mergeJSON(path, key string, v any) {
	doc := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil {
		json.Unmarshal(b, &doc)
	}
	b, err := json.Marshal(v)
	if err != nil {
		fatal(err)
	}
	doc[key] = b
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

func runDeltaWorkload(base string, p core.Pattern, mode string, rounds, perRound, instances int) deltaModeResult {
	dir := filepath.Join(base, fmt.Sprintf("delta-%s-%s", p, mode))
	wkind := window.Fixed
	if p == core.PatternAUR {
		wkind = window.Session
	}
	opts := core.Options{
		Dir:              dir,
		Instances:        instances,
		WriteBufferBytes: 4 << 20,
		Predictor:        window.SessionPredictor{Gap: 1000},
		// Chain length is the rebase cadence; the bench measures the
		// steady incremental price, so keep the whole run on one chain.
		MaxDeltaChain:      rounds + 1,
		DisableGroupCommit: mode == "incr",
	}
	st, err := core.OpenPattern(p, wkind, opts)
	if err != nil {
		fatal(err)
	}
	defer st.Destroy()

	ckRoot := filepath.Join(base, fmt.Sprintf("delta-ck-%s-%s", p, mode))
	if err := os.MkdirAll(ckRoot, 0o755); err != nil {
		fatal(err)
	}
	val := make([]byte, 84)
	w := window.Window{Start: 0, End: 1 << 40}
	res := deltaModeResult{Pattern: p.String(), Mode: mode, Rounds: rounds}
	var lats []time.Duration
	var prevCopied int64
	parent, grandparent := "", ""
	seq := 0
	for r := 1; r <= rounds; r++ {
		// Constant-size batch of fresh keys: live state grows linearly,
		// so the last barrier sees ~rounds× the first barrier's state
		// while the per-barrier delta stays fixed.
		for i := 0; i < perRound; i++ {
			key := []byte(fmt.Sprintf("key-%09d", seq))
			seq++
			switch p {
			case core.PatternRMW:
				var agg [8]byte
				binary.LittleEndian.PutUint64(agg[:], uint64(seq))
				err = st.PutAggregate(key, w, agg[:])
			default:
				err = st.Append(key, val, w, int64(seq))
			}
			if err != nil {
				fatal(err)
			}
		}
		ck := filepath.Join(ckRoot, fmt.Sprintf("gen-%06d", r))
		t0 := time.Now()
		if mode == "full" {
			err = st.CheckpointWithMeta(ck, nil)
		} else {
			err = st.CheckpointDelta(ck, parent, nil)
		}
		lat := time.Since(t0)
		if err != nil {
			fatal(err)
		}
		lats = append(lats, lat)
		var commitBytes int64
		if mode == "full" {
			commitBytes = dirSize(ck)
		} else {
			copied := st.Stats().CkptCopiedBytes
			commitBytes = copied - prevCopied
			prevCopied = copied
		}
		if r == 1 {
			res.FirstCommitBytes = commitBytes
		}
		res.LastCommitBytes = commitBytes
		res.TotalCommitBytes += commitBytes
		if r == 1 || r == rounds/10 || r == rounds {
			res.Points = append(res.Points, deltaPoint{
				Round:       r,
				CommitBytes: commitBytes,
				LatencyMS:   float64(lat) / float64(time.Millisecond),
			})
		}
		// Checkpoint dirs are self-contained (hard links), so only the
		// immediate parent is needed for the next delta; prune the rest
		// to bound the bench's disk footprint.
		if grandparent != "" {
			os.RemoveAll(grandparent)
		}
		grandparent, parent = parent, ck
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if len(lats) > 0 {
		res.P99LatencyMS = float64(lats[len(lats)*99/100]) / float64(time.Millisecond)
	}
	if res.FirstCommitBytes > 0 {
		res.GrowthRatio = float64(res.LastCommitBytes) / float64(res.FirstCommitBytes)
	}
	return res
}

// dirSize sums the regular files under root.
func dirSize(root string) int64 {
	var n int64
	filepath.Walk(root, func(_ string, info os.FileInfo, err error) error {
		if err == nil && info.Mode().IsRegular() {
			n += info.Size()
		}
		return nil
	})
	return n
}
