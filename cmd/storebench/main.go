// Command storebench microbenchmarks the raw stores below the SPE,
// verifying the structural asymmetries the paper's argument rests on
// (§2.2): the hash log wins point RMW, the LSM tree wins appends via lazy
// merging, the hash log collapses on appends, and FlowKV's pattern
// stores beat both on their own patterns.
//
// Usage:
//
//	storebench                 # all workloads, default size
//	storebench -ops 500000     # bigger run
//	storebench -parallel 8 -json BENCH_core.json
//	                           # concurrent composite-store benchmark:
//	                           # 1 vs 8 workers on one core.Store
//	storebench -delta -json BENCH_core.json
//	                           # incremental-checkpoint benchmark: commit
//	                           # bytes and p99 latency as state grows
//	                           # 100x, full vs incr vs incr+group-commit
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"flowkv/internal/core/aar"
	"flowkv/internal/core/aur"
	"flowkv/internal/core/rmw"
	"flowkv/internal/faster"
	"flowkv/internal/lsm"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

func main() {
	var (
		ops       = flag.Int("ops", 100_000, "operations per workload")
		dir       = flag.String("dir", "", "state directory (default: temp)")
		parallel  = flag.Int("parallel", 0, "run the concurrent composite-store benchmark with this many workers (plus a 1-worker baseline), skipping the baseline store comparison")
		syncEvery = flag.Int("syncEvery", 2000, "ops between Sync calls in the -parallel benchmark (0 disables)")
		jsonOut   = flag.String("json", "", "write -parallel results as JSON to this file (-delta merges under a \"delta\" key)")
		delta     = flag.Bool("delta", false, "run the incremental-checkpoint benchmark: commit bytes and latency as state grows 100x, full vs incremental vs incremental+group-commit")
	)
	flag.Parse()

	base := *dir
	if base == "" {
		var err error
		base, err = os.MkdirTemp("", "storebench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(base)
	}

	if *delta {
		runDeltaBench(base, *ops, *jsonOut)
		return
	}

	if *parallel > 0 {
		runParallelBench(base, *ops, *parallel, *syncEvery, *jsonOut)
		return
	}

	tb := metrics.NewTable("workload", "store", "ops", "elapsed", "ops/sec")
	row := func(workload, store string, n int, d time.Duration) {
		tb.AddRow(workload, store, n, d.Round(time.Millisecond),
			fmt.Sprintf("%.0f", float64(n)/d.Seconds()))
	}

	val := make([]byte, 84) // NEXMark bid-sized payload
	keys := 1000
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i%keys)) }
	w := window.Window{Start: 0, End: 1 << 40}

	// --- RMW point workload: counter increments ---
	inc := func(old []byte) []byte {
		var c uint64
		if old != nil {
			c = binary.LittleEndian.Uint64(old)
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], c+1)
		return out[:]
	}

	{
		db, err := faster.Open(faster.Options{Dir: filepath.Join(base, "faster-rmw")})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *ops; i++ {
			if err := db.RMW(key(i), inc); err != nil {
				fatal(err)
			}
		}
		row("rmw-counter", "faster", *ops, time.Since(start))
		db.Destroy()
	}
	{
		db, err := lsm.Open(lsm.Options{Dir: filepath.Join(base, "lsm-rmw"), MergeOperator: lsm.AppendListOperator{}})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *ops; i++ {
			old, _, err := db.Get(key(i))
			if err != nil {
				fatal(err)
			}
			if err := db.Put(key(i), inc(old)); err != nil {
				fatal(err)
			}
		}
		row("rmw-counter", "rocksdb(lsm)", *ops, time.Since(start))
		db.Destroy()
	}
	{
		st, err := rmw.Open(rmw.Options{Dir: filepath.Join(base, "flowkv-rmw")})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *ops; i++ {
			old, _, err := st.Get(key(i), w)
			if err != nil {
				fatal(err)
			}
			if err := st.Put(key(i), w, inc(old)); err != nil {
				fatal(err)
			}
		}
		row("rmw-counter", "flowkv-rmw", *ops, time.Since(start))
		st.Destroy()
	}

	// --- Append workload: list appends, then one read per key ---
	{
		db, err := lsm.Open(lsm.Options{Dir: filepath.Join(base, "lsm-append"), MergeOperator: lsm.AppendListOperator{}})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *ops; i++ {
			if err := db.Merge(key(i), val); err != nil {
				fatal(err)
			}
		}
		for i := 0; i < keys; i++ {
			if _, _, err := db.Get(key(i)); err != nil {
				fatal(err)
			}
		}
		row("append+read", "rocksdb(lsm)", *ops, time.Since(start))
		db.Destroy()
	}
	{
		// Cap the hash-log append run: read-copy-update appends are
		// quadratic, the paper's DNF case.
		n := *ops
		if n > 50_000 {
			n = 50_000
		}
		db, err := faster.Open(faster.Options{Dir: filepath.Join(base, "faster-append")})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := db.AppendList(key(i), val); err != nil {
				fatal(err)
			}
		}
		for i := 0; i < keys; i++ {
			if _, _, err := db.Read(key(i)); err != nil {
				fatal(err)
			}
		}
		row(fmt.Sprintf("append+read (capped %d)", n), "faster", n, time.Since(start))
		db.Destroy()
	}
	{
		st, err := aar.Open(aar.Options{Dir: filepath.Join(base, "flowkv-aar")})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *ops; i++ {
			if err := st.Append(key(i), val, w); err != nil {
				fatal(err)
			}
		}
		for {
			part, err := st.GetWindow(w)
			if err != nil {
				fatal(err)
			}
			if part == nil {
				break
			}
		}
		row("append+read", "flowkv-aar", *ops, time.Since(start))
		st.Destroy()
	}
	{
		st, err := aur.Open(aur.Options{
			Dir:       filepath.Join(base, "flowkv-aur"),
			Predictor: window.SessionPredictor{Gap: 1000},
		})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for i := 0; i < *ops; i++ {
			if err := st.Append(key(i), val, w, int64(i)); err != nil {
				fatal(err)
			}
		}
		for i := 0; i < keys; i++ {
			if _, err := st.Get(key(i), w); err != nil {
				fatal(err)
			}
		}
		row("append+read", "flowkv-aur", *ops, time.Since(start))
		st.Destroy()
	}

	fmt.Print(tb)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "storebench:", err)
	os.Exit(1)
}
