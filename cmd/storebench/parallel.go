package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// The -parallel benchmark measures what the composite store's internal
// concurrency buys: N workers drive one core.Store (disjoint key ranges,
// as SPE workers sharing a backend do), with a Sync issued every
// -syncEvery operations globally to model periodic durability. At one
// worker every fsync stalls ingestion; at N workers the stalled worker
// waits alone while the rest keep appending through the per-instance
// fast paths, and the Sync itself fans across instances. The same total
// op and Sync counts make the two runs directly comparable.

type parallelResult struct {
	Pattern   string  `json:"pattern"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	ElapsedMS float64 `json:"elapsed_ms"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P99Micros float64 `json:"p99_us"`
}

type parallelReport struct {
	Ops       int                `json:"ops"`
	SyncEvery int                `json:"sync_every"`
	Instances int                `json:"instances"`
	Results   []parallelResult   `json:"results"`
	Speedup   map[string]float64 `json:"speedup"`
}

func runParallelBench(base string, ops, workers, syncEvery int, jsonPath string) {
	const instances = 8
	tb := metrics.NewTable("pattern", "workers", "ops", "elapsed", "ops/sec", "p99")
	rep := parallelReport{Ops: ops, SyncEvery: syncEvery, Instances: instances, Speedup: map[string]float64{}}
	counts := []int{1}
	if workers > 1 {
		counts = append(counts, workers)
	}
	for _, p := range []core.Pattern{core.PatternAAR, core.PatternAUR, core.PatternRMW} {
		var serial float64
		for _, n := range counts {
			r := runCoreWorkload(base, p, ops, n, syncEvery, instances)
			tb.AddRow(r.Pattern, r.Workers, r.Ops,
				time.Duration(r.ElapsedMS*float64(time.Millisecond)).Round(time.Millisecond),
				fmt.Sprintf("%.0f", r.OpsPerSec),
				time.Duration(r.P99Micros*float64(time.Microsecond)).Round(time.Microsecond))
			rep.Results = append(rep.Results, r)
			if n == 1 {
				serial = r.OpsPerSec
			} else if serial > 0 {
				rep.Speedup[r.Pattern] = r.OpsPerSec / serial
			}
		}
	}
	fmt.Print(tb)
	for p, s := range rep.Speedup {
		fmt.Printf("%s: %d-worker speedup %.2fx\n", p, workers, s)
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func runCoreWorkload(base string, p core.Pattern, ops, workers, syncEvery, instances int) parallelResult {
	dir := filepath.Join(base, fmt.Sprintf("core-%s-w%d", p, workers))
	wkind := window.Fixed
	if p == core.PatternAUR {
		wkind = window.Session
	}
	st, err := core.OpenPattern(p, wkind, core.Options{
		Dir:              dir,
		Instances:        instances,
		Parallelism:      workers,
		WriteBufferBytes: 4 << 20,
		Predictor:        window.SessionPredictor{Gap: 1000},
	})
	if err != nil {
		fatal(err)
	}
	defer st.Destroy()

	val := make([]byte, 84)
	w := window.Window{Start: 0, End: 1 << 40}
	perWorker := ops / workers
	var opCount atomic.Int64
	lat := make([][]time.Duration, workers)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ls := make([]time.Duration, 0, perWorker)
			var agg [8]byte
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%02d-key-%04d", g, i%64))
				t0 := time.Now()
				var err error
				switch p {
				case core.PatternAAR, core.PatternAUR:
					err = st.Append(key, val, w, int64(i))
				case core.PatternRMW:
					var old []byte
					var ok bool
					old, ok, err = st.GetAggregate(key, w)
					if err == nil {
						var c uint64
						if ok {
							c = binary.LittleEndian.Uint64(old)
						}
						binary.LittleEndian.PutUint64(agg[:], c+1)
						err = st.PutAggregate(key, w, agg[:])
					}
				}
				if err == nil && syncEvery > 0 {
					if n := opCount.Add(1); n%int64(syncEvery) == 0 {
						err = st.Sync()
					}
				}
				ls = append(ls, time.Since(t0))
				if err != nil {
					errs <- err
					return
				}
			}
			lat[g] = ls
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		fatal(err)
	default:
	}

	var all []time.Duration
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var p99 time.Duration
	if len(all) > 0 {
		p99 = all[len(all)*99/100]
	}
	total := perWorker * workers
	return parallelResult{
		Pattern:   p.String(),
		Workers:   workers,
		Ops:       total,
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		OpsPerSec: float64(total) / elapsed.Seconds(),
		P99Micros: float64(p99) / float64(time.Microsecond),
	}
}
