// Ad-click attribution: an event-time interval join (the paper's §8
// extension direction) on FlowKV state. Impressions (left) join clicks
// (right) for the same impression id when the click lands within 0-30 s
// after the impression. Both sides buffer in bucketed AUR state probed with
// non-destructive reads; buckets expire wholesale as the watermark moves.
//
//	go run ./examples/adclicks
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"flowkv/internal/core"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

func main() {
	dir, err := os.MkdirTemp("", "flowkv-adclicks-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	join := spe.IntervalJoinSpec{
		Lower:    0,      // click at or after the impression...
		Upper:    30_000, // ...within 30 seconds
		BucketMs: 10_000,
		SideOf:   func(t spe.Tuple) spe.Side { return spe.Side(t.Value[0]) },
		Join: func(key, imp, click []byte, impTS, clickTS int64) []byte {
			return []byte(fmt.Sprintf("%s on %s converted after %0.1fs",
				key, imp[1:], float64(clickTS-impTS)/1000))
		},
	}

	pipe := &spe.Pipeline{
		Stages: []spe.Stage{{
			Name:        "attribute",
			Parallelism: 2,
			Join:        &join,
			NewBackend: func(worker int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{
					Kind:       statebackend.KindFlowKV,
					Dir:        filepath.Join(dir, fmt.Sprintf("w%d", worker)),
					Agg:        core.AggHolistic,
					WindowKind: window.Custom, // AUR pattern
					FlowKV:     core.Options{WriteBufferBytes: 32 << 10},
				})
			},
		}},
		WatermarkEvery: 50,
	}

	// Synthetic campaign traffic: impressions every ~200ms per campaign;
	// 30% convert to a click 1-25s later. Click events are emitted at
	// their own (later) event times, so the stream stays time-ordered.
	source := func(emit func(spe.Tuple)) {
		rng := rand.New(rand.NewSource(99))
		type pending struct {
			ts  int64
			imp string
		}
		var clicks []pending
		impID := 0
		for now := int64(0); now < 120_000; now += 200 {
			// Flush due clicks first to keep event time non-decreasing.
			kept := clicks[:0]
			for _, c := range clicks {
				if c.ts <= now {
					emit(spe.Tuple{Key: []byte(c.imp),
						Value: append([]byte{byte(spe.Right)}, "click"...), TS: c.ts})
				} else {
					kept = append(kept, c)
				}
			}
			clicks = kept
			camp := fmt.Sprintf("campaign-%d", rng.Intn(8))
			imp := fmt.Sprintf("imp-%04d", impID)
			impID++
			emit(spe.Tuple{Key: []byte(imp),
				Value: append([]byte{byte(spe.Left)}, camp...), TS: now})
			if rng.Intn(100) < 30 {
				delay := int64(1000 + rng.Intn(24_000))
				clicks = append(clicks, pending{ts: now + delay, imp: imp})
			}
		}
	}

	var mu sync.Mutex
	var attributions []string
	res, err := spe.Run(pipe, source, func(t spe.Tuple) {
		mu.Lock()
		attributions = append(attributions, string(t.Value))
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("events processed: %d  (%.0f events/s)\n", res.TuplesIn, res.ThroughputTPS)
	fmt.Printf("attributed clicks: %d\n\n", len(attributions))
	for i, a := range attributions {
		if i == 8 {
			fmt.Printf("  ... and %d more\n", len(attributions)-8)
			break
		}
		fmt.Printf("  %s\n", a)
	}
}
