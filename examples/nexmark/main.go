// NEXMark end-to-end: run any of the paper's eight evaluation queries on
// any state backend and print throughput, result counts and store
// statistics — a one-command version of one Figure 8 bar.
//
//	go run ./examples/nexmark                          # Q11-Median on FlowKV
//	go run ./examples/nexmark -query Q7 -backend rocksdb -events 100000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"flowkv/internal/nexmark"
	"flowkv/internal/nexmark/queries"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
)

func main() {
	var (
		queryName = flag.String("query", "Q11-Median", "one of: Q5, Q5-Append, Q7, Q7-Session, Q8, Q11, Q11-Median, Q12")
		backend   = flag.String("backend", "flowkv", "inmem, flowkv, rocksdb or faster")
		events    = flag.Int("events", 50_000, "NEXMark events to generate")
		windowMs  = flag.Int64("window", 5_000, "window size / session gap (ms)")
		par       = flag.Int("parallelism", 2, "workers per stage")
	)
	flag.Parse()

	dir, err := os.MkdirTemp("", "flowkv-nexmark-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	q, err := queries.Build(*queryName, queries.Config{
		Backend:     statebackend.Kind(*backend),
		BaseDir:     dir,
		Parallelism: *par,
		WindowMs:    *windowMs,
	})
	if err != nil {
		log.Fatal(err)
	}

	eventsList := nexmark.NewGenerator(nexmark.GeneratorConfig{
		Events:       *events,
		InterEventMs: 1,
		Seed:         2023,
	}).All()

	fmt.Printf("running %s (%s pattern) on %s: %d events, window %dms, parallelism %d\n",
		q.Name, queries.PatternOf(q.Name), *backend, *events, *windowMs, *par)

	var sampled []spe.Tuple
	res, err := spe.Run(q.Pipeline, q.Source(eventsList), func(t spe.Tuple) {
		if len(sampled) < 5 {
			sampled = append(sampled, spe.Tuple{Key: append([]byte(nil), t.Key...),
				Value: append([]byte(nil), t.Value...), TS: t.TS})
		}
	})
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}

	fmt.Printf("\nelapsed:     %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput:  %.0f events/s\n", res.ThroughputTPS)
	fmt.Printf("results:     %d window results\n", res.Results)
	if res.FlowKV.Hits+res.FlowKV.Misses > 0 {
		fmt.Printf("flowkv:      prefetch hit ratio %.2f (%d hits / %d misses), %d evictions, %d compactions\n",
			res.FlowKV.HitRatio(), res.FlowKV.Hits, res.FlowKV.Misses,
			res.FlowKV.Evictions, res.FlowKV.Compactions)
	}
	fmt.Println("\nsample results (key value@ts):")
	for _, t := range sampled {
		fmt.Printf("  %-12s %x @ %d\n", t.Key, t.Value, t.TS)
	}
}
