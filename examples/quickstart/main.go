// Quickstart: use FlowKV's composite store directly, the way a stream
// processing engine would — classify the window operation at launch, then
// drive the pattern-specific API at runtime.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"flowkv/internal/core"
	"flowkv/internal/window"
)

func main() {
	dir, err := os.MkdirTemp("", "flowkv-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Launch-time classification (§3.1): a holistic aggregate over
	// fixed windows → the Append and Aligned Read (AAR) store.
	pattern := core.Classify(core.AggHolistic, window.Fixed)
	fmt.Printf("holistic + fixed windows  -> %v store\n", pattern)

	assigner := window.FixedAssigner{Size: 60_000} // 1-minute windows
	store, err := core.Open(core.AggHolistic, window.Fixed, core.Options{
		Dir:      dir,
		Assigner: assigner,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Destroy()

	// 2. Runtime: append tuples with their window as an explicit API
	// argument (Listing 1) — here, click counts for three users across
	// two one-minute windows.
	events := []struct {
		user string
		ts   int64
	}{
		{"alice", 1_000}, {"bob", 2_000}, {"alice", 30_000},
		{"carol", 59_000}, {"bob", 61_000}, {"alice", 65_000},
	}
	for _, e := range events {
		for _, w := range assigner.Assign(e.ts) {
			if err := store.Append([]byte(e.user), []byte("click"), w, e.ts); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 3. Trigger: when event time passes a window's end, drain it with
	// gradual loading — GetWindow returns bounded partitions until nil,
	// then the window's on-disk log is already gone.
	for _, w := range []window.Window{{Start: 0, End: 60_000}, {Start: 60_000, End: 120_000}} {
		counts := map[string]int{}
		for {
			part, err := store.GetWindow(w)
			if err != nil {
				log.Fatal(err)
			}
			if part == nil {
				break
			}
			for _, kv := range part {
				counts[string(kv.Key)] += len(kv.Values)
			}
		}
		fmt.Printf("window %v: %v\n", w, counts)
	}

	// 4. The same API would reject RMW calls: the pattern is fixed at
	// launch.
	if err := store.PutAggregate([]byte("x"), window.Window{}, nil); err != nil {
		fmt.Printf("PutAggregate on an AAR store: %v\n", err)
	}
}
