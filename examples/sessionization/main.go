// Sessionization: the workload class FlowKV's AUR store was built for.
// A clickstream is grouped into per-user session windows (30 s
// inactivity gap) and each session's dwell statistics are computed
// holistically — a textbook Append + Unaligned Read pattern, with
// predictive batch read prefetching the sessions that expire soonest.
//
//	go run ./examples/sessionization
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

const sessionGapMs = 30_000

func main() {
	dir, err := os.MkdirTemp("", "flowkv-sessions-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	assigner := window.SessionAssigner{Gap: sessionGapMs}

	// Session summary: page count and span, computed over the complete
	// click list (holistic → AUR).
	summarize := spe.HolisticFunc(func(user []byte, clicks [][]byte) []byte {
		var first, last int64
		for i, c := range clicks {
			ts, _, err := binio.Varint(c)
			if err != nil {
				continue
			}
			if i == 0 || ts < first {
				first = ts
			}
			if ts > last {
				last = ts
			}
		}
		out := binio.PutUvarint(nil, uint64(len(clicks)))
		return binio.PutVarint(out, last-first)
	})

	pipe := &spe.Pipeline{
		Stages: []spe.Stage{{
			Name:        "sessionize",
			Parallelism: 2,
			Window: &spe.OperatorSpec{
				Assigner: assigner,
				Holistic: summarize,
			},
			NewBackend: func(worker int) (statebackend.Backend, error) {
				return statebackend.Open(statebackend.Config{
					Kind:       statebackend.KindFlowKV,
					Dir:        filepath.Join(dir, fmt.Sprintf("worker-%d", worker)),
					Agg:        core.AggHolistic,
					WindowKind: window.Session,
					Assigner:   assigner,
					// A small write buffer keeps state on disk, as it
					// would be at production scale, so the run exercises
					// the index log and predictive batch read.
					FlowKV: core.Options{WriteBufferBytes: 8 << 10},
				})
			},
		}},
		WatermarkEvery: 100,
	}

	// Synthetic clickstream: 200 users with bursty activity.
	source := func(emit func(spe.Tuple)) {
		rng := rand.New(rand.NewSource(7))
		type userState struct{ next int64 }
		users := make([]userState, 200)
		for now := int64(0); now < 600_000; now += 50 {
			u := rng.Intn(len(users))
			if users[u].next > now && rng.Intn(10) > 0 {
				continue
			}
			// A click burst: 1-8 pages, then idle past the gap.
			burst := 1 + rng.Intn(8)
			for i := 0; i < burst; i++ {
				ts := now + int64(i)*1_000
				emit(spe.Tuple{
					Key:   []byte(fmt.Sprintf("user-%03d", u)),
					Value: binio.PutVarint(nil, ts),
					TS:    ts,
				})
			}
			users[u].next = now + sessionGapMs + int64(rng.Intn(120_000))
		}
	}

	var mu sync.Mutex
	type sess struct {
		user   string
		pages  uint64
		spanMs int64
	}
	var sessions []sess
	res, err := spe.Run(pipe, source, func(t spe.Tuple) {
		pages, n, err := binio.Uvarint(t.Value)
		if err != nil {
			return
		}
		span, _, _ := binio.Varint(t.Value[n:])
		mu.Lock()
		sessions = append(sessions, sess{user: string(t.Key), pages: pages, spanMs: span})
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}

	sort.Slice(sessions, func(i, j int) bool { return sessions[i].pages > sessions[j].pages })
	fmt.Printf("clicks processed:  %d\n", res.TuplesIn)
	fmt.Printf("sessions closed:   %d\n", len(sessions))
	fmt.Printf("throughput:        %.0f clicks/s\n", res.ThroughputTPS)
	fmt.Printf("prefetch hits:     %d  misses: %d  (hit ratio %.2f)\n",
		res.FlowKV.Hits, res.FlowKV.Misses, res.FlowKV.HitRatio())
	fmt.Println("\nlongest sessions:")
	for i, s := range sessions {
		if i == 5 {
			break
		}
		fmt.Printf("  %s  %3d pages over %5.1fs\n", s.user, s.pages, float64(s.spanMs)/1000)
	}
}
