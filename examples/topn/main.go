// Top-N auction monitoring: the paper's Q5 scenario as a standalone
// application — count bids per auction in sliding windows (RMW pattern),
// then keep the busiest auctions per period in a consecutive window
// operation. Mixed access patterns are where FlowKV's composite design
// pays the most (§6.1: "the effectiveness of FlowKV is maximized as the
// state access patterns become complicated").
//
//	go run ./examples/topn
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

const (
	windowMs = 60_000 // 1-minute sliding windows
	slideMs  = 30_000
	topN     = 3
)

func main() {
	dir, err := os.MkdirTemp("", "flowkv-topn-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	countAssigner := window.SlidingAssigner{Size: windowMs, Slide: slideMs}
	topAssigner := window.FixedAssigner{Size: slideMs}

	// Stage 1 (RMW): incremental bid count per auction.
	countBids := spe.IncrementalFunc{
		AddFunc: func(acc []byte, _ spe.Tuple) []byte {
			var c int64
			if acc != nil {
				c, _, _ = binio.Varint(acc)
			}
			return binio.PutVarint(nil, c+1)
		},
		MergeFunc: func(a, b []byte) []byte {
			x, _, _ := binio.Varint(a)
			y, _, _ := binio.Varint(b)
			return binio.PutVarint(nil, x+y)
		},
	}

	// Stage 2 (AAR): holistic top-N over all (auction, count) pairs of
	// the period — kept holistic on purpose: the full list is needed.
	topAuctions := spe.HolisticFunc(func(_ []byte, values [][]byte) []byte {
		type ac struct {
			auction string
			count   int64
		}
		var pairs []ac
		for _, v := range values {
			parts := strings.SplitN(string(v), "=", 2)
			if len(parts) != 2 {
				continue
			}
			n, _ := strconv.ParseInt(parts[1], 10, 64)
			pairs = append(pairs, ac{auction: parts[0], count: n})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].count != pairs[j].count {
				return pairs[i].count > pairs[j].count
			}
			return pairs[i].auction < pairs[j].auction
		})
		if len(pairs) > topN {
			pairs = pairs[:topN]
		}
		var sb strings.Builder
		for i, p := range pairs {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s(%d)", p.auction, p.count)
		}
		return []byte(sb.String())
	})

	newBackend := func(stage string, agg core.AggKind, a window.Assigner) func(int) (statebackend.Backend, error) {
		return func(worker int) (statebackend.Backend, error) {
			return statebackend.Open(statebackend.Config{
				Kind:       statebackend.KindFlowKV,
				Dir:        filepath.Join(dir, stage, fmt.Sprintf("w%d", worker)),
				Agg:        agg,
				WindowKind: a.Kind(),
				Assigner:   a,
				FlowKV:     core.Options{WriteBufferBytes: 128 << 10},
			})
		}
	}

	pipe := &spe.Pipeline{
		Stages: []spe.Stage{
			{
				Name:        "count-bids",
				Parallelism: 4,
				Window:      &spe.OperatorSpec{Assigner: countAssigner, Incremental: countBids},
				NewBackend:  newBackend("count", core.AggIncremental, countAssigner),
			},
			{
				Name:        "pair",
				Parallelism: 1,
				Map: func(t spe.Tuple, emit func(spe.Tuple)) {
					c, _, _ := binio.Varint(t.Value)
					emit(spe.Tuple{
						Key:    []byte("top"),
						Value:  []byte(fmt.Sprintf("%s=%d", t.Key, c)),
						TS:     t.TS,
						WallNS: t.WallNS,
					})
				},
			},
			{
				Name:        "top-n",
				Parallelism: 1,
				Window:      &spe.OperatorSpec{Assigner: topAssigner, Holistic: topAuctions},
				NewBackend:  newBackend("top", core.AggHolistic, topAssigner),
			},
		},
		WatermarkEvery: 100,
	}

	// Synthetic bid stream: 50 auctions, a rotating "hot" auction
	// dominating each minute.
	source := func(emit func(spe.Tuple)) {
		rng := rand.New(rand.NewSource(11))
		for ts := int64(0); ts < 300_000; ts += 5 {
			hot := fmt.Sprintf("auction-%02d", (ts/60_000)%5)
			a := hot
			if rng.Intn(100) < 60 {
				a = fmt.Sprintf("auction-%02d", rng.Intn(50))
			}
			emit(spe.Tuple{Key: []byte(a), TS: ts})
		}
	}

	var mu sync.Mutex
	type period struct {
		ts  int64
		top string
	}
	var periods []period
	res, err := spe.Run(pipe, source, func(t spe.Tuple) {
		mu.Lock()
		periods = append(periods, period{ts: t.TS, top: string(t.Value)})
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(periods, func(i, j int) bool { return periods[i].ts < periods[j].ts })

	fmt.Printf("bids processed: %d  (%.0f bids/s)\n\n", res.TuplesIn, res.ThroughputTPS)
	fmt.Printf("top %d auctions per %ds period:\n", topN, slideMs/1000)
	for _, p := range periods {
		fmt.Printf("  t=%4ds  %s\n", (p.ts+1)/1000, p.top)
	}
}
