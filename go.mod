module flowkv

go 1.22
