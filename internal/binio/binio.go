// Package binio provides the binary encoding primitives shared by every
// persistent store in this repository: little-endian integers, unsigned
// varints, length-prefixed byte frames, and CRC-checked records.
//
// All stores (FlowKV's AAR/AUR/RMW stores, the LSM baseline, and the
// hash-log baseline) serialize through this package so that on-disk
// corruption handling and framing behave identically across systems.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt reports a record whose checksum or framing failed to verify.
var ErrCorrupt = errors.New("binio: corrupt record")

// ErrShortBuffer reports a decode attempt against insufficient bytes.
var ErrShortBuffer = errors.New("binio: short buffer")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C (Castagnoli) checksum of b, the same
// polynomial RocksDB and many storage systems use for record integrity.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ChecksumUpdate extends a running CRC-32C with p, so large files can be
// checksummed in streaming chunks. ChecksumUpdate(0, b) == Checksum(b).
func ChecksumUpdate(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// PutUint32 appends v to dst in little-endian order.
func PutUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// PutUint64 appends v to dst in little-endian order.
func PutUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint32 decodes a little-endian uint32 from the front of b.
func Uint32(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint32(b), nil
}

// Uint64 decodes a little-endian uint64 from the front of b.
func Uint64(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(b), nil
}

// PutUvarint appends v to dst as an unsigned varint.
func PutUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes an unsigned varint from the front of b, returning the
// value and the number of bytes consumed.
func Uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrShortBuffer
	}
	return v, n, nil
}

// PutVarint appends v to dst as a zig-zag signed varint.
func PutVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// Varint decodes a signed varint from the front of b, returning the value
// and the number of bytes consumed.
func Varint(b []byte) (int64, int, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, 0, ErrShortBuffer
	}
	return v, n, nil
}

// PutBytes appends a length-prefixed copy of p to dst.
func PutBytes(dst, p []byte) []byte {
	dst = PutUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// Bytes decodes a length-prefixed byte slice from the front of b. The
// returned slice aliases b; callers that retain it must copy.
func Bytes(b []byte) ([]byte, int, error) {
	n, sz, err := Uvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(b)-sz) < n {
		return nil, 0, ErrShortBuffer
	}
	return b[sz : sz+int(n)], sz + int(n), nil
}

// PutString appends a length-prefixed copy of s to dst.
func PutString(dst []byte, s string) []byte {
	dst = PutUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// String decodes a length-prefixed string from the front of b.
func String(b []byte) (string, int, error) {
	p, n, err := Bytes(b)
	if err != nil {
		return "", 0, err
	}
	return string(p), n, nil
}

// Record framing: every record written through AppendRecord is laid out as
//
//	crc32c(uint32) | length(uvarint) | payload
//
// which allows a reader to detect torn tails after a crash and stop at the
// first bad record, the standard recovery discipline for append-only logs.

// AppendRecord appends a framed, checksummed record holding payload to dst.
func AppendRecord(dst, payload []byte) []byte {
	dst = PutUint32(dst, Checksum(payload))
	dst = PutUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// RecordOverhead returns the framing overhead in bytes for a payload of
// length n.
func RecordOverhead(n int) int {
	var tmp [binary.MaxVarintLen64]byte
	return 4 + binary.PutUvarint(tmp[:], uint64(n))
}

// ReadRecord decodes one framed record from the front of b. It returns the
// payload (aliasing b) and the total number of bytes consumed. A checksum
// mismatch yields ErrCorrupt; a truncated frame yields ErrShortBuffer.
func ReadRecord(b []byte) ([]byte, int, error) {
	crc, err := Uint32(b)
	if err != nil {
		return nil, 0, err
	}
	n, sz, err := Uvarint(b[4:])
	if err != nil {
		return nil, 0, err
	}
	head := 4 + sz
	if uint64(len(b)-head) < n {
		return nil, 0, ErrShortBuffer
	}
	payload := b[head : head+int(n)]
	if Checksum(payload) != crc {
		return nil, 0, ErrCorrupt
	}
	return payload, head + int(n), nil
}

// RecordWriter streams framed records to an io.Writer, tracking the byte
// offset of each record so callers can build indexes while writing.
type RecordWriter struct {
	w   io.Writer
	off int64
	buf []byte
}

// NewRecordWriter returns a RecordWriter positioned at offset off of w.
func NewRecordWriter(w io.Writer, off int64) *RecordWriter {
	return &RecordWriter{w: w, off: off}
}

// Offset returns the file offset at which the next record will begin.
func (rw *RecordWriter) Offset() int64 { return rw.off }

// Write appends one framed record and returns the offset at which it was
// written and its total on-disk length.
func (rw *RecordWriter) Write(payload []byte) (off int64, n int, err error) {
	rw.buf = AppendRecord(rw.buf[:0], payload)
	off = rw.off
	if _, err = rw.w.Write(rw.buf); err != nil {
		return 0, 0, fmt.Errorf("binio: write record: %w", err)
	}
	rw.off += int64(len(rw.buf))
	return off, len(rw.buf), nil
}

// RecordScanner iterates framed records from an io.Reader. It buffers
// internally and stops cleanly at EOF or at the first corrupt/torn record.
type RecordScanner struct {
	r      io.Reader
	buf    []byte
	start  int
	end    int
	off    int64
	err    error
	record []byte
}

// NewRecordScanner returns a scanner reading framed records from r,
// treating the first byte of r as file offset base.
func NewRecordScanner(r io.Reader, base int64) *RecordScanner {
	return &RecordScanner{r: r, buf: make([]byte, 64*1024), off: base}
}

// Scan advances to the next record, reporting false at EOF or error.
func (s *RecordScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		payload, n, err := ReadRecord(s.buf[s.start:s.end])
		if err == nil {
			s.record = payload
			s.start += n
			s.off += int64(n)
			return true
		}
		if err == ErrCorrupt {
			s.err = ErrCorrupt
			return false
		}
		// Short buffer: compact and refill.
		if s.start > 0 {
			copy(s.buf, s.buf[s.start:s.end])
			s.end -= s.start
			s.start = 0
		}
		if s.end == len(s.buf) {
			grown := make([]byte, 2*len(s.buf))
			copy(grown, s.buf[:s.end])
			s.buf = grown
		}
		n, rerr := s.r.Read(s.buf[s.end:])
		s.end += n
		if n == 0 {
			if rerr == io.EOF || rerr == nil {
				if s.end > s.start {
					// Torn tail after crash: ignore trailing garbage.
					s.err = io.ErrUnexpectedEOF
				}
				return false
			}
			s.err = rerr
			return false
		}
	}
}

// Record returns the payload of the record most recently scanned. The
// slice is only valid until the next call to Scan.
func (s *RecordScanner) Record() []byte { return s.record }

// Offset returns the file offset one byte past the most recent record.
func (s *RecordScanner) Offset() int64 { return s.off }

// Err returns the first error encountered, excluding clean EOF. A torn
// final record surfaces as io.ErrUnexpectedEOF, which log recovery treats
// as a clean stop.
func (s *RecordScanner) Err() error {
	if s.err == io.ErrUnexpectedEOF {
		return nil
	}
	return s.err
}

// Truncated reports whether the scanner stopped at a torn trailing record.
func (s *RecordScanner) Truncated() bool { return s.err == io.ErrUnexpectedEOF }
