// Package binio provides the binary encoding primitives shared by every
// persistent store in this repository: little-endian integers, unsigned
// varints, length-prefixed byte frames, and CRC-checked records.
//
// All stores (FlowKV's AAR/AUR/RMW stores, the LSM baseline, and the
// hash-log baseline) serialize through this package so that on-disk
// corruption handling and framing behave identically across systems.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorrupt reports a record whose checksum or framing failed to verify.
var ErrCorrupt = errors.New("binio: corrupt record")

// ErrShortBuffer reports a decode attempt against insufficient bytes.
var ErrShortBuffer = errors.New("binio: short buffer")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C (Castagnoli) checksum of b, the same
// polynomial RocksDB and many storage systems use for record integrity.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// ChecksumUpdate extends a running CRC-32C with p, so large files can be
// checksummed in streaming chunks. ChecksumUpdate(0, b) == Checksum(b).
func ChecksumUpdate(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// PutUint32 appends v to dst in little-endian order.
func PutUint32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// PutUint64 appends v to dst in little-endian order.
func PutUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint32 decodes a little-endian uint32 from the front of b.
func Uint32(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint32(b), nil
}

// Uint64 decodes a little-endian uint64 from the front of b.
func Uint64(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(b), nil
}

// PutUvarint appends v to dst as an unsigned varint.
func PutUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// Uvarint decodes an unsigned varint from the front of b, returning the
// value and the number of bytes consumed.
func Uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrShortBuffer
	}
	return v, n, nil
}

// PutVarint appends v to dst as a zig-zag signed varint.
func PutVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// Varint decodes a signed varint from the front of b, returning the value
// and the number of bytes consumed.
func Varint(b []byte) (int64, int, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, 0, ErrShortBuffer
	}
	return v, n, nil
}

// PutBytes appends a length-prefixed copy of p to dst.
func PutBytes(dst, p []byte) []byte {
	dst = PutUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// Bytes decodes a length-prefixed byte slice from the front of b. The
// returned slice aliases b; callers that retain it must copy.
func Bytes(b []byte) ([]byte, int, error) {
	n, sz, err := Uvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if uint64(len(b)-sz) < n {
		return nil, 0, ErrShortBuffer
	}
	return b[sz : sz+int(n)], sz + int(n), nil
}

// PutString appends a length-prefixed copy of s to dst.
func PutString(dst []byte, s string) []byte {
	dst = PutUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// String decodes a length-prefixed string from the front of b.
func String(b []byte) (string, int, error) {
	p, n, err := Bytes(b)
	if err != nil {
		return "", 0, err
	}
	return string(p), n, nil
}

// Record framing. Two frame versions exist:
//
//	v0 (legacy):  crc32c(uint32 LE) | length(uvarint) | payload
//	v1:           marker(0xF7)      | crc32c(uint32 LE) | length(uvarint) | payload
//
// In v0 the CRC covers the payload alone. That leaves a silent-corruption
// hole: a page of zeroes decodes as an endless stream of valid empty
// records (crc=0, len=0, Checksum(nil)=0), so a zeroed block in the middle
// of a log is served as data instead of detected. v1 closes it twice over:
// every frame starts with a nonzero marker byte, and the CRC covers the
// length bytes as well as the payload, so neither a zeroed page nor a
// flipped length byte can survive verification. Writers always emit v1;
// v0 remains readable for files written before the version bump. A file is
// homogeneous — its version is decided at creation (or sniffed at open)
// and every record in it uses that frame.
//
// Both frames allow a reader to detect torn tails after a crash and stop
// at the first bad record, the standard recovery discipline for
// append-only logs.

// FrameVersion selects the record frame layout of a file.
type FrameVersion uint8

const (
	// FrameV0 is the legacy frame: CRC over the payload only, no marker.
	FrameV0 FrameVersion = 0
	// FrameV1 is the current frame: a leading marker byte plus a CRC over
	// the length bytes and the payload.
	FrameV1 FrameVersion = 1
)

// FrameMarker is the first byte of every v1 frame. It is deliberately
// nonzero (a zeroed page can never start a valid v1 record) and an
// unlikely first byte for a v0 frame (it would have to be the low byte of
// the first record's CRC).
const FrameMarker = 0xF7

// FrameError describes a frame that failed verification, carrying the
// expected and observed checksums so operators can tell rot from a torn
// write. It unwraps to ErrCorrupt.
type FrameError struct {
	// Reason is a short description ("bad marker", "crc mismatch", ...).
	Reason string
	// Want and Got are the recorded and recomputed CRC32C values when the
	// failure is a checksum mismatch (both zero otherwise).
	Want, Got uint32
}

func (e *FrameError) Error() string {
	if e.Want != e.Got {
		return fmt.Sprintf("binio: corrupt record: %s (want crc %08x, got %08x)", e.Reason, e.Want, e.Got)
	}
	return fmt.Sprintf("binio: corrupt record: %s", e.Reason)
}

func (e *FrameError) Unwrap() error { return ErrCorrupt }

// AppendRecord appends a legacy (v0) framed record holding payload to dst.
// It remains in use for self-describing metadata blobs (manifests,
// SEGMENTS files) whose encodings carry their own magic; log files use
// AppendRecordV with the file's frame version.
func AppendRecord(dst, payload []byte) []byte {
	dst = PutUint32(dst, Checksum(payload))
	dst = PutUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendRecordV appends a framed, checksummed record in the given frame
// version.
func AppendRecordV(dst, payload []byte, v FrameVersion) []byte {
	if v == FrameV0 {
		return AppendRecord(dst, payload)
	}
	dst = append(dst, FrameMarker)
	var lenb [binary.MaxVarintLen64]byte
	ln := binary.PutUvarint(lenb[:], uint64(len(payload)))
	crc := ChecksumUpdate(Checksum(lenb[:ln]), payload)
	dst = PutUint32(dst, crc)
	dst = append(dst, lenb[:ln]...)
	return append(dst, payload...)
}

// RecordOverhead returns the legacy (v0) framing overhead in bytes for a
// payload of length n.
func RecordOverhead(n int) int {
	var tmp [binary.MaxVarintLen64]byte
	return 4 + binary.PutUvarint(tmp[:], uint64(n))
}

// RecordOverheadV returns the framing overhead in bytes for a payload of
// length n in the given frame version.
func RecordOverheadV(n int, v FrameVersion) int {
	if v == FrameV0 {
		return RecordOverhead(n)
	}
	return 1 + RecordOverhead(n)
}

// ReadRecord decodes one legacy (v0) framed record from the front of b. It
// returns the payload (aliasing b) and the total number of bytes consumed.
// A checksum mismatch yields ErrCorrupt; a truncated frame yields
// ErrShortBuffer.
func ReadRecord(b []byte) ([]byte, int, error) {
	crc, err := Uint32(b)
	if err != nil {
		return nil, 0, err
	}
	n, sz, err := Uvarint(b[4:])
	if err != nil {
		return nil, 0, err
	}
	head := 4 + sz
	if uint64(len(b)-head) < n {
		return nil, 0, ErrShortBuffer
	}
	payload := b[head : head+int(n)]
	if Checksum(payload) != crc {
		return nil, 0, ErrCorrupt
	}
	return payload, head + int(n), nil
}

// ReadRecordV decodes one framed record in the given frame version from
// the front of b. Corruption yields a *FrameError (errors.Is ErrCorrupt)
// carrying the expected-vs-got checksums; a truncated frame yields
// ErrShortBuffer so scanners can distinguish a torn tail from rot.
func ReadRecordV(b []byte, v FrameVersion) ([]byte, int, error) {
	if v == FrameV0 {
		return ReadRecord(b)
	}
	if len(b) < 1 {
		return nil, 0, ErrShortBuffer
	}
	if b[0] != FrameMarker {
		return nil, 0, &FrameError{Reason: fmt.Sprintf("bad frame marker %#02x", b[0])}
	}
	crc, err := Uint32(b[1:])
	if err != nil {
		return nil, 0, err
	}
	n, sz, err := Uvarint(b[5:])
	if err != nil {
		return nil, 0, err
	}
	head := 5 + sz
	if uint64(len(b)-head) < n {
		return nil, 0, ErrShortBuffer
	}
	payload := b[head : head+int(n)]
	// The length bytes and payload are contiguous, so the CRC over
	// (len || payload) is a single pass — two Checksum calls cost ~25%
	// extra on small records from per-call setup.
	got := Checksum(b[5 : head+int(n)])
	if got != crc {
		return nil, 0, &FrameError{Reason: "crc mismatch", Want: crc, Got: got}
	}
	return payload, head + int(n), nil
}

// SniffFrameVersion guesses the frame version of a file from its first
// bytes. An empty prefix (new or empty file) reports v1, the version
// writers emit; a leading FrameMarker reports v1; anything else is a
// legacy v0 file. The guess can be wrong for a v0 file whose first CRC
// byte happens to equal the marker (≈1/256 of legacy files); callers that
// recover real files (logfile open) fall back to a v0 scan when the v1
// read yields nothing.
func SniffFrameVersion(prefix []byte) FrameVersion {
	if len(prefix) == 0 || prefix[0] == FrameMarker {
		return FrameV1
	}
	return FrameV0
}

// RecordWriter streams framed records to an io.Writer, tracking the byte
// offset of each record so callers can build indexes while writing.
type RecordWriter struct {
	w   io.Writer
	off int64
	ver FrameVersion
	buf []byte
}

// NewRecordWriter returns a legacy (v0) RecordWriter positioned at offset
// off of w.
func NewRecordWriter(w io.Writer, off int64) *RecordWriter {
	return NewRecordWriterV(w, off, FrameV0)
}

// NewRecordWriterV returns a RecordWriter emitting frames of version v,
// positioned at offset off of w.
func NewRecordWriterV(w io.Writer, off int64, v FrameVersion) *RecordWriter {
	return &RecordWriter{w: w, off: off, ver: v}
}

// Offset returns the file offset at which the next record will begin.
func (rw *RecordWriter) Offset() int64 { return rw.off }

// Write appends one framed record and returns the offset at which it was
// written and its total on-disk length.
func (rw *RecordWriter) Write(payload []byte) (off int64, n int, err error) {
	rw.buf = AppendRecordV(rw.buf[:0], payload, rw.ver)
	off = rw.off
	if _, err = rw.w.Write(rw.buf); err != nil {
		return 0, 0, fmt.Errorf("binio: write record: %w", err)
	}
	rw.off += int64(len(rw.buf))
	return off, len(rw.buf), nil
}

// RecordScanner iterates framed records from an io.Reader. It buffers
// internally and stops cleanly at EOF or at the first corrupt/torn record.
type RecordScanner struct {
	r      io.Reader
	buf    []byte
	start  int
	end    int
	off    int64
	ver    FrameVersion
	sniff  bool
	err    error
	record []byte
}

// NewRecordScanner returns a scanner reading legacy (v0) framed records
// from r, treating the first byte of r as file offset base.
func NewRecordScanner(r io.Reader, base int64) *RecordScanner {
	return NewRecordScannerV(r, base, FrameV0)
}

// NewRecordScannerV returns a scanner reading frames of version v from r,
// treating the first byte of r as file offset base.
func NewRecordScannerV(r io.Reader, base int64, v FrameVersion) *RecordScanner {
	return &RecordScanner{r: r, buf: make([]byte, 64*1024), off: base, ver: v}
}

// NewRecordScannerSniff returns a scanner that decides the frame version
// from the first byte of the stream (SniffFrameVersion). base must be the
// start of the file for the sniff to be meaningful.
func NewRecordScannerSniff(r io.Reader, base int64) *RecordScanner {
	return &RecordScanner{r: r, buf: make([]byte, 64*1024), off: base, sniff: true}
}

// Version returns the scanner's frame version. For a sniffing scanner the
// value is meaningful only after the first Scan call.
func (s *RecordScanner) Version() FrameVersion { return s.ver }

// Scan advances to the next record, reporting false at EOF or error.
func (s *RecordScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		if s.sniff && s.end > s.start {
			s.ver = SniffFrameVersion(s.buf[s.start:s.end])
			s.sniff = false
		}
		payload, n, err := ReadRecordV(s.buf[s.start:s.end], s.ver)
		if err == nil {
			s.record = payload
			s.start += n
			s.off += int64(n)
			return true
		}
		if errors.Is(err, ErrCorrupt) {
			// A v1 frame can never start with a zero byte, so an all-zero
			// remainder is the classic crash artifact — file size updated,
			// data blocks never flushed — and recovery treats it as a torn
			// tail. Any nonzero garbage (here or later in the stream) is
			// rot, not a tear, and stays a typed corruption.
			if s.ver == FrameV1 && s.restIsZero() {
				s.err = io.ErrUnexpectedEOF
				return false
			}
			s.err = err
			return false
		}
		// Short buffer: compact and refill.
		if s.start > 0 {
			copy(s.buf, s.buf[s.start:s.end])
			s.end -= s.start
			s.start = 0
		}
		if s.end == len(s.buf) {
			grown := make([]byte, 2*len(s.buf))
			copy(grown, s.buf[:s.end])
			s.buf = grown
		}
		n, rerr := s.r.Read(s.buf[s.end:])
		s.end += n
		if n == 0 {
			if rerr == io.EOF || rerr == nil {
				if s.end > s.start {
					// Torn tail after crash: ignore trailing garbage.
					s.err = io.ErrUnexpectedEOF
				}
				return false
			}
			s.err = rerr
			return false
		}
	}
}

// restIsZero reports whether every unconsumed byte — buffered and still
// unread from the underlying reader — is zero. Only called on the corrupt
// path, so draining the reader is fine: the scan is over either way.
func (s *RecordScanner) restIsZero() bool {
	for _, b := range s.buf[s.start:s.end] {
		if b != 0 {
			return false
		}
	}
	chunk := make([]byte, 32*1024)
	for {
		n, err := s.r.Read(chunk)
		for _, b := range chunk[:n] {
			if b != 0 {
				return false
			}
		}
		if err != nil || n == 0 {
			return true
		}
	}
}

// Record returns the payload of the record most recently scanned. The
// slice is only valid until the next call to Scan.
func (s *RecordScanner) Record() []byte { return s.record }

// Offset returns the file offset one byte past the most recent record.
func (s *RecordScanner) Offset() int64 { return s.off }

// Err returns the first error encountered, excluding clean EOF. A torn
// final record surfaces as io.ErrUnexpectedEOF, which log recovery treats
// as a clean stop.
func (s *RecordScanner) Err() error {
	if s.err == io.ErrUnexpectedEOF {
		return nil
	}
	return s.err
}

// Truncated reports whether the scanner stopped at a torn trailing record.
func (s *RecordScanner) Truncated() bool { return s.err == io.ErrUnexpectedEOF }
