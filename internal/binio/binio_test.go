package binio

import (
	"bytes"
	"io"
	"math"
	"testing"
	"testing/quick"
)

func TestUintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 255, 256, math.MaxUint32, math.MaxUint64} {
		b := PutUint64(nil, v)
		got, err := Uint64(b)
		if err != nil {
			t.Fatalf("Uint64(%d): %v", v, err)
		}
		if got != v {
			t.Errorf("Uint64 round trip: got %d want %d", got, v)
		}
	}
	b := PutUint32(nil, 0xdeadbeef)
	got, err := Uint32(b)
	if err != nil || got != 0xdeadbeef {
		t.Errorf("Uint32 round trip: got %x err %v", got, err)
	}
}

func TestUintShortBuffer(t *testing.T) {
	if _, err := Uint32([]byte{1, 2}); err != ErrShortBuffer {
		t.Errorf("Uint32 short: got %v want ErrShortBuffer", err)
	}
	if _, err := Uint64([]byte{1, 2, 3}); err != ErrShortBuffer {
		t.Errorf("Uint64 short: got %v want ErrShortBuffer", err)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		b := PutVarint(nil, v)
		got, n, err := Varint(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(v uint64) bool {
		b := PutUvarint(nil, v)
		got, n, err := Uvarint(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(p []byte, s string) bool {
		b := PutBytes(nil, p)
		b = PutString(b, s)
		gp, n, err := Bytes(b)
		if err != nil || !bytes.Equal(gp, p) {
			return false
		}
		gs, _, err := String(b[n:])
		return err == nil && gs == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesShort(t *testing.T) {
	b := PutUvarint(nil, 100) // claims 100 bytes, provides none
	if _, _, err := Bytes(b); err != ErrShortBuffer {
		t.Errorf("Bytes short: got %v want ErrShortBuffer", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("a"), bytes.Repeat([]byte("xyz"), 1000)}
	var buf []byte
	for _, p := range payloads {
		buf = AppendRecord(buf, p)
	}
	for _, want := range payloads {
		got, n, err := ReadRecord(buf)
		if err != nil {
			t.Fatalf("ReadRecord: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("record mismatch: got %q want %q", got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Errorf("trailing bytes after all records: %d", len(buf))
	}
}

func TestRecordOverheadMatchesAppend(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1 << 20} {
		p := make([]byte, n)
		got := len(AppendRecord(nil, p)) - n
		if got != RecordOverhead(n) {
			t.Errorf("RecordOverhead(%d) = %d, actual framing %d", n, RecordOverhead(n), got)
		}
	}
}

func TestRecordCorruption(t *testing.T) {
	buf := AppendRecord(nil, []byte("hello world"))
	buf[len(buf)-1] ^= 0xff
	if _, _, err := ReadRecord(buf); err != ErrCorrupt {
		t.Errorf("corrupted record: got %v want ErrCorrupt", err)
	}
}

func TestRecordTruncation(t *testing.T) {
	buf := AppendRecord(nil, []byte("hello world"))
	if _, _, err := ReadRecord(buf[:len(buf)-3]); err != ErrShortBuffer {
		t.Errorf("truncated record: got %v want ErrShortBuffer", err)
	}
}

func TestRecordWriterScanner(t *testing.T) {
	var file bytes.Buffer
	rw := NewRecordWriter(&file, 0)
	var offs []int64
	var recs [][]byte
	for i := 0; i < 100; i++ {
		p := bytes.Repeat([]byte{byte(i)}, i*37%512)
		off, n, err := rw.Write(p)
		if err != nil {
			t.Fatalf("Write: %v", err)
		}
		if n != len(p)+RecordOverhead(len(p)) {
			t.Fatalf("record %d: reported len %d", i, n)
		}
		offs = append(offs, off)
		recs = append(recs, p)
	}
	if rw.Offset() != int64(file.Len()) {
		t.Fatalf("writer offset %d, file len %d", rw.Offset(), file.Len())
	}

	sc := NewRecordScanner(bytes.NewReader(file.Bytes()), 0)
	for i, want := range recs {
		if !sc.Scan() {
			t.Fatalf("Scan stopped at record %d: %v", i, sc.Err())
		}
		if !bytes.Equal(sc.Record(), want) {
			t.Errorf("record %d mismatch", i)
		}
		wantEnd := offs[i] + int64(len(want)+RecordOverhead(len(want)))
		if sc.Offset() != wantEnd {
			t.Errorf("record %d: scanner offset %d want %d", i, sc.Offset(), wantEnd)
		}
	}
	if sc.Scan() {
		t.Error("Scan returned true past final record")
	}
	if sc.Err() != nil {
		t.Errorf("scanner err: %v", sc.Err())
	}
}

func TestRecordScannerTornTail(t *testing.T) {
	var file bytes.Buffer
	rw := NewRecordWriter(&file, 0)
	if _, _, err := rw.Write([]byte("complete")); err != nil {
		t.Fatal(err)
	}
	full := file.Len()
	if _, _, err := rw.Write(bytes.Repeat([]byte("torn"), 100)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write of the second record.
	torn := file.Bytes()[:full+7]

	sc := NewRecordScanner(bytes.NewReader(torn), 0)
	if !sc.Scan() {
		t.Fatalf("first record should survive: %v", sc.Err())
	}
	if string(sc.Record()) != "complete" {
		t.Errorf("got %q", sc.Record())
	}
	if sc.Scan() {
		t.Error("torn record should not scan")
	}
	if sc.Err() != nil {
		t.Errorf("torn tail should be a clean stop, got %v", sc.Err())
	}
	if !sc.Truncated() {
		t.Error("Truncated() should report the torn tail")
	}
}

func TestRecordScannerCorruptMiddle(t *testing.T) {
	var file bytes.Buffer
	rw := NewRecordWriter(&file, 0)
	for i := 0; i < 3; i++ {
		if _, _, err := rw.Write([]byte("record")); err != nil {
			t.Fatal(err)
		}
	}
	b := file.Bytes()
	b[len(b)/2] ^= 0xff // corrupt the middle record's payload or frame

	sc := NewRecordScanner(bytes.NewReader(b), 0)
	var n int
	for sc.Scan() {
		n++
	}
	if sc.Err() == nil && n == 3 {
		t.Error("corruption went undetected")
	}
}

func TestRecordScannerLargeRecords(t *testing.T) {
	// Records larger than the scanner's initial buffer force growth.
	var file bytes.Buffer
	rw := NewRecordWriter(&file, 0)
	big := bytes.Repeat([]byte("B"), 300*1024)
	if _, _, err := rw.Write(big); err != nil {
		t.Fatal(err)
	}
	sc := NewRecordScanner(bytes.NewReader(file.Bytes()), 0)
	if !sc.Scan() {
		t.Fatalf("Scan: %v", sc.Err())
	}
	if !bytes.Equal(sc.Record(), big) {
		t.Error("large record mismatch")
	}
}

func TestRecordScannerEmptyInput(t *testing.T) {
	sc := NewRecordScanner(bytes.NewReader(nil), 0)
	if sc.Scan() {
		t.Error("Scan on empty input returned true")
	}
	if sc.Err() != nil {
		t.Errorf("empty input err: %v", sc.Err())
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

func TestRecordScannerReadError(t *testing.T) {
	sc := NewRecordScanner(errReader{io.ErrClosedPipe}, 0)
	if sc.Scan() {
		t.Error("Scan with failing reader returned true")
	}
	if sc.Err() != io.ErrClosedPipe {
		t.Errorf("err = %v, want ErrClosedPipe", sc.Err())
	}
}

func BenchmarkAppendRecord(b *testing.B) {
	payload := bytes.Repeat([]byte("v"), 84) // NEXMark bid-sized value
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], payload)
	}
}

// BenchmarkScanRecordsFramed compares sequential scan cost across
// frame versions: legacy v0, marker-prefixed v1, and the sniffing
// scanner that accepts both. The v1 marker costs one byte and one
// compare per record; the framing bump's acceptance bound is <= 5%
// read overhead over v0.
func BenchmarkScanRecordsFramed(b *testing.B) {
	payload := bytes.Repeat([]byte("v"), 84)
	for _, bench := range []struct {
		name  string
		ver   FrameVersion
		sniff bool
	}{
		{"v0", FrameV0, false},
		{"v1", FrameV1, false},
		{"sniff-v1", FrameV1, true},
	} {
		var file bytes.Buffer
		rw := NewRecordWriterV(&file, 0, bench.ver)
		for i := 0; i < 10000; i++ {
			if _, _, err := rw.Write(payload); err != nil {
				b.Fatal(err)
			}
		}
		data := file.Bytes()
		b.Run(bench.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var sc *RecordScanner
				if bench.sniff {
					sc = NewRecordScannerSniff(bytes.NewReader(data), 0)
				} else {
					sc = NewRecordScannerV(bytes.NewReader(data), 0, bench.ver)
				}
				n := 0
				for sc.Scan() {
					n++
				}
				if err := sc.Err(); err != nil || n != 10000 {
					b.Fatalf("records %d, err %v", n, err)
				}
			}
		})
	}
}

func BenchmarkScanRecords(b *testing.B) {
	var file bytes.Buffer
	rw := NewRecordWriter(&file, 0)
	payload := bytes.Repeat([]byte("v"), 84)
	for i := 0; i < 10000; i++ {
		if _, _, err := rw.Write(payload); err != nil {
			b.Fatal(err)
		}
	}
	data := file.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewRecordScanner(bytes.NewReader(data), 0)
		for sc.Scan() {
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
