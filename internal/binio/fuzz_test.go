package binio

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode throws arbitrary bytes at every decoder in the package. The
// properties checked are the ones the stores rely on when reading logs
// written by a crashed or corrupted process:
//
//   - no decoder panics, whatever the input;
//   - a successful decode consumes a positive number of bytes within the
//     input (so scanning loops always make progress);
//   - a successfully decoded value re-encodes to something that decodes
//     back to the same value (decode∘encode = id on the value domain);
//   - the record scanner terminates with monotonically increasing offsets.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("hello")))
	f.Add(AppendRecord(AppendRecord(nil, []byte("a")), bytes.Repeat([]byte("b"), 300)))
	f.Add(PutBytes(PutUvarint(PutUint32(nil, 7), 1<<40), []byte("payload")))
	f.Add(PutVarint(PutString(nil, "key"), -12345))
	// A valid record with its checksum flipped.
	bad := AppendRecord(nil, []byte("flip"))
	bad[0] ^= 0xff
	f.Add(bad)
	// A record claiming a huge payload length.
	f.Add(PutUvarint(PutUint32(nil, 0), 1<<62))

	f.Fuzz(func(t *testing.T, b []byte) {
		if payload, n, err := ReadRecord(b); err == nil {
			if n <= 0 || n > len(b) {
				t.Fatalf("ReadRecord consumed %d of %d bytes", n, len(b))
			}
			re := AppendRecord(nil, payload)
			p2, n2, err2 := ReadRecord(re)
			if err2 != nil || n2 != len(re) || !bytes.Equal(p2, payload) {
				t.Fatalf("record round trip: payload %x -> %x, n=%d/%d, err=%v",
					payload, p2, n2, len(re), err2)
			}
		}
		if v, n, err := Uvarint(b); err == nil {
			if n <= 0 || n > len(b) {
				t.Fatalf("Uvarint consumed %d of %d bytes", n, len(b))
			}
			if v2, _, err2 := Uvarint(PutUvarint(nil, v)); err2 != nil || v2 != v {
				t.Fatalf("uvarint round trip: %d -> %d, err=%v", v, v2, err2)
			}
		}
		if v, n, err := Varint(b); err == nil {
			if n <= 0 || n > len(b) {
				t.Fatalf("Varint consumed %d of %d bytes", n, len(b))
			}
			if v2, _, err2 := Varint(PutVarint(nil, v)); err2 != nil || v2 != v {
				t.Fatalf("varint round trip: %d -> %d, err=%v", v, v2, err2)
			}
		}
		if p, n, err := Bytes(b); err == nil {
			if n <= 0 || n > len(b) {
				t.Fatalf("Bytes consumed %d of %d bytes", n, len(b))
			}
			if p2, _, err2 := Bytes(PutBytes(nil, p)); err2 != nil || !bytes.Equal(p2, p) {
				t.Fatalf("bytes round trip: %x -> %x, err=%v", p, p2, err2)
			}
		}
		if s, n, err := String(b); err == nil {
			if n <= 0 || n > len(b) {
				t.Fatalf("String consumed %d of %d bytes", n, len(b))
			}
			if s2, _, err2 := String(PutString(nil, s)); err2 != nil || s2 != s {
				t.Fatalf("string round trip: %q -> %q, err=%v", s, s2, err2)
			}
		}
		if v, err := Uint32(b); err == nil {
			if v2, err2 := Uint32(PutUint32(nil, v)); err2 != nil || v2 != v {
				t.Fatalf("uint32 round trip: %d -> %d, err=%v", v, v2, err2)
			}
		}
		if v, err := Uint64(b); err == nil {
			if v2, err2 := Uint64(PutUint64(nil, v)); err2 != nil || v2 != v {
				t.Fatalf("uint64 round trip: %d -> %d, err=%v", v, v2, err2)
			}
		}

		sc := NewRecordScanner(bytes.NewReader(b), 0)
		prev := int64(0)
		for sc.Scan() {
			if sc.Offset() <= prev {
				t.Fatalf("scanner offset stuck at %d", sc.Offset())
			}
			prev = sc.Offset()
		}
		if sc.Err() != nil && !errors.Is(sc.Err(), ErrCorrupt) {
			t.Fatalf("scanner error on in-memory input: %v", sc.Err())
		}
	})
}

// FuzzDecodeRecordFrame drives the v1 checksummed frame decoder and the
// sniffing scanner with arbitrary bytes. The properties are the ones the
// scrubber and recovery paths depend on:
//
//   - ReadRecordV never panics and never accepts a frame whose CRC does
//     not cover its bytes (a successful decode must re-encode to a frame
//     that decodes to the same payload);
//   - every failure is either ErrShort (feed more bytes) or a typed
//     corruption matching errors.Is(err, ErrCorrupt) — nothing else;
//   - the sniffing scanner terminates with increasing offsets whatever
//     version it picks, and only stops on EOF, a torn tail, or typed
//     corruption.
func FuzzDecodeRecordFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecordV(nil, []byte("hello"), FrameV1))
	f.Add(AppendRecordV(AppendRecordV(nil, []byte("a"), FrameV1), bytes.Repeat([]byte("b"), 300), FrameV1))
	// Marker present but CRC flipped.
	bad := AppendRecordV(nil, []byte("flip"), FrameV1)
	bad[1] ^= 0xff
	f.Add(bad)
	// Payload bit-flip after a clean first frame.
	two := AppendRecordV(AppendRecordV(nil, []byte("ok"), FrameV1), []byte("rot"), FrameV1)
	two[len(two)-1] ^= 0x01
	f.Add(two)
	// Truncated frame (torn tail) and zero tail after a clean frame.
	whole := AppendRecordV(nil, []byte("torn"), FrameV1)
	f.Add(whole[:len(whole)-2])
	f.Add(append(AppendRecordV(nil, []byte("zeros"), FrameV1), make([]byte, 37)...))
	// v1 marker byte leading legacy v0 bytes (the 1/256 collision).
	v0 := AppendRecord(nil, []byte("legacy"))
	f.Add(append([]byte{byte(FrameMarker)}, v0...))
	// Huge claimed length.
	f.Add(append([]byte{byte(FrameMarker), 1, 2, 3, 4}, PutUvarint(nil, 1<<62)...))

	f.Fuzz(func(t *testing.T, b []byte) {
		payload, n, err := ReadRecordV(b, FrameV1)
		switch {
		case err == nil:
			if n <= 0 || n > len(b) {
				t.Fatalf("ReadRecordV consumed %d of %d bytes", n, len(b))
			}
			re := AppendRecordV(nil, payload, FrameV1)
			p2, n2, err2 := ReadRecordV(re, FrameV1)
			if err2 != nil || n2 != len(re) || !bytes.Equal(p2, payload) {
				t.Fatalf("frame round trip: payload %x -> %x, n=%d/%d, err=%v",
					payload, p2, n2, len(re), err2)
			}
		case errors.Is(err, ErrShortBuffer) || errors.Is(err, ErrCorrupt):
		default:
			t.Fatalf("ReadRecordV: untyped error %v", err)
		}

		for _, mk := range []func() *RecordScanner{
			func() *RecordScanner { return NewRecordScannerV(bytes.NewReader(b), 0, FrameV1) },
			func() *RecordScanner { return NewRecordScannerSniff(bytes.NewReader(b), 0) },
		} {
			sc := mk()
			prev := int64(0)
			for sc.Scan() {
				if sc.Offset() <= prev {
					t.Fatalf("scanner offset stuck at %d", sc.Offset())
				}
				prev = sc.Offset()
			}
			if sc.Err() != nil && !errors.Is(sc.Err(), ErrCorrupt) {
				t.Fatalf("scanner error on in-memory input: %v", sc.Err())
			}
		}
	})
}
