// Package ckpt holds the segment machinery shared by the three store
// patterns' incremental (delta) checkpoints. A delta checkpoint records
// each logical store file as an ordered list of sealed segment files:
// segments inherited from the previous checkpoint generation are
// hard-linked into the new directory (copy fallback when the filesystem
// refuses links), and only the bytes written since the last barrier are
// materialized as a fresh tail segment. The per-instance SEGMENTS file
// describes the mapping — logical name, a file epoch identifying the
// live file the segments were cut from, and each segment's length and
// CRC32C — so a later checkpoint can decide reuse against it and a
// restore can concatenate the segments back into live logs. Every
// checkpoint directory stays physically self-contained: links keep the
// shared inodes alive even after the parent generation is deleted.
package ckpt

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path/filepath"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
)

// MetaName is the per-instance segment-manifest file inside a segmented
// checkpoint directory. Its presence is what distinguishes a segmented
// (v2) instance snapshot from a legacy flat one.
const MetaName = "SEGMENTS"

// metaMagic versions the SEGMENTS encoding.
const metaMagic = "flowkv-segments-v1"

// ErrBadMeta reports an undecodable or inconsistent SEGMENTS file.
var ErrBadMeta = errors.New("ckpt: invalid SEGMENTS file")

// Segment is one sealed slice of a logical file, stored as its own file
// inside the instance checkpoint directory.
type Segment struct {
	// Name is the segment's file name (relative to the instance dir).
	Name string
	// Len is the segment's exact byte length.
	Len int64
	// CRC is the CRC32C of the segment's contents.
	CRC uint32
}

// FileState describes one logical store file as an ordered segment list.
type FileState struct {
	// Logical is the live file name the segments reassemble into.
	Logical string
	// Epoch identifies the live file instance the segments were cut
	// from. A checkpoint may extend a parent's segment list only when
	// the live file's epoch still matches the parent's recorded epoch;
	// a mismatch (the file was dropped and recreated, or the store was
	// reopened without a restore) forces a full copy of that file.
	Epoch uint64
	// Segments is the ordered list; their concatenation is the logical
	// file's content at the cut.
	Segments []Segment
}

// TotalLen returns the logical file's length (the sum of segment lengths).
func (f *FileState) TotalLen() int64 {
	var n int64
	for _, s := range f.Segments {
		n += s.Len
	}
	return n
}

// Meta is the decoded SEGMENTS file of one instance checkpoint.
type Meta struct {
	// CutID identifies this checkpoint's cut. RMW delta checkpoints
	// diff against in-memory dirty state, so they additionally require
	// the parent's CutID to match the instance's last committed cut.
	CutID uint64
	// Files lists every logical file, sorted by logical name.
	Files []FileState
}

// File returns the state of a logical file, or nil if absent. A nil
// receiver (no parent checkpoint) returns nil for every name.
func (m *Meta) File(logical string) *FileState {
	if m == nil {
		return nil
	}
	for i := range m.Files {
		if m.Files[i].Logical == logical {
			return &m.Files[i]
		}
	}
	return nil
}

// Rand64 returns a random epoch / cut identifier. Uniqueness is
// probabilistic; epochs only need to avoid colliding across the handful
// of file generations a checkpoint chain can reference.
func Rand64() uint64 {
	return rand.Uint64()
}

// Encode serializes the meta: a header record then one record per file,
// CRC-framed through binio.
func (m *Meta) Encode() []byte {
	var buf, payload []byte
	payload = binio.PutString(payload[:0], metaMagic)
	payload = binio.PutUvarint(payload, m.CutID)
	buf = binio.AppendRecord(buf, payload)
	for _, f := range m.Files {
		payload = binio.PutString(payload[:0], f.Logical)
		payload = binio.PutUvarint(payload, f.Epoch)
		payload = binio.PutUvarint(payload, uint64(len(f.Segments)))
		for _, s := range f.Segments {
			payload = binio.PutString(payload, s.Name)
			payload = binio.PutUvarint(payload, uint64(s.Len))
			payload = binio.PutUint32(payload, s.CRC)
		}
		buf = binio.AppendRecord(buf, payload)
	}
	return buf
}

// DecodeMeta parses a SEGMENTS file. It never panics, whatever the
// input; malformed bytes yield ErrBadMeta.
func DecodeMeta(b []byte) (*Meta, error) {
	bad := func(why string) (*Meta, error) {
		return nil, fmt.Errorf("%w: %s", ErrBadMeta, why)
	}
	header, n, err := binio.ReadRecord(b)
	if err != nil {
		return bad("corrupt header")
	}
	b = b[n:]
	magic, hn, err := binio.String(header)
	if err != nil || magic != metaMagic {
		return bad("bad magic")
	}
	header = header[hn:]
	cut, _, err := binio.Uvarint(header)
	if err != nil {
		return bad("truncated header")
	}
	m := &Meta{CutID: cut}
	for len(b) > 0 {
		rec, n, err := binio.ReadRecord(b)
		if err != nil {
			return bad("corrupt file record")
		}
		b = b[n:]
		logical, fn, err := binio.String(rec)
		if err != nil {
			return bad("truncated file record")
		}
		rec = rec[fn:]
		epoch, fn, err := binio.Uvarint(rec)
		if err != nil {
			return bad("truncated file record")
		}
		rec = rec[fn:]
		count, fn, err := binio.Uvarint(rec)
		if err != nil {
			return bad("truncated file record")
		}
		rec = rec[fn:]
		if count > uint64(len(rec)) {
			return bad("segment count exceeds record")
		}
		fs := FileState{Logical: logical, Epoch: epoch}
		for i := uint64(0); i < count; i++ {
			name, sn, err := binio.String(rec)
			if err != nil {
				return bad("truncated segment")
			}
			rec = rec[sn:]
			slen, sn, err := binio.Uvarint(rec)
			if err != nil {
				return bad("truncated segment")
			}
			rec = rec[sn:]
			if len(rec) < 4 {
				return bad("truncated segment")
			}
			crc, err := binio.Uint32(rec[:4])
			if err != nil {
				return bad("truncated segment")
			}
			rec = rec[4:]
			fs.Segments = append(fs.Segments, Segment{Name: name, Len: int64(slen), CRC: crc})
		}
		m.Files = append(m.Files, fs)
	}
	return m, nil
}

// WriteMeta writes the SEGMENTS file into dir without fsyncing it (the
// caller's group-commit sync window covers it) and returns its encoded
// bytes so the caller can manifest them without re-reading.
func WriteMeta(fsys faultfs.FS, dir string, m *Meta) ([]byte, error) {
	buf := m.Encode()
	f, err := fsys.Create(filepath.Join(dir, MetaName))
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return buf, nil
}

// WriteExtra writes an auxiliary (non-segmented, rewritten every
// checkpoint) file into dir without fsyncing it and folds it into res:
// manifest entry, sync-window entry, and copied-byte accounting.
func WriteExtra(fsys faultfs.FS, dir, name string, buf []byte, res *Result) error {
	f, err := fsys.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	res.Entries = append(res.Entries, Entry{
		Path: name,
		Size: int64(len(buf)),
		CRC:  binio.Checksum(buf),
	})
	res.NeedSync = append(res.NeedSync, filepath.Join(dir, name))
	res.CopiedBytes += int64(len(buf))
	return nil
}

// FinishMeta writes dir's SEGMENTS file and folds it into res: a
// manifest entry with the encoded bytes' size and CRC, and a sync-window
// entry, since the manifest must be durable before the checkpoint's
// commit rename.
func FinishMeta(fsys faultfs.FS, dir string, m *Meta, res *Result) error {
	buf, err := WriteMeta(fsys, dir, m)
	if err != nil {
		return err
	}
	res.Entries = append(res.Entries, Entry{
		Path: MetaName,
		Size: int64(len(buf)),
		CRC:  binio.Checksum(buf),
	})
	res.NeedSync = append(res.NeedSync, filepath.Join(dir, MetaName))
	return nil
}

// ReadMeta loads and decodes dir's SEGMENTS file. A missing file returns
// (nil, nil): the directory holds a legacy flat snapshot.
func ReadMeta(fsys faultfs.FS, dir string) (*Meta, error) {
	b, err := fsys.ReadFile(filepath.Join(dir, MetaName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeMeta(b)
}

// Entry is one file of an instance checkpoint as the top-level MANIFEST
// will record it: path relative to the instance directory, exact size,
// and content CRC32C.
type Entry struct {
	Path string
	Size int64
	CRC  uint32
}

// Result is what an instance's delta checkpoint hands back to the
// composite store: the manifest entries for every file it placed in the
// directory, the files that still need an fsync before the commit rename
// (newly written or copy-fallback data; linked files are already
// durable), byte accounting for the Stats counters, and an optional
// Commit hook the store layer invokes only after the checkpoint's
// MANIFEST rename lands (RMW uses it to retire the dirty set it diffed).
type Result struct {
	Entries     []Entry
	NeedSync    []string
	LinkedBytes int64
	CopiedBytes int64
	Commit      func()
}

// CopyRange copies src's bytes [off, off+n) into a fresh file at dst,
// returning the CRC32C of the written bytes. The destination is not
// fsynced; the caller adds it to the group-commit sync window.
func CopyRange(fsys faultfs.FS, src string, off, n int64, dst string) (uint32, error) {
	in, err := fsys.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := fsys.Create(dst)
	if err != nil {
		return 0, err
	}
	crc := uint32(0)
	buf := make([]byte, 256<<10)
	remaining := n
	pos := off
	for remaining > 0 {
		chunk := int64(len(buf))
		if chunk > remaining {
			chunk = remaining
		}
		if _, err := in.ReadAt(buf[:chunk], pos); err != nil {
			out.Close()
			return 0, err
		}
		if _, err := out.Write(buf[:chunk]); err != nil {
			out.Close()
			return 0, err
		}
		crc = binio.ChecksumUpdate(crc, buf[:chunk])
		pos += chunk
		remaining -= chunk
	}
	if err := out.Close(); err != nil {
		return 0, err
	}
	return crc, nil
}

// LinkSegments carries a parent checkpoint's segments for one logical
// file into dir, hard-linking each (copy fallback), and folds the
// outcome into res: linked segments count as LinkedBytes and need no
// sync; copied ones count as CopiedBytes and join the sync window.
func LinkSegments(fsys faultfs.FS, parentDir, dir string, segs []Segment, res *Result) error {
	for _, seg := range segs {
		src := filepath.Join(parentDir, seg.Name)
		dst := filepath.Join(dir, seg.Name)
		linked, err := faultfs.LinkOrCopy(fsys, src, dst)
		if err != nil {
			return err
		}
		if linked {
			res.LinkedBytes += seg.Len
		} else {
			res.CopiedBytes += seg.Len
			res.NeedSync = append(res.NeedSync, dst)
		}
		res.Entries = append(res.Entries, Entry{Path: seg.Name, Size: seg.Len, CRC: seg.CRC})
	}
	return nil
}

// SegmentName names the segment of a logical file starting at offset
// off. Offsets are zero-padded so lexical order is offset order.
func SegmentName(logical string, off int64) string {
	return fmt.Sprintf("%s.seg-%012d", logical, off)
}

// Materialize concatenates a logical file's segments from dir into a
// fresh file at dst, verifying each segment's recorded length. The
// result is not fsynced: it becomes a live log whose durability the
// store's own sync discipline governs.
func Materialize(fsys faultfs.FS, dir string, fstate *FileState, dst string) error {
	out, err := fsys.Create(dst)
	if err != nil {
		return err
	}
	for _, seg := range fstate.Segments {
		in, err := fsys.Open(filepath.Join(dir, seg.Name))
		if err != nil {
			out.Close()
			return err
		}
		n, err := io.Copy(out, in)
		in.Close()
		if err != nil {
			out.Close()
			return err
		}
		if n != seg.Len {
			out.Close()
			return fmt.Errorf("%w: segment %s is %d bytes, SEGMENTS says %d",
				ErrBadMeta, seg.Name, n, seg.Len)
		}
	}
	return out.Close()
}
