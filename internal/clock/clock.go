// Package clock is the time seam used by watchdogs, pacers and probers:
// production code runs against System (the real time package), while
// tests substitute a Fake whose Advance method fires timers
// deterministically — stall and deadline tests then run on virtual time
// instead of wall-clock sleeps.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts the subset of the time package the repository's
// background loops and deadlines use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one value once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// NewTicker returns a ticker delivering on every d interval until
	// stopped.
	NewTicker(d time.Duration) Ticker
}

// Ticker is the Clock-level view of time.Ticker.
type Ticker interface {
	// C returns the delivery channel.
	C() <-chan time.Time
	// Stop halts deliveries. It does not close the channel.
	Stop()
}

// System is the production clock, a direct passthrough to the time
// package.
var System Clock = systemClock{}

type systemClock struct{}

func (systemClock) Now() time.Time                         { return time.Now() }
func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (systemClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (systemClock) NewTicker(d time.Duration) Ticker       { return systemTicker{time.NewTicker(d)} }

type systemTicker struct{ t *time.Ticker }

func (t systemTicker) C() <-chan time.Time { return t.t.C }
func (t systemTicker) Stop()               { t.t.Stop() }

// Or returns c, or System when c is nil — the one-line default every
// option struct with an optional Clock field uses.
func Or(c Clock) Clock {
	if c == nil {
		return System
	}
	return c
}

// Fake is a manually advanced clock for deterministic tests. Timers
// (After, Sleep, tickers) fire only when Advance moves the virtual time
// across their deadline; there is no background goroutine, so a test
// that never advances never fires anything.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	when   time.Time
	ch     chan time.Time
	period time.Duration // 0 for one-shot
	stop   bool
}

// NewFake returns a Fake starting at a fixed, arbitrary epoch.
func NewFake() *Fake {
	return &Fake{now: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current virtual time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After returns a channel that fires when Advance crosses now+d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{when: f.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- f.now
		return t.ch
	}
	f.timers = append(f.timers, t)
	return t.ch
}

// Sleep blocks until Advance crosses now+d. A Sleep on a Fake must have
// a concurrent Advance, or it blocks forever — which is the point: a
// test owns every instant.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// NewTicker returns a ticker firing every period of virtual time.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTimer{when: f.now.Add(d), ch: make(chan time.Time, 1), period: d}
	f.timers = append(f.timers, t)
	return t
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() { t.stop = true }

// Advance moves the virtual time forward by d, firing every timer and
// ticker whose deadline is crossed, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		var next *fakeTimer
		for _, t := range f.timers {
			if t.stop || t.when.After(target) {
				continue
			}
			if next == nil || t.when.Before(next.when) {
				next = t
			}
		}
		if next == nil {
			break
		}
		f.now = next.when
		select {
		case next.ch <- f.now:
		default: // ticker tick not yet consumed; drop, like time.Ticker
		}
		if next.period > 0 {
			next.when = next.when.Add(next.period)
		} else {
			next.stop = true
		}
	}
	f.now = target
	live := f.timers[:0]
	for _, t := range f.timers {
		if !t.stop {
			live = append(live, t)
		}
	}
	f.timers = live
	f.mu.Unlock()
}
