package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemBasics(t *testing.T) {
	t0 := System.Now()
	System.Sleep(time.Millisecond)
	if !System.Now().After(t0) {
		t.Fatalf("system clock did not advance across Sleep")
	}
	select {
	case <-System.After(0):
	case <-time.After(time.Second):
		t.Fatalf("System.After(0) never fired")
	}
	tk := System.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(time.Second):
		t.Fatalf("system ticker never ticked")
	}
	if Or(nil) != System {
		t.Fatalf("Or(nil) != System")
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake()
	ch := f.After(10 * time.Millisecond)
	select {
	case <-ch:
		t.Fatalf("After fired before Advance")
	default:
	}
	f.Advance(9 * time.Millisecond)
	select {
	case <-ch:
		t.Fatalf("After fired before its deadline")
	default:
	}
	f.Advance(time.Millisecond)
	select {
	case at := <-ch:
		if got := at.Sub(NewFake().Now()); got != 10*time.Millisecond {
			t.Fatalf("fired at +%v, want +10ms", got)
		}
	default:
		t.Fatalf("After did not fire once Advance crossed the deadline")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake()
	select {
	case <-f.After(0):
	default:
		t.Fatalf("After(0) did not fire immediately")
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake()
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Sleep(5 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register its timer, then release it.
	for {
		f.mu.Lock()
		n := len(f.timers)
		f.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	f.Advance(5 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Sleep did not unblock after Advance")
	}
	wg.Wait()
}

func TestFakeTickerFiresEveryPeriod(t *testing.T) {
	f := NewFake()
	tk := f.NewTicker(3 * time.Millisecond)
	defer tk.Stop()
	ticks := 0
	for i := 0; i < 3; i++ {
		f.Advance(3 * time.Millisecond)
		select {
		case <-tk.C():
			ticks++
		default:
			t.Fatalf("ticker missed period %d", i)
		}
	}
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	tk.Stop()
	f.Advance(10 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatalf("stopped ticker still ticked")
	default:
	}
}

func TestFakeAdvanceFiresInDeadlineOrder(t *testing.T) {
	f := NewFake()
	late := f.After(10 * time.Millisecond)
	early := f.After(2 * time.Millisecond)
	f.Advance(20 * time.Millisecond)
	e := <-early
	l := <-late
	if !e.Before(l) {
		t.Fatalf("timers fired out of order: early at %v, late at %v", e, l)
	}
	if got := f.Now().Sub(NewFake().Now()); got != 20*time.Millisecond {
		t.Fatalf("Now after Advance = +%v, want +20ms", got)
	}
}
