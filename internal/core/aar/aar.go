// Package aar implements FlowKV's Append and Aligned Read store (paper
// §4.1), used for window operations whose aggregate function is holistic
// (Append) and whose window function triggers all keys simultaneously
// (fixed, sliding and global windows).
//
// The store exploits alignment with coarse-grained data organization: the
// in-memory write buffer hashes tuples by *window boundary* rather than by
// key, and the on-disk layout is one log file per window. Because every
// tuple in a log file is read and dropped at the same moment (the window's
// trigger), reads are a sequential scan of one file and cleanup is a
// single unlink — no per-key search and no compaction at all.
//
// Reads use gradual state loading: GetWindow returns one bounded partition
// per call so only one non-aggregated partition resides in memory.
//
// # Concurrency
//
// A Store instance is safe for concurrent use. Appends take only mu (the
// write-buffer lock); everything that touches files — flushes, window
// scans, drops, checkpoints — serializes on ioMu, with the buffer
// detached under mu and written with only ioMu held, so ingestion never
// stalls behind disk. The lock order is ioMu before mu; mu is never held
// across I/O or while acquiring ioMu.
package aar

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"flowkv/internal/binio"
	"flowkv/internal/ckpt"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("aar: store closed")

// DisableFlushReattach, when set, restores the historical behaviour of
// dropping the detached write buffer when a flush fails. It exists only
// so the error-injection battery can demonstrate that the re-attach is
// load-bearing; production code must never set it.
var DisableFlushReattach bool

// Options configures an AAR store instance.
type Options struct {
	// Dir is the directory holding the instance's per-window log files.
	Dir string
	// WriteBufferBytes caps the in-memory write buffer; exceeding it
	// flushes all buckets to their per-window logs. Default 32 MiB.
	WriteBufferBytes int64
	// LoadPartitionBytes bounds the size of each partition returned by
	// GetWindow (gradual state loading). Default 4 MiB.
	LoadPartitionBytes int64
	// FlushChunkBytes bounds the size of each on-disk record written at
	// flush; larger chunks amortize framing. Default 64 KiB.
	FlushChunkBytes int64
	// FineGrained switches the write buffer and flush format to per-key
	// organization (one record per key per flush), the naive layout the
	// paper's coarse-grained design replaces. Ablation only.
	FineGrained bool
	// FS is the filesystem seam; nil means the real OS filesystem.
	// Fault-injection tests substitute a faultfs.Injector.
	FS faultfs.FS
	// Breakdown receives per-operation CPU time and I/O accounting.
	Breakdown *metrics.Breakdown
	// Policy bounds and observes the store's log I/O (deadline sentinel
	// + latency monitor); nil is a passthrough. Shared by reference: the
	// composite store installs one policy across its instances.
	Policy *logfile.Policy
}

func (o *Options) fill() {
	if o.WriteBufferBytes <= 0 {
		o.WriteBufferBytes = 32 << 20
	}
	if o.LoadPartitionBytes <= 0 {
		o.LoadPartitionBytes = 4 << 20
	}
	if o.FlushChunkBytes <= 0 {
		o.FlushChunkBytes = 64 << 10
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
}

// KeyValues is one key with its appended values, the element type of the
// iterable returned by GetWindow.
type KeyValues struct {
	Key    []byte
	Values [][]byte
}

type kvPair struct {
	k, v []byte
}

// bucket accumulates one window's tuples in arrival order.
type bucket struct {
	entries []kvPair
	bytes   int64
}

type readState struct {
	log *logfile.Log
	sc  *logfile.Scanner
	// off is the absolute offset of the first record not yet served in a
	// returned partition. On a scan error the scanner is dropped and
	// recreated here, so a transient read fault is retryable without
	// duplicating or skipping records.
	off int64
	// mem holds entries that could not be spilled to the log (degraded
	// mode: the flush on first read failed); they are served after the
	// on-disk records so no acked append is lost.
	mem []kvPair
}

// Store is a single AAR store instance, safe for concurrent use.
type Store struct {
	opts Options
	dir  *logfile.Dir
	bd   *metrics.Breakdown

	// mu guards the write buffer; appends take only this lock.
	mu       sync.Mutex
	buf      map[window.Window]*bucket
	bufBytes int64
	closed   bool

	// ioMu serializes file state: flushes, scans, drops, checkpoints.
	// Never acquired while holding mu.
	ioMu  sync.Mutex
	files map[window.Window]*logfile.Log
	reads map[window.Window]*readState
	// epochs gives each per-window log file a random identity, recorded
	// in delta-checkpoint SEGMENTS manifests. A later delta may reuse a
	// parent checkpoint's segments for a window only while the live
	// file's epoch still matches: drop-then-recreate of the same window
	// changes the epoch and forces a full copy of that file.
	epochs map[window.Window]uint64

	// syncMu admits one split sync at a time; held around (not under)
	// ioMu so the fsyncs run with ioMu released.
	syncMu sync.Mutex

	// Stats counted for the evaluation harness.
	appends  metrics.Counter
	flushes  metrics.Counter
	tuplesIn metrics.Counter
}

// Open creates an AAR store instance rooted at opts.Dir.
func Open(opts Options) (*Store, error) {
	opts.fill()
	dir, err := logfile.OpenDirFS(opts.FS, opts.Dir, opts.Breakdown)
	if err != nil {
		return nil, err
	}
	dir.SetPolicy(opts.Policy)
	return &Store{
		opts:   opts,
		dir:    dir,
		bd:     opts.Breakdown,
		buf:    make(map[window.Window]*bucket),
		files:  make(map[window.Window]*logfile.Log),
		reads:  make(map[window.Window]*readState),
		epochs: make(map[window.Window]uint64),
	}, nil
}

// Append adds the KV tuple to window w (paper API: Append(K, V, W)). The
// key and value are copied; callers may reuse their buffers.
func (s *Store) Append(key, value []byte, w window.Window) error {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpWrite)
	}
	err := s.append(key, value, w)
	if stop != nil {
		stop()
	}
	return err
}

func (s *Store) append(key, value []byte, w window.Window) error {
	kc := make([]byte, len(key))
	copy(kc, key)
	vc := make([]byte, len(value))
	copy(vc, value)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	b := s.buf[w]
	if b == nil {
		b = &bucket{}
		s.buf[w] = b
	}
	b.entries = append(b.entries, kvPair{kc, vc})
	sz := int64(len(key) + len(value) + 32)
	b.bytes += sz
	s.bufBytes += sz
	need := s.bufBytes > s.opts.WriteBufferBytes
	s.mu.Unlock()
	s.appends.Inc()
	s.tuplesIn.Inc()
	if !need {
		return nil
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	return s.flushAllLocked()
}

// flushAllLocked detaches the whole write buffer under mu and spills
// every bucket to its window's log file. Caller holds ioMu; ingestion
// into the fresh buffer proceeds while the batch is written. Flush
// failure is atomic with respect to acked appends: entries the log did
// not accept are re-attached to the live buffer under mu, so an error
// here degrades the store without losing acknowledged writes.
func (s *Store) flushAllLocked() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	batch := s.buf
	if len(batch) == 0 {
		s.mu.Unlock()
		return nil
	}
	s.buf = make(map[window.Window]*bucket)
	s.bufBytes = 0
	s.mu.Unlock()
	for w, b := range batch {
		remaining, err := s.flushBucket(w, b)
		if err != nil {
			if !DisableFlushReattach {
				b.entries = remaining
				s.reattach(batch)
			}
			return err
		}
		delete(batch, w)
	}
	s.flushes.Inc()
	return nil
}

// reattach returns the unflushed entries of a failed batch to the live
// write buffer, prepended so arrival order is preserved relative to
// appends that raced in since the detach.
func (s *Store) reattach(batch map[window.Window]*bucket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for w, b := range batch {
		if len(b.entries) == 0 {
			continue
		}
		var sz int64
		for _, e := range b.entries {
			sz += int64(len(e.k) + len(e.v) + 32)
		}
		cur := s.buf[w]
		if cur == nil {
			s.buf[w] = &bucket{entries: b.entries, bytes: sz}
		} else {
			cur.entries = append(b.entries, cur.entries...)
			cur.bytes += sz
		}
		s.bufBytes += sz
	}
}

// flushBucket writes one window's bucket; caller holds ioMu. On error it
// returns the entries the log did not accept (entries already appended
// live in the log's retained tail and survive recovery).
func (s *Store) flushBucket(w window.Window, b *bucket) ([]kvPair, error) {
	if len(b.entries) == 0 {
		return nil, nil
	}
	l := s.files[w]
	if l == nil {
		var err error
		l, err = s.dir.Create(windowFileName(w))
		if err != nil {
			return b.entries, err
		}
		s.files[w] = l
		s.epochs[w] = ckpt.Rand64()
	}
	if s.opts.FineGrained {
		return flushFine(l, b.entries)
	}
	return flushCoarse(l, b.entries, s.opts.FlushChunkBytes)
}

// flushCoarse writes the bucket as chunked multi-tuple records — the
// paper's coarse-grained layout: data organized by window, not by key.
// On error it returns the entries not accepted by the log.
func flushCoarse(l *logfile.Log, entries []kvPair, chunkBytes int64) ([]kvPair, error) {
	payload := make([]byte, 0, chunkBytes+1024)
	count := 0
	done := 0
	var body []byte
	emit := func() error {
		if count == 0 {
			return nil
		}
		payload = binio.PutUvarint(payload[:0], uint64(count))
		payload = append(payload, body...)
		_, _, err := l.Append(payload)
		if err == nil {
			done += count
		}
		body = body[:0]
		count = 0
		return err
	}
	for _, e := range entries {
		body = binio.PutBytes(body, e.k)
		body = binio.PutBytes(body, e.v)
		count++
		if int64(len(body)) >= chunkBytes {
			if err := emit(); err != nil {
				return entries[done:], err
			}
		}
	}
	if err := emit(); err != nil {
		return entries[done:], err
	}
	return nil, nil
}

// flushFine writes one record per key (grouping the bucket by key first),
// the naive fine-grained layout used by the ablation in §4.1. On error
// it returns the entries of the groups not accepted by the log (group
// order, which loses the original arrival interleaving — acceptable for
// an ablation-only layout).
func flushFine(l *logfile.Log, entries []kvPair) ([]kvPair, error) {
	groups := make(map[string][][]byte)
	var order []string
	for _, e := range entries {
		k := string(e.k)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e.v)
	}
	var payload []byte
	for gi, k := range order {
		vs := groups[k]
		// One single-key record per value group: count=len(vs) entries of
		// the same key, preserving the record wire format.
		payload = binio.PutUvarint(payload[:0], uint64(len(vs)))
		for _, v := range vs {
			payload = binio.PutBytes(payload, []byte(k))
			payload = binio.PutBytes(payload, v)
		}
		if _, _, err := l.Append(payload); err != nil {
			var rem []kvPair
			for _, k2 := range order[gi:] {
				for _, v := range groups[k2] {
					rem = append(rem, kvPair{[]byte(k2), v})
				}
			}
			return rem, err
		}
	}
	return nil, nil
}

// GetWindow returns the next partition of window w's state, grouped by
// key, or nil when the window is exhausted — at which point its on-disk
// log has been unlinked (paper API: GetWindow(W), fetch & remove). The
// same key may appear in multiple partitions; the consumer merges.
// Concurrent GetWindow calls for the same window serialize on ioMu and
// each receive a distinct partition.
func (s *Store) GetWindow(w window.Window) ([]KeyValues, error) {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpRead)
	}
	part, err := s.getWindow(w)
	if stop != nil {
		stop()
	}
	return part, err
}

func (s *Store) getWindow(w window.Window) ([]KeyValues, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	rs := s.reads[w]
	if rs == nil {
		// First call for this window: spill any buffered tuples so the
		// read is a single sequential file scan.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
		b := s.buf[w]
		if b != nil {
			s.bufBytes -= b.bytes
			delete(s.buf, w)
		}
		s.mu.Unlock()
		var mem []kvPair
		if b != nil {
			// A flush failure here must not fail the read: the store is
			// degraded, but the unspilled entries are still in hand —
			// serve them from memory after the on-disk records.
			if remaining, err := s.flushBucket(w, b); err != nil {
				mem = remaining
			}
		}
		l := s.files[w]
		if l == nil && len(mem) == 0 {
			return nil, nil // window has no state
		}
		rs = &readState{log: l, mem: mem}
		s.reads[w] = rs
	}
	if rs.sc == nil && rs.log != nil {
		sc, err := rs.log.Scanner(rs.off)
		if err != nil {
			return nil, err
		}
		rs.sc = sc
	}

	groups := make(map[string]int)
	var part []KeyValues
	var read int64
	for read < s.opts.LoadPartitionBytes && rs.sc != nil && rs.sc.Scan() {
		rec := rs.sc.Record()
		read += int64(len(rec))
		n, used, err := binio.Uvarint(rec)
		if err != nil {
			return nil, fmt.Errorf("aar: window %v: %w", w, err)
		}
		rec = rec[used:]
		for i := uint64(0); i < n; i++ {
			k, kn, err := binio.Bytes(rec)
			if err != nil {
				return nil, fmt.Errorf("aar: window %v: %w", w, err)
			}
			rec = rec[kn:]
			v, vn, err := binio.Bytes(rec)
			if err != nil {
				return nil, fmt.Errorf("aar: window %v: %w", w, err)
			}
			rec = rec[vn:]
			vc := make([]byte, len(v))
			copy(vc, v)
			idx, seen := groups[string(k)]
			if !seen {
				kc := make([]byte, len(k))
				copy(kc, k)
				part = append(part, KeyValues{Key: kc})
				idx = len(part) - 1
				groups[string(k)] = idx
			}
			part[idx].Values = append(part[idx].Values, vc)
		}
	}
	if rs.sc != nil {
		if err := rs.sc.Err(); err != nil {
			// Drop the broken scanner; a retry recreates it at rs.off, the
			// first record of this (discarded) partition attempt.
			rs.sc = nil
			return nil, err
		}
		rs.off = rs.sc.Offset()
	}
	// Serve entries the degraded-mode flush kept in memory after the
	// on-disk records are exhausted.
	for read < s.opts.LoadPartitionBytes && len(rs.mem) > 0 {
		e := rs.mem[0]
		rs.mem = rs.mem[1:]
		read += int64(len(e.k) + len(e.v))
		idx, seen := groups[string(e.k)]
		if !seen {
			part = append(part, KeyValues{Key: e.k})
			idx = len(part) - 1
			groups[string(e.k)] = idx
		}
		part[idx].Values = append(part[idx].Values, e.v)
	}
	if len(part) == 0 {
		// Exhausted: clean the per-window log from disk (step ④).
		delete(s.reads, w)
		delete(s.files, w)
		delete(s.epochs, w)
		if rs.log == nil {
			return nil, nil
		}
		if err := rs.log.Remove(); err != nil && !errors.Is(err, logfile.ErrPoisoned) {
			// A poisoned log's close error is expected in degraded mode;
			// the unlink still happened and the data was fully served.
			return nil, err
		}
		return nil, nil
	}
	return part, nil
}

// DropWindow discards all state of window w without reading it, used when
// the SPE expires a window unseen (e.g. allowed-lateness cleanup).
func (s *Store) DropWindow(w window.Window) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if b := s.buf[w]; b != nil {
		s.bufBytes -= b.bytes
		delete(s.buf, w)
	}
	s.mu.Unlock()
	delete(s.reads, w)
	delete(s.epochs, w)
	if l := s.files[w]; l != nil {
		delete(s.files, w)
		return l.Remove()
	}
	return nil
}

// Windows returns every window with live state (buffered or on disk), in
// window order. Windows mid-drain (a GetWindow sequence that has not
// exhausted yet) are included until their log is unlinked.
func (s *Store) Windows() []window.Window {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	set := make(map[window.Window]struct{}, len(s.buf)+len(s.files))
	for w := range s.buf {
		set[w] = struct{}{}
	}
	s.mu.Unlock()
	for w := range s.files {
		set[w] = struct{}{}
	}
	out := make([]window.Window, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// ReadWindowFiltered returns window w's state restricted to the keys the
// own predicate accepts (nil accepts every key), grouped by key, without
// consuming anything: the log stays on disk and buffered entries stay
// buffered, so several callers can each read their own key range and the
// window can be dropped wholesale later. It must not overlap a
// destructive GetWindow drain of the same window.
func (s *Store) ReadWindowFiltered(w window.Window, own func(key []byte) bool) ([]KeyValues, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if s.reads[w] != nil {
		return nil, fmt.Errorf("aar: window %v: filtered read during destructive drain", w)
	}
	// Snapshot the buffered entries under mu. Flushes need ioMu, so the
	// bucket cannot move to disk while we scan: nothing is seen twice.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var buffered []kvPair
	if b := s.buf[w]; b != nil {
		buffered = append(buffered, b.entries...)
	}
	s.mu.Unlock()

	groups := make(map[string]int)
	var out []KeyValues
	add := func(k, v []byte) {
		if own != nil && !own(k) {
			return
		}
		idx, seen := groups[string(k)]
		if !seen {
			kc := make([]byte, len(k))
			copy(kc, k)
			out = append(out, KeyValues{Key: kc})
			idx = len(out) - 1
			groups[string(k)] = idx
		}
		vc := make([]byte, len(v))
		copy(vc, v)
		out[idx].Values = append(out[idx].Values, vc)
	}
	if l := s.files[w]; l != nil {
		sc, err := l.Scanner(0)
		if err != nil {
			return nil, err
		}
		for sc.Scan() {
			rec := sc.Record()
			n, used, err := binio.Uvarint(rec)
			if err != nil {
				return nil, fmt.Errorf("aar: window %v: %w", w, err)
			}
			rec = rec[used:]
			for i := uint64(0); i < n; i++ {
				k, kn, err := binio.Bytes(rec)
				if err != nil {
					return nil, fmt.Errorf("aar: window %v: %w", w, err)
				}
				rec = rec[kn:]
				v, vn, err := binio.Bytes(rec)
				if err != nil {
					return nil, fmt.Errorf("aar: window %v: %w", w, err)
				}
				rec = rec[vn:]
				add(k, v)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	for _, e := range buffered {
		add(e.k, e.v)
	}
	return out, nil
}

// BufferedBytes returns the current in-memory write buffer size.
func (s *Store) BufferedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufBytes
}

// LiveWindows returns the number of windows with buffered or on-disk state.
func (s *Store) LiveWindows() int {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make(map[window.Window]struct{}, len(s.buf)+len(s.files))
	for w := range s.buf {
		live[w] = struct{}{}
	}
	for w := range s.files {
		live[w] = struct{}{}
	}
	return len(live)
}

// Appends returns the number of Append calls served.
func (s *Store) Appends() int64 { return s.appends.Load() }

// Flushes returns the number of full write-buffer flushes performed.
func (s *Store) Flushes() int64 { return s.flushes.Load() }

// DiskUsage returns the logical bytes of the instance's per-window logs,
// including appends still in their write-through buffers.
func (s *Store) DiskUsage() (int64, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var total int64
	for _, l := range s.files {
		total += l.Size()
	}
	return total, nil
}

// Flush spills all buffered data to disk (checkpoint support, §8).
func (s *Store) Flush() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if err := s.flushAllLocked(); err != nil {
		return err
	}
	for _, l := range s.files {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes all buffered data and fsyncs every per-window log, making
// every acknowledged Append durable. Each fsync runs outside ioMu (split
// BeginSync/FinishSync), so window drains and later flushes overlap the
// syncs instead of queueing behind them; syncMu keeps at most one split
// sync in flight per log, as the protocol requires.
func (s *Store) Sync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.ioMu.Lock()
	if err := s.flushAllLocked(); err != nil {
		s.ioMu.Unlock()
		return err
	}
	wins := make([]window.Window, 0, len(s.files))
	for w := range s.files {
		wins = append(wins, w)
	}
	s.ioMu.Unlock()
	for _, w := range wins {
		if err := s.syncWindowLog(w); err != nil {
			return err
		}
	}
	return nil
}

// syncWindowLog split-syncs one window's log. The window may be consumed
// (dropped) at any point — before BeginSync, or while the fsync is in
// flight — in which case there is nothing left to make durable and the
// sync of that log trivially succeeds. A log swapped by Recover mid-fsync
// invalidates the outcome and is redone against the new descriptor.
func (s *Store) syncWindowLog(w window.Window) error {
	for {
		s.ioMu.Lock()
		lg, ok := s.files[w]
		if !ok {
			s.ioMu.Unlock()
			return nil
		}
		tok, commit, err := lg.BeginSync()
		if err != nil {
			s.ioMu.Unlock()
			return err
		}
		s.ioMu.Unlock()
		serr := commit()
		s.ioMu.Lock()
		if cur, ok := s.files[w]; !ok {
			// Dropped mid-fsync: abandon the token (commit touches no
			// mutable log state, so this is legal).
			s.ioMu.Unlock()
			return nil
		} else if cur != lg {
			s.ioMu.Unlock()
			continue
		}
		err = lg.FinishSync(tok, serr)
		s.ioMu.Unlock()
		if errors.Is(err, logfile.ErrSyncSuperseded) {
			continue
		}
		return err
	}
}

// Recover reopens every poisoned per-window log from its durable offset,
// rewriting the retained unsynced tail, so the write path works again
// after the underlying fault has cleared. In-progress window scans are
// not preserved across a Recover.
// Poisoned returns the first poisoning error among the instance's open
// window logs, or nil when every log is healthy.
func (s *Store) Poisoned() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	for _, l := range s.files {
		if err := l.Poisoned(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) Recover() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var first error
	for w, l := range s.files {
		if l.Poisoned() == nil {
			continue
		}
		if rs := s.reads[w]; rs != nil {
			rs.sc = nil // the scanner holds the stale fd; recreate at rs.off
		}
		if err := l.ReopenAtDurable(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Scrub verifies every live window log's record frames against their
// checksums under the instance I/O lock, healing rot confined to the
// unsynced tail where the retained in-memory copy allows (see
// logfile.Log.Scrub). It returns the per-instance summary and the first
// unrepairable corruption.
func (s *Store) Scrub() (logfile.ScrubSummary, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var sum logfile.ScrubSummary
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return sum, ErrClosed
	}
	for _, l := range s.files {
		r, err := l.Scrub()
		sum.Add(r)
		if err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// Close closes all open log files, leaving state on disk.
func (s *Store) Close() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var first error
	for _, l := range s.files {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Destroy closes the store and deletes its directory.
func (s *Store) Destroy() error {
	err := s.Close()
	if derr := s.dir.RemoveAll(); derr != nil && err == nil {
		err = derr
	}
	return err
}

func windowFileName(w window.Window) string {
	return fmt.Sprintf("win_%d_%d.log", w.Start, w.End)
}
