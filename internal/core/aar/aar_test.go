package aar

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "aar")
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Destroy() })
	return s
}

// drain reads every partition of w and merges them into key->values.
func drain(t *testing.T, s *Store, w window.Window) map[string][]string {
	t.Helper()
	got := make(map[string][]string)
	for {
		part, err := s.GetWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		if part == nil {
			return got
		}
		for _, kv := range part {
			for _, v := range kv.Values {
				got[string(kv.Key)] = append(got[string(kv.Key)], string(v))
			}
		}
	}
}

func TestAppendGetWindowInMemory(t *testing.T) {
	s := openTest(t, Options{})
	w := window.Window{Start: 0, End: 100}
	s.Append([]byte("k1"), []byte("a"), w)
	s.Append([]byte("k2"), []byte("b"), w)
	s.Append([]byte("k1"), []byte("c"), w)

	got := drain(t, s, w)
	if len(got) != 2 {
		t.Fatalf("got %d keys", len(got))
	}
	if got["k1"][0] != "a" || got["k1"][1] != "c" {
		t.Errorf("k1 values = %v, want append order [a c]", got["k1"])
	}
	if got["k2"][0] != "b" {
		t.Errorf("k2 values = %v", got["k2"])
	}
}

func TestGetWindowRemovesState(t *testing.T) {
	s := openTest(t, Options{})
	w := window.Window{Start: 0, End: 100}
	s.Append([]byte("k"), []byte("v"), w)
	drain(t, s, w)
	// Second read: window must be gone (fetch & remove).
	if part, err := s.GetWindow(w); err != nil || part != nil {
		t.Errorf("after drain: part=%v err=%v, want nil,nil", part, err)
	}
}

func TestGetWindowEmptyWindow(t *testing.T) {
	s := openTest(t, Options{})
	part, err := s.GetWindow(window.Window{Start: 5, End: 6})
	if err != nil || part != nil {
		t.Errorf("empty window: part=%v err=%v", part, err)
	}
}

func TestFlushAndReadBack(t *testing.T) {
	// Tiny buffer forces flushes; data must survive the spill.
	s := openTest(t, Options{WriteBufferBytes: 256})
	w := window.Window{Start: 0, End: 1000}
	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i%10))
		v := []byte(fmt.Sprintf("val-%03d", i))
		if err := s.Append(k, v, w); err != nil {
			t.Fatal(err)
		}
	}
	if s.Flushes() == 0 {
		t.Fatal("expected at least one flush")
	}
	got := drain(t, s, w)
	var total int
	for _, vs := range got {
		total += len(vs)
	}
	if total != n {
		t.Fatalf("read back %d values, want %d", total, n)
	}
	// Per-key append order is preserved across flush boundaries.
	for k, vs := range got {
		for i := 1; i < len(vs); i++ {
			if vs[i-1] >= vs[i] {
				t.Fatalf("key %s: values out of append order: %v", k, vs)
			}
		}
	}
}

func TestWindowsIsolated(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 128})
	w1 := window.Window{Start: 0, End: 100}
	w2 := window.Window{Start: 100, End: 200}
	for i := 0; i < 50; i++ {
		s.Append([]byte("k"), []byte(fmt.Sprintf("w1-%02d", i)), w1)
		s.Append([]byte("k"), []byte(fmt.Sprintf("w2-%02d", i)), w2)
	}
	got1 := drain(t, s, w1)
	if len(got1["k"]) != 50 {
		t.Fatalf("w1 has %d values", len(got1["k"]))
	}
	for _, v := range got1["k"] {
		if v[:2] != "w1" {
			t.Fatalf("w1 leaked value %q", v)
		}
	}
	got2 := drain(t, s, w2)
	if len(got2["k"]) != 50 {
		t.Fatalf("w2 has %d values", len(got2["k"]))
	}
}

func TestGradualLoadingPartitions(t *testing.T) {
	// With a small partition size, a large window must need several
	// GetWindow calls, each bounded.
	s := openTest(t, Options{WriteBufferBytes: 1024, LoadPartitionBytes: 2048, FlushChunkBytes: 512})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 1000; i++ {
		s.Append([]byte(fmt.Sprintf("k%02d", i%16)), make([]byte, 64), w)
	}
	var calls, values int
	for {
		part, err := s.GetWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		if part == nil {
			break
		}
		calls++
		var partBytes int
		for _, kv := range part {
			values += len(kv.Values)
			for _, v := range kv.Values {
				partBytes += len(v)
			}
		}
		if int64(partBytes) > 3*2048 {
			t.Fatalf("partition of %d bytes exceeds gradual-loading bound", partBytes)
		}
	}
	if calls < 5 {
		t.Errorf("expected gradual loading across many calls, got %d", calls)
	}
	if values != 1000 {
		t.Errorf("read %d values, want 1000", values)
	}
}

func TestFileCleanupAfterRead(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "aar")
	s := openTest(t, Options{Dir: dir, WriteBufferBytes: 64})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 100; i++ {
		s.Append([]byte("k"), []byte("0123456789"), w)
	}
	usage, err := s.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if usage == 0 {
		t.Fatal("expected on-disk state before read")
	}
	drain(t, s, w)
	usage, err = s.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if usage != 0 {
		t.Errorf("per-window log not cleaned after read: %d bytes remain", usage)
	}
}

func TestDropWindow(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 64})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 100; i++ {
		s.Append([]byte("k"), []byte("0123456789"), w)
	}
	if err := s.DropWindow(w); err != nil {
		t.Fatal(err)
	}
	if usage, _ := s.DiskUsage(); usage != 0 {
		t.Errorf("disk not cleaned after DropWindow: %d", usage)
	}
	if s.BufferedBytes() != 0 {
		t.Errorf("buffer not cleaned after DropWindow: %d", s.BufferedBytes())
	}
	if part, err := s.GetWindow(w); err != nil || part != nil {
		t.Errorf("dropped window still readable: %v %v", part, err)
	}
}

func TestReplicatedTuplesAcrossWindows(t *testing.T) {
	// Sliding windows: the SPE replicates a tuple into each window;
	// both copies must be independently retrievable.
	s := openTest(t, Options{})
	a := window.SlidingAssigner{Size: 100, Slide: 50}
	for _, w := range a.Assign(120) {
		s.Append([]byte("k"), []byte("v"), w)
	}
	for _, w := range a.Assign(120) {
		got := drain(t, s, w)
		if len(got["k"]) != 1 {
			t.Errorf("window %v: %v", w, got)
		}
	}
}

func TestFineGrainedMode(t *testing.T) {
	// The ablation layout must return identical data.
	s := openTest(t, Options{WriteBufferBytes: 512, FineGrained: true})
	w := window.Window{Start: 0, End: 100}
	const n = 100
	for i := 0; i < n; i++ {
		s.Append([]byte(fmt.Sprintf("k%d", i%7)), []byte(fmt.Sprintf("v%03d", i)), w)
	}
	got := drain(t, s, w)
	var total int
	for _, vs := range got {
		total += len(vs)
	}
	if total != n {
		t.Fatalf("fine-grained read back %d values, want %d", total, n)
	}
}

func TestLiveWindowsAndStats(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 64})
	w1 := window.Window{Start: 0, End: 100}
	w2 := window.Window{Start: 100, End: 200}
	s.Append([]byte("k"), []byte("0123456789012345678901234567890123456789"), w1)
	s.Append([]byte("k"), []byte("v"), w2)
	if got := s.LiveWindows(); got != 2 {
		t.Errorf("LiveWindows = %d, want 2", got)
	}
	if s.Appends() != 2 {
		t.Errorf("Appends = %d", s.Appends())
	}
}

func TestBreakdownAccounting(t *testing.T) {
	var bd metrics.Breakdown
	s := openTest(t, Options{WriteBufferBytes: 64, Breakdown: &bd})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 50; i++ {
		s.Append([]byte("k"), []byte("0123456789"), w)
	}
	drain(t, s, w)
	if bd.Calls(metrics.OpWrite) == 0 {
		t.Error("no write ops recorded")
	}
	if bd.Calls(metrics.OpRead) == 0 {
		t.Error("no read ops recorded")
	}
	if bd.BytesWritten() == 0 {
		t.Error("no written bytes recorded")
	}
}

func TestClosedErrors(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("k"), []byte("v"), window.Window{}); err != ErrClosed {
		t.Errorf("Append on closed: %v", err)
	}
	if _, err := s.GetWindow(window.Window{}); err != ErrClosed {
		t.Errorf("GetWindow on closed: %v", err)
	}
	if err := s.DropWindow(window.Window{}); err != ErrClosed {
		t.Errorf("DropWindow on closed: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Errorf("Flush on closed: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestFlushCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "aar")
	s := openTest(t, Options{Dir: dir})
	w := window.Window{Start: 0, End: 100}
	s.Append([]byte("k"), []byte("v"), w)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// After a checkpoint flush all buffered data is on disk.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Error("no files after checkpoint Flush")
	}
	if s.BufferedBytes() != 0 {
		t.Errorf("buffer not empty after Flush: %d", s.BufferedBytes())
	}
	// Data still readable after the flush.
	got := drain(t, s, w)
	if len(got["k"]) != 1 {
		t.Errorf("read after flush: %v", got)
	}
}

func TestRandomizedRoundTrip(t *testing.T) {
	// Property-style: random appends across windows and keys; everything
	// written must come back exactly once, in per-key order.
	rng := rand.New(rand.NewSource(42))
	s := openTest(t, Options{WriteBufferBytes: 2048, LoadPartitionBytes: 1024})
	want := make(map[window.Window]map[string][]string)
	for i := 0; i < 3000; i++ {
		w := window.Window{Start: int64(rng.Intn(4)) * 100, End: int64(rng.Intn(4))*100 + 100}
		k := fmt.Sprintf("key-%d", rng.Intn(20))
		v := fmt.Sprintf("val-%06d", i)
		if err := s.Append([]byte(k), []byte(v), w); err != nil {
			t.Fatal(err)
		}
		if want[w] == nil {
			want[w] = make(map[string][]string)
		}
		want[w][k] = append(want[w][k], v)
	}
	for w, wantKeys := range want {
		got := drain(t, s, w)
		if len(got) != len(wantKeys) {
			t.Fatalf("window %v: %d keys, want %d", w, len(got), len(wantKeys))
		}
		for k, wantVals := range wantKeys {
			gotVals := got[k]
			if len(gotVals) != len(wantVals) {
				t.Fatalf("window %v key %s: %d values, want %d", w, k, len(gotVals), len(wantVals))
			}
			for i := range wantVals {
				if gotVals[i] != wantVals[i] {
					t.Fatalf("window %v key %s value %d: %q want %q", w, k, i, gotVals[i], wantVals[i])
				}
			}
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	s, err := Open(Options{Dir: filepath.Join(b.TempDir(), "aar"), WriteBufferBytes: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Destroy()
	w := window.Window{Start: 0, End: 1 << 40}
	key := []byte("key-000000")
	val := make([]byte, 84)
	b.SetBytes(int64(len(key) + len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(key, val, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendGetWindowCycle(b *testing.B) {
	s, err := Open(Options{Dir: filepath.Join(b.TempDir(), "aar"), WriteBufferBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Destroy()
	val := make([]byte, 84)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := window.Window{Start: int64(i) * 100, End: int64(i+1) * 100}
		for j := 0; j < 100; j++ {
			s.Append([]byte(fmt.Sprintf("k%d", j%8)), val, w)
		}
		for {
			part, err := s.GetWindow(w)
			if err != nil {
				b.Fatal(err)
			}
			if part == nil {
				break
			}
		}
	}
}
