package aar

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"flowkv/internal/ckpt"
	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// Checkpoint writes a consistent snapshot of the instance's state into
// dir (created if needed). The paper's §8 describes the discipline:
// in-memory data is flushed to disk first, so the on-disk files form the
// snapshot and can be copied while processing resumes. Checkpoint flushes
// and then copies each per-window log; every copy is fsynced before it
// counts, so a later atomic commit (internal/core's tmp+rename) can rely
// on the bytes being durable.
//
// Checkpoint holds only ioMu, so concurrent Appends proceed while the
// snapshot is written; the cut is the instant the buffer is detached
// inside the flush. Tuples appended after that instant are not in the
// snapshot.
func (s *Store) Checkpoint(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()
	if err := s.flushAllLocked(); err != nil {
		return err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("aar: checkpoint: %w", err)
	}
	for w, l := range s.files {
		if err := l.Flush(); err != nil {
			return err
		}
		if err := faultfs.CopyFile(fsys, l.Path(), filepath.Join(dir, windowFileName(w))); err != nil {
			return err
		}
	}
	return nil
}

// CheckpointDelta writes a segmented snapshot of the instance into dir.
// Each per-window log is recorded as an ordered list of sealed segment
// files plus a SEGMENTS manifest. When parent (the decoded SEGMENTS of
// the previous checkpoint generation, rooted at parentDir) still
// describes a prefix of a live log — same file epoch, recorded length
// not past the live size — the parent's segments are hard-linked across
// and only the appended tail is copied; otherwise that file falls back
// to a full single-segment copy. Nothing is fsynced here: the returned
// Result names every file that still needs a sync, and the composite
// store batches those into one group-commit window before the
// checkpoint's atomic rename.
func (s *Store) CheckpointDelta(dir string, parent *ckpt.Meta, parentDir string) (*ckpt.Result, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()
	if err := s.flushAllLocked(); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("aar: checkpoint: %w", err)
	}
	wins := make([]window.Window, 0, len(s.files))
	for w := range s.files {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool {
		if wins[i].Start != wins[j].Start {
			return wins[i].Start < wins[j].Start
		}
		return wins[i].End < wins[j].End
	})
	res := &ckpt.Result{}
	meta := &ckpt.Meta{CutID: ckpt.Rand64()}
	for _, w := range wins {
		l := s.files[w]
		if err := l.Flush(); err != nil {
			return nil, err
		}
		logical := windowFileName(w)
		epoch := s.epochs[w]
		if epoch == 0 {
			epoch = ckpt.Rand64()
			s.epochs[w] = epoch
		}
		size := l.Size()
		fstate := ckpt.FileState{Logical: logical, Epoch: epoch}
		var from int64
		// A parent with zero recorded bytes is not reused: its (empty)
		// segment list would put the fresh tail at offset 0 and collide
		// with any zero-offset segment name. An empty live file simply
		// records no segments — Materialize recreates it empty.
		if p := parent.File(logical); p != nil && p.Epoch == epoch &&
			p.TotalLen() > 0 && p.TotalLen() <= size {
			if err := ckpt.LinkSegments(fsys, parentDir, dir, p.Segments, res); err != nil {
				return nil, err
			}
			fstate.Segments = append(fstate.Segments, p.Segments...)
			from = p.TotalLen()
		}
		if tail := size - from; tail > 0 {
			name := ckpt.SegmentName(logical, from)
			crc, err := ckpt.CopyRange(fsys, l.Path(), from, tail, filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			seg := ckpt.Segment{Name: name, Len: tail, CRC: crc}
			fstate.Segments = append(fstate.Segments, seg)
			res.Entries = append(res.Entries, ckpt.Entry{Path: name, Size: tail, CRC: crc})
			res.NeedSync = append(res.NeedSync, filepath.Join(dir, name))
			res.CopiedBytes += tail
		}
		meta.Files = append(meta.Files, fstate)
	}
	if err := ckpt.FinishMeta(fsys, dir, meta, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Restore rebuilds an instance's state from a checkpoint directory
// written by Checkpoint or CheckpointDelta. The store must be freshly
// opened (empty). Segmented checkpoints (a SEGMENTS manifest present)
// are materialized by concatenating each file's segments and carry their
// file epochs over, so the delta chain can continue across a restart;
// legacy flat checkpoints get fresh epochs, which simply forces the next
// delta checkpoint to take the full-copy path.
func (s *Store) Restore(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.buf) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("aar: restore into a non-empty store")
	}
	s.mu.Unlock()
	if len(s.files) != 0 {
		return fmt.Errorf("aar: restore into a non-empty store")
	}
	fsys := s.dir.FS()
	meta, err := ckpt.ReadMeta(fsys, dir)
	if err != nil {
		return fmt.Errorf("aar: restore: %w", err)
	}
	if meta != nil {
		for i := range meta.Files {
			fstate := &meta.Files[i]
			w, ok := parseWindowFileName(fstate.Logical)
			if !ok {
				return fmt.Errorf("aar: restore: unexpected logical file %q", fstate.Logical)
			}
			if err := ckpt.Materialize(fsys, dir, fstate, filepath.Join(s.dir.Root(), fstate.Logical)); err != nil {
				return fmt.Errorf("aar: restore: %w", err)
			}
			l, err := s.dir.Open(fstate.Logical)
			if err != nil {
				return err
			}
			s.files[w] = l
			s.epochs[w] = fstate.Epoch
		}
		return nil
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("aar: restore: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		w, ok := parseWindowFileName(name)
		if !ok {
			continue
		}
		if err := faultfs.CopyFile(fsys, filepath.Join(dir, name), filepath.Join(s.dir.Root(), name)); err != nil {
			return err
		}
		l, err := s.dir.Open(name)
		if err != nil {
			return err
		}
		s.files[w] = l
		s.epochs[w] = ckpt.Rand64()
	}
	return nil
}

// parseWindowFileName inverts windowFileName.
func parseWindowFileName(name string) (window.Window, bool) {
	if !strings.HasPrefix(name, "win_") || !strings.HasSuffix(name, ".log") {
		return window.Window{}, false
	}
	var start, end int64
	if _, err := fmt.Sscanf(name, "win_%d_%d.log", &start, &end); err != nil {
		return window.Window{}, false
	}
	return window.Window{Start: start, End: end}, true
}
