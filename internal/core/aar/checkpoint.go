package aar

import (
	"fmt"
	"path/filepath"
	"strings"

	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// Checkpoint writes a consistent snapshot of the instance's state into
// dir (created if needed). The paper's §8 describes the discipline:
// in-memory data is flushed to disk first, so the on-disk files form the
// snapshot and can be copied while processing resumes. Checkpoint flushes
// and then copies each per-window log; every copy is fsynced before it
// counts, so a later atomic commit (internal/core's tmp+rename) can rely
// on the bytes being durable.
//
// Checkpoint holds only ioMu, so concurrent Appends proceed while the
// snapshot is written; the cut is the instant the buffer is detached
// inside the flush. Tuples appended after that instant are not in the
// snapshot.
func (s *Store) Checkpoint(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()
	if err := s.flushAllLocked(); err != nil {
		return err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("aar: checkpoint: %w", err)
	}
	for w, l := range s.files {
		if err := l.Flush(); err != nil {
			return err
		}
		if err := faultfs.CopyFile(fsys, l.Path(), filepath.Join(dir, windowFileName(w))); err != nil {
			return err
		}
	}
	return nil
}

// Restore rebuilds an instance's state from a checkpoint directory
// written by Checkpoint. The store must be freshly opened (empty).
// Window boundaries are recovered from the per-window file names.
func (s *Store) Restore(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.buf) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("aar: restore into a non-empty store")
	}
	s.mu.Unlock()
	if len(s.files) != 0 {
		return fmt.Errorf("aar: restore into a non-empty store")
	}
	fsys := s.dir.FS()
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("aar: restore: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		w, ok := parseWindowFileName(name)
		if !ok {
			continue
		}
		if err := faultfs.CopyFile(fsys, filepath.Join(dir, name), filepath.Join(s.dir.Root(), name)); err != nil {
			return err
		}
		l, err := s.dir.Open(name)
		if err != nil {
			return err
		}
		s.files[w] = l
	}
	return nil
}

// parseWindowFileName inverts windowFileName.
func parseWindowFileName(name string) (window.Window, bool) {
	if !strings.HasPrefix(name, "win_") || !strings.HasSuffix(name, ".log") {
		return window.Window{}, false
	}
	var start, end int64
	if _, err := fmt.Sscanf(name, "win_%d_%d.log", &start, &end); err != nil {
		return window.Window{}, false
	}
	return window.Window{Start: start, End: end}, true
}
