package aar

import (
	"fmt"
	"path/filepath"
	"testing"

	"flowkv/internal/window"
)

func TestStoreLevelCheckpointRestore(t *testing.T) {
	src := openTest(t, Options{WriteBufferBytes: 256})
	w1 := window.Window{Start: -100, End: 0} // negative boundaries too
	w2 := window.Window{Start: 0, End: 100}
	for i := 0; i < 30; i++ {
		src.Append([]byte(fmt.Sprintf("k%d", i%4)), []byte(fmt.Sprintf("v%02d", i)), w1)
		src.Append([]byte(fmt.Sprintf("k%d", i%4)), []byte(fmt.Sprintf("u%02d", i)), w2)
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}

	dst, err := Open(Options{Dir: filepath.Join(t.TempDir(), "restored")})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Destroy()
	if err := dst.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if dst.LiveWindows() != 2 {
		t.Fatalf("restored LiveWindows = %d, want 2", dst.LiveWindows())
	}
	for _, tc := range []struct {
		w      window.Window
		prefix string
	}{{w1, "v"}, {w2, "u"}} {
		want := drain(t, src, tc.w)
		got := drain(t, dst, tc.w)
		if len(got) != len(want) {
			t.Fatalf("window %v: %d keys, want %d", tc.w, len(got), len(want))
		}
		for k, vs := range want {
			if len(got[k]) != len(vs) {
				t.Fatalf("window %v key %s: %v want %v", tc.w, k, got[k], vs)
			}
			for i := range vs {
				if got[k][i] != vs[i] {
					t.Fatalf("window %v key %s[%d]: %q want %q", tc.w, k, i, got[k][i], vs[i])
				}
			}
		}
	}
	// Restored store keeps accepting appends into the restored windows.
	w3 := window.Window{Start: 100, End: 200}
	if err := dst.Append([]byte("new"), []byte("x"), w3); err != nil {
		t.Fatal(err)
	}
	if got := drain(t, dst, w3); len(got["new"]) != 1 {
		t.Fatalf("post-restore window: %v", got)
	}
}

func TestRestoreIntoDirtyStoreFails(t *testing.T) {
	src := openTest(t, Options{})
	src.Append([]byte("k"), []byte("v"), window.Window{Start: 0, End: 100})
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	dirty := openTest(t, Options{})
	dirty.Append([]byte("x"), []byte("y"), window.Window{Start: 0, End: 100})
	if err := dirty.Restore(ckpt); err == nil {
		t.Error("restore into dirty store accepted")
	}
}

func TestCheckpointClosed(t *testing.T) {
	s := openTest(t, Options{})
	s.Close()
	if err := s.Checkpoint(t.TempDir()); err != ErrClosed {
		t.Errorf("Checkpoint: %v", err)
	}
	if err := s.Restore(t.TempDir()); err != ErrClosed {
		t.Errorf("Restore: %v", err)
	}
}

func TestParseWindowFileName(t *testing.T) {
	cases := []struct {
		name string
		want window.Window
		ok   bool
	}{
		{"win_0_100.log", window.Window{Start: 0, End: 100}, true},
		{"win_-100_0.log", window.Window{Start: -100, End: 0}, true},
		{"win_5_10", window.Window{}, false},
		{"data-000001.log", window.Window{}, false},
		{"win_x_y.log", window.Window{}, false},
	}
	for _, tc := range cases {
		got, ok := parseWindowFileName(tc.name)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("parseWindowFileName(%q) = %v,%v; want %v,%v", tc.name, got, ok, tc.want, tc.ok)
		}
	}
	// Round trip with the producer.
	w := window.Window{Start: 12345, End: 67890}
	got, ok := parseWindowFileName(windowFileName(w))
	if !ok || got != w {
		t.Errorf("round trip = %v,%v", got, ok)
	}
}
