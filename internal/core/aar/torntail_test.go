package aar

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// TestTornTailRecovery tears a per-window log write mid-record with the
// fault injector, then restores the surviving file into a fresh store:
// the torn tail must be silently truncated (logfile.recoverEnd) so the
// drain returns exactly the records flushed before the tear — no torn
// garbage, no batch-2 leakage.
func TestTornTailRecovery(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	dir := filepath.Join(t.TempDir(), "aar")
	s, err := Open(Options{Dir: dir, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	w := window.Window{Start: 0, End: 100}

	// Batch 1: durably on disk before any fault is armed.
	want := map[string]string{}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		v := fmt.Sprintf("a%02d", i)
		if err := s.Append([]byte(k), []byte(v), w); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Batch 2: the flush that would persist it tears after 7 bytes and
	// the machine "crashes".
	inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "win_", TornBytes: 7, Crash: true})
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		if err := s.Append([]byte(k), []byte(fmt.Sprintf("b%02d", i)), w); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err == nil {
		t.Fatal("flush through a torn write unexpectedly succeeded")
	}
	if !inj.Fired() {
		t.Fatal("fault never fired")
	}
	_ = s.Close()
	inj.Reset()

	// Reboot: ship the surviving (torn) window file as a checkpoint.
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	name := windowFileName(w)
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(ckpt, name), b, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(Options{Dir: filepath.Join(t.TempDir(), "fresh")})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()
	if err := fresh.Restore(ckpt); err != nil {
		t.Fatalf("restore of torn-tail checkpoint: %v", err)
	}
	got := map[string]string{}
	for {
		part, err := fresh.GetWindow(w)
		if err != nil {
			t.Fatalf("drain after torn-tail restore: %v", err)
		}
		if part == nil {
			break
		}
		for _, kv := range part {
			for _, v := range kv.Values {
				if prev, dup := got[string(kv.Key)]; dup {
					t.Fatalf("key %s duplicated: %q and %q", kv.Key, prev, v)
				}
				got[string(kv.Key)] = string(v)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d keys, want %d: %v", len(got), len(want), got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s = %q, want %q (batch-2 leak or torn garbage)", k, got[k], v)
		}
	}
}
