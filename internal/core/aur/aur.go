// Package aur implements FlowKV's Append and Unaligned Read store (paper
// §4.2), used for holistic window operations whose windows trigger at
// per-key times (session, count, and custom windows).
//
// Layout. The in-memory write buffer hashes tuples by (key, initial
// window boundary). Flushes append value batches to a single global data
// log and append one location entry per batch — (key, window, offset,
// length) — to an append-only *index log*, keeping per-window location
// metadata on disk rather than in memory.
//
// Predictive batch read. An in-memory Stat table tracks each live
// window's estimated trigger time (ETT), computed by a window-semantics
// predictor from the statically-known window function and the maximum
// tuple timestamp seen (for session windows: maxTS + gap, a guaranteed
// lower bound on the trigger). When a Get misses the prefetch buffer, the
// store scans the index log once, selects the N windows closest to their
// ETT (N = read-batch ratio × live windows), and loads all of them with
// coalesced range reads. Subsequent triggers hit in memory; the paper
// observes ≈0.93 hit ratio at ratio 0.02, i.e. ≈1.08× read amplification
// (Equation 1). A tuple arriving for a prefetched window proves the ETT
// wrong and evicts that window's prefetched state.
//
// Integrated compaction. Consumed (fetched & removed) entries leave dead
// bytes in the data log. When space amplification total/(total-dead)
// exceeds the MSA threshold, compaction reuses the index scan already
// performed for predictive batch read, transferring live byte runs to a
// fresh data log with zero-copy file transfer and writing a fresh index
// log. The SeparateCompactionScan option disables the integration for
// ablation, issuing a dedicated scan instead.
//
// # Concurrency
//
// A Store instance is safe for concurrent use. Two locks split the state:
//
//   - mu guards the in-memory maps: write buffer, Stat table, prefetch
//     buffer and the per-id on-disk byte accounting. Appends, and
//     Get/Read/Drop of state that lives only in the buffer, take mu
//     alone, so ingestion never waits for disk.
//   - ioMu serializes everything involving the data and index logs:
//     flushes, index scans, span loads, compaction, checkpoints — plus
//     the consumed set and dead-byte counter, which only disk-touching
//     paths mutate. mu is never held across I/O; a flush detaches the
//     buffer under mu, writes with only ioMu held, and installs the
//     on-disk accounting under mu again.
//
// The lock order is ioMu before mu; mu is never held while acquiring
// ioMu. Operations on an identity with on-disk state, or one mid-flight
// in a flush, divert to the slow path (which waits on ioMu) so a
// fetch-&-remove can never miss values between buffer and log.
package aur

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"flowkv/internal/binio"
	"flowkv/internal/ckpt"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("aur: store closed")

// DisableFlushReattach, when set, restores the historical behaviour of
// dropping the unwritten remainder of a detached batch when a flush
// fails. It exists only so the error-injection battery can demonstrate
// that the re-attach is load-bearing; production code must never set it.
var DisableFlushReattach bool

// Options configures an AUR store instance.
type Options struct {
	// Dir is the directory holding the instance's data and index logs.
	Dir string
	// WriteBufferBytes caps the in-memory write buffer; exceeding it
	// flushes every buffered batch. Default 32 MiB.
	WriteBufferBytes int64
	// ReadBatchRatio sets the fraction of live (key, window) states
	// prefetched per predictive batch read. 0 disables prediction (every
	// read with on-disk state scans the index log for that state alone).
	// The paper's default is 0.02.
	ReadBatchRatio float64
	// MinBatchWindows floors the per-scan prefetch count when the ratio
	// yields fewer (small live sets would otherwise trigger an index
	// scan every few reads; at the paper's scale ratio × live windows is
	// in the thousands and this floor is never reached). Default 64.
	MinBatchWindows int
	// MaxSpaceAmplification (MSA) triggers compaction when
	// total/(total-dead) data-log bytes exceed it. Default 1.5.
	MaxSpaceAmplification float64
	// Predictor estimates window trigger times. nil disables prediction
	// (the degraded mode FlowKV uses for count and custom windows).
	Predictor window.Predictor
	// SeparateCompactionScan runs compaction with its own index-log scan
	// instead of piggybacking on predictive batch read (ablation).
	SeparateCompactionScan bool
	// CoalesceGapBytes is the maximum dead gap bridged when batching
	// adjacent range reads. Default 32 KiB.
	CoalesceGapBytes int64
	// ReadParallelism bounds the worker goroutines fanning the coalesced
	// range reads of one predictive batch read across the data log.
	// 1 reads serially. Default 4.
	ReadParallelism int
	// FS is the filesystem seam; nil means the real OS filesystem.
	// Fault-injection tests substitute a faultfs.Injector.
	FS faultfs.FS
	// Breakdown receives per-operation CPU time and I/O accounting.
	Breakdown *metrics.Breakdown
	// Policy bounds and observes the store's log I/O (deadline sentinel
	// + latency monitor); nil is a passthrough. Shared by reference: the
	// composite store installs one policy across its instances.
	Policy *logfile.Policy
}

func (o *Options) fill() {
	if o.WriteBufferBytes <= 0 {
		o.WriteBufferBytes = 32 << 20
	}
	if o.MaxSpaceAmplification <= 0 {
		o.MaxSpaceAmplification = 1.5
	}
	if o.CoalesceGapBytes <= 0 {
		o.CoalesceGapBytes = 32 << 10
	}
	if o.MinBatchWindows <= 0 {
		o.MinBatchWindows = 64
	}
	if o.ReadParallelism <= 0 {
		o.ReadParallelism = 4
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
}

// id identifies one unit of state: a key plus the *initial* window
// boundary, fixed at window creation even if the session later grows
// (§4.2 "FlowKV leverages the initial window boundary").
type id struct {
	key string
	w   window.Window
}

type bufEntry struct {
	values [][]byte
	bytes  int64
}

// statEntry is one row of the in-memory Stat table.
type statEntry struct {
	maxTS  int64
	ett    int64
	hasETT bool
}

// span locates one flushed value batch inside the data log.
type span struct {
	off int64
	n   int
}

// statMark records that an identity's Stat entry changed after the last
// committed delta cut: tomb for removals (consume, Drop), an upsert
// otherwise. seq lets a checkpoint retire exactly the marks it absorbed.
type statMark struct {
	seq  uint64
	tomb bool
}

// Store is a single AUR store instance, safe for concurrent use.
type Store struct {
	opts Options
	dir  *logfile.Dir
	bd   *metrics.Breakdown

	// mu guards the in-memory state below.
	mu       sync.Mutex
	buf      map[id]*bufEntry
	bufBytes int64
	stat     map[id]*statEntry
	onDisk   map[id]int64 // bytes of flushed record data per live id
	flushing map[id]*bufEntry
	closed   bool
	// statDeltas marks identities whose Stat entry changed since the
	// last committed delta checkpoint, so an incremental checkpoint
	// ships only those rows (as upserts or tombstones) instead of
	// rewriting the whole table. statSeq orders the marks; lastCutID is
	// the SEGMENTS CutID of the last committed delta cut, which a
	// parent checkpoint must match for its stat stream to be extended.
	statDeltas map[id]statMark
	statSeq    uint64
	lastCutID  uint64

	prefetch      map[id][][]byte
	prefetchBytes int64

	// ioMu serializes log I/O and the state only disk paths touch.
	// Never acquired while holding mu.
	ioMu sync.Mutex
	// syncMu admits one split sync at a time; held around (not under)
	// ioMu so the fsyncs run with ioMu released.
	syncMu sync.Mutex
	// consumed is keyed by the canonical (key, window) byte encoding —
	// the same prefix every index entry starts with — so the index scan
	// can test deadness without allocating an id per entry.
	consumed map[string]struct{}
	dataLog  *logfile.Log
	indexLog *logfile.Log
	gen      int
	// genEpoch is a random identity for the current log generation,
	// recorded in delta-checkpoint SEGMENTS manifests. Compaction (or
	// any other generation swap) changes it, so a delta checkpoint can
	// only extend a parent whose logs are still a live prefix; a
	// mismatch falls back to a full copy.
	genEpoch uint64
	dead     int64 // dead bytes in the current data log

	// Evaluation metrics.
	ratio       metrics.Ratio
	evictions   metrics.Counter
	compactions metrics.Counter
	indexScans  metrics.Counter
	batchReads  metrics.Counter
}

// Open creates an AUR store instance rooted at opts.Dir.
func Open(opts Options) (*Store, error) {
	opts.fill()
	dir, err := logfile.OpenDirFS(opts.FS, opts.Dir, opts.Breakdown)
	if err != nil {
		return nil, err
	}
	dir.SetPolicy(opts.Policy)
	s := &Store{
		opts:       opts,
		dir:        dir,
		bd:         opts.Breakdown,
		buf:        make(map[id]*bufEntry),
		stat:       make(map[id]*statEntry),
		onDisk:     make(map[id]int64),
		consumed:   make(map[string]struct{}),
		prefetch:   make(map[id][][]byte),
		statDeltas: make(map[id]statMark),
	}
	if err := s.openGen(0); err != nil {
		return nil, err
	}
	return s, nil
}

// markStatLocked records a Stat-table mutation for the next delta
// checkpoint; caller holds mu.
func (s *Store) markStatLocked(ident id, tomb bool) {
	s.statSeq++
	s.statDeltas[ident] = statMark{seq: s.statSeq, tomb: tomb}
}

// openGen swaps in fresh log generations; caller holds ioMu (or is Open).
func (s *Store) openGen(gen int) error {
	data, err := s.dir.Create(fmt.Sprintf("data-%06d.log", gen))
	if err != nil {
		return err
	}
	index, err := s.dir.Create(fmt.Sprintf("index-%06d.log", gen))
	if err != nil {
		data.Close()
		return err
	}
	s.dataLog, s.indexLog, s.gen = data, index, gen
	s.genEpoch = ckpt.Rand64()
	return nil
}

// Append adds the KV tuple with its window and timestamp (paper API:
// Append(K, V, W, T)). The timestamp feeds the window's ETT. Key and
// value are copied.
func (s *Store) Append(key, value []byte, w window.Window, ts int64) error {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpWrite)
	}
	err := s.append(key, value, w, ts)
	if stop != nil {
		stop()
	}
	return err
}

func (s *Store) append(key, value []byte, w window.Window, ts int64) error {
	ident := id{key: string(key), w: w}
	vc := make([]byte, len(value))
	copy(vc, value)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// A new tuple for a prefetched window proves its ETT estimate wrong:
	// evict the stale prefetched state (§4.2); it will be re-read when
	// the window actually triggers.
	if _, ok := s.prefetch[ident]; ok {
		s.dropPrefetchLocked(ident)
		s.evictions.Inc()
	}

	e := s.buf[ident]
	if e == nil {
		e = &bufEntry{}
		s.buf[ident] = e
	}
	e.values = append(e.values, vc)
	sz := int64(len(value) + 24)
	e.bytes += sz
	s.bufBytes += sz

	// Update the Stat table (step ②).
	st := s.stat[ident]
	if st == nil {
		st = &statEntry{maxTS: ts}
		s.stat[ident] = st
		s.markStatLocked(ident, false)
	} else if ts > st.maxTS {
		st.maxTS = ts
		s.markStatLocked(ident, false)
	}
	if s.opts.Predictor != nil {
		if ett, ok := s.opts.Predictor.ETT(w, st.maxTS); ok {
			st.ett, st.hasETT = ett, true
		}
	}
	need := s.bufBytes > s.opts.WriteBufferBytes
	s.mu.Unlock()

	if !need {
		return nil
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if s.opts.SeparateCompactionScan {
		return s.maybeCompactSeparateLocked()
	}
	return nil
}

// flushLocked spills the write buffer: one data record and one index
// entry per buffered (key, window) batch (step ③). Caller holds ioMu.
// The buffer is detached under mu and written with only ioMu held, so
// ingestion proceeds; ids in the detached batch are marked in-flight,
// diverting their reads to the slow path until the on-disk accounting is
// installed.
func (s *Store) flushLocked() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	batch := s.buf
	if len(batch) == 0 {
		s.mu.Unlock()
		return nil
	}
	s.buf = make(map[id]*bufEntry)
	s.bufBytes = 0
	s.flushing = batch
	s.mu.Unlock()

	type wrec struct {
		ident id
		n     int64
	}
	written := make([]wrec, 0, len(batch))
	var payload, idxPayload []byte
	var werr error
	for ident, e := range batch {
		payload = binio.PutUvarint(payload[:0], uint64(len(e.values)))
		for _, v := range e.values {
			payload = binio.PutBytes(payload, v)
		}
		off, n, err := s.dataLog.Append(payload)
		if err != nil {
			werr = err
			break
		}
		idxPayload = encodeIndexEntry(idxPayload[:0], ident, span{off, n})
		if _, _, err := s.indexLog.Append(idxPayload); err != nil {
			// The data record just written has no index entry referencing
			// it; account the orphan dead so compaction reclaims it.
			s.dead += int64(n)
			werr = err
			break
		}
		written = append(written, wrec{ident, int64(n)})
	}

	s.mu.Lock()
	s.flushing = nil
	for _, wr := range written {
		delete(batch, wr.ident)
		s.onDisk[wr.ident] += wr.n
		// A prefetch entry covers every flushed span of its id at the
		// instant it was installed; the span just written is not among
		// them, so the entry (installed by a batch read that targeted a
		// different id while this one sat in the buffer) is now stale
		// and must go, exactly as an append evicts it.
		if _, ok := s.prefetch[wr.ident]; ok {
			s.dropPrefetchLocked(wr.ident)
			s.evictions.Inc()
		}
	}
	if werr != nil && !DisableFlushReattach {
		// Flush failure is atomic: batches the logs did not fully accept
		// go back into the live buffer, prepended so value order per id
		// stays chronological relative to appends that raced in since
		// the detach. No acked Append is lost.
		for ident, e := range batch {
			cur := s.buf[ident]
			if cur == nil {
				s.buf[ident] = e
			} else {
				cur.values = append(e.values, cur.values...)
				cur.bytes += e.bytes
			}
			s.bufBytes += e.bytes
			if _, ok := s.prefetch[ident]; ok {
				s.dropPrefetchLocked(ident)
				s.evictions.Inc()
			}
		}
	}
	s.mu.Unlock()
	return werr
}

// identBytes returns the canonical byte encoding of an identity, equal
// to the prefix of its index entries.
func identBytes(ident id) []byte {
	b := binio.PutBytes(nil, []byte(ident.key))
	return ident.w.AppendTo(b)
}

// liveEntry groups one live identity's flushed spans during a scan.
type liveEntry struct {
	ident id
	spans []span
}

func encodeIndexEntry(dst []byte, ident id, sp span) []byte {
	dst = binio.PutBytes(dst, []byte(ident.key))
	dst = ident.w.AppendTo(dst)
	dst = binio.PutUvarint(dst, uint64(sp.off))
	dst = binio.PutUvarint(dst, uint64(sp.n))
	return dst
}

func decodeIndexEntry(b []byte) (ident id, sp span, err error) {
	k, n, err := binio.Bytes(b)
	if err != nil {
		return id{}, span{}, err
	}
	b = b[n:]
	w, n, err := window.Decode(b)
	if err != nil {
		return id{}, span{}, err
	}
	b = b[n:]
	off, n, err := binio.Uvarint(b)
	if err != nil {
		return id{}, span{}, err
	}
	b = b[n:]
	ln, _, err := binio.Uvarint(b)
	if err != nil {
		return id{}, span{}, err
	}
	return id{key: string(k), w: w}, span{off: int64(off), n: int(ln)}, nil
}

// fastPathLocked reports whether ident can be served under mu alone:
// no on-disk state and no copy mid-flight in a flush. Caller holds mu.
func (s *Store) fastPathLocked(ident id) bool {
	if s.onDisk[ident] > 0 {
		return false
	}
	_, inflight := s.flushing[ident]
	return !inflight
}

// Get fetches and removes the values of (key, window) (paper API:
// Get(K, W)). Values are returned in append order. A nil slice means the
// state does not exist.
func (s *Store) Get(key []byte, w window.Window) ([][]byte, error) {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpRead)
	}
	vals, err := s.get(key, w)
	if stop != nil {
		stop()
	}
	return vals, err
}

func (s *Store) get(key []byte, w window.Window) ([][]byte, error) {
	ident := id{key: string(key), w: w}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.fastPathLocked(ident) {
		var bufVals [][]byte
		if e, ok := s.buf[ident]; ok {
			bufVals = e.values
			s.bufBytes -= e.bytes
			delete(s.buf, ident)
		}
		delete(s.stat, ident)
		s.markStatLocked(ident, true)
		s.mu.Unlock()
		return bufVals, nil
	}
	s.mu.Unlock()

	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	// Any flush that was in flight has completed: state is buffer + disk.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var diskVals [][]byte
	if s.onDisk[ident] > 0 {
		if pv, ok := s.prefetch[ident]; ok {
			// Step ④: served from the prefetch buffer.
			s.ratio.Hit()
			diskVals = pv
		} else {
			// Miss: predictive batch read (steps ⑤–⑦). The values come
			// back directly: a concurrent Append to this id while mu is
			// released would evict its fresh prefetch entry, so the map
			// cannot be re-read here.
			s.ratio.Miss()
			s.mu.Unlock()
			vals, err := s.batchReadLocked(ident)
			if err != nil {
				return nil, err
			}
			s.mu.Lock()
			diskVals = vals
		}
		s.dropPrefetchLocked(ident)
		s.dead += s.onDisk[ident]
		delete(s.onDisk, ident)
		s.consumed[string(identBytes(ident))] = struct{}{}
	}
	var bufVals [][]byte
	if e, ok := s.buf[ident]; ok {
		bufVals = e.values
		s.bufBytes -= e.bytes
		delete(s.buf, ident)
	}
	delete(s.stat, ident)
	s.markStatLocked(ident, true)
	s.mu.Unlock()

	if diskVals == nil && bufVals == nil {
		return nil, nil
	}
	return append(diskVals, bufVals...), nil
}

// Read returns the values of (key, window) without consuming them, in
// append order. Unlike Get, the state stays live (and stays in the
// prefetch buffer if a disk read was needed). This supports operators
// that probe state repeatedly before discarding it wholesale — e.g.
// interval joins (§8) — while preserving the AUR layout.
func (s *Store) Read(key []byte, w window.Window) ([][]byte, error) {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpRead)
	}
	vals, err := s.read(key, w)
	if stop != nil {
		stop()
	}
	return vals, err
}

func (s *Store) read(key []byte, w window.Window) ([][]byte, error) {
	ident := id{key: string(key), w: w}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.fastPathLocked(ident) {
		var out [][]byte
		if e, ok := s.buf[ident]; ok {
			out = append(out, e.values...)
		}
		s.mu.Unlock()
		return out, nil
	}
	s.mu.Unlock()

	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	var diskVals [][]byte
	if s.onDisk[ident] > 0 {
		if pv, ok := s.prefetch[ident]; ok {
			s.ratio.Hit()
			diskVals = pv
		} else {
			s.ratio.Miss()
			s.mu.Unlock()
			vals, err := s.batchReadLocked(ident)
			if err != nil {
				return nil, err
			}
			s.mu.Lock()
			diskVals = vals
		}
	}
	var bufVals [][]byte
	if e, ok := s.buf[ident]; ok {
		bufVals = e.values
	}
	s.mu.Unlock()

	if diskVals == nil && bufVals == nil {
		return nil, nil
	}
	out := make([][]byte, 0, len(diskVals)+len(bufVals))
	out = append(out, diskVals...)
	return append(out, bufVals...), nil
}

// Peek returns the number of buffered, on-disk and prefetched bytes held
// for (key, window) without consuming them. Diagnostic/testing hook.
func (s *Store) Peek(key []byte, w window.Window) (buffered, onDisk int64, prefetched bool) {
	ident := id{key: string(key), w: w}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.buf[ident]; ok {
		buffered = e.bytes
	}
	_, prefetched = s.prefetch[ident]
	return buffered, s.onDisk[ident], prefetched
}

// ForEachLive invokes fn for every live (unconsumed) unit of state — a
// (key, initial window) identity — with its values in append order and
// the maximum event timestamp observed for the identity. The enumeration
// is non-destructive: values stay live and the Stat table row is kept.
// Used by job rescaling to re-route committed state into a new worker
// set. Identities are visited in (key, window) order.
func (s *Store) ForEachLive(fn func(key []byte, w window.Window, values [][]byte, maxTS int64) error) error {
	type liveID struct {
		ident id
		maxTS int64
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	ids := make([]liveID, 0, len(s.stat))
	for ident, st := range s.stat {
		ids = append(ids, liveID{ident: ident, maxTS: st.maxTS})
	}
	s.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].ident.key != ids[j].ident.key {
			return ids[i].ident.key < ids[j].ident.key
		}
		return ids[i].ident.w.Before(ids[j].ident.w)
	})
	for _, li := range ids {
		vals, err := s.Read([]byte(li.ident.key), li.ident.w)
		if err != nil {
			return err
		}
		if len(vals) == 0 {
			continue
		}
		if err := fn([]byte(li.ident.key), li.ident.w, vals, li.maxTS); err != nil {
			return err
		}
	}
	return nil
}

// Drop discards all state of (key, window) without reading it.
func (s *Store) Drop(key []byte, w window.Window) error {
	ident := id{key: string(key), w: w}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.fastPathLocked(ident) {
		if e, ok := s.buf[ident]; ok {
			s.bufBytes -= e.bytes
			delete(s.buf, ident)
		}
		delete(s.stat, ident)
		s.markStatLocked(ident, true)
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if e, ok := s.buf[ident]; ok {
		s.bufBytes -= e.bytes
		delete(s.buf, ident)
	}
	s.dropPrefetchLocked(ident)
	if n := s.onDisk[ident]; n > 0 {
		s.dead += n
		delete(s.onDisk, ident)
		s.consumed[string(identBytes(ident))] = struct{}{}
	}
	delete(s.stat, ident)
	s.markStatLocked(ident, true)
	s.mu.Unlock()
	return nil
}

// dropPrefetchLocked removes ident's prefetched values; caller holds mu.
func (s *Store) dropPrefetchLocked(ident id) {
	if vs, ok := s.prefetch[ident]; ok {
		for _, v := range vs {
			s.prefetchBytes -= int64(len(v))
		}
		delete(s.prefetch, ident)
	}
}

// batchReadLocked performs one predictive batch read targeting ident:
// scan the index log, select the target plus the N live windows nearest
// their ETT, load them into the prefetch buffer with coalesced range
// reads, and — in integrated mode — run compaction off the same scan if
// space amplification exceeds MSA. Caller holds ioMu (not mu).
//
// The target's values are returned directly rather than via the
// prefetch buffer: a concurrent Append to the target between the
// prefetch install and the caller's next mu acquisition evicts the
// entry, so a caller that re-read s.prefetch[target] could find nothing
// and lose the on-disk values it is about to consume.
func (s *Store) batchReadLocked(target id) ([][]byte, error) {
	// No flush here: the index only needs to cover flushed state — a
	// Get serves still-buffered values straight from the write buffer,
	// and onDisk bytes are by definition already indexed.
	live, order, err := s.scanIndexLocked()
	if err != nil {
		return nil, err
	}
	s.batchReads.Inc()

	// Select candidates: the target plus the N ids with the smallest
	// time-to-ETT, N = ceil(ratio × live states) so any positive ratio
	// prefetches at least one upcoming window. Ids without an ETT cannot
	// be predicted and are only loaded on demand. The Stat table and
	// prefetch membership are read under mu; the spans themselves are
	// stable while ioMu is held.
	var selected []*liveEntry
	if e := live[string(identBytes(target))]; e != nil {
		selected = append(selected, e)
	}
	s.mu.Lock()
	n := int(math.Ceil(s.opts.ReadBatchRatio * float64(len(s.stat))))
	if s.opts.ReadBatchRatio > 0 && n < s.opts.MinBatchWindows {
		n = s.opts.MinBatchWindows
	}
	if n > 0 {
		type cand struct {
			e   *liveEntry
			ett int64
		}
		cands := make([]cand, 0, len(order))
		for _, e := range order {
			if e.ident == target {
				continue
			}
			if _, already := s.prefetch[e.ident]; already {
				continue
			}
			st := s.stat[e.ident]
			if st == nil || !st.hasETT {
				continue
			}
			cands = append(cands, cand{e, st.ett})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].ett < cands[j].ett })
		if len(cands) > n {
			cands = cands[:n]
		}
		for _, c := range cands {
			selected = append(selected, c.e)
		}
	}
	s.mu.Unlock()

	targetVals, err := s.loadSpansLocked(selected, target)
	if err != nil {
		return nil, err
	}

	// Step ⑦: integrated compaction rides the scan we just did.
	if !s.opts.SeparateCompactionScan && s.spaceAmpLocked() > s.opts.MaxSpaceAmplification {
		if err := s.compact(live, order); err != nil {
			return nil, err
		}
	}
	return targetVals, nil
}

// scanIndexLocked reads the index log once and returns the live spans
// grouped by identity, in first-appearance (chronological) order. Caller
// holds ioMu, under which the consumed set is stable. The scan is
// allocation-light: each entry's identity prefix is matched against the
// live and consumed maps without constructing an id; parsing happens
// once per unique live identity.
func (s *Store) scanIndexLocked() (map[string]*liveEntry, []*liveEntry, error) {
	s.indexScans.Inc()
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpRead)
	}
	defer func() {
		if stop != nil {
			stop()
		}
	}()
	sc, err := s.indexLog.Scanner(0)
	if err != nil {
		return nil, nil, err
	}
	live := make(map[string]*liveEntry)
	var order []*liveEntry
	for sc.Scan() {
		rec := sc.Record()
		prefix, sp, err := splitIndexEntry(rec)
		if err != nil {
			return nil, nil, fmt.Errorf("aur: index entry: %w", err)
		}
		if _, dead := s.consumed[string(prefix)]; dead {
			continue
		}
		e := live[string(prefix)]
		if e == nil {
			ident, _, err := decodeIndexEntry(rec)
			if err != nil {
				return nil, nil, fmt.Errorf("aur: index entry: %w", err)
			}
			e = &liveEntry{ident: ident}
			live[string(prefix)] = e
			order = append(order, e)
		}
		e.spans = append(e.spans, sp)
	}
	return live, order, sc.Err()
}

// splitIndexEntry returns an index entry's identity prefix (aliasing b)
// and its span, without allocating.
func splitIndexEntry(b []byte) (prefix []byte, sp span, err error) {
	kl, n, err := binio.Uvarint(b)
	if err != nil {
		return nil, span{}, err
	}
	// Compare in uint64 space: a corrupt length near MaxUint64 would
	// overflow n+int(kl) to a negative slice bound.
	if kl > uint64(len(b)-n) {
		return nil, span{}, binio.ErrShortBuffer
	}
	p := n + int(kl)
	// Skip the two window varints.
	for i := 0; i < 2; i++ {
		_, n, err := binio.Varint(b[p:])
		if err != nil {
			return nil, span{}, err
		}
		p += n
	}
	prefix = b[:p]
	off, n, err := binio.Uvarint(b[p:])
	if err != nil {
		return nil, span{}, err
	}
	p += n
	ln, _, err := binio.Uvarint(b[p:])
	if err != nil {
		return nil, span{}, err
	}
	return prefix, span{off: int64(off), n: int(ln)}, nil
}

// loadTask is one data-log span to load during a batch read.
type loadTask struct {
	ident id
	sp    span
	seq   int
	vals  [][]byte
}

// loadRun is a coalesced range of adjacent tasks read with one I/O.
type loadRun struct {
	base, end int64
	lo, hi    int // inclusive task range
}

// loadSpansLocked reads the data-log spans of every selected id into the
// prefetch buffer, coalescing adjacent ranges into single reads and
// fanning independent ranges across ReadParallelism worker goroutines
// (positional reads on the flushed log are independent). Caller holds
// ioMu (not mu); the decoded values are installed under mu at the end.
// The target's values are also returned directly (see batchReadLocked).
func (s *Store) loadSpansLocked(selected []*liveEntry, target id) ([][]byte, error) {
	var tasks []*loadTask
	for _, e := range selected {
		for i, sp := range e.spans {
			tasks = append(tasks, &loadTask{ident: e.ident, sp: sp, seq: i})
		}
	}
	if len(tasks) == 0 {
		return nil, nil
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].sp.off != tasks[j].sp.off {
			return tasks[i].sp.off < tasks[j].sp.off
		}
		return tasks[i].seq < tasks[j].seq
	})

	// Values must land in flush order per id; spans were recorded
	// per-id chronologically, and since the data log is append-only,
	// ascending offset order coincides with chronological order.
	var runs []loadRun
	i := 0
	for i < len(tasks) {
		// Coalesce a run of tasks whose byte ranges are near-adjacent.
		j := i
		end := tasks[i].sp.off + int64(tasks[i].sp.n)
		for j+1 < len(tasks) && tasks[j+1].sp.off-end <= s.opts.CoalesceGapBytes {
			j++
			if e := tasks[j].sp.off + int64(tasks[j].sp.n); e > end {
				end = e
			}
		}
		runs = append(runs, loadRun{base: tasks[i].sp.off, end: end, lo: i, hi: j})
		i = j + 1
	}

	frameVer := s.dataLog.Version()
	loadRun := func(r loadRun, read func(off int64, n int) ([]byte, error)) error {
		raw, err := read(r.base, int(r.end-r.base))
		if err != nil {
			return err
		}
		for k := r.lo; k <= r.hi; k++ {
			t := tasks[k]
			rec := raw[t.sp.off-r.base : t.sp.off-r.base+int64(t.sp.n)]
			payload, used, err := binio.ReadRecordV(rec, frameVer)
			if err != nil {
				return fmt.Errorf("aur: data record at %d: %w", t.sp.off, err)
			}
			if used != len(rec) {
				return fmt.Errorf("aur: data record at %d: frame spans %d of %d indexed bytes: %w",
					t.sp.off, used, len(rec), binio.ErrCorrupt)
			}
			vals, err := decodeValues(payload)
			if err != nil {
				return err
			}
			t.vals = vals
		}
		return nil
	}

	// A poisoned data log cannot serve raw positional reads (part of the
	// range may live only in its retained in-memory tail); the serial
	// path below goes through ReadRangeAt, which stitches the durable
	// prefix with the tail, keeping degraded reads working. The same
	// fallback catches a flush that fails (and poisons the log) here.
	parallel := s.opts.ReadParallelism > 1 && len(runs) > 1 && s.dataLog.Poisoned() == nil
	if parallel && s.dataLog.Flush() != nil {
		parallel = false
	}
	if parallel {
		workers := s.opts.ReadParallelism
		if workers > len(runs) {
			workers = len(runs)
		}
		var (
			wg   sync.WaitGroup
			next int64
			emu  sync.Mutex
			ferr error
		)
		nextRun := func() int {
			emu.Lock()
			defer emu.Unlock()
			if ferr != nil || next >= int64(len(runs)) {
				return -1
			}
			n := next
			next++
			return int(n)
		}
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					ri := nextRun()
					if ri < 0 {
						return
					}
					if err := loadRun(runs[ri], s.dataLog.ReadRangeAtRaw); err != nil {
						emu.Lock()
						if ferr == nil {
							ferr = err
						}
						emu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if ferr != nil {
			return nil, ferr
		}
	} else {
		for _, r := range runs {
			if err := loadRun(r, s.dataLog.ReadRangeAt); err != nil {
				return nil, err
			}
		}
	}

	// Install in global offset order so per-id value order is
	// chronological. A concurrent Append may already have evicted and
	// re-created state for an id; re-installing is harmless — Get merges
	// prefetched disk values with newer buffered ones. The target's
	// values are also collected into a caller-owned slice that no
	// concurrent eviction can take away.
	var targetVals [][]byte
	s.mu.Lock()
	for _, t := range tasks {
		for _, v := range t.vals {
			s.prefetchBytes += int64(len(v))
		}
		s.prefetch[t.ident] = append(s.prefetch[t.ident], t.vals...)
		if t.ident == target {
			targetVals = append(targetVals, t.vals...)
		}
	}
	s.mu.Unlock()
	return targetVals, nil
}

func decodeValues(payload []byte) ([][]byte, error) {
	count, n, err := binio.Uvarint(payload)
	if err != nil {
		return nil, err
	}
	payload = payload[n:]
	vals := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		v, n, err := binio.Bytes(payload)
		if err != nil {
			return nil, err
		}
		payload = payload[n:]
		vc := make([]byte, len(v))
		copy(vc, v)
		vals = append(vals, vc)
	}
	return vals, nil
}

// spaceAmpLocked returns the data log's current space amplification
// total/(total-dead); 1.0 when the log is empty. Caller holds ioMu.
func (s *Store) spaceAmpLocked() float64 {
	total := s.dataLog.Size()
	if total == 0 || total == s.dead {
		return 1.0
	}
	return float64(total) / float64(total-s.dead)
}

// maybeCompactSeparateLocked is the ablation path: a dedicated index
// scan is issued whenever the space-amplification threshold is crossed.
// Caller holds ioMu.
func (s *Store) maybeCompactSeparateLocked() error {
	if s.spaceAmpLocked() <= s.opts.MaxSpaceAmplification {
		return nil
	}
	live, order, err := s.scanIndexLocked()
	if err != nil {
		return err
	}
	return s.compact(live, order)
}

// compact builds a fresh data log holding only live bytes (moved with
// zero-copy transfer) and a fresh index log, then removes the old
// generation (§4.2 "Integrated Compaction", §5 "Zero-copy Byte
// Transfer"). Caller holds ioMu; the live set cannot change underneath
// (consuming state requires ioMu) and appends only touch the buffer.
func (s *Store) compact(live map[string]*liveEntry, order []*liveEntry) error {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpCompact)
	}
	err := s.compactInner(live, order)
	if stop != nil {
		stop()
	}
	if err == nil {
		s.compactions.Inc()
	}
	return err
}

func (s *Store) compactInner(_ map[string]*liveEntry, order []*liveEntry) error {
	oldData, oldIndex, oldGen, oldEpoch := s.dataLog, s.indexLog, s.gen, s.genEpoch
	if err := s.openGen(oldGen + 1); err != nil {
		s.dataLog, s.indexLog, s.gen, s.genEpoch = oldData, oldIndex, oldGen, oldEpoch
		return err
	}
	abort := func() {
		// Revert to the old generation: nothing references the half-built
		// new logs yet, and the old ones still hold every live byte.
		badData, badIndex := s.dataLog, s.indexLog
		s.dataLog, s.indexLog, s.gen, s.genEpoch = oldData, oldIndex, oldGen, oldEpoch
		badData.Remove() // best effort; the fault may also block the unlinks
		badIndex.Remove()
	}

	// Gather live spans in offset order and transfer contiguous runs in
	// single zero-copy operations.
	type task struct {
		ident id
		sp    span
		seq   int
	}
	var tasks []task
	for _, e := range order {
		for i, sp := range e.spans {
			tasks = append(tasks, task{e.ident, sp, i})
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].sp.off < tasks[j].sp.off })

	newSpans := make(map[id][]span, len(order))
	i := 0
	for i < len(tasks) {
		j := i
		end := tasks[i].sp.off + int64(tasks[i].sp.n)
		for j+1 < len(tasks) && tasks[j+1].sp.off == end {
			j++
			end = tasks[j].sp.off + int64(tasks[j].sp.n)
		}
		base := tasks[i].sp.off
		newBase := s.dataLog.Size()
		if err := oldData.TransferTo(s.dataLog, base, end-base); err != nil {
			abort()
			return err
		}
		for k := i; k <= j; k++ {
			t := tasks[k]
			newSpans[t.ident] = append(newSpans[t.ident],
				span{off: newBase + (t.sp.off - base), n: t.sp.n})
		}
		i = j + 1
	}

	// Rewrite the index log: entries must stay chronological per id so
	// Get returns values in append order.
	var idxPayload []byte
	for _, e := range order {
		sps := newSpans[e.ident]
		sort.Slice(sps, func(a, b int) bool { return sps[a].off < sps[b].off })
		for _, sp := range sps {
			idxPayload = encodeIndexEntry(idxPayload[:0], e.ident, sp)
			if _, _, err := s.indexLog.Append(idxPayload); err != nil {
				abort()
				return err
			}
		}
	}

	// The new generation is fully built and referenced from here on, so
	// the accounting resets even if unlinking the old files fails (they
	// are garbage either way; the error still surfaces).
	s.dead = 0
	s.consumed = make(map[string]struct{})
	if err := oldData.Remove(); err != nil {
		return err
	}
	return oldIndex.Remove()
}

// Flush spills all buffered data to disk (checkpoint support).
func (s *Store) Flush() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.dataLog.Flush(); err != nil {
		return err
	}
	return s.indexLog.Flush()
}

// Sync flushes all buffered data and fsyncs both logs, making every
// acknowledged Append durable. The fsyncs run outside ioMu (split
// BeginSync/FinishSync), so concurrent appends, batch reads, and later
// flushes overlap them instead of queueing for their whole duration;
// syncMu keeps at most one split sync in flight, as the protocol
// requires. The data log is synced before the index log, preserving the
// original commit order.
func (s *Store) Sync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.ioMu.Lock()
	if err := s.flushLocked(); err != nil {
		s.ioMu.Unlock()
		return err
	}
	s.ioMu.Unlock()
	if err := s.syncLog(func() *logfile.Log { return s.dataLog }); err != nil {
		return err
	}
	return s.syncLog(func() *logfile.Log { return s.indexLog })
}

// syncLog split-syncs whichever log cur currently returns, redoing the
// sync when a compaction or recovery swaps the log generation mid-fsync
// (the outcome of an fsync on the old descriptor says nothing about the
// data's new home; swaps copy all live state, so the retry converges).
func (s *Store) syncLog(cur func() *logfile.Log) error {
	for {
		s.ioMu.Lock()
		lg := cur()
		tok, commit, err := lg.BeginSync()
		if err != nil {
			s.ioMu.Unlock()
			return err
		}
		s.ioMu.Unlock()
		serr := commit()
		s.ioMu.Lock()
		if cur() != lg {
			s.ioMu.Unlock()
			continue
		}
		err = lg.FinishSync(tok, serr)
		s.ioMu.Unlock()
		if errors.Is(err, logfile.ErrSyncSuperseded) {
			continue
		}
		return err
	}
}

// Recover reopens the data and index logs from their durable offsets if
// poisoned, rewriting their retained unsynced tails, so the write path
// works again after the underlying fault has cleared.
// Poisoned returns the first poisoning error among the instance's data
// and index logs, or nil when both are healthy.
func (s *Store) Poisoned() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	for _, l := range []*logfile.Log{s.dataLog, s.indexLog} {
		if err := l.Poisoned(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) Recover() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var first error
	for _, l := range []*logfile.Log{s.dataLog, s.indexLog} {
		if l.Poisoned() == nil {
			continue
		}
		if err := l.ReopenAtDurable(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Scrub verifies the live data and index logs' record frames against
// their checksums under the instance I/O lock, healing rot confined to
// the unsynced tail where the retained in-memory copy allows (see
// logfile.Log.Scrub). It returns the per-instance summary and the first
// unrepairable corruption.
func (s *Store) Scrub() (logfile.ScrubSummary, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var sum logfile.ScrubSummary
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return sum, ErrClosed
	}
	for _, l := range []*logfile.Log{s.dataLog, s.indexLog} {
		r, err := l.Scrub()
		sum.Add(r)
		if err != nil {
			return sum, err
		}
	}
	return sum, nil
}

// HitRatio returns the prefetch buffer hit ratio (Figure 11b metric).
func (s *Store) HitRatio() float64 { return s.ratio.Value() }

// HitCount returns (hits, misses) of the prefetch buffer.
func (s *Store) HitCount() (int64, int64) { return s.ratio.Hits(), s.ratio.Misses() }

// Evictions returns the number of prefetched windows evicted by wrong ETT
// estimates.
func (s *Store) Evictions() int64 { return s.evictions.Load() }

// Compactions returns the number of compactions performed.
func (s *Store) Compactions() int64 { return s.compactions.Load() }

// IndexScans returns the number of full index-log scans performed.
func (s *Store) IndexScans() int64 { return s.indexScans.Load() }

// SpaceAmplification returns the data log's current space amplification.
func (s *Store) SpaceAmplification() float64 {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	return s.spaceAmpLocked()
}

// BufferedBytes returns the current write-buffer occupancy.
func (s *Store) BufferedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufBytes
}

// PrefetchedBytes returns the current prefetch-buffer occupancy.
func (s *Store) PrefetchedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.prefetchBytes
}

// LiveStates returns the number of live (key, window) states tracked.
func (s *Store) LiveStates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stat)
}

// DiskUsage returns the logical bytes of the instance's data and index
// logs, including appends still in their write-through buffers.
func (s *Store) DiskUsage() (int64, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	return s.dataLog.Size() + s.indexLog.Size(), nil
}

// Close closes the store's log files, leaving state on disk.
func (s *Store) Close() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.dataLog.Close()
	if e := s.indexLog.Close(); e != nil && err == nil {
		err = e
	}
	return err
}

// Destroy closes the store and deletes its directory.
func (s *Store) Destroy() error {
	err := s.Close()
	if derr := s.dir.RemoveAll(); derr != nil && err == nil {
		err = derr
	}
	return err
}
