package aur

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

const gap = 100 // session gap for test predictors

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "aur")
	}
	if opts.Predictor == nil {
		opts.Predictor = window.SessionPredictor{Gap: gap}
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Destroy() })
	return s
}

func mustGet(t *testing.T, s *Store, key string, w window.Window) []string {
	t.Helper()
	vals, err := s.Get([]byte(key), w)
	if err != nil {
		t.Fatal(err)
	}
	if vals == nil {
		return nil
	}
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = string(v)
	}
	return out
}

func TestAppendGetInMemory(t *testing.T) {
	s := openTest(t, Options{})
	w := window.Window{Start: 0, End: gap}
	s.Append([]byte("k"), []byte("a"), w, 0)
	s.Append([]byte("k"), []byte("b"), w, 10)
	got := mustGet(t, s, "k", w)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
	// Fetch & remove semantics.
	if got := mustGet(t, s, "k", w); got != nil {
		t.Fatalf("second get returned %v", got)
	}
}

func TestGetMissingState(t *testing.T) {
	s := openTest(t, Options{})
	if got := mustGet(t, s, "nope", window.Window{Start: 1, End: 2}); got != nil {
		t.Fatalf("missing state returned %v", got)
	}
}

func TestPerKeyWindowIsolation(t *testing.T) {
	s := openTest(t, Options{})
	w1 := window.Window{Start: 0, End: gap}
	w2 := window.Window{Start: 500, End: 500 + gap}
	s.Append([]byte("k1"), []byte("k1w1"), w1, 0)
	s.Append([]byte("k1"), []byte("k1w2"), w2, 500)
	s.Append([]byte("k2"), []byte("k2w1"), w1, 1)
	if got := mustGet(t, s, "k1", w1); len(got) != 1 || got[0] != "k1w1" {
		t.Errorf("k1/w1 = %v", got)
	}
	if got := mustGet(t, s, "k1", w2); len(got) != 1 || got[0] != "k1w2" {
		t.Errorf("k1/w2 = %v", got)
	}
	if got := mustGet(t, s, "k2", w1); len(got) != 1 || got[0] != "k2w1" {
		t.Errorf("k2/w1 = %v", got)
	}
}

func TestFlushAndDiskRead(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 256})
	w := window.Window{Start: 0, End: gap}
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Append([]byte("k"), []byte(fmt.Sprintf("v%03d", i)), w, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, onDisk, _ := s.Peek([]byte("k"), w)
	if onDisk == 0 {
		t.Fatal("expected flushed state on disk")
	}
	got := mustGet(t, s, "k", w)
	if len(got) != n {
		t.Fatalf("read back %d values, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != fmt.Sprintf("v%03d", i) {
			t.Fatalf("value %d = %q: append order violated", i, got[i])
		}
	}
}

func TestPredictiveBatchReadPrefetchesNeighbors(t *testing.T) {
	// Many session windows with staggered ETTs; reading the earliest one
	// must prefetch the windows that trigger soon after.
	s := openTest(t, Options{WriteBufferBytes: 1, ReadBatchRatio: 0.5})
	const keys = 20
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		w := window.Window{Start: int64(i) * 10, End: int64(i)*10 + gap}
		// Two appends per window; tiny buffer flushes after each.
		s.Append(k, []byte("x"), w, int64(i)*10)
		s.Append(k, []byte("y"), w, int64(i)*10+1)
	}
	// First get: a miss that performs a batch read.
	w0 := window.Window{Start: 0, End: gap}
	if got := mustGet(t, s, "k00", w0); len(got) != 2 {
		t.Fatalf("k00 = %v", got)
	}
	hits, misses := s.HitCount()
	if misses != 1 || hits != 0 {
		t.Fatalf("after first get: hits=%d misses=%d", hits, misses)
	}
	// Subsequent gets in ETT order: should be prefetch hits.
	var hitCount int
	for i := 1; i < keys/2; i++ {
		k := fmt.Sprintf("k%02d", i)
		w := window.Window{Start: int64(i) * 10, End: int64(i)*10 + gap}
		if got := mustGet(t, s, k, w); len(got) != 2 {
			t.Fatalf("%s = %v", k, got)
		}
	}
	hits, _ = s.HitCount()
	hitCount = int(hits)
	if hitCount == 0 {
		t.Error("no prefetch hits despite batch read of upcoming windows")
	}
	if s.HitRatio() <= 0 {
		t.Error("hit ratio should be positive")
	}
}

func TestPredictionDisabledStillCorrect(t *testing.T) {
	// Ratio 0 (paper Fig. 11: prediction off): reads still work, all
	// disk reads are misses.
	s := openTest(t, Options{WriteBufferBytes: 1, ReadBatchRatio: 0})
	for i := 0; i < 10; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		w := window.Window{Start: int64(i), End: int64(i) + gap}
		s.Append(k, []byte("v"), w, int64(i))
	}
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		w := window.Window{Start: int64(i), End: int64(i) + gap}
		if got := mustGet(t, s, k, w); len(got) != 1 {
			t.Fatalf("%s = %v", k, got)
		}
	}
	hits, misses := s.HitCount()
	if hits != 0 || misses != 10 {
		t.Errorf("hits=%d misses=%d, want 0/10", hits, misses)
	}
}

func TestNoPredictorDegradesGracefully(t *testing.T) {
	// Count/custom windows have no predictor (§4.2); prefetching cannot
	// select candidates but correctness must hold.
	dir := filepath.Join(t.TempDir(), "aur")
	s, err := Open(Options{Dir: dir, WriteBufferBytes: 1, ReadBatchRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	w := window.Window{Start: 0, End: 10}
	s.Append([]byte("k"), []byte("a"), w, 0)
	s.Append([]byte("k"), []byte("b"), w, 1)
	vals, err := s.Get([]byte("k"), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("got %d values", len(vals))
	}
}

func TestWrongETTEvictsPrefetchedState(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1, ReadBatchRatio: 1.0})
	// Window A triggers first, window B is prefetched alongside it.
	wA := window.Window{Start: 0, End: gap}
	wB := window.Window{Start: 10, End: 10 + gap}
	s.Append([]byte("a"), []byte("va"), wA, 0)
	s.Append([]byte("b"), []byte("vb1"), wB, 10)
	mustGet(t, s, "a", wA) // miss -> batch read prefetches b/wB
	if _, _, pre := s.Peek([]byte("b"), wB); !pre {
		t.Fatal("wB should be prefetched")
	}
	// A new tuple arrives for b's session: the ETT was wrong, the
	// prefetched state must be evicted.
	s.Append([]byte("b"), []byte("vb2"), wB, 50)
	if _, _, pre := s.Peek([]byte("b"), wB); pre {
		t.Fatal("stale prefetched state must be evicted on append")
	}
	if s.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", s.Evictions())
	}
	// Both values must still be returned, in order, via re-read.
	got := mustGet(t, s, "b", wB)
	if len(got) != 2 || got[0] != "vb1" || got[1] != "vb2" {
		t.Fatalf("b/wB = %v", got)
	}
}

func TestCompactionReclaimsDeadBytes(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1, MaxSpaceAmplification: 1.2, ReadBatchRatio: 0})
	// Write and consume many states; consuming leaves dead bytes that
	// compaction must reclaim on a later batch-read scan.
	for round := 0; round < 20; round++ {
		for i := 0; i < 10; i++ {
			k := []byte(fmt.Sprintf("r%02d-k%d", round, i))
			w := window.Window{Start: int64(round*100 + i), End: int64(round*100+i) + gap}
			if err := s.Append(k, make([]byte, 128), w, int64(round*100+i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("r%02d-k%d", round, i)
			w := window.Window{Start: int64(round*100 + i), End: int64(round*100+i) + gap}
			if got := mustGet(t, s, k, w); len(got) != 1 {
				t.Fatalf("round %d key %s: %v", round, k, got)
			}
		}
	}
	if s.Compactions() == 0 {
		t.Error("no compaction despite heavy consumption")
	}
	if amp := s.SpaceAmplification(); amp > 3.0 {
		t.Errorf("space amplification %f stayed high after compactions", amp)
	}
}

func TestCompactionPreservesUnreadState(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1, MaxSpaceAmplification: 1.1, ReadBatchRatio: 0})
	keep := window.Window{Start: 9999, End: 9999 + gap}
	if err := s.Append([]byte("keeper"), []byte("precious-1"), keep, 9999); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("keeper"), []byte("precious-2"), keep, 10000); err != nil {
		t.Fatal(err)
	}
	// Generate churn to force compactions.
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("churn-%d", i))
		w := window.Window{Start: int64(i), End: int64(i) + gap}
		if err := s.Append(k, make([]byte, 64), w, int64(i)); err != nil {
			t.Fatal(err)
		}
		if got := mustGet(t, s, string(k), w); len(got) != 1 {
			t.Fatal("churn read failed")
		}
	}
	if s.Compactions() == 0 {
		t.Fatal("test needs at least one compaction")
	}
	got := mustGet(t, s, "keeper", keep)
	if len(got) != 2 || got[0] != "precious-1" || got[1] != "precious-2" {
		t.Fatalf("state lost across compaction: %v", got)
	}
}

func TestSeparateCompactionScanAblation(t *testing.T) {
	s := openTest(t, Options{
		WriteBufferBytes:       1,
		MaxSpaceAmplification:  1.2,
		ReadBatchRatio:         0,
		SeparateCompactionScan: true,
	})
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		w := window.Window{Start: int64(i), End: int64(i) + gap}
		s.Append(k, make([]byte, 100), w, int64(i))
		if got := mustGet(t, s, string(k), w); len(got) != 1 {
			t.Fatal("read failed")
		}
	}
	if s.Compactions() == 0 {
		t.Error("separate-scan mode never compacted")
	}
}

func TestDrop(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1})
	w := window.Window{Start: 0, End: gap}
	s.Append([]byte("k"), []byte("v1"), w, 0)
	s.Append([]byte("k"), []byte("v2"), w, 1) // flushed + buffered
	if err := s.Drop([]byte("k"), w); err != nil {
		t.Fatal(err)
	}
	if got := mustGet(t, s, "k", w); got != nil {
		t.Fatalf("dropped state still readable: %v", got)
	}
	if s.LiveStates() != 0 {
		t.Errorf("LiveStates = %d after drop", s.LiveStates())
	}
}

func TestStatTableETTOrdering(t *testing.T) {
	// The batch read must prefer windows with the soonest ETT. Construct
	// three windows with distinct maxTS, read the earliest, and check
	// with a tiny ratio that only the next-soonest was prefetched.
	// ceil(0.1*3) = 1 candidate; MinBatchWindows lowered so the floor
	// does not widen the batch in this tiny scenario.
	s := openTest(t, Options{WriteBufferBytes: 1, ReadBatchRatio: 0.1, MinBatchWindows: 1})
	wEarly := window.Window{Start: 0, End: gap}
	wMid := window.Window{Start: 0, End: gap} // same initial boundary shape, different key
	wLate := window.Window{Start: 0, End: gap}
	s.Append([]byte("early"), []byte("v"), wEarly, 0)
	s.Append([]byte("mid"), []byte("v"), wMid, 1000)
	s.Append([]byte("late"), []byte("v"), wLate, 2000)

	mustGet(t, s, "early", wEarly) // miss; batch read selects 1 candidate
	_, _, preMid := s.Peek([]byte("mid"), wMid)
	_, _, preLate := s.Peek([]byte("late"), wLate)
	if !preMid {
		t.Error("window with soonest ETT was not prefetched")
	}
	if preLate {
		t.Error("window with latest ETT should not be prefetched at this ratio")
	}
}

func TestBreakdownAccounting(t *testing.T) {
	var bd metrics.Breakdown
	s := openTest(t, Options{WriteBufferBytes: 1, Breakdown: &bd, MaxSpaceAmplification: 1.1, ReadBatchRatio: 0})
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		w := window.Window{Start: int64(i), End: int64(i) + gap}
		s.Append(k, make([]byte, 64), w, int64(i))
		mustGet(t, s, string(k), w)
	}
	if bd.Calls(metrics.OpWrite) == 0 || bd.Calls(metrics.OpRead) == 0 {
		t.Error("missing op accounting")
	}
	if s.Compactions() > 0 && bd.Calls(metrics.OpCompact) == 0 {
		t.Error("compactions not charged to the compaction bucket")
	}
	if bd.BytesWritten() == 0 || bd.BytesRead() == 0 {
		t.Error("missing I/O byte accounting")
	}
}

func TestClosedErrors(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(nil, nil, window.Window{}, 0); err != ErrClosed {
		t.Errorf("Append: %v", err)
	}
	if _, err := s.Get(nil, window.Window{}); err != ErrClosed {
		t.Errorf("Get: %v", err)
	}
	if err := s.Drop(nil, window.Window{}); err != ErrClosed {
		t.Errorf("Drop: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Errorf("Flush: %v", err)
	}
}

func TestRandomizedSessionWorkload(t *testing.T) {
	// Property-style end-to-end shuffle: random appends and reads over
	// many (key, window) states with flushes, prefetching, eviction and
	// compaction all active; every value written must be read exactly
	// once, in append order.
	rng := rand.New(rand.NewSource(99))
	s := openTest(t, Options{WriteBufferBytes: 4096, ReadBatchRatio: 0.1, MaxSpaceAmplification: 1.3})
	type state struct {
		key  string
		w    window.Window
		vals []string
	}
	live := make(map[int]*state)
	next := 0
	total := 0
	for step := 0; step < 5000; step++ {
		if len(live) == 0 || rng.Intn(100) < 60 {
			// Append to a random (possibly new) state.
			var st *state
			if len(live) > 0 && rng.Intn(100) < 70 {
				for _, v := range live {
					st = v
					break
				}
			} else {
				st = &state{
					key: fmt.Sprintf("key-%06d", next),
					w:   window.Window{Start: int64(next), End: int64(next) + gap},
				}
				live[next] = st
				next++
			}
			v := fmt.Sprintf("v-%08d", total)
			total++
			st.vals = append(st.vals, v)
			if err := s.Append([]byte(st.key), []byte(v), st.w, int64(step)); err != nil {
				t.Fatal(err)
			}
		} else {
			// Trigger a random live state.
			var idx int
			for k := range live {
				idx = k
				break
			}
			st := live[idx]
			delete(live, idx)
			got := mustGet(t, s, st.key, st.w)
			if len(got) != len(st.vals) {
				t.Fatalf("step %d key %s: got %d values, want %d", step, st.key, len(got), len(st.vals))
			}
			for i := range got {
				if got[i] != st.vals[i] {
					t.Fatalf("key %s value %d: %q want %q", st.key, i, got[i], st.vals[i])
				}
			}
		}
	}
	// Drain the rest.
	for _, st := range live {
		got := mustGet(t, s, st.key, st.w)
		if len(got) != len(st.vals) {
			t.Fatalf("drain key %s: got %d want %d", st.key, len(got), len(st.vals))
		}
	}
}

func BenchmarkAppend(b *testing.B) {
	s, err := Open(Options{
		Dir:              filepath.Join(b.TempDir(), "aur"),
		WriteBufferBytes: 8 << 20,
		Predictor:        window.SessionPredictor{Gap: gap},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Destroy()
	val := make([]byte, 84)
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("k%05d", i%1000))
		w := window.Window{Start: int64(i % 1000), End: int64(i%1000) + gap}
		if err := s.Append(k, val, w, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetWithPrefetch(b *testing.B) {
	s, err := Open(Options{
		Dir:              filepath.Join(b.TempDir(), "aur"),
		WriteBufferBytes: 64 << 10,
		ReadBatchRatio:   0.02,
		Predictor:        window.SessionPredictor{Gap: gap},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Destroy()
	val := make([]byte, 84)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("k%07d", i))
		w := window.Window{Start: int64(i), End: int64(i) + gap}
		s.Append(k, val, w, int64(i))
		if i%100 == 99 {
			for j := i - 99; j <= i; j++ {
				kj := []byte(fmt.Sprintf("k%07d", j))
				wj := window.Window{Start: int64(j), End: int64(j) + gap}
				if _, err := s.Get(kj, wj); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}
