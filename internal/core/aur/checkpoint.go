package aur

import (
	"fmt"
	"path/filepath"

	"flowkv/internal/binio"
	"flowkv/internal/ckpt"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
	"flowkv/internal/window"
)

const statSnapshotName = "stat.snap"

// statDeltaLogical is the Stat table's replay stream inside a segmented
// checkpoint: concatenated segments of kind-prefixed records (set or
// tombstone) that replay, in order, into the table at the cut. A base
// checkpoint's stream is a full dump; an incremental checkpoint links
// the parent's segments and appends one segment holding only the rows
// the statDeltas marks named — without the stream, the per-key table
// would be rewritten whole at every barrier and incremental commit cost
// would grow with live state instead of with the delta.
const statDeltaLogical = "stat.dlt"

const (
	statKindSet  byte = 0
	statKindTomb byte = 1
)

// Checkpoint writes a consistent snapshot of the instance into dir. It
// flushes the write buffer, then compacts unconditionally so the data log
// contains exactly the live state (fetch-&-removes performed since the
// last compaction must not resurrect on restore), and copies the data
// log, index log, and a snapshot of the Stat table (per-window maximum
// timestamps, from which ETTs are re-derived). Every file written into
// dir is fsynced before Checkpoint returns.
//
// Checkpoint holds only ioMu, so concurrent Appends and buffer-served
// reads proceed while the snapshot is written; the cut is the instant the
// buffer is detached inside the flush, and the Stat table is snapshotted
// at that same instant so the two agree.
func (s *Store) Checkpoint(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()
	if err := s.flushLocked(); err != nil {
		return err
	}
	// Snapshot the Stat table right at the cut: ids appended after the
	// buffer detach may add Stat rows, but those tuples are not in the
	// snapshot either.
	s.mu.Lock()
	statSnap := make(map[id]int64, len(s.stat))
	for ident, st := range s.stat {
		statSnap[ident] = st.maxTS
	}
	s.mu.Unlock()
	live, order, err := s.scanIndexLocked()
	if err != nil {
		return err
	}
	if err := s.compact(live, order); err != nil {
		return err
	}
	if err := s.dataLog.Flush(); err != nil {
		return err
	}
	if err := s.indexLog.Flush(); err != nil {
		return err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("aur: checkpoint: %w", err)
	}
	if err := faultfs.CopyFile(fsys, s.dataLog.Path(), filepath.Join(dir, "data.log")); err != nil {
		return err
	}
	if err := faultfs.CopyFile(fsys, s.indexLog.Path(), filepath.Join(dir, "index.log")); err != nil {
		return err
	}
	return s.writeStatSnapshot(filepath.Join(dir, statSnapshotName), statSnap)
}

func encodeStatSnapshot(statSnap map[id]int64) []byte {
	var buf, payload []byte
	for ident, maxTS := range statSnap {
		payload = binio.PutBytes(payload[:0], []byte(ident.key))
		payload = ident.w.AppendTo(payload)
		payload = binio.PutVarint(payload, maxTS)
		buf = binio.AppendRecord(buf, payload)
	}
	return buf
}

func (s *Store) writeStatSnapshot(path string, statSnap map[id]int64) error {
	f, err := s.dir.FS().Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeStatSnapshot(statSnap)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// consumedSnapshotName persists the consumed set and dead-byte counter in
// a delta checkpoint. Unlike the full Checkpoint, CheckpointDelta does
// not compact before copying, so the snapshot's data log still contains
// consumed (fetch-&-removed) entries; Restore loads this file into
// s.consumed before scanning the index so those entries cannot
// resurrect.
const consumedSnapshotName = "consumed.snap"

func encodeConsumedSnapshot(consumed map[string]struct{}, dead int64) []byte {
	var buf, payload []byte
	payload = binio.PutVarint(payload, dead)
	buf = binio.AppendRecord(buf, payload)
	for prefix := range consumed {
		payload = binio.PutBytes(payload[:0], []byte(prefix))
		buf = binio.AppendRecord(buf, payload)
	}
	return buf
}

func (s *Store) loadConsumedSnapshot(path string) (map[string]struct{}, int64, error) {
	b, err := s.dir.FS().ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	header, n, err := binio.ReadRecord(b)
	if err != nil {
		return nil, 0, fmt.Errorf("aur: consumed snapshot: %w", err)
	}
	b = b[n:]
	dead, _, err := binio.Varint(header)
	if err != nil {
		return nil, 0, fmt.Errorf("aur: consumed snapshot: %w", err)
	}
	out := make(map[string]struct{})
	for len(b) > 0 {
		payload, n, err := binio.ReadRecord(b)
		if err != nil {
			return nil, 0, fmt.Errorf("aur: consumed snapshot: %w", err)
		}
		b = b[n:]
		prefix, _, err := binio.Bytes(payload)
		if err != nil {
			return nil, 0, fmt.Errorf("aur: consumed snapshot: %w", err)
		}
		out[string(prefix)] = struct{}{}
	}
	return out, dead, nil
}

// CheckpointDelta writes a segmented snapshot of the instance into dir.
// Unlike Checkpoint it does not compact: the data and index logs are
// recorded as segment lists extending the parent checkpoint's (same
// generation epoch, parent length within the live log), so only bytes
// appended since the parent's cut are copied and the rest is hard-linked
// across. Because the uncompacted data log still contains consumed
// entries, the consumed set and dead-byte counter are persisted in
// consumed.snap; Restore loads it before scanning the index so consumed
// state cannot resurrect. A compaction between the two cuts swaps the
// generation epoch and falls this instance back to a full copy. Nothing
// is fsynced here — the returned Result's NeedSync lists every written
// file for the composite store's group-commit sync window.
func (s *Store) CheckpointDelta(dir string, parent *ckpt.Meta, parentDir string) (*ckpt.Result, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()
	if err := s.flushLocked(); err != nil {
		return nil, err
	}
	// The Stat cut: with a parent whose cut id matches the last committed
	// delta cut, only identities marked dirty since then are shipped;
	// otherwise the table is dumped whole as a new stream base.
	type statRec struct {
		ident id
		maxTS int64
		tomb  bool
	}
	var pstat *ckpt.FileState
	if parent != nil {
		pstat = parent.File(statDeltaLogical)
	}
	s.mu.Lock()
	statIncr := pstat != nil && parent.CutID != 0 && parent.CutID == s.lastCutID
	cutSeqs := make(map[id]uint64, len(s.statDeltas))
	for ident, m := range s.statDeltas {
		cutSeqs[ident] = m.seq
	}
	var statWork []statRec
	if statIncr {
		for ident, m := range s.statDeltas {
			if st, ok := s.stat[ident]; ok && !m.tomb {
				statWork = append(statWork, statRec{ident: ident, maxTS: st.maxTS})
			} else {
				statWork = append(statWork, statRec{ident: ident, tomb: true})
			}
		}
	} else {
		for ident, st := range s.stat {
			statWork = append(statWork, statRec{ident: ident, maxTS: st.maxTS})
		}
	}
	s.mu.Unlock()
	if err := s.dataLog.Flush(); err != nil {
		return nil, err
	}
	if err := s.indexLog.Flush(); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("aur: checkpoint: %w", err)
	}
	res := &ckpt.Result{}
	meta := &ckpt.Meta{CutID: ckpt.Rand64()}
	addLog := func(logical string, l *logfile.Log) error {
		size := l.Size()
		fstate := ckpt.FileState{Logical: logical, Epoch: s.genEpoch}
		var from int64
		// An empty parent file is never reused and an empty live file
		// records no segments (Materialize recreates it empty) — linking
		// an empty segment list and then writing the tail at offset 0
		// would collide on the zero-offset segment name.
		if p := parent.File(logical); p != nil && p.Epoch == s.genEpoch &&
			p.TotalLen() > 0 && p.TotalLen() <= size {
			if err := ckpt.LinkSegments(fsys, parentDir, dir, p.Segments, res); err != nil {
				return err
			}
			fstate.Segments = append(fstate.Segments, p.Segments...)
			from = p.TotalLen()
		}
		if tail := size - from; tail > 0 {
			name := ckpt.SegmentName(logical, from)
			crc, err := ckpt.CopyRange(fsys, l.Path(), from, tail, filepath.Join(dir, name))
			if err != nil {
				return err
			}
			fstate.Segments = append(fstate.Segments, ckpt.Segment{Name: name, Len: tail, CRC: crc})
			res.Entries = append(res.Entries, ckpt.Entry{Path: name, Size: tail, CRC: crc})
			res.NeedSync = append(res.NeedSync, filepath.Join(dir, name))
			res.CopiedBytes += tail
		}
		meta.Files = append(meta.Files, fstate)
		return nil
	}
	if err := addLog("data.log", s.dataLog); err != nil {
		return nil, err
	}
	if err := addLog("index.log", s.indexLog); err != nil {
		return nil, err
	}
	if err := ckpt.WriteExtra(fsys, dir, consumedSnapshotName,
		encodeConsumedSnapshot(s.consumed, s.dead), res); err != nil {
		return nil, err
	}
	// The Stat stream: link the parent's segments when extending, then
	// one fresh segment holding this cut's rows.
	statState := ckpt.FileState{Logical: statDeltaLogical, Epoch: ckpt.Rand64()}
	var statFrom int64
	if statIncr {
		if err := ckpt.LinkSegments(fsys, parentDir, dir, pstat.Segments, res); err != nil {
			return nil, err
		}
		statState.Segments = append(statState.Segments, pstat.Segments...)
		statState.Epoch = pstat.Epoch
		statFrom = pstat.TotalLen()
	}
	var statBuf, payload []byte
	for _, rec := range statWork {
		kind := statKindSet
		if rec.tomb {
			kind = statKindTomb
		}
		payload = append(payload[:0], kind)
		payload = binio.PutBytes(payload, []byte(rec.ident.key))
		payload = rec.ident.w.AppendTo(payload)
		if !rec.tomb {
			payload = binio.PutVarint(payload, rec.maxTS)
		}
		statBuf = binio.AppendRecord(statBuf, payload)
	}
	if len(statBuf) > 0 {
		name := ckpt.SegmentName(statDeltaLogical, statFrom)
		if err := ckpt.WriteExtra(fsys, dir, name, statBuf, res); err != nil {
			return nil, err
		}
		statState.Segments = append(statState.Segments,
			ckpt.Segment{Name: name, Len: int64(len(statBuf)), CRC: binio.Checksum(statBuf)})
	}
	meta.Files = append(meta.Files, statState)
	if err := ckpt.FinishMeta(fsys, dir, meta, res); err != nil {
		return nil, err
	}
	cut := meta.CutID
	res.Commit = func() {
		s.mu.Lock()
		for ident, seq := range cutSeqs {
			if cur, ok := s.statDeltas[ident]; ok && cur.seq == seq {
				delete(s.statDeltas, ident)
			}
		}
		s.lastCutID = cut
		s.mu.Unlock()
	}
	return res, nil
}

// Restore rebuilds a freshly-opened (empty) instance from a checkpoint
// directory. On-disk locations come back from the copied index log; the
// Stat table and ETTs come back from the snapshot.
func (s *Store) Restore(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.buf) != 0 || len(s.onDisk) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("aur: restore into a non-empty store")
	}
	s.mu.Unlock()
	if s.dataLog.Size() != 0 {
		return fmt.Errorf("aur: restore into a non-empty store")
	}
	fsys := s.dir.FS()
	// Replace the empty generation with the checkpointed logs. Segmented
	// checkpoints (a SEGMENTS manifest present) are materialized by
	// concatenating each log's segments; the generation epoch and the
	// consumed set carry over so the delta chain continues across the
	// restart and consumed entries in the uncompacted data log cannot
	// resurrect. Legacy flat checkpoints copy data.log/index.log whole.
	meta, err := ckpt.ReadMeta(fsys, dir)
	if err != nil {
		return fmt.Errorf("aur: restore: %w", err)
	}
	oldData, oldIndex := s.dataLog, s.indexLog
	gen := s.gen + 1
	dataName := fmt.Sprintf("data-%06d.log", gen)
	indexName := fmt.Sprintf("index-%06d.log", gen)
	if meta != nil {
		dstate, istate := meta.File("data.log"), meta.File("index.log")
		if dstate == nil || istate == nil {
			return fmt.Errorf("aur: restore: SEGMENTS lacks data.log/index.log")
		}
		if err := ckpt.Materialize(fsys, dir, dstate, filepath.Join(s.dir.Root(), dataName)); err != nil {
			return fmt.Errorf("aur: restore: %w", err)
		}
		if err := ckpt.Materialize(fsys, dir, istate, filepath.Join(s.dir.Root(), indexName)); err != nil {
			return fmt.Errorf("aur: restore: %w", err)
		}
		consumed, dead, err := s.loadConsumedSnapshot(filepath.Join(dir, consumedSnapshotName))
		if err != nil {
			return err
		}
		s.consumed, s.dead = consumed, dead
		s.genEpoch = dstate.Epoch
	} else {
		if err := faultfs.CopyFile(fsys, filepath.Join(dir, "data.log"), filepath.Join(s.dir.Root(), dataName)); err != nil {
			return err
		}
		if err := faultfs.CopyFile(fsys, filepath.Join(dir, "index.log"), filepath.Join(s.dir.Root(), indexName)); err != nil {
			return err
		}
		s.genEpoch = ckpt.Rand64()
	}
	data, err := s.dir.Open(dataName)
	if err != nil {
		return err
	}
	index, err := s.dir.Open(indexName)
	if err != nil {
		data.Close()
		return err
	}
	s.dataLog, s.indexLog, s.gen = data, index, gen
	oldData.Remove()
	oldIndex.Remove()

	// Rebuild onDisk byte accounting from the index log.
	_, order, err := s.scanIndexLocked()
	if err != nil {
		return err
	}
	newOnDisk := make(map[id]int64, len(order))
	for _, e := range order {
		var n int64
		for _, sp := range e.spans {
			n += int64(sp.n)
		}
		newOnDisk[e.ident] = n
	}
	var newStat map[id]*statEntry
	if meta != nil {
		newStat, err = s.loadStatStream(dir, meta)
	} else {
		newStat, err = s.loadStatSnapshot(filepath.Join(dir, statSnapshotName))
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	for ident, n := range newOnDisk {
		s.onDisk[ident] = n
	}
	for ident, st := range newStat {
		s.stat[ident] = st
	}
	if meta != nil {
		// The restored table IS the state of this cut: record its id so
		// the next delta checkpoint can extend the stream.
		s.lastCutID = meta.CutID
	}
	s.mu.Unlock()
	return nil
}

// loadStatStream replays a segmented checkpoint's Stat stream (the
// stat.dlt segment chain) into a fresh table: set records install a
// row, tombstones remove one, later records win.
func (s *Store) loadStatStream(dir string, meta *ckpt.Meta) (map[id]*statEntry, error) {
	fstate := meta.File(statDeltaLogical)
	if fstate == nil {
		return nil, fmt.Errorf("aur: restore: SEGMENTS lacks %s", statDeltaLogical)
	}
	fsys := s.dir.FS()
	out := make(map[id]*statEntry)
	for _, seg := range fstate.Segments {
		b, err := fsys.ReadFile(filepath.Join(dir, seg.Name))
		if err != nil {
			return nil, err
		}
		for len(b) > 0 {
			payload, n, err := binio.ReadRecord(b)
			if err != nil {
				return nil, fmt.Errorf("aur: stat stream: %w", err)
			}
			b = b[n:]
			if len(payload) == 0 {
				return nil, fmt.Errorf("aur: stat stream: empty record")
			}
			kind := payload[0]
			payload = payload[1:]
			k, kn, err := binio.Bytes(payload)
			if err != nil {
				return nil, fmt.Errorf("aur: stat stream: %w", err)
			}
			payload = payload[kn:]
			w, wn, err := window.Decode(payload)
			if err != nil {
				return nil, fmt.Errorf("aur: stat stream: %w", err)
			}
			payload = payload[wn:]
			ident := id{key: string(k), w: w}
			switch kind {
			case statKindTomb:
				delete(out, ident)
			case statKindSet:
				maxTS, _, err := binio.Varint(payload)
				if err != nil {
					return nil, fmt.Errorf("aur: stat stream: %w", err)
				}
				st := &statEntry{maxTS: maxTS}
				if s.opts.Predictor != nil {
					if ett, ok := s.opts.Predictor.ETT(w, maxTS); ok {
						st.ett, st.hasETT = ett, true
					}
				}
				out[ident] = st
			default:
				return nil, fmt.Errorf("aur: stat stream: unknown record kind %d", kind)
			}
		}
	}
	return out, nil
}

func (s *Store) loadStatSnapshot(path string) (map[id]*statEntry, error) {
	b, err := s.dir.FS().ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[id]*statEntry)
	for len(b) > 0 {
		payload, n, err := binio.ReadRecord(b)
		if err != nil {
			return nil, fmt.Errorf("aur: stat snapshot: %w", err)
		}
		b = b[n:]
		k, kn, err := binio.Bytes(payload)
		if err != nil {
			return nil, err
		}
		payload = payload[kn:]
		w, wn, err := window.Decode(payload)
		if err != nil {
			return nil, err
		}
		payload = payload[wn:]
		maxTS, _, err := binio.Varint(payload)
		if err != nil {
			return nil, err
		}
		ident := id{key: string(k), w: w}
		st := &statEntry{maxTS: maxTS}
		if s.opts.Predictor != nil {
			if ett, ok := s.opts.Predictor.ETT(w, maxTS); ok {
				st.ett, st.hasETT = ett, true
			}
		}
		out[ident] = st
	}
	return out, nil
}
