package aur

import (
	"fmt"
	"path/filepath"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

const statSnapshotName = "stat.snap"

// Checkpoint writes a consistent snapshot of the instance into dir. It
// flushes the write buffer, then compacts unconditionally so the data log
// contains exactly the live state (fetch-&-removes performed since the
// last compaction must not resurrect on restore), and copies the data
// log, index log, and a snapshot of the Stat table (per-window maximum
// timestamps, from which ETTs are re-derived). Every file written into
// dir is fsynced before Checkpoint returns.
//
// Checkpoint holds only ioMu, so concurrent Appends and buffer-served
// reads proceed while the snapshot is written; the cut is the instant the
// buffer is detached inside the flush, and the Stat table is snapshotted
// at that same instant so the two agree.
func (s *Store) Checkpoint(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()
	if err := s.flushLocked(); err != nil {
		return err
	}
	// Snapshot the Stat table right at the cut: ids appended after the
	// buffer detach may add Stat rows, but those tuples are not in the
	// snapshot either.
	s.mu.Lock()
	statSnap := make(map[id]int64, len(s.stat))
	for ident, st := range s.stat {
		statSnap[ident] = st.maxTS
	}
	s.mu.Unlock()
	live, order, err := s.scanIndexLocked()
	if err != nil {
		return err
	}
	if err := s.compact(live, order); err != nil {
		return err
	}
	if err := s.dataLog.Flush(); err != nil {
		return err
	}
	if err := s.indexLog.Flush(); err != nil {
		return err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("aur: checkpoint: %w", err)
	}
	if err := faultfs.CopyFile(fsys, s.dataLog.Path(), filepath.Join(dir, "data.log")); err != nil {
		return err
	}
	if err := faultfs.CopyFile(fsys, s.indexLog.Path(), filepath.Join(dir, "index.log")); err != nil {
		return err
	}
	return s.writeStatSnapshot(filepath.Join(dir, statSnapshotName), statSnap)
}

func (s *Store) writeStatSnapshot(path string, statSnap map[id]int64) error {
	f, err := s.dir.FS().Create(path)
	if err != nil {
		return err
	}
	var buf, payload []byte
	for ident, maxTS := range statSnap {
		payload = binio.PutBytes(payload[:0], []byte(ident.key))
		payload = ident.w.AppendTo(payload)
		payload = binio.PutVarint(payload, maxTS)
		buf = binio.AppendRecord(buf, payload)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Restore rebuilds a freshly-opened (empty) instance from a checkpoint
// directory. On-disk locations come back from the copied index log; the
// Stat table and ETTs come back from the snapshot.
func (s *Store) Restore(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.buf) != 0 || len(s.onDisk) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("aur: restore into a non-empty store")
	}
	s.mu.Unlock()
	if s.dataLog.Size() != 0 {
		return fmt.Errorf("aur: restore into a non-empty store")
	}
	fsys := s.dir.FS()
	// Replace the empty generation with the checkpointed logs.
	oldData, oldIndex := s.dataLog, s.indexLog
	gen := s.gen + 1
	dataName := fmt.Sprintf("data-%06d.log", gen)
	indexName := fmt.Sprintf("index-%06d.log", gen)
	if err := faultfs.CopyFile(fsys, filepath.Join(dir, "data.log"), filepath.Join(s.dir.Root(), dataName)); err != nil {
		return err
	}
	if err := faultfs.CopyFile(fsys, filepath.Join(dir, "index.log"), filepath.Join(s.dir.Root(), indexName)); err != nil {
		return err
	}
	data, err := s.dir.Open(dataName)
	if err != nil {
		return err
	}
	index, err := s.dir.Open(indexName)
	if err != nil {
		data.Close()
		return err
	}
	s.dataLog, s.indexLog, s.gen = data, index, gen
	oldData.Remove()
	oldIndex.Remove()

	// Rebuild onDisk byte accounting from the index log.
	_, order, err := s.scanIndexLocked()
	if err != nil {
		return err
	}
	newOnDisk := make(map[id]int64, len(order))
	for _, e := range order {
		var n int64
		for _, sp := range e.spans {
			n += int64(sp.n)
		}
		newOnDisk[e.ident] = n
	}
	newStat, err := s.loadStatSnapshot(filepath.Join(dir, statSnapshotName))
	if err != nil {
		return err
	}
	s.mu.Lock()
	for ident, n := range newOnDisk {
		s.onDisk[ident] = n
	}
	for ident, st := range newStat {
		s.stat[ident] = st
	}
	s.mu.Unlock()
	return nil
}

func (s *Store) loadStatSnapshot(path string) (map[id]*statEntry, error) {
	b, err := s.dir.FS().ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[id]*statEntry)
	for len(b) > 0 {
		payload, n, err := binio.ReadRecord(b)
		if err != nil {
			return nil, fmt.Errorf("aur: stat snapshot: %w", err)
		}
		b = b[n:]
		k, kn, err := binio.Bytes(payload)
		if err != nil {
			return nil, err
		}
		payload = payload[kn:]
		w, wn, err := window.Decode(payload)
		if err != nil {
			return nil, err
		}
		payload = payload[wn:]
		maxTS, _, err := binio.Varint(payload)
		if err != nil {
			return nil, err
		}
		ident := id{key: string(k), w: w}
		st := &statEntry{maxTS: maxTS}
		if s.opts.Predictor != nil {
			if ett, ok := s.opts.Predictor.ETT(w, maxTS); ok {
				st.ett, st.hasETT = ett, true
			}
		}
		out[ident] = st
	}
	return out, nil
}
