package aur

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flowkv/internal/window"
)

// flipByte corrupts one byte in the named store file.
func flipByte(t *testing.T, dir, prefix string, frac float64) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if len(e.Name()) < len(prefix) || e.Name()[:len(prefix)] != prefix {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 {
			continue
		}
		b[int(float64(len(b))*frac)] ^= 0xff
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatalf("no %s* file found", prefix)
}

func TestDataLogCorruptionSurfacesAsError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "aur")
	s, err := Open(Options{
		Dir:              dir,
		WriteBufferBytes: 1,
		ReadBatchRatio:   0,
		Predictor:        window.SessionPredictor{Gap: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if err := s.Append(k, []byte("payload-payload"), w, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	flipByte(t, dir, "data-", 0.5)

	var sawErr bool
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		if _, err := s.Get(k, w); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("corrupted data log read back without error")
	}
}

func TestIndexLogCorruptionSurfacesAsError(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "aur")
	s, err := Open(Options{
		Dir:              dir,
		WriteBufferBytes: 1,
		ReadBatchRatio:   0,
		Predictor:        window.SessionPredictor{Gap: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 20; i++ {
		if err := s.Append([]byte(fmt.Sprintf("k%02d", i)), []byte("v"), w, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle of the index log: the scan must detect it
	// rather than return partial state silently.
	flipByte(t, dir, "index-", 0.5)

	var sawErr bool
	for i := 0; i < 20; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("k%02d", i)), w); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Error("corrupted index log scanned without error")
	}
}
