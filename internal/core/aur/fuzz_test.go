package aur

import (
	"bytes"
	"testing"

	"flowkv/internal/binio"
	"flowkv/internal/window"
)

// FuzzDecodeIndexEntry throws arbitrary bytes at both index-log entry
// parsers. The index log is replayed on every open, so the parsers are
// the gate between a crashed writer's on-disk bytes and the in-memory
// index; they must reject garbage without panicking and must agree with
// each other — splitIndexEntry is the allocation-free fast path used
// during compaction scans, and a divergence from decodeIndexEntry would
// silently corrupt the rewritten index. Anything decodeIndexEntry
// accepts must survive an encode/decode round trip unchanged.
func FuzzDecodeIndexEntry(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeIndexEntry(nil, id{key: "k", w: window.Window{Start: 0, End: 100}},
		span{off: 0, n: 32}))
	f.Add(encodeIndexEntry(nil, id{key: "user-1234", w: window.Window{Start: -500, End: 1 << 40}},
		span{off: 1 << 33, n: 4096}))
	f.Add(encodeIndexEntry(nil, id{key: "", w: window.Window{}}, span{}))
	full := encodeIndexEntry(nil, id{key: "sess", w: window.Window{Start: 7, End: 8}},
		span{off: 99, n: 7})
	f.Add(full[:len(full)-2])
	flipped := append([]byte(nil), full...)
	flipped[0] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		ident, sp, err := decodeIndexEntry(b)
		prefix, ssp, serr := splitIndexEntry(b)
		if (err == nil) != (serr == nil) {
			t.Fatalf("parsers disagree on %x: decode err=%v, split err=%v", b, err, serr)
		}
		if err != nil {
			return
		}
		if ssp != sp {
			t.Fatalf("parsers disagree on span: decode %+v, split %+v", sp, ssp)
		}
		// The aliased prefix must be the entry's own leading bytes and
		// re-parse to the same identity. It need not equal the canonical
		// identBytes encoding for arbitrary input — binio varints accept
		// zero-padded forms a writer never produces — which is exactly
		// why compaction's byte-wise grouping is sound only for entries
		// the CRC-framed writer put on disk (checked below).
		if len(prefix) > len(b) || !bytes.Equal(prefix, b[:len(prefix)]) {
			t.Fatalf("split prefix %x does not alias input %x", prefix, b)
		}
		k, kn, kerr := binio.Bytes(prefix)
		if kerr != nil {
			t.Fatalf("prefix key re-parse: %v", kerr)
		}
		w, wn, werr := window.Decode(prefix[kn:])
		if werr != nil || kn+wn != len(prefix) {
			t.Fatalf("prefix %x re-parse consumed %d+%d bytes, err=%v", prefix, kn, wn, werr)
		}
		if got := (id{key: string(k), w: w}); got != ident {
			t.Fatalf("prefix re-parse changed identity: %+v -> %+v", ident, got)
		}
		re := encodeIndexEntry(nil, ident, sp)
		ident2, sp2, err2 := decodeIndexEntry(re)
		if err2 != nil {
			t.Fatalf("re-encoded entry rejected: %v", err2)
		}
		if ident2 != ident || sp2 != sp {
			t.Fatalf("round trip changed entry: %+v/%+v -> %+v/%+v", ident, sp, ident2, sp2)
		}
		prefix2, _, err3 := splitIndexEntry(re)
		if err3 != nil || !bytes.Equal(prefix2, identBytes(ident)) {
			t.Fatalf("canonical entry prefix %x != identBytes %x (err=%v)",
				prefix2, identBytes(ident), err3)
		}
	})
}
