package aur

import (
	"fmt"
	"path/filepath"
	"testing"

	"flowkv/internal/window"
)

func TestReadNonDestructive(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1, ReadBatchRatio: 0.5})
	w := window.Window{Start: 0, End: gap}
	s.Append([]byte("k"), []byte("v1"), w, 0) // flushed
	s.Append([]byte("k"), []byte("v2"), w, 1) // flushed
	// Probe repeatedly: values must survive and stay ordered.
	for i := 0; i < 3; i++ {
		vals, err := s.Read([]byte("k"), w)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 2 || string(vals[0]) != "v1" || string(vals[1]) != "v2" {
			t.Fatalf("probe %d: %q", i, vals)
		}
	}
	// A buffered value joins the probe result without being consumed.
	bigBuf := openTest(t, Options{WriteBufferBytes: 1 << 20})
	bigBuf.Append([]byte("k"), []byte("only-buffered"), w, 0)
	vals, err := bigBuf.Read([]byte("k"), w)
	if err != nil || len(vals) != 1 || string(vals[0]) != "only-buffered" {
		t.Fatalf("buffered probe: %q %v", vals, err)
	}
	// Get after Read still consumes everything exactly once.
	got := mustGet(t, s, "k", w)
	if len(got) != 2 {
		t.Fatalf("final get: %v", got)
	}
	if got := mustGet(t, s, "k", w); got != nil {
		t.Fatalf("state survived get: %v", got)
	}
}

func TestReadMissingAndClosed(t *testing.T) {
	s := openTest(t, Options{})
	if vals, err := s.Read([]byte("none"), window.Window{Start: 1, End: 2}); err != nil || vals != nil {
		t.Fatalf("missing: %q %v", vals, err)
	}
	s.Close()
	if _, err := s.Read(nil, window.Window{}); err != ErrClosed {
		t.Errorf("closed: %v", err)
	}
}

func TestReadLoadsPrefetchAndCountsRatio(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1, ReadBatchRatio: 0.5})
	w := window.Window{Start: 0, End: gap}
	s.Append([]byte("k"), []byte("v"), w, 0)
	if _, err := s.Read([]byte("k"), w); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.HitCount()
	if misses != 1 {
		t.Fatalf("first probe should miss: %d/%d", hits, misses)
	}
	if _, err := s.Read([]byte("k"), w); err != nil {
		t.Fatal(err)
	}
	hits, _ = s.HitCount()
	if hits != 1 {
		t.Fatalf("second probe should hit the retained prefetch: hits=%d", hits)
	}
}

func TestStoreLevelCheckpointRestore(t *testing.T) {
	src := openTest(t, Options{WriteBufferBytes: 1, ReadBatchRatio: 0.1})
	w1 := window.Window{Start: 0, End: gap}
	w2 := window.Window{Start: 500, End: 500 + gap}
	for i := 0; i < 10; i++ {
		src.Append([]byte("a"), []byte(fmt.Sprintf("a%d", i)), w1, int64(i))
		src.Append([]byte("b"), []byte(fmt.Sprintf("b%d", i)), w2, int64(500+i))
	}
	// Consume a before checkpoint.
	if got := mustGet(t, src, "a", w1); len(got) != 10 {
		t.Fatal("pre-ckpt get")
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}

	dst, err := Open(Options{
		Dir:              filepath.Join(t.TempDir(), "restored"),
		WriteBufferBytes: 1,
		ReadBatchRatio:   0.1,
		Predictor:        window.SessionPredictor{Gap: gap},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Destroy()
	if err := dst.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if dst.LiveStates() != 1 {
		t.Fatalf("restored LiveStates = %d, want 1 (b only)", dst.LiveStates())
	}
	if got := mustGet(t, dst, "a", w1); got != nil {
		t.Fatalf("consumed state resurrected: %v", got)
	}
	got := mustGet(t, dst, "b", w2)
	if len(got) != 10 || got[0] != "b0" || got[9] != "b9" {
		t.Fatalf("restored b = %v", got)
	}
	// Restored ETTs enable prediction again: appends update the stat row.
	if err := dst.Append([]byte("c"), []byte("v"), w2, 600); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreIntoDirtyStoreFails(t *testing.T) {
	src := openTest(t, Options{})
	src.Append([]byte("k"), []byte("v"), window.Window{Start: 0, End: gap}, 0)
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	dirty := openTest(t, Options{})
	dirty.Append([]byte("x"), []byte("y"), window.Window{Start: 0, End: gap}, 0)
	if err := dirty.Restore(ckpt); err == nil {
		t.Error("restore into dirty store accepted")
	}
}

func TestCheckpointOnClosedStore(t *testing.T) {
	s := openTest(t, Options{})
	s.Close()
	if err := s.Checkpoint(t.TempDir()); err != ErrClosed {
		t.Errorf("Checkpoint on closed: %v", err)
	}
	if err := s.Restore(t.TempDir()); err != ErrClosed {
		t.Errorf("Restore on closed: %v", err)
	}
}

func TestStatsAccessors(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1})
	w := window.Window{Start: 0, End: gap}
	s.Append([]byte("k"), []byte("v"), w, 0)
	if s.BufferedBytes() != 0 {
		t.Errorf("BufferedBytes = %d after forced flush", s.BufferedBytes())
	}
	if n, err := s.DiskUsage(); err != nil || n == 0 {
		t.Errorf("DiskUsage = %d, %v", n, err)
	}
	mustGet(t, s, "k", w)
	if s.IndexScans() == 0 {
		t.Error("IndexScans not counted")
	}
	if s.PrefetchedBytes() != 0 {
		t.Errorf("PrefetchedBytes = %d after consuming", s.PrefetchedBytes())
	}
}
