package aur

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// TestIndexLogTornTailRecovery tears an index-log write mid-record (the
// data-log write of the same flush lands first and succeeds) and then
// restores the surviving files into a fresh store. The index log is the
// authority: its torn tail must be truncated on reopen, so batch-1
// states read back exactly and batch-2 states — whose data bytes may
// sit unindexed in the data log — are simply absent, never corrupt.
func TestIndexLogTornTailRecovery(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	dir := filepath.Join(t.TempDir(), "aur")
	s, err := Open(Options{
		Dir:              dir,
		WriteBufferBytes: 1, // flush on every append
		ReadBatchRatio:   0,
		Predictor:        window.SessionPredictor{Gap: 100},
		FS:               inj,
	})
	if err != nil {
		t.Fatal(err)
	}

	state := func(i int) (key []byte, w window.Window) {
		return []byte(fmt.Sprintf("s%02d", i)),
			window.Window{Start: int64(i * 10), End: int64(i*10 + 100)}
	}

	// Batch 1: ten states durably flushed to both logs.
	for i := 0; i < 10; i++ {
		k, w := state(i)
		if err := s.Append(k, []byte(fmt.Sprintf("val-%02d", i)), w, w.Start); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	// Batch 2: the index-log write tears after 5 bytes; everything
	// after (including later data-log writes) is frozen.
	inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "index-", TornBytes: 5, Crash: true})
	var failed bool
	for i := 10; i < 20; i++ {
		k, w := state(i)
		if err := s.Append(k, []byte(fmt.Sprintf("val-%02d", i)), w, w.Start); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		if err := s.Flush(); err == nil {
			t.Fatal("flush through a torn index write unexpectedly succeeded")
		}
	}
	if !inj.Fired() {
		t.Fatal("fault never fired")
	}
	_ = s.Close()
	inj.Reset()

	// Reboot: assemble a checkpoint from the surviving on-disk files.
	// (A real core checkpoint would have been rejected mid-write; this
	// models restoring the instance directory itself after a crash.)
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	copyAs := func(prefix, dst string) {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), prefix) {
				b, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(filepath.Join(ckpt, dst), b, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
		t.Fatalf("no %s* file in %s", prefix, dir)
	}
	copyAs("data-", "data.log")
	copyAs("index-", "index.log")
	if err := os.WriteFile(filepath.Join(ckpt, statSnapshotName), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := Open(Options{
		Dir:              filepath.Join(t.TempDir(), "fresh"),
		WriteBufferBytes: 1,
		ReadBatchRatio:   0,
		Predictor:        window.SessionPredictor{Gap: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()
	if err := fresh.Restore(ckpt); err != nil {
		t.Fatalf("restore of torn-index checkpoint: %v", err)
	}
	for i := 0; i < 10; i++ {
		k, w := state(i)
		vals, err := fresh.Get(k, w)
		if err != nil {
			t.Fatalf("get batch-1 state %s: %v", k, err)
		}
		if len(vals) != 1 || string(vals[0]) != fmt.Sprintf("val-%02d", i) {
			t.Fatalf("state %s = %q, want [val-%02d]", k, vals, i)
		}
	}
	for i := 10; i < 20; i++ {
		k, w := state(i)
		vals, err := fresh.Get(k, w)
		if err != nil {
			t.Fatalf("get batch-2 state %s after torn index: %v", k, err)
		}
		if vals != nil {
			t.Fatalf("unindexed batch-2 state %s resurrected: %q", k, vals)
		}
	}
}
