package core

import (
	"fmt"
	"path/filepath"
)

// Checkpoint writes a consistent snapshot of the composite store into
// dir, one subdirectory per instance. Per the paper's §8 discussion, SPEs
// snapshot their KV stores periodically (Flink's checkpointing): buffers
// are flushed so on-disk state is authoritative, and the snapshot can
// then be shipped to reliable storage while processing resumes. Windows
// consumed (fetched & removed) before the checkpoint stay consumed after
// a restore.
func (s *Store) Checkpoint(dir string) error {
	for i, st := range s.aars {
		if err := st.Checkpoint(instDir(dir, i)); err != nil {
			return err
		}
	}
	for i, st := range s.aurs {
		if err := st.Checkpoint(instDir(dir, i)); err != nil {
			return err
		}
	}
	for i, st := range s.rmws {
		if err := st.Checkpoint(instDir(dir, i)); err != nil {
			return err
		}
	}
	return nil
}

// Restore rebuilds a freshly-opened store from a checkpoint directory
// written by Checkpoint with the same pattern and instance count. Key
// routing is deterministic, so each restored instance again owns exactly
// the keys whose state it holds.
func (s *Store) Restore(dir string) error {
	if len(s.aars)+len(s.aurs)+len(s.rmws) != s.opts.Instances {
		return fmt.Errorf("flowkv: restore: store not fully open")
	}
	for i, st := range s.aars {
		if err := st.Restore(instDir(dir, i)); err != nil {
			return err
		}
	}
	for i, st := range s.aurs {
		if err := st.Restore(instDir(dir, i)); err != nil {
			return err
		}
	}
	for i, st := range s.rmws {
		if err := st.Restore(instDir(dir, i)); err != nil {
			return err
		}
	}
	return nil
}

func instDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("inst-%02d", i))
}
