package core

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"

	"flowkv/internal/faultfs"
)

// Checkpoint writes a consistent snapshot of the composite store into
// dir, one subdirectory per instance. Per the paper's §8 discussion, SPEs
// snapshot their KV stores periodically (Flink's checkpointing): buffers
// are flushed so on-disk state is authoritative, and the snapshot can
// then be shipped to reliable storage while processing resumes. Windows
// consumed (fetched & removed) before the checkpoint stay consumed after
// a restore.
//
// The snapshot is crash-consistent. Everything is first written into
// "<dir>.tmp": the per-instance files (each fsynced by the instance
// checkpoint), then a MANIFEST recording every file's size and CRC32C,
// fsynced along with the directory. Only then is the temporary directory
// atomically renamed onto dir and the parent directory fsynced. The
// previous checkpoint is never deleted before the commit: it is renamed
// aside to "<dir>.old" (deleting it file-by-file would open a window
// where a crash leaves only a partial — though still manifest-rejected —
// directory at dir). So at every instant a complete snapshot exists at
// dir, "<dir>.old", or "<dir>.tmp", and a crash leaves at worst stale
// ".tmp"/".old" directories that the next Checkpoint clears. If any step
// fails, the temporary directory is removed so no partial state lingers.
func (s *Store) Checkpoint(dir string) error {
	return s.CheckpointWithMeta(dir, nil)
}

// CheckpointWithMeta is Checkpoint carrying opaque application metadata:
// meta is written to an APPMETA file inside the snapshot before the
// MANIFEST is computed, so it is covered by the same size+CRC32C
// verification as the store files and committed by the same atomic
// rename. The SPE layer uses it to record source offsets, watermarks,
// and operator state alongside the store cut, which is what makes a
// checkpoint a resumable point rather than just a backup. A nil meta
// writes no APPMETA (byte-compatible with pre-metadata checkpoints).
func (s *Store) CheckpointWithMeta(dir string, meta []byte) error {
	if err := s.guardWrite(); err != nil {
		return err
	}
	fsys := s.opts.FS
	tmp := dir + ".tmp"
	old := dir + ".old"
	if err := fsys.RemoveAll(tmp); err != nil {
		return fmt.Errorf("flowkv: checkpoint: clear stale tmp: %w", err)
	}
	if err := fsys.RemoveAll(old); err != nil {
		return fmt.Errorf("flowkv: checkpoint: clear stale old: %w", err)
	}
	if err := fsys.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("flowkv: checkpoint: %w", err)
	}
	if err := s.checkpointInto(tmp, meta); err != nil {
		// Best-effort cleanup: after a simulated (or real) crash the
		// removal itself can fail, which the next Checkpoint handles.
		fsys.RemoveAll(tmp)
		// The per-instance snapshot flushes the live logs; if that is
		// what failed the logs are now poisoned and the store degrades
		// until Recover re-establishes the durable-offset invariant. A
		// failure confined to the snapshot directory (the common case:
		// the live logs are untouched) leaves the store Healthy.
		if perr := s.poisoned(); perr != nil {
			s.degrade(perr)
		}
		return err
	}
	// Commit: move the previous checkpoint aside (atomic, keeps it
	// whole for fallback), then rename the complete snapshot onto dir.
	if err := fsys.Rename(dir, old); err != nil && !errors.Is(err, fs.ErrNotExist) {
		fsys.RemoveAll(tmp)
		return fmt.Errorf("flowkv: checkpoint: move previous aside: %w", err)
	}
	if err := fsys.Rename(tmp, dir); err != nil {
		fsys.RemoveAll(tmp)
		return fmt.Errorf("flowkv: checkpoint: commit: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(dir)); err != nil {
		return fmt.Errorf("flowkv: checkpoint: sync parent: %w", err)
	}
	if err := fsys.RemoveAll(old); err != nil {
		return fmt.Errorf("flowkv: checkpoint: clear previous: %w", err)
	}
	// The snapshot is committed; retention GC failures are reported but
	// do not invalidate it (and do not degrade the store — acknowledged
	// state is unaffected by a failed unlink of an old checkpoint).
	if k := s.opts.RetainCheckpoints; k > 0 {
		if err := gcCheckpoints(fsys, dir, k, s.protectedParents()); err != nil {
			return fmt.Errorf("flowkv: checkpoint: retention gc: %w", err)
		}
	}
	return nil
}

// checkpointInto writes every instance's snapshot plus the MANIFEST into
// tmp, fsyncing each instance subdirectory so the files named by the
// manifest are durably linked before the commit rename. Instances
// snapshot in parallel (bounded by Options.Parallelism); each instance's
// Checkpoint holds only that instance's I/O lock, so ingestion proceeds
// while the snapshot is written. The cut is per-instance — the instant
// each instance detaches its buffer — which is consistent per key because
// one instance owns all of a key's state.
func (s *Store) checkpointInto(tmp string, meta []byte) error {
	fsys := s.opts.FS
	if err := s.eachInstance(func(i int) error {
		var err error
		switch s.pattern {
		case PatternAAR:
			err = s.aars[i].Checkpoint(instDir(tmp, i))
		case PatternAUR:
			err = s.aurs[i].Checkpoint(instDir(tmp, i))
		default:
			err = s.rmws[i].Checkpoint(instDir(tmp, i))
		}
		if err != nil {
			return err
		}
		if err := fsys.SyncDir(instDir(tmp, i)); err != nil {
			return fmt.Errorf("flowkv: checkpoint: sync instance dir: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	if meta != nil {
		if err := writeAppMeta(fsys, tmp, meta); err != nil {
			return err
		}
	}
	return writeManifest(fsys, tmp, s.pattern, s.opts.Instances)
}

// appMetaName is the application-metadata file inside a checkpoint
// directory. It is listed in the MANIFEST like any store file, so
// tampering with it invalidates the whole checkpoint.
const appMetaName = "APPMETA"

// writeAppMeta durably writes the application metadata file into the
// snapshot staging directory.
func writeAppMeta(fsys faultfs.FS, dir string, meta []byte) error {
	f, err := fsys.Create(filepath.Join(dir, appMetaName))
	if err != nil {
		return fmt.Errorf("flowkv: checkpoint: appmeta: %w", err)
	}
	if _, err := f.Write(meta); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: checkpoint: appmeta: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: checkpoint: appmeta: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flowkv: checkpoint: appmeta: %w", err)
	}
	return nil
}

// ReadCheckpointMeta returns the application metadata stored in a
// checkpoint directory by CheckpointWithMeta, or nil if the checkpoint
// carries none. It does not verify the checkpoint — callers that need
// integrity use RestoreWithMeta or VerifyCheckpointDir first. A nil fsys
// uses the real filesystem.
func ReadCheckpointMeta(fsys faultfs.FS, dir string) ([]byte, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	b, err := fsys.ReadFile(filepath.Join(dir, appMetaName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("flowkv: read checkpoint meta: %w", err)
	}
	return b, nil
}

// Restore rebuilds a freshly-opened store from a checkpoint directory
// written by Checkpoint with the same pattern and instance count. Key
// routing is deterministic, so each restored instance again owns exactly
// the keys whose state it holds.
//
// Before any instance state is loaded, the checkpoint is verified against
// its MANIFEST; a partial, truncated, or bit-flipped snapshot is rejected
// with a CheckpointError (errors.Is ErrCheckpointInvalid) and the store
// is left untouched, so the caller can fall back to an older checkpoint.
func (s *Store) Restore(dir string) error {
	_, err := s.RestoreWithMeta(dir)
	return err
}

// RestoreWithMeta is Restore returning the application metadata the
// checkpoint was taken with (nil for checkpoints written without any).
// The metadata is read only after the manifest verification passes, so a
// non-nil return is exactly the bytes given to CheckpointWithMeta.
func (s *Store) RestoreWithMeta(dir string) ([]byte, error) {
	if len(s.aars)+len(s.aurs)+len(s.rmws) != s.opts.Instances {
		return nil, fmt.Errorf("flowkv: restore: store not fully open")
	}
	if err := verifyCheckpoint(s.opts.FS, dir, s.pattern, s.opts.Instances); err != nil {
		return nil, err
	}
	meta, err := ReadCheckpointMeta(s.opts.FS, dir)
	if err != nil {
		return nil, err
	}
	for i, st := range s.aars {
		if err := st.Restore(instDir(dir, i)); err != nil {
			return nil, err
		}
	}
	for i, st := range s.aurs {
		if err := st.Restore(instDir(dir, i)); err != nil {
			return nil, err
		}
	}
	for i, st := range s.rmws {
		if err := st.Restore(instDir(dir, i)); err != nil {
			return nil, err
		}
	}
	return meta, nil
}

func instDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("inst-%02d", i))
}
