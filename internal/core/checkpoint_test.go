package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"flowkv/internal/window"
)

// reopenFromCheckpoint checkpoints src, opens a fresh store with the same
// configuration in a new directory, and restores the checkpoint into it.
func reopenFromCheckpoint(t *testing.T, src *Store, agg AggKind, wk window.Kind, opts Options) *Store {
	t.Helper()
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	opts.Dir = filepath.Join(t.TempDir(), "restored")
	dst, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Destroy() })
	if err := dst.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestCheckpointRestoreAAR(t *testing.T) {
	opts := Options{Instances: 2, WriteBufferBytes: 1024}
	src := openStore(t, AggHolistic, window.Fixed, opts)
	w1 := window.Window{Start: 0, End: 100}
	w2 := window.Window{Start: 100, End: 200}
	for i := 0; i < 50; i++ {
		src.Append([]byte(fmt.Sprintf("k%02d", i%8)), []byte(fmt.Sprintf("v%02d", i)), w1, int64(i))
		src.Append([]byte(fmt.Sprintf("k%02d", i%8)), []byte("second"), w2, int64(i))
	}
	dst := reopenFromCheckpoint(t, src, AggHolistic, window.Fixed, opts)

	for _, w := range []window.Window{w1, w2} {
		want := drainAAR(t, src, w)
		got := drainAAR(t, dst, w)
		if len(got) != len(want) {
			t.Fatalf("window %v: %d keys, want %d", w, len(got), len(want))
		}
		for k, vs := range want {
			if len(got[k]) != len(vs) {
				t.Fatalf("window %v key %s: %d values, want %d", w, k, len(got[k]), len(vs))
			}
			for i := range vs {
				if got[k][i] != vs[i] {
					t.Fatalf("window %v key %s[%d]: %q want %q", w, k, i, got[k][i], vs[i])
				}
			}
		}
	}
}

func drainAAR(t *testing.T, s *Store, w window.Window) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for {
		part, err := s.GetWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		if part == nil {
			return out
		}
		for _, kv := range part {
			for _, v := range kv.Values {
				out[string(kv.Key)] = append(out[string(kv.Key)], string(v))
			}
		}
	}
}

func TestCheckpointRestoreAUR(t *testing.T) {
	opts := Options{
		Instances:        2,
		WriteBufferBytes: 512,
		Assigner:         window.SessionAssigner{Gap: 100},
	}
	src := openStore(t, AggHolistic, window.Session, opts)
	type st8 struct {
		key string
		w   window.Window
		n   int
	}
	var states []st8
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key-%02d", i)
		w := window.Window{Start: int64(i * 10), End: int64(i*10) + 100}
		n := 1 + i%4
		for j := 0; j < n; j++ {
			if err := src.Append([]byte(k), []byte(fmt.Sprintf("%s/%d", k, j)), w, int64(i*10+j)); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, st8{key: k, w: w, n: n})
	}
	// Consume half before the checkpoint: consumed state must NOT
	// resurrect after restore.
	for _, s0 := range states[:20] {
		vals, err := src.Get([]byte(s0.key), s0.w)
		if err != nil || len(vals) != s0.n {
			t.Fatalf("pre-ckpt get %s: %d,%v", s0.key, len(vals), err)
		}
	}
	dst := reopenFromCheckpoint(t, src, AggHolistic, window.Session, opts)
	for i, s0 := range states {
		vals, err := dst.Get([]byte(s0.key), s0.w)
		if err != nil {
			t.Fatal(err)
		}
		if i < 20 {
			if vals != nil {
				t.Fatalf("consumed state %s resurrected: %q", s0.key, vals)
			}
			continue
		}
		if len(vals) != s0.n {
			t.Fatalf("state %s: %d values, want %d", s0.key, len(vals), s0.n)
		}
		for j, v := range vals {
			if string(v) != fmt.Sprintf("%s/%d", s0.key, j) {
				t.Fatalf("state %s value %d = %q", s0.key, j, v)
			}
		}
	}
	// Restored stores keep working: appends and predictive reads resume.
	w := window.Window{Start: 9999, End: 10099}
	if err := dst.Append([]byte("post"), []byte("restore"), w, 9999); err != nil {
		t.Fatal(err)
	}
	vals, err := dst.Get([]byte("post"), w)
	if err != nil || len(vals) != 1 {
		t.Fatalf("post-restore append/get: %q %v", vals, err)
	}
}

func TestCheckpointRestoreRMW(t *testing.T) {
	opts := Options{Instances: 3, WriteBufferBytes: 256}
	src := openStore(t, AggIncremental, window.Fixed, opts)
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		if err := src.PutAggregate(k, w, []byte(fmt.Sprintf("agg-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Consume some aggregates pre-checkpoint.
	for i := 0; i < 15; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		if _, ok, err := src.GetAggregate(k, w); !ok || err != nil {
			t.Fatal(err)
		}
	}
	dst := reopenFromCheckpoint(t, src, AggIncremental, window.Fixed, opts)
	for i := 0; i < 60; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i))
		agg, ok, err := dst.GetAggregate(k, w)
		if err != nil {
			t.Fatal(err)
		}
		if i < 15 {
			if ok {
				t.Fatalf("consumed aggregate key-%02d resurrected", i)
			}
			continue
		}
		if !ok || string(agg) != fmt.Sprintf("agg-%02d", i) {
			t.Fatalf("key-%02d: %q,%v", i, agg, ok)
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	// Two stores with identical options must route identically — the
	// property checkpoint restore relies on.
	a := openStore(t, AggIncremental, window.Fixed, Options{Instances: 4})
	b := openStore(t, AggIncremental, window.Fixed, Options{Instances: 4})
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if a.route(k) != b.route(k) {
			t.Fatalf("routing differs for %s", k)
		}
	}
}

func TestRestoreRejectsNonEmpty(t *testing.T) {
	opts := Options{Instances: 1, Assigner: window.SessionAssigner{Gap: 100}}
	src := openStore(t, AggHolistic, window.Session, opts)
	w := window.Window{Start: 0, End: 100}
	src.Append([]byte("k"), []byte("v"), w, 0)
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	// src itself is non-empty: restoring into it must fail.
	if err := src.Restore(ckpt); err == nil {
		t.Error("restore into non-empty store should fail")
	}
}
