package core

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowkv/internal/faultfs"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// The concurrency stress battery. Each pattern runs stressWorkers
// goroutines of randomized operations against one composite store, every
// worker owning a disjoint key (and, for AAR, window) namespace so it can
// check each read's exact result against its private in-memory oracle —
// linearizability per key follows from per-key sequential access, while
// the store underneath interleaves flushes, compactions, drains, and
// checkpoints across workers. A chaos goroutine concurrently drives the
// cross-cutting operations (Flush, Sync, Stats, Checkpoint). Run with
// -race; the test exists to give the detector surface area.

const (
	stressWorkers = 8
	stressOps     = 300
)

func stressConfig(p Pattern) (AggKind, window.Kind, Options) {
	agg, wk, opts := crashConfig(p)
	opts.Instances = 4
	opts.WriteBufferBytes = 2048 // 512 per instance: constant flush churn
	return agg, wk, opts
}

// stressWorker is one goroutine's private oracle.
type stressWorker struct {
	id  int
	rng *rand.Rand

	// AAR: this worker's windows (disjoint from other workers').
	wins map[window.Window]map[string][]string

	// AUR: per-state values; live tracks states eligible for reads.
	vals map[cid][]string
	live []cid

	// RMW: latest aggregate per id.
	aggs map[cid]string

	// lat holds one latency histogram per key this worker touched
	// (window-wide operations use a synthetic drain/drop key), so the
	// battery verdict can report tail latencies and a regression shows
	// up next to the correctness result instead of only in benchmarks.
	lat map[string]*metrics.Histogram
}

// observe records one store operation's latency under the key it touched.
func (sw *stressWorker) observe(key string, t0 time.Time) {
	h := sw.lat[key]
	if h == nil {
		h = metrics.NewHistogram()
		sw.lat[key] = h
	}
	h.Observe(time.Since(t0))
}

func (sw *stressWorker) window(n int64) window.Window {
	// Each worker's windows live in a private 1e6-wide band.
	start := int64(sw.id)*1_000_000 + 100*n
	return window.Window{Start: start, End: start + 100}
}

func (sw *stressWorker) stepAAR(s *Store, ctr int) error {
	switch {
	case len(sw.wins) > 0 && sw.rng.Intn(100) < 6:
		// Full drain of one of this worker's windows; every value must
		// come back exactly once, in per-key append order.
		var ws []window.Window
		for w := range sw.wins {
			ws = append(ws, w)
		}
		w := ws[sw.rng.Intn(len(ws))]
		got := map[string][]string{}
		for {
			t0 := time.Now()
			part, err := s.GetWindow(w)
			sw.observe(fmt.Sprintf("w%d:drain", sw.id), t0)
			if err != nil {
				return err
			}
			if part == nil {
				break
			}
			for _, kv := range part {
				for _, v := range kv.Values {
					got[string(kv.Key)] = append(got[string(kv.Key)], string(v))
				}
			}
		}
		want := sw.wins[w]
		delete(sw.wins, w)
		if len(got) != len(want) {
			return fmt.Errorf("worker %d window %v: drained %d keys, want %d", sw.id, w, len(got), len(want))
		}
		for k, vs := range want {
			if len(got[k]) != len(vs) {
				return fmt.Errorf("worker %d window %v key %s: %d values, want %d", sw.id, w, k, len(got[k]), len(vs))
			}
			for i := range vs {
				if got[k][i] != vs[i] {
					return fmt.Errorf("worker %d window %v key %s[%d] = %q, want %q", sw.id, w, k, i, got[k][i], vs[i])
				}
			}
		}
		return nil
	case len(sw.wins) > 0 && sw.rng.Intn(100) < 5:
		var ws []window.Window
		for w := range sw.wins {
			ws = append(ws, w)
		}
		w := ws[sw.rng.Intn(len(ws))]
		t0 := time.Now()
		err := s.DropWindow(w)
		sw.observe(fmt.Sprintf("w%d:drop", sw.id), t0)
		if err != nil {
			return err
		}
		delete(sw.wins, w)
		return nil
	default:
		w := sw.window(int64(ctr/40) + int64(sw.rng.Intn(2)))
		key := fmt.Sprintf("w%d-k%d", sw.id, sw.rng.Intn(4))
		val := fmt.Sprintf("v%06d", ctr)
		t0 := time.Now()
		err := s.Append([]byte(key), []byte(val), w, w.Start)
		sw.observe(key, t0)
		if err != nil {
			return err
		}
		if sw.wins[w] == nil {
			sw.wins[w] = make(map[string][]string)
		}
		sw.wins[w][key] = append(sw.wins[w][key], val)
		return nil
	}
}

func (sw *stressWorker) stepAUR(s *Store, ctr int) error {
	if len(sw.live) == 0 || sw.rng.Intn(100) < 60 {
		var c cid
		if len(sw.live) > 0 && sw.rng.Intn(2) == 0 {
			c = sw.live[sw.rng.Intn(len(sw.live))]
		} else {
			c = cid{
				key: fmt.Sprintf("w%d-s%04d", sw.id, ctr),
				w:   sw.window(int64(ctr)),
			}
		}
		val := fmt.Sprintf("v%06d", ctr)
		t0 := time.Now()
		err := s.Append([]byte(c.key), []byte(val), c.w, c.w.Start)
		sw.observe(c.key, t0)
		if err != nil {
			return err
		}
		if _, ok := sw.vals[c]; !ok {
			sw.live = append(sw.live, c)
		}
		sw.vals[c] = append(sw.vals[c], val)
		return nil
	}
	i := sw.rng.Intn(len(sw.live))
	c := sw.live[i]
	want := sw.vals[c]
	switch sw.rng.Intn(3) {
	case 0: // peek, state stays live
		t0 := time.Now()
		got, err := s.Read([]byte(c.key), c.w)
		sw.observe(c.key, t0)
		if err != nil {
			return err
		}
		return sw.compare("Read", c, got, want)
	case 1: // drop unread
		t0 := time.Now()
		err := s.Drop([]byte(c.key), c.w)
		sw.observe(c.key, t0)
		if err != nil {
			return err
		}
		sw.retire(i, c)
		return nil
	default: // fetch & remove
		t0 := time.Now()
		got, err := s.Get([]byte(c.key), c.w)
		sw.observe(c.key, t0)
		if err != nil {
			return err
		}
		if err := sw.compare("Get", c, got, want); err != nil {
			return err
		}
		sw.retire(i, c)
		// A consumed state must stay consumed.
		if again, err := s.Get([]byte(c.key), c.w); err != nil {
			return err
		} else if again != nil {
			return fmt.Errorf("worker %d: consumed state %v resurrected: %q", sw.id, c, again)
		}
		return nil
	}
}

func (sw *stressWorker) retire(i int, c cid) {
	delete(sw.vals, c)
	sw.live[i] = sw.live[len(sw.live)-1]
	sw.live = sw.live[:len(sw.live)-1]
}

func (sw *stressWorker) compare(op string, c cid, got [][]byte, want []string) error {
	if len(got) != len(want) {
		return fmt.Errorf("worker %d %s %v: %d values, want %d", sw.id, op, c, len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			return fmt.Errorf("worker %d %s %v[%d] = %q, want %q", sw.id, op, c, i, got[i], want[i])
		}
	}
	return nil
}

func (sw *stressWorker) stepRMW(s *Store, ctr int) error {
	c := cid{
		key: fmt.Sprintf("w%d-r%02d", sw.id, sw.rng.Intn(12)),
		w:   sw.window(int64(sw.rng.Intn(2))),
	}
	if sw.rng.Intn(100) < 60 {
		val := fmt.Sprintf("a%06d", ctr)
		t0 := time.Now()
		err := s.PutAggregate([]byte(c.key), c.w, []byte(val))
		sw.observe(c.key, t0)
		if err != nil {
			return err
		}
		sw.aggs[c] = val
		return nil
	}
	t0 := time.Now()
	got, ok, err := s.GetAggregate([]byte(c.key), c.w)
	sw.observe(c.key, t0)
	if err != nil {
		return err
	}
	want, exists := sw.aggs[c]
	if ok != exists {
		return fmt.Errorf("worker %d: aggregate %v present=%v, want %v", sw.id, c, ok, exists)
	}
	if ok && string(got) != want {
		return fmt.Errorf("worker %d: aggregate %v = %q, want %q", sw.id, c, got, want)
	}
	delete(sw.aggs, c) // Get consumes
	return nil
}

// finalVerify re-reads everything the worker still believes is live.
func (sw *stressWorker) finalVerify(s *Store, p Pattern) error {
	switch p {
	case PatternAAR:
		for w, want := range sw.wins {
			got := map[string][]string{}
			for {
				part, err := s.GetWindow(w)
				if err != nil {
					return err
				}
				if part == nil {
					break
				}
				for _, kv := range part {
					for _, v := range kv.Values {
						got[string(kv.Key)] = append(got[string(kv.Key)], string(v))
					}
				}
			}
			for k, vs := range want {
				if len(got[k]) != len(vs) {
					return fmt.Errorf("worker %d final window %v key %s: %d values, want %d", sw.id, w, k, len(got[k]), len(vs))
				}
			}
		}
	case PatternAUR:
		for c, want := range sw.vals {
			got, err := s.Get([]byte(c.key), c.w)
			if err != nil {
				return err
			}
			if err := sw.compare("final Get", c, got, want); err != nil {
				return err
			}
		}
	default:
		for c, want := range sw.aggs {
			got, ok, err := s.GetAggregate([]byte(c.key), c.w)
			if err != nil {
				return err
			}
			if !ok || string(got) != want {
				return fmt.Errorf("worker %d final aggregate %v = %q,%v, want %q", sw.id, c, got, ok, want)
			}
		}
	}
	return nil
}

func runStress(t *testing.T, pattern Pattern, seed int64) {
	t.Helper()
	agg, wk, opts := stressConfig(pattern)
	base := t.TempDir()
	opts.Dir = filepath.Join(base, "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()

	var (
		workersWg sync.WaitGroup
		chaosWg   sync.WaitGroup
		failMu    sync.Mutex
		fails     []error
	)
	fail := func(err error) {
		failMu.Lock()
		fails = append(fails, err)
		failMu.Unlock()
	}

	// Chaos goroutine: cross-cutting maintenance racing the workers for
	// their entire lifetime.
	stop := make(chan struct{})
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		ckptN := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(10) {
			case 0:
				if err := s.Sync(); err != nil {
					fail(fmt.Errorf("chaos Sync: %w", err))
					return
				}
			case 1, 2:
				if err := s.Flush(); err != nil {
					fail(fmt.Errorf("chaos Flush: %w", err))
					return
				}
			case 3:
				ckptN++
				if err := s.Checkpoint(filepath.Join(base, fmt.Sprintf("ckpt-%d", ckptN))); err != nil {
					fail(fmt.Errorf("chaos Checkpoint: %w", err))
					return
				}
			default:
				_ = s.Stats()
			}
			time.Sleep(time.Duration(rng.Intn(500)) * time.Microsecond)
		}
	}()

	lats := make([]map[string]*metrics.Histogram, stressWorkers)
	for id := 0; id < stressWorkers; id++ {
		workersWg.Add(1)
		go func(id int) {
			defer workersWg.Done()
			sw := &stressWorker{
				id:   id,
				rng:  rand.New(rand.NewSource(seed + int64(id))),
				wins: make(map[window.Window]map[string][]string),
				vals: make(map[cid][]string),
				aggs: make(map[cid]string),
				lat:  make(map[string]*metrics.Histogram),
			}
			lats[id] = sw.lat
			for i := 0; i < stressOps; i++ {
				var err error
				switch pattern {
				case PatternAAR:
					err = sw.stepAAR(s, i)
				case PatternAUR:
					err = sw.stepAUR(s, i)
				default:
					err = sw.stepRMW(s, i)
				}
				if err != nil {
					fail(err)
					return
				}
			}
			if err := sw.finalVerify(s, pattern); err != nil {
				fail(err)
			}
		}(id)
	}

	workersWg.Wait()
	close(stop)
	chaosWg.Wait()

	failMu.Lock()
	defer failMu.Unlock()
	for _, err := range fails {
		t.Error(err)
	}
	reportStressLatency(t, pattern, lats, len(fails) == 0)
}

// reportStressLatency prints the battery's latency verdict: the merged
// distribution over every per-key histogram plus the worst keys by p99,
// so a tail regression surfaces in the same output as a correctness
// failure instead of waiting for a benchmark run.
func reportStressLatency(t *testing.T, pattern Pattern, lats []map[string]*metrics.Histogram, passed bool) {
	t.Helper()
	type keyLat struct {
		key string
		h   *metrics.Histogram
	}
	overall := metrics.NewHistogram()
	var keys []keyLat
	for _, m := range lats {
		for k, h := range m {
			overall.Merge(h)
			keys = append(keys, keyLat{key: k, h: h})
		}
	}
	if overall.Count() == 0 {
		return
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].h.P99() > keys[j].h.P99() })
	verdict := "PASS"
	if !passed {
		verdict = "FAIL"
	}
	t.Logf("%s stress %s: %d ops over %d keys, latency p50=%v p95=%v p99=%v max=%v",
		pattern, verdict, overall.Count(), len(keys),
		overall.P50(), overall.P95(), overall.P99(), overall.Max())
	for i, kl := range keys {
		if i >= 5 {
			break
		}
		t.Logf("  slowest key %-12s ops=%-4d p50=%v p99=%v max=%v",
			kl.key, kl.h.Count(), kl.h.P50(), kl.h.P99(), kl.h.Max())
	}
}

func TestConcurrentStressAAR(t *testing.T) { runStress(t, PatternAAR, 1) }
func TestConcurrentStressAUR(t *testing.T) { runStress(t, PatternAUR, 2) }
func TestConcurrentStressRMW(t *testing.T) { runStress(t, PatternRMW, 3) }

// TestConcurrentCheckpointConsistency: writers append monotonically
// numbered values per key while a checkpoint is taken mid-stream. The
// restored state of every key must be an exact prefix of its written
// sequence, at least as long as what was acked before Checkpoint began
// and at most one append longer than what was acked when it returned
// (one append per key may be in flight at the cut).
func TestConcurrentCheckpointConsistency(t *testing.T) {
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) { runConcurrentCheckpoint(t, p) })
	}
}

func runConcurrentCheckpoint(t *testing.T, pattern Pattern) {
	t.Helper()
	agg, wk, opts := stressConfig(pattern)
	base := t.TempDir()
	opts.Dir = filepath.Join(base, "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()

	const writers = 8
	var (
		counts [writers]int64 // appends acked, per writer (atomic)
		stop   int32
		wg     sync.WaitGroup
		werrMu sync.Mutex
		werr   error
	)
	win := func(id int) window.Window {
		start := int64(id) * 1000
		return window.Window{Start: start, End: start + 100}
	}
	for id := 0; id < writers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("w%d-key", id))
			w := win(id)
			for i := 0; atomic.LoadInt32(&stop) == 0; i++ {
				val := []byte(fmt.Sprintf("v%06d", i))
				var err error
				switch pattern {
				case PatternAAR, PatternAUR:
					err = s.Append(key, val, w, w.Start)
				default:
					err = s.PutAggregate(key, w, val)
				}
				if err != nil {
					werrMu.Lock()
					if werr == nil {
						werr = err
					}
					werrMu.Unlock()
					return
				}
				atomic.AddInt64(&counts[id], 1)
			}
		}(id)
	}

	// Let every writer ack at least a few appends before the cut.
	for deadline := time.Now().Add(5 * time.Second); ; {
		ready := true
		for id := 0; id < writers; id++ {
			if atomic.LoadInt64(&counts[id]) < 4 {
				ready = false
			}
		}
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writers failed to make progress")
		}
		time.Sleep(time.Millisecond)
	}

	var low, high [writers]int64
	for id := range low {
		low[id] = atomic.LoadInt64(&counts[id])
	}
	ckpt := filepath.Join(base, "ckpt")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatalf("checkpoint under writers: %v", err)
	}
	for id := range high {
		high[id] = atomic.LoadInt64(&counts[id])
	}
	atomic.StoreInt32(&stop, 1)
	wg.Wait()
	if werr != nil {
		t.Fatalf("writer error: %v", werr)
	}

	restOpts := opts
	restOpts.Dir = filepath.Join(base, "restored")
	fresh, err := Open(agg, wk, restOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()
	if err := fresh.Restore(ckpt); err != nil {
		t.Fatalf("restore: %v", err)
	}

	for id := 0; id < writers; id++ {
		key := []byte(fmt.Sprintf("w%d-key", id))
		w := win(id)
		var got []string
		switch pattern {
		case PatternAAR:
			for {
				part, err := fresh.GetWindow(w)
				if err != nil {
					t.Fatal(err)
				}
				if part == nil {
					break
				}
				for _, kv := range part {
					for _, v := range kv.Values {
						got = append(got, string(v))
					}
				}
			}
		case PatternAUR:
			vals, err := fresh.Get(key, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vals {
				got = append(got, string(v))
			}
		default:
			val, ok, err := fresh.GetAggregate(key, w)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("writer %d: aggregate missing after restore (low=%d)", id, low[id])
			}
			var seq int64
			if _, err := fmt.Sscanf(string(val), "v%d", &seq); err != nil {
				t.Fatalf("writer %d: unparsable aggregate %q", id, val)
			}
			if n := seq + 1; n < low[id] || n > high[id]+1 {
				t.Errorf("writer %d: restored aggregate seq %d outside acked bounds [%d, %d]",
					id, seq, low[id]-1, high[id])
			}
			continue
		}
		n := int64(len(got))
		if n < low[id] || n > high[id]+1 {
			t.Errorf("writer %d: restored %d values, acked bounds [%d, %d+1]", id, n, low[id], high[id])
		}
		for i, v := range got {
			if want := fmt.Sprintf("v%06d", i); v != want {
				t.Fatalf("writer %d: restored[%d] = %q, want %q (not a prefix)", id, i, v, want)
				break
			}
		}
	}
}

// TestConcurrentCheckpointInjectedFailure: a checkpoint that fails from
// an injected fault while writers are active must leave the store fully
// usable, and a retried checkpoint must commit and verify.
func TestConcurrentCheckpointInjectedFailure(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	agg, wk, opts := stressConfig(PatternRMW)
	base := t.TempDir()
	opts.Dir = filepath.Join(base, "store")
	opts.FS = inj
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()

	const writers = 4
	var (
		counts [writers]int64
		stop   int32
		wg     sync.WaitGroup
	)
	for id := 0; id < writers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("w%d-key", id))
			w := window.Window{Start: int64(id) * 1000, End: int64(id)*1000 + 100}
			for i := 0; atomic.LoadInt32(&stop) == 0; i++ {
				if err := s.PutAggregate(key, w, []byte(fmt.Sprintf("v%06d", i))); err != nil {
					// Injected faults must never leak into writer paths:
					// the rule targets the checkpoint tmp directory only.
					t.Errorf("writer %d: %v", id, err)
					return
				}
				atomic.AddInt64(&counts[id], 1)
			}
		}(id)
	}
	for atomic.LoadInt64(&counts[0]) < 4 {
		time.Sleep(time.Millisecond)
	}

	ckpt := filepath.Join(base, "ckpt")
	inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, PathContains: ".tmp"})
	if err := s.Checkpoint(ckpt); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("checkpoint with injected tmp failure: %v", err)
	}
	inj.Reset()

	var low [writers]int64
	for id := range low {
		low[id] = atomic.LoadInt64(&counts[id])
	}
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	var high [writers]int64
	for id := range high {
		high[id] = atomic.LoadInt64(&counts[id])
	}
	atomic.StoreInt32(&stop, 1)
	wg.Wait()

	restOpts := opts
	restOpts.FS = nil
	restOpts.Dir = filepath.Join(base, "restored")
	fresh, err := Open(agg, wk, restOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()
	if err := fresh.Restore(ckpt); err != nil {
		t.Fatalf("restore after failed+retried checkpoint: %v", err)
	}
	for id := 0; id < writers; id++ {
		key := []byte(fmt.Sprintf("w%d-key", id))
		w := window.Window{Start: int64(id) * 1000, End: int64(id)*1000 + 100}
		val, ok, err := fresh.GetAggregate(key, w)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("writer %d: aggregate missing after restore", id)
		}
		var seq int64
		if _, err := fmt.Sscanf(string(val), "v%d", &seq); err != nil {
			t.Fatalf("writer %d: unparsable aggregate %q", id, val)
		}
		if n := seq + 1; n < low[id] || n > high[id]+1 {
			t.Errorf("writer %d: restored seq %d outside acked bounds [%d, %d]", id, seq, low[id]-1, high[id])
		}
	}
}
