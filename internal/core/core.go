// Package core is the top level of FlowKV, the paper's semantic-aware
// composite store for stream processing engines. At application launch it
// classifies each window operation into one of three store patterns from
// the operation's aggregate-function interface and window function
// (§3.1), and deploys store instances with data layouts customized for
// that pattern:
//
//   - AAR (Append and Aligned Read)   — internal/core/aar
//   - AUR (Append and Unaligned Read) — internal/core/aur
//   - RMW (Read-Modify-Write)         — internal/core/rmw
//
// A Store for one physical window operator is itself composed of m
// independent instances over hash sub-partitions of the operator's key
// space (§3, "FlowKV further partitions K_i into K_i,0..K_i,m-1"); this
// keeps compaction local to one sub-partition and bounds latency spikes.
//
// Unlike traditional KV stores, every API method takes the window — and,
// where relevant, the tuple timestamp — as explicit arguments (§3.2,
// Listing 1); the API is exposed to the SPE, not to user applications.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"flowkv/internal/core/aar"
	"flowkv/internal/core/aur"
	"flowkv/internal/core/rmw"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// ErrWrongPattern reports a call to an API method that the store's
// classified pattern does not support.
var ErrWrongPattern = errors.New("flowkv: method not supported by this store pattern")

// AggKind describes which aggregate-function interface the window
// operation implements, the first classification axis of §3.1.
type AggKind int

const (
	// AggIncremental marks associative and commutative aggregate
	// functions applied incrementally (Flink's AggregateFunction):
	// the operation keeps one intermediate aggregate per window.
	AggIncremental AggKind = iota
	// AggHolistic marks aggregate functions that need every tuple of the
	// window before triggering (Flink's ProcessWindowFunction), e.g.
	// median or windowed join: the operation appends tuples to a list.
	AggHolistic
)

// String returns the aggregate-kind name.
func (k AggKind) String() string {
	switch k {
	case AggIncremental:
		return "incremental"
	case AggHolistic:
		return "holistic"
	default:
		return fmt.Sprintf("agg(%d)", int(k))
	}
}

// Pattern is a FlowKV store pattern, chosen once at application launch.
type Pattern int

const (
	// PatternAAR: holistic aggregate + aligned windows (fixed/sliding/global).
	PatternAAR Pattern = iota
	// PatternAUR: holistic aggregate + unaligned windows (session/count/custom).
	PatternAUR
	// PatternRMW: incremental aggregate; read alignment is irrelevant
	// because the aggregate is read on every tuple arrival (§2.1).
	PatternRMW
)

// String returns the store-pattern name.
func (p Pattern) String() string {
	switch p {
	case PatternAAR:
		return "AAR"
	case PatternAUR:
		return "AUR"
	case PatternRMW:
		return "RMW"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Classify maps an operation's aggregate kind and window kind to the
// store pattern FlowKV deploys for it, following §3.1 exactly: the
// aggregate interface decides RMW vs Append; the window function decides
// aligned vs unaligned reads, with unknown (custom) window functions
// conservatively treated as unaligned.
func Classify(agg AggKind, wk window.Kind) Pattern {
	if agg == AggIncremental {
		return PatternRMW
	}
	if wk.Aligned() {
		return PatternAAR
	}
	return PatternAUR
}

// Options configures a composite FlowKV store for one physical operator.
type Options struct {
	// Dir is the root directory; each instance gets a subdirectory.
	Dir string
	// Instances is m, the number of store instances per physical window
	// operator. Default 2 (the paper's evaluated configuration).
	Instances int
	// WriteBufferBytes is the total write-buffer capacity, split evenly
	// across instances. Default 64 MiB.
	WriteBufferBytes int64
	// ReadBatchRatio is the AUR predictive-batch-read ratio. Default 0.02.
	ReadBatchRatio float64
	// AURMinBatchWindows floors the AUR per-scan prefetch count; see
	// aur.Options.MinBatchWindows. Default 64.
	AURMinBatchWindows int
	// MaxSpaceAmplification is the compaction threshold. Default 1.5.
	MaxSpaceAmplification float64
	// LoadPartitionBytes bounds AAR gradual-loading partitions. Default 4 MiB.
	LoadPartitionBytes int64
	// Predictor overrides the ETT predictor; when nil, the predictor is
	// derived from the window kind and assigner (window.PredictorFor).
	Predictor window.Predictor
	// Assigner is the operator's window assigner, used to derive the
	// default predictor (e.g. the session gap).
	Assigner window.Assigner
	// Parallelism bounds the worker goroutines used for cross-instance
	// fan-out: GetWindow drains, Flush, Sync, and checkpoint writes.
	// 1 runs those serially. Default min(4, Instances).
	Parallelism int
	// RetainCheckpoints keeps the K newest verified checkpoints among the
	// siblings of each Checkpoint target directory, garbage-collecting
	// older ones after a successful checkpoint. 0 disables retention GC.
	// Generations a kept incremental checkpoint still references through
	// its parent chain are retained as well.
	RetainCheckpoints int
	// MaxDeltaChain caps the incremental-checkpoint chain depth: when a
	// CheckpointDelta would exceed it, the checkpoint is written as a
	// fresh full base instead. The cap bounds how long retention GC must
	// keep ancestor generations alive and how far the RMW replay stream
	// can grow before it is re-based. Default 16; negative disables
	// incremental checkpoints entirely (every CheckpointDelta is full).
	MaxDeltaChain int
	// DisableGroupCommit makes CheckpointDelta fsync each written file
	// immediately (the historical per-log discipline) instead of
	// batching every instance's fsyncs into one sync window per
	// checkpoint. Ablation only.
	DisableGroupCommit bool
	// ReadRetries bounds the retry attempts for transient read I/O
	// errors before the error surfaces to the caller. Default 3.
	ReadRetries int
	// ReadRetryBackoff is the initial backoff between read retries,
	// doubling per attempt. Default 1ms.
	ReadRetryBackoff time.Duration
	// FineGrainedAAR enables the fine-grained AAR layout (ablation).
	FineGrainedAAR bool
	// SeparateCompactionScan disables integrated compaction (ablation).
	SeparateCompactionScan bool
	// FS is the filesystem seam shared by every instance and the
	// checkpoint machinery; nil means the real OS filesystem.
	// Fault-injection tests substitute a faultfs.Injector.
	FS faultfs.FS
	// Breakdown receives per-operation CPU time and I/O accounting.
	Breakdown *metrics.Breakdown
	// OpDeadline bounds each log write and fsync: an operation still
	// running at the deadline is abandoned (its descriptor is never
	// touched again), the log poisons through the failed-sync path, and
	// the store degrades with ReasonStall. 0 disables the sentinel —
	// a hung syscall then hangs its caller, the pre-gray-failure
	// behaviour.
	OpDeadline time.Duration
	// SlowOpThreshold degrades the store (ReasonLatency) when the EWMA
	// of write/fsync latency crosses it — the disk that never errors
	// but answers 100x slower than it should. Nothing is poisoned;
	// Recover returns straight to Healthy with a reset baseline. 0
	// disables the latency signal.
	SlowOpThreshold time.Duration
}

func (o *Options) fill() {
	if o.Instances <= 0 {
		o.Instances = 2
	}
	if o.WriteBufferBytes <= 0 {
		o.WriteBufferBytes = 64 << 20
	}
	if o.ReadBatchRatio == 0 {
		o.ReadBatchRatio = 0.02
	}
	if o.ReadBatchRatio < 0 { // explicit "disable prediction"
		o.ReadBatchRatio = 0
	}
	if o.MaxSpaceAmplification <= 0 {
		o.MaxSpaceAmplification = 1.5
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	if o.Parallelism > o.Instances {
		o.Parallelism = o.Instances
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
	if o.ReadRetries <= 0 {
		o.ReadRetries = 3
	}
	if o.ReadRetryBackoff <= 0 {
		o.ReadRetryBackoff = time.Millisecond
	}
	if o.MaxDeltaChain == 0 {
		o.MaxDeltaChain = 16
	}
}

// KeyValues re-exports the AAR group type for consumers of GetWindow.
type KeyValues = aar.KeyValues

// Store is the composite FlowKV store for one physical window operator:
// a pattern chosen at launch plus m concurrent store instances. Only the
// methods matching the pattern may be called; others return
// ErrWrongPattern.
//
// A Store is safe for concurrent use: per-key operations go straight to
// the owning instance (each instance carries its own locks), and
// cross-instance operations — GetWindow drains, Flush, Sync, Checkpoint —
// fan across instances with at most Options.Parallelism worker
// goroutines.
type Store struct {
	pattern Pattern
	opts    Options

	aars []*aar.Store
	aurs []*aur.Store
	rmws []*rmw.Store

	// mu guards the drain registry below.
	mu     sync.Mutex
	drains map[window.Window]*windowDrain

	// health is the failure-handling state machine (see health.go);
	// herr retains the first error that left Healthy and healthReason
	// its typed classification (error / stall / latency).
	health       atomic.Int32
	healthReason atomic.Int32
	herrMu       sync.Mutex
	herr         error

	// healthSubs are the NotifyHealth subscribers, invoked on every
	// health transition; lastNotified dedups repeats of the same state
	// (a healer retrying Recover must not spam Failed), re-armed by the
	// next actual state change.
	subsMu       sync.Mutex
	healthSubs   []func(Health, HealthReason, error)
	lastNotified atomic.Int32

	// mon observes per-op latency at the logfile descriptors (see
	// latency.go): write/read/sync histograms for Stats, plus the EWMA
	// that drives the ReasonLatency degrade.
	mon *latencyMonitor

	// retryCaps holds each instance's escalated read-retry starting
	// backoff in nanoseconds (0 = Options.ReadRetryBackoff). An instance
	// that needed retries to answer keeps a raised cap so later reads
	// back off from where the episode left them; Recover resets every
	// cap — recovered media must not inherit Degraded-era pessimism.
	retryCaps []atomic.Int64

	// inflightParents refcounts the parent checkpoints that concurrent
	// CheckpointDelta calls are currently hard-linking against, keyed by
	// cleaned path. Retention GC never removes a registered directory:
	// without the guard, one chain's post-commit GC could unlink the
	// segments another chain's in-flight delta resolved moments earlier.
	gcMu            sync.Mutex
	inflightParents map[string]int

	writeErrs   metrics.Counter
	readErrs    metrics.Counter
	readRetries metrics.Counter
	recoveries  metrics.Counter
	healthGauge metrics.Gauge
	stalls      metrics.Counter

	// Incremental-checkpoint byte accounting: bytes carried into
	// committed delta checkpoints by hard link vs physically rewritten
	// (new segments, copy fallbacks, and per-checkpoint snapshots).
	ckptLinkedBytes metrics.Counter
	ckptCopiedBytes metrics.Counter

	// Scrub accounting (see scrub.go): files/bytes verified clean,
	// corrupt targets found, live-log tails healed in place, and
	// checkpoint directories under quarantine.
	scrubFiles       metrics.Counter
	scrubBytes       metrics.Counter
	scrubCorrupt     metrics.Counter
	scrubHealed      metrics.Counter
	scrubQuarantined metrics.Counter
}

// windowDrain is an in-progress parallel GetWindow drain of one window:
// worker goroutines pull whole instances (each instance is drained by
// exactly one worker, preserving its partition order) and feed the parts
// channel, which successive GetWindow calls pop.
type windowDrain struct {
	parts      chan []KeyValues
	cancel     chan struct{}
	cancelOnce sync.Once
	done       chan struct{} // closed once all workers exited and parts is closed

	mu  sync.Mutex
	err error
}

func (d *windowDrain) stop() {
	d.cancelOnce.Do(func() { close(d.cancel) })
}

func (d *windowDrain) fail(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	}
	d.mu.Unlock()
	d.stop()
}

// Open classifies the operation and deploys the composite store.
func Open(agg AggKind, wk window.Kind, opts Options) (*Store, error) {
	return OpenPattern(Classify(agg, wk), wk, opts)
}

// OpenPattern deploys a composite store with an explicitly chosen
// pattern, e.g. from a user annotation on a custom window (§8).
func OpenPattern(p Pattern, wk window.Kind, opts Options) (*Store, error) {
	opts.fill()
	s := &Store{
		pattern:   p,
		opts:      opts,
		drains:    make(map[window.Window]*windowDrain),
		retryCaps: make([]atomic.Int64, opts.Instances),
	}
	perInstanceBuf := opts.WriteBufferBytes / int64(opts.Instances)
	pred := opts.Predictor
	if pred == nil && opts.Assigner != nil {
		pred = window.PredictorFor(wk, opts.Assigner)
	}
	// Every instance's logs share one I/O policy: the deadline sentinel
	// plus the latency monitor feeding the store's histograms and the
	// EWMA degrade signal.
	s.mon = newLatencyMonitor(s, opts.SlowOpThreshold)
	policy := &logfile.Policy{Deadline: opts.OpDeadline, Monitor: s.mon}
	for i := 0; i < opts.Instances; i++ {
		dir := filepath.Join(opts.Dir, fmt.Sprintf("inst-%02d", i))
		switch p {
		case PatternAAR:
			st, err := aar.Open(aar.Options{
				Dir:                dir,
				WriteBufferBytes:   perInstanceBuf,
				LoadPartitionBytes: opts.LoadPartitionBytes,
				FineGrained:        opts.FineGrainedAAR,
				FS:                 opts.FS,
				Breakdown:          opts.Breakdown,
				Policy:             policy,
			})
			if err != nil {
				s.Close()
				return nil, err
			}
			s.aars = append(s.aars, st)
		case PatternAUR:
			st, err := aur.Open(aur.Options{
				Dir:                    dir,
				WriteBufferBytes:       perInstanceBuf,
				ReadBatchRatio:         opts.ReadBatchRatio,
				MinBatchWindows:        opts.AURMinBatchWindows,
				MaxSpaceAmplification:  opts.MaxSpaceAmplification,
				Predictor:              pred,
				SeparateCompactionScan: opts.SeparateCompactionScan,
				FS:                     opts.FS,
				Breakdown:              opts.Breakdown,
				Policy:                 policy,
			})
			if err != nil {
				s.Close()
				return nil, err
			}
			s.aurs = append(s.aurs, st)
		case PatternRMW:
			st, err := rmw.Open(rmw.Options{
				Dir:                   dir,
				WriteBufferBytes:      perInstanceBuf,
				MaxSpaceAmplification: opts.MaxSpaceAmplification,
				FS:                    opts.FS,
				Breakdown:             opts.Breakdown,
				Policy:                policy,
			})
			if err != nil {
				s.Close()
				return nil, err
			}
			s.rmws = append(s.rmws, st)
		default:
			return nil, fmt.Errorf("flowkv: unknown pattern %v", p)
		}
	}
	return s, nil
}

// Pattern returns the store pattern chosen at launch.
func (s *Store) Pattern() Pattern { return s.pattern }

// Instances returns m, the number of store instances deployed.
func (s *Store) Instances() int { return s.opts.Instances }

// route picks the instance owning key. The hash is deterministic (not
// per-process seeded) so that a store restored from a checkpoint routes
// keys to the instances that hold their state.
func (s *Store) route(key []byte) int {
	if s.opts.Instances == 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write(key)
	return int(h.Sum64() % uint64(s.opts.Instances))
}

// Append adds a KV tuple to window w. For AUR stores ts feeds the ETT
// estimate; AAR stores ignore it. RMW stores do not support Append.
func (s *Store) Append(key, value []byte, w window.Window, ts int64) error {
	if err := s.guardWrite(); err != nil {
		return err
	}
	switch s.pattern {
	case PatternAAR:
		return s.writeDone(s.aars[s.route(key)].Append(key, value, w))
	case PatternAUR:
		return s.writeDone(s.aurs[s.route(key)].Append(key, value, w, ts))
	default:
		return ErrWrongPattern
	}
}

// GetWindow returns the next partition of window w's state, or nil when
// the window is exhausted everywhere (AAR only). The first call starts a
// drain that fans the m instances across Options.Parallelism worker
// goroutines; each instance is drained by exactly one worker, so the
// gradual-loading bound (one partition's bytes in memory per instance
// being read, §4.1) scales by at most the parallelism. Partitions from
// different instances interleave in arrival order. Concurrent callers may
// pop partitions of the same window; each partition is delivered once.
func (s *Store) GetWindow(w window.Window) ([]KeyValues, error) {
	if s.pattern != PatternAAR {
		return nil, ErrWrongPattern
	}
	if err := s.guardRead(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	d := s.drains[w]
	if d == nil {
		d = s.startDrain(w)
		s.drains[w] = d
	}
	s.mu.Unlock()

	if part, ok := <-d.parts; ok {
		return part, nil
	}
	// parts closed: the drain finished (exhausted or failed).
	<-d.done
	d.mu.Lock()
	err := d.err
	d.mu.Unlock()
	s.mu.Lock()
	if s.drains[w] == d {
		delete(s.drains, w)
	}
	s.mu.Unlock()
	return nil, err
}

// startDrain launches the worker goroutines draining window w. Caller
// holds s.mu.
func (s *Store) startDrain(w window.Window) *windowDrain {
	workers := s.opts.Parallelism
	if workers > len(s.aars) {
		workers = len(s.aars)
	}
	d := &windowDrain{
		parts:  make(chan []KeyValues, workers),
		cancel: make(chan struct{}),
		done:   make(chan struct{}),
	}
	var next int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(s.aars) {
					return
				}
				for {
					select {
					case <-d.cancel:
						return
					default:
					}
					var part []KeyValues
					err := s.readRetry(i, func() error {
						var rerr error
						part, rerr = s.aars[i].GetWindow(w)
						return rerr
					})
					if err != nil {
						d.fail(err)
						return
					}
					if part == nil {
						break // instance i exhausted; pull the next one
					}
					select {
					case d.parts <- part:
					case <-d.cancel:
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(d.parts)
		close(d.done)
	}()
	return d
}

// stopDrain detaches and cancels window w's drain, if any, and waits for
// its workers to exit.
func (s *Store) stopDrain(w window.Window) {
	s.mu.Lock()
	d := s.drains[w]
	delete(s.drains, w)
	s.mu.Unlock()
	if d == nil {
		return
	}
	d.stop()
	// Discard buffered parts so no worker stays blocked on a full
	// channel (workers also select on cancel, so this is belt and
	// braces for parts already in flight).
	for range d.parts {
	}
	<-d.done
}

// stopAllDrains cancels every in-progress drain (Close/Destroy path).
func (s *Store) stopAllDrains() {
	s.mu.Lock()
	ds := make([]*windowDrain, 0, len(s.drains))
	for _, d := range s.drains {
		ds = append(ds, d)
	}
	s.drains = make(map[window.Window]*windowDrain)
	s.mu.Unlock()
	for _, d := range ds {
		d.stop()
		for range d.parts {
		}
		<-d.done
	}
}

// Get fetches and removes the appended values of (key, w) (AUR only).
// Transient read I/O errors are retried with backoff (Options.ReadRetries).
func (s *Store) Get(key []byte, w window.Window) ([][]byte, error) {
	if s.pattern != PatternAUR {
		return nil, ErrWrongPattern
	}
	if err := s.guardRead(); err != nil {
		return nil, err
	}
	var vals [][]byte
	inst := s.route(key)
	err := s.readRetry(inst, func() error {
		var rerr error
		vals, rerr = s.aurs[inst].Get(key, w)
		return rerr
	})
	return vals, err
}

// Read returns the appended values of (key, w) without consuming them
// (AUR only) — the probe primitive for interval joins (§8).
func (s *Store) Read(key []byte, w window.Window) ([][]byte, error) {
	if s.pattern != PatternAUR {
		return nil, ErrWrongPattern
	}
	if err := s.guardRead(); err != nil {
		return nil, err
	}
	var vals [][]byte
	inst := s.route(key)
	err := s.readRetry(inst, func() error {
		var rerr error
		vals, rerr = s.aurs[inst].Read(key, w)
		return rerr
	})
	return vals, err
}

// GetAggregate fetches and removes the aggregate of (key, w) (RMW only).
func (s *Store) GetAggregate(key []byte, w window.Window) ([]byte, bool, error) {
	if s.pattern != PatternRMW {
		return nil, false, ErrWrongPattern
	}
	if err := s.guardRead(); err != nil {
		return nil, false, err
	}
	var (
		agg []byte
		ok  bool
	)
	inst := s.route(key)
	err := s.readRetry(inst, func() error {
		var rerr error
		agg, ok, rerr = s.rmws[inst].Get(key, w)
		return rerr
	})
	return agg, ok, err
}

// PutAggregate stores the updated aggregate of (key, w) (RMW only).
func (s *Store) PutAggregate(key []byte, w window.Window, agg []byte) error {
	if s.pattern != PatternRMW {
		return ErrWrongPattern
	}
	if err := s.guardWrite(); err != nil {
		return err
	}
	return s.writeDone(s.rmws[s.route(key)].Put(key, w, agg))
}

// DropWindow discards window w's state in every instance (AAR only). An
// in-progress GetWindow drain of w is cancelled first; concurrent
// GetWindow callers observe the window as exhausted.
func (s *Store) DropWindow(w window.Window) error {
	if s.pattern != PatternAAR {
		return ErrWrongPattern
	}
	if err := s.guardRead(); err != nil {
		return err
	}
	s.stopDrain(w)
	return s.eachInstance(func(i int) error {
		return s.aars[i].DropWindow(w)
	})
}

// Drop discards the state of (key, w) without reading it (AUR only).
func (s *Store) Drop(key []byte, w window.Window) error {
	if s.pattern != PatternAUR {
		return ErrWrongPattern
	}
	if err := s.guardRead(); err != nil {
		return err
	}
	return s.aurs[s.route(key)].Drop(key, w)
}

// eachInstance runs f(i) for every instance index, fanning across at
// most Options.Parallelism worker goroutines. It returns the first error
// observed; a worker that errors stops pulling further instances, but
// workers already running continue to completion.
func (s *Store) eachInstance(f func(i int) error) error {
	n := s.opts.Instances
	workers := s.opts.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next  int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := f(i); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Flush spills all instances' buffers to disk (checkpoint support, §8:
// in-memory data is flushed before a snapshot so on-disk files can be
// transferred asynchronously). Instances flush in parallel.
func (s *Store) Flush() error {
	if err := s.guardWrite(); err != nil {
		return err
	}
	return s.writeDone(s.eachInstance(func(i int) error {
		switch s.pattern {
		case PatternAAR:
			return s.aars[i].Flush()
		case PatternAUR:
			return s.aurs[i].Flush()
		default:
			return s.rmws[i].Flush()
		}
	}))
}

// Sync flushes all instances and fsyncs their logs, making every
// acknowledged write durable. The fan-out across instances runs in
// parallel on the Options.Parallelism pool (eachInstance), and within
// each instance the fsyncs use the split BeginSync/FinishSync protocol,
// so drains and later flushes overlap checkpoint-time syncs instead of
// queueing behind them.
func (s *Store) Sync() error {
	if err := s.guardWrite(); err != nil {
		return err
	}
	return s.writeDone(s.eachInstance(func(i int) error {
		switch s.pattern {
		case PatternAAR:
			return s.aars[i].Sync()
		case PatternAUR:
			return s.aurs[i].Sync()
		default:
			return s.rmws[i].Sync()
		}
	}))
}

// Stats aggregates evaluation metrics across instances.
type Stats struct {
	// Pattern is the store pattern.
	Pattern Pattern
	// HitRatio is the AUR prefetch hit ratio (0 for other patterns).
	HitRatio float64
	// Hits and Misses are the AUR prefetch-buffer counters.
	Hits, Misses int64
	// Evictions counts AUR prefetch evictions from wrong ETTs.
	Evictions int64
	// Compactions counts compactions across instances.
	Compactions int64
	// BufferedBytes is the current total write-buffer occupancy.
	BufferedBytes int64
	// DiskBytes is the current total on-disk footprint.
	DiskBytes int64
	// LiveStates is the number of live (key, window) states (AUR/RMW).
	LiveStates int
	// Health is the failure-handling state (see health.go).
	Health Health
	// HealthReason classifies the departure from Healthy: error, stall,
	// or latency (ReasonNone while Healthy).
	HealthReason HealthReason
	// HealthErr describes the first error that left Healthy, "" if none.
	HealthErr string
	// WriteErrors counts write-path I/O failures (each degrades the store).
	WriteErrors int64
	// ReadErrors counts read failures that surfaced after retries.
	ReadErrors int64
	// ReadRetries counts transient read errors absorbed by retry.
	ReadRetries int64
	// Recoveries counts successful Recover calls.
	Recoveries int64
	// CkptLinkedBytes is the total bytes carried into committed
	// incremental checkpoints by hard link (not rewritten);
	// CkptCopiedBytes is the bytes physically written — new segment
	// tails, copy fallbacks, and per-checkpoint snapshot files. Their
	// ratio is the delta saving.
	CkptLinkedBytes int64
	CkptCopiedBytes int64
	// ScrubbedFiles and ScrubbedBytes total the data scrub sweeps have
	// verified clean; ScrubCorrupt counts targets found corrupt,
	// ScrubHealed counts live-log tails repaired in place, and
	// ScrubQuarantined counts checkpoint directories seen under
	// quarantine (cumulative across sweeps).
	ScrubbedFiles    int64
	ScrubbedBytes    int64
	ScrubCorrupt     int64
	ScrubHealed      int64
	ScrubQuarantined int64
	// Per-op I/O latency quantiles, measured at the logfile descriptors
	// (buffered-write flushes, positional reads, fsyncs) across every
	// instance since open.
	WriteP50, WriteP99 time.Duration
	ReadP50, ReadP99   time.Duration
	SyncP50, SyncP99   time.Duration
	// LatencyEWMA is the rolling write+fsync latency average that
	// drives the ReasonLatency degrade (0 until the first sample).
	LatencyEWMA time.Duration
	// Stalls counts operations abandoned at Options.OpDeadline.
	Stalls int64
}

// Stats returns the store's aggregated evaluation metrics.
func (s *Store) Stats() Stats {
	st := Stats{Pattern: s.pattern}
	st.Health = s.Health()
	st.HealthReason = s.HealthReason()
	if err := s.Err(); err != nil {
		st.HealthErr = err.Error()
	}
	st.Stalls = s.stalls.Load()
	if s.mon != nil {
		s.mon.fillStats(&st)
	}
	st.WriteErrors = s.writeErrs.Load()
	st.ReadErrors = s.readErrs.Load()
	st.ReadRetries = s.readRetries.Load()
	st.Recoveries = s.recoveries.Load()
	st.CkptLinkedBytes = s.ckptLinkedBytes.Load()
	st.CkptCopiedBytes = s.ckptCopiedBytes.Load()
	st.ScrubbedFiles = s.scrubFiles.Load()
	st.ScrubbedBytes = s.scrubBytes.Load()
	st.ScrubCorrupt = s.scrubCorrupt.Load()
	st.ScrubHealed = s.scrubHealed.Load()
	st.ScrubQuarantined = s.scrubQuarantined.Load()
	for _, a := range s.aars {
		st.BufferedBytes += a.BufferedBytes()
		if d, err := a.DiskUsage(); err == nil {
			st.DiskBytes += d
		}
	}
	for _, a := range s.aurs {
		h, m := a.HitCount()
		st.Hits += h
		st.Misses += m
		st.Evictions += a.Evictions()
		st.Compactions += a.Compactions()
		st.BufferedBytes += a.BufferedBytes()
		st.LiveStates += a.LiveStates()
		if d, err := a.DiskUsage(); err == nil {
			st.DiskBytes += d
		}
	}
	for _, r := range s.rmws {
		st.Compactions += r.Compactions()
		st.BufferedBytes += r.BufferedBytes()
		st.LiveStates += r.LiveStates()
		if d, err := r.DiskUsage(); err == nil {
			st.DiskBytes += d
		}
	}
	if st.Hits+st.Misses > 0 {
		st.HitRatio = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return st
}

// Close closes every instance, leaving state on disk. In-progress
// GetWindow drains are cancelled first.
func (s *Store) Close() error {
	s.stopAllDrains()
	var first error
	for _, st := range s.aars {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, st := range s.aurs {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, st := range s.rmws {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Destroy closes every instance and deletes all on-disk state.
func (s *Store) Destroy() error {
	s.stopAllDrains()
	var first error
	for _, st := range s.aars {
		if err := st.Destroy(); err != nil && first == nil {
			first = err
		}
	}
	for _, st := range s.aurs {
		if err := st.Destroy(); err != nil && first == nil {
			first = err
		}
	}
	for _, st := range s.rmws {
		if err := st.Destroy(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
