package core

import (
	"fmt"
	"path/filepath"
	"testing"

	"flowkv/internal/window"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		agg  AggKind
		wk   window.Kind
		want Pattern
	}{
		// §3.1: incremental aggregates are RMW regardless of windows.
		{AggIncremental, window.Fixed, PatternRMW},
		{AggIncremental, window.Sliding, PatternRMW},
		{AggIncremental, window.Session, PatternRMW},
		{AggIncremental, window.Global, PatternRMW},
		{AggIncremental, window.Count, PatternRMW},
		// Holistic + aligned windows are AAR.
		{AggHolistic, window.Fixed, PatternAAR},
		{AggHolistic, window.Sliding, PatternAAR},
		{AggHolistic, window.Global, PatternAAR},
		// Holistic + unaligned windows are AUR.
		{AggHolistic, window.Session, PatternAUR},
		{AggHolistic, window.Count, PatternAUR},
		// Unknown custom window functions conservatively map to AUR.
		{AggHolistic, window.Custom, PatternAUR},
	}
	for _, tc := range cases {
		if got := Classify(tc.agg, tc.wk); got != tc.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", tc.agg, tc.wk, got, tc.want)
		}
	}
}

func TestPatternStrings(t *testing.T) {
	if PatternAAR.String() != "AAR" || PatternAUR.String() != "AUR" || PatternRMW.String() != "RMW" {
		t.Error("pattern names")
	}
	if AggIncremental.String() != "incremental" || AggHolistic.String() != "holistic" {
		t.Error("agg names")
	}
}

func openStore(t *testing.T, agg AggKind, wk window.Kind, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "store")
	}
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Destroy() })
	return s
}

func TestAARCompositeRoundTrip(t *testing.T) {
	s := openStore(t, AggHolistic, window.Fixed, Options{Instances: 4})
	if s.Pattern() != PatternAAR || s.Instances() != 4 {
		t.Fatalf("pattern=%v m=%d", s.Pattern(), s.Instances())
	}
	w := window.Window{Start: 0, End: 100}
	const keys = 64
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Append(k, []byte("v"), w, 0); err != nil {
			t.Fatal(err)
		}
	}
	// GetWindow must drain all m instances.
	got := make(map[string]int)
	for {
		part, err := s.GetWindow(w)
		if err != nil {
			t.Fatal(err)
		}
		if part == nil {
			break
		}
		for _, kv := range part {
			got[string(kv.Key)] += len(kv.Values)
		}
	}
	if len(got) != keys {
		t.Fatalf("drained %d keys across instances, want %d", len(got), keys)
	}
	for k, n := range got {
		if n != 1 {
			t.Errorf("key %s: %d values", k, n)
		}
	}
}

func TestAURCompositeRoutesByKey(t *testing.T) {
	s := openStore(t, AggHolistic, window.Session,
		Options{Instances: 3, Assigner: window.SessionAssigner{Gap: 100}})
	if s.Pattern() != PatternAUR {
		t.Fatal("pattern")
	}
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := s.Append(k, []byte(fmt.Sprintf("v%d", i)), w, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		vals, err := s.Get(k, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != 1 || string(vals[0]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key-%d: %q", i, vals)
		}
	}
}

func TestRMWComposite(t *testing.T) {
	s := openStore(t, AggIncremental, window.Sliding, Options{Instances: 2})
	if s.Pattern() != PatternRMW {
		t.Fatal("pattern")
	}
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := s.PutAggregate(k, w, []byte(fmt.Sprintf("agg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		agg, ok, err := s.GetAggregate(k, w)
		if err != nil || !ok || string(agg) != fmt.Sprintf("agg-%d", i) {
			t.Fatalf("key-%d: %q,%v,%v", i, agg, ok, err)
		}
	}
}

func TestWrongPatternErrors(t *testing.T) {
	aarStore := openStore(t, AggHolistic, window.Fixed, Options{Instances: 1})
	if _, err := aarStore.Get(nil, window.Window{}); err != ErrWrongPattern {
		t.Errorf("AAR.Get: %v", err)
	}
	if _, _, err := aarStore.GetAggregate(nil, window.Window{}); err != ErrWrongPattern {
		t.Errorf("AAR.GetAggregate: %v", err)
	}
	if err := aarStore.PutAggregate(nil, window.Window{}, nil); err != ErrWrongPattern {
		t.Errorf("AAR.PutAggregate: %v", err)
	}
	if err := aarStore.Drop(nil, window.Window{}); err != ErrWrongPattern {
		t.Errorf("AAR.Drop: %v", err)
	}

	rmwStore := openStore(t, AggIncremental, window.Fixed, Options{Instances: 1})
	if err := rmwStore.Append(nil, nil, window.Window{}, 0); err != ErrWrongPattern {
		t.Errorf("RMW.Append: %v", err)
	}
	if _, err := rmwStore.GetWindow(window.Window{}); err != ErrWrongPattern {
		t.Errorf("RMW.GetWindow: %v", err)
	}
	if err := rmwStore.DropWindow(window.Window{}); err != ErrWrongPattern {
		t.Errorf("RMW.DropWindow: %v", err)
	}
}

func TestOpenPatternOverride(t *testing.T) {
	// §8: a user annotation can force a pattern for custom windows.
	s, err := OpenPattern(PatternAUR, window.Custom, Options{
		Dir:       filepath.Join(t.TempDir(), "s"),
		Instances: 1,
		Predictor: window.UserPredictor{Func: func(w window.Window, maxTS int64) (int64, bool) {
			return w.End, true
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	if s.Pattern() != PatternAUR {
		t.Fatal("pattern override ignored")
	}
	w := window.Window{Start: 0, End: 10}
	s.Append([]byte("k"), []byte("v"), w, 5)
	vals, err := s.Get([]byte("k"), w)
	if err != nil || len(vals) != 1 {
		t.Fatalf("%v %v", vals, err)
	}
}

func TestDropAcrossPatterns(t *testing.T) {
	aarStore := openStore(t, AggHolistic, window.Fixed, Options{Instances: 2})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 10; i++ {
		aarStore.Append([]byte(fmt.Sprintf("k%d", i)), []byte("v"), w, 0)
	}
	if err := aarStore.DropWindow(w); err != nil {
		t.Fatal(err)
	}
	if part, err := aarStore.GetWindow(w); err != nil || part != nil {
		t.Errorf("after DropWindow: %v %v", part, err)
	}

	aurStore := openStore(t, AggHolistic, window.Session,
		Options{Instances: 2, Assigner: window.SessionAssigner{Gap: 50}})
	aurStore.Append([]byte("k"), []byte("v"), w, 0)
	if err := aurStore.Drop([]byte("k"), w); err != nil {
		t.Fatal(err)
	}
	if vals, err := aurStore.Get([]byte("k"), w); err != nil || vals != nil {
		t.Errorf("after Drop: %v %v", vals, err)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := openStore(t, AggHolistic, window.Session, Options{
		Instances:        2,
		WriteBufferBytes: 512,
		Assigner:         window.SessionAssigner{Gap: 100},
	})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Append(k, make([]byte, 64), w, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Pattern != PatternAUR {
		t.Error("stats pattern")
	}
	if st.LiveStates != 200 {
		t.Errorf("LiveStates = %d", st.LiveStates)
	}
	if st.DiskBytes == 0 {
		t.Error("expected on-disk bytes after forced flushes")
	}
}

func TestFlushCheckpoint(t *testing.T) {
	for _, tc := range []struct {
		name string
		agg  AggKind
		wk   window.Kind
	}{
		{"aar", AggHolistic, window.Fixed},
		{"aur", AggHolistic, window.Session},
		{"rmw", AggIncremental, window.Fixed},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openStore(t, tc.agg, tc.wk, Options{Instances: 2})
			w := window.Window{Start: 0, End: 100}
			if tc.agg == AggIncremental {
				s.PutAggregate([]byte("k"), w, []byte("v"))
			} else {
				s.Append([]byte("k"), []byte("v"), w, 0)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
			if st := s.Stats(); st.BufferedBytes != 0 {
				t.Errorf("BufferedBytes = %d after Flush", st.BufferedBytes)
			}
		})
	}
}

func TestDefaultOptions(t *testing.T) {
	var o Options
	o.fill()
	if o.Instances != 2 {
		t.Errorf("default m = %d, want 2 (paper's configuration)", o.Instances)
	}
	if o.ReadBatchRatio != 0.02 {
		t.Errorf("default ratio = %f, want 0.02", o.ReadBatchRatio)
	}
	if o.MaxSpaceAmplification != 1.5 {
		t.Errorf("default MSA = %f, want 1.5", o.MaxSpaceAmplification)
	}
	neg := Options{ReadBatchRatio: -1}
	neg.fill()
	if neg.ReadBatchRatio != 0 {
		t.Errorf("negative ratio should mean disabled, got %f", neg.ReadBatchRatio)
	}
}
