package core

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// The randomized crash-recovery harness. Each iteration runs a seeded
// workload against a store whose filesystem is a faultfs.Injector, takes
// a known-good checkpoint, then arms a crash at a random upcoming
// mutating filesystem operation (optionally tearing the write) and keeps
// running — workload plus a second checkpoint — until the fault fires or
// the phase ends. The "machine" then reboots: the injector thaws, a
// fresh store opens over the real filesystem, and recovery restores the
// newest checkpoint that verifies. The restored state must match an
// in-memory oracle snapshotted at that checkpoint: no lost tuples, no
// duplicates, and windows consumed before the checkpoint stay consumed.

// cid identifies one (key, window) state in the oracle.
type cid struct {
	key string
	w   window.Window
}

// crashOracle mirrors store semantics in memory.
type crashOracle struct {
	pattern Pattern

	// AAR: per-window, per-key values in append order.
	aarLive     map[window.Window]map[string][]string
	aarConsumed map[window.Window]bool

	// AUR: per-state values in append order. RMW: latest aggregate.
	vals     map[cid][]string
	aggs     map[cid]string
	consumed map[cid]bool
	live     []cid // AUR states eligible for appends/consumes
}

func newCrashOracle(p Pattern) *crashOracle {
	return &crashOracle{
		pattern:     p,
		aarLive:     make(map[window.Window]map[string][]string),
		aarConsumed: make(map[window.Window]bool),
		vals:        make(map[cid][]string),
		aggs:        make(map[cid]string),
		consumed:    make(map[cid]bool),
	}
}

func (o *crashOracle) clone() *crashOracle {
	c := newCrashOracle(o.pattern)
	for w, keys := range o.aarLive {
		m := make(map[string][]string, len(keys))
		for k, vs := range keys {
			m[k] = append([]string(nil), vs...)
		}
		c.aarLive[w] = m
	}
	for w := range o.aarConsumed {
		c.aarConsumed[w] = true
	}
	for id, vs := range o.vals {
		c.vals[id] = append([]string(nil), vs...)
	}
	for id, a := range o.aggs {
		c.aggs[id] = a
	}
	for id := range o.consumed {
		c.consumed[id] = true
	}
	c.live = append([]cid(nil), o.live...)
	return c
}

// step applies one random operation to both the store and the oracle.
// Store errors are returned untouched: in phase B they are the simulated
// crash. The oracle may then be one half-applied op ahead of the store,
// which is fine — only oracle clones taken at checkpoints are verified.
func (o *crashOracle) step(rng *rand.Rand, s *Store, ctr *int) error {
	*ctr++
	switch o.pattern {
	case PatternAAR:
		return o.stepAAR(rng, s, *ctr)
	case PatternAUR:
		return o.stepAUR(rng, s, *ctr)
	default:
		return o.stepRMW(rng, s, *ctr)
	}
}

func (o *crashOracle) stepAAR(rng *rand.Rand, s *Store, ctr int) error {
	// Active windows advance with the op counter so drained windows
	// eventually fall out of use, like event time moving forward.
	base := int64(ctr / 50)
	if len(o.aarLive) > 0 && rng.Intn(100) < 8 {
		// Full drain of one live window (fetch & remove at trigger).
		var ws []window.Window
		for w := range o.aarLive {
			ws = append(ws, w)
		}
		w := ws[rng.Intn(len(ws))]
		for {
			part, err := s.GetWindow(w)
			if err != nil {
				return err
			}
			if part == nil {
				break
			}
		}
		delete(o.aarLive, w)
		o.aarConsumed[w] = true
		return nil
	}
	w := window.Window{Start: 100 * (base + int64(rng.Intn(2))), End: 0}
	w.End = w.Start + 100
	key := fmt.Sprintf("k%d", rng.Intn(6))
	val := fmt.Sprintf("v%05d", ctr)
	if err := s.Append([]byte(key), []byte(val), w, w.Start); err != nil {
		return err
	}
	if o.aarLive[w] == nil {
		o.aarLive[w] = make(map[string][]string)
		delete(o.aarConsumed, w) // event time may refill a drained window
	}
	o.aarLive[w][key] = append(o.aarLive[w][key], val)
	return nil
}

func (o *crashOracle) stepAUR(rng *rand.Rand, s *Store, ctr int) error {
	if len(o.live) == 0 || rng.Intn(100) < 70 {
		var c cid
		if len(o.live) > 0 && rng.Intn(2) == 0 {
			c = o.live[rng.Intn(len(o.live))]
		} else {
			c = cid{
				key: fmt.Sprintf("s%04d", ctr),
				w:   window.Window{Start: int64(ctr * 10), End: int64(ctr*10 + 100)},
			}
		}
		val := fmt.Sprintf("v%05d", ctr)
		ts := c.w.Start + int64(rng.Intn(50))
		if err := s.Append([]byte(c.key), []byte(val), c.w, ts); err != nil {
			return err
		}
		if _, ok := o.vals[c]; !ok {
			o.live = append(o.live, c)
		}
		o.vals[c] = append(o.vals[c], val)
		return nil
	}
	i := rng.Intn(len(o.live))
	c := o.live[i]
	if _, err := s.Get([]byte(c.key), c.w); err != nil {
		return err
	}
	delete(o.vals, c)
	o.consumed[c] = true
	o.live[i] = o.live[len(o.live)-1]
	o.live = o.live[:len(o.live)-1]
	return nil
}

func (o *crashOracle) stepRMW(rng *rand.Rand, s *Store, ctr int) error {
	c := cid{
		key: fmt.Sprintf("r%03d", rng.Intn(60)),
		w:   window.Window{Start: 100 * int64(rng.Intn(2)), End: 0},
	}
	c.w.End = c.w.Start + 100
	if rng.Intn(100) < 70 {
		val := fmt.Sprintf("a%05d", ctr)
		if err := s.PutAggregate([]byte(c.key), c.w, []byte(val)); err != nil {
			return err
		}
		o.aggs[c] = val
		delete(o.consumed, c)
		return nil
	}
	if _, _, err := s.GetAggregate([]byte(c.key), c.w); err != nil {
		return err
	}
	if _, ok := o.aggs[c]; ok {
		delete(o.aggs, c)
		o.consumed[c] = true
	}
	return nil
}

// verify drains the restored store and compares it against an oracle
// snapshot: exact values in order for live state, and nothing at all for
// state consumed before the snapshot.
func (o *crashOracle) verify(t *testing.T, tag string, s *Store) {
	t.Helper()
	switch o.pattern {
	case PatternAAR:
		for w, want := range o.aarLive {
			got := map[string][]string{}
			for {
				part, err := s.GetWindow(w)
				if err != nil {
					t.Fatalf("%s: GetWindow %v: %v", tag, w, err)
				}
				if part == nil {
					break
				}
				for _, kv := range part {
					for _, v := range kv.Values {
						got[string(kv.Key)] = append(got[string(kv.Key)], string(v))
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s: window %v: %d keys, want %d", tag, w, len(got), len(want))
			}
			for k, vs := range want {
				if len(got[k]) != len(vs) {
					t.Fatalf("%s: window %v key %s: %d values, want %d", tag, w, k, len(got[k]), len(vs))
				}
				for i := range vs {
					if got[k][i] != vs[i] {
						t.Fatalf("%s: window %v key %s[%d] = %q, want %q", tag, w, k, i, got[k][i], vs[i])
					}
				}
			}
		}
		for w := range o.aarConsumed {
			if _, live := o.aarLive[w]; live {
				continue
			}
			part, err := s.GetWindow(w)
			if err != nil {
				t.Fatalf("%s: consumed window %v: %v", tag, w, err)
			}
			if part != nil {
				t.Fatalf("%s: consumed window %v resurrected", tag, w)
			}
		}
	case PatternAUR:
		for c, want := range o.vals {
			got, err := s.Get([]byte(c.key), c.w)
			if err != nil {
				t.Fatalf("%s: get %v: %v", tag, c, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: state %v: %d values, want %d", tag, c, len(got), len(want))
			}
			for i := range want {
				if string(got[i]) != want[i] {
					t.Fatalf("%s: state %v[%d] = %q, want %q", tag, c, i, got[i], want[i])
				}
			}
		}
		for c := range o.consumed {
			if _, live := o.vals[c]; live {
				continue
			}
			got, err := s.Get([]byte(c.key), c.w)
			if err != nil {
				t.Fatalf("%s: consumed state %v: %v", tag, c, err)
			}
			if got != nil {
				t.Fatalf("%s: consumed state %v resurrected: %q", tag, c, got)
			}
		}
	default:
		for c, want := range o.aggs {
			got, ok, err := s.GetAggregate([]byte(c.key), c.w)
			if err != nil {
				t.Fatalf("%s: get aggregate %v: %v", tag, c, err)
			}
			if !ok || string(got) != want {
				t.Fatalf("%s: aggregate %v = %q,%v, want %q", tag, c, got, ok, want)
			}
		}
		for c := range o.consumed {
			if _, live := o.aggs[c]; live {
				continue
			}
			_, ok, err := s.GetAggregate([]byte(c.key), c.w)
			if err != nil {
				t.Fatalf("%s: consumed aggregate %v: %v", tag, c, err)
			}
			if ok {
				t.Fatalf("%s: consumed aggregate %v resurrected", tag, c)
			}
		}
	}
}

func crashConfig(p Pattern) (AggKind, window.Kind, Options) {
	switch p {
	case PatternAAR:
		return AggHolistic, window.Fixed, Options{Instances: 2, WriteBufferBytes: 512}
	case PatternAUR:
		return AggHolistic, window.Session, Options{
			Instances:        2,
			WriteBufferBytes: 512,
			Assigner:         window.SessionAssigner{Gap: 100},
		}
	default:
		return AggIncremental, window.Fixed, Options{Instances: 2, WriteBufferBytes: 512}
	}
}

// runCrashIteration runs one seeded workload-crash-recover-verify cycle
// and reports whether the armed fault actually fired.
func runCrashIteration(t *testing.T, pattern Pattern, seed int64) (fired bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inj := faultfs.NewInjector(faultfs.OS)
	base := t.TempDir()
	agg, wk, opts := crashConfig(pattern)
	opts.FS = inj
	opts.Dir = filepath.Join(base, "store")
	st, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := newCrashOracle(pattern)
	ctr := 0

	// Phase A: fault-free workload, then a known-good checkpoint.
	for i := 0; i < 120; i++ {
		if err := o.step(rng, st, &ctr); err != nil {
			t.Fatalf("phase A op: %v", err)
		}
	}
	ckpt1 := filepath.Join(base, "ckpt1")
	if err := st.Checkpoint(ckpt1); err != nil {
		t.Fatalf("checkpoint 1: %v", err)
	}
	o1 := o.clone()

	// Phase B: crash at a random upcoming mutating fs op, possibly
	// tearing the write it lands on. The window is kept short enough
	// that the fault usually lands inside the workload or the second
	// checkpoint even for RMW, whose write buffering makes mutating fs
	// operations sparse; overshoots exercise the clean-commit path.
	rule := faultfs.Rule{AtOp: inj.Ops() + 1 + rng.Int63n(60), Crash: true}
	if rng.Intn(2) == 0 {
		rule.TornBytes = 1 + rng.Intn(48)
	}
	inj.SetRule(rule)
	var errB error
	for i := 0; i < 120 && errB == nil; i++ {
		errB = o.step(rng, st, &ctr)
	}
	ckpt2 := filepath.Join(base, "ckpt2")
	var o2 *crashOracle
	var ckpt2Err error
	if errB == nil {
		ckpt2Err = st.Checkpoint(ckpt2)
		o2 = o.clone()
	}
	fired = inj.Fired()
	if errB != nil && !fired {
		t.Fatalf("phase B failed without an injected fault: %v", errB)
	}
	_ = st.Close() // the crashed machine's close may itself fail
	inj.Reset()    // reboot: disk thaws with whatever bytes survived

	// Recovery: restore the newest checkpoint that verifies.
	restOpts := opts
	restOpts.FS = nil
	restOpts.Dir = filepath.Join(base, "restored")
	fresh, err := Open(agg, wk, restOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()

	if errB == nil && ckpt2Err == nil {
		if err := fresh.Restore(ckpt2); err != nil {
			t.Fatalf("restore committed ckpt2: %v", err)
		}
		o2.verify(t, "ckpt2", fresh)
		return fired
	}
	switch err := fresh.Restore(ckpt2); {
	case err == nil:
		// The crash hit after the commit rename: the snapshot is whole.
		if o2 == nil {
			t.Fatalf("ckpt2 restorable but checkpoint was never attempted")
		}
		o2.verify(t, "ckpt2-committed", fresh)
	case errors.Is(err, ErrCheckpointInvalid):
		// Rejected as it must be; fall back to the known-good snapshot.
		if err := fresh.Restore(ckpt1); err != nil {
			t.Fatalf("restore ckpt1 fallback: %v", err)
		}
		o1.verify(t, "ckpt1", fresh)
	default:
		t.Fatalf("restore ckpt2: error is not a checkpoint rejection: %v", err)
	}
	return fired
}

// TestCrashRecoveryRandomized is the acceptance harness: ≥200 seeded
// fault-injection iterations across the three store patterns.
func TestCrashRecoveryRandomized(t *testing.T) {
	const seedsPerPattern = 70
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			fired := 0
			for seed := int64(0); seed < seedsPerPattern; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					if runCrashIteration(t, p, seed) {
						fired++
					}
				})
			}
			t.Logf("%s: fault fired in %d/%d iterations", p, fired, seedsPerPattern)
			if fired < seedsPerPattern/4 {
				t.Errorf("%s: fault fired in only %d/%d iterations; harness has lost its teeth",
					p, fired, seedsPerPattern)
			}
		})
	}
}

// checkpointedStore builds a store with some state and a committed
// checkpoint, returning both paths for tamper tests.
func checkpointedStore(t *testing.T) (*Store, string) {
	t.Helper()
	opts := Options{Instances: 2, WriteBufferBytes: 512, Assigner: window.SessionAssigner{Gap: 100}}
	s := openStore(t, AggHolistic, window.Session, opts)
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("key-%02d", i)
		w := window.Window{Start: int64(i * 10), End: int64(i*10) + 100}
		if err := s.Append([]byte(k), []byte(fmt.Sprintf("%s/v", k)), w, int64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	return s, ckpt
}

func restoreInto(t *testing.T, ckpt string) error {
	t.Helper()
	opts := Options{Instances: 2, WriteBufferBytes: 512, Assigner: window.SessionAssigner{Gap: 100}}
	opts.Dir = filepath.Join(t.TempDir(), "restored")
	dst, err := Open(AggHolistic, window.Session, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Destroy() })
	return dst.Restore(ckpt)
}

// pickDataFile returns some non-MANIFEST file inside the checkpoint.
func pickDataFile(t *testing.T, ckpt string) string {
	t.Helper()
	var found string
	err := filepath.Walk(ckpt, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if found == "" && !info.IsDir() && info.Name() != manifestName && info.Size() > 0 {
			found = path
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no data file found in %s: %v", ckpt, err)
	}
	return found
}

func TestRestoreRejectsTruncatedFile(t *testing.T) {
	_, ckpt := checkpointedStore(t)
	f := pickDataFile(t, ckpt)
	info, err := os.Stat(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(f, info.Size()-1); err != nil {
		t.Fatal(err)
	}
	err = restoreInto(t, ckpt)
	if !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("restore of truncated checkpoint: %v, want ErrCheckpointInvalid", err)
	}
	var ce *CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CheckpointError", err)
	}
}

func TestRestoreRejectsBitFlip(t *testing.T) {
	_, ckpt := checkpointedStore(t)
	f := pickDataFile(t, ckpt)
	b, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(f, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := restoreInto(t, ckpt); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("restore of bit-flipped checkpoint: %v, want ErrCheckpointInvalid", err)
	}
}

func TestRestoreRejectsMissingManifest(t *testing.T) {
	_, ckpt := checkpointedStore(t)
	if err := os.Remove(filepath.Join(ckpt, manifestName)); err != nil {
		t.Fatal(err)
	}
	if err := restoreInto(t, ckpt); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("restore without MANIFEST: %v, want ErrCheckpointInvalid", err)
	}
}

func TestRestoreRejectsUnlistedFile(t *testing.T) {
	_, ckpt := checkpointedStore(t)
	if err := os.WriteFile(filepath.Join(ckpt, "stray.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := restoreInto(t, ckpt); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("restore with unlisted file: %v, want ErrCheckpointInvalid", err)
	}
}

func TestRestoreRejectsMissingCheckpoint(t *testing.T) {
	if err := restoreInto(t, filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("restore of missing dir: %v, want ErrCheckpointInvalid", err)
	}
}

// TestCheckpointFailureLeavesNoPartialState covers the satellite fix: a
// checkpoint that fails partway must neither leave its tmp directory
// behind nor disturb the previous committed checkpoint.
func TestCheckpointFailureLeavesNoPartialState(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	base := t.TempDir()
	opts := Options{
		Instances:        2,
		WriteBufferBytes: 512,
		Assigner:         window.SessionAssigner{Gap: 100},
		FS:               inj,
		Dir:              filepath.Join(base, "store"),
	}
	s, err := Open(AggHolistic, window.Session, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	o := newCrashOracle(PatternAUR)
	rng := rand.New(rand.NewSource(1))
	ctr := 0
	for i := 0; i < 60; i++ {
		if err := o.step(rng, s, &ctr); err != nil {
			t.Fatal(err)
		}
	}
	ckpt := filepath.Join(base, "ckpt")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	o1 := o.clone()

	for i := 0; i < 60; i++ {
		if err := o.step(rng, s, &ctr); err != nil {
			t.Fatal(err)
		}
	}
	// Fail the checkpoint while it is writing into the tmp directory
	// (no crash: the process lives on and must clean up).
	inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, PathContains: ".tmp"})
	if err := s.Checkpoint(ckpt); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("checkpoint with injected tmp-write failure: %v", err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("failed checkpoint left %s behind", ckpt+".tmp")
	}
	// The previous committed checkpoint still verifies and restores.
	restOpts := opts
	restOpts.FS = nil
	restOpts.Dir = filepath.Join(base, "restored")
	fresh, err := Open(AggHolistic, window.Session, restOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()
	if err := fresh.Restore(ckpt); err != nil {
		t.Fatalf("previous checkpoint no longer restores: %v", err)
	}
	o1.verify(t, "previous-ckpt", fresh)
}
