package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"flowkv/internal/binio"
	"flowkv/internal/ckpt"
	"flowkv/internal/faultfs"
)

// CheckpointDelta writes a checkpoint of the composite store into dir,
// incrementally against the checkpoint at parent: sealed bytes already
// persisted by the parent are hard-linked into the new directory (copy
// fallback when the filesystem refuses links) and only the bytes written
// since the parent's cut are re-persisted. parent is resolved
// fail-safe — a missing, corrupt, or foreign parent, a chain already at
// Options.MaxDeltaChain, or a per-file validity mismatch inside an
// instance all silently fall back to writing full data, never to a
// corrupt checkpoint. An empty parent writes a full (chain base)
// checkpoint in the segmented format.
//
// The crash-consistency protocol is CheckpointWithMeta's, unchanged:
// stage into "<dir>.tmp", move any previous checkpoint aside to
// "<dir>.old", atomically rename the staging directory onto dir, fsync
// the parent directory, then clear the old copy. The delta path adds
// group commit: instances write their files unsynced and report what
// needs durability; the store fsyncs them in one batched window (fanned
// across Options.Parallelism workers) before the manifest is written,
// so a barrier pays one sync wave instead of one fsync per file per
// instance. Options.DisableGroupCommit reverts to immediate per-file
// fsyncs for ablation. Hard-linked segments are already durable and are
// never re-synced.
//
// meta is the opaque application metadata, exactly as in
// CheckpointWithMeta. The resulting directory is physically
// self-contained: restoring it never reads the parent, which may be
// deleted freely (links keep shared inodes alive).
func (s *Store) CheckpointDelta(dir, parent string, meta []byte) error {
	if err := s.guardWrite(); err != nil {
		return err
	}
	fsys := s.opts.FS
	// Shield the parent from concurrent retention GC before resolving:
	// between resolveParent reading its manifest and the links landing,
	// another chain's post-commit GC must not unlink it.
	release := s.protectParent(parent)
	defer release()
	parentName, depth, parentMetas := s.resolveParent(dir, parent)
	if parentMetas == nil {
		parent = ""
	}
	tmp := dir + ".tmp"
	old := dir + ".old"
	if err := fsys.RemoveAll(tmp); err != nil {
		return fmt.Errorf("flowkv: checkpoint: clear stale tmp: %w", err)
	}
	if err := fsys.RemoveAll(old); err != nil {
		return fmt.Errorf("flowkv: checkpoint: clear stale old: %w", err)
	}
	if err := fsys.MkdirAll(tmp, 0o755); err != nil {
		return fmt.Errorf("flowkv: checkpoint: %w", err)
	}
	results, err := s.checkpointDeltaInto(tmp, parent, parentName, depth, parentMetas, meta)
	if err != nil {
		fsys.RemoveAll(tmp)
		// Same poisoning rule as the full path: a failed flush of the
		// live logs degrades the store; a failure confined to the
		// staging directory leaves it Healthy.
		if perr := s.poisoned(); perr != nil {
			s.degrade(perr)
		}
		return err
	}
	if err := fsys.Rename(dir, old); err != nil && !errors.Is(err, fs.ErrNotExist) {
		fsys.RemoveAll(tmp)
		return fmt.Errorf("flowkv: checkpoint: move previous aside: %w", err)
	}
	if err := fsys.Rename(tmp, dir); err != nil {
		fsys.RemoveAll(tmp)
		return fmt.Errorf("flowkv: checkpoint: commit: %w", err)
	}
	if err := fsys.SyncDir(filepath.Dir(dir)); err != nil {
		return fmt.Errorf("flowkv: checkpoint: sync parent: %w", err)
	}
	// The checkpoint is committed: run the instance commit hooks (RMW
	// retires the dirty marks it diffed — doing this before the rename
	// would lose deltas if the commit crashed) and account the bytes.
	for _, res := range results {
		if res.Commit != nil {
			res.Commit()
		}
		s.ckptLinkedBytes.Add(res.LinkedBytes)
		s.ckptCopiedBytes.Add(res.CopiedBytes)
	}
	if err := fsys.RemoveAll(old); err != nil {
		return fmt.Errorf("flowkv: checkpoint: clear previous: %w", err)
	}
	if k := s.opts.RetainCheckpoints; k > 0 {
		if err := gcCheckpoints(fsys, dir, k, s.protectedParents()); err != nil {
			return fmt.Errorf("flowkv: checkpoint: retention gc: %w", err)
		}
	}
	return nil
}

// protectParent registers path as an in-flight delta's hard-link source
// and returns the matching release. Refcounted: concurrent deltas may
// share a parent. An empty path registers nothing.
func (s *Store) protectParent(path string) func() {
	if path == "" {
		return func() {}
	}
	key := filepath.Clean(path)
	s.gcMu.Lock()
	if s.inflightParents == nil {
		s.inflightParents = make(map[string]int)
	}
	s.inflightParents[key]++
	s.gcMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.gcMu.Lock()
			if s.inflightParents[key]--; s.inflightParents[key] <= 0 {
				delete(s.inflightParents, key)
			}
			s.gcMu.Unlock()
		})
	}
}

// protectedParents snapshots the in-flight parent set for a GC pass.
func (s *Store) protectedParents() map[string]bool {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	if len(s.inflightParents) == 0 {
		return nil
	}
	out := make(map[string]bool, len(s.inflightParents))
	for k := range s.inflightParents {
		out[k] = true
	}
	return out
}

// resolveParent decides what the new checkpoint diffs against. It
// returns the parent name to record in the MANIFEST (empty when the
// checkpoint is a chain base, or when the parent is not a sibling
// directory and the reference cannot be expressed as one), the new
// checkpoint's chain depth, and each instance's decoded SEGMENTS meta
// (nil entries force a full copy for that instance; a nil slice means no
// parent at all). Every rejection is a silent fallback to full data — an
// unreadable parent must make the checkpoint bigger, never wrong.
//
// A non-sibling parent (the SPE commits generation N against a
// checkpoint of the same base name inside generation N-1's directory)
// still drives segment reuse and the depth-based rebase cadence, but is
// recorded as "" so the chain walk (display, GC refcounting) never
// resolves a name to the wrong directory — or, worse, to the checkpoint
// itself.
func (s *Store) resolveParent(dir, parent string) (string, int, []*ckpt.Meta) {
	if parent == "" || s.opts.MaxDeltaChain < 0 {
		return "", 0, nil
	}
	fsys := s.opts.FS
	m, err := readManifest(fsys, parent, s.pattern, s.opts.Instances)
	if err != nil {
		return "", 0, nil
	}
	depth := m.depth + 1
	if depth > s.opts.MaxDeltaChain {
		return "", 0, nil
	}
	metas := make([]*ckpt.Meta, s.opts.Instances)
	for i := range metas {
		// A read error or a legacy flat instance dir yields a nil meta:
		// that instance writes full data but the checkpoint still chains.
		if im, err := ckpt.ReadMeta(fsys, instDir(parent, i)); err == nil {
			metas[i] = im
		}
	}
	name := ""
	if filepath.Dir(parent) == filepath.Dir(dir) {
		name = filepath.Base(parent)
	}
	return name, depth, metas
}

// checkpointDeltaInto stages the delta snapshot: per-instance segment
// directories, the group-commit sync window, APPMETA, and the MANIFEST
// (entries precomputed from the instance results — the staging
// directory is never re-hashed, which would re-read every hard-linked
// segment and put the O(total-state) cost back into the commit).
func (s *Store) checkpointDeltaInto(tmp, parent, parentName string, depth int, parentMetas []*ckpt.Meta, meta []byte) ([]*ckpt.Result, error) {
	fsys := s.opts.FS
	results := make([]*ckpt.Result, s.opts.Instances)
	if err := s.eachInstance(func(i int) error {
		var pm *ckpt.Meta
		if parentMetas != nil {
			pm = parentMetas[i]
		}
		pdir := ""
		if parent != "" {
			pdir = instDir(parent, i)
		}
		var (
			res *ckpt.Result
			err error
		)
		switch s.pattern {
		case PatternAAR:
			res, err = s.aars[i].CheckpointDelta(instDir(tmp, i), pm, pdir)
		case PatternAUR:
			res, err = s.aurs[i].CheckpointDelta(instDir(tmp, i), pm, pdir)
		default:
			res, err = s.rmws[i].CheckpointDelta(instDir(tmp, i), pm, pdir)
		}
		if err != nil {
			return err
		}
		results[i] = res
		if s.opts.DisableGroupCommit {
			if err := syncFiles(fsys, res.NeedSync); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	if !s.opts.DisableGroupCommit {
		// Group commit: one batched sync window for every file all
		// instances wrote this barrier, fanned across the same worker
		// budget as the instance snapshots.
		var all []string
		for _, res := range results {
			all = append(all, res.NeedSync...)
		}
		if err := s.syncWindow(all); err != nil {
			return nil, err
		}
	}
	// Directory entries last: the files are durable, now make their
	// names durable too.
	if err := s.eachInstance(func(i int) error {
		return fsys.SyncDir(instDir(tmp, i))
	}); err != nil {
		return nil, fmt.Errorf("flowkv: checkpoint: sync instance dir: %w", err)
	}
	if meta != nil {
		if err := writeAppMeta(fsys, tmp, meta); err != nil {
			return nil, err
		}
	}
	var entries []manifestEntry
	for i, res := range results {
		prefix := fmt.Sprintf("inst-%02d", i)
		for _, e := range res.Entries {
			entries = append(entries, manifestEntry{
				path: path.Join(prefix, e.Path),
				size: e.Size,
				crc:  e.CRC,
			})
		}
	}
	if meta != nil {
		entries = append(entries, manifestEntry{
			path: appMetaName,
			size: int64(len(meta)),
			crc:  binio.Checksum(meta),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].path < entries[j].path })
	m := &manifest{
		pattern:   s.pattern,
		instances: s.opts.Instances,
		parent:    parentName,
		depth:     depth,
		entries:   entries,
	}
	if err := writeManifestEncoded(fsys, tmp, m); err != nil {
		return nil, err
	}
	return results, nil
}

// syncWindow fsyncs every path, fanning across Options.Parallelism
// workers. It is the group-commit window: called once per barrier with
// the union of every instance's unsynced files.
func (s *Store) syncWindow(paths []string) error {
	fsys := s.opts.FS
	workers := s.opts.Parallelism
	if workers > len(paths) {
		workers = len(paths)
	}
	if workers <= 1 {
		return syncFiles(fsys, paths)
	}
	var (
		next  int64
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(paths) {
					return
				}
				if err := syncFiles(fsys, paths[i:i+1]); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// syncFiles fsyncs each named file in order.
func syncFiles(fsys faultfs.FS, paths []string) error {
	for _, p := range paths {
		f, err := fsys.OpenFile(p, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("flowkv: checkpoint: sync %s: %w", p, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("flowkv: checkpoint: sync %s: %w", p, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("flowkv: checkpoint: sync %s: %w", p, err)
		}
	}
	return nil
}
