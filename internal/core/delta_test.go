package core

// The incremental-checkpoint battery. The contract under test: a chain
// of N delta checkpoints restores byte-identically to a full checkpoint
// taken at the same cut, every chain link is physically self-contained
// (ancestors may be deleted freely), retention GC never collects a
// generation a surviving checkpoint still references, link-refusing
// filesystems silently degrade to copies, and crashes pinned inside the
// delta machinery itself — mid-link, mid-group-commit, mid-parent-
// resolution — never lose a committed cut.

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flowkv/internal/ckpt"
	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// stateDump flattens a store into a canonical map via ForEachState
// (non-destructive), one entry per (key, window) carrying the exact
// value bytes in order, the RMW aggregate, and the AUR max event
// timestamp — so two dumps compare byte-identical state, not just
// equal-looking state.
func stateDump(t *testing.T, s *Store) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	err := s.ForEachState(func(e StateEntry) error {
		id := fmt.Sprintf("%s@[%d,%d)", e.Key, e.Window.Start, e.Window.End)
		var vals []string
		if e.HasAgg {
			vals = append(vals, "agg:"+string(e.Agg))
		}
		for _, v := range e.Values {
			vals = append(vals, string(v))
		}
		vals = append(vals, fmt.Sprintf("maxts:%d", e.MaxTS))
		if _, dup := out[id]; dup {
			return fmt.Errorf("duplicate state entry %s", id)
		}
		out[id] = vals
		return nil
	})
	if err != nil {
		t.Fatalf("state dump: %v", err)
	}
	return out
}

// restoreDelta opens a fresh store with the given shape over the real
// filesystem and restores the checkpoint into it.
func restoreDelta(t *testing.T, agg AggKind, wk window.Kind, opts Options, ck string) *Store {
	t.Helper()
	opts.FS = nil
	opts.Dir = filepath.Join(t.TempDir(), "restored")
	dst, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dst.Destroy() })
	if err := dst.Restore(ck); err != nil {
		t.Fatalf("restore %s: %v", ck, err)
	}
	return dst
}

// TestDeltaChainRestoreMatchesFull is the chain-restore property test:
// for a random workload, restoring the tip of an N-link incremental
// chain yields a ForEachState dump byte-identical to restoring a full
// checkpoint taken at the same cut — even after every ancestor directory
// has been deleted, since hard links make each link self-contained. Run
// with group commit on and off so both sync schedules are covered.
func TestDeltaChainRestoreMatchesFull(t *testing.T) {
	const links = 6
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		for _, mode := range []string{"group", "per-file-sync"} {
			p, mode := p, mode
			t.Run(fmt.Sprintf("%v/%s", p, mode), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(p)*31 + int64(len(mode))))
				agg, wk, opts := crashConfig(p)
				opts.DisableGroupCommit = mode == "per-file-sync"
				s := openStore(t, agg, wk, opts)
				o := newCrashOracle(p)
				ctr := 0
				base := t.TempDir()
				var chain []string
				parent := ""
				for n := 0; n <= links; n++ {
					for i := 0; i < 40; i++ {
						if err := o.step(rng, s, &ctr); err != nil {
							t.Fatalf("op: %v", err)
						}
					}
					ck := filepath.Join(base, fmt.Sprintf("gen-%02d", n))
					if err := s.CheckpointDelta(ck, parent, nil); err != nil {
						t.Fatalf("delta checkpoint %d: %v", n, err)
					}
					chain = append(chain, ck)
					parent = ck
				}
				// A full checkpoint at the exact same cut (no ops between).
				full := filepath.Join(base, "full")
				if err := s.CheckpointWithMeta(full, nil); err != nil {
					t.Fatal(err)
				}
				if st := s.Stats(); st.CkptLinkedBytes == 0 {
					t.Errorf("a %d-link chain hard-linked no bytes — every commit re-copied the store", links)
				}
				tip := chain[len(chain)-1]
				names, err := CheckpointChain(nil, tip)
				if err != nil {
					t.Fatalf("chain walk: %v", err)
				}
				if len(names) != links+1 {
					t.Fatalf("chain from tip = %v, want %d entries", names, links+1)
				}

				fromFull := restoreDelta(t, agg, wk, opts, full)
				want := stateDump(t, fromFull)
				// Delete every ancestor before restoring the tip: links keep
				// the shared inodes alive, so the tip must not notice.
				for _, ck := range chain[:len(chain)-1] {
					if err := os.RemoveAll(ck); err != nil {
						t.Fatal(err)
					}
				}
				fromChain := restoreDelta(t, agg, wk, opts, tip)
				got := stateDump(t, fromChain)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("chain restore diverges from full restore: %d entries vs %d", len(got), len(want))
				}
				// Both restored stores also satisfy the workload oracle
				// (exact values in order, consumed state stays consumed).
				o.verify(t, "chain-restore", fromChain)
				o.verify(t, "full-restore", fromFull)
			})
		}
	}
}

// TestDeltaCrashRecoveryRandomized is the delta leg of the crash
// battery: each iteration builds a two-link chain fault-free, then arms
// a crash pinned at a specific point of the *next* incremental commit —
// the first hard link, the group-commit sync window, the parent SEGMENTS
// resolution — or at a random mutating op, and after the reboot the
// newest checkpoint that verifies must restore exactly the oracle state
// at its cut. 25 seeds × 4 pins = 100 iterations per pattern.
func TestDeltaCrashRecoveryRandomized(t *testing.T) {
	const seedsPerPin = 25
	pins := []string{"mid-link", "mid-group-commit", "mid-parent-resolution", "random"}
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for _, pin := range pins {
				pin := pin
				t.Run(pin, func(t *testing.T) {
					fired := 0
					for seed := int64(0); seed < seedsPerPin; seed++ {
						seed := seed
						t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
							if runDeltaCrashIteration(t, p, seed, pin) {
								fired++
							}
						})
					}
					t.Logf("%s/%s: fault fired in %d/%d iterations", p, pin, fired, seedsPerPin)
					// The targeted pins hit deterministic machinery; only the
					// random pin may legitimately overshoot the workload.
					min := seedsPerPin / 2
					if pin == "random" {
						min = seedsPerPin / 4
					}
					if fired < min {
						t.Errorf("%s/%s: fault fired in only %d/%d iterations; pin has lost its teeth",
							p, pin, fired, seedsPerPin)
					}
				})
			}
		})
	}
}

func runDeltaCrashIteration(t *testing.T, pattern Pattern, seed int64, pin string) (fired bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed*4 + int64(len(pin))))
	inj := faultfs.NewInjector(faultfs.OS)
	base := t.TempDir()
	agg, wk, opts := crashConfig(pattern)
	opts.FS = inj
	opts.Dir = filepath.Join(base, "store")
	st, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := newCrashOracle(pattern)
	ctr := 0

	// Phase A: fault-free workload and a committed two-link chain, so the
	// upcoming crash lands on a commit that actually links, group-syncs,
	// and resolves a parent. One anchor state unit lives in a window far
	// outside the oracle's range: the AAR workload can churn through every
	// oracle window between two cuts, and the anchor guarantees each delta
	// commit still has a sealed segment to hard-link.
	aw := window.Window{Start: 1 << 30, End: 1<<30 + 100}
	if pattern == PatternRMW {
		err = st.PutAggregate([]byte("anchor"), aw, []byte("a"))
	} else {
		err = st.Append([]byte("anchor"), []byte("a"), aw, aw.Start)
	}
	if err != nil {
		t.Fatalf("anchor write: %v", err)
	}
	for i := 0; i < 120; i++ {
		if err := o.step(rng, st, &ctr); err != nil {
			t.Fatalf("phase A op: %v", err)
		}
	}
	ck1 := filepath.Join(base, "ck1")
	if err := st.CheckpointDelta(ck1, "", nil); err != nil {
		t.Fatalf("base checkpoint: %v", err)
	}
	for i := 0; i < 40; i++ {
		if err := o.step(rng, st, &ctr); err != nil {
			t.Fatalf("phase A op: %v", err)
		}
	}
	ck2 := filepath.Join(base, "ck2")
	if err := st.CheckpointDelta(ck2, ck1, nil); err != nil {
		t.Fatalf("delta checkpoint: %v", err)
	}
	o2 := o.clone()

	// Phase B: arm the pinned crash, keep working, attempt a third link.
	var rule faultfs.Rule
	switch pin {
	case "mid-link":
		// The first hard link of the next commit: the snapshot dies while
		// reusing the parent's sealed segments.
		rule = faultfs.Rule{Op: faultfs.OpLink, Crash: true}
	case "mid-group-commit":
		// The batched sync window over the staging directory: files are
		// written but their durability wave never completes.
		rule = faultfs.Rule{Op: faultfs.OpSync, PathContains: ".tmp", Crash: true}
	case "mid-parent-resolution":
		// Reading the parent's per-instance SEGMENTS meta: resolution must
		// fail toward a full copy, and the frozen disk then kills the
		// attempt — never yielding a half-resolved chain.
		rule = faultfs.Rule{Op: faultfs.OpRead, PathContains: ckpt.MetaName, Crash: true}
	default:
		rule = faultfs.Rule{AtOp: inj.Ops() + 1 + rng.Int63n(60), Crash: true}
		if rng.Intn(2) == 0 {
			rule.TornBytes = 1 + rng.Intn(48)
		}
	}
	inj.SetRule(rule)
	var errB error
	for i := 0; i < 60 && errB == nil; i++ {
		errB = o.step(rng, st, &ctr)
	}
	ck3 := filepath.Join(base, "ck3")
	var o3 *crashOracle
	var ck3Err error
	if errB == nil {
		ck3Err = st.CheckpointDelta(ck3, ck2, nil)
		o3 = o.clone()
	}
	fired = inj.Fired()
	if errB != nil && !fired {
		t.Fatalf("phase B failed without an injected fault: %v", errB)
	}
	_ = st.Close() // the crashed machine's close may itself fail
	inj.Reset()    // reboot: disk thaws with whatever bytes survived

	restOpts := opts
	restOpts.FS = nil
	restOpts.Dir = filepath.Join(base, "restored")
	fresh, err := Open(agg, wk, restOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()

	if errB == nil && ck3Err == nil {
		if err := fresh.Restore(ck3); err != nil {
			t.Fatalf("restore committed ck3: %v", err)
		}
		o3.verify(t, "ck3", fresh)
		return fired
	}
	switch err := fresh.Restore(ck3); {
	case err == nil:
		// The crash hit after the commit rename: the snapshot is whole.
		if o3 == nil {
			t.Fatalf("ck3 restorable but checkpoint was never attempted")
		}
		o3.verify(t, "ck3-committed", fresh)
	case errors.Is(err, ErrCheckpointInvalid):
		// Rejected as it must be; the previously committed link of the
		// chain is untouched by the failed attempt.
		if err := fresh.Restore(ck2); err != nil {
			t.Fatalf("restore ck2 fallback: %v", err)
		}
		o2.verify(t, "ck2", fresh)
	default:
		t.Fatalf("restore ck3: error is not a checkpoint rejection: %v", err)
	}
	return fired
}

// TestDeltaRetentionKeepsChainsRestorable drives aggressive retention
// (keep 2) against rebasing chains (max depth 3) and asserts the
// refcount invariant after every commit: no surviving checkpoint ever
// references a collected ancestor, every survivor still verifies, and
// GC does eventually collect whole unreachable chains.
func TestDeltaRetentionKeepsChainsRestorable(t *testing.T) {
	agg, wk, opts := crashConfig(PatternAUR)
	opts.RetainCheckpoints = 2
	opts.MaxDeltaChain = 3
	s := openStore(t, agg, wk, opts)
	rng := rand.New(rand.NewSource(7))
	o := newCrashOracle(PatternAUR)
	ctr := 0
	ckRoot := t.TempDir()
	parent := ""
	const rounds = 12
	var collected bool
	for n := 1; n <= rounds; n++ {
		for i := 0; i < 30; i++ {
			if err := o.step(rng, s, &ctr); err != nil {
				t.Fatalf("round %d op: %v", n, err)
			}
		}
		ck := filepath.Join(ckRoot, fmt.Sprintf("gen-%02d", n))
		if err := s.CheckpointDelta(ck, parent, nil); err != nil {
			t.Fatalf("round %d checkpoint: %v", n, err)
		}
		parent = ck
		infos, err := ListCheckpoints(nil, ckRoot)
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) < n {
			collected = true
		}
		byName := make(map[string]bool, len(infos))
		for _, ci := range infos {
			byName[filepath.Base(ci.Path)] = true
		}
		for _, ci := range infos {
			if ci.Err != nil {
				t.Fatalf("after round %d: %s failed verification: %v", n, ci.Path, ci.Err)
			}
			if ci.Parent != "" && !byName[ci.Parent] {
				t.Fatalf("after round %d: %s still references collected parent %s",
					n, filepath.Base(ci.Path), ci.Parent)
			}
			if _, cerr := CheckpointChain(nil, ci.Path); cerr != nil {
				t.Fatalf("after round %d: chain walk of %s: %v", n, ci.Path, cerr)
			}
		}
	}
	if !collected {
		t.Errorf("retention (keep %d) never collected anything across %d rounds",
			opts.RetainCheckpoints, rounds)
	}

	// Externally deleting the tip's chain base (harsher than the store's
	// own GC ever is) must not break the tip: directories are physically
	// self-contained, the chain walk merely truncates.
	names, err := CheckpointChain(nil, parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) > 1 {
		if err := os.RemoveAll(filepath.Join(ckRoot, names[len(names)-1])); err != nil {
			t.Fatal(err)
		}
		truncated, err := CheckpointChain(nil, parent)
		if err != nil {
			t.Fatalf("chain walk after ancestor deletion: %v", err)
		}
		if len(truncated) >= len(names) {
			t.Fatalf("chain did not truncate: %v then %v", names, truncated)
		}
	}
	if _, _, err := VerifyCheckpointDir(nil, parent); err != nil {
		t.Fatalf("tip no longer verifies after ancestor deletion: %v", err)
	}
	fresh := restoreDelta(t, agg, wk, opts, parent)
	o.verify(t, "post-gc", fresh)
}

// nolinkFS refuses hard links, like filesystems without link support or
// checkpoint targets on another device; everything else passes through.
type nolinkFS struct{ faultfs.FS }

func (nolinkFS) Link(oldpath, newpath string) error {
	return errors.New("nolink: hard links not supported")
}

// TestDeltaNoHardlinkFSCopyFallback proves the copy fallback end to end:
// on a filesystem that refuses every link, a chain of delta checkpoints
// still commits, links nothing, copies everything — and the tip is an
// independently restorable checkpoint whose state is byte-identical to a
// full checkpoint at the same cut.
func TestDeltaNoHardlinkFSCopyFallback(t *testing.T) {
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(p) + 99))
			agg, wk, opts := crashConfig(p)
			opts.FS = nolinkFS{faultfs.OS}
			s := openStore(t, agg, wk, opts)
			o := newCrashOracle(p)
			ctr := 0
			base := t.TempDir()
			parent := ""
			var chain []string
			for n := 0; n < 3; n++ {
				for i := 0; i < 40; i++ {
					if err := o.step(rng, s, &ctr); err != nil {
						t.Fatalf("op: %v", err)
					}
				}
				ck := filepath.Join(base, fmt.Sprintf("gen-%02d", n))
				if err := s.CheckpointDelta(ck, parent, nil); err != nil {
					t.Fatalf("delta checkpoint on linkless fs: %v", err)
				}
				chain = append(chain, ck)
				parent = ck
			}
			full := filepath.Join(base, "full")
			if err := s.CheckpointWithMeta(full, nil); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.CkptLinkedBytes != 0 {
				t.Errorf("linked %d bytes through a filesystem that refuses links", st.CkptLinkedBytes)
			}
			if st.CkptCopiedBytes == 0 {
				t.Errorf("copy fallback copied nothing")
			}
			fromFull := restoreDelta(t, agg, wk, opts, full)
			want := stateDump(t, fromFull)
			for _, ck := range chain[:len(chain)-1] {
				if err := os.RemoveAll(ck); err != nil {
					t.Fatal(err)
				}
			}
			tip := chain[len(chain)-1]
			if _, _, err := VerifyCheckpointDir(nil, tip); err != nil {
				t.Fatalf("copied tip fails verification: %v", err)
			}
			fromChain := restoreDelta(t, agg, wk, opts, tip)
			if got := stateDump(t, fromChain); !reflect.DeepEqual(got, want) {
				t.Fatalf("copied-chain restore diverges from full restore: %d entries vs %d", len(got), len(want))
			}
			o.verify(t, "nolink-chain", fromChain)
		})
	}
}

// TestDeltaEmptyInstanceThenGrow is the zero-length-segment regression:
// a parent checkpoint of an instance whose logs are still empty must not
// record a zero-length segment, or the child would both link it and
// write its own first segment at the same offset under the same name —
// the link-truncating collision that corrupts the child's MANIFEST. One
// key routes state to a single instance, leaving the rest empty at the
// base; the chain then grows into them.
func TestDeltaEmptyInstanceThenGrow(t *testing.T) {
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			agg, wk, opts := crashConfig(p)
			opts.Instances = 4
			s := openStore(t, agg, wk, opts)
			w := window.Window{Start: 0, End: 100}
			put := func(i int) {
				t.Helper()
				key := []byte(fmt.Sprintf("key-%03d", i))
				val := []byte(fmt.Sprintf("val-%03d", i))
				var err error
				if p == PatternRMW {
					err = s.PutAggregate(key, w, val)
				} else {
					err = s.Append(key, val, w, w.Start)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			put(0)
			base := t.TempDir()
			ck1 := filepath.Join(base, "gen-01")
			if err := s.CheckpointDelta(ck1, "", nil); err != nil {
				t.Fatalf("base over mostly-empty instances: %v", err)
			}
			for i := 0; i < 60; i++ {
				put(i)
			}
			ck2 := filepath.Join(base, "gen-02")
			if err := s.CheckpointDelta(ck2, ck1, nil); err != nil {
				t.Fatalf("delta growing into empty instances: %v", err)
			}
			if _, _, err := VerifyCheckpointDir(nil, ck2); err != nil {
				t.Fatalf("child checkpoint fails verification: %v", err)
			}
			fresh := restoreDelta(t, agg, wk, opts, ck2)
			dump := stateDump(t, fresh)
			if len(dump) == 0 {
				t.Fatal("restored store is empty")
			}
			for i := 0; i < 60; i++ {
				id := fmt.Sprintf("key-%03d@[%d,%d)", i, w.Start, w.End)
				if _, ok := dump[id]; !ok {
					t.Fatalf("restored store lost %s", id)
				}
			}
		})
	}
}
