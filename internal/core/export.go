package core

import (
	"fmt"
	"path/filepath"

	"flowkv/internal/faultfs"
)

// Checkpoint export: the file-level transfer primitive behind the SPE's
// live key-range migration. A committed checkpoint directory is immutable
// and self-contained, so "shipping" it to another worker's staging area
// is a manifest walk: every file the MANIFEST names is hard-linked into
// the destination (copy fallback when the filesystem refuses links, e.g.
// across devices), copies are fsynced, and the MANIFEST itself is written
// last — its presence marks the clone complete, and the clone then passes
// VerifyCheckpointDir exactly like the original. Sealed segments dominate
// a checkpoint's bytes and always arrive as links, so the transfer cost
// tracks the file count, not the state size.

// CloneResult reports what a CloneCheckpointDir moved.
type CloneResult struct {
	// LinkedBytes is the manifest-recorded size of files that arrived as
	// hard links (no bytes copied, already durable).
	LinkedBytes int64
	// CopiedBytes is the size of files the filesystem refused to link.
	CopiedBytes int64
	// Files is the number of manifest entries cloned (MANIFEST excluded).
	Files int
}

// CloneCheckpointDir clones the checkpoint at src into dst through its
// MANIFEST: link-or-copy each listed file, fsync the copies, then write
// the manifest. Any existing dst is removed first. The source is not
// verified here — callers verify the staged clone (VerifyCheckpointDir),
// which checks the same CRCs and doubles as a destination-media probe.
// A nil fsys uses the real filesystem.
func CloneCheckpointDir(fsys faultfs.FS, src, dst string) (CloneResult, error) {
	var res CloneResult
	if fsys == nil {
		fsys = faultfs.OS
	}
	mb, err := fsys.ReadFile(filepath.Join(src, manifestName))
	if err != nil {
		return res, &CheckpointError{Dir: src, Reason: fmt.Sprintf("missing or unreadable MANIFEST: %v", err)}
	}
	m, reason := parseManifest(mb)
	if reason != "" {
		return res, &CheckpointError{Dir: src, File: manifestName, Reason: reason}
	}
	if err := fsys.RemoveAll(dst); err != nil {
		return res, fmt.Errorf("flowkv: clone checkpoint: clear destination: %w", err)
	}
	if err := fsys.MkdirAll(dst, 0o755); err != nil {
		return res, fmt.Errorf("flowkv: clone checkpoint: %w", err)
	}
	var needSync []string
	dirs := map[string]bool{dst: true}
	for _, e := range m.entries {
		sp := filepath.Join(src, filepath.FromSlash(e.path))
		dp := filepath.Join(dst, filepath.FromSlash(e.path))
		dd := filepath.Dir(dp)
		if !dirs[dd] {
			if err := fsys.MkdirAll(dd, 0o755); err != nil {
				return res, fmt.Errorf("flowkv: clone checkpoint: %w", err)
			}
			dirs[dd] = true
		}
		linked, err := faultfs.LinkOrCopy(fsys, sp, dp)
		if err != nil {
			return res, fmt.Errorf("flowkv: clone checkpoint %s: %w", e.path, err)
		}
		if linked {
			res.LinkedBytes += e.size
		} else {
			res.CopiedBytes += e.size
			needSync = append(needSync, dp)
		}
		res.Files++
	}
	if err := syncFiles(fsys, needSync); err != nil {
		return res, err
	}
	for d := range dirs {
		if err := fsys.SyncDir(d); err != nil {
			return res, fmt.Errorf("flowkv: clone checkpoint: sync dir: %w", err)
		}
	}
	// Manifest last: an interrupted clone leaves a directory that fails
	// VerifyCheckpointDir instead of masquerading as complete.
	f, err := fsys.Create(filepath.Join(dst, manifestName))
	if err != nil {
		return res, fmt.Errorf("flowkv: clone checkpoint: %w", err)
	}
	if _, err := f.Write(mb); err != nil {
		f.Close()
		return res, fmt.Errorf("flowkv: clone checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return res, fmt.Errorf("flowkv: clone checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return res, fmt.Errorf("flowkv: clone checkpoint: %w", err)
	}
	if err := fsys.SyncDir(dst); err != nil {
		return res, fmt.Errorf("flowkv: clone checkpoint: %w", err)
	}
	return res, nil
}
