package core

// The error-injection battery: every mutating filesystem operation kind
// is failed — once, transiently, persistently, with ENOSPC, and with a
// torn write — against all three store patterns, and after the fault
// clears the store must uphold the acked-write contract: every write
// that was acknowledged is readable again, or the store loudly reports a
// non-Healthy state. Silent loss is the one outcome that must never
// happen, and TestFaultBatteryDetectsBrokenReattach proves the battery
// can actually see it by re-running with the flush re-attach logic
// deliberately disabled.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flowkv/internal/core/aar"
	"flowkv/internal/core/aur"
	"flowkv/internal/core/rmw"
	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// batteryValuePad makes every value large enough that a store flush
// crosses the logfile's internal 256KiB write buffer, so injected write
// faults fire in the middle of a flush batch — the hardest atomicity
// case: some records of the batch land, the rest must be re-attached to
// the write buffer.
var batteryValuePad = strings.Repeat("x", 32<<10)

func batteryWindow(n int) window.Window {
	return window.Window{Start: int64(n) * 100, End: int64(n)*100 + 100}
}

type faultCase struct {
	name string
	rule faultfs.Rule
	// expectHealthy marks a fault the store must fully absorb (transient
	// read errors): no operation may fail and the store stays Healthy.
	expectHealthy bool
}

func faultScenarios() []faultCase {
	return []faultCase{
		{name: "sync-persistent",
			rule: faultfs.Rule{Op: faultfs.OpSync, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO}},
		{name: "write-transient",
			rule: faultfs.Rule{Op: faultfs.OpWrite, Class: faultfs.ClassTransient, Times: 2, Err: faultfs.ErrDiskIO}},
		{name: "write-persistent",
			rule: faultfs.Rule{Op: faultfs.OpWrite, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO}},
		{name: "enospc-any",
			rule: faultfs.Rule{Op: faultfs.OpAny, Class: faultfs.ClassPersistent, Err: faultfs.ErrNoSpace}},
		{name: "torn-write",
			rule: faultfs.Rule{Op: faultfs.OpWrite, TornBytes: 7}},
		{name: "read-transient",
			rule:          faultfs.Rule{Op: faultfs.OpRead, Class: faultfs.ClassTransient, Times: 2, Err: faultfs.ErrDiskIO},
			expectHealthy: true},
		// Single-shot sweep over every remaining mutating op kind; the
		// phase-B flush + checkpoint exercises each of them at least once.
		{name: "once-create", rule: faultfs.Rule{Op: faultfs.OpCreate}},
		{name: "once-sync", rule: faultfs.Rule{Op: faultfs.OpSync}},
		{name: "once-write", rule: faultfs.Rule{Op: faultfs.OpWrite}},
		{name: "once-remove", rule: faultfs.Rule{Op: faultfs.OpRemove}},
		{name: "once-rename", rule: faultfs.Rule{Op: faultfs.OpRename}},
		{name: "once-mkdir", rule: faultfs.Rule{Op: faultfs.OpMkdir}},
	}
}

// runFaultCase drives one pattern through one injection scenario and
// returns descriptions of acked writes that were silently lost (the
// store claimed Healthy but could not serve them). It reports loss
// instead of failing so the deliberately-broken variant can assert the
// battery detects it. Everything else — an unrecoverable store, a read
// failure after recovery — fails the test directly.
func runFaultCase(t *testing.T, p Pattern, fc faultCase) (lost []string) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS)
	agg, wk, opts := crashConfig(p)
	opts.Instances = 2
	opts.WriteBufferBytes = 2 << 20 // 1MiB per instance: no auto-flush mid-phase
	opts.ReadRetryBackoff = 50 * time.Microsecond
	opts.FS = inj
	base := t.TempDir()
	opts.Dir = filepath.Join(base, "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()

	// Oracles. AAR/AUR: acked appended values per (window, key). RMW:
	// the last acked aggregate per (window, key) plus every value
	// attempted after it — an unacked Put may still have been applied,
	// so any of those is a legal readback, but a value older than the
	// last ack is loss.
	type ident struct {
		w   window.Window
		key string
	}
	acked := make(map[window.Window]map[string][]string)
	lastAcked := make(map[ident]string)
	later := make(map[ident]map[string]bool)
	seq := 0
	write := func(wi int, key string) error {
		w := batteryWindow(wi)
		val := fmt.Sprintf("%s|w%d|s%04d|%s", key, wi, seq, batteryValuePad)
		seq++
		if p == PatternRMW {
			err := s.PutAggregate([]byte(key), w, []byte(val))
			id := ident{w, key}
			if err == nil {
				lastAcked[id] = val
				delete(later, id)
			} else {
				if later[id] == nil {
					later[id] = make(map[string]bool)
				}
				later[id][val] = true
			}
			return err
		}
		err := s.Append([]byte(key), []byte(val), w, w.Start)
		if err == nil {
			if acked[w] == nil {
				acked[w] = make(map[string][]string)
			}
			acked[w][key] = append(acked[w][key], val)
		}
		return err
	}

	// Phase A: a durable baseline; every write must ack.
	for wi := 0; wi < 3; wi++ {
		for k := 0; k < 6; k++ {
			if err := write(wi, fmt.Sprintf("key-%d", k)); err != nil {
				t.Fatalf("phase A write: %v", err)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("phase A sync: %v", err)
	}

	// Phase B: writes under fire. Windows 3..5 are new (their AAR log
	// files do not exist yet, exercising create failures); 0..2 extend
	// existing state. Errors are legal — but err == nil is a promise.
	inj.SetRule(fc.rule)
	for wi := 0; wi < 6; wi++ {
		for k := 0; k < 6; k++ {
			_ = write(wi, fmt.Sprintf("key-%d", k))
		}
	}
	_ = s.Flush()
	_ = s.Sync()
	if fc.rule.Op != faultfs.OpRead {
		// Exercises create/mkdir/rename/remove/sync against the
		// checkpoint machinery too; a failed checkpoint must not hurt
		// the live store.
		_ = s.Checkpoint(filepath.Join(base, "ckpt"))
	}

	if fc.rule.Op != faultfs.OpRead {
		if !inj.Fired() {
			t.Fatalf("case %s: rule never fired — scenario tests nothing", fc.name)
		}
		inj.Reset()
		if s.Health() != Healthy {
			if err := s.Recover(); err != nil {
				t.Fatalf("case %s: recover: %v (health %v)", fc.name, err, s.Health())
			}
		}
		if got := s.Health(); got != Healthy {
			t.Fatalf("case %s: health after recover = %v", fc.name, got)
		}
	}

	// Phase C: readback. Every acked write must be present; extras
	// (buffered writes whose ack failed in flight) are fine.
	shorten := func(v string) string {
		if i := strings.Index(v, "|"+batteryValuePad[:1]); i > 0 && len(v) > 40 {
			return v[:40]
		}
		return v
	}
	switch p {
	case PatternAAR:
		for wi := 0; wi < 6; wi++ {
			w := batteryWindow(wi)
			got := make(map[string]int)
			for {
				part, err := s.GetWindow(w)
				if err != nil {
					t.Fatalf("case %s: GetWindow(%v): %v", fc.name, w, err)
				}
				if part == nil {
					break
				}
				for _, kv := range part {
					for _, v := range kv.Values {
						got[string(kv.Key)+"\x00"+string(v)]++
					}
				}
			}
			for key, vals := range acked[w] {
				for _, v := range vals {
					id := key + "\x00" + v
					if got[id] > 0 {
						got[id]--
					} else {
						lost = append(lost, fmt.Sprintf("aar %v %s: %s", w, key, shorten(v)))
					}
				}
			}
		}
	case PatternAUR:
		for w, keys := range acked {
			for key, vals := range keys {
				rv, err := s.Read([]byte(key), w)
				if err != nil {
					t.Fatalf("case %s: Read(%s, %v): %v", fc.name, key, w, err)
				}
				got := make(map[string]int)
				for _, v := range rv {
					got[string(v)]++
				}
				for _, v := range vals {
					if got[v] > 0 {
						got[v]--
					} else {
						lost = append(lost, fmt.Sprintf("aur %v %s: %s", w, key, shorten(v)))
					}
				}
			}
		}
	default:
		for id, want := range lastAcked {
			got, ok, err := s.GetAggregate([]byte(id.key), id.w)
			if err != nil {
				t.Fatalf("case %s: GetAggregate(%s, %v): %v", fc.name, id.key, id.w, err)
			}
			switch {
			case !ok:
				lost = append(lost, fmt.Sprintf("rmw %v %s: aggregate missing, want %s",
					id.w, id.key, shorten(want)))
			case string(got) != want && !later[id][string(got)]:
				lost = append(lost, fmt.Sprintf("rmw %v %s: got %s, want %s or a later attempt",
					id.w, id.key, shorten(string(got)), shorten(want)))
			}
		}
	}

	if fc.rule.Op == faultfs.OpRead {
		if !inj.Fired() {
			t.Fatalf("case %s: read rule never fired", fc.name)
		}
		if got := s.Health(); got != Healthy {
			t.Errorf("case %s: transient read faults must not change health, got %v", fc.name, got)
		}
		if st := s.Stats(); st.ReadRetries == 0 {
			t.Errorf("case %s: expected absorbed read retries, stats: %+v", fc.name, st)
		}
		inj.Reset()
	}
	return lost
}

// TestFaultInjectionBattery sweeps every scenario across every pattern:
// no acked write may ever be silently lost.
func TestFaultInjectionBattery(t *testing.T) {
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		for _, fc := range faultScenarios() {
			t.Run(fmt.Sprintf("%v/%s", p, fc.name), func(t *testing.T) {
				if lost := runFaultCase(t, p, fc); len(lost) > 0 {
					max := len(lost)
					if max > 5 {
						max = 5
					}
					t.Errorf("%d acked writes silently lost, e.g.:\n  %s",
						len(lost), strings.Join(lost[:max], "\n  "))
				}
			})
		}
	}
}

// TestFaultInjectionLinkFallback fails the hard-link op — once and
// persistently — under an incremental checkpoint. Link refusal is the
// one fault the delta path must absorb completely: LinkOrCopy falls back
// to copying the parent's segment, the commit succeeds, the store stays
// Healthy, and the resulting checkpoint restores every acked write. A
// persistent link fault must additionally account zero linked bytes for
// the commit (everything went through the copy path).
func TestFaultInjectionLinkFallback(t *testing.T) {
	cases := []faultCase{
		{name: "link-once", rule: faultfs.Rule{Op: faultfs.OpLink}},
		{name: "link-persistent", rule: faultfs.Rule{
			Op: faultfs.OpLink, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO}},
	}
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		for _, fc := range cases {
			p, fc := p, fc
			t.Run(fmt.Sprintf("%v/%s", p, fc.name), func(t *testing.T) {
				inj := faultfs.NewInjector(faultfs.OS)
				agg, wk, opts := crashConfig(p)
				opts.FS = inj
				base := t.TempDir()
				opts.Dir = filepath.Join(base, "store")
				s, err := Open(agg, wk, opts)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Destroy()
				o := newCrashOracle(p)
				rng := rand.New(rand.NewSource(int64(p)*13 + int64(len(fc.name))))
				ctr := 0
				// An anchor plus a fault-free workload and base: the delta
				// commit under fire is guaranteed to attempt links.
				aw := window.Window{Start: 1 << 30, End: 1<<30 + 100}
				if p == PatternRMW {
					err = s.PutAggregate([]byte("anchor"), aw, []byte("a"))
				} else {
					err = s.Append([]byte("anchor"), []byte("a"), aw, aw.Start)
				}
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 100; i++ {
					if err := o.step(rng, s, &ctr); err != nil {
						t.Fatalf("workload: %v", err)
					}
				}
				ck1 := filepath.Join(base, "ck1")
				if err := s.CheckpointDelta(ck1, "", nil); err != nil {
					t.Fatalf("base checkpoint: %v", err)
				}
				for i := 0; i < 40; i++ {
					if err := o.step(rng, s, &ctr); err != nil {
						t.Fatalf("workload: %v", err)
					}
				}
				before := s.Stats()
				inj.SetRule(fc.rule)
				ck2 := filepath.Join(base, "ck2")
				if err := s.CheckpointDelta(ck2, ck1, nil); err != nil {
					t.Fatalf("delta commit under %s must fall back to copy, got: %v", fc.name, err)
				}
				if !inj.Fired() {
					t.Fatalf("case %s: link rule never fired — scenario tests nothing", fc.name)
				}
				inj.Reset()
				if got := s.Health(); got != Healthy {
					t.Errorf("case %s: link refusal degraded the store to %v", fc.name, got)
				}
				after := s.Stats()
				if fc.rule.Class == faultfs.ClassPersistent {
					if linked := after.CkptLinkedBytes - before.CkptLinkedBytes; linked != 0 {
						t.Errorf("case %s: %d bytes linked despite persistent link faults", fc.name, linked)
					}
				}
				if copied := after.CkptCopiedBytes - before.CkptCopiedBytes; copied == 0 {
					t.Errorf("case %s: commit copied nothing", fc.name)
				}
				// The acked-writes oracle: the checkpoint written through the
				// fallback restores everything that was acked at its cut.
				restOpts := opts
				restOpts.FS = nil
				restOpts.Dir = filepath.Join(base, "restored")
				fresh, err := Open(agg, wk, restOpts)
				if err != nil {
					t.Fatal(err)
				}
				defer fresh.Destroy()
				if err := fresh.Restore(ck2); err != nil {
					t.Fatalf("case %s: fallback checkpoint does not restore: %v", fc.name, err)
				}
				o.verify(t, fc.name, fresh)
			})
		}
	}
}

// TestFaultBatteryDetectsBrokenReattach re-runs the battery's harshest
// write scenarios with the flush re-attach logic deliberately disabled
// (acked-but-unflushed entries are dropped on a failed flush instead of
// being returned to the write buffer). The battery must observe real
// loss for every pattern — proving the oracle has teeth, and that the
// re-attach paths are what uphold the no-silent-loss contract.
func TestFaultBatteryDetectsBrokenReattach(t *testing.T) {
	aar.DisableFlushReattach = true
	aur.DisableFlushReattach = true
	rmw.DisableFlushReattach = true
	defer func() {
		aar.DisableFlushReattach = false
		aur.DisableFlushReattach = false
		rmw.DisableFlushReattach = false
	}()
	cases := map[Pattern]faultCase{
		// AAR buckets are lost when the per-window log cannot be created.
		PatternAAR: {name: "broken-create", rule: faultfs.Rule{
			Op: faultfs.OpCreate, PathContains: "win_", Class: faultfs.ClassPersistent}},
		// AUR/RMW batches are cut mid-flush by a persistent write fault.
		PatternAUR: {name: "broken-write", rule: faultfs.Rule{
			Op: faultfs.OpWrite, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO}},
		PatternRMW: {name: "broken-write", rule: faultfs.Rule{
			Op: faultfs.OpWrite, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO}},
	}
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			if lost := runFaultCase(t, p, cases[p]); len(lost) == 0 {
				t.Fatalf("broken flush re-attach produced no detectable loss — the battery oracle is blind")
			}
		})
	}
}
