package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"flowkv/internal/window"
)

// TestRetentionGCSkipsProtectedParent pins the guard deterministically:
// a GC pass with keep=1 must remove unreferenced older checkpoints —
// except one registered as an in-flight delta's hard-link parent, which
// survives until its delta releases it.
func TestRetentionGCSkipsProtectedParent(t *testing.T) {
	agg, wk, opts := crashConfig(PatternAUR)
	base := t.TempDir()
	opts.Dir = filepath.Join(base, "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()

	// Three independent full checkpoints (no parent references, so the
	// reachability closure keeps nothing beyond the keep set).
	w := window.Window{Start: 0, End: 100}
	dirs := make([]string, 3)
	for i := range dirs {
		if err := s.Append([]byte("k"), []byte(fmt.Sprintf("v%d", i)), w, 0); err != nil {
			t.Fatal(err)
		}
		dirs[i] = filepath.Join(base, fmt.Sprintf("ck-%d", i))
		if err := s.CheckpointDelta(dirs[i], "", nil); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
	}

	release := s.protectParent(dirs[0])
	if err := gcCheckpoints(s.opts.FS, dirs[2], 1, s.protectedParents()); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if _, _, err := VerifyCheckpointDir(nil, dirs[0]); err != nil {
		t.Fatalf("gc removed the protected in-flight parent: %v", err)
	}
	if _, _, err := VerifyCheckpointDir(nil, dirs[1]); err == nil {
		t.Fatal("gc kept an unprotected, unreferenced checkpoint at keep=1")
	}

	// Released, the same pass removes it.
	release()
	release() // double release is harmless
	if err := gcCheckpoints(s.opts.FS, dirs[2], 1, s.protectedParents()); err != nil {
		t.Fatalf("second gc: %v", err)
	}
	if _, _, err := VerifyCheckpointDir(nil, dirs[0]); err == nil {
		t.Fatal("gc kept a released checkpoint at keep=1")
	}
	if _, _, err := VerifyCheckpointDir(nil, dirs[2]); err != nil {
		t.Fatalf("gc damaged the just-committed checkpoint: %v", err)
	}
}

// TestRetentionGCConcurrentDeltaChains races two incremental-checkpoint
// chains, each GC-ing aggressively after every commit (keep=2), against
// each other and a concurrent write load. The in-flight parent guard is
// what makes this safe: every CheckpointDelta must succeed — a chain's
// GC unlinking the segments the other chain is mid-link against would
// surface as a commit error — and both final checkpoints must verify
// and restore. Run under -race this also proves the registry and the
// shared store counters are data-race free.
func TestRetentionGCConcurrentDeltaChains(t *testing.T) {
	agg, wk, opts := crashConfig(PatternAUR)
	opts.RetainCheckpoints = 2
	opts.MaxDeltaChain = 4
	base := t.TempDir()
	opts.Dir = filepath.Join(base, "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	cks := filepath.Join(base, "cks")

	const rounds = 10
	finals := make([]string, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 2*rounds)
	// Retention only promises to keep the K newest siblings (plus
	// referenced ancestors), so a chain that finishes early has no claim
	// on survival. Both goroutines rendezvous before their final round:
	// the two heads commit last, land in every keep=2 set, and survive.
	var lastRound sync.WaitGroup
	lastRound.Add(2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			parent := ""
			for i := 0; i < rounds; i++ {
				if i == rounds-1 {
					lastRound.Done()
					lastRound.Wait()
				}
				for k := 0; k < 12; k++ {
					key := []byte(fmt.Sprintf("g%d-key-%d", g, k))
					val := []byte(fmt.Sprintf("g%d-r%03d-k%d", g, i, k))
					w := window.Window{Start: int64(i) * 1000, End: int64(i)*1000 + 100}
					if err := s.Append(key, val, w, w.Start); err != nil {
						errs <- fmt.Errorf("chain %d round %d write: %w", g, i, err)
						return
					}
				}
				dir := filepath.Join(cks, fmt.Sprintf("chain%d-%03d", g, i))
				if err := s.CheckpointDelta(dir, parent, nil); err != nil {
					errs <- fmt.Errorf("chain %d round %d commit: %w", g, i, err)
					return
				}
				parent = dir
				finals[g] = dir
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Nothing GC left behind is corrupt: every surviving checkpoint
	// verifies against its manifest.
	infos, err := ListCheckpoints(nil, cks)
	if err != nil {
		t.Fatalf("list checkpoints: %v", err)
	}
	if len(infos) == 0 {
		t.Fatal("retention collected every checkpoint")
	}
	for _, ci := range infos {
		if ci.Err != nil {
			t.Fatalf("surviving checkpoint %s corrupt: %v", ci.Path, ci.Err)
		}
	}

	// Both chain heads committed last, so both are CRC-verified,
	// self-contained, and restorable.
	for g, final := range finals {
		if _, _, err := VerifyCheckpointDir(nil, final); err != nil {
			t.Fatalf("chain %d final checkpoint corrupt: %v", g, err)
		}
		restOpts := opts
		restOpts.FS = nil
		restOpts.RetainCheckpoints = 0
		restOpts.Dir = filepath.Join(base, fmt.Sprintf("restored-%d", g))
		fresh, err := Open(agg, wk, restOpts)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(final); err != nil {
			t.Fatalf("chain %d final checkpoint does not restore: %v", g, err)
		}
		fresh.Destroy()
	}
	if got := len(s.protectedParents()); got != 0 {
		t.Fatalf("%d in-flight parents leaked after all deltas finished", got)
	}
}
