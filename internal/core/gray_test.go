package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
)

// openGrayStore opens a battery store with the gray-failure options
// armed: an op deadline (stall detection) and a slow-op threshold
// (latency degrade).
func openGrayStore(t *testing.T, p Pattern, inj *faultfs.Injector, deadline, slowAt time.Duration) *Store {
	t.Helper()
	agg, wk, opts := crashConfig(p)
	opts.Instances = 2
	opts.WriteBufferBytes = 2 << 20
	opts.ReadRetryBackoff = 50 * time.Microsecond
	opts.FS = inj
	opts.Dir = filepath.Join(t.TempDir(), "store")
	opts.OpDeadline = deadline
	opts.SlowOpThreshold = slowAt
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Destroy() })
	return s
}

// TestPureSlowDiskDegradesOnLatency is the defining gray-failure case:
// the disk answers every call correctly but slowly, so no error ever
// reaches the health machine. The latency EWMA alone must drive the
// store to Degraded with ReasonLatency — zero write errors, zero
// stalls, nothing poisoned — and Recover (with nothing to repair) must
// flip straight back to Healthy with a fresh latency baseline.
func TestPureSlowDiskDegradesOnLatency(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openGrayStore(t, PatternAUR, inj, 0, 500*time.Microsecond)

	type event struct {
		h      Health
		reason HealthReason
		err    error
	}
	var events []event
	s.NotifyHealth(func(h Health, reason HealthReason, err error) {
		events = append(events, event{h, reason, err})
	})

	// Every mutating op now takes ≥1ms — far over the 500µs threshold —
	// but succeeds. The rule injects no error.
	inj.SetRule(faultfs.Rule{Class: faultfs.ClassPersistent, Delay: time.Millisecond})

	degraded := false
	for round := 0; round < 40 && !degraded; round++ {
		for k := 0; k < 3; k++ {
			if err := writeBattery(s, PatternAUR, 0, fmt.Sprintf("key-%d", k), round*10+k); err != nil {
				if s.Health() == Degraded {
					degraded = true
					break
				}
				t.Fatalf("round %d write: %v", round, err)
			}
		}
		if err := s.Sync(); err != nil {
			if s.Health() == Degraded {
				degraded = true
				break
			}
			t.Fatalf("round %d sync: %v", round, err)
		}
		degraded = s.Health() == Degraded
	}
	if !degraded {
		t.Fatal("pure-slow disk never degraded the store via the latency signal")
	}
	if got := s.HealthReason(); got != ReasonLatency {
		t.Fatalf("HealthReason = %v, want ReasonLatency", got)
	}
	st := s.Stats()
	if st.WriteErrors != 0 {
		t.Fatalf("WriteErrors = %d, want 0 — no operation failed", st.WriteErrors)
	}
	if st.Stalls != 0 {
		t.Fatalf("Stalls = %d, want 0 — nothing hung", st.Stalls)
	}
	if st.LatencyEWMA < 500*time.Microsecond {
		t.Fatalf("LatencyEWMA = %v, want ≥ threshold", st.LatencyEWMA)
	}
	if len(events) != 1 || events[0].h != Degraded || events[0].reason != ReasonLatency {
		t.Fatalf("events = %+v, want one Degraded/ReasonLatency", events)
	}
	if events[0].err == nil || !strings.Contains(events[0].err.Error(), "slow media") {
		t.Fatalf("latency degrade error = %v, want synthesized slow-media description", events[0].err)
	}

	// Nothing is poisoned: the degrade was advisory. Recover must
	// succeed even while the disk is still slow, and reset the baseline
	// so the fresh Healthy episode is not instantly re-condemned by the
	// old EWMA.
	if err := s.Recover(); err != nil {
		t.Fatalf("recover from latency degrade: %v", err)
	}
	if got := s.Health(); got != Healthy {
		t.Fatalf("health after recover = %v, want Healthy", got)
	}
	if got := s.HealthReason(); got != ReasonNone {
		t.Fatalf("reason after recover = %v, want ReasonNone", got)
	}
	if got := s.Stats().LatencyEWMA; got != 0 {
		t.Fatalf("LatencyEWMA after recover = %v, want 0 (baseline reset)", got)
	}
	inj.Reset()
	if err := writeBattery(s, PatternAUR, 0, "post-recover", 9999); err != nil {
		t.Fatalf("write after recover: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync after recover: %v", err)
	}
}

// TestHungSyncDegradesWithStallReason drives the deadline sentinel end
// to end through the composite store: a sync that hangs indefinitely is
// abandoned at Options.OpDeadline, the store degrades with ReasonStall,
// and the stall is counted in Stats. After the injector releases the
// hung op and the fault clears, Recover restores Healthy and every
// acked record is still readable.
func TestHungSyncDegradesWithStallReason(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openGrayStore(t, PatternAUR, inj, 50*time.Millisecond, 0)

	for k := 0; k < 6; k++ {
		if err := writeBattery(s, PatternAUR, 0, fmt.Sprintf("key-%d", k), 100+k); err != nil {
			t.Fatalf("baseline write: %v", err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("baseline sync: %v", err)
	}

	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Class: faultfs.ClassOnce, Hang: true})
	err := s.Sync()
	if err == nil {
		t.Fatal("sync with hung fsync succeeded")
	}
	if !errors.Is(err, logfile.ErrStalled) {
		t.Fatalf("sync error = %v, want ErrStalled", err)
	}
	if got := s.Health(); got != Degraded {
		t.Fatalf("health after stall = %v, want Degraded", got)
	}
	if got := s.HealthReason(); got != ReasonStall {
		t.Fatalf("HealthReason = %v, want ReasonStall", got)
	}
	if got := s.Stats().Stalls; got != 1 {
		t.Fatalf("Stalls = %d, want 1", got)
	}

	// Release the parked fsync (the "disk" finally answers) and clear
	// the fault; recovery reopens at the durable offset and replays the
	// retained tail.
	inj.Release()
	inj.Reset()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover after stall: %v", err)
	}
	if got := s.Health(); got != Healthy {
		t.Fatalf("health after recover = %v, want Healthy", got)
	}
	for k := 0; k < 6; k++ {
		if err := writeBattery(s, PatternAUR, 0, fmt.Sprintf("key-%d", k), 200+k); err != nil {
			t.Fatalf("post-recover write: %v", err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("post-recover sync: %v", err)
	}
}
