package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"flowkv/internal/core/aar"
	"flowkv/internal/core/aur"
	"flowkv/internal/core/rmw"
	"flowkv/internal/logfile"
)

// Health is the store's failure-handling state. The machine has three
// states and two legal transition edges out of Healthy:
//
//	Healthy ──write-path I/O error──▶ Degraded ──Recover() fails──▶ Failed
//	   ▲                                  │
//	   └────────Recover() succeeds────────┘
//
// Degraded is read-only: acknowledged state stays readable (poisoned logs
// serve stitched reads from the durable prefix plus the retained
// in-memory tail) and in-progress GetWindow drains keep draining, but new
// writes are rejected so no acknowledgement can be issued that the store
// might not honor. Failed means recovery itself could not restore the
// durable-offset invariant; every operation is rejected.
type Health int32

const (
	// Healthy: all operations available.
	Healthy Health = iota
	// Degraded: a write-path I/O failure occurred; reads serve, writes
	// are rejected until Recover succeeds.
	Degraded
	// Failed: recovery failed; the store rejects all operations.
	Failed
)

// String returns the health-state name.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("health(%d)", int32(h))
	}
}

// MarshalJSON renders the health-state name, so JSON reports read
// "healthy"/"degraded"/"failed" rather than opaque integers.
func (h Health) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// HealthReason classifies what drove the store out of Healthy, so
// subscribers (pool registries, self-healers) can distinguish a disk
// that errored from one that hung or merely slowed down — three faults
// with the same state machine but different remediation.
type HealthReason int32

const (
	// ReasonNone: the store is Healthy (or was never unhealthy).
	ReasonNone HealthReason = iota
	// ReasonError: an explicit write-path I/O error.
	ReasonError
	// ReasonStall: an operation ran past Options.OpDeadline and its
	// descriptor was abandoned (logfile.ErrStalled).
	ReasonStall
	// ReasonLatency: no operation failed, but the per-op latency EWMA
	// crossed Options.SlowOpThreshold — the pure-slow gray failure.
	// Nothing is poisoned; Recover returns the store to Healthy.
	ReasonLatency
)

// String returns the reason name.
func (r HealthReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonError:
		return "error"
	case ReasonStall:
		return "stall"
	case ReasonLatency:
		return "latency"
	default:
		return fmt.Sprintf("reason(%d)", int32(r))
	}
}

// MarshalJSON renders the reason name.
func (r HealthReason) MarshalJSON() ([]byte, error) {
	return []byte(`"` + r.String() + `"`), nil
}

// UnmarshalJSON parses the reason name (registry snapshots round-trip
// through JSON). Unknown names decode as ReasonNone rather than
// failing a whole snapshot parse.
func (r *HealthReason) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*r = ReasonError
	case `"stall"`:
		*r = ReasonStall
	case `"latency"`:
		*r = ReasonLatency
	default:
		*r = ReasonNone
	}
	return nil
}

// ErrDegraded rejects writes while the store is in the Degraded state.
// The wrapped message carries the original failure; call Recover to
// attempt the transition back to Healthy.
var ErrDegraded = errors.New("flowkv: store degraded, writes rejected until Recover")

// ErrFailed rejects every operation after recovery has failed.
var ErrFailed = errors.New("flowkv: store failed, recovery unsuccessful")

// Health returns the store's current failure-handling state.
func (s *Store) Health() Health { return Health(s.health.Load()) }

// HealthReason returns what drove the store out of Healthy (ReasonNone
// while Healthy).
func (s *Store) HealthReason() HealthReason { return HealthReason(s.healthReason.Load()) }

// Err returns the first error that moved the store out of Healthy, or
// nil. The error is retained across Degraded→Failed; Recover clears it.
func (s *Store) Err() error {
	s.herrMu.Lock()
	defer s.herrMu.Unlock()
	return s.herr
}

func (s *Store) setHealth(h Health) {
	s.health.Store(int32(h))
	s.healthGauge.Set(int64(h))
	s.notifyHealth(h)
}

// NotifyHealth subscribes fn to health transitions: it is invoked once
// per state change (Healthy→Degraded, Degraded→Failed, →Healthy on
// recovery) with the new state, the typed reason for the departure from
// Healthy (ReasonNone on return to Healthy), and the error that caused
// it (nil on return to Healthy; for a pure-latency degrade, where no
// operation failed, a synthesized description of the slow medium).
// Callbacks run synchronously on the
// transitioning goroutine — a pool registry flipping a flag, not slow
// work — and must not call back into the store.
func (s *Store) NotifyHealth(fn func(Health, HealthReason, error)) {
	s.subsMu.Lock()
	s.healthSubs = append(s.healthSubs, fn)
	s.subsMu.Unlock()
}

// notifyHealth fans a transition out to the subscribers, outside every
// store lock (the health word is already updated). Repeats of the
// already-notified state are suppressed — a self-healer calling Recover
// in a loop re-fails into Failed on every attempt, and subscribers are
// owed one transition, not one per attempt. The next different state
// re-arms delivery.
func (s *Store) notifyHealth(h Health) {
	if s.lastNotified.Swap(int32(h)) == int32(h) {
		return
	}
	s.subsMu.Lock()
	subs := s.healthSubs
	s.subsMu.Unlock()
	if len(subs) == 0 {
		return
	}
	err := s.Err()
	reason := s.HealthReason()
	for _, fn := range subs {
		fn(h, reason, err)
	}
}

// degrade records err and moves Healthy→Degraded. Failed is sticky; a
// later write error never moves the store back to merely Degraded. The
// reason is derived from the error: a deadline stall (the descriptor
// hung and was abandoned) is distinguished from an explicit I/O error.
func (s *Store) degrade(err error) {
	reason := ReasonError
	if errors.Is(err, logfile.ErrStalled) {
		// The stall counter is maintained by the latency monitor's
		// ObserveStall (which also sees stalls whose errors are
		// swallowed); only classify here.
		reason = ReasonStall
	}
	s.writeErrs.Inc()
	s.degradeReason(err, reason)
}

// degradeLatency moves Healthy→Degraded on the latency signal alone: no
// operation failed, nothing is poisoned, and Recover (with nothing to
// reopen) flips straight back to Healthy — which is exactly what lets a
// health-aware manager route load away and retry later. The synthesized
// error carries the numbers for operators.
func (s *Store) degradeLatency(ewma, threshold time.Duration) {
	s.degradeReason(fmt.Errorf("flowkv: slow media: per-op latency EWMA %v exceeds threshold %v", ewma, threshold), ReasonLatency)
}

// degradeReason is the shared Healthy→Degraded edge: latch the first
// cause (error and reason travel together), then CAS the state.
func (s *Store) degradeReason(err error, reason HealthReason) {
	s.herrMu.Lock()
	if s.herr == nil {
		s.herr = err
		s.healthReason.Store(int32(reason))
	}
	s.herrMu.Unlock()
	if s.health.CompareAndSwap(int32(Healthy), int32(Degraded)) {
		s.healthGauge.Set(int64(Degraded))
		s.notifyHealth(Degraded)
	}
}

// guardWrite rejects the call unless the store is Healthy.
func (s *Store) guardWrite() error {
	switch s.Health() {
	case Healthy:
		return nil
	case Degraded:
		return fmt.Errorf("%w: %v", ErrDegraded, s.Err())
	default:
		return fmt.Errorf("%w: %v", ErrFailed, s.Err())
	}
}

// guardRead rejects the call only when the store is Failed; Degraded
// stores keep serving reads.
func (s *Store) guardRead() error {
	if s.Health() == Failed {
		return fmt.Errorf("%w: %v", ErrFailed, s.Err())
	}
	return nil
}

// writeDone inspects a write-path result and applies the health
// transition: any real I/O failure degrades the store. Usage errors
// (wrong pattern, already closed) are the caller's bug, not a disk
// fault, and do not change state.
func (s *Store) writeDone(err error) error {
	if err != nil && !usageError(err) {
		s.degrade(err)
	}
	return err
}

func usageError(err error) bool {
	return errors.Is(err, ErrWrongPattern) ||
		errors.Is(err, aar.ErrClosed) ||
		errors.Is(err, aur.ErrClosed) ||
		errors.Is(err, rmw.ErrClosed)
}

// retryableRead reports whether a read error is worth retrying: usage
// errors are deterministic, and a poisoned log stays poisoned until
// Recover reopens it, so neither can succeed on a second attempt.
func retryableRead(err error) bool {
	return !usageError(err) && !errors.Is(err, logfile.ErrPoisoned)
}

// readRetry runs f against instance inst, retrying transient read
// failures up to Options.ReadRetries times with full-jitter exponential
// backoff: the attempt sleeps a uniform random duration in (0, cap],
// where cap starts at the instance's current starting backoff and
// doubles per attempt. Disk reads hitting a transient EIO (a
// recoverable medium or transport hiccup) succeed on retry without
// surfacing to the caller or changing the health state. The jitter
// matters when several workers share one backend: a deterministic
// schedule would march every worker back onto the faulted device in
// lockstep, re-colliding on each attempt, while full jitter spreads the
// retry instants across the whole backoff window.
//
// An instance that needed backoff to answer raises its own starting cap
// (doubling, bounded), so successive reads against still-flaky media
// begin where the last episode ended instead of re-probing from the
// configured minimum. Recover resets the caps.
func (s *Store) readRetry(inst int, f func() error) error {
	err := f()
	if err == nil {
		return nil
	}
	cap := s.retryCapOf(inst)
	start := cap
	retried := false
	for attempt := 0; attempt < s.opts.ReadRetries; attempt++ {
		if !retryableRead(err) {
			break
		}
		retried = true
		s.readRetries.Inc()
		time.Sleep(fullJitter(cap))
		cap *= 2
		if err = f(); err == nil {
			s.escalateRetryCap(inst, start*2)
			return nil
		}
	}
	if retried {
		s.escalateRetryCap(inst, start*2)
	}
	s.readErrs.Inc()
	return err
}

// retryCapOf returns instance inst's current starting backoff: the
// configured minimum, or the escalated value a past retry episode left.
func (s *Store) retryCapOf(inst int) time.Duration {
	cap := s.opts.ReadRetryBackoff
	if inst >= 0 && inst < len(s.retryCaps) {
		if esc := time.Duration(s.retryCaps[inst].Load()); esc > cap {
			cap = esc
		}
	}
	return cap
}

// escalateRetryCap raises instance inst's starting backoff to cap,
// bounded at 64x the configured minimum. Monotonic under concurrency:
// a racing larger escalation wins.
func (s *Store) escalateRetryCap(inst int, cap time.Duration) {
	if inst < 0 || inst >= len(s.retryCaps) {
		return
	}
	if max := s.opts.ReadRetryBackoff << 6; cap > max {
		cap = max
	}
	for {
		cur := s.retryCaps[inst].Load()
		if int64(cap) <= cur || s.retryCaps[inst].CompareAndSwap(cur, int64(cap)) {
			return
		}
	}
}

// resetRetryCaps drops every instance's starting backoff to the
// configured minimum (the Recover path).
func (s *Store) resetRetryCaps() {
	for i := range s.retryCaps {
		s.retryCaps[i].Store(0)
	}
}

// fullJitter draws a uniform sleep in (0, cap] — the "full jitter"
// backoff policy. Never zero, so a retry always yields the scheduler.
func fullJitter(cap time.Duration) time.Duration {
	if cap <= 1 {
		return 1
	}
	return time.Duration(rand.Int63n(int64(cap))) + 1
}

// poisoned probes every instance and returns the first log-poisoning
// error, or nil when all live logs are healthy.
func (s *Store) poisoned() error {
	for i := 0; i < s.opts.Instances; i++ {
		var err error
		switch s.pattern {
		case PatternAAR:
			err = s.aars[i].Poisoned()
		case PatternAUR:
			err = s.aurs[i].Poisoned()
		default:
			err = s.rmws[i].Poisoned()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Recover attempts to bring a Degraded (or Failed) store back to
// Healthy. Every poisoned log is reopened at its durable offset — the
// fsyncgate-safe continuation: the suspect file descriptor and OS page
// cache are discarded, the file is truncated to the last fsync-verified
// byte, and the retained in-memory tail of acknowledged-but-unsynced
// records is rewritten through the fresh descriptor. If any instance
// cannot re-establish that invariant (e.g. its unsynced tail exceeded
// the retention bound), the store moves to Failed and the error is
// returned; a later Recover may retry.
func (s *Store) Recover() error {
	if s.Health() == Healthy {
		return nil
	}
	err := s.eachInstance(func(i int) error {
		switch s.pattern {
		case PatternAAR:
			return s.aars[i].Recover()
		case PatternAUR:
			return s.aurs[i].Recover()
		default:
			return s.rmws[i].Recover()
		}
	})
	if err != nil {
		s.setHealth(Failed)
		return fmt.Errorf("flowkv: recover: %w", err)
	}
	s.recoveries.Inc()
	s.herrMu.Lock()
	s.herr = nil
	s.healthReason.Store(int32(ReasonNone))
	s.herrMu.Unlock()
	// A fresh Healthy episode starts with a fresh latency baseline; the
	// EWMA of the degraded episode must not instantly re-degrade a
	// recovered (or relocated) store.
	s.resetLatencyBaseline()
	// The Degraded episode's pessimism dies with it: recovered media
	// answers reads at the configured backoff again.
	s.resetRetryCaps()
	s.setHealth(Healthy)
	return nil
}
