package core

import (
	"errors"
	"testing"

	"flowkv/internal/faultfs"
)

// TestNotifyHealthSubscription walks the full health machine under a
// subscriber: Healthy→Degraded on a write-path fault, Degraded→Failed
// when recovery itself faults, and →Healthy once the fault clears. Each
// transition must fire exactly one callback carrying the causal error
// (nil on the return to Healthy).
func TestNotifyHealthSubscription(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openBatteryStore(t, PatternAUR, inj)

	type event struct {
		h      Health
		reason HealthReason
		err    error
	}
	var events []event
	s.NotifyHealth(func(h Health, reason HealthReason, err error) {
		events = append(events, event{h, reason, err})
	})

	degradeStore(t, PatternAUR, inj, s)
	if len(events) != 1 || events[0].h != Degraded {
		t.Fatalf("after degrade: events = %+v, want one Degraded", events)
	}
	if events[0].err == nil || !errors.Is(events[0].err, faultfs.ErrDiskIO) {
		t.Fatalf("degraded notification error = %v, want ErrDiskIO cause", events[0].err)
	}
	if events[0].reason != ReasonError {
		t.Fatalf("degraded notification reason = %v, want ReasonError", events[0].reason)
	}

	// Recovery faults (reopen-at-durable truncate fails): Failed fires.
	inj.SetRule(faultfs.Rule{Op: faultfs.OpTruncate, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO})
	if err := s.Recover(); err == nil {
		t.Fatal("recover under truncate fault succeeded")
	}
	if len(events) != 2 || events[1].h != Failed {
		t.Fatalf("after failed recover: events = %+v, want Degraded,Failed", events)
	}

	// Fault clears: Recover succeeds and the Healthy notification
	// carries no error.
	inj.Reset()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover after fault cleared: %v", err)
	}
	if len(events) != 3 || events[2].h != Healthy || events[2].err != nil {
		t.Fatalf("after recovery: events = %+v, want trailing Healthy with nil error", events)
	}
	if events[2].reason != ReasonNone {
		t.Fatalf("healthy notification reason = %v, want ReasonNone", events[2].reason)
	}

	// Repeat write errors while already Degraded must not re-notify.
	degradeStore(t, PatternAUR, inj, s)
	if err := s.Sync(); err == nil {
		t.Fatal("sync while degraded succeeded")
	}
	if len(events) != 4 {
		t.Fatalf("redundant degrade notified: events = %+v", events)
	}
	inj.Reset()
}
