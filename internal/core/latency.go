package core

import (
	"sync/atomic"
	"time"

	"flowkv/internal/logfile"
	"flowkv/internal/metrics"
)

// latencyEWMAMinSamples is how many write/fsync observations the EWMA
// needs before it may degrade the store: a single cold-cache outlier at
// startup must not condemn a healthy disk.
const latencyEWMAMinSamples = 16

// latencyEWMAAlphaShift sets the EWMA smoothing factor to 1/2^3 = 1/8:
// new = old + (sample-old)/8. Heavy enough to ride out one slow op,
// light enough that a disk that truly degraded 100x crosses any sane
// threshold within a couple of dozen operations.
const latencyEWMAAlphaShift = 3

// latencyMonitor implements logfile.Monitor for one Store: it is shared
// by every instance's logs (each descriptor's guard calls it), feeds the
// per-op histograms surfaced in Stats, and maintains the write+fsync
// latency EWMA that drives the ReasonLatency health degrade — the
// signal that fires for a disk that answers slowly but never errors.
// All methods are safe for concurrent use.
type latencyMonitor struct {
	s         *Store
	threshold time.Duration

	write *metrics.Histogram
	read  *metrics.Histogram
	sync  *metrics.Histogram

	ewma    atomic.Int64 // ns; EWMA over write+fsync latencies
	samples atomic.Int64
}

func newLatencyMonitor(s *Store, threshold time.Duration) *latencyMonitor {
	return &latencyMonitor{
		s:         s,
		threshold: threshold,
		write:     metrics.NewHistogram(),
		read:      metrics.NewHistogram(),
		sync:      metrics.NewHistogram(),
	}
}

// ObserveOp records one completed operation. Reads feed only their
// histogram; writes and fsyncs additionally move the EWMA, and once the
// EWMA has enough samples and sits above the threshold the store
// degrades with ReasonLatency.
func (m *latencyMonitor) ObserveOp(kind logfile.MonKind, d time.Duration) {
	switch kind {
	case logfile.MonWrite:
		m.write.Observe(d)
	case logfile.MonRead:
		m.read.Observe(d)
		return // reads do not drive the degrade signal
	case logfile.MonSync:
		m.sync.Observe(d)
	default:
		return
	}
	var cur int64
	for {
		cur = m.ewma.Load()
		next := cur + (int64(d)-cur)>>latencyEWMAAlphaShift
		if m.ewma.CompareAndSwap(cur, next) {
			cur = next
			break
		}
	}
	n := m.samples.Add(1)
	if m.threshold > 0 && n >= latencyEWMAMinSamples && time.Duration(cur) > m.threshold {
		m.s.degradeLatency(time.Duration(cur), m.threshold)
	}
}

// ObserveStall records an operation abandoned at the deadline. The
// stall also surfaces as logfile.ErrStalled through the failing call
// and degrades the store via writeDone with ReasonStall; counting here
// instead of there covers the paths that swallow the error (a
// superseded split sync, a scrub heal).
func (m *latencyMonitor) ObserveStall(kind logfile.MonKind, deadline time.Duration) {
	m.s.stalls.Inc()
}

// fillStats copies the latency view into a Stats snapshot.
func (m *latencyMonitor) fillStats(st *Stats) {
	if m.write.Count() > 0 {
		st.WriteP50, st.WriteP99 = m.write.P50(), m.write.P99()
	}
	if m.read.Count() > 0 {
		st.ReadP50, st.ReadP99 = m.read.P50(), m.read.P99()
	}
	if m.sync.Count() > 0 {
		st.SyncP50, st.SyncP99 = m.sync.P50(), m.sync.P99()
	}
	st.LatencyEWMA = time.Duration(m.ewma.Load())
}

// reset drops the EWMA and its sample count (the Recover path). The
// histograms keep accumulating — they describe history, not health.
func (m *latencyMonitor) reset() {
	m.ewma.Store(0)
	m.samples.Store(0)
}

// resetLatencyBaseline clears the latency-degrade signal after a
// successful Recover.
func (s *Store) resetLatencyBaseline() {
	if s.mon != nil {
		s.mon.reset()
	}
}
