package core

import (
	"errors"
	"fmt"
	"path"
	"path/filepath"
	"sort"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
)

// manifestName is the file committing a checkpoint directory: a checkpoint
// without a valid MANIFEST is not a checkpoint.
const manifestName = "MANIFEST"

// manifestMagic identifies the manifest format; bump the suffix on
// incompatible changes.
const manifestMagic = "flowkv-checkpoint-v1"

// ErrCheckpointInvalid is the sentinel matched (via errors.Is) by every
// rejection of a partial, corrupted, or mismatched checkpoint directory.
var ErrCheckpointInvalid = errors.New("flowkv: invalid checkpoint")

// CheckpointError reports why a checkpoint directory was rejected. It
// unwraps to ErrCheckpointInvalid so callers can branch on the class
// while logging the specifics.
type CheckpointError struct {
	// Dir is the checkpoint directory that was rejected.
	Dir string
	// File is the offending file relative to Dir, empty for
	// directory-level problems (missing or unreadable manifest).
	File string
	// Reason describes the failed check.
	Reason string
}

// Error formats the rejection.
func (e *CheckpointError) Error() string {
	if e.File == "" {
		return fmt.Sprintf("flowkv: invalid checkpoint %s: %s", e.Dir, e.Reason)
	}
	return fmt.Sprintf("flowkv: invalid checkpoint %s: file %s: %s", e.Dir, e.File, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCheckpointInvalid) hold.
func (e *CheckpointError) Unwrap() error { return ErrCheckpointInvalid }

// manifestEntry records one checkpointed file: its slash-separated path
// relative to the checkpoint root, its exact size, and the CRC32C of its
// contents.
type manifestEntry struct {
	path string
	size int64
	crc  uint32
}

// snapshotDir walks root through fsys and returns one entry per regular
// file (the manifest itself excluded), sorted by path.
func snapshotDir(fsys faultfs.FS, root string) ([]manifestEntry, error) {
	var out []manifestEntry
	var walk func(dir, rel string) error
	walk = func(dir, rel string) error {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			relName := path.Join(rel, e.Name())
			if e.IsDir() {
				if err := walk(filepath.Join(dir, e.Name()), relName); err != nil {
					return err
				}
				continue
			}
			if relName == manifestName {
				continue
			}
			b, err := fsys.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return err
			}
			out = append(out, manifestEntry{path: relName, size: int64(len(b)), crc: binio.Checksum(b)})
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, nil
}

// encodeManifest serializes a manifest: a header record (magic, pattern,
// instance count) followed by one record per file, all CRC-framed through
// binio.
func encodeManifest(p Pattern, instances int, entries []manifestEntry) []byte {
	var buf, payload []byte
	payload = binio.PutString(payload[:0], manifestMagic)
	payload = binio.PutUvarint(payload, uint64(p))
	payload = binio.PutUvarint(payload, uint64(instances))
	buf = binio.AppendRecord(buf, payload)
	for _, e := range entries {
		payload = binio.PutString(payload[:0], e.path)
		payload = binio.PutUvarint(payload, uint64(e.size))
		payload = binio.PutUint32(payload, e.crc)
		buf = binio.AppendRecord(buf, payload)
	}
	return buf
}

// parseManifest decodes a serialized manifest. On rejection it returns a
// non-empty reason and zero values; it never panics, whatever the input
// (fuzzed by FuzzParseManifest).
func parseManifest(b []byte) (p Pattern, instances int, entries []manifestEntry, reason string) {
	header, n, err := binio.ReadRecord(b)
	if err != nil {
		return 0, 0, nil, fmt.Sprintf("corrupt header: %v", err)
	}
	b = b[n:]
	magic, hn, err := binio.String(header)
	if err != nil || magic != manifestMagic {
		return 0, 0, nil, "bad magic"
	}
	header = header[hn:]
	pat, hn, err := binio.Uvarint(header)
	if err != nil {
		return 0, 0, nil, "truncated header"
	}
	header = header[hn:]
	inst, _, err := binio.Uvarint(header)
	if err != nil {
		return 0, 0, nil, "truncated header"
	}
	for len(b) > 0 {
		rec, n, err := binio.ReadRecord(b)
		if err != nil {
			return 0, 0, nil, fmt.Sprintf("corrupt entry: %v", err)
		}
		b = b[n:]
		name, fn, err := binio.String(rec)
		if err != nil {
			return 0, 0, nil, "truncated entry"
		}
		rec = rec[fn:]
		size, fn, err := binio.Uvarint(rec)
		if err != nil {
			return 0, 0, nil, "truncated entry"
		}
		rec = rec[fn:]
		crc, err := binio.Uint32(rec)
		if err != nil {
			return 0, 0, nil, "truncated entry"
		}
		entries = append(entries, manifestEntry{path: name, size: int64(size), crc: crc})
	}
	return Pattern(pat), int(inst), entries, ""
}

// writeManifest snapshots dir and writes its MANIFEST. The manifest file
// and the directory entry are fsynced, so after writeManifest returns the
// checkpoint contents are fully described and durable — ready for the
// atomic rename commit.
func writeManifest(fsys faultfs.FS, dir string, p Pattern, instances int) error {
	entries, err := snapshotDir(fsys, dir)
	if err != nil {
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	buf := encodeManifest(p, instances, entries)
	f, err := fsys.Create(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	return fsys.SyncDir(dir)
}

// readManifest parses dir's MANIFEST, validating the magic and that the
// checkpoint was taken with the same pattern and instance count.
func readManifest(fsys faultfs.FS, dir string, p Pattern, instances int) ([]manifestEntry, error) {
	b, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, &CheckpointError{Dir: dir, Reason: fmt.Sprintf("missing or unreadable MANIFEST: %v", err)}
	}
	bad := func(reason string) ([]manifestEntry, error) {
		return nil, &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
	}
	pat, inst, entries, reason := parseManifest(b)
	if reason != "" {
		return bad(reason)
	}
	if pat != p || inst != instances {
		return bad(fmt.Sprintf("checkpoint is %v/%d instances, store is %v/%d",
			pat, inst, p, instances))
	}
	return entries, nil
}

// verifyCheckpoint rejects dir unless its current contents match its
// MANIFEST exactly: every listed file present with the recorded size and
// CRC32C, and no unlisted files. Any deviation — a truncated copy, a
// bit-flip, a file from a half-finished later attempt — yields a
// CheckpointError rather than a silently partial restore.
func verifyCheckpoint(fsys faultfs.FS, dir string, p Pattern, instances int) error {
	want, err := readManifest(fsys, dir, p, instances)
	if err != nil {
		return err
	}
	return verifyContents(fsys, dir, want)
}

// verifyContents checks dir's current files against the manifest entries
// want: every listed file present with the recorded size and CRC32C, and
// no unlisted files.
func verifyContents(fsys faultfs.FS, dir string, want []manifestEntry) error {
	got, err := snapshotDir(fsys, dir)
	if err != nil {
		return &CheckpointError{Dir: dir, Reason: fmt.Sprintf("unreadable contents: %v", err)}
	}
	byPath := make(map[string]manifestEntry, len(got))
	for _, e := range got {
		byPath[e.path] = e
	}
	for _, w := range want {
		g, ok := byPath[w.path]
		if !ok {
			return &CheckpointError{Dir: dir, File: w.path, Reason: "listed in MANIFEST but missing"}
		}
		if g.size != w.size {
			return &CheckpointError{Dir: dir, File: w.path,
				Reason: fmt.Sprintf("size %d, manifest says %d", g.size, w.size)}
		}
		if g.crc != w.crc {
			return &CheckpointError{Dir: dir, File: w.path, Reason: "checksum mismatch"}
		}
		delete(byPath, w.path)
	}
	for p := range byPath {
		return &CheckpointError{Dir: dir, File: p, Reason: "not listed in MANIFEST"}
	}
	return nil
}
