package core

import (
	"errors"
	"fmt"
	"path"
	"path/filepath"
	"sort"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
)

// manifestName is the file committing a checkpoint directory: a checkpoint
// without a valid MANIFEST is not a checkpoint.
const manifestName = "MANIFEST"

// manifestMagic identifies the original manifest format. Full
// checkpoints still emit it, so their directories stay byte-compatible
// with every earlier release.
const manifestMagic = "flowkv-checkpoint-v1"

// manifestMagicV2 is the incremental-checkpoint manifest format: the
// header additionally records the parent generation's base name and the
// chain depth. Readers accept both magics.
const manifestMagicV2 = "flowkv-checkpoint-v2"

// ErrCheckpointInvalid is the sentinel matched (via errors.Is) by every
// rejection of a partial, corrupted, or mismatched checkpoint directory.
var ErrCheckpointInvalid = errors.New("flowkv: invalid checkpoint")

// CheckpointError reports why a checkpoint directory was rejected. It
// unwraps to ErrCheckpointInvalid so callers can branch on the class
// while logging the specifics.
type CheckpointError struct {
	// Dir is the checkpoint directory that was rejected.
	Dir string
	// File is the offending file relative to Dir, empty for
	// directory-level problems (missing or unreadable manifest).
	File string
	// Reason describes the failed check.
	Reason string
}

// Error formats the rejection.
func (e *CheckpointError) Error() string {
	if e.File == "" {
		return fmt.Sprintf("flowkv: invalid checkpoint %s: %s", e.Dir, e.Reason)
	}
	return fmt.Sprintf("flowkv: invalid checkpoint %s: file %s: %s", e.Dir, e.File, e.Reason)
}

// Unwrap makes errors.Is(err, ErrCheckpointInvalid) hold.
func (e *CheckpointError) Unwrap() error { return ErrCheckpointInvalid }

// manifestEntry records one checkpointed file: its slash-separated path
// relative to the checkpoint root, its exact size, and the CRC32C of its
// contents.
type manifestEntry struct {
	path string
	size int64
	crc  uint32
}

// manifest is the decoded MANIFEST of a checkpoint directory.
type manifest struct {
	pattern   Pattern
	instances int
	// parent is the base name of the sibling checkpoint directory this
	// incremental checkpoint was diffed against, "" for a full (chain
	// base) checkpoint. Every checkpoint directory is physically
	// self-contained — reused segments are hard-linked in, so restore
	// never touches the parent — but the reference drives chain display,
	// retention-GC refcounting, and chain verification.
	parent string
	// depth is the incremental chain length: 0 for a base, parent's
	// depth + 1 otherwise. Stored rather than derived so the chain cap
	// needs no walking (ancestors may already be garbage-collected).
	depth   int
	entries []manifestEntry
}

// snapshotDir walks root through fsys and returns one entry per regular
// file (the manifest itself excluded), sorted by path.
func snapshotDir(fsys faultfs.FS, root string) ([]manifestEntry, error) {
	var out []manifestEntry
	var walk func(dir, rel string) error
	walk = func(dir, rel string) error {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range ents {
			relName := path.Join(rel, e.Name())
			if e.IsDir() {
				if err := walk(filepath.Join(dir, e.Name()), relName); err != nil {
					return err
				}
				continue
			}
			if relName == manifestName {
				continue
			}
			b, err := fsys.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return err
			}
			out = append(out, manifestEntry{path: relName, size: int64(len(b)), crc: binio.Checksum(b)})
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out, nil
}

// encodeManifest serializes a manifest: a header record (magic, pattern,
// instance count, and for incremental checkpoints the parent name and
// chain depth) followed by one record per file, all CRC-framed through
// binio. A manifest with no parent and depth 0 is emitted in the v1
// format, byte-identical to pre-incremental checkpoints.
func encodeManifest(m *manifest) []byte {
	var buf, payload []byte
	v2 := m.parent != "" || m.depth != 0
	if v2 {
		payload = binio.PutString(payload[:0], manifestMagicV2)
	} else {
		payload = binio.PutString(payload[:0], manifestMagic)
	}
	payload = binio.PutUvarint(payload, uint64(m.pattern))
	payload = binio.PutUvarint(payload, uint64(m.instances))
	if v2 {
		payload = binio.PutString(payload, m.parent)
		payload = binio.PutUvarint(payload, uint64(m.depth))
	}
	buf = binio.AppendRecord(buf, payload)
	for _, e := range m.entries {
		payload = binio.PutString(payload[:0], e.path)
		payload = binio.PutUvarint(payload, uint64(e.size))
		payload = binio.PutUint32(payload, e.crc)
		buf = binio.AppendRecord(buf, payload)
	}
	return buf
}

// parseManifest decodes a serialized manifest, accepting both the v1 and
// the v2 (parent-bearing) header. On rejection it returns a non-empty
// reason and a nil manifest; it never panics, whatever the input (fuzzed
// by FuzzParseManifest and FuzzParseDeltaManifest).
func parseManifest(b []byte) (*manifest, string) {
	header, n, err := binio.ReadRecord(b)
	if err != nil {
		return nil, fmt.Sprintf("corrupt header: %v", err)
	}
	b = b[n:]
	magic, hn, err := binio.String(header)
	if err != nil || (magic != manifestMagic && magic != manifestMagicV2) {
		return nil, "bad magic"
	}
	header = header[hn:]
	pat, hn, err := binio.Uvarint(header)
	if err != nil {
		return nil, "truncated header"
	}
	header = header[hn:]
	inst, hn, err := binio.Uvarint(header)
	if err != nil {
		return nil, "truncated header"
	}
	header = header[hn:]
	m := &manifest{pattern: Pattern(pat), instances: int(inst)}
	if magic == manifestMagicV2 {
		parent, pn, err := binio.String(header)
		if err != nil {
			return nil, "truncated header"
		}
		header = header[pn:]
		depth, _, err := binio.Uvarint(header)
		if err != nil {
			return nil, "truncated header"
		}
		// A parent reference is a sibling directory's base name; path
		// separators or traversal would let a crafted manifest point the
		// chain walk (GC refcounting, flowkvctl display) outside the
		// checkpoint parent directory.
		if parent != filepath.Base(parent) && parent != "" {
			return nil, "parent is not a sibling name"
		}
		if parent == "." || parent == ".." {
			return nil, "parent is not a sibling name"
		}
		m.parent, m.depth = parent, int(depth)
	}
	for len(b) > 0 {
		rec, n, err := binio.ReadRecord(b)
		if err != nil {
			return nil, fmt.Sprintf("corrupt entry: %v", err)
		}
		b = b[n:]
		name, fn, err := binio.String(rec)
		if err != nil {
			return nil, "truncated entry"
		}
		rec = rec[fn:]
		size, fn, err := binio.Uvarint(rec)
		if err != nil {
			return nil, "truncated entry"
		}
		rec = rec[fn:]
		crc, err := binio.Uint32(rec)
		if err != nil {
			return nil, "truncated entry"
		}
		m.entries = append(m.entries, manifestEntry{path: name, size: int64(size), crc: crc})
	}
	return m, ""
}

// writeManifest snapshots dir and writes its MANIFEST. The manifest file
// and the directory entry are fsynced, so after writeManifest returns the
// checkpoint contents are fully described and durable — ready for the
// atomic rename commit.
func writeManifest(fsys faultfs.FS, dir string, p Pattern, instances int) error {
	entries, err := snapshotDir(fsys, dir)
	if err != nil {
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	return writeManifestEncoded(fsys, dir, &manifest{pattern: p, instances: instances, entries: entries})
}

// writeManifestEncoded writes a fully-specified manifest — entries
// precomputed by the caller, not re-read from disk. The delta checkpoint
// path depends on this: re-hashing the directory would re-read every
// hard-linked segment and put the O(total-state) cost back into every
// commit.
func writeManifestEncoded(fsys faultfs.FS, dir string, m *manifest) error {
	buf := encodeManifest(m)
	f, err := fsys.Create(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flowkv: manifest: %w", err)
	}
	return fsys.SyncDir(dir)
}

// readManifest parses dir's MANIFEST, validating the magic and that the
// checkpoint was taken with the same pattern and instance count. A
// quarantined directory is rejected before its manifest is even read:
// every consumer routed through here — Restore, delta-parent resolution
// — therefore refuses quarantined checkpoints without further checks.
func readManifest(fsys faultfs.FS, dir string, p Pattern, instances int) (*manifest, error) {
	if reason, ok := QuarantineReason(fsys, dir); ok {
		return nil, &CheckpointError{Dir: dir, Reason: "quarantined: " + reason}
	}
	b, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, &CheckpointError{Dir: dir, Reason: fmt.Sprintf("missing or unreadable MANIFEST: %v", err)}
	}
	bad := func(reason string) (*manifest, error) {
		return nil, &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
	}
	m, reason := parseManifest(b)
	if reason != "" {
		return bad(reason)
	}
	if m.pattern != p || m.instances != instances {
		return bad(fmt.Sprintf("checkpoint is %v/%d instances, store is %v/%d",
			m.pattern, m.instances, p, instances))
	}
	return m, nil
}

// verifyCheckpoint rejects dir unless its current contents match its
// MANIFEST exactly: every listed file present with the recorded size and
// CRC32C, and no unlisted files. Any deviation — a truncated copy, a
// bit-flip, a file from a half-finished later attempt — yields a
// CheckpointError rather than a silently partial restore.
func verifyCheckpoint(fsys faultfs.FS, dir string, p Pattern, instances int) error {
	m, err := readManifest(fsys, dir, p, instances)
	if err != nil {
		return err
	}
	return verifyContents(fsys, dir, m.entries)
}

// verifyContents checks dir's current files against the manifest entries
// want: every listed file present with the recorded size and CRC32C, and
// no unlisted files.
func verifyContents(fsys faultfs.FS, dir string, want []manifestEntry) error {
	got, err := snapshotDir(fsys, dir)
	if err != nil {
		return &CheckpointError{Dir: dir, Reason: fmt.Sprintf("unreadable contents: %v", err)}
	}
	byPath := make(map[string]manifestEntry, len(got))
	for _, e := range got {
		byPath[e.path] = e
	}
	for _, w := range want {
		g, ok := byPath[w.path]
		if !ok {
			return &CheckpointError{Dir: dir, File: w.path, Reason: "listed in MANIFEST but missing"}
		}
		if g.size != w.size {
			return &CheckpointError{Dir: dir, File: w.path,
				Reason: fmt.Sprintf("size %d, manifest says %d", g.size, w.size)}
		}
		if g.crc != w.crc {
			// Name the exact damage: expected vs observed checksum, and
			// for frame-structured files the offset of the first frame
			// that no longer verifies.
			reason := fmt.Sprintf("checksum mismatch: manifest %08x, file %08x", w.crc, g.crc)
			if b, rerr := fsys.ReadFile(filepath.Join(dir, filepath.FromSlash(w.path))); rerr == nil {
				if off := firstCorruptFrame(b); off >= 0 {
					reason += fmt.Sprintf(", first corrupt frame at offset %d", off)
				}
			}
			return &CheckpointError{Dir: dir, File: w.path, Reason: reason}
		}
		delete(byPath, w.path)
	}
	for p := range byPath {
		return &CheckpointError{Dir: dir, File: p, Reason: "not listed in MANIFEST"}
	}
	return nil
}
