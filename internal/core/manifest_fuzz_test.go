package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func encodeManifestV1(p Pattern, instances int, entries []manifestEntry) []byte {
	return encodeManifest(&manifest{pattern: p, instances: instances, entries: entries})
}

// FuzzParseManifest feeds arbitrary bytes to the checkpoint MANIFEST
// parser. The parser is the gate between a possibly-corrupted checkpoint
// directory and Restore, so it must reject garbage with a reason rather
// than panic, and anything it accepts must survive an encode/parse round
// trip unchanged (the manifest format is canonical).
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeManifestV1(PatternAAR, 4, nil))
	f.Add(encodeManifestV1(PatternAUR, 2, []manifestEntry{
		{path: "inst-0000/data-000000.log", size: 4096, crc: 0xdeadbeef},
		{path: "inst-0000/index-000000.log", size: 128, crc: 1},
	}))
	f.Add(encodeManifestV1(PatternRMW, 1, []manifestEntry{{path: "inst-0000/rmw.log", size: 0, crc: 0}}))
	// Truncated and bit-flipped variants of a valid manifest.
	full := encodeManifestV1(PatternAUR, 8, []manifestEntry{{path: "x", size: 7, crc: 9}})
	f.Add(full[:len(full)-3])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, reason := parseManifest(b)
		if reason != "" {
			return
		}
		roundTripManifest(t, m)
	})
}

// FuzzParseDeltaManifest targets the v2 (parent-bearing) header:
// parent references, chain depth, and truncated or bit-flipped segment
// entries. Accepted manifests must round-trip canonically, a full
// manifest (no parent, depth 0) must re-encode to the v1 format, and
// parent references must always be plain sibling names — never paths
// that would let a crafted manifest walk the chain out of the checkpoint
// directory.
func FuzzParseDeltaManifest(f *testing.F) {
	segs := []manifestEntry{
		{path: "inst-00/SEGMENTS", size: 96, crc: 0x1234},
		{path: "inst-00/win_0_10.log.seg-000000000000", size: 4096, crc: 0xdeadbeef},
		{path: "inst-00/win_0_10.log.seg-000000004096", size: 512, crc: 0xfeed},
		{path: "APPMETA", size: 33, crc: 7},
	}
	f.Add(encodeManifest(&manifest{pattern: PatternAAR, instances: 1, parent: "gen-000004", depth: 3, entries: segs}))
	f.Add(encodeManifest(&manifest{pattern: PatternRMW, instances: 2, parent: "gen-000001", depth: 1,
		entries: []manifestEntry{{path: "inst-00/rmw.dlt.seg-000000000000", size: 64, crc: 1}}}))
	// Depth without parent (a base written at the chain cap).
	f.Add(encodeManifest(&manifest{pattern: PatternAUR, instances: 4, parent: "", depth: 0, entries: segs[:1]}))
	// Hostile parents: traversal and separators must be rejected.
	f.Add(encodeManifest(&manifest{pattern: PatternAAR, instances: 1, parent: "gen-000001", depth: 1}))
	full := encodeManifest(&manifest{pattern: PatternAUR, instances: 2, parent: "gen-000007", depth: 2, entries: segs})
	f.Add(full[:len(full)-5])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		m, reason := parseManifest(b)
		if reason != "" {
			return
		}
		if m.parent == "." || m.parent == ".." ||
			bytes.ContainsAny([]byte(m.parent), "/\\") {
			t.Fatalf("accepted non-sibling parent %q", m.parent)
		}
		roundTripManifest(t, m)
	})
}

func roundTripManifest(t *testing.T, m *manifest) {
	t.Helper()
	re := encodeManifest(m)
	m2, reason2 := parseManifest(re)
	if reason2 != "" {
		t.Fatalf("re-encoded manifest rejected: %s", reason2)
	}
	if m2.pattern != m.pattern || m2.instances != m.instances ||
		m2.parent != m.parent || m2.depth != m.depth || len(m2.entries) != len(m.entries) {
		t.Fatalf("round trip changed header: %+v -> %+v", m, m2)
	}
	for i := range m.entries {
		if m2.entries[i] != m.entries[i] {
			t.Fatalf("round trip changed entry %d: %+v -> %+v", i, m.entries[i], m2.entries[i])
		}
	}
}

// TestCheckpointChainCycle crafts two checkpoints whose manifests name
// each other as parents; resolving the chain must fail with
// ErrCheckpointInvalid instead of walking forever.
func TestCheckpointChainCycle(t *testing.T) {
	dir := t.TempDir()
	writeCycleManifest(t, dir, "gen-000001", "gen-000002")
	writeCycleManifest(t, dir, "gen-000002", "gen-000001")
	_, err := CheckpointChain(nil, dir+"/gen-000002")
	if err == nil {
		t.Fatal("cycle in parent chain accepted")
	}
	if !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("cycle error is %v, want ErrCheckpointInvalid", err)
	}
}

func writeCycleManifest(t *testing.T, parent, name, ref string) {
	t.Helper()
	d := filepath.Join(parent, name)
	if err := os.MkdirAll(d, 0o755); err != nil {
		t.Fatal(err)
	}
	buf := encodeManifest(&manifest{pattern: PatternAAR, instances: 1, parent: ref, depth: 1})
	if err := os.WriteFile(filepath.Join(d, manifestName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
}
