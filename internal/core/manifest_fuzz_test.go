package core

import (
	"testing"
)

// FuzzParseManifest feeds arbitrary bytes to the checkpoint MANIFEST
// parser. The parser is the gate between a possibly-corrupted checkpoint
// directory and Restore, so it must reject garbage with a reason rather
// than panic, and anything it accepts must survive an encode/parse round
// trip unchanged (the manifest format is canonical).
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeManifest(PatternAAR, 4, nil))
	f.Add(encodeManifest(PatternAUR, 2, []manifestEntry{
		{path: "inst-0000/data-000000.log", size: 4096, crc: 0xdeadbeef},
		{path: "inst-0000/index-000000.log", size: 128, crc: 1},
	}))
	f.Add(encodeManifest(PatternRMW, 1, []manifestEntry{{path: "inst-0000/rmw.log", size: 0, crc: 0}}))
	// Truncated and bit-flipped variants of a valid manifest.
	full := encodeManifest(PatternAUR, 8, []manifestEntry{{path: "x", size: 7, crc: 9}})
	f.Add(full[:len(full)-3])
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		p, inst, entries, reason := parseManifest(b)
		if reason != "" {
			return
		}
		re := encodeManifest(p, inst, entries)
		p2, inst2, entries2, reason2 := parseManifest(re)
		if reason2 != "" {
			t.Fatalf("re-encoded manifest rejected: %s", reason2)
		}
		if p2 != p || inst2 != inst || len(entries2) != len(entries) {
			t.Fatalf("round trip changed header: %v/%d/%d -> %v/%d/%d",
				p, inst, len(entries), p2, inst2, len(entries2))
		}
		for i := range entries {
			if entries2[i] != entries[i] {
				t.Fatalf("round trip changed entry %d: %+v -> %+v", i, entries[i], entries2[i])
			}
		}
	})
}
