package core

import (
	"fmt"
	"testing"

	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

// maxRetryCap returns the largest escalated read-retry starting backoff
// across the store's instances (0 = every instance at the configured
// minimum).
func maxRetryCap(s *Store) int64 {
	var max int64
	for i := range s.retryCaps {
		if v := s.retryCaps[i].Load(); v > max {
			max = v
		}
	}
	return max
}

// TestRecoverResetsReadRetryBackoff drives an instance's read-retry
// backoff up with transient read faults, then degrades and recovers the
// store: the recovered store must read at the configured minimum
// backoff again, not at the Degraded episode's escalated cap.
func TestRecoverResetsReadRetryBackoff(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openBatteryStore(t, PatternAUR, inj)

	// A durable baseline so reads actually touch the disk.
	for k := 0; k < 6; k++ {
		if err := writeBattery(s, PatternAUR, 0, fmt.Sprintf("key-%d", k), k); err != nil {
			t.Fatalf("baseline write: %v", err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}

	// Transient read faults: absorbed by retries, never surfaced — but
	// the instance that needed backoff must remember it.
	w := window.Window{Start: 0, End: 100}
	inj.SetRule(faultfs.Rule{Op: faultfs.OpRead, Class: faultfs.ClassTransient, Times: 2, Err: faultfs.ErrDiskIO})
	for k := 0; k < 6; k++ {
		if _, err := s.Read([]byte(fmt.Sprintf("key-%d", k)), w); err != nil {
			t.Fatalf("read under transient fault: %v", err)
		}
	}
	if !inj.Fired() {
		t.Fatal("read rule never fired — nothing was escalated")
	}
	inj.Reset()
	if st := s.Stats(); st.ReadRetries == 0 {
		t.Fatalf("no retries recorded, stats: %+v", st)
	}
	if got := maxRetryCap(s); got == 0 {
		t.Fatal("retry episode left no escalated backoff cap")
	}
	if got, want := s.retryCapOf(0), s.opts.ReadRetryBackoff; got < want {
		t.Fatalf("retryCapOf floor = %v, want >= configured %v", got, want)
	}

	// Degrade and recover: the escalated caps must not survive.
	degradeStore(t, PatternAUR, inj, s)
	inj.Reset()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := maxRetryCap(s); got != 0 {
		t.Fatalf("recovered store inherited escalated backoff cap %d ns", got)
	}
	// And reads still serve, from the configured minimum.
	if _, err := s.Read([]byte("key-0"), w); err != nil {
		t.Fatalf("read after recover: %v", err)
	}
}

// TestRetryCapEscalationBounded proves repeated retry episodes cannot
// raise the starting backoff without limit: the cap saturates at 64x
// the configured minimum.
func TestRetryCapEscalationBounded(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openBatteryStore(t, PatternAUR, inj)
	bound := int64(s.opts.ReadRetryBackoff << 6)
	for i := 0; i < 200; i++ {
		s.escalateRetryCap(0, s.retryCapOf(0)*2)
	}
	if got := s.retryCaps[0].Load(); got != bound {
		t.Fatalf("escalation saturated at %d ns, want bound %d ns", got, bound)
	}
	// Out-of-range instances are ignored, not panics.
	s.escalateRetryCap(-1, 1)
	s.escalateRetryCap(99, 1)
}

// TestFailedRecoverNotifiesOnce exercises the notification re-arm: a
// self-healer retrying Recover against a persistent fault re-fails into
// Failed on every attempt, but subscribers see exactly one Failed
// event; the eventual return to Healthy re-arms delivery so the next
// Degraded episode notifies again.
func TestFailedRecoverNotifiesOnce(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openBatteryStore(t, PatternAUR, inj)

	var events []Health
	s.NotifyHealth(func(h Health, _ HealthReason, err error) { events = append(events, h) })

	degradeStore(t, PatternAUR, inj, s)
	inj.SetRule(faultfs.Rule{Op: faultfs.OpTruncate, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO})
	for i := 0; i < 4; i++ {
		if err := s.Recover(); err == nil {
			t.Fatal("recover under truncate fault succeeded")
		}
	}
	if want := []Health{Degraded, Failed}; len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events after 4 failed recovers = %v, want exactly %v", events, want)
	}

	inj.Reset()
	if err := s.Recover(); err != nil {
		t.Fatalf("recover after fault cleared: %v", err)
	}
	degradeStore(t, PatternAUR, inj, s)
	inj.Reset()
	if want := []Health{Degraded, Failed, Healthy, Degraded}; len(events) != 4 || events[3] != Degraded {
		t.Fatalf("events = %v, want %v (re-armed after recovery)", events, want)
	}
}
