package core

// Tests for the recovery additions: checkpoint application metadata,
// the background self-healer, the multi-fault legs (a second fault
// injected during Recover, and during the first flush after a
// successful recovery), and the crash+reopen leg — restart-in-place
// over the crashed store directory instead of a pristine one.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

func TestCheckpointMetaRoundTrip(t *testing.T) {
	base := t.TempDir()
	agg, wk, opts := crashConfig(PatternAUR)
	opts.Dir = filepath.Join(base, "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	if err := s.Append([]byte("k"), []byte("v"), w, 10); err != nil {
		t.Fatal(err)
	}
	meta := []byte("offset=1234 wm=77")
	ckpt := filepath.Join(base, "ckpt")
	if err := s.CheckpointWithMeta(ckpt, meta); err != nil {
		t.Fatal(err)
	}

	if got, err := ReadCheckpointMeta(nil, ckpt); err != nil || !bytes.Equal(got, meta) {
		t.Fatalf("ReadCheckpointMeta = %q, %v; want %q", got, err, meta)
	}

	restOpts := opts
	restOpts.Dir = filepath.Join(base, "restored")
	fresh, err := Open(agg, wk, restOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()
	got, err := fresh.RestoreWithMeta(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, meta) {
		t.Fatalf("RestoreWithMeta = %q, want %q", got, meta)
	}
	if vals, err := fresh.Read([]byte("k"), w); err != nil || len(vals) != 1 || string(vals[0]) != "v" {
		t.Fatalf("restored read = %q, %v", vals, err)
	}
}

func TestCheckpointNilMetaHasNoAppMeta(t *testing.T) {
	_, ckpt := checkpointedStore(t)
	if _, err := os.Stat(filepath.Join(ckpt, appMetaName)); !os.IsNotExist(err) {
		t.Fatalf("nil-meta checkpoint wrote %s: %v", appMetaName, err)
	}
	if got, err := ReadCheckpointMeta(nil, ckpt); err != nil || got != nil {
		t.Fatalf("ReadCheckpointMeta on metadata-free checkpoint = %q, %v; want nil, nil", got, err)
	}
}

// TestRestoreRejectsTamperedMeta: APPMETA is covered by the MANIFEST, so
// flipping a byte in it invalidates the whole checkpoint — recovery can
// trust the offsets it reads exactly as much as the state they describe.
func TestRestoreRejectsTamperedMeta(t *testing.T) {
	base := t.TempDir()
	agg, wk, opts := crashConfig(PatternRMW)
	opts.Dir = filepath.Join(base, "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Destroy()
	w := window.Window{Start: 0, End: 100}
	if err := s.PutAggregate([]byte("k"), w, []byte("agg")); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(base, "ckpt")
	if err := s.CheckpointWithMeta(ckpt, []byte("offset=42")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ckpt, appMetaName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	restOpts := opts
	restOpts.Dir = filepath.Join(base, "restored")
	fresh, err := Open(agg, wk, restOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Destroy()
	if _, err := fresh.RestoreWithMeta(ckpt); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("restore with tampered APPMETA: %v, want ErrCheckpointInvalid", err)
	}
}

// degradeStore drives a store into Degraded with a persistent fsync
// fault: the writes themselves ack (buffered), the flush during Sync
// lands on disk, and the fsync failure poisons the logs. The injected
// rule is left armed; callers Reset or replace it.
func degradeStore(t *testing.T, p Pattern, inj *faultfs.Injector, s *Store) {
	t.Helper()
	for wi := 0; wi < 3; wi++ {
		for k := 0; k < 6; k++ {
			if err := writeBattery(s, p, wi, fmt.Sprintf("key-%d", k), 1000+wi*10+k); err != nil {
				t.Fatalf("baseline write: %v", err)
			}
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("baseline sync: %v", err)
	}
	for wi := 0; wi < 3; wi++ {
		for k := 0; k < 6; k++ {
			if err := writeBattery(s, p, wi, fmt.Sprintf("key-%d", k), 2000+wi*10+k); err != nil {
				t.Fatalf("pre-fault write: %v", err)
			}
		}
	}
	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO})
	if err := s.Sync(); err == nil {
		t.Fatal("sync under persistent fsync fault succeeded")
	}
	if got := s.Health(); got != Degraded {
		t.Fatalf("health after failed sync = %v, want Degraded", got)
	}
}

// writeBattery issues one acked write in the battery's value format.
func writeBattery(s *Store, p Pattern, wi int, key string, seq int) error {
	w := batteryWindow(wi)
	val := fmt.Sprintf("%s|w%d|s%04d|%s", key, wi, seq, batteryValuePad)
	if p == PatternRMW {
		return s.PutAggregate([]byte(key), w, []byte(val))
	}
	return s.Append([]byte(key), []byte(val), w, w.Start)
}

func openBatteryStore(t *testing.T, p Pattern, inj *faultfs.Injector) *Store {
	t.Helper()
	agg, wk, opts := crashConfig(p)
	opts.Instances = 2
	opts.WriteBufferBytes = 2 << 20
	opts.ReadRetryBackoff = 50 * time.Microsecond
	opts.FS = inj
	opts.Dir = filepath.Join(t.TempDir(), "store")
	s, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Destroy() })
	return s
}

// TestMultiFaultDuringRecover is the first multi-fault leg: the store
// degrades on a failed fsync, and then recovery itself faults (the
// reopen-at-durable truncate fails). Recover must re-fail cleanly —
// store Failed, error surfaced, nothing silently dropped — and once the
// second fault clears, a later Recover must bring every acked write
// back.
func TestMultiFaultDuringRecover(t *testing.T) {
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			inj := faultfs.NewInjector(faultfs.OS)
			s := openBatteryStore(t, p, inj)
			degradeStore(t, p, inj, s)

			// Second fault: fail the truncate ReopenAtDurable performs.
			inj.SetRule(faultfs.Rule{Op: faultfs.OpTruncate, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO})
			if err := s.Recover(); err == nil {
				t.Fatal("Recover under truncate fault succeeded")
			} else if !errors.Is(err, faultfs.ErrDiskIO) {
				t.Fatalf("Recover error = %v, want the injected disk fault", err)
			}
			if got := s.Health(); got != Failed {
				t.Fatalf("health after faulted Recover = %v, want Failed", got)
			}
			// Failed rejects everything, loudly.
			if err := writeBattery(s, p, 0, "key-0", 9999); !errors.Is(err, ErrFailed) {
				t.Fatalf("write on Failed store: %v, want ErrFailed", err)
			}

			// Fault clears; recovery succeeds and no acked write was lost.
			inj.Reset()
			if err := s.Recover(); err != nil {
				t.Fatalf("Recover after fault cleared: %v", err)
			}
			if got := s.Health(); got != Healthy {
				t.Fatalf("health after recover = %v, want Healthy", got)
			}
			// Both battery rounds per (window, key) must be readable.
			verifyBatteryReadableWithExtra(t, s, p, 2, 0)
		})
	}
}

// TestMultiFaultPostRecoveryFlush is the second multi-fault leg: a store
// recovers from Degraded, and the first flush after recovery — which
// carries the rewritten tail plus anything buffered since — hits a fresh
// write fault. The store must degrade again (not corrupt, not lose), and
// recover again once the disk settles.
func TestMultiFaultPostRecoveryFlush(t *testing.T) {
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			inj := faultfs.NewInjector(faultfs.OS)
			s := openBatteryStore(t, p, inj)
			degradeStore(t, p, inj, s)

			inj.Reset()
			if err := s.Recover(); err != nil {
				t.Fatalf("first recover: %v", err)
			}

			// More acked writes, then fault the post-recovery flush.
			for k := 0; k < 6; k++ {
				if err := writeBattery(s, p, 0, fmt.Sprintf("key-%d", k), 3000+k); err != nil {
					t.Fatalf("post-recovery write: %v", err)
				}
			}
			inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO})
			ferr := s.Sync()
			if !inj.Fired() {
				t.Fatal("post-recovery flush fault never fired")
			}
			if ferr == nil {
				t.Fatal("sync under persistent write fault succeeded")
			}
			if got := s.Health(); got != Degraded {
				t.Fatalf("health after faulted post-recovery flush = %v, want Degraded", got)
			}

			inj.Reset()
			if err := s.Recover(); err != nil {
				t.Fatalf("second recover: %v", err)
			}
			// Two battery rounds everywhere, plus the post-recovery round
			// in window 0: nothing acked may be missing.
			verifyBatteryReadableWithExtra(t, s, p, 2, 1)
		})
	}
}

// verifyBatteryReadableWithExtra checks rounds values per key in every
// battery window, plus extra additional values per key in window 0.
func verifyBatteryReadableWithExtra(t *testing.T, s *Store, p Pattern, rounds, extra int) {
	t.Helper()
	for wi := 0; wi < 3; wi++ {
		w := batteryWindow(wi)
		want := rounds
		if wi == 0 {
			want += extra
		}
		switch p {
		case PatternAAR:
			got := map[string]int{}
			for {
				part, err := s.GetWindow(w)
				if err != nil {
					t.Fatalf("GetWindow(%v): %v", w, err)
				}
				if part == nil {
					break
				}
				for _, kv := range part {
					got[string(kv.Key)] += len(kv.Values)
				}
			}
			for k := 0; k < 6; k++ {
				key := fmt.Sprintf("key-%d", k)
				if got[key] != want {
					t.Fatalf("window %v key %s: %d values, want %d", w, key, got[key], want)
				}
			}
		case PatternAUR:
			for k := 0; k < 6; k++ {
				key := fmt.Sprintf("key-%d", k)
				vals, err := s.Read([]byte(key), w)
				if err != nil {
					t.Fatalf("Read(%s, %v): %v", key, w, err)
				}
				if len(vals) != want {
					t.Fatalf("window %v key %s: %d values, want %d", w, key, len(vals), want)
				}
			}
		default:
			for k := 0; k < 6; k++ {
				key := fmt.Sprintf("key-%d", k)
				_, ok, err := s.GetAggregate([]byte(key), w)
				if err != nil {
					t.Fatalf("GetAggregate(%s, %v): %v", key, w, err)
				}
				if !ok {
					t.Fatalf("window %v key %s: aggregate missing", w, key)
				}
			}
		}
	}
}

// TestSelfHealerHealsDegradedStore: a store degraded by a transient disk
// fault is brought back to Healthy by the background recoverer, with no
// manual intervention, and acked writes survive the round trip.
func TestSelfHealerHealsDegradedStore(t *testing.T) {
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			inj := faultfs.NewInjector(faultfs.OS)
			s := openBatteryStore(t, p, inj)
			degradeStore(t, p, inj, s)
			inj.Reset() // the disk settles; the healer should do the rest

			h := s.StartSelfHealer(SelfHealOptions{Interval: time.Millisecond})
			defer h.Stop()
			deadline := time.Now().Add(5 * time.Second)
			for s.Health() != Healthy && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if got := s.Health(); got != Healthy {
				t.Fatalf("self-healer never recovered the store: health %v, lastErr %v", got, h.LastErr())
			}
			if h.Heals() == 0 {
				t.Fatal("healer reports zero heals after a recovery")
			}
			if err := writeBattery(s, p, 0, "key-0", 5000); err != nil {
				t.Fatalf("write after self-heal: %v", err)
			}
			if st := s.Stats(); st.Recoveries == 0 {
				t.Fatalf("stats show no recoveries: %+v", st)
			}
		})
	}
}

// TestSelfHealerGivesUpCleanly: when recovery keeps faulting, the healer
// retries with backoff up to MaxAttempts and then stops — store left
// loudly Failed, GaveUp reported — instead of spinning forever. A manual
// Recover after the fault clears still works.
func TestSelfHealerGivesUpCleanly(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openBatteryStore(t, PatternRMW, inj)
	degradeStore(t, PatternRMW, inj, s)
	// Recovery itself faults, persistently.
	inj.SetRule(faultfs.Rule{Op: faultfs.OpTruncate, Class: faultfs.ClassPersistent, Err: faultfs.ErrDiskIO})

	h := s.StartSelfHealer(SelfHealOptions{
		Interval:       time.Millisecond,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     4 * time.Millisecond,
		MaxAttempts:    3,
	})
	defer h.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for !h.GaveUp() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !h.GaveUp() {
		t.Fatalf("healer did not give up; attempts=%d lastErr=%v", h.Attempts(), h.LastErr())
	}
	if got := h.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if got := s.Health(); got != Failed {
		t.Fatalf("health after healer gave up = %v, want Failed", got)
	}
	if h.LastErr() == nil || !errors.Is(h.LastErr(), faultfs.ErrDiskIO) {
		t.Fatalf("LastErr = %v, want the injected fault", h.LastErr())
	}

	inj.Reset()
	if err := s.Recover(); err != nil {
		t.Fatalf("manual recover after fault cleared: %v", err)
	}
	if got := s.Health(); got != Healthy {
		t.Fatalf("health = %v, want Healthy", got)
	}
}

// runCrashReopenIteration is the crash+reopen leg: after the simulated
// crash the "machine" restarts **in place** — a fresh store opens over
// the surviving live directory (open-time recovery must absorb torn
// tails and stale generations without error), serves new writes, and
// then performs the real restart protocol: wipe the live dir, reopen,
// and restore the newest checkpoint that verifies.
func runCrashReopenIteration(t *testing.T, pattern Pattern, seed int64) (fired bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inj := faultfs.NewInjector(faultfs.OS)
	base := t.TempDir()
	agg, wk, opts := crashConfig(pattern)
	opts.FS = inj
	opts.Dir = filepath.Join(base, "store")
	st, err := Open(agg, wk, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := newCrashOracle(pattern)
	ctr := 0
	for i := 0; i < 120; i++ {
		if err := o.step(rng, st, &ctr); err != nil {
			t.Fatalf("phase A op: %v", err)
		}
	}
	ckpt := filepath.Join(base, "ckpt")
	if err := st.Checkpoint(ckpt); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	o1 := o.clone()

	rule := faultfs.Rule{AtOp: inj.Ops() + 1 + rng.Int63n(60), Crash: true}
	if rng.Intn(2) == 0 {
		rule.TornBytes = 1 + rng.Intn(48)
	}
	inj.SetRule(rule)
	var errB error
	for i := 0; i < 120 && errB == nil; i++ {
		errB = o.step(rng, st, &ctr)
	}
	fired = inj.Fired()
	if errB != nil && !fired {
		t.Fatalf("phase B failed without an injected fault: %v", errB)
	}
	_ = st.Close()
	inj.Reset()

	// Reboot 1: reopen over the crashed live directory. Whatever bytes
	// survived — torn tails, half-flushed batches, stale generations —
	// opening must succeed and the store must serve new writes. (Live
	// state is not promised back: recovery is checkpoint-based.)
	reOpts := opts
	reOpts.FS = nil
	reopened, err := Open(agg, wk, reOpts)
	if err != nil {
		t.Fatalf("reopen over crashed dir: %v", err)
	}
	w := window.Window{Start: 1 << 40, End: 1<<40 + 100}
	probe := func(s *Store, tag string) {
		t.Helper()
		if pattern == PatternRMW {
			if err := s.PutAggregate([]byte("probe"), w, []byte("pv")); err != nil {
				t.Fatalf("%s: probe put: %v", tag, err)
			}
			got, ok, err := s.GetAggregate([]byte("probe"), w)
			if err != nil || !ok || string(got) != "pv" {
				t.Fatalf("%s: probe readback = %q,%v,%v", tag, got, ok, err)
			}
		} else {
			if err := s.Append([]byte("probe"), []byte("pv"), w, w.Start); err != nil {
				t.Fatalf("%s: probe append: %v", tag, err)
			}
		}
		if got := s.Health(); got != Healthy {
			t.Fatalf("%s: reopened store health = %v", tag, got)
		}
	}
	probe(reopened, "reopen")

	// Restart protocol: wipe the live dir, open fresh, restore the
	// newest checkpoint that verifies (here: the known-good one; the
	// live dir held only unacked-after-cut state).
	if err := reopened.Destroy(); err != nil {
		t.Fatalf("destroy crashed live dir: %v", err)
	}
	restored, err := Open(agg, wk, reOpts)
	if err != nil {
		t.Fatalf("open after wipe: %v", err)
	}
	defer restored.Destroy()
	if err := restored.Restore(ckpt); err != nil {
		t.Fatalf("restore into wiped dir: %v", err)
	}
	o1.verify(t, "reopen-restore", restored)
	probe(restored, "restored")
	return fired
}

// TestCrashReopenRandomized runs the crash+reopen leg across all three
// patterns with enough seeds that the crash lands in a good spread of
// flush/checkpoint positions.
func TestCrashReopenRandomized(t *testing.T) {
	const seedsPerPattern = 25
	for _, p := range []Pattern{PatternAAR, PatternAUR, PatternRMW} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			fired := 0
			for seed := int64(1000); seed < 1000+seedsPerPattern; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					if runCrashReopenIteration(t, p, seed) {
						fired++
					}
				})
			}
			t.Logf("%s: fault fired in %d/%d iterations", p, fired, seedsPerPattern)
			if fired < seedsPerPattern/4 {
				t.Errorf("%s: fault fired in only %d/%d iterations; harness has lost its teeth",
					p, fired, seedsPerPattern)
			}
		})
	}
}
