package core

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flowkv/internal/faultfs"
)

// CheckpointInfo describes one checkpoint directory found by
// ListCheckpoints.
type CheckpointInfo struct {
	// Path is the checkpoint directory.
	Path string
	// Pattern and Instances are the store shape recorded in the MANIFEST.
	Pattern   Pattern
	Instances int
	// Files is the number of files the MANIFEST lists; SizeBytes is
	// their total recorded size (the MANIFEST itself excluded).
	Files     int
	SizeBytes int64
	// ModTime is the directory's modification time (checkpoint age).
	ModTime time.Time
	// Err is non-nil when the checkpoint failed verification: missing,
	// truncated, or bit-flipped files, or extra files not in the MANIFEST.
	Err error
}

// ListCheckpoints scans the immediate subdirectories of parent and
// returns one CheckpointInfo per directory holding a MANIFEST, each
// fully verified against its manifest (every file's size and CRC32C),
// sorted newest first. Directories without a MANIFEST are skipped, so
// store data directories living next to checkpoints are ignored. A nil
// fsys means the real OS filesystem.
func ListCheckpoints(fsys faultfs.FS, parent string) ([]CheckpointInfo, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	ents, err := fsys.ReadDir(parent)
	if err != nil {
		return nil, fmt.Errorf("flowkv: list checkpoints: %w", err)
	}
	var out []CheckpointInfo
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(parent, e.Name())
		ci := CheckpointInfo{Path: dir}
		if info, ierr := e.Info(); ierr == nil {
			ci.ModTime = info.ModTime()
		}
		b, rerr := fsys.ReadFile(filepath.Join(dir, manifestName))
		if rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // not a checkpoint directory
			}
			ci.Err = &CheckpointError{Dir: dir, Reason: fmt.Sprintf("unreadable MANIFEST: %v", rerr)}
			out = append(out, ci)
			continue
		}
		pat, inst, entries, reason := parseManifest(b)
		if reason != "" {
			ci.Err = &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
			out = append(out, ci)
			continue
		}
		ci.Pattern, ci.Instances, ci.Files = pat, inst, len(entries)
		for _, me := range entries {
			ci.SizeBytes += me.size
		}
		ci.Err = verifyContents(fsys, dir, entries)
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.After(out[j].ModTime)
		}
		return out[i].Path > out[j].Path
	})
	return out, nil
}

// VerifyCheckpointDir verifies dir against its own MANIFEST without
// requiring an open store: the recorded pattern and instance count are
// returned rather than matched. A nil fsys means the real OS filesystem.
func VerifyCheckpointDir(fsys faultfs.FS, dir string) (Pattern, int, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	b, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, &CheckpointError{Dir: dir, Reason: fmt.Sprintf("missing or unreadable MANIFEST: %v", err)}
	}
	pat, inst, entries, reason := parseManifest(b)
	if reason != "" {
		return 0, 0, &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
	}
	return pat, inst, verifyContents(fsys, dir, entries)
}

// gcCheckpoints enforces Options.RetainCheckpoints: among the sibling
// directories of the just-committed checkpoint, the keep newest valid
// checkpoints survive and older ones are removed. Only directories whose
// MANIFEST parses are candidates — anything else next to the checkpoints
// (store data directories, stray files, in-flight ".tmp"/".old"
// directories) is never touched. The just-committed checkpoint is always
// kept regardless of timestamps.
func gcCheckpoints(fsys faultfs.FS, just string, keep int) error {
	parent := filepath.Dir(just)
	ents, err := fsys.ReadDir(parent)
	if err != nil {
		return err
	}
	type cand struct {
		path string
		name string
		mod  time.Time
	}
	base := filepath.Base(just)
	var cands []cand
	for _, e := range ents {
		if !e.IsDir() || e.Name() == base ||
			strings.HasSuffix(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".old") {
			continue
		}
		dir := filepath.Join(parent, e.Name())
		b, rerr := fsys.ReadFile(filepath.Join(dir, manifestName))
		if rerr != nil {
			continue
		}
		if _, _, _, reason := parseManifest(b); reason != "" {
			continue
		}
		c := cand{path: dir, name: e.Name()}
		if info, ierr := e.Info(); ierr == nil {
			c.mod = info.ModTime()
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].mod.Equal(cands[j].mod) {
			return cands[i].mod.After(cands[j].mod)
		}
		return cands[i].name > cands[j].name
	})
	// The just-committed checkpoint occupies one of the keep slots.
	var first error
	for i := keep - 1; i >= 0 && i < len(cands); i++ {
		if rerr := fsys.RemoveAll(cands[i].path); rerr != nil && first == nil {
			first = rerr
		}
	}
	if first != nil {
		return first
	}
	return fsys.SyncDir(parent)
}
