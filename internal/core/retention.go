package core

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"flowkv/internal/faultfs"
)

// CheckpointInfo describes one checkpoint directory found by
// ListCheckpoints.
type CheckpointInfo struct {
	// Path is the checkpoint directory.
	Path string
	// Pattern and Instances are the store shape recorded in the MANIFEST.
	Pattern   Pattern
	Instances int
	// Files is the number of files the MANIFEST lists; SizeBytes is
	// their total recorded size (the MANIFEST itself excluded).
	Files     int
	SizeBytes int64
	// ModTime is the directory's modification time (checkpoint age).
	ModTime time.Time
	// Parent is the sibling checkpoint this incremental checkpoint was
	// diffed against ("" for a full/base checkpoint); Depth is its
	// position in the incremental chain (0 = base).
	Parent string
	Depth  int
	// Err is non-nil when the checkpoint failed verification: missing,
	// truncated, or bit-flipped files, or extra files not in the MANIFEST.
	Err error
}

// ListCheckpoints scans the immediate subdirectories of parent and
// returns one CheckpointInfo per directory holding a MANIFEST, each
// fully verified against its manifest (every file's size and CRC32C),
// sorted newest first. Directories without a MANIFEST are skipped, so
// store data directories living next to checkpoints are ignored. A nil
// fsys means the real OS filesystem.
func ListCheckpoints(fsys faultfs.FS, parent string) ([]CheckpointInfo, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	ents, err := fsys.ReadDir(parent)
	if err != nil {
		return nil, fmt.Errorf("flowkv: list checkpoints: %w", err)
	}
	var out []CheckpointInfo
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(parent, e.Name())
		ci := CheckpointInfo{Path: dir}
		if info, ierr := e.Info(); ierr == nil {
			ci.ModTime = info.ModTime()
		}
		b, rerr := fsys.ReadFile(filepath.Join(dir, manifestName))
		if rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // not a checkpoint directory
			}
			ci.Err = &CheckpointError{Dir: dir, Reason: fmt.Sprintf("unreadable MANIFEST: %v", rerr)}
			out = append(out, ci)
			continue
		}
		m, reason := parseManifest(b)
		if reason != "" {
			ci.Err = &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
			out = append(out, ci)
			continue
		}
		ci.Pattern, ci.Instances, ci.Files = m.pattern, m.instances, len(m.entries)
		ci.Parent, ci.Depth = m.parent, m.depth
		for _, me := range m.entries {
			ci.SizeBytes += me.size
		}
		if reason, ok := QuarantineReason(fsys, dir); ok {
			ci.Err = &CheckpointError{Dir: dir, Reason: "quarantined: " + reason}
		} else {
			ci.Err = verifyContents(fsys, dir, m.entries)
		}
		out = append(out, ci)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.After(out[j].ModTime)
		}
		return out[i].Path > out[j].Path
	})
	return out, nil
}

// VerifyCheckpointDir verifies dir against its own MANIFEST without
// requiring an open store: the recorded pattern and instance count are
// returned rather than matched. A nil fsys means the real OS filesystem.
func VerifyCheckpointDir(fsys faultfs.FS, dir string) (Pattern, int, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if reason, ok := QuarantineReason(fsys, dir); ok {
		return 0, 0, &CheckpointError{Dir: dir, Reason: "quarantined: " + reason}
	}
	b, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, 0, &CheckpointError{Dir: dir, Reason: fmt.Sprintf("missing or unreadable MANIFEST: %v", err)}
	}
	m, reason := parseManifest(b)
	if reason != "" {
		return 0, 0, &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
	}
	return m.pattern, m.instances, verifyContents(fsys, dir, m.entries)
}

// CheckpointChain resolves dir's incremental-checkpoint chain by
// following parent references: it returns the base names of the chain
// from dir itself down toward the base, stopping early (without error)
// when an ancestor has already been garbage-collected. Checkpoint
// directories are physically self-contained, so a truncated chain is
// still restorable from dir alone; the walk exists for display, GC
// refcounting, and to reject malformed chains — a cycle in the parent
// references yields a CheckpointError (errors.Is ErrCheckpointInvalid).
// A nil fsys means the real OS filesystem.
func CheckpointChain(fsys faultfs.FS, dir string) ([]string, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	parent := filepath.Dir(dir)
	name := filepath.Base(dir)
	var chain []string
	seen := make(map[string]bool)
	for name != "" {
		if seen[name] {
			return nil, &CheckpointError{Dir: filepath.Join(parent, name),
				Reason: fmt.Sprintf("cycle in checkpoint parent chain at %q", name)}
		}
		seen[name] = true
		chain = append(chain, name)
		b, err := fsys.ReadFile(filepath.Join(parent, name, manifestName))
		if err != nil {
			if len(chain) == 1 {
				return nil, &CheckpointError{Dir: dir, Reason: fmt.Sprintf("missing or unreadable MANIFEST: %v", err)}
			}
			chain = chain[:len(chain)-1] // ancestor already collected
			break
		}
		m, reason := parseManifest(b)
		if reason != "" {
			if len(chain) == 1 {
				return nil, &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
			}
			chain = chain[:len(chain)-1]
			break
		}
		name = m.parent
	}
	return chain, nil
}

// gcCheckpoints enforces Options.RetainCheckpoints: among the sibling
// directories of the just-committed checkpoint, the keep newest valid
// checkpoints survive and older ones are removed — except generations a
// surviving incremental checkpoint still references through its parent
// chain, which are retained too (refcounted GC). Hard links make every
// directory physically self-contained, so collecting a parent would not
// corrupt its children; keeping referenced ancestors preserves the
// verifiable chain (flowkvctl display, CheckpointChain) until a newer
// base makes them unreachable. Only directories whose MANIFEST parses
// are candidates — anything else next to the checkpoints (store data
// directories, stray files, in-flight ".tmp"/".old" directories) is
// never touched. The just-committed checkpoint is always kept regardless
// of timestamps, as is any directory in protected — the parents that
// concurrent in-flight deltas are hard-linking against (keyed by
// cleaned path); protecting them extends to their chain ancestors
// through the same reachability closure.
func gcCheckpoints(fsys faultfs.FS, just string, keep int, protected map[string]bool) error {
	parent := filepath.Dir(just)
	ents, err := fsys.ReadDir(parent)
	if err != nil {
		return err
	}
	type cand struct {
		path   string
		name   string
		parent string
		mod    time.Time
	}
	base := filepath.Base(just)
	justParent := ""
	var cands []cand
	for _, e := range ents {
		if !e.IsDir() ||
			strings.HasSuffix(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".old") {
			continue
		}
		dir := filepath.Join(parent, e.Name())
		// Quarantined checkpoints are outside the retention set entirely:
		// they neither occupy a keep slot (a rotten generation must not
		// shadow a restorable one) nor become removal candidates (the
		// quarantined bytes are preserved for inspection).
		if IsQuarantined(fsys, dir) {
			continue
		}
		b, rerr := fsys.ReadFile(filepath.Join(dir, manifestName))
		if rerr != nil {
			continue
		}
		m, reason := parseManifest(b)
		if reason != "" {
			continue
		}
		if e.Name() == base {
			justParent = m.parent
			continue
		}
		c := cand{path: dir, name: e.Name(), parent: m.parent}
		if info, ierr := e.Info(); ierr == nil {
			c.mod = info.ModTime()
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].mod.Equal(cands[j].mod) {
			return cands[i].mod.After(cands[j].mod)
		}
		return cands[i].name > cands[j].name
	})
	// Seed the kept set with the just-committed checkpoint and the
	// keep-1 newest siblings, then close it over parent references: any
	// candidate a kept checkpoint links against survives this round. The
	// visited set bounds the walk even if crafted manifests form a
	// parent cycle.
	parentOf := make(map[string]string, len(cands)+1)
	parentOf[base] = justParent
	for _, c := range cands {
		parentOf[c.name] = c.parent
	}
	kept := map[string]bool{base: true}
	for i := 0; i < keep-1 && i < len(cands); i++ {
		kept[cands[i].name] = true
	}
	for _, c := range cands {
		if protected[filepath.Clean(c.path)] {
			kept[c.name] = true
		}
	}
	reachable := make(map[string]bool, len(kept))
	for name := range kept {
		for cur := name; cur != "" && !reachable[cur]; {
			reachable[cur] = true
			cur = parentOf[cur]
		}
	}
	var first error
	for i := keep - 1; i >= 0 && i < len(cands); i++ {
		if reachable[cands[i].name] {
			continue
		}
		if rerr := fsys.RemoveAll(cands[i].path); rerr != nil && first == nil {
			first = rerr
		}
	}
	if first != nil {
		return first
	}
	return fsys.SyncDir(parent)
}
