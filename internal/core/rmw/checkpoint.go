package rmw

import (
	"fmt"
	"path/filepath"

	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
)

// Checkpoint writes a consistent snapshot of the instance into dir. The
// cut is one mu critical section that snapshots the live state directly:
// every buffered aggregate (aliased, not copied — Put installs fresh
// slices, never mutates in place) and every index span not superseded by
// a buffered copy. The snapshot is then written to a fresh log in dir —
// live spans re-read from the instance log, buffered values encoded — and
// fsynced. The hash index is not persisted: it is rebuilt by scanning the
// checkpoint log on restore, where every record is live (consumed entries
// were absent from the cut, so they cannot resurrect).
//
// Writing the checkpoint from the snapshot, rather than compacting the
// live log and copying it, is what makes the cut exact under concurrent
// writers: a Put that lands after the cut retires its identity's index
// entry immediately (under mu alone), so any scheme that re-reads the
// live index after the cut can miss an aggregate that was acknowledged
// before it. The snapshot taken inside the cut is immune — spans stay
// readable because compaction needs ioMu, which Checkpoint holds.
//
// Checkpoint holds only ioMu, so concurrent Puts and buffer-served Gets
// proceed while the snapshot is written. Aggregates put after the cut are
// not in the snapshot.
func (s *Store) Checkpoint(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()

	// The cut. flushing is always nil here: flushes run under ioMu.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	bufSnap := make(map[id][]byte, len(s.buf))
	for ident, v := range s.buf {
		bufSnap[ident] = v
	}
	spanSnap := make(map[id]span, len(s.index))
	for ident, sp := range s.index {
		if _, buffered := bufSnap[ident]; buffered {
			continue // the buffered copy is newer
		}
		spanSnap[ident] = sp
	}
	s.mu.Unlock()

	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("rmw: checkpoint: %w", err)
	}
	ck, err := logfile.CreateFS(fsys, filepath.Join(dir, "rmw.log"), s.bd)
	if err != nil {
		return err
	}
	for ident, sp := range spanSnap {
		payload, err := s.log.ReadRecordAt(sp.off, sp.n)
		if err != nil {
			ck.Close()
			return fmt.Errorf("rmw: checkpoint %q: %w", ident.key, err)
		}
		if _, _, err := ck.Append(payload); err != nil {
			ck.Close()
			return err
		}
	}
	var payload []byte
	for ident, v := range bufSnap {
		payload = encodeEntry(payload[:0], ident, v)
		if _, _, err := ck.Append(payload); err != nil {
			ck.Close()
			return err
		}
	}
	if err := ck.Sync(); err != nil {
		ck.Close()
		return err
	}
	return ck.Close()
}

// Restore rebuilds a freshly-opened (empty) instance from a checkpoint
// directory, re-deriving the hash index by scanning the copied log.
func (s *Store) Restore(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.buf) != 0 || len(s.index) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("rmw: restore into a non-empty store")
	}
	s.mu.Unlock()
	if s.log.Size() != 0 {
		return fmt.Errorf("rmw: restore into a non-empty store")
	}
	fsys := s.dir.FS()
	oldLog := s.log
	gen := s.gen + 1
	name := fmt.Sprintf("rmw-%06d.log", gen)
	if err := faultfs.CopyFile(fsys, filepath.Join(dir, "rmw.log"), filepath.Join(s.dir.Root(), name)); err != nil {
		return err
	}
	l, err := s.dir.Open(name)
	if err != nil {
		return err
	}
	s.log, s.gen = l, gen
	oldLog.Remove()

	sc, err := s.log.Scanner(0)
	if err != nil {
		return err
	}
	newIndex := make(map[id]span)
	prev := int64(0)
	for sc.Scan() {
		key, w, _, err := decodeEntry(sc.Record())
		if err != nil {
			return fmt.Errorf("rmw: restore: %w", err)
		}
		ident := id{key: string(key), w: w}
		newIndex[ident] = span{off: prev, n: int(sc.Offset() - prev)}
		prev = sc.Offset()
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Integrity check: the reconstructed spans must decode.
	for ident, sp := range newIndex {
		payload, err := s.log.ReadRecordAt(sp.off, sp.n)
		if err != nil {
			return fmt.Errorf("rmw: restore verify %q: %w", ident.key, err)
		}
		if _, _, _, err := decodeEntry(payload); err != nil {
			return fmt.Errorf("rmw: restore verify %q: %w", ident.key, err)
		}
	}
	s.mu.Lock()
	s.index = newIndex
	s.mu.Unlock()
	return nil
}
