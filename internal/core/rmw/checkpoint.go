package rmw

import (
	"fmt"
	"path/filepath"

	"flowkv/internal/faultfs"
)

// Checkpoint writes a consistent snapshot of the instance into dir. It
// flushes the write buffer, compacts unconditionally so the log holds
// exactly the live aggregates (consumed entries must not resurrect on
// restore), and copies the log, fsyncing the copy. The hash index is not
// persisted: it is rebuilt from the compacted log on restore, where every
// record is live.
func (s *Store) Checkpoint(dir string) error {
	if s.closed {
		return ErrClosed
	}
	fsys := s.dir.FS()
	if err := s.flush(); err != nil {
		return err
	}
	if err := s.compact(); err != nil {
		return err
	}
	if err := s.log.Flush(); err != nil {
		return err
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("rmw: checkpoint: %w", err)
	}
	return faultfs.CopyFile(fsys, s.log.Path(), filepath.Join(dir, "rmw.log"))
}

// Restore rebuilds a freshly-opened (empty) instance from a checkpoint
// directory, re-deriving the hash index by scanning the copied log.
func (s *Store) Restore(dir string) error {
	if s.closed {
		return ErrClosed
	}
	if len(s.buf) != 0 || len(s.index) != 0 || s.log.Size() != 0 {
		return fmt.Errorf("rmw: restore into a non-empty store")
	}
	fsys := s.dir.FS()
	oldLog := s.log
	gen := s.gen + 1
	name := fmt.Sprintf("rmw-%06d.log", gen)
	if err := faultfs.CopyFile(fsys, filepath.Join(dir, "rmw.log"), filepath.Join(s.dir.Root(), name)); err != nil {
		return err
	}
	l, err := s.dir.Open(name)
	if err != nil {
		return err
	}
	s.log, s.gen = l, gen
	oldLog.Remove()

	sc, err := s.log.Scanner(0)
	if err != nil {
		return err
	}
	prev := int64(0)
	for sc.Scan() {
		key, w, _, err := decodeEntry(sc.Record())
		if err != nil {
			return fmt.Errorf("rmw: restore: %w", err)
		}
		ident := id{key: string(key), w: w}
		s.index[ident] = span{off: prev, n: int(sc.Offset() - prev)}
		prev = sc.Offset()
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Integrity check: the reconstructed spans must decode.
	for ident, sp := range s.index {
		payload, err := s.log.ReadRecordAt(sp.off, sp.n)
		if err != nil {
			return fmt.Errorf("rmw: restore verify %q: %w", ident.key, err)
		}
		if _, _, _, err := decodeEntry(payload); err != nil {
			return fmt.Errorf("rmw: restore verify %q: %w", ident.key, err)
		}
	}
	return nil
}
