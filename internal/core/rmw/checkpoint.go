package rmw

import (
	"fmt"
	"path/filepath"

	"flowkv/internal/binio"
	"flowkv/internal/ckpt"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
)

// Delta checkpoints persist the RMW store as a replay stream: one
// logical file (deltaLogical) whose segments, concatenated in order,
// form a sequence of kind-prefixed records — a full dump of live
// aggregates as upserts at the chain's base, then per checkpoint one
// segment holding exactly the identities mutated since the parent's cut
// (upserts carry the aggregate, tombstones record a fetch-&-remove).
// Restore replays the stream into a fresh live log.
const deltaLogical = "rmw.dlt"

const (
	deltaKindUpsert    byte = 0
	deltaKindTombstone byte = 1
)

// Checkpoint writes a consistent snapshot of the instance into dir. The
// cut is one mu critical section that snapshots the live state directly:
// every buffered aggregate (aliased, not copied — Put installs fresh
// slices, never mutates in place) and every index span not superseded by
// a buffered copy. The snapshot is then written to a fresh log in dir —
// live spans re-read from the instance log, buffered values encoded — and
// fsynced. The hash index is not persisted: it is rebuilt by scanning the
// checkpoint log on restore, where every record is live (consumed entries
// were absent from the cut, so they cannot resurrect).
//
// Writing the checkpoint from the snapshot, rather than compacting the
// live log and copying it, is what makes the cut exact under concurrent
// writers: a Put that lands after the cut retires its identity's index
// entry immediately (under mu alone), so any scheme that re-reads the
// live index after the cut can miss an aggregate that was acknowledged
// before it. The snapshot taken inside the cut is immune — spans stay
// readable because compaction needs ioMu, which Checkpoint holds.
//
// Checkpoint holds only ioMu, so concurrent Puts and buffer-served Gets
// proceed while the snapshot is written. Aggregates put after the cut are
// not in the snapshot.
func (s *Store) Checkpoint(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()

	// The cut. flushing is always nil here: flushes run under ioMu.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	bufSnap := make(map[id][]byte, len(s.buf))
	for ident, v := range s.buf {
		bufSnap[ident] = v
	}
	spanSnap := make(map[id]span, len(s.index))
	for ident, sp := range s.index {
		if _, buffered := bufSnap[ident]; buffered {
			continue // the buffered copy is newer
		}
		spanSnap[ident] = sp
	}
	s.mu.Unlock()

	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("rmw: checkpoint: %w", err)
	}
	ck, err := logfile.CreateFS(fsys, filepath.Join(dir, "rmw.log"), s.bd)
	if err != nil {
		return err
	}
	for ident, sp := range spanSnap {
		payload, err := s.log.ReadRecordAt(sp.off, sp.n)
		if err != nil {
			ck.Close()
			return fmt.Errorf("rmw: checkpoint %q: %w", ident.key, err)
		}
		if _, _, err := ck.Append(payload); err != nil {
			ck.Close()
			return err
		}
	}
	var payload []byte
	for ident, v := range bufSnap {
		payload = encodeEntry(payload[:0], ident, v)
		if _, _, err := ck.Append(payload); err != nil {
			ck.Close()
			return err
		}
	}
	if err := ck.Sync(); err != nil {
		ck.Close()
		return err
	}
	return ck.Close()
}

// segWriter streams kind-prefixed records into one segment file,
// accumulating the framed bytes' length and CRC32C for the manifest.
// Nothing is fsynced; the caller adds the file to the group-commit sync
// window.
type segWriter struct {
	f    faultfs.File
	rec  []byte
	crc  uint32
	size int64
}

func (w *segWriter) emit(payload []byte) error {
	w.rec = binio.AppendRecord(w.rec[:0], payload)
	if _, err := w.f.Write(w.rec); err != nil {
		return err
	}
	w.crc = binio.ChecksumUpdate(w.crc, w.rec)
	w.size += int64(len(w.rec))
	return nil
}

// CheckpointDelta writes a segmented snapshot of the instance into dir.
// The cut is the same one-mu critical section Checkpoint uses, but what
// it snapshots is the deltas map: when the parent checkpoint's cut
// matches this instance's last committed cut, only identities mutated
// since then are written (as upserts or tombstones) and the parent's
// segments are hard-linked across; otherwise the live state is dumped
// whole as the base of a new chain. The returned Result's Commit hook
// must be invoked only after the enclosing checkpoint's atomic rename:
// it retires the delta marks this cut absorbed (identities re-dirtied
// mid-write keep their newer marks) and records the cut id the next
// delta will extend. An uncommitted cut leaves the marks in place, so a
// failed checkpoint merely re-ships those identities next time.
func (s *Store) CheckpointDelta(dir string, parent *ckpt.Meta, parentDir string) (*ckpt.Result, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	fsys := s.dir.FS()

	// The cut. flushing is always nil here: flushes run under ioMu.
	type pending struct {
		ident id
		tomb  bool
		v     []byte // buffered value (aliased; Put never mutates in place)
		sp    span   // on-disk span, valid when v is nil and !tomb
	}
	var pstate *ckpt.FileState
	if parent != nil {
		pstate = parent.File(deltaLogical)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	incremental := pstate != nil && parent.CutID != 0 && parent.CutID == s.lastCutID
	cutSeqs := make(map[id]uint64, len(s.deltas))
	for ident, m := range s.deltas {
		cutSeqs[ident] = m.seq
	}
	var work []pending
	if incremental {
		for ident, m := range s.deltas {
			switch {
			case m.tomb:
				work = append(work, pending{ident: ident, tomb: true})
			default:
				if v, ok := s.buf[ident]; ok {
					work = append(work, pending{ident: ident, v: v})
				} else if sp, ok := s.index[ident]; ok {
					work = append(work, pending{ident: ident, sp: sp})
				} else {
					// An upsert mark without live state cannot happen (a
					// consume always leaves a newer tombstone mark); keep
					// the snapshot sound anyway.
					work = append(work, pending{ident: ident, tomb: true})
				}
			}
		}
	} else {
		for ident, v := range s.buf {
			work = append(work, pending{ident: ident, v: v})
		}
		for ident, sp := range s.index {
			if _, buffered := s.buf[ident]; buffered {
				continue // the buffered copy is newer
			}
			work = append(work, pending{ident: ident, sp: sp})
		}
	}
	s.mu.Unlock()

	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rmw: checkpoint: %w", err)
	}
	res := &ckpt.Result{}
	meta := &ckpt.Meta{CutID: ckpt.Rand64()}
	fstate := ckpt.FileState{Logical: deltaLogical, Epoch: ckpt.Rand64()}
	var from int64
	if incremental {
		if err := ckpt.LinkSegments(fsys, parentDir, dir, pstate.Segments, res); err != nil {
			return nil, err
		}
		fstate.Segments = append(fstate.Segments, pstate.Segments...)
		fstate.Epoch = pstate.Epoch
		from = pstate.TotalLen()
	}
	name := ckpt.SegmentName(deltaLogical, from)
	f, err := fsys.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	sw := &segWriter{f: f}
	var payload []byte
	for _, p := range work {
		switch {
		case p.tomb:
			payload = append(payload[:0], deltaKindTombstone)
			payload = encodeEntry(payload, p.ident, nil)
		case p.v != nil:
			payload = append(payload[:0], deltaKindUpsert)
			payload = encodeEntry(payload, p.ident, p.v)
		default:
			// Spans stay readable under ioMu: compaction, which would
			// move them, also needs ioMu.
			entry, err := s.log.ReadRecordAt(p.sp.off, p.sp.n)
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("rmw: checkpoint %q: %w", p.ident.key, err)
			}
			payload = append(payload[:0], deltaKindUpsert)
			payload = append(payload, entry...)
		}
		if err := sw.emit(payload); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if sw.size == 0 {
		// No records this cut. Recording a zero-length segment would make
		// the next delta's segment start at the same offset and collide
		// with this one's name, so drop the file instead.
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return nil, err
		}
	} else {
		fstate.Segments = append(fstate.Segments, ckpt.Segment{Name: name, Len: sw.size, CRC: sw.crc})
		res.Entries = append(res.Entries, ckpt.Entry{Path: name, Size: sw.size, CRC: sw.crc})
		res.NeedSync = append(res.NeedSync, filepath.Join(dir, name))
		res.CopiedBytes += sw.size
	}
	meta.Files = append(meta.Files, fstate)
	if err := ckpt.FinishMeta(fsys, dir, meta, res); err != nil {
		return nil, err
	}
	cut := meta.CutID
	res.Commit = func() {
		s.mu.Lock()
		for ident, seq := range cutSeqs {
			if cur, ok := s.deltas[ident]; ok && cur.seq == seq {
				delete(s.deltas, ident)
			}
		}
		s.lastCutID = cut
		s.mu.Unlock()
	}
	return res, nil
}

// Restore rebuilds a freshly-opened (empty) instance from a checkpoint
// directory, re-deriving the hash index by scanning the copied log.
func (s *Store) Restore(dir string) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if len(s.buf) != 0 || len(s.index) != 0 {
		s.mu.Unlock()
		return fmt.Errorf("rmw: restore into a non-empty store")
	}
	s.mu.Unlock()
	if s.log.Size() != 0 {
		return fmt.Errorf("rmw: restore into a non-empty store")
	}
	fsys := s.dir.FS()
	// Segmented checkpoints (a SEGMENTS manifest present) are replayed:
	// the delta stream's upserts append to a fresh live log in arrival
	// order (a later upsert of the same identity supersedes, leaving
	// dead bytes) and tombstones drop the identity. The cut id carries
	// over so the delta chain continues across the restart.
	meta, err := ckpt.ReadMeta(fsys, dir)
	if err != nil {
		return fmt.Errorf("rmw: restore: %w", err)
	}
	if meta != nil {
		return s.restoreDelta(dir, meta)
	}
	oldLog := s.log
	gen := s.gen + 1
	name := fmt.Sprintf("rmw-%06d.log", gen)
	if err := faultfs.CopyFile(fsys, filepath.Join(dir, "rmw.log"), filepath.Join(s.dir.Root(), name)); err != nil {
		return err
	}
	l, err := s.dir.Open(name)
	if err != nil {
		return err
	}
	s.log, s.gen = l, gen
	oldLog.Remove()

	sc, err := s.log.Scanner(0)
	if err != nil {
		return err
	}
	newIndex := make(map[id]span)
	prev := int64(0)
	for sc.Scan() {
		key, w, _, err := decodeEntry(sc.Record())
		if err != nil {
			return fmt.Errorf("rmw: restore: %w", err)
		}
		ident := id{key: string(key), w: w}
		newIndex[ident] = span{off: prev, n: int(sc.Offset() - prev)}
		prev = sc.Offset()
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// Integrity check: the reconstructed spans must decode.
	for ident, sp := range newIndex {
		payload, err := s.log.ReadRecordAt(sp.off, sp.n)
		if err != nil {
			return fmt.Errorf("rmw: restore verify %q: %w", ident.key, err)
		}
		if _, _, _, err := decodeEntry(payload); err != nil {
			return fmt.Errorf("rmw: restore verify %q: %w", ident.key, err)
		}
	}
	s.mu.Lock()
	s.index = newIndex
	s.mu.Unlock()
	return nil
}

// restoreDelta replays a segmented checkpoint's delta stream; the caller
// (Restore) holds ioMu and has verified the store is empty.
func (s *Store) restoreDelta(dir string, meta *ckpt.Meta) error {
	fstate := meta.File(deltaLogical)
	if fstate == nil {
		return fmt.Errorf("rmw: restore: SEGMENTS lacks %s", deltaLogical)
	}
	fsys := s.dir.FS()
	oldLog := s.log
	if err := s.openGen(s.gen + 1); err != nil {
		return err
	}
	oldLog.Remove()
	newIndex := make(map[id]span)
	var dead int64
	for _, seg := range fstate.Segments {
		f, err := fsys.Open(filepath.Join(dir, seg.Name))
		if err != nil {
			return err
		}
		sc := binio.NewRecordScanner(f, 0)
		for sc.Scan() {
			rec := sc.Record()
			if len(rec) == 0 {
				f.Close()
				return fmt.Errorf("rmw: restore: empty delta record in %s", seg.Name)
			}
			kind, entry := rec[0], rec[1:]
			key, w, _, err := decodeEntry(entry)
			if err != nil {
				f.Close()
				return fmt.Errorf("rmw: restore: %w", err)
			}
			ident := id{key: string(key), w: w}
			switch kind {
			case deltaKindTombstone:
				if sp, ok := newIndex[ident]; ok {
					dead += int64(sp.n)
					delete(newIndex, ident)
				}
			case deltaKindUpsert:
				off, n, err := s.log.Append(entry)
				if err != nil {
					f.Close()
					return err
				}
				if sp, ok := newIndex[ident]; ok {
					dead += int64(sp.n)
				}
				newIndex[ident] = span{off: off, n: n}
			default:
				f.Close()
				return fmt.Errorf("rmw: restore: unknown delta record kind %d in %s", kind, seg.Name)
			}
		}
		err = sc.Err()
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("rmw: restore %s: %w", seg.Name, err)
		}
	}
	if err := s.log.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	s.index = newIndex
	s.dead = dead
	s.lastCutID = meta.CutID
	s.mu.Unlock()
	return nil
}
