package rmw

import (
	"fmt"
	"path/filepath"
	"testing"

	"flowkv/internal/window"
)

func TestStoreLevelCheckpointRestore(t *testing.T) {
	src := openTest(t, Options{WriteBufferBytes: 1})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 30; i++ {
		if err := src.Put([]byte(fmt.Sprintf("k%02d", i)), w, []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite some (dead log entries) and consume others.
	for i := 0; i < 10; i++ {
		src.Put([]byte(fmt.Sprintf("k%02d", i)), w, []byte(fmt.Sprintf("V%02d", i)))
	}
	for i := 20; i < 30; i++ {
		if _, ok, err := src.Get([]byte(fmt.Sprintf("k%02d", i)), w); !ok || err != nil {
			t.Fatal(err)
		}
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}

	dst, err := Open(Options{Dir: filepath.Join(t.TempDir(), "restored"), WriteBufferBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Destroy()
	if err := dst.Restore(ckpt); err != nil {
		t.Fatal(err)
	}
	if dst.LiveStates() != 20 {
		t.Fatalf("restored LiveStates = %d, want 20", dst.LiveStates())
	}
	for i := 0; i < 30; i++ {
		agg, ok, err := dst.Get([]byte(fmt.Sprintf("k%02d", i)), w)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case i < 10:
			if !ok || string(agg) != fmt.Sprintf("V%02d", i) {
				t.Fatalf("k%02d = %q,%v; want overwritten value", i, agg, ok)
			}
		case i < 20:
			if !ok || string(agg) != fmt.Sprintf("v%02d", i) {
				t.Fatalf("k%02d = %q,%v", i, agg, ok)
			}
		default:
			if ok {
				t.Fatalf("consumed k%02d resurrected", i)
			}
		}
	}
	// The restored store keeps working.
	if err := dst.Put([]byte("new"), w, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := dst.Get([]byte("new"), w); !ok {
		t.Fatal("post-restore put/get failed")
	}
}

func TestRestoreIntoDirtyStoreFails(t *testing.T) {
	src := openTest(t, Options{})
	src.Put([]byte("k"), window.Window{Start: 0, End: 100}, []byte("v"))
	ckpt := filepath.Join(t.TempDir(), "ckpt")
	if err := src.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	dirty := openTest(t, Options{})
	dirty.Put([]byte("x"), window.Window{Start: 0, End: 100}, []byte("y"))
	if err := dirty.Restore(ckpt); err == nil {
		t.Error("restore into dirty store accepted")
	}
}

func TestCheckpointClosed(t *testing.T) {
	s := openTest(t, Options{})
	s.Close()
	if err := s.Checkpoint(t.TempDir()); err != ErrClosed {
		t.Errorf("Checkpoint: %v", err)
	}
	if err := s.Restore(t.TempDir()); err != ErrClosed {
		t.Errorf("Restore: %v", err)
	}
}

func TestDiskUsageAndFlush(t *testing.T) {
	s := openTest(t, Options{})
	w := window.Window{Start: 0, End: 100}
	s.Put([]byte("k"), w, []byte("v"))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.DiskUsage(); err != nil || n == 0 {
		t.Errorf("DiskUsage = %d, %v", n, err)
	}
	if s.BufferedBytes() != 0 {
		t.Errorf("BufferedBytes = %d after Flush", s.BufferedBytes())
	}
}
