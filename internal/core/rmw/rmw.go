// Package rmw implements FlowKV's Read-Modify-Write store (paper §4.3),
// used for window operations with associative and commutative aggregate
// functions, which keep one intermediate aggregate per (key, window)
// instead of a tuple list.
//
// Because the aggregate is read back on every tuple arrival, read-time
// prediction is useless; the store is a plain unsorted hash store — an
// in-memory hash write buffer, an in-memory hash index mapping
// (key, window) to on-disk locations, and a single append-only log file.
// Compaction rewrites live entries into a fresh log when space
// amplification exceeds the MSA threshold.
//
// # Concurrency
//
// A Store instance is safe for concurrent use. Two locks split the state:
//
//   - mu guards the in-memory maps (buf, index, dead-byte accounting and
//     the in-flight flush marker). Every fast-path operation — Put, and
//     Get served from the buffer — takes only mu, so ingestion never
//     waits for disk.
//   - ioMu serializes everything that touches the log file: flushes,
//     compaction, indexed reads, checkpoints. mu is never held across
//     I/O; a flush detaches the buffer under mu, writes the batch with
//     only ioMu held, then installs the index entries under mu again.
//
// The lock order is ioMu before mu; mu is never held while acquiring
// ioMu. Operations on an identity that is part of an in-flight flush
// batch divert to the slow path (which waits on ioMu) so a fetch-&-remove
// can never miss values that are mid-flight between buffer and log.
package rmw

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("rmw: store closed")

// DisableFlushReattach, when set, restores the historical behaviour of
// dropping the unwritten remainder of a detached batch when a flush
// fails. It exists only so the error-injection battery can demonstrate
// that the re-attach is load-bearing; production code must never set it.
var DisableFlushReattach bool

// Options configures an RMW store instance.
type Options struct {
	// Dir is the directory holding the instance's log files.
	Dir string
	// WriteBufferBytes caps the in-memory write buffer; exceeding it
	// flushes every buffered aggregate to the log. Default 32 MiB.
	WriteBufferBytes int64
	// MaxSpaceAmplification (MSA) triggers compaction when
	// total/(total-dead) log bytes exceed it. Default 1.5.
	MaxSpaceAmplification float64
	// FS is the filesystem seam; nil means the real OS filesystem.
	// Fault-injection tests substitute a faultfs.Injector.
	FS faultfs.FS
	// Breakdown receives per-operation CPU time and I/O accounting.
	Breakdown *metrics.Breakdown
	// Policy bounds and observes the store's log I/O (deadline sentinel
	// + latency monitor); nil is a passthrough. Shared by reference: the
	// composite store installs one policy across its instances.
	Policy *logfile.Policy
}

func (o *Options) fill() {
	if o.WriteBufferBytes <= 0 {
		o.WriteBufferBytes = 32 << 20
	}
	if o.MaxSpaceAmplification <= 0 {
		o.MaxSpaceAmplification = 1.5
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
}

type id struct {
	key string
	w   window.Window
}

type span struct {
	off int64
	n   int
}

// deltaMark records one identity's latest mutation since the last
// committed delta checkpoint.
type deltaMark struct {
	seq  uint64
	tomb bool
}

// Store is a single RMW store instance, safe for concurrent use.
type Store struct {
	opts Options
	dir  *logfile.Dir
	bd   *metrics.Breakdown

	// mu guards the in-memory state below.
	mu       sync.Mutex
	buf      map[id][]byte // latest aggregate per id, not yet flushed
	bufBytes int64
	index    map[id]span   // on-disk location of each flushed aggregate
	flushing map[id][]byte // batch detached by an in-flight flush, nil otherwise
	dead     int64
	closed   bool
	// deltas tracks every identity mutated since the last committed
	// delta checkpoint: an upsert (Put) or a tombstone (fetch-&-remove).
	// CheckpointDelta persists exactly these marks on top of the parent
	// checkpoint; the seq lets its post-commit hook retire only marks
	// that were not re-dirtied while the checkpoint was being written.
	// lastCutID names the last committed delta cut — a delta extends its
	// parent only when the parent's recorded cut matches.
	deltas    map[id]deltaMark
	deltaSeq  uint64
	lastCutID uint64

	// ioMu serializes log I/O: flush, compaction, indexed reads,
	// checkpoint/restore. Never acquired while holding mu.
	ioMu sync.Mutex
	log  *logfile.Log
	gen  int

	// syncMu admits one split sync at a time; held around (not under)
	// ioMu, so the fsync runs with ioMu released.
	syncMu sync.Mutex

	compactions metrics.Counter
	puts        metrics.Counter
	gets        metrics.Counter
}

// Open creates an RMW store instance rooted at opts.Dir.
func Open(opts Options) (*Store, error) {
	opts.fill()
	dir, err := logfile.OpenDirFS(opts.FS, opts.Dir, opts.Breakdown)
	if err != nil {
		return nil, err
	}
	dir.SetPolicy(opts.Policy)
	s := &Store{
		opts:   opts,
		dir:    dir,
		bd:     opts.Breakdown,
		buf:    make(map[id][]byte),
		index:  make(map[id]span),
		deltas: make(map[id]deltaMark),
	}
	if err := s.openGen(0); err != nil {
		return nil, err
	}
	return s, nil
}

// markDeltaLocked records a mutation of ident for the next delta
// checkpoint; the caller holds mu.
func (s *Store) markDeltaLocked(ident id, tomb bool) {
	s.deltaSeq++
	s.deltas[ident] = deltaMark{seq: s.deltaSeq, tomb: tomb}
}

// openGen swaps in a fresh log generation; caller holds ioMu (or is Open).
func (s *Store) openGen(gen int) error {
	l, err := s.dir.Create(fmt.Sprintf("rmw-%06d.log", gen))
	if err != nil {
		return err
	}
	s.log, s.gen = l, gen
	return nil
}

// Put stores the updated aggregate for (key, window) (paper API:
// Put(K, W, A)), replacing any previous aggregate. The value is copied.
func (s *Store) Put(key []byte, w window.Window, agg []byte) error {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpWrite)
	}
	err := s.put(key, w, agg)
	if stop != nil {
		stop()
	}
	return err
}

func (s *Store) put(key []byte, w window.Window, agg []byte) error {
	ident := id{key: string(key), w: w}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if old, ok := s.buf[ident]; ok {
		s.bufBytes -= int64(len(old))
	}
	// A newer aggregate makes any flushed copy dead; the index entry is
	// retired immediately, the bytes at compaction.
	if sp, ok := s.index[ident]; ok {
		s.dead += int64(sp.n)
		delete(s.index, ident)
	}
	ac := make([]byte, len(agg))
	copy(ac, agg)
	s.buf[ident] = ac
	s.bufBytes += int64(len(ac))
	s.markDeltaLocked(ident, false)
	need := s.bufBytes+int64(len(s.buf))*48 > s.opts.WriteBufferBytes
	s.mu.Unlock()
	s.puts.Inc()
	if !need {
		return nil
	}
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.maybeCompactLocked()
}

// Get fetches and removes the aggregate of (key, window) (paper API:
// Get(K, W)). ok is false when no aggregate exists.
func (s *Store) Get(key []byte, w window.Window) (agg []byte, ok bool, err error) {
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpRead)
	}
	agg, ok, err = s.get(key, w)
	if stop != nil {
		stop()
	}
	return agg, ok, err
}

func (s *Store) get(key []byte, w window.Window) ([]byte, bool, error) {
	ident := id{key: string(key), w: w}

	// Fast path under mu alone: possible whenever the identity has no
	// copy in flight to disk — either a pure buffer hit (put invariant:
	// a buffered id is never also indexed) or a definitive miss.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if _, inflight := s.flushing[ident]; !inflight {
		if v, ok := s.buf[ident]; ok {
			s.bufBytes -= int64(len(v))
			delete(s.buf, ident)
			s.markDeltaLocked(ident, true)
			s.mu.Unlock()
			s.gets.Inc()
			return v, true, nil
		}
		if _, ok := s.index[ident]; !ok {
			s.mu.Unlock()
			return nil, false, nil
		}
	}
	s.mu.Unlock()

	// Slow path: wait for any in-flight flush, then read from the log.
	s.ioMu.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.ioMu.Unlock()
		return nil, false, ErrClosed
	}
	if v, ok := s.buf[ident]; ok {
		s.bufBytes -= int64(len(v))
		delete(s.buf, ident)
		s.markDeltaLocked(ident, true)
		s.mu.Unlock()
		s.ioMu.Unlock()
		s.gets.Inc()
		return v, true, nil
	}
	sp, ok := s.index[ident]
	s.mu.Unlock()
	if !ok {
		s.ioMu.Unlock()
		return nil, false, nil
	}
	lg := s.log
	var payload []byte
	var err error
	healthy := lg.Poisoned() == nil
	if healthy {
		healthy = lg.Flush() == nil
	}
	if healthy {
		// The span's bytes are on the fd now; drop ioMu before the pread
		// so point reads overlap fsyncs and flushes from other workers.
		s.ioMu.Unlock()
		payload, err = lg.ReadRecordAtRaw(sp.off, sp.n)
		if err != nil {
			// A compaction (or recovery reopen) may have swapped the
			// generation and closed lg's fd while we read without the
			// lock; retry against current state under ioMu.
			return s.reread(ident)
		}
	} else {
		// Degraded: the stitched durable-prefix+tail read walks the
		// log's mutable state, so it stays under ioMu.
		payload, err = lg.ReadRecordAt(sp.off, sp.n)
		s.ioMu.Unlock()
		if err != nil {
			return nil, false, err
		}
	}
	_, _, v, err := decodeEntry(payload)
	if err != nil {
		return nil, false, err
	}
	s.finishGet(ident, sp)
	return v, true, nil
}

// reread retries a point read that raced with a generation swap: under
// ioMu the index span is authoritative for the current log.
func (s *Store) reread(ident id) ([]byte, bool, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if v, ok := s.buf[ident]; ok {
		s.bufBytes -= int64(len(v))
		delete(s.buf, ident)
		s.markDeltaLocked(ident, true)
		s.mu.Unlock()
		s.gets.Inc()
		return v, true, nil
	}
	sp, ok := s.index[ident]
	s.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	payload, err := s.log.ReadRecordAt(sp.off, sp.n)
	if err != nil {
		return nil, false, err
	}
	_, _, v, err := decodeEntry(payload)
	if err != nil {
		return nil, false, err
	}
	s.finishGet(ident, sp)
	return v, true, nil
}

// finishGet retires a consumed index entry, tolerating a concurrent Put
// that already retired it (and accounted its dead bytes) while the
// record was being read.
func (s *Store) finishGet(ident id, sp span) {
	s.mu.Lock()
	if cur, still := s.index[ident]; still && cur == sp {
		delete(s.index, ident)
		s.dead += int64(sp.n)
		s.markDeltaLocked(ident, true)
	}
	s.mu.Unlock()
	s.gets.Inc()
}

// ForEachLive invokes fn for every live aggregate with its key and
// window, in (key, window) order, without consuming anything: buffered
// aggregates are served from memory and flushed ones are point-read from
// the log in place. Used by job rescaling to re-route committed state
// into a new worker set.
func (s *Store) ForEachLive(fn func(key []byte, w window.Window, agg []byte) error) error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	type liveAgg struct {
		ident    id
		agg      []byte
		buffered bool
		sp       span
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	live := make([]liveAgg, 0, len(s.buf)+len(s.index))
	for ident, v := range s.buf {
		live = append(live, liveAgg{ident: ident, agg: v, buffered: true})
	}
	for ident, sp := range s.index {
		if _, ok := s.buf[ident]; ok {
			continue // the buffer holds the newer value
		}
		live = append(live, liveAgg{ident: ident, sp: sp})
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, j int) bool {
		if live[i].ident.key != live[j].ident.key {
			return live[i].ident.key < live[j].ident.key
		}
		return live[i].ident.w.Before(live[j].ident.w)
	})
	for _, la := range live {
		agg := la.agg
		if !la.buffered {
			payload, err := s.log.ReadRecordAt(la.sp.off, la.sp.n)
			if err != nil {
				return err
			}
			_, _, v, err := decodeEntry(payload)
			if err != nil {
				return err
			}
			agg = v
		}
		if err := fn([]byte(la.ident.key), la.ident.w, agg); err != nil {
			return err
		}
	}
	return nil
}

func encodeEntry(dst []byte, ident id, agg []byte) []byte {
	dst = binio.PutBytes(dst, []byte(ident.key))
	dst = ident.w.AppendTo(dst)
	return binio.PutBytes(dst, agg)
}

func decodeEntry(b []byte) (key []byte, w window.Window, agg []byte, err error) {
	key, n, err := binio.Bytes(b)
	if err != nil {
		return nil, window.Window{}, nil, err
	}
	b = b[n:]
	w, n, err = window.Decode(b)
	if err != nil {
		return nil, window.Window{}, nil, err
	}
	b = b[n:]
	agg, _, err = binio.Bytes(b)
	return key, w, agg, err
}

// flushLocked spills every buffered aggregate to the log and indexes it.
// Caller holds ioMu. The buffer is detached under mu, written with only
// ioMu held (so ingestion proceeds), and installed under mu again; an id
// re-put while its batch was in flight keeps the newer buffered value and
// the flushed copy is born dead.
func (s *Store) flushLocked() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	batch := s.buf
	if len(batch) == 0 {
		s.mu.Unlock()
		return nil
	}
	s.buf = make(map[id][]byte)
	s.bufBytes = 0
	s.flushing = batch
	s.mu.Unlock()

	type wrec struct {
		ident id
		sp    span
	}
	written := make([]wrec, 0, len(batch))
	var payload []byte
	var werr error
	for ident, v := range batch {
		payload = encodeEntry(payload[:0], ident, v)
		off, n, err := s.log.Append(payload)
		if err != nil {
			werr = err
			break
		}
		written = append(written, wrec{ident, span{off: off, n: n}})
	}

	s.mu.Lock()
	s.flushing = nil
	for _, wr := range written {
		delete(batch, wr.ident)
		if _, newer := s.buf[wr.ident]; newer {
			s.dead += int64(wr.sp.n)
			continue
		}
		s.index[wr.ident] = wr.sp
	}
	if werr != nil && !DisableFlushReattach {
		// Flush failure is atomic: aggregates the log did not accept go
		// back into the live buffer (unless a newer value superseded
		// them while the batch was in flight), so no acked Put is lost.
		for ident, v := range batch {
			if _, newer := s.buf[ident]; newer {
				continue
			}
			s.buf[ident] = v
			s.bufBytes += int64(len(v))
		}
	}
	s.mu.Unlock()
	return werr
}

// spaceAmpLocked reports the log's space amplification; caller holds ioMu.
func (s *Store) spaceAmpLocked() float64 {
	total := s.log.Size()
	s.mu.Lock()
	dead := s.dead
	s.mu.Unlock()
	if total == 0 || total == dead {
		return 1.0
	}
	return float64(total) / float64(total-dead)
}

// maybeCompactLocked compacts when amplification exceeds MSA; caller
// holds ioMu.
func (s *Store) maybeCompactLocked() error {
	if s.spaceAmpLocked() <= s.opts.MaxSpaceAmplification {
		return nil
	}
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpCompact)
	}
	err := s.compactLocked()
	if stop != nil {
		stop()
	}
	if err == nil {
		s.compactions.Inc()
	}
	return err
}

// compactLocked rewrites all live (indexed) aggregates into a fresh log,
// as hash KV stores do (§4.3), and removes the old generation. Caller
// holds ioMu. The index is snapshotted under mu; entries retired by
// concurrent Puts or Gets while the rewrite ran are not re-installed, and
// their rewritten bytes are accounted dead in the new log.
func (s *Store) compactLocked() error {
	s.mu.Lock()
	snap := make(map[id]span, len(s.index))
	for ident, sp := range s.index {
		snap[ident] = sp
	}
	s.mu.Unlock()

	oldLog := s.log
	oldGen := s.gen
	if err := s.openGen(s.gen + 1); err != nil {
		s.log = oldLog
		s.gen = oldGen
		return err
	}
	abort := func() {
		// Revert to the old generation: the index still points into it,
		// so serving reads from the half-built new log would be wrong.
		bad := s.log
		s.log = oldLog
		s.gen = oldGen
		bad.Remove() // best effort; the fault may also block the unlink
	}
	newIndex := make(map[id]span, len(snap))
	for ident, sp := range snap {
		payload, err := oldLog.ReadRecordAt(sp.off, sp.n)
		if err != nil {
			abort()
			return err
		}
		off, n, err := s.log.Append(payload)
		if err != nil {
			abort()
			return err
		}
		newIndex[ident] = span{off: off, n: n}
	}

	s.mu.Lock()
	var newDead int64
	for ident, nsp := range newIndex {
		if cur, ok := s.index[ident]; ok && cur == snap[ident] {
			s.index[ident] = nsp
		} else {
			// Consumed or superseded mid-compaction: the copy just
			// written to the new log is already dead.
			newDead += int64(nsp.n)
		}
	}
	s.dead = newDead
	s.mu.Unlock()
	return oldLog.Remove()
}

// Flush spills all buffered data to disk (checkpoint support).
func (s *Store) Flush() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	return s.log.Flush()
}

// Sync flushes all buffered data and fsyncs the log, making every
// acknowledged Put durable. The fsync itself runs outside ioMu (split
// BeginSync/FinishSync), so concurrent point reads and later flushes
// overlap it instead of queueing for its whole duration; syncMu keeps
// at most one fsync in flight, as the split protocol requires.
func (s *Store) Sync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	for {
		s.ioMu.Lock()
		if err := s.flushLocked(); err != nil {
			s.ioMu.Unlock()
			return err
		}
		lg := s.log
		tok, commit, err := lg.BeginSync()
		if err != nil {
			s.ioMu.Unlock()
			return err
		}
		s.ioMu.Unlock()
		serr := commit()
		s.ioMu.Lock()
		err = lg.FinishSync(tok, serr)
		swapped := s.log != lg
		s.ioMu.Unlock()
		// A compaction or recovery that swapped the log mid-fsync makes
		// the outcome meaningless for the current generation; redo the
		// sync against current state. Swaps are rare, so this converges.
		if swapped || errors.Is(err, logfile.ErrSyncSuperseded) {
			continue
		}
		return err
	}
}

// Recover reopens a poisoned log from its durable offset, rewriting the
// retained unsynced tail, so the write path works again after the
// underlying fault has cleared.
// Poisoned returns the log's poisoning error, or nil when it is healthy.
func (s *Store) Poisoned() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	return s.log.Poisoned()
}

func (s *Store) Recover() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	if s.log.Poisoned() == nil {
		return nil
	}
	return s.log.ReopenAtDurable()
}

// Scrub verifies the live log's record frames against their checksums
// under the instance I/O lock, healing rot confined to the unsynced tail
// where the retained in-memory copy allows (see logfile.Log.Scrub). It
// returns the per-instance summary and the first unrepairable corruption.
func (s *Store) Scrub() (logfile.ScrubSummary, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	var sum logfile.ScrubSummary
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return sum, ErrClosed
	}
	r, err := s.log.Scrub()
	sum.Add(r)
	return sum, err
}

// Compactions returns the number of compactions performed.
func (s *Store) Compactions() int64 { return s.compactions.Load() }

// SpaceAmplification returns the log's current space amplification.
func (s *Store) SpaceAmplification() float64 {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	return s.spaceAmpLocked()
}

// BufferedBytes returns the current write-buffer occupancy.
func (s *Store) BufferedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bufBytes
}

// LiveStates returns the number of live (key, window) aggregates.
func (s *Store) LiveStates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.buf) + len(s.index)
	for ident := range s.flushing {
		if _, ok := s.buf[ident]; ok {
			continue
		}
		if _, ok := s.index[ident]; ok {
			continue
		}
		n++
	}
	return n
}

// DiskUsage returns the logical bytes of the instance's log, including
// appends still in its write-through buffer.
func (s *Store) DiskUsage() (int64, error) {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	return s.log.Size(), nil
}

// Close closes the store's log file, leaving state on disk.
func (s *Store) Close() error {
	s.ioMu.Lock()
	defer s.ioMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.log.Close()
}

// Destroy closes the store and deletes its directory.
func (s *Store) Destroy() error {
	err := s.Close()
	if derr := s.dir.RemoveAll(); derr != nil && err == nil {
		err = derr
	}
	return err
}
