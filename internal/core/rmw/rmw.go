// Package rmw implements FlowKV's Read-Modify-Write store (paper §4.3),
// used for window operations with associative and commutative aggregate
// functions, which keep one intermediate aggregate per (key, window)
// instead of a tuple list.
//
// Because the aggregate is read back on every tuple arrival, read-time
// prediction is useless; the store is a plain unsorted hash store — an
// in-memory hash write buffer, an in-memory hash index mapping
// (key, window) to on-disk locations, and a single append-only log file —
// but without any of the synchronization machinery concurrent hash stores
// such as FASTER carry, since each instance is owned by one worker.
// Compaction rewrites live entries into a fresh log when space
// amplification exceeds the MSA threshold.
package rmw

import (
	"errors"
	"fmt"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("rmw: store closed")

// Options configures an RMW store instance.
type Options struct {
	// Dir is the directory holding the instance's log files.
	Dir string
	// WriteBufferBytes caps the in-memory write buffer; exceeding it
	// flushes every buffered aggregate to the log. Default 32 MiB.
	WriteBufferBytes int64
	// MaxSpaceAmplification (MSA) triggers compaction when
	// total/(total-dead) log bytes exceed it. Default 1.5.
	MaxSpaceAmplification float64
	// FS is the filesystem seam; nil means the real OS filesystem.
	// Fault-injection tests substitute a faultfs.Injector.
	FS faultfs.FS
	// Breakdown receives per-operation CPU time and I/O accounting.
	Breakdown *metrics.Breakdown
}

func (o *Options) fill() {
	if o.WriteBufferBytes <= 0 {
		o.WriteBufferBytes = 32 << 20
	}
	if o.MaxSpaceAmplification <= 0 {
		o.MaxSpaceAmplification = 1.5
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
}

type id struct {
	key string
	w   window.Window
}

type span struct {
	off int64
	n   int
}

// Store is a single RMW store instance, owned by one worker goroutine.
type Store struct {
	opts Options
	dir  *logfile.Dir
	bd   *metrics.Breakdown

	buf      map[id][]byte // latest aggregate per id, not yet flushed
	bufBytes int64
	index    map[id]span // on-disk location of each flushed aggregate
	log      *logfile.Log
	gen      int
	dead     int64

	closed bool

	compactions metrics.Counter
	puts        metrics.Counter
	gets        metrics.Counter
}

// Open creates an RMW store instance rooted at opts.Dir.
func Open(opts Options) (*Store, error) {
	opts.fill()
	dir, err := logfile.OpenDirFS(opts.FS, opts.Dir, opts.Breakdown)
	if err != nil {
		return nil, err
	}
	s := &Store{
		opts:  opts,
		dir:   dir,
		bd:    opts.Breakdown,
		buf:   make(map[id][]byte),
		index: make(map[id]span),
	}
	if err := s.openGen(0); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) openGen(gen int) error {
	l, err := s.dir.Create(fmt.Sprintf("rmw-%06d.log", gen))
	if err != nil {
		return err
	}
	s.log, s.gen = l, gen
	return nil
}

// Put stores the updated aggregate for (key, window) (paper API:
// Put(K, W, A)), replacing any previous aggregate. The value is copied.
func (s *Store) Put(key []byte, w window.Window, agg []byte) error {
	if s.closed {
		return ErrClosed
	}
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpWrite)
	}
	err := s.put(key, w, agg)
	if stop != nil {
		stop()
	}
	return err
}

func (s *Store) put(key []byte, w window.Window, agg []byte) error {
	ident := id{key: string(key), w: w}
	if old, ok := s.buf[ident]; ok {
		s.bufBytes -= int64(len(old))
	}
	// A newer aggregate makes any flushed copy dead; the index entry is
	// retired at flush time, but the bytes are dead immediately.
	if sp, ok := s.index[ident]; ok {
		s.dead += int64(sp.n)
		delete(s.index, ident)
	}
	ac := make([]byte, len(agg))
	copy(ac, agg)
	s.buf[ident] = ac
	s.bufBytes += int64(len(ac))
	s.puts.Inc()
	if s.bufBytes+int64(len(s.buf))*48 > s.opts.WriteBufferBytes {
		if err := s.flush(); err != nil {
			return err
		}
		return s.maybeCompact()
	}
	return nil
}

// Get fetches and removes the aggregate of (key, window) (paper API:
// Get(K, W)). ok is false when no aggregate exists.
func (s *Store) Get(key []byte, w window.Window) (agg []byte, ok bool, err error) {
	if s.closed {
		return nil, false, ErrClosed
	}
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpRead)
	}
	agg, ok, err = s.get(key, w)
	if stop != nil {
		stop()
	}
	return agg, ok, err
}

func (s *Store) get(key []byte, w window.Window) ([]byte, bool, error) {
	ident := id{key: string(key), w: w}
	if v, ok := s.buf[ident]; ok {
		s.bufBytes -= int64(len(v))
		delete(s.buf, ident)
		return v, true, nil
	}
	sp, ok := s.index[ident]
	if !ok {
		return nil, false, nil
	}
	payload, err := s.log.ReadRecordAt(sp.off, sp.n)
	if err != nil {
		return nil, false, err
	}
	_, _, v, err := decodeEntry(payload)
	if err != nil {
		return nil, false, err
	}
	delete(s.index, ident)
	s.dead += int64(sp.n)
	s.gets.Inc()
	return v, true, nil
}

func encodeEntry(dst []byte, ident id, agg []byte) []byte {
	dst = binio.PutBytes(dst, []byte(ident.key))
	dst = ident.w.AppendTo(dst)
	return binio.PutBytes(dst, agg)
}

func decodeEntry(b []byte) (key []byte, w window.Window, agg []byte, err error) {
	key, n, err := binio.Bytes(b)
	if err != nil {
		return nil, window.Window{}, nil, err
	}
	b = b[n:]
	w, n, err = window.Decode(b)
	if err != nil {
		return nil, window.Window{}, nil, err
	}
	b = b[n:]
	agg, _, err = binio.Bytes(b)
	return key, w, agg, err
}

// flush spills every buffered aggregate to the log and indexes it.
func (s *Store) flush() error {
	var payload []byte
	for ident, v := range s.buf {
		payload = encodeEntry(payload[:0], ident, v)
		off, n, err := s.log.Append(payload)
		if err != nil {
			return err
		}
		s.index[ident] = span{off: off, n: n}
		delete(s.buf, ident)
	}
	s.bufBytes = 0
	return nil
}

func (s *Store) spaceAmp() float64 {
	total := s.log.Size()
	if total == 0 || total == s.dead {
		return 1.0
	}
	return float64(total) / float64(total-s.dead)
}

func (s *Store) maybeCompact() error {
	if s.spaceAmp() <= s.opts.MaxSpaceAmplification {
		return nil
	}
	var stop func()
	if s.bd != nil {
		stop = s.bd.Start(metrics.OpCompact)
	}
	err := s.compact()
	if stop != nil {
		stop()
	}
	if err == nil {
		s.compactions.Inc()
	}
	return err
}

// compact rewrites all live (indexed) aggregates into a fresh log, as
// hash KV stores do (§4.3), and removes the old generation.
func (s *Store) compact() error {
	oldLog := s.log
	if err := s.openGen(s.gen + 1); err != nil {
		s.log = oldLog
		return err
	}
	newIndex := make(map[id]span, len(s.index))
	for ident, sp := range s.index {
		payload, err := oldLog.ReadRecordAt(sp.off, sp.n)
		if err != nil {
			return err
		}
		off, n, err := s.log.Append(payload)
		if err != nil {
			return err
		}
		newIndex[ident] = span{off: off, n: n}
	}
	s.index = newIndex
	s.dead = 0
	return oldLog.Remove()
}

// Flush spills all buffered data to disk (checkpoint support).
func (s *Store) Flush() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.flush(); err != nil {
		return err
	}
	return s.log.Flush()
}

// Compactions returns the number of compactions performed.
func (s *Store) Compactions() int64 { return s.compactions.Load() }

// SpaceAmplification returns the log's current space amplification.
func (s *Store) SpaceAmplification() float64 { return s.spaceAmp() }

// BufferedBytes returns the current write-buffer occupancy.
func (s *Store) BufferedBytes() int64 { return s.bufBytes }

// LiveStates returns the number of live (key, window) aggregates.
func (s *Store) LiveStates() int { return len(s.buf) + len(s.index) }

// DiskUsage returns the logical bytes of the instance's log, including
// appends still in its write-through buffer.
func (s *Store) DiskUsage() (int64, error) { return s.log.Size(), nil }

// Close closes the store's log file, leaving state on disk.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.log.Close()
}

// Destroy closes the store and deletes its directory.
func (s *Store) Destroy() error {
	err := s.Close()
	if derr := s.dir.RemoveAll(); derr != nil && err == nil {
		err = derr
	}
	return err
}
