package rmw

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"flowkv/internal/metrics"
	"flowkv/internal/window"
)

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "rmw")
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Destroy() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Options{})
	w := window.Window{Start: 0, End: 100}
	if err := s.Put([]byte("k"), w, []byte("42")); err != nil {
		t.Fatal(err)
	}
	agg, ok, err := s.Get([]byte("k"), w)
	if err != nil || !ok || string(agg) != "42" {
		t.Fatalf("Get = %q,%v,%v", agg, ok, err)
	}
	// Fetch & remove: gone afterwards.
	if _, ok, _ := s.Get([]byte("k"), w); ok {
		t.Error("aggregate survived fetch & remove")
	}
}

func TestGetMissing(t *testing.T) {
	s := openTest(t, Options{})
	if _, ok, err := s.Get([]byte("nope"), window.Window{}); ok || err != nil {
		t.Errorf("missing: ok=%v err=%v", ok, err)
	}
}

func TestRMWCycle(t *testing.T) {
	// The canonical incremental-aggregation loop: Get, modify, Put.
	s := openTest(t, Options{WriteBufferBytes: 256})
	w := window.Window{Start: 0, End: 100}
	key := []byte("counter")
	for i := 0; i < 1000; i++ {
		var count uint64
		if agg, ok, err := s.Get(key, w); err != nil {
			t.Fatal(err)
		} else if ok {
			count = binary.LittleEndian.Uint64(agg)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], count+1)
		if err := s.Put(key, w, buf[:]); err != nil {
			t.Fatal(err)
		}
	}
	agg, ok, err := s.Get(key, w)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(agg); got != 1000 {
		t.Fatalf("final count = %d, want 1000", got)
	}
}

func TestPutOverwrites(t *testing.T) {
	s := openTest(t, Options{})
	w := window.Window{Start: 0, End: 100}
	s.Put([]byte("k"), w, []byte("old"))
	s.Put([]byte("k"), w, []byte("new"))
	agg, ok, _ := s.Get([]byte("k"), w)
	if !ok || string(agg) != "new" {
		t.Fatalf("Get = %q,%v", agg, ok)
	}
}

func TestKeyWindowIsolation(t *testing.T) {
	s := openTest(t, Options{})
	w1 := window.Window{Start: 0, End: 100}
	w2 := window.Window{Start: 100, End: 200}
	s.Put([]byte("k"), w1, []byte("in-w1"))
	s.Put([]byte("k"), w2, []byte("in-w2"))
	s.Put([]byte("j"), w1, []byte("j-w1"))
	if agg, _, _ := s.Get([]byte("k"), w1); string(agg) != "in-w1" {
		t.Errorf("k/w1 = %q", agg)
	}
	if agg, _, _ := s.Get([]byte("k"), w2); string(agg) != "in-w2" {
		t.Errorf("k/w2 = %q", agg)
	}
	if agg, _, _ := s.Get([]byte("j"), w1); string(agg) != "j-w1" {
		t.Errorf("j/w1 = %q", agg)
	}
}

func TestFlushedStateReadableFromDisk(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1}) // flush on every put
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := s.Put(k, w, []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.BufferedBytes() != 0 {
		t.Fatalf("buffer should be empty after forced flushes: %d", s.BufferedBytes())
	}
	for i := 99; i >= 0; i-- {
		k := []byte(fmt.Sprintf("k%03d", i))
		agg, ok, err := s.Get(k, w)
		if err != nil || !ok || string(agg) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("k%03d: %q,%v,%v", i, agg, ok, err)
		}
	}
}

func TestCompactionReclaimsSpace(t *testing.T) {
	s := openTest(t, Options{WriteBufferBytes: 1, MaxSpaceAmplification: 1.3})
	w := window.Window{Start: 0, End: 100}
	// Repeated overwrites of the same keys create dead log entries.
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			k := []byte(fmt.Sprintf("k%d", i))
			if err := s.Put(k, w, make([]byte, 200)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Compactions() == 0 {
		t.Fatal("no compactions despite heavy overwrite churn")
	}
	if amp := s.SpaceAmplification(); amp > 2.0 {
		t.Errorf("space amplification %f after compaction", amp)
	}
	// Everything still readable.
	for i := 0; i < 10; i++ {
		if _, ok, err := s.Get([]byte(fmt.Sprintf("k%d", i)), w); !ok || err != nil {
			t.Fatalf("k%d lost after compaction: %v", i, err)
		}
	}
}

func TestLiveStates(t *testing.T) {
	s := openTest(t, Options{})
	w := window.Window{Start: 0, End: 100}
	s.Put([]byte("a"), w, []byte("1"))
	s.Put([]byte("b"), w, []byte("2"))
	if got := s.LiveStates(); got != 2 {
		t.Errorf("LiveStates = %d", got)
	}
	s.Get([]byte("a"), w)
	if got := s.LiveStates(); got != 1 {
		t.Errorf("LiveStates after get = %d", got)
	}
}

func TestBreakdownAccounting(t *testing.T) {
	var bd metrics.Breakdown
	s := openTest(t, Options{WriteBufferBytes: 1, Breakdown: &bd})
	w := window.Window{Start: 0, End: 100}
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%d", i)), w, []byte("v"))
	}
	for i := 0; i < 50; i++ {
		s.Get([]byte(fmt.Sprintf("k%d", i)), w)
	}
	if bd.Calls(metrics.OpWrite) != 50 || bd.Calls(metrics.OpRead) != 50 {
		t.Errorf("op calls = %d/%d", bd.Calls(metrics.OpWrite), bd.Calls(metrics.OpRead))
	}
}

func TestClosedErrors(t *testing.T) {
	s := openTest(t, Options{})
	s.Close()
	if err := s.Put(nil, window.Window{}, nil); err != ErrClosed {
		t.Errorf("Put: %v", err)
	}
	if _, _, err := s.Get(nil, window.Window{}); err != ErrClosed {
		t.Errorf("Get: %v", err)
	}
	if err := s.Flush(); err != ErrClosed {
		t.Errorf("Flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRandomizedOverwriteWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := openTest(t, Options{WriteBufferBytes: 2048, MaxSpaceAmplification: 1.5})
	want := make(map[string]string)
	mkKW := func(i int) ([]byte, window.Window) {
		return []byte(fmt.Sprintf("key-%03d", i)), window.Window{Start: int64(i % 7 * 100), End: int64(i%7*100) + 100}
	}
	for step := 0; step < 10000; step++ {
		i := rng.Intn(300)
		k, w := mkKW(i)
		name := fmt.Sprintf("%s@%v", k, w)
		switch {
		case rng.Intn(100) < 70:
			v := fmt.Sprintf("v%08d", step)
			if err := s.Put(k, w, []byte(v)); err != nil {
				t.Fatal(err)
			}
			want[name] = v
		default:
			agg, ok, err := s.Get(k, w)
			if err != nil {
				t.Fatal(err)
			}
			wv, exists := want[name]
			if ok != exists {
				t.Fatalf("step %d %s: ok=%v want exists=%v", step, name, ok, exists)
			}
			if ok && string(agg) != wv {
				t.Fatalf("step %d %s: %q want %q", step, name, agg, wv)
			}
			delete(want, name)
		}
	}
	for i := 0; i < 300; i++ {
		k, w := mkKW(i)
		name := fmt.Sprintf("%s@%v", k, w)
		agg, ok, err := s.Get(k, w)
		if err != nil {
			t.Fatal(err)
		}
		wv, exists := want[name]
		if ok != exists || (ok && string(agg) != wv) {
			t.Fatalf("drain %s: got %q,%v want %q,%v", name, agg, ok, wv, exists)
		}
	}
}

func BenchmarkRMWCycle(b *testing.B) {
	s, err := Open(Options{Dir: filepath.Join(b.TempDir(), "rmw"), WriteBufferBytes: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Destroy()
	w := window.Window{Start: 0, End: 1 << 40}
	var buf [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := []byte(fmt.Sprintf("k%05d", i%10000))
		var count uint64
		if agg, ok, err := s.Get(k, w); err != nil {
			b.Fatal(err)
		} else if ok {
			count = binary.LittleEndian.Uint64(agg)
		}
		binary.LittleEndian.PutUint64(buf[:], count+1)
		if err := s.Put(k, w, buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}
