package core

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/clock"
	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
)

// quarantineName is the marker file that sets a corrupt checkpoint
// directory aside. A quarantined checkpoint is never restored from,
// never resolved as a delta parent (the next CheckpointDelta silently
// falls back to a full base), never counted toward retention keep-slots,
// and never garbage-collected — the rotten bytes are preserved for
// inspection but can no longer be served as valid state.
const quarantineName = "QUARANTINE"

// IsQuarantined reports whether checkpoint directory dir carries a
// quarantine marker. A nil fsys means the real OS filesystem.
func IsQuarantined(fsys faultfs.FS, dir string) bool {
	_, ok := QuarantineReason(fsys, dir)
	return ok
}

// QuarantineReason returns the reason recorded in dir's quarantine
// marker and whether the marker exists. A nil fsys means the real OS
// filesystem.
func QuarantineReason(fsys faultfs.FS, dir string) (string, bool) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	b, err := fsys.ReadFile(filepath.Join(dir, quarantineName))
	if err != nil {
		return "", false
	}
	return strings.TrimSpace(string(b)), true
}

// QuarantineCheckpoint marks checkpoint directory dir quarantined,
// recording reason in the marker. The marker is staged and atomically
// renamed into place, then the directory entry is fsynced, so a crash
// mid-quarantine leaves either no marker (the next scrub re-detects the
// corruption and retries) or a complete one — never a state where the
// checkpoint half-exists. Quarantining an already-quarantined directory
// keeps the original marker. A nil fsys means the real OS filesystem.
func QuarantineCheckpoint(fsys faultfs.FS, dir, reason string) error {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if IsQuarantined(fsys, dir) {
		return nil
	}
	marker := filepath.Join(dir, quarantineName)
	tmp := marker + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("flowkv: quarantine %s: %w", dir, err)
	}
	if _, err := f.Write([]byte(reason + "\n")); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: quarantine %s: %w", dir, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("flowkv: quarantine %s: %w", dir, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flowkv: quarantine %s: %w", dir, err)
	}
	if err := fsys.Rename(tmp, marker); err != nil {
		return fmt.Errorf("flowkv: quarantine %s: %w", dir, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("flowkv: quarantine %s: %w", dir, err)
	}
	return nil
}

// ScrubOptions configures one scrub sweep.
type ScrubOptions struct {
	// CheckpointDirs lists checkpoint parent directories — directories
	// whose immediate subdirectories are committed checkpoints, the
	// layout ListCheckpoints reads — to verify in addition to the live
	// logs. Corrupt checkpoints found there are quarantined.
	CheckpointDirs []string
	// BytesPerSec rate-limits the sweep: after each scrubbed target the
	// sweep sleeps long enough that the cumulative scan rate stays at or
	// below the budget. 0 scans at full speed.
	BytesPerSec int64
	// Clock paces the rate limit; nil uses the system clock. Tests
	// inject a fake to verify pacing without real sleeps.
	Clock clock.Clock
}

// ScrubVerdict is one scrubbed target's outcome: an instance directory
// for live-log scrubs, a checkpoint directory for checkpoint scrubs.
type ScrubVerdict struct {
	// Path is the scrubbed target.
	Path string
	// Files, Records and Bytes count what verified cleanly. Records is 0
	// for checkpoint targets (verified whole-file, not frame-by-frame).
	Files   int
	Records int
	Bytes   int64
	// Healed counts live logs whose unsynced tail was rotten on disk but
	// intact in the retained in-memory copy and was rewritten in place.
	Healed int
	// Quarantined reports a checkpoint target that is now (or already
	// was) quarantined.
	Quarantined bool
	// Err is the corruption or I/O error, nil when the target verified.
	Err error
}

// ScrubReport is the aggregate outcome of one scrub sweep.
type ScrubReport struct {
	// Verdicts holds one entry per scrubbed target, in scan order.
	Verdicts []ScrubVerdict
	// Files and Bytes total the cleanly verified data.
	Files int
	Bytes int64
	// Corrupt counts targets where corruption was detected this sweep;
	// Healed counts live logs repaired in place; Quarantined counts
	// checkpoint directories under quarantine (newly or from an earlier
	// sweep).
	Corrupt     int
	Healed      int
	Quarantined int
}

func (r *ScrubReport) add(v ScrubVerdict) {
	r.Verdicts = append(r.Verdicts, v)
	r.Files += v.Files
	r.Bytes += v.Bytes
	r.Healed += v.Healed
	if v.Err != nil {
		r.Corrupt++
	}
	if v.Quarantined {
		r.Quarantined++
	}
}

// scrubPacer spreads a sweep's reads over time so scrubbing stays a
// background activity: pace sleeps until the cumulative bytes scanned
// fit under the configured rate.
type scrubPacer struct {
	bps   int64
	clk   clock.Clock
	start time.Time
	done  int64
}

func newScrubPacer(bps int64, clk clock.Clock) *scrubPacer {
	clk = clock.Or(clk)
	return &scrubPacer{bps: bps, clk: clk, start: clk.Now()}
}

func (p *scrubPacer) pace(n int64) {
	if p.bps <= 0 {
		return
	}
	p.done += n
	budget := time.Duration(float64(p.done) / float64(p.bps) * float64(time.Second))
	if sleep := budget - p.clk.Now().Sub(p.start); sleep > 0 {
		p.clk.Sleep(sleep)
	}
}

// Scrub runs one incremental sweep over the store's live logs and the
// committed checkpoints under Options.CheckpointDirs, verifying every
// record frame and manifest checksum against the bytes actually on disk.
//
// Live logs are scrubbed one instance at a time (each scrub holds only
// that instance's I/O lock, so ingestion on other instances proceeds).
// Rot confined to an instance's unsynced tail is healed in place by the
// durable-offset truncate path; rot below the durable offset is
// unrepairable from the live log alone and is returned as the sweep
// error — the caller (a job manager, an operator) decides whether to
// fail over or restore.
//
// Corrupt checkpoints are quarantined (see QuarantineCheckpoint), which
// forces every consumer — Restore, delta-parent resolution, retention
// GC — to fall back to a verifiable generation. Checkpoint corruption is
// therefore handled, not fatal: it is recorded in the report but does
// not produce a sweep error.
func (s *Store) Scrub(opts ScrubOptions) (*ScrubReport, error) {
	rep := &ScrubReport{}
	pacer := newScrubPacer(opts.BytesPerSec, opts.Clock)
	var firstErr error
	for i := 0; i < s.opts.Instances; i++ {
		var sum logfile.ScrubSummary
		var err error
		switch s.pattern {
		case PatternAAR:
			sum, err = s.aars[i].Scrub()
		case PatternAUR:
			sum, err = s.aurs[i].Scrub()
		default:
			sum, err = s.rmws[i].Scrub()
		}
		rep.add(ScrubVerdict{
			Path:    instDir(s.opts.Dir, i),
			Files:   sum.Files,
			Records: sum.Records,
			Bytes:   sum.Bytes,
			Healed:  sum.Healed,
			Err:     err,
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
		pacer.pace(sum.Bytes)
	}
	for _, dir := range opts.CheckpointDirs {
		s.scrubCheckpointParent(dir, rep, pacer)
	}
	s.scrubFiles.Add(int64(rep.Files))
	s.scrubBytes.Add(rep.Bytes)
	s.scrubCorrupt.Add(int64(rep.Corrupt))
	s.scrubHealed.Add(int64(rep.Healed))
	s.scrubQuarantined.Add(int64(rep.Quarantined))
	return rep, firstErr
}

// scrubCheckpointParent verifies every committed checkpoint under
// parent against its MANIFEST and quarantines the ones that fail.
// In-flight ".tmp"/".old" staging directories and directories without a
// MANIFEST (live store data) are skipped.
func (s *Store) scrubCheckpointParent(parent string, rep *ScrubReport, pacer *scrubPacer) {
	fsys := s.opts.FS
	ents, err := fsys.ReadDir(parent)
	if err != nil {
		rep.add(ScrubVerdict{Path: parent, Err: fmt.Errorf("flowkv: scrub: %w", err)})
		return
	}
	for _, e := range ents {
		if !e.IsDir() ||
			strings.HasSuffix(e.Name(), ".tmp") || strings.HasSuffix(e.Name(), ".old") {
			continue
		}
		dir := filepath.Join(parent, e.Name())
		if reason, ok := QuarantineReason(fsys, dir); ok {
			rep.add(ScrubVerdict{Path: dir, Quarantined: true,
				Err: &CheckpointError{Dir: dir, Reason: "quarantined: " + reason}})
			continue
		}
		b, rerr := fsys.ReadFile(filepath.Join(dir, manifestName))
		if rerr != nil {
			if errors.Is(rerr, fs.ErrNotExist) {
				continue // not a checkpoint directory
			}
			rep.add(ScrubVerdict{Path: dir,
				Err: &CheckpointError{Dir: dir, Reason: fmt.Sprintf("unreadable MANIFEST: %v", rerr)}})
			continue
		}
		m, reason := parseManifest(b)
		if reason != "" {
			verr := &CheckpointError{Dir: dir, File: manifestName, Reason: reason}
			s.quarantineScrubbed(dir, verr, rep)
			continue
		}
		var total int64
		for _, me := range m.entries {
			total += me.size
		}
		if verr := verifyContents(fsys, dir, m.entries); verr != nil {
			s.quarantineScrubbed(dir, verr, rep)
			pacer.pace(total)
			continue
		}
		rep.add(ScrubVerdict{Path: dir, Files: len(m.entries) + 1, Bytes: total})
		pacer.pace(total)
	}
}

// quarantineScrubbed quarantines dir for verr and records the verdict.
// A failed quarantine (e.g. a read-only filesystem) still reports the
// corruption; the marker is retried next sweep.
func (s *Store) quarantineScrubbed(dir string, verr error, rep *ScrubReport) {
	v := ScrubVerdict{Path: dir, Err: verr}
	if qerr := QuarantineCheckpoint(s.opts.FS, dir, verr.Error()); qerr == nil {
		v.Quarantined = true
	} else {
		v.Err = fmt.Errorf("%w (quarantine failed: %v)", verr, qerr)
	}
	rep.add(v)
}

// firstCorruptFrame locates the first record frame in b that fails its
// checksum, for error reports that name an offset rather than just a
// file. It returns -1 when the frames scan cleanly (the mismatch lies in
// non-framed bytes) or the file is not frame-structured.
func firstCorruptFrame(b []byte) int64 {
	sc := binio.NewRecordScannerSniff(bytes.NewReader(b), 0)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil && errors.Is(err, binio.ErrCorrupt) {
		return sc.Offset()
	}
	return -1
}

// ScrubberOptions configures a background scrubber started with
// Store.StartScrubber.
type ScrubberOptions struct {
	// Interval is the pause between sweeps. Default 30s.
	Interval time.Duration
	// Scrub configures each sweep (checkpoint directories, rate limit).
	Scrub ScrubOptions
	// OnSweep, when non-nil, is called after every sweep with its report
	// and error. Called from the scrubber goroutine; keep it cheap.
	OnSweep func(*ScrubReport, error)
	// Clock paces the sweep interval; nil uses the system clock.
	Clock clock.Clock
}

// Scrubber is a background integrity sweeper: at every interval it runs
// Store.Scrub, healing what the retained tails allow and quarantining
// corrupt checkpoints, so silent rot is found by the scrubber before a
// restore needs the bytes. Stop it before closing the store.
type Scrubber struct {
	s    *Store
	opts ScrubberOptions

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	sweeps  atomic.Int64
	corrupt atomic.Int64

	mu      sync.Mutex
	lastErr error
	lastRep *ScrubReport
}

// StartScrubber launches a background scrubber for the store.
func (s *Store) StartScrubber(opts ScrubberOptions) *Scrubber {
	if opts.Interval <= 0 {
		opts.Interval = 30 * time.Second
	}
	sc := &Scrubber{s: s, opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	go sc.run()
	return sc
}

func (sc *Scrubber) run() {
	defer close(sc.done)
	clk := clock.Or(sc.opts.Clock)
	for {
		select {
		case <-sc.stop:
			return
		case <-clk.After(sc.opts.Interval):
		}
		rep, err := sc.s.Scrub(sc.opts.Scrub)
		sc.sweeps.Add(1)
		sc.corrupt.Add(int64(rep.Corrupt))
		sc.mu.Lock()
		sc.lastErr = err
		sc.lastRep = rep
		sc.mu.Unlock()
		if sc.opts.OnSweep != nil {
			sc.opts.OnSweep(rep, err)
		}
	}
}

// Stop halts the scrubber and waits for its goroutine to exit. Safe to
// call more than once.
func (sc *Scrubber) Stop() {
	sc.stopOnce.Do(func() { close(sc.stop) })
	<-sc.done
}

// Sweeps returns how many sweeps have completed.
func (sc *Scrubber) Sweeps() int64 { return sc.sweeps.Load() }

// CorruptFound returns how many corrupt targets all sweeps found.
func (sc *Scrubber) CorruptFound() int64 { return sc.corrupt.Load() }

// Last returns the most recent sweep's report and error (nil, nil
// before the first sweep completes).
func (sc *Scrubber) Last() (*ScrubReport, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.lastRep, sc.lastErr
}
