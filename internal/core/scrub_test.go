package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"flowkv/internal/faultfs"
	"flowkv/internal/window"
)

func fillStore(t *testing.T, s *Store, n int) {
	t.Helper()
	w := window.Window{Start: 0, End: 1000}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i%16))
		v := []byte(fmt.Sprintf("value-%05d", i))
		if err := s.Append(k, v, w, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// rotCheckpointFile flips one byte in a manifest-covered checkpoint
// file (never the MANIFEST itself), returning the path it damaged.
func rotCheckpointFile(t *testing.T, dir string) string {
	t.Helper()
	var target string
	var size int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if name == "MANIFEST" || name == "QUARANTINE" {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		if info.Size() > size {
			target, size = path, info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if target == "" {
		t.Fatalf("no corruptible file under %s", dir)
	}
	if err := faultfs.CorruptAtRest(nil, target, faultfs.CorruptBitFlip, -1); err != nil {
		t.Fatal(err)
	}
	return target
}

func TestScrubCleanStoreCountsEverything(t *testing.T) {
	s := openStore(t, AggHolistic, window.Fixed, Options{Instances: 2, WriteBufferBytes: 256})
	fillStore(t, s, 200)
	ckpt := filepath.Join(t.TempDir(), "cp", "gen-1")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(ScrubOptions{CheckpointDirs: []string{filepath.Dir(ckpt)}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 || rep.Quarantined != 0 || rep.Healed != 0 {
		t.Fatalf("clean sweep reported damage: %+v", rep)
	}
	if rep.Files == 0 || rep.Bytes == 0 {
		t.Fatalf("sweep scanned nothing: %+v", rep)
	}
	// One verdict per instance plus one per checkpoint.
	if len(rep.Verdicts) != s.Instances()+1 {
		t.Fatalf("verdicts: %d, want %d", len(rep.Verdicts), s.Instances()+1)
	}
	st := s.Stats()
	if st.ScrubbedFiles == 0 || st.ScrubbedBytes == 0 || st.ScrubCorrupt != 0 {
		t.Fatalf("stats not fed: %+v", st)
	}
}

// A corrupt checkpoint is quarantined by the sweep — recorded, not a
// sweep error — and every consumer afterwards refuses it: Restore,
// verification, and the next delta falls back to a full base.
func TestScrubQuarantinesCorruptCheckpoint(t *testing.T) {
	opts := Options{Instances: 2, WriteBufferBytes: 256}
	s := openStore(t, AggHolistic, window.Fixed, opts)
	fillStore(t, s, 200)
	parent := filepath.Join(t.TempDir(), "cp")
	ckpt := filepath.Join(parent, "gen-1")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	rotCheckpointFile(t, ckpt)

	rep, err := s.Scrub(ScrubOptions{CheckpointDirs: []string{parent}})
	if err != nil {
		t.Fatalf("checkpoint rot must not be a sweep error, got %v", err)
	}
	if rep.Corrupt != 1 || rep.Quarantined != 1 {
		t.Fatalf("sweep: %+v", rep)
	}
	if !IsQuarantined(nil, ckpt) {
		t.Fatal("checkpoint not quarantined")
	}
	reason, _ := QuarantineReason(nil, ckpt)
	if reason == "" {
		t.Fatal("quarantine reason empty")
	}

	// The quarantined checkpoint can no longer be served as valid state.
	dst := openStore(t, AggHolistic, window.Fixed, Options{Instances: 2, WriteBufferBytes: 256})
	if err := dst.Restore(ckpt); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("restore of quarantined checkpoint: %v", err)
	}
	if _, _, err := VerifyCheckpointDir(nil, ckpt); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("verify of quarantined checkpoint: %v", err)
	}

	// A delta against the quarantined parent silently falls back to a
	// full base — and that base restores.
	delta := filepath.Join(parent, "gen-2")
	if err := s.CheckpointDelta(delta, ckpt, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifyCheckpointDir(nil, delta); err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(delta); err != nil {
		t.Fatal(err)
	}

	// Re-sweeping reports the standing quarantine without stacking
	// fresh markers or failing the sweep.
	rep, err = s.Scrub(ScrubOptions{CheckpointDirs: []string{parent}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 {
		t.Fatalf("re-sweep: %+v", rep)
	}
	if r2, _ := QuarantineReason(nil, ckpt); r2 != reason {
		t.Fatalf("quarantine reason changed: %q -> %q", reason, r2)
	}
}

// Quarantined checkpoints sit outside retention entirely: they never
// occupy a keep slot (rot must not shadow a restorable generation) and
// are never garbage-collected (the evidence is preserved).
func TestQuarantineOutsideRetention(t *testing.T) {
	opts := Options{Instances: 1, WriteBufferBytes: 256, RetainCheckpoints: 2}
	s := openStore(t, AggHolistic, window.Fixed, opts)
	parent := filepath.Join(t.TempDir(), "cp")
	var dirs []string
	for i := 1; i <= 2; i++ {
		fillStore(t, s, 50)
		dir := filepath.Join(parent, fmt.Sprintf("gen-%d", i))
		if err := s.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, dir)
	}
	rotCheckpointFile(t, dirs[1])
	if _, err := s.Scrub(ScrubOptions{CheckpointDirs: []string{parent}}); err != nil {
		t.Fatal(err)
	}
	if !IsQuarantined(nil, dirs[1]) {
		t.Fatal("gen-2 not quarantined")
	}

	// Two more checkpoints: with keep=2 and gen-2 quarantined, the keep
	// slots must go to gen-3 and gen-4 while gen-1 rotates out — and the
	// quarantined gen-2 must survive GC untouched.
	for i := 3; i <= 4; i++ {
		fillStore(t, s, 50)
		dir := filepath.Join(parent, fmt.Sprintf("gen-%d", i))
		if err := s.Checkpoint(dir); err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, dir)
	}
	if _, err := os.Stat(dirs[0]); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("gen-1 should have rotated out: %v", err)
	}
	if _, err := os.Stat(dirs[1]); err != nil {
		t.Fatalf("quarantined gen-2 was collected: %v", err)
	}
	for _, dir := range dirs[2:] {
		if _, _, err := VerifyCheckpointDir(nil, dir); err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
	}

	// ListCheckpoints reports the quarantined generation as failed.
	infos, err := ListCheckpoints(nil, parent)
	if err != nil {
		t.Fatal(err)
	}
	var quarantined int
	for _, ci := range infos {
		if ci.Path == dirs[1] {
			if !errors.Is(ci.Err, ErrCheckpointInvalid) {
				t.Fatalf("quarantined checkpoint listed as %v", ci.Err)
			}
			quarantined++
		} else if ci.Err != nil {
			t.Fatalf("%s: %v", ci.Path, ci.Err)
		}
	}
	if quarantined != 1 {
		t.Fatalf("quarantined listings: %d", quarantined)
	}
}

// The enriched checksum-mismatch error names the file and, when the
// damage sits inside a framed record, the offset of the first corrupt
// frame.
func TestCheckpointErrorNamesFileAndOffset(t *testing.T) {
	s := openStore(t, AggHolistic, window.Fixed, Options{Instances: 1, WriteBufferBytes: 256})
	fillStore(t, s, 100)
	ckpt := filepath.Join(t.TempDir(), "cp", "gen-1")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	rotCheckpointFile(t, ckpt)
	_, _, err := VerifyCheckpointDir(nil, ckpt)
	var ce *CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CheckpointError, got %v", err)
	}
	if ce.File == "" {
		t.Fatalf("error does not name the file: %v", ce)
	}
	for _, want := range []string{"checksum mismatch", "manifest"} {
		if !contains(ce.Reason, want) {
			t.Fatalf("reason %q missing %q", ce.Reason, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestQuarantineIdempotentAndCrashSafe(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cp")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := QuarantineCheckpoint(nil, dir, "first reason"); err != nil {
		t.Fatal(err)
	}
	if err := QuarantineCheckpoint(nil, dir, "second reason"); err != nil {
		t.Fatal(err)
	}
	reason, ok := QuarantineReason(nil, dir)
	if !ok || reason != "first reason" {
		t.Fatalf("reason %q ok=%v", reason, ok)
	}
}

// The background scrubber sweeps on its interval and surfaces its
// reports; rot planted between sweeps is picked up by the next one.
func TestScrubberFindsPlantedRot(t *testing.T) {
	s := openStore(t, AggHolistic, window.Fixed, Options{Instances: 1, WriteBufferBytes: 256})
	fillStore(t, s, 100)
	parent := filepath.Join(t.TempDir(), "cp")
	ckpt := filepath.Join(parent, "gen-1")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	sweeps := make(chan struct{}, 64)
	sc := s.StartScrubber(ScrubberOptions{
		Interval: 5 * time.Millisecond,
		Scrub:    ScrubOptions{CheckpointDirs: []string{parent}},
		OnSweep:  func(*ScrubReport, error) { sweeps <- struct{}{} },
	})
	defer sc.Stop()
	<-sweeps // one clean sweep completed
	rotCheckpointFile(t, ckpt)
	deadline := time.After(5 * time.Second)
	for !IsQuarantined(nil, ckpt) {
		select {
		case <-sweeps:
		case <-deadline:
			t.Fatal("scrubber never quarantined the planted rot")
		}
	}
	sc.Stop()
	if sc.Sweeps() == 0 || sc.CorruptFound() == 0 {
		t.Fatalf("scrubber counters: sweeps=%d corrupt=%d", sc.Sweeps(), sc.CorruptFound())
	}
	rep, err := sc.Last()
	if rep == nil {
		t.Fatal("no last report")
	}
	if err != nil {
		t.Fatalf("checkpoint rot must not fail the sweep: %v", err)
	}
}

// A rate-limited sweep takes at least bytes/bps seconds.
func TestScrubPacerLimitsRate(t *testing.T) {
	s := openStore(t, AggHolistic, window.Fixed, Options{Instances: 1, WriteBufferBytes: 256})
	fillStore(t, s, 200)
	rep, err := s.Scrub(ScrubOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes == 0 {
		t.Skip("nothing to pace")
	}
	bps := rep.Bytes * 10 // ~100ms budget
	start := time.Now()
	if _, err := s.Scrub(ScrubOptions{BytesPerSec: bps}); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("paced sweep finished in %v, want >= 50ms", el)
	}
}

// A crash while writing the quarantine marker must leave either no
// marker (the next sweep re-detects and retries) or a complete one —
// never a half-quarantined checkpoint.
func TestScrubQuarantineCrashSafe(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	s := openStore(t, AggHolistic, window.Fixed,
		Options{Instances: 1, WriteBufferBytes: 256, FS: inj})
	fillStore(t, s, 100)
	parent := filepath.Join(t.TempDir(), "cp")
	ckpt := filepath.Join(parent, "gen-1")
	if err := s.Checkpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	rotCheckpointFile(t, ckpt)

	// Crash the process mid-quarantine: the marker's atomic rename dies.
	inj.SetRule(faultfs.Rule{Op: faultfs.OpRename, PathContains: quarantineName, Crash: true})
	rep, err := s.Scrub(ScrubOptions{CheckpointDirs: []string{parent}})
	if err != nil {
		t.Fatalf("checkpoint rot must not fail the sweep: %v", err)
	}
	if !inj.Fired() {
		t.Fatal("quarantine rename fault did not fire")
	}
	if rep.Corrupt != 1 || rep.Quarantined != 0 {
		t.Fatalf("mid-crash sweep: %+v", rep)
	}
	if IsQuarantined(nil, ckpt) {
		t.Fatal("half-written quarantine marker visible after crash")
	}

	// "Restart": a fresh store over a healthy filesystem re-detects the
	// rot on its next sweep and completes the quarantine.
	inj.Reset()
	s2 := openStore(t, AggHolistic, window.Fixed, Options{Instances: 1, WriteBufferBytes: 256})
	rep, err = s2.Scrub(ScrubOptions{CheckpointDirs: []string{parent}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Quarantined != 1 {
		t.Fatalf("post-restart sweep: %+v", rep)
	}
	if !IsQuarantined(nil, ckpt) {
		t.Fatal("rot not quarantined after restart")
	}
}
