package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// SelfHealOptions configures a background recoverer started with
// Store.StartSelfHealer.
type SelfHealOptions struct {
	// Interval is how often the healer polls the store's health while it
	// is Healthy. Default 5ms.
	Interval time.Duration
	// InitialBackoff is the delay before retrying after a failed
	// Recover; it doubles on every consecutive failure up to MaxBackoff.
	// Defaults 10ms and 1s.
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	// MaxAttempts bounds consecutive failed Recover attempts before the
	// healer gives up (the store is left Failed and GaveUp reports
	// true). 0 means retry forever.
	MaxAttempts int
	// OnEvent, when non-nil, is called after every recovery attempt with
	// the store's resulting health and the attempt's error (nil on a
	// successful heal). Called from the healer goroutine; keep it cheap.
	OnEvent func(h Health, err error)
}

// SelfHealer is a supervised background recoverer: it watches the
// store's health and drives Degraded (or Failed) states through
// Recover() with exponential backoff. Recover reopens poisoned logs at
// their durable offset, so a heal never invents state — if recovery
// itself faults, the store re-fails cleanly (Recover moves it to
// Failed) and the healer backs off and retries, up to MaxAttempts.
type SelfHealer struct {
	s    *Store
	opts SelfHealOptions

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	attempts atomic.Int64
	heals    atomic.Int64

	mu      sync.Mutex
	lastErr error
	gaveUp  bool
}

// StartSelfHealer launches a background recoverer for the store. Stop it
// with Stop before closing the store. Multiple healers on one store are
// safe (Recover is serialized by the instance I/O locks) but pointless.
func (s *Store) StartSelfHealer(opts SelfHealOptions) *SelfHealer {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Millisecond
	}
	if opts.InitialBackoff <= 0 {
		opts.InitialBackoff = 10 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = time.Second
	}
	h := &SelfHealer{s: s, opts: opts, stop: make(chan struct{}), done: make(chan struct{})}
	go h.run()
	return h
}

func (h *SelfHealer) run() {
	defer close(h.done)
	backoff := h.opts.InitialBackoff
	consecutive := 0
	wait := h.opts.Interval
	for {
		select {
		case <-h.stop:
			return
		case <-time.After(wait):
		}
		if h.s.Health() == Healthy {
			backoff = h.opts.InitialBackoff
			consecutive = 0
			wait = h.opts.Interval
			continue
		}
		h.attempts.Add(1)
		err := h.s.Recover()
		h.mu.Lock()
		h.lastErr = err
		h.mu.Unlock()
		if h.opts.OnEvent != nil {
			h.opts.OnEvent(h.s.Health(), err)
		}
		if err == nil {
			h.heals.Add(1)
			backoff = h.opts.InitialBackoff
			consecutive = 0
			wait = h.opts.Interval
			continue
		}
		consecutive++
		if h.opts.MaxAttempts > 0 && consecutive >= h.opts.MaxAttempts {
			h.mu.Lock()
			h.gaveUp = true
			h.mu.Unlock()
			return
		}
		wait = backoff
		backoff *= 2
		if backoff > h.opts.MaxBackoff {
			backoff = h.opts.MaxBackoff
		}
	}
}

// Stop halts the healer and waits for its goroutine to exit. Safe to
// call more than once, and after the healer has given up.
func (h *SelfHealer) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	<-h.done
}

// Attempts returns how many Recover calls the healer has made.
func (h *SelfHealer) Attempts() int64 { return h.attempts.Load() }

// Heals returns how many of those attempts succeeded.
func (h *SelfHealer) Heals() int64 { return h.heals.Load() }

// LastErr returns the most recent Recover error (nil after a successful
// heal).
func (h *SelfHealer) LastErr() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lastErr
}

// GaveUp reports whether the healer exhausted MaxAttempts consecutive
// failed recoveries and stopped retrying; the store is left Failed.
func (h *SelfHealer) GaveUp() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.gaveUp
}
