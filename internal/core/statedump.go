package core

import (
	"fmt"
	"sync"

	"flowkv/internal/window"
)

// StateEntry is one live unit of state surfaced by ForEachState: a key,
// its window, and either the appended values (AAR/AUR patterns) or the
// read-modify-write aggregate (RMW pattern).
type StateEntry struct {
	Key    []byte
	Window window.Window
	// Values holds appended state in append order (AAR/AUR).
	Values [][]byte
	// Agg holds the RMW aggregate; HasAgg distinguishes an aggregate
	// entry from appended-state entries.
	Agg    []byte
	HasAgg bool
	// MaxTS is the maximum event timestamp observed for the entry (AUR
	// Stat table; zero elsewhere). Re-appending with it re-seeds ETT
	// estimation in the receiving store.
	MaxTS int64
}

// ForEachState enumerates every live unit of state across all instances
// without consuming anything — the export side of job rescaling: a
// restored checkpoint is dumped entry by entry and re-routed into a new
// worker set by key hash. Entries are ordered within an instance
// ((key, window) for AUR/RMW, window-major for AAR); cross-instance
// order follows instance index.
func (s *Store) ForEachState(fn func(StateEntry) error) error {
	if err := s.guardRead(); err != nil {
		return err
	}
	switch s.pattern {
	case PatternAAR:
		for _, st := range s.aars {
			for _, w := range st.Windows() {
				kvs, err := st.ReadWindowFiltered(w, nil)
				if err != nil {
					return fmt.Errorf("flowkv: dump window %v: %w", w, err)
				}
				for _, kv := range kvs {
					if err := fn(StateEntry{Key: kv.Key, Window: w, Values: kv.Values}); err != nil {
						return err
					}
				}
			}
		}
	case PatternAUR:
		for _, st := range s.aurs {
			err := st.ForEachLive(func(key []byte, w window.Window, values [][]byte, maxTS int64) error {
				return fn(StateEntry{Key: key, Window: w, Values: values, MaxTS: maxTS})
			})
			if err != nil {
				return err
			}
		}
	case PatternRMW:
		for _, st := range s.rmws {
			err := st.ForEachLive(func(key []byte, w window.Window, agg []byte) error {
				return fn(StateEntry{Key: key, Window: w, Agg: agg, HasAgg: true})
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadWindowOwned returns window w's state restricted to the keys the
// own predicate accepts (nil accepts every key), grouped by key, without
// consuming the window (AAR only). This is the shared-backend trigger
// path: each worker of a stage sharing one store drains only the key
// range it owns, and the window is dropped wholesale (DropWindow) once
// every owner has fired. It must not overlap a destructive GetWindow
// drain of the same window.
func (s *Store) ReadWindowOwned(w window.Window, own func(key []byte) bool) ([]KeyValues, error) {
	if s.pattern != PatternAAR {
		return nil, ErrWrongPattern
	}
	if err := s.guardRead(); err != nil {
		return nil, err
	}
	var (
		mu  sync.Mutex
		out []KeyValues
	)
	err := s.eachInstance(func(i int) error {
		part, err := s.aars[i].ReadWindowFiltered(w, own)
		if err != nil {
			return err
		}
		if len(part) > 0 {
			mu.Lock()
			out = append(out, part...)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
