// Package faster implements a hash-index + hybrid-log key-value store,
// the repository's stand-in for Microsoft FASTER as an SPE state backend.
// It reproduces the structural properties the paper's Faster results rest
// on (§2.2):
//
//   - an in-memory hash index mapping keys to log addresses gives O(1)
//     point access, which is why Faster wins on RMW workloads;
//   - a hybrid log whose tail lives in memory: records in the mutable
//     region are updated in place, older records spill to disk and are
//     read back with positional I/O;
//   - no native Append: list-append is read-copy-update — every
//     Append reads the entire existing list and rewrites it, the I/O
//     amplification that makes Faster collapse on append workloads;
//   - synchronization on every operation. FASTER is built for concurrent
//     access (epoch protection, latched hash buckets); those costs are
//     pure overhead for an SPE's single-threaded workers, so the store
//     faithfully pays them: an atomic epoch acquire/release plus a
//     sharded bucket lock per operation (disable with Options.NoSync for
//     the ablation).
package faster

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"flowkv/internal/binio"
	"flowkv/internal/metrics"
)

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("faster: closed")

// Options configures a store.
type Options struct {
	// Dir is the store directory (created if missing).
	Dir string
	// MemoryBytes sizes the in-memory tail of the hybrid log. Half of it
	// is the mutable (in-place updatable) region. Default 16 MiB.
	MemoryBytes int64
	// MaxSpaceAmplification triggers a fold-over compaction of the log
	// when total/(total-dead) bytes exceed it. Default 2.0 (hash logs
	// tolerate more garbage than sorted stores).
	MaxSpaceAmplification float64
	// NoSync disables the epoch/latch synchronization cost model
	// (ablation: what Faster would cost if it dropped concurrency
	// machinery for single-threaded SPE workers).
	NoSync bool
	// Breakdown receives per-operation CPU time and I/O accounting.
	Breakdown *metrics.Breakdown
}

func (o *Options) fill() {
	if o.MemoryBytes <= 0 {
		o.MemoryBytes = 16 << 20
	}
	if o.MaxSpaceAmplification <= 0 {
		o.MaxSpaceAmplification = 2.0
	}
}

// DB is a single hybrid-log store instance.
type DB struct {
	opts Options
	bd   *metrics.Breakdown

	index map[string]int64 // key -> log address of newest record

	// Hybrid log: addresses < flushedAddr live in the file at offset ==
	// address; addresses >= flushedAddr live in buf.
	f           *os.File
	buf         []byte
	flushedAddr int64
	dead        int64
	gen         int

	// Synchronization cost model.
	epoch   atomic.Uint64
	buckets [16]sync.Mutex

	closed bool

	compactions metrics.Counter
	reads       metrics.Counter
	upserts     metrics.Counter
}

// Open creates a store rooted at opts.Dir.
func Open(opts Options) (*DB, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("faster: open: %w", err)
	}
	db := &DB{opts: opts, bd: opts.Breakdown, index: make(map[string]int64)}
	if err := db.openGen(0); err != nil {
		return nil, err
	}
	return db, nil
}

func (db *DB) openGen(gen int) error {
	f, err := os.OpenFile(filepath.Join(db.opts.Dir, fmt.Sprintf("hlog-%06d", gen)),
		os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("faster: hybrid log: %w", err)
	}
	db.f, db.gen = f, gen
	// A fresh buffer, not buf[:0]: compaction still reads the old
	// generation's in-memory region while filling the new one.
	db.buf = nil
	db.flushedAddr = 0
	db.dead = 0
	return nil
}

// enter/exit model FASTER's per-operation epoch protection and hash
// bucket latching — synchronization an SPE's single-threaded workers
// never need (§2.2).
func (db *DB) enter(key []byte) func() {
	if db.opts.NoSync {
		return func() {}
	}
	db.epoch.Add(1)
	var h uint32
	for _, b := range key {
		h = h*31 + uint32(b)
	}
	mu := &db.buckets[h%uint32(len(db.buckets))]
	mu.Lock()
	return func() {
		mu.Unlock()
		db.epoch.Add(1)
	}
}

func (db *DB) tailAddr() int64 { return db.flushedAddr + int64(len(db.buf)) }

func (db *DB) mutableBase() int64 {
	base := db.tailAddr() - db.opts.MemoryBytes/2
	if base < db.flushedAddr {
		base = db.flushedAddr
	}
	return base
}

// record layout: keyLen(uvarint) valLen(uvarint) key val

func appendRecord(dst, key, val []byte) []byte {
	dst = binio.PutUvarint(dst, uint64(len(key)))
	dst = binio.PutUvarint(dst, uint64(len(val)))
	dst = append(dst, key...)
	return append(dst, val...)
}

func parseRecord(b []byte) (key, val []byte, n int, err error) {
	kl, n1, err := binio.Uvarint(b)
	if err != nil {
		return nil, nil, 0, err
	}
	vl, n2, err := binio.Uvarint(b[n1:])
	if err != nil {
		return nil, nil, 0, err
	}
	head := n1 + n2
	if uint64(len(b)-head) < kl+vl {
		return nil, nil, 0, binio.ErrShortBuffer
	}
	key = b[head : head+int(kl)]
	val = b[head+int(kl) : head+int(kl)+int(vl)]
	return key, val, head + int(kl) + int(vl), nil
}

// readAt returns the record at the given log address.
func (db *DB) readAt(addr int64) (key, val []byte, err error) {
	if addr >= db.flushedAddr {
		key, val, _, err = parseRecord(db.buf[addr-db.flushedAddr:])
		return key, val, err
	}
	// On-disk record: read the header area first, then the body.
	var hdr [24]byte
	n, err := db.f.ReadAt(hdr[:], addr)
	if err != nil && n == 0 {
		return nil, nil, fmt.Errorf("faster: read header at %d: %w", addr, err)
	}
	kl, n1, err := binio.Uvarint(hdr[:n])
	if err != nil {
		return nil, nil, err
	}
	vl, n2, err := binio.Uvarint(hdr[n1:n])
	if err != nil {
		return nil, nil, err
	}
	body := make([]byte, int(kl)+int(vl))
	if _, err := db.f.ReadAt(body, addr+int64(n1+n2)); err != nil {
		return nil, nil, fmt.Errorf("faster: read body at %d: %w", addr, err)
	}
	if db.bd != nil {
		db.bd.AddBytesRead(int64(n1 + n2 + len(body)))
	}
	return body[:kl], body[kl:], nil
}

// appendToLog appends a record at the tail, spilling the cold half of the
// in-memory region to disk when it overflows.
func (db *DB) appendToLog(key, val []byte) (int64, error) {
	addr := db.tailAddr()
	db.buf = appendRecord(db.buf, key, val)
	if int64(len(db.buf)) > db.opts.MemoryBytes {
		// Spill roughly half the region, rounded up to a record boundary
		// so no record straddles the disk/memory split.
		spill := 0
		for spill < len(db.buf)/2 {
			_, _, n, err := parseRecord(db.buf[spill:])
			if err != nil {
				return 0, fmt.Errorf("faster: spill boundary: %w", err)
			}
			spill += n
		}
		if _, err := db.f.WriteAt(db.buf[:spill], db.flushedAddr); err != nil {
			return 0, fmt.Errorf("faster: spill: %w", err)
		}
		if db.bd != nil {
			db.bd.AddBytesWritten(int64(spill))
		}
		db.buf = append(db.buf[:0], db.buf[spill:]...)
		db.flushedAddr += int64(spill)
	}
	return addr, nil
}

// Upsert sets key to val.
func (db *DB) Upsert(key, val []byte) error {
	if db.closed {
		return ErrClosed
	}
	var stop func()
	if db.bd != nil {
		stop = db.bd.Start(metrics.OpWrite)
	}
	exit := db.enter(key)
	err := db.upsert(key, val)
	exit()
	if stop != nil {
		stop()
	}
	if err != nil {
		return err
	}
	return db.maybeCompact()
}

func (db *DB) upsert(key, val []byte) error {
	db.upserts.Inc()
	if addr, ok := db.index[string(key)]; ok && addr >= db.mutableBase() {
		// In-place update when the new value fits exactly (the common
		// case for fixed-size aggregates, FASTER's fast path).
		rec := db.buf[addr-db.flushedAddr:]
		k, v, _, err := parseRecord(rec)
		if err != nil {
			return err
		}
		if len(v) == len(val) {
			copy(v, val)
			_ = k
			return nil
		}
		db.dead += int64(recordLen(k, v))
	} else if ok {
		oldKey, oldVal, err := db.readAt(addr)
		if err == nil {
			db.dead += int64(recordLen(oldKey, oldVal))
		}
	}
	newAddr, err := db.appendToLog(key, val)
	if err != nil {
		return err
	}
	db.index[string(key)] = newAddr
	return nil
}

func recordLen(key, val []byte) int {
	return len(appendRecord(nil, key, val)) // small keys: cheap enough
}

// Read returns the value of key; ok is false when absent.
func (db *DB) Read(key []byte) (val []byte, ok bool, err error) {
	if db.closed {
		return nil, false, ErrClosed
	}
	var stop func()
	if db.bd != nil {
		stop = db.bd.Start(metrics.OpRead)
	}
	exit := db.enter(key)
	val, ok, err = db.read(key)
	exit()
	if stop != nil {
		stop()
	}
	return val, ok, err
}

func (db *DB) read(key []byte) ([]byte, bool, error) {
	db.reads.Inc()
	addr, ok := db.index[string(key)]
	if !ok {
		return nil, false, nil
	}
	_, v, err := db.readAt(addr)
	if err != nil {
		return nil, false, err
	}
	return append([]byte(nil), v...), true, nil
}

// Delete removes key.
func (db *DB) Delete(key []byte) error {
	if db.closed {
		return ErrClosed
	}
	var stop func()
	if db.bd != nil {
		stop = db.bd.Start(metrics.OpWrite)
	}
	exit := db.enter(key)
	if addr, ok := db.index[string(key)]; ok {
		if k, v, err := db.readAt(addr); err == nil {
			db.dead += int64(recordLen(k, v))
		}
		delete(db.index, string(key))
	}
	exit()
	if stop != nil {
		stop()
	}
	return nil
}

// RMW applies fn to the current value of key (nil if absent) and stores
// the result, in place when it fits the mutable region — FASTER's
// signature fast path for incremental aggregation.
func (db *DB) RMW(key []byte, fn func(old []byte) []byte) error {
	if db.closed {
		return ErrClosed
	}
	var stop func()
	if db.bd != nil {
		stop = db.bd.Start(metrics.OpWrite)
	}
	exit := db.enter(key)
	err := db.rmw(key, fn)
	exit()
	if stop != nil {
		stop()
	}
	if err != nil {
		return err
	}
	return db.maybeCompact()
}

func (db *DB) rmw(key []byte, fn func(old []byte) []byte) error {
	addr, ok := db.index[string(key)]
	if !ok {
		newAddr, err := db.appendToLog(key, fn(nil))
		if err != nil {
			return err
		}
		db.index[string(key)] = newAddr
		return nil
	}
	if addr >= db.mutableBase() {
		rec := db.buf[addr-db.flushedAddr:]
		k, v, _, err := parseRecord(rec)
		if err != nil {
			return err
		}
		nv := fn(v)
		if len(nv) == len(v) {
			copy(v, nv)
			return nil
		}
		db.dead += int64(recordLen(k, v))
		newAddr, err := db.appendToLog(key, nv)
		if err != nil {
			return err
		}
		db.index[string(key)] = newAddr
		return nil
	}
	oldKey, oldVal, err := db.readAt(addr)
	if err != nil {
		return err
	}
	db.dead += int64(recordLen(oldKey, oldVal))
	newAddr, err := db.appendToLog(key, fn(oldVal))
	if err != nil {
		return err
	}
	db.index[string(key)] = newAddr
	return nil
}

// AppendList appends elem to the list stored at key. FASTER has no
// native append, so this is read-copy-update over the whole list: the
// paper's §2.2 "reads and writes all the previously appended values on
// every Append()".
func (db *DB) AppendList(key, elem []byte) error {
	return db.RMW(key, func(old []byte) []byte {
		out := make([]byte, 0, len(old)+len(elem)+4)
		out = append(out, old...)
		return binio.PutBytes(out, elem)
	})
}

// DecodeList splits a list value built by AppendList into elements.
func DecodeList(v []byte) ([][]byte, error) {
	var out [][]byte
	for len(v) > 0 {
		e, n, err := binio.Bytes(v)
		if err != nil {
			return nil, err
		}
		out = append(out, append([]byte(nil), e...))
		v = v[n:]
	}
	return out, nil
}

func (db *DB) spaceAmp() float64 {
	total := db.tailAddr()
	if total == 0 || total == db.dead {
		return 1.0
	}
	return float64(total) / float64(total-db.dead)
}

func (db *DB) maybeCompact() error {
	if db.spaceAmp() <= db.opts.MaxSpaceAmplification {
		return nil
	}
	var stop func()
	if db.bd != nil {
		stop = db.bd.Start(metrics.OpCompact)
	}
	err := db.compact()
	if stop != nil {
		stop()
	}
	if err == nil {
		db.compactions.Inc()
	}
	return err
}

// compact folds all live records over into a fresh hybrid log.
func (db *DB) compact() error {
	oldF := db.f
	oldBuf := db.buf
	oldFlushed := db.flushedAddr
	oldGen := db.gen

	readOld := func(addr int64) ([]byte, []byte, error) {
		if addr >= oldFlushed {
			k, v, _, err := parseRecord(oldBuf[addr-oldFlushed:])
			return k, v, err
		}
		var hdr [24]byte
		n, err := oldF.ReadAt(hdr[:], addr)
		if err != nil && n == 0 {
			return nil, nil, err
		}
		kl, n1, err := binio.Uvarint(hdr[:n])
		if err != nil {
			return nil, nil, err
		}
		vl, n2, err := binio.Uvarint(hdr[n1:n])
		if err != nil {
			return nil, nil, err
		}
		body := make([]byte, int(kl+vl))
		if _, err := oldF.ReadAt(body, addr+int64(n1+n2)); err != nil {
			return nil, nil, err
		}
		if db.bd != nil {
			db.bd.AddBytesRead(int64(len(body)))
		}
		return body[:kl], body[kl:], nil
	}

	if err := db.openGen(oldGen + 1); err != nil {
		db.f, db.buf, db.flushedAddr, db.gen = oldF, oldBuf, oldFlushed, oldGen
		return err
	}
	for k, addr := range db.index {
		key, val, err := readOld(addr)
		if err != nil {
			return fmt.Errorf("faster: compact read %q: %w", k, err)
		}
		newAddr, err := db.appendToLog(key, val)
		if err != nil {
			return err
		}
		db.index[k] = newAddr
	}
	name := oldF.Name()
	oldF.Close()
	return os.Remove(name)
}

// Flush spills the in-memory log tail to disk (checkpoint support).
func (db *DB) Flush() error {
	if db.closed {
		return ErrClosed
	}
	if len(db.buf) == 0 {
		return nil
	}
	if _, err := db.f.WriteAt(db.buf, db.flushedAddr); err != nil {
		return err
	}
	if db.bd != nil {
		db.bd.AddBytesWritten(int64(len(db.buf)))
	}
	db.flushedAddr += int64(len(db.buf))
	db.buf = db.buf[:0]
	return nil
}

// Stats describes the store for experiment reports.
type Stats struct {
	// Keys is the number of live keys in the hash index.
	Keys int
	// LogBytes is the hybrid log's total logical size.
	LogBytes int64
	// DeadBytes is the garbage awaiting compaction.
	DeadBytes int64
	// Compactions counts fold-over compactions.
	Compactions int64
	// EpochOps counts synchronization operations performed (0 with NoSync).
	EpochOps uint64
}

// Stats returns current store statistics.
func (db *DB) Stats() Stats {
	return Stats{
		Keys:        len(db.index),
		LogBytes:    db.tailAddr(),
		DeadBytes:   db.dead,
		Compactions: db.compactions.Load(),
		EpochOps:    db.epoch.Load(),
	}
}

// Close closes the store, leaving the log on disk.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	db.closed = true
	return db.f.Close()
}

// Destroy closes the store and removes its directory.
func (db *DB) Destroy() error {
	err := db.Close()
	if derr := os.RemoveAll(db.opts.Dir); derr != nil && err == nil {
		err = derr
	}
	return err
}
