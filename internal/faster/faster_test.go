package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"

	"flowkv/internal/metrics"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "faster")
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Destroy() })
	return db
}

func TestUpsertRead(t *testing.T) {
	db := openTest(t, Options{})
	if err := db.Upsert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Read([]byte("k"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Read = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := db.Read([]byte("missing")); ok {
		t.Error("missing key found")
	}
}

func TestInPlaceUpdate(t *testing.T) {
	db := openTest(t, Options{})
	db.Upsert([]byte("k"), []byte("aaaa"))
	before := db.Stats().LogBytes
	// Same-size update in the mutable region must not grow the log.
	db.Upsert([]byte("k"), []byte("bbbb"))
	if got := db.Stats().LogBytes; got != before {
		t.Errorf("log grew from %d to %d on in-place update", before, got)
	}
	v, _, _ := db.Read([]byte("k"))
	if string(v) != "bbbb" {
		t.Errorf("value = %q", v)
	}
	// Different size appends a new record.
	db.Upsert([]byte("k"), []byte("cc"))
	if got := db.Stats().LogBytes; got == before {
		t.Error("size-changing update should append")
	}
	v, _, _ = db.Read([]byte("k"))
	if string(v) != "cc" {
		t.Errorf("value = %q", v)
	}
}

func TestDelete(t *testing.T) {
	db := openTest(t, Options{})
	db.Upsert([]byte("k"), []byte("v"))
	if err := db.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Read([]byte("k")); ok {
		t.Error("deleted key still readable")
	}
	if err := db.Delete([]byte("never-existed")); err != nil {
		t.Errorf("deleting a missing key: %v", err)
	}
}

func TestRMWCounter(t *testing.T) {
	db := openTest(t, Options{})
	inc := func(old []byte) []byte {
		var c uint64
		if old != nil {
			c = binary.LittleEndian.Uint64(old)
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], c+1)
		return out[:]
	}
	for i := 0; i < 10000; i++ {
		if err := db.RMW([]byte("ctr"), inc); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, _ := db.Read([]byte("ctr"))
	if !ok || binary.LittleEndian.Uint64(v) != 10000 {
		t.Fatalf("counter = %v %v", v, ok)
	}
	// Fixed-size RMW should be in place: log stays tiny.
	if st := db.Stats(); st.LogBytes > 1024 {
		t.Errorf("log is %d bytes after 10k in-place RMWs", st.LogBytes)
	}
}

func TestSpillToDiskAndReadBack(t *testing.T) {
	// Memory region far smaller than the data set forces disk reads.
	db := openTest(t, Options{MemoryBytes: 4096})
	const n = 500
	val := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < n; i++ {
		if err := db.Upsert([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.Read([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("key-%04d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestSpillPreservesRecordBoundaries(t *testing.T) {
	// Values of varying sizes around the spill threshold.
	db := openTest(t, Options{MemoryBytes: 1024})
	want := make(map[string][]byte)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%03d", i)
		v := bytes.Repeat([]byte{byte(i)}, 1+i%97)
		want[k] = v
		if err := db.Upsert([]byte(k), v); err != nil {
			t.Fatal(err)
		}
	}
	for k, v := range want {
		got, ok, err := db.Read([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, v) {
			t.Fatalf("%s: ok=%v err=%v", k, ok, err)
		}
	}
}

func TestAppendListReadCopyUpdate(t *testing.T) {
	var bd metrics.Breakdown
	db := openTest(t, Options{MemoryBytes: 2048, Breakdown: &bd})
	const n = 200
	for i := 0; i < n; i++ {
		if err := db.AppendList([]byte("list"), []byte(fmt.Sprintf("e%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := db.Read([]byte("list"))
	if err != nil || !ok {
		t.Fatal(err)
	}
	elems, err := DecodeList(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != n {
		t.Fatalf("%d elements, want %d", len(elems), n)
	}
	for i, e := range elems {
		if string(e) != fmt.Sprintf("e%03d", i) {
			t.Fatalf("element %d = %q", i, e)
		}
	}
	// The defining pathology: the log holds many superseded copies of the
	// growing list, so total bytes written vastly exceed the payload.
	payload := int64(n * 4)
	if w := bd.BytesWritten() + db.Stats().LogBytes; w < 10*payload {
		t.Errorf("append I/O amplification missing: wrote ~%d bytes for %d payload", w, payload)
	}
}

func TestCompactionReclaims(t *testing.T) {
	db := openTest(t, Options{MemoryBytes: 2048, MaxSpaceAmplification: 1.5})
	// Size-changing overwrites create garbage.
	for round := 0; round < 60; round++ {
		for i := 0; i < 10; i++ {
			v := bytes.Repeat([]byte("v"), 50+round%3)
			if err := db.Upsert([]byte(fmt.Sprintf("k%d", i)), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction despite churn")
	}
	if st.Keys != 10 {
		t.Fatalf("keys = %d", st.Keys)
	}
	for i := 0; i < 10; i++ {
		if _, ok, err := db.Read([]byte(fmt.Sprintf("k%d", i))); !ok || err != nil {
			t.Fatalf("k%d lost after compaction: %v", i, err)
		}
	}
}

func TestSyncCostModel(t *testing.T) {
	db := openTest(t, Options{})
	db.Upsert([]byte("k"), []byte("v"))
	db.Read([]byte("k"))
	if ops := db.Stats().EpochOps; ops == 0 {
		t.Error("sync cost model recorded no epoch operations")
	}
	nosync := openTest(t, Options{NoSync: true})
	nosync.Upsert([]byte("k"), []byte("v"))
	if ops := nosync.Stats().EpochOps; ops != 0 {
		t.Errorf("NoSync recorded %d epoch ops", ops)
	}
}

func TestFlushCheckpoint(t *testing.T) {
	db := openTest(t, Options{})
	db.Upsert([]byte("k"), []byte("v"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// After flush the record lives on disk; reads must still work.
	v, ok, err := db.Read([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("after flush: %q,%v,%v", v, ok, err)
	}
	if err := db.Flush(); err != nil {
		t.Errorf("empty flush: %v", err)
	}
}

func TestClosedErrors(t *testing.T) {
	db := openTest(t, Options{})
	db.Close()
	if err := db.Upsert(nil, nil); err != ErrClosed {
		t.Errorf("Upsert: %v", err)
	}
	if _, _, err := db.Read(nil); err != ErrClosed {
		t.Errorf("Read: %v", err)
	}
	if err := db.Delete(nil); err != ErrClosed {
		t.Errorf("Delete: %v", err)
	}
	if err := db.RMW(nil, func(b []byte) []byte { return b }); err != ErrClosed {
		t.Errorf("RMW: %v", err)
	}
	if err := db.Flush(); err != ErrClosed {
		t.Errorf("Flush: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestQuickModelConsistency(t *testing.T) {
	db := openTest(t, Options{MemoryBytes: 2048, MaxSpaceAmplification: 1.5})
	model := make(map[string]string)
	f := func(op uint8, kRaw uint8, v string) bool {
		k := fmt.Sprintf("key-%02d", kRaw%50)
		switch op % 3 {
		case 0:
			if err := db.Upsert([]byte(k), []byte(v)); err != nil {
				return false
			}
			model[k] = v
		case 1:
			if err := db.Delete([]byte(k)); err != nil {
				return false
			}
			delete(model, k)
		case 2:
			got, ok, err := db.Read([]byte(k))
			if err != nil {
				return false
			}
			want, exists := model[k]
			if ok != exists {
				return false
			}
			if ok && string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRMWInPlace(b *testing.B) {
	db, err := Open(Options{Dir: filepath.Join(b.TempDir(), "faster")})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Destroy()
	inc := func(old []byte) []byte {
		var c uint64
		if old != nil {
			c = binary.LittleEndian.Uint64(old)
		}
		var out [8]byte
		binary.LittleEndian.PutUint64(out[:], c+1)
		return out[:]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.RMW([]byte(fmt.Sprintf("k%05d", i%10000)), inc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendListAmplification(b *testing.B) {
	db, err := Open(Options{Dir: filepath.Join(b.TempDir(), "faster"), MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Destroy()
	elem := bytes.Repeat([]byte("v"), 84)
	b.SetBytes(int64(len(elem)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.AppendList([]byte(fmt.Sprintf("k%03d", i%100)), elem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadPoint(b *testing.B) {
	db, err := Open(Options{Dir: filepath.Join(b.TempDir(), "faster"), MemoryBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Destroy()
	val := bytes.Repeat([]byte("v"), 84)
	const n = 100000
	for i := 0; i < n; i++ {
		db.Upsert([]byte(fmt.Sprintf("key-%08d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Read([]byte(fmt.Sprintf("key-%08d", i%n))); err != nil || !ok {
			b.Fatal(err)
		}
	}
}
