// Package faultfs is the filesystem seam under every persistent store in
// this repository. Production code runs against OS, a trivial wrapper over
// the os package; tests run against an Injector, which wraps another FS
// and deterministically fails a chosen operation — fail the Nth mutating
// op outright, return an error on sync, tear a write after K bytes, or
// simulate a crash by freezing all subsequent mutations — so crash
// consistency of the checkpoint and log paths can be exercised without
// real power loss.
//
// Only mutating operations (creates, writes, syncs, renames, removes,
// truncates, mkdirs) are counted; reads pass through uncounted, matching
// the failure model of a kernel that loses or tears writes but serves
// back whatever bytes reached the disk. A rule may still target OpRead
// explicitly to model transient read errors, without perturbing the
// mutating-op counter that crash tests key off.
//
// A Rule's Class selects the failure persistence: ClassOnce fails a
// single operation (the historical behaviour), ClassTransient fails a
// bounded run of matching operations then heals, and ClassPersistent
// keeps failing matching operations until the rule is cleared.
//
// Orthogonal to the error and corruption classes, a rule with
// Delay/DelayRamp/Hang set is a stall fault — the gray-failure mode of
// a disk that answers slowly (or not at all) but never errors. Matched
// operations sleep (deterministically jittered and optionally ramping)
// or park until Release, then succeed.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the default error returned by an Injector's target op.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed reports a mutating operation attempted after a simulated
// crash froze the filesystem.
var ErrCrashed = errors.New("faultfs: simulated crash (filesystem frozen)")

// ErrDiskIO is an injectable I/O error that unwraps to syscall.EIO, so
// production error classification (errors.Is(err, syscall.EIO)) sees the
// same shape a real kernel failure has.
var ErrDiskIO = fmt.Errorf("faultfs: injected I/O error: %w", syscall.EIO)

// ErrNoSpace is an injectable out-of-space error that unwraps to
// syscall.ENOSPC.
var ErrNoSpace = fmt.Errorf("faultfs: injected no space left on device: %w", syscall.ENOSPC)

// File is the subset of *os.File the storage layer uses.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
	Name() string
}

// FS abstracts the filesystem operations of the storage layer.
type FS interface {
	// Create creates (or truncates) a read-write file at path.
	Create(path string) (File, error)
	// OpenFile is the generalized open call, mirroring os.OpenFile.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(path string) (File, error)
	Rename(oldpath, newpath string) error
	// Link creates newpath as a hard link to oldpath. Filesystems
	// without hard-link support return an error; callers that can fall
	// back to a copy use LinkOrCopy instead of calling Link directly.
	Link(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	// SyncDir fsyncs the directory itself, making entry creations,
	// removals and renames within it durable.
	SyncDir(path string) error
}

// OS is the production FS, a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

// osFile embeds *os.File so io.Copy into it still finds ReadFrom and
// lowers to copy_file_range (the zero-copy transfer path).
type osFile struct{ *os.File }

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Link(oldpath, newpath string) error   { return os.Link(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// CopyFile copies src to dst through fsys, fsyncing dst before close so a
// checkpointed file is durable before the checkpoint commits.
func CopyFile(fsys FS, src, dst string) error {
	in, err := fsys.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := fsys.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// LinkOrCopy hard-links src to dst, falling back to a full copy when the
// filesystem refuses the link (no hard-link support, cross-device, or an
// injected link fault). It reports whether the cheap path was taken: a
// linked file's bytes are already durable (they were fsynced when the
// source was sealed), while a copied file still needs an fsync before any
// commit that references it — the caller owns that sync, so group-commit
// checkpoints can batch it.
func LinkOrCopy(fsys FS, src, dst string) (linked bool, err error) {
	if err := fsys.Link(src, dst); err == nil {
		return true, nil
	}
	in, err := fsys.Open(src)
	if err != nil {
		return false, err
	}
	defer in.Close()
	out, err := fsys.Create(dst)
	if err != nil {
		return false, err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return false, err
	}
	return false, out.Close()
}

// CorruptAtRest mutates the file at path in place, modelling bit rot
// that happened while the bytes sat on disk. The file is rewritten
// through an O_RDWR descriptor — never truncated or renamed — so the
// inode survives and hard-linked siblings (checkpoint segments shared
// across generations) observe the same rot. off addresses the byte to
// damage; a negative off picks the middle of the file.
//
//   - CorruptBitFlip flips one bit of the byte at off.
//   - CorruptZeroPage zeroes the 4 KiB-aligned page containing off
//     (clamped to the file size).
//   - CorruptStale overwrites the page containing off with the file's
//     first page — plausible old bytes where new ones should be. When
//     off lands in the first page (nothing older to serve), it degrades
//     to CorruptZeroPage.
//
// Callers normally pass the base FS (or an unarmed injector): routing
// the rewrite through an armed injector would consume mutating-op
// counts that crash batteries key off. A nil fsys means the real OS
// filesystem.
func CorruptAtRest(fsys FS, path string, kind CorruptKind, off int64) error {
	const pageSize = 4096
	if fsys == nil {
		fsys = OS
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	size := int64(len(data))
	if size == 0 {
		return fmt.Errorf("faultfs: corrupt at rest %s: file is empty", path)
	}
	if off < 0 {
		off = size / 2
	}
	if off >= size {
		off = size - 1
	}
	var start, end int64
	var patch []byte
	switch kind {
	case CorruptBitFlip:
		start, end = off, off+1
		patch = []byte{data[off] ^ 0x40}
	case CorruptZeroPage, CorruptStale:
		start = off - off%pageSize
		end = start + pageSize
		if end > size {
			end = size
		}
		patch = make([]byte, end-start)
		if kind == CorruptStale && start >= pageSize {
			copy(patch, data[:end-start])
		}
	default:
		return fmt.Errorf("faultfs: corrupt at rest %s: kind %v does not mutate", path, kind)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(start, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(patch); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Op classifies a mutating filesystem operation for rule matching.
type Op int

const (
	// OpAny matches every mutating operation.
	OpAny Op = iota
	// OpCreate matches Create and OpenFile calls that may create or
	// truncate a file.
	OpCreate
	// OpWrite matches File.Write.
	OpWrite
	// OpSync matches File.Sync and FS.SyncDir.
	OpSync
	// OpTruncate matches File.Truncate.
	OpTruncate
	// OpRename matches FS.Rename.
	OpRename
	// OpLink matches FS.Link (hard-link creation, the incremental-
	// checkpoint segment-reuse path). Counted as a mutating operation.
	OpLink
	// OpRemove matches FS.Remove and FS.RemoveAll.
	OpRemove
	// OpMkdir matches FS.MkdirAll.
	OpMkdir
	// OpRead matches File.Read, File.ReadAt and FS.ReadFile. Read
	// operations are never counted in the mutating-op counter (crash
	// points stay deterministic) and only fail when a rule targets
	// OpRead explicitly.
	OpRead
)

// String returns the op name.
func (o Op) String() string {
	switch o {
	case OpAny:
		return "any"
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpLink:
		return "link"
	case OpRemove:
		return "remove"
	case OpMkdir:
		return "mkdir"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Class describes how a fault behaves after it first fires, modelling
// the error classes real disks exhibit.
type Class int

const (
	// ClassOnce fails exactly one operation — the historical injector
	// behaviour, and the model for a single torn write or crash point.
	ClassOnce Class = iota
	// ClassTransient fails the triggering operation and subsequent
	// matching operations until Times total failures have been served,
	// then heals — the model for a controller hiccup that a bounded
	// retry should ride out.
	ClassTransient
	// ClassPersistent fails the triggering operation and every matching
	// operation after it until the rule is cleared — the model for a
	// dead disk or a full filesystem.
	ClassPersistent
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassOnce:
		return "once"
	case ClassTransient:
		return "transient"
	case ClassPersistent:
		return "persistent"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// CorruptKind selects how a read's bytes are mangled by a corruption
// rule. Corruption faults are orthogonal to the error classes: the read
// SUCCEEDS — no error, full byte count — but the bytes are wrong, the
// failure mode of bit rot, zeroed pages, and lying firmware that only
// checksums can catch.
type CorruptKind int

const (
	// CorruptNone disables corruption (the rule injects errors instead).
	CorruptNone CorruptKind = iota
	// CorruptBitFlip flips one bit in the middle of the returned bytes.
	CorruptBitFlip
	// CorruptZeroPage zeroes the returned bytes, the artifact of a read
	// that hit a never-written or discarded page.
	CorruptZeroPage
	// CorruptStale serves bytes from file offset 0 instead of the
	// requested offset — a misdirected or stale block read. Non-positional
	// reads (whole-file) degrade to CorruptZeroPage.
	CorruptStale
)

// String returns the corruption kind name.
func (k CorruptKind) String() string {
	switch k {
	case CorruptNone:
		return "none"
	case CorruptBitFlip:
		return "bit-flip"
	case CorruptZeroPage:
		return "zero-page"
	case CorruptStale:
		return "stale-block"
	default:
		return fmt.Sprintf("corrupt(%d)", int(k))
	}
}

// Rule selects the operations to fail. Two addressing modes exist: AtOp
// picks the trigger by the injector's global mutating-op index
// (deterministic replay of "crash at operation N"); otherwise the rule
// triggers on the Nth operation with the given kind and path substring.
// Class decides what happens after the trigger: a ClassOnce rule fails
// only the trigger, while ClassTransient/ClassPersistent keep failing
// matching operations after it.
type Rule struct {
	// AtOp, when positive, fires on the AtOp'th mutating operation
	// counted since the injector was created (1-based), ignoring the
	// kind and path filters.
	AtOp int64
	// Op filters by operation kind (OpAny matches all).
	Op Op
	// PathContains filters by substring of the operation's path; empty
	// matches every path.
	PathContains string
	// Nth fires on the Nth match of the filters (1-based; 0 means 1).
	Nth int64
	// TornBytes, for a matched OpWrite, writes that many bytes of the
	// payload through to the underlying file before failing — a torn
	// write. 0 writes nothing.
	TornBytes int
	// Err is the error returned by the failed operation; nil means
	// ErrInjected.
	Err error
	// Crash freezes the filesystem after the fault fires: every later
	// mutating operation returns ErrCrashed until Reset.
	Crash bool
	// Class selects the failure persistence; the zero value is
	// ClassOnce (fail exactly one operation).
	Class Class
	// Times bounds how many failures a ClassTransient rule serves
	// before healing (0 means 1). Ignored for other classes.
	Times int64
	// Corrupt turns a matched OpRead rule into a silent-corruption
	// fault: instead of returning Err, the read succeeds and the
	// returned bytes are mangled per the kind. Only meaningful for
	// rules with Op == OpRead; Err is ignored when Corrupt is set.
	// Class and Times apply as usual, so a ClassOnce corruption models
	// a transient flip (a retry reads clean bytes) while
	// ClassPersistent models at-rest rot on the read path.
	Corrupt CorruptKind
	// Delay turns the rule into a stall fault: a matched operation
	// sleeps for Delay and then SUCCEEDS — no error, no corruption —
	// the gray-failure mode of a slow disk. Stall faults are orthogonal
	// to the error classes the way Corrupt is: Err, Crash and TornBytes
	// are ignored when the rule stalls. Class and Times apply as usual,
	// so ClassPersistent+Delay models a uniformly slow device while
	// ClassOnce+Hang models one hung syscall.
	Delay time.Duration
	// DelayJitter adds a deterministic pseudo-random extra delay in
	// [0, DelayJitter) derived from the rule's hit count — jittered
	// latency without wall-clock or rand dependence, so replays stall
	// identically.
	DelayJitter time.Duration
	// DelayRamp adds DelayRamp*(hit-1) on each successive hit — the
	// slow-ramp profile of a failing disk that degrades a little more
	// with every operation.
	DelayRamp time.Duration
	// Hang parks the matched operation indefinitely: it blocks until
	// the test calls Release (or Reset), then SUCCEEDS. Hang composes
	// with Delay/DelayRamp (the delay is served after release). The
	// model for a hung fsync that only a deadline can detect.
	Hang bool
}

// stalls reports whether the rule is a stall fault (delay/hang) rather
// than an error fault.
func (r Rule) stalls() bool {
	return r.Delay > 0 || r.DelayRamp > 0 || r.Hang
}

// Injector wraps an FS and fails one chosen mutating operation. The zero
// rule never fires, so an Injector with no rule armed is a transparent
// (but counting) passthrough; Ops() then measures how many mutating ops a
// workload performs, which callers use to pick crash points.
type Injector struct {
	base FS

	mu      sync.Mutex
	ops     int64
	matched int64
	hits    int64
	rule    Rule
	armed   bool
	fired   bool
	tripped bool
	crashed bool
	release chan struct{} // closed by Release to unpark Hang'd operations

	parked atomic.Int64 // operations currently inside a stall
}

// NewInjector returns a transparent, counting injector over base.
func NewInjector(base FS) *Injector {
	return &Injector{base: base}
}

// SetRule arms the injector with r, clearing any fired state; the global
// op counter keeps running. Arming a Hang rule creates a fresh release
// gate; any operations still parked on a previous gate are released.
func (i *Injector) SetRule(r Rule) {
	i.mu.Lock()
	old := i.release
	i.rule = r
	i.armed = true
	i.fired = false
	i.tripped = false
	i.matched = 0
	i.hits = 0
	i.release = nil
	if r.Hang {
		i.release = make(chan struct{})
	}
	i.mu.Unlock()
	if old != nil {
		close(old)
	}
}

// Release unparks every operation blocked by a Hang rule and lets future
// matches of the same rule pass without blocking. Idempotent.
func (i *Injector) Release() {
	i.mu.Lock()
	ch := i.release
	i.release = nil
	i.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Stalled returns how many operations are currently parked inside a
// stall (hung or sleeping). Tests poll this to learn that a victim is
// provably stuck before acting on it.
func (i *Injector) Stalled() int64 { return i.parked.Load() }

// Ops returns the number of mutating operations observed so far.
func (i *Injector) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// Fired reports whether the armed rule has failed at least one
// operation.
func (i *Injector) Fired() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired || i.hits > 0
}

// Hits returns how many operations the armed rule has failed so far.
func (i *Injector) Hits() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits
}

// Crashed reports whether the filesystem is frozen by a simulated crash.
func (i *Injector) Crashed() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.crashed
}

// Reset disarms the rule and thaws a crashed filesystem, releasing any
// operations parked by a Hang rule. The op counter is preserved.
func (i *Injector) Reset() {
	i.mu.Lock()
	old := i.release
	i.rule = Rule{}
	i.armed = false
	i.fired = false
	i.tripped = false
	i.crashed = false
	i.matched = 0
	i.hits = 0
	i.release = nil
	i.mu.Unlock()
	if old != nil {
		close(old)
	}
}

// check records one mutating operation and decides its fate. A negative
// torn value means no partial write; err non-nil means the operation must
// fail with err after writing torn bytes (OpWrite only). Stall faults
// are decided under the lock but served after it, so a hung operation
// never wedges the injector itself.
func (i *Injector) check(op Op, path string) (torn int, err error) {
	i.mu.Lock()
	if i.crashed {
		i.mu.Unlock()
		return -1, ErrCrashed
	}
	i.ops++
	torn, st, err := i.decide(op, path)
	release := i.release
	i.mu.Unlock()
	i.serveStall(st, release)
	return torn, err
}

// stallSpec is the stall a decided operation must serve: sleep for delay
// and/or block on the release gate.
type stallSpec struct {
	delay time.Duration
	hang  bool
}

// serveStall parks the calling operation per st. Must be called without
// i.mu held.
func (i *Injector) serveStall(st stallSpec, release chan struct{}) {
	if !st.hang && st.delay <= 0 {
		return
	}
	i.parked.Add(1)
	defer i.parked.Add(-1)
	if st.hang && release != nil {
		<-release
	}
	if st.delay > 0 {
		time.Sleep(st.delay)
	}
}

// checkRead decides the fate of a read operation. Reads never touch the
// mutating-op counter (so crash points stay deterministic across runs
// with different read patterns) and only fail when the armed rule
// targets OpRead explicitly; a crashed filesystem still serves reads,
// matching a kernel that lost writes but returns the bytes it has.
// When the firing rule carries a CorruptKind the read must SUCCEED and
// the caller mangles the returned bytes instead of erroring.
func (i *Injector) checkRead(path string) (CorruptKind, error) {
	i.mu.Lock()
	if !i.armed || i.rule.Op != OpRead {
		i.mu.Unlock()
		return CorruptNone, nil
	}
	corrupt := i.rule.Corrupt
	_, st, err := i.decide(OpRead, path)
	release := i.release
	i.mu.Unlock()
	i.serveStall(st, release)
	if err != nil && corrupt != CorruptNone {
		return corrupt, nil
	}
	return CorruptNone, err
}

// decide applies the armed rule to one operation. Callers hold i.mu; the
// returned stallSpec must be served by the caller after unlocking.
func (i *Injector) decide(op Op, path string) (torn int, st stallSpec, err error) {
	if !i.armed || i.fired {
		return -1, st, nil
	}
	kindMatch := (i.rule.Op == OpAny || i.rule.Op == op) &&
		(i.rule.PathContains == "" || strings.Contains(path, i.rule.PathContains))
	triggered := false
	if i.rule.AtOp > 0 {
		triggered = i.ops == i.rule.AtOp
	} else if kindMatch {
		i.matched++
		nth := i.rule.Nth
		if nth <= 0 {
			nth = 1
		}
		triggered = i.matched == nth
	}
	fail := false
	switch i.rule.Class {
	case ClassTransient:
		if triggered {
			i.tripped = true
		}
		if i.tripped && (triggered || kindMatch) {
			fail = true
			times := i.rule.Times
			if times <= 0 {
				times = 1
			}
			if i.hits+1 >= times {
				i.fired = true // healed: no further failures
			}
		}
	case ClassPersistent:
		if triggered {
			i.tripped = true
		}
		fail = i.tripped && (triggered || kindMatch)
	default: // ClassOnce
		if triggered {
			fail = true
			i.fired = true
		}
	}
	if !fail {
		return -1, st, nil
	}
	i.hits++
	if i.rule.stalls() {
		// Stall fault: the operation succeeds after the stall. The
		// delay is fully determined by the hit ordinal — ramp grows it
		// linearly, jitter perturbs it via a fixed hash — so a replayed
		// run stalls identically.
		st.delay = i.rule.Delay + time.Duration(i.hits-1)*i.rule.DelayRamp
		if i.rule.DelayJitter > 0 {
			st.delay += time.Duration(uint64(i.hits) * 0x9E3779B97F4A7C15 % uint64(i.rule.DelayJitter))
		}
		st.hang = i.rule.Hang
		return -1, st, nil
	}
	if i.rule.Crash {
		i.crashed = true
	}
	err = i.rule.Err
	if err == nil {
		err = ErrInjected
	}
	if op == OpWrite && i.rule.TornBytes > 0 {
		return i.rule.TornBytes, st, err
	}
	return -1, st, err
}

func (i *Injector) Create(path string) (File, error) {
	if _, err := i.check(OpCreate, path); err != nil {
		return nil, err
	}
	f, err := i.base.Create(path)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, path: path}, nil
}

func (i *Injector) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	// Opening with creation or truncation flags mutates the namespace;
	// a pure read-write open of an existing file does not.
	if flag&(os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0 {
		if _, err := i.check(OpCreate, path); err != nil {
			return nil, err
		}
	}
	f, err := i.base.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, path: path}, nil
}

func (i *Injector) Open(path string) (File, error) {
	f, err := i.base.Open(path)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, path: path}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if _, err := i.check(OpRename, newpath); err != nil {
		return err
	}
	return i.base.Rename(oldpath, newpath)
}

func (i *Injector) Link(oldpath, newpath string) error {
	if _, err := i.check(OpLink, newpath); err != nil {
		return err
	}
	return i.base.Link(oldpath, newpath)
}

func (i *Injector) Remove(path string) error {
	if _, err := i.check(OpRemove, path); err != nil {
		return err
	}
	return i.base.Remove(path)
}

func (i *Injector) RemoveAll(path string) error {
	if _, err := i.check(OpRemove, path); err != nil {
		return err
	}
	return i.base.RemoveAll(path)
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	if _, err := i.check(OpMkdir, path); err != nil {
		return err
	}
	return i.base.MkdirAll(path, perm)
}

func (i *Injector) ReadDir(path string) ([]os.DirEntry, error) {
	return i.base.ReadDir(path)
}

func (i *Injector) ReadFile(path string) ([]byte, error) {
	kind, err := i.checkRead(path)
	if err != nil {
		return nil, err
	}
	b, err := i.base.ReadFile(path)
	if err == nil && kind != CorruptNone {
		// Whole-file reads have no "wrong offset" to misdirect to, so
		// CorruptStale degrades to CorruptZeroPage here.
		if kind == CorruptStale {
			kind = CorruptZeroPage
		}
		mangle(kind, b, nil, 0)
	}
	return b, err
}

func (i *Injector) SyncDir(path string) error {
	if _, err := i.check(OpSync, path); err != nil {
		return err
	}
	return i.base.SyncDir(path)
}

// injFile wraps a File, routing mutating calls through the injector.
// Reads and closes pass through: a crash does not revoke already-open
// descriptors, it only prevents further mutation.
type injFile struct {
	inj  *Injector
	f    File
	path string
}

func (f *injFile) Read(p []byte) (int, error) {
	kind, err := f.inj.checkRead(f.path)
	if err != nil {
		return 0, err
	}
	n, rerr := f.f.Read(p)
	if n > 0 && kind != CorruptNone {
		mangle(kind, p[:n], f.f, 0)
	}
	return n, rerr
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	kind, err := f.inj.checkRead(f.path)
	if err != nil {
		return 0, err
	}
	n, rerr := f.f.ReadAt(p, off)
	if n > 0 && kind != CorruptNone {
		mangle(kind, p[:n], f.f, off)
	}
	return n, rerr
}

// mangle applies a corruption kind to bytes just read. For CorruptStale
// the bytes are re-served from file offset 0 through src (a misdirected
// block read); when the read already was at offset 0, or src is nil, or
// the stale fetch fails, it degrades to zeroing — the read still lies.
func mangle(kind CorruptKind, b []byte, src io.ReaderAt, off int64) {
	if len(b) == 0 {
		return
	}
	switch kind {
	case CorruptBitFlip:
		b[len(b)/2] ^= 0x40
	case CorruptStale:
		if src != nil && off != 0 {
			if n, err := src.ReadAt(b, 0); n == len(b) && err == nil {
				return
			}
		}
		fallthrough
	default: // CorruptZeroPage
		for j := range b {
			b[j] = 0
		}
	}
}

func (f *injFile) Seek(off int64, whence int) (int64, error) { return f.f.Seek(off, whence) }
func (f *injFile) Name() string                              { return f.path }
func (f *injFile) Close() error                              { return f.f.Close() }

func (f *injFile) Write(p []byte) (int, error) {
	torn, err := f.inj.check(OpWrite, f.path)
	if err != nil {
		n := 0
		if torn > 0 {
			if torn > len(p) {
				torn = len(p)
			}
			n, _ = f.f.Write(p[:torn])
		}
		return n, err
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if _, err := f.inj.check(OpSync, f.path); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if _, err := f.inj.check(OpTruncate, f.path); err != nil {
		return err
	}
	return f.f.Truncate(size)
}
