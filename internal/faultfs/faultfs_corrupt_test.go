package faultfs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func writeSeed(t *testing.T, path string, b []byte) {
	t.Helper()
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func seedBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i%251 + 1) // never zero, so zeroing is always visible
	}
	return b
}

func TestCorruptBitFlipReadSucceedsWithWrongBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.log")
	want := seedBytes(64)
	writeSeed(t, path, want)

	inj := NewInjector(OS)
	inj.SetRule(Rule{Op: OpRead, Corrupt: CorruptBitFlip})
	f, err := inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, 64)
	n, err := f.ReadAt(got, 0)
	if err != nil || n != 64 {
		t.Fatalf("ReadAt = %d, %v; corruption must not surface as an error", n, err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("bit-flip corruption returned pristine bytes")
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes, want exactly 1", diff)
	}
	if !inj.Fired() {
		t.Fatal("rule did not report firing")
	}
	// ClassOnce: the next read is clean again (transient flip).
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("second read still corrupt under ClassOnce")
	}
}

func TestCorruptZeroPageAndStaleOnRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.log")
	want := seedBytes(128)
	writeSeed(t, path, want)

	inj := NewInjector(OS)

	inj.SetRule(Rule{Op: OpRead, Corrupt: CorruptZeroPage})
	f, err := inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 32)
	if n, err := f.ReadAt(got, 16); err != nil || n != 32 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, make([]byte, 32)) {
		t.Fatalf("zero-page read returned nonzero bytes %x", got)
	}
	f.Close()

	// Stale: a read at offset 64 serves the bytes that live at offset 0.
	inj.SetRule(Rule{Op: OpRead, Corrupt: CorruptStale})
	f, err = inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n, err := f.ReadAt(got, 64); err != nil || n != 32 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, want[:32]) {
		t.Fatalf("stale read = %x, want bytes from offset 0 %x", got, want[:32])
	}
}

func TestCorruptReadFileDegradesStaleToZero(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "meta")
	writeSeed(t, path, seedBytes(40))

	inj := NewInjector(OS)
	inj.SetRule(Rule{Op: OpRead, Corrupt: CorruptStale})
	b, err := inj.ReadFile(path)
	if err != nil {
		t.Fatalf("corrupt ReadFile must succeed, got %v", err)
	}
	if !bytes.Equal(b, make([]byte, 40)) {
		t.Fatalf("whole-file stale read = %x, want all zeros", b)
	}
}

func TestCorruptPersistentUntilReset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.log")
	want := seedBytes(16)
	writeSeed(t, path, want)

	inj := NewInjector(OS)
	inj.SetRule(Rule{Op: OpRead, Corrupt: CorruptZeroPage, Class: ClassPersistent})
	f, err := inj.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, 16)
	for i := 0; i < 3; i++ {
		if _, err := f.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, make([]byte, 16)) {
			t.Fatalf("read %d not corrupted under ClassPersistent", i)
		}
	}
	inj.Reset()
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read after Reset still corrupt")
	}
}

func TestCorruptAtRestKeepsInodeForHardLinks(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "seg")
	link := filepath.Join(dir, "seg-link")
	want := seedBytes(8192 + 100)
	writeSeed(t, src, want)
	if err := os.Link(src, link); err != nil {
		t.Fatal(err)
	}

	// Flip a bit in the middle; both names must observe the rot, and the
	// file size must not change.
	if err := CorruptAtRest(OS, src, CorruptBitFlip, -1); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{src, link} {
		got, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: size %d, want %d", p, len(got), len(want))
		}
		if bytes.Equal(got, want) {
			t.Fatalf("%s: hard-linked sibling did not observe the rot", p)
		}
	}
}

func TestCorruptAtRestZeroPageAndStale(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	want := seedBytes(3*4096 + 17)
	writeSeed(t, path, want)

	// Zero the page containing offset 5000 (page 1: bytes 4096..8191).
	if err := CorruptAtRest(OS, path, CorruptZeroPage, 5000); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got[:4096], want[:4096]) || !bytes.Equal(got[8192:], want[8192:]) {
		t.Fatal("zero-page damaged bytes outside the target page")
	}
	if !bytes.Equal(got[4096:8192], make([]byte, 4096)) {
		t.Fatal("target page not zeroed")
	}

	// Stale: page 2 becomes a copy of page 0.
	writeSeed(t, path, want)
	if err := CorruptAtRest(OS, path, CorruptStale, 2*4096+3); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got[2*4096:3*4096], want[:4096]) {
		t.Fatal("stale page is not a copy of the first page")
	}
	if !bytes.Equal(got[:2*4096], want[:2*4096]) {
		t.Fatal("stale damaged bytes before the target page")
	}

	// Empty files cannot rot.
	empty := filepath.Join(dir, "empty")
	writeSeed(t, empty, nil)
	if err := CorruptAtRest(OS, empty, CorruptBitFlip, -1); err == nil {
		t.Fatal("CorruptAtRest on empty file succeeded")
	}
}
