package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestInjectorCountsMutatingOpsOnly(t *testing.T) {
	inj := NewInjector(OS)
	dir := t.TempDir()
	path := filepath.Join(dir, "a")

	f, err := inj.Create(path) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil { // op 2
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // op 3
		t.Fatal(err)
	}
	// Reads are not ops.
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // close is not an op
		t.Fatal(err)
	}
	if _, err := inj.ReadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := inj.ReadDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := inj.Ops(); got != 3 {
		t.Fatalf("ops = %d, want 3", got)
	}
}

func TestInjectorFailsNthGlobalOp(t *testing.T) {
	inj := NewInjector(OS)
	dir := t.TempDir()
	inj.SetRule(Rule{AtOp: 3})

	f, err := inj.Create(filepath.Join(dir, "a")) // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrInjected) { // op 3
		t.Fatalf("op 3 err = %v, want ErrInjected", err)
	}
	if !inj.Fired() {
		t.Fatal("rule did not report fired")
	}
	// Without Crash, later ops succeed again.
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestInjectorSyncEIO(t *testing.T) {
	eio := errors.New("input/output error")
	inj := NewInjector(OS)
	inj.SetRule(Rule{Op: OpSync, Err: eio})
	f, err := inj.Create(filepath.Join(t.TempDir(), "a"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, eio) {
		t.Fatalf("sync err = %v, want injected EIO", err)
	}
}

func TestInjectorTornWrite(t *testing.T) {
	inj := NewInjector(OS)
	path := filepath.Join(t.TempDir(), "a")
	f, err := inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("intact-")); err != nil {
		t.Fatal(err)
	}
	inj.SetRule(Rule{Op: OpWrite, TornBytes: 3, Crash: true})
	n, err := f.Write([]byte("torn-record"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != 3 {
		t.Fatalf("torn write reported %d bytes, want 3", n)
	}
	f.Close()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "intact-tor" {
		t.Fatalf("file contents = %q, want %q", b, "intact-tor")
	}
}

func TestInjectorCrashFreezesMutationsNotReads(t *testing.T) {
	inj := NewInjector(OS)
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	f, err := inj.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	inj.SetRule(Rule{Op: OpSync, Crash: true})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v", err)
	}
	if !inj.Crashed() {
		t.Fatal("injector not crashed")
	}
	// Every later mutation fails with ErrCrashed, on this file and fresh ones.
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if _, err := inj.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create err = %v", err)
	}
	if err := inj.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename err = %v", err)
	}
	if err := inj.Remove(path); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove err = %v", err)
	}
	// Reads keep serving whatever reached the disk.
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "data" {
		t.Fatalf("post-crash read = %q, %v", buf, err)
	}
	f.Close()
	inj.Reset()
	if inj.Crashed() {
		t.Fatal("reset did not thaw the filesystem")
	}
	if err := inj.Remove(path); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorPathAndKindMatching(t *testing.T) {
	inj := NewInjector(OS)
	dir := t.TempDir()
	inj.SetRule(Rule{Op: OpWrite, PathContains: "index-", Nth: 2})

	data, err := inj.Create(filepath.Join(dir, "data-000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	index, err := inj.Create(filepath.Join(dir, "index-000001.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer data.Close()
	defer index.Close()
	if _, err := data.Write([]byte("d1")); err != nil {
		t.Fatal(err) // wrong path: passes
	}
	if _, err := index.Write([]byte("i1")); err != nil {
		t.Fatal(err) // first match: passes
	}
	if _, err := data.Write([]byte("d2")); err != nil {
		t.Fatal(err)
	}
	if _, err := index.Write([]byte("i2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second index write err = %v, want ErrInjected", err)
	}
}

func TestCopyFileSyncsAndCopies(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	if err := os.WriteFile(src, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "dst")
	if err := CopyFile(OS, src, dst); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dst)
	if err != nil || string(b) != "payload" {
		t.Fatalf("dst = %q, %v", b, err)
	}
	// CopyFile must route its sync through the FS so injected sync faults
	// surface as checkpoint failures.
	inj := NewInjector(OS)
	inj.SetRule(Rule{Op: OpSync})
	if err := CopyFile(inj, src, filepath.Join(dir, "dst2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("CopyFile with failing sync err = %v", err)
	}
}
