package faultfs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func stallFile(t *testing.T, inj *Injector) File {
	t.Helper()
	f, err := inj.Create(filepath.Join(t.TempDir(), "stall.dat"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestStallDelaySlowsOpAndSucceeds(t *testing.T) {
	inj := NewInjector(OS)
	f := stallFile(t, inj)
	inj.SetRule(Rule{Op: OpSync, Delay: 30 * time.Millisecond, Class: ClassPersistent})
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatalf("stalled sync must succeed, got %v", err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("sync returned in %v, want >= ~30ms of injected delay", el)
	}
	if inj.Hits() != 1 {
		t.Fatalf("hits = %d, want 1", inj.Hits())
	}
}

func TestStallDelayRampGrows(t *testing.T) {
	inj := NewInjector(OS)
	f := stallFile(t, inj)
	inj.SetRule(Rule{Op: OpSync, Delay: 2 * time.Millisecond, DelayRamp: 8 * time.Millisecond, Class: ClassPersistent})
	var first, third time.Duration
	for hit := 1; hit <= 3; hit++ {
		start := time.Now()
		if err := f.Sync(); err != nil {
			t.Fatalf("sync hit %d: %v", hit, err)
		}
		el := time.Since(start)
		switch hit {
		case 1:
			first = el
		case 3:
			third = el
		}
	}
	// Hit 1 sleeps 2ms, hit 3 sleeps 2+16=18ms; require clear growth
	// with slack for scheduler noise.
	if third < first+8*time.Millisecond {
		t.Fatalf("ramp did not grow: first=%v third=%v", first, third)
	}
}

func TestStallJitterIsDeterministic(t *testing.T) {
	// The jitter term depends only on the hit ordinal, so two injectors
	// running the same rule decide identical delays.
	delays := func() []time.Duration {
		inj := NewInjector(OS)
		inj.SetRule(Rule{Op: OpSync, Delay: time.Millisecond, DelayJitter: 50 * time.Millisecond, Class: ClassPersistent})
		var out []time.Duration
		for hit := int64(1); hit <= 4; hit++ {
			inj.mu.Lock()
			inj.ops++
			_, st, err := inj.decide(OpSync, "x")
			inj.mu.Unlock()
			if err != nil {
				t.Fatalf("decide: %v", err)
			}
			out = append(out, st.delay)
		}
		return out
	}
	a, b := delays(), delays()
	distinct := map[time.Duration]bool{}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("jitter not deterministic at hit %d: %v vs %v", k+1, a[k], b[k])
		}
		if a[k] < time.Millisecond || a[k] >= 51*time.Millisecond {
			t.Fatalf("hit %d delay %v outside [base, base+jitter)", k+1, a[k])
		}
		distinct[a[k]] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("jitter produced no variation across hits: %v", a)
	}
}

func TestStallHangParksUntilRelease(t *testing.T) {
	inj := NewInjector(OS)
	f := stallFile(t, inj)
	inj.SetRule(Rule{Op: OpSync, Hang: true, Class: ClassPersistent})
	done := make(chan error, 1)
	go func() { done <- f.Sync() }()
	deadline := time.Now().Add(10 * time.Second)
	for inj.Stalled() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sync never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	select {
	case err := <-done:
		t.Fatalf("hung sync returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	inj.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released sync must succeed, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("sync still parked after Release")
	}
	if inj.Stalled() != 0 {
		t.Fatalf("Stalled = %d after release, want 0", inj.Stalled())
	}
	// After Release, later matches pass without blocking.
	if err := f.Sync(); err != nil {
		t.Fatalf("post-release sync: %v", err)
	}
}

func TestStallResetReleasesParkedOps(t *testing.T) {
	inj := NewInjector(OS)
	f := stallFile(t, inj)
	inj.SetRule(Rule{Op: OpWrite, Hang: true, Class: ClassPersistent})
	done := make(chan error, 1)
	go func() {
		_, err := f.Write([]byte("x"))
		done <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for inj.Stalled() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("write never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	inj.Reset()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after Reset: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Reset did not release the parked write")
	}
}

func TestStallIsOrthogonalToErrors(t *testing.T) {
	inj := NewInjector(OS)
	f := stallFile(t, inj)
	// Err and Crash are ignored on a stall rule: the op succeeds and the
	// filesystem does not freeze.
	inj.SetRule(Rule{Op: OpSync, Delay: time.Millisecond, Err: ErrDiskIO, Crash: true})
	if err := f.Sync(); err != nil {
		t.Fatalf("stall rule leaked its Err: %v", err)
	}
	if inj.Crashed() {
		t.Fatalf("stall rule crashed the filesystem")
	}
	if _, err := f.Write([]byte("after")); err != nil {
		t.Fatalf("write after stall: %v", err)
	}
}

func TestStallOnReadPath(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "r.dat"), []byte("hello"), 0o644); err != nil {
		t.Fatalf("seed: %v", err)
	}
	inj := NewInjector(OS)
	inj.SetRule(Rule{Op: OpRead, Delay: 20 * time.Millisecond, Class: ClassPersistent})
	start := time.Now()
	b, err := inj.ReadFile(filepath.Join(dir, "r.dat"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("read = %q, %v", b, err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("read returned in %v, want the injected delay", el)
	}
}
