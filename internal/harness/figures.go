package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"flowkv/internal/metrics"
	"flowkv/internal/statebackend"
)

// Figure is one reproducible experiment from the paper.
type Figure struct {
	// ID is the paper's figure number ("fig4" ... "fig13").
	ID string
	// Title describes the experiment.
	Title string
	// Run executes the experiment at the given scale, printing the
	// figure's rows/series to w.
	Run func(sc Scale, w io.Writer) error
}

// Figures lists every reproduced figure in paper order.
func Figures() []Figure {
	return []Figure{
		{"fig4", "Execution-time breakdown of Flink on RocksDB and Faster (motivation)", Fig4},
		{"fig8", "Throughput for the NEXMark queries with increasing window sizes", Fig8},
		{"fig9", "P95 latency vs tuple rate (Q7, Q11-Median, Q11)", Fig9},
		{"fig10", "Store CPU time by operation (write / read+delete / compaction)", Fig10},
		{"fig11", "Throughput and prefetch hit ratio vs read batch ratio", Fig11},
		{"fig12", "Throughput vs maximum space amplification (MSA)", Fig12},
		{"fig13", "Max throughput of Q11-Median vs worker count", Fig13},
	}
}

// breakdownQueries are the three queries the paper breaks down: one per
// access pattern (AAR, AUR, RMW).
func breakdownQueries() []string { return []string{"Q7", "Q11-Median", "Q11"} }

// Fig4 reproduces the motivation experiment: execution-time breakdown of
// the baseline stores on the three pattern-representative queries.
func Fig4(sc Scale, w io.Writer) error {
	events := GenerateEvents(sc.Events)
	opts := ScaledStoreOptions()
	opts.WindowMs = 5_000

	tb := metrics.NewTable("query", "pattern", "store", "total", "query-compute", "store-cpu", "io-wait")
	for _, q := range breakdownQueries() {
		for _, kind := range []statebackend.Kind{statebackend.KindRocksDB, statebackend.KindFaster} {
			out := RunQuery(sc, q, kind, opts, events)
			if out.Failed {
				tb.AddRow(q, patternOf(q), kind, "DNF: "+out.FailReason, "-", "-", "-")
				continue
			}
			store := out.Breakdown.StoreTotal()
			iowait := out.Breakdown.Total(metrics.OpIOWait)
			compute := out.Elapsed - store - iowait
			if compute < 0 {
				compute = 0
			}
			tb.AddRow(q, patternOf(q), kind,
				out.Elapsed.Round(time.Millisecond),
				compute.Round(time.Millisecond),
				store.Round(time.Millisecond),
				iowait.Round(time.Millisecond))
		}
	}
	fprintf(w, "Figure 4 — execution-time breakdown, %d events\n%s\n", sc.Events, tb)
	return nil
}

// Fig8Row is one bar of Figure 8.
type Fig8Row struct {
	Query    string
	WindowMs int64
	Backend  statebackend.Kind
	Outcome  RunOutcome
}

// Fig8Data runs the full throughput matrix and returns it.
func Fig8Data(sc Scale, queriesToRun []string, windows []int64) []Fig8Row {
	events := GenerateEvents(sc.Events)
	var rows []Fig8Row
	for _, q := range queriesToRun {
		for _, win := range windows {
			for _, kind := range statebackend.Kinds() {
				opts := ScaledStoreOptions()
				opts.WindowMs = win
				rows = append(rows, Fig8Row{
					Query: q, WindowMs: win, Backend: kind,
					Outcome: RunQuery(sc, q, kind, opts, events),
				})
			}
		}
	}
	return rows
}

// Fig8 reproduces the headline throughput comparison: 8 queries × 3
// window sizes × 4 stores.
func Fig8(sc Scale, w io.Writer) error {
	rows := Fig8Data(sc, allQueries(), WindowSizesMs())
	tb := metrics.NewTable("query", "pattern", "window", "store", "throughput(ev/s)", "vs-rocksdb")
	// Index rocksdb throughput for the speedup column.
	base := make(map[string]float64)
	for _, r := range rows {
		if r.Backend == statebackend.KindRocksDB && !r.Outcome.Failed {
			base[fmt.Sprintf("%s/%d", r.Query, r.WindowMs)] = r.Outcome.ThroughputTPS
		}
	}
	for _, r := range rows {
		win := fmt.Sprintf("%ds", r.WindowMs/1000)
		if r.Outcome.Failed {
			tb.AddRow(r.Query, patternOf(r.Query), win, r.Backend, "FAIL ("+shorten(r.Outcome.FailReason)+")", "-")
			continue
		}
		speed := "-"
		if b := base[fmt.Sprintf("%s/%d", r.Query, r.WindowMs)]; b > 0 {
			speed = fmt.Sprintf("%.2fx", r.Outcome.ThroughputTPS/b)
		}
		tb.AddRow(r.Query, patternOf(r.Query), win, r.Backend,
			fmt.Sprintf("%.0f", r.Outcome.ThroughputTPS), speed)
	}
	fprintf(w, "Figure 8 — throughput on increasing window sizes, %d events\n%s\n", sc.Events, tb)
	return nil
}

// Fig9 reproduces the tail-latency experiment: P95 latency at fixed
// tuple rates for the three pattern-representative queries.
func Fig9(sc Scale, w io.Writer) error {
	rates := []float64{5_000, 10_000, 20_000, 40_000}
	tb := metrics.NewTable("query", "store", "rate(ev/s)", "P50", "P95")
	for _, q := range breakdownQueries() {
		for _, kind := range statebackend.Kinds() {
			for _, rate := range rates {
				opts := ScaledStoreOptions()
				opts.WindowMs = 5_000
				opts.RateEPS = rate
				n := int(rate * sc.LatencySeconds)
				if n < 500 {
					n = 500
				}
				events := TruncateEvents(GenerateEvents(n), n)
				out := RunQuery(sc, q, kind, opts, events)
				if out.Failed {
					tb.AddRow(q, kind, fmt.Sprintf("%.0f", rate), "FAIL", shorten(out.FailReason))
					continue
				}
				// A run that can't keep up with the offered rate has
				// unbounded latency; mark it like the paper's truncated
				// curves.
				if out.ThroughputTPS < rate*0.7 {
					tb.AddRow(q, kind, fmt.Sprintf("%.0f", rate), "overload", "overload")
					continue
				}
				tb.AddRow(q, kind, fmt.Sprintf("%.0f", rate),
					out.P50.Round(time.Microsecond), out.P95.Round(time.Microsecond))
			}
		}
	}
	fprintf(w, "Figure 9 — P95 latency vs tuple rate (window 5s)\n%s\n", tb)
	return nil
}

// Fig10 reproduces the store CPU-time breakdown by operation.
func Fig10(sc Scale, w io.Writer) error {
	events := GenerateEvents(sc.Events)
	kinds := []statebackend.Kind{statebackend.KindFlowKV, statebackend.KindRocksDB, statebackend.KindFaster}
	tb := metrics.NewTable("query", "store", "write", "read+delete", "compaction", "store-total")
	for _, q := range breakdownQueries() {
		for _, kind := range kinds {
			opts := ScaledStoreOptions()
			opts.WindowMs = 5_000
			out := RunQuery(sc, q, kind, opts, events)
			if out.Failed {
				tb.AddRow(q, kind, "DNF", "-", "-", "-")
				continue
			}
			tb.AddRow(q, kind,
				out.Breakdown.Total(metrics.OpWrite).Round(time.Millisecond),
				out.Breakdown.Total(metrics.OpRead).Round(time.Millisecond),
				out.Breakdown.Total(metrics.OpCompact).Round(time.Millisecond),
				out.Breakdown.StoreTotal().Round(time.Millisecond))
		}
	}
	fprintf(w, "Figure 10 — store CPU time by operation, %d events\n%s\n", sc.Events, tb)
	return nil
}

// Fig11Point is one x-position of Figure 11: throughput and hit ratio at
// one read batch ratio.
type Fig11Point struct {
	Query         string
	Ratio         float64
	ThroughputTPS float64
	HitRatio      float64
	Failed        bool
}

// Fig11Ratios returns the swept read-batch ratios (0 disables prediction).
func Fig11Ratios() []float64 { return []float64{0, 0.01, 0.02, 0.05, 0.1} }

// Fig11Data sweeps the predictive-batch-read ratio on the AUR queries.
func Fig11Data(sc Scale) []Fig11Point {
	events := GenerateEvents(sc.Events)
	var pts []Fig11Point
	for _, q := range []string{"Q11-Median", "Q7-Session"} {
		for _, ratio := range Fig11Ratios() {
			opts := ScaledStoreOptions()
			opts.WindowMs = 5_000
			// A tiny write buffer forces the disk path even at quick
			// scale; prediction is pointless if nothing ever flushes.
			opts.FlowKV.WriteBufferBytes = 64 << 10
			if ratio == 0 {
				opts.FlowKV.ReadBatchRatio = -1 // explicit disable
			} else {
				opts.FlowKV.ReadBatchRatio = ratio
			}
			out := RunQuery(sc, q, statebackend.KindFlowKV, opts, events)
			pts = append(pts, Fig11Point{
				Query: q, Ratio: ratio,
				ThroughputTPS: out.ThroughputTPS,
				HitRatio:      out.FlowKV.HitRatio(),
				Failed:        out.Failed,
			})
		}
	}
	return pts
}

// Fig11 reproduces the predictive-batch-read sensitivity study.
func Fig11(sc Scale, w io.Writer) error {
	pts := Fig11Data(sc)
	tb := metrics.NewTable("query", "read-batch-ratio", "throughput(ev/s)", "hit-ratio")
	for _, p := range pts {
		if p.Failed {
			tb.AddRow(p.Query, p.Ratio, "FAIL", "-")
			continue
		}
		tb.AddRow(p.Query, p.Ratio, fmt.Sprintf("%.0f", p.ThroughputTPS), fmt.Sprintf("%.3f", p.HitRatio))
	}
	fprintf(w, "Figure 11 — effect of predictive batch read, %d events\n%s\n", sc.Events, tb)
	return nil
}

// Fig12MSAs returns the swept MSA thresholds.
func Fig12MSAs() []float64 { return []float64{1.1, 1.25, 1.5, 2.0, 3.0} }

// Fig12 reproduces the MSA (compaction threshold) sensitivity study.
func Fig12(sc Scale, w io.Writer) error {
	events := GenerateEvents(sc.Events)
	tb := metrics.NewTable("query", "MSA", "throughput(ev/s)", "compactions")
	for _, q := range []string{"Q11-Median", "Q7-Session"} {
		for _, msa := range Fig12MSAs() {
			opts := ScaledStoreOptions()
			opts.WindowMs = 5_000
			opts.FlowKV.MaxSpaceAmplification = msa
			out := RunQuery(sc, q, statebackend.KindFlowKV, opts, events)
			if out.Failed {
				tb.AddRow(q, msa, "FAIL", "-")
				continue
			}
			tb.AddRow(q, msa, fmt.Sprintf("%.0f", out.ThroughputTPS), out.FlowKV.Compactions)
		}
	}
	fprintf(w, "Figure 12 — throughput vs MSA, %d events\n%s\n", sc.Events, tb)
	return nil
}

// Fig13Workers returns the swept worker counts.
func Fig13Workers() []int { return []int{1, 2, 4, 8} }

// Fig13 reproduces the scalability experiment: Q11-Median max throughput
// as the number of (share-nothing) workers grows. The paper scales
// machines; we scale worker goroutines with independent store instances
// and key ranges, the same share-nothing argument at process scale —
// which means measured speedup is capped by the host's core count (a
// 1-core host shows a flat curve by construction).
func Fig13(sc Scale, w io.Writer) error {
	events := GenerateEvents(sc.Events)
	fprintf(w, "host cores available: %d (speedup is bounded above by this)\n", runtime.NumCPU())
	tb := metrics.NewTable("workers", "throughput(ev/s)", "speedup")
	var base float64
	for _, workers := range Fig13Workers() {
		s := sc
		s.Parallelism = workers
		opts := ScaledStoreOptions()
		opts.WindowMs = 5_000
		out := RunQuery(s, "Q11-Median", statebackend.KindFlowKV, opts, events)
		if out.Failed {
			tb.AddRow(workers, "FAIL", "-")
			continue
		}
		if base == 0 {
			base = out.ThroughputTPS
		}
		tb.AddRow(workers, fmt.Sprintf("%.0f", out.ThroughputTPS),
			fmt.Sprintf("%.2fx", out.ThroughputTPS/base))
	}
	fprintf(w, "Figure 13 — Q11-Median scalability over workers, %d events\n%s\n", sc.Events, tb)
	return nil
}

func allQueries() []string {
	return []string{"Q5", "Q5-Append", "Q7", "Q7-Session", "Q8", "Q11", "Q11-Median", "Q12"}
}

func patternOf(q string) string {
	// Delegated to the queries package's labels without importing it in
	// every caller.
	switch q {
	case "Q5":
		return "RMW+RMW"
	case "Q5-Append":
		return "RMW+AAR"
	case "Q7", "Q8":
		return "AAR"
	case "Q7-Session", "Q11-Median":
		return "AUR"
	case "Q11", "Q12":
		return "RMW"
	default:
		return "?"
	}
}

func shorten(s string) string {
	if len(s) > 40 {
		return s[:40] + "…"
	}
	return s
}

// AblationRow is one row of the design-ablation experiment.
type AblationRow struct {
	Name          string
	Query         string
	ThroughputTPS float64
	Failed        bool
}

// Ablations benchmarks the design choices DESIGN.md calls out beyond the
// paper's own sensitivity studies: integrated vs separate compaction
// scans, coarse vs fine AAR layout, store-instance count m, and the
// Faster synchronization model.
func Ablations(sc Scale, w io.Writer) ([]AblationRow, error) {
	events := GenerateEvents(sc.Events)
	var rows []AblationRow
	add := func(name, q string, kind statebackend.Kind, mutate func(*Options)) {
		opts := ScaledStoreOptions()
		opts.WindowMs = 5_000
		if mutate != nil {
			mutate(&opts)
		}
		out := RunQuery(sc, q, kind, opts, events)
		rows = append(rows, AblationRow{Name: name, Query: q,
			ThroughputTPS: out.ThroughputTPS, Failed: out.Failed})
	}
	add("aur/integrated-compaction", "Q11-Median", statebackend.KindFlowKV, nil)
	add("aur/separate-compaction", "Q11-Median", statebackend.KindFlowKV, func(o *Options) {
		o.FlowKV.SeparateCompactionScan = true
	})
	add("aar/coarse-grained", "Q7", statebackend.KindFlowKV, nil)
	add("aar/fine-grained", "Q7", statebackend.KindFlowKV, func(o *Options) {
		o.FlowKV.FineGrainedAAR = true
	})
	for _, m := range []int{1, 2, 4} {
		m := m
		add(fmt.Sprintf("instances/m=%d", m), "Q11-Median", statebackend.KindFlowKV, func(o *Options) {
			o.FlowKV.Instances = m
		})
	}
	add("faster/sync-on", "Q11", statebackend.KindFaster, nil)
	add("faster/sync-off", "Q11", statebackend.KindFaster, func(o *Options) {
		o.Faster.NoSync = true
	})

	tb := metrics.NewTable("ablation", "query", "throughput(ev/s)")
	for _, r := range rows {
		v := fmt.Sprintf("%.0f", r.ThroughputTPS)
		if r.Failed {
			v = "FAIL"
		}
		tb.AddRow(r.Name, r.Query, v)
	}
	fprintf(w, "Ablations — design-choice studies, %d events\n%s\n", sc.Events, tb)
	return rows, nil
}

// sortRowsByQuery is a helper for stable reporting in tests.
func sortRowsByQuery(rows []Fig8Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Query != rows[j].Query {
			return rows[i].Query < rows[j].Query
		}
		return rows[i].WindowMs < rows[j].WindowMs
	})
}
