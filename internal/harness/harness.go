// Package harness runs the paper's evaluation (§6) against the Go
// reproduction: it builds NEXMark queries over each state backend, drives
// them with the deterministic generator, and prints the same rows and
// series as the paper's figures. Absolute numbers differ from the paper —
// the substrate is a scaled-down single-process simulation, not an AWS
// i3.2xlarge fleet — but the comparisons (who wins, by what factor, where
// systems fail) are the reproduction target; see EXPERIMENTS.md.
//
// Scaling. The paper processes ~400 GB with 500-2000 s windows. The
// harness shrinks the dataset (default ~150k events) and windows, and
// shrinks every store's memory the same way (small write buffers,
// memtables and in-memory log regions), preserving the "state larger
// than memory" regime in which the paper operates.
package harness

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/faster"
	"flowkv/internal/lsm"
	"flowkv/internal/memstore"
	"flowkv/internal/metrics"
	"flowkv/internal/nexmark"
	"flowkv/internal/nexmark/queries"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
)

// Scale controls how big the experiments run.
type Scale struct {
	// Events is the dataset size per run.
	Events int
	// Parallelism is the per-stage worker count.
	Parallelism int
	// ResumeParallelism, when positive and different from Parallelism,
	// makes the recovery demo resume crashed jobs at this worker count —
	// the committed state is split/merged along key ranges on restart.
	// 0 resumes at Parallelism.
	ResumeParallelism int
	// BaseDir roots all state directories (a temp dir in tests).
	BaseDir string
	// LatencySeconds bounds each fixed-rate latency measurement.
	LatencySeconds float64
}

// DefaultScale is the flowbench default: a laptop-scale reproduction.
func DefaultScale(baseDir string) Scale {
	return Scale{Events: 150_000, Parallelism: 2, BaseDir: baseDir, LatencySeconds: 2}
}

// QuickScale is used by unit tests and -quick runs.
func QuickScale(baseDir string) Scale {
	return Scale{Events: 12_000, Parallelism: 2, BaseDir: baseDir, LatencySeconds: 0.3}
}

// WindowSizesMs returns the scaled stand-ins for the paper's 500 s,
// 1000 s and 2000 s windows. Events arrive 1 ms apart, so these hold
// ~1k, ~5k and ~25k events per window instance respectively.
func WindowSizesMs() []int64 { return []int64{1_000, 5_000, 25_000} }

// Options bundles the per-store tuning used by a run.
type Options struct {
	// WindowMs is the window size / session gap.
	WindowMs int64
	// FlowKV etc. override store options.
	FlowKV core.Options
	LSM    lsm.Options
	Faster faster.Options
	Mem    memstore.Options
	// RateEPS, when positive, paces the source at this many events/s
	// (latency experiments); 0 runs full speed (throughput experiments).
	RateEPS float64
}

// ScaledStoreOptions returns store options that put every backend in the
// paper's regime at harness scale: buffers and in-memory regions far
// smaller than total state, so all stores continuously hit the disk
// path, and a memory budget the in-memory store can exceed.
func ScaledStoreOptions() Options {
	return Options{
		FlowKV: core.Options{
			WriteBufferBytes: 256 << 10, // split across m=2 instances
			Instances:        2,
		},
		LSM: lsm.Options{
			MemtableBytes:   128 << 10,
			BaseLevelBytes:  1 << 20,
			TargetFileBytes: 256 << 10,
			BlockCacheBytes: 512 << 10,
		},
		Faster: faster.Options{
			MemoryBytes: 128 << 10,
		},
		Mem: memstore.Options{
			CapacityBytes:    384 << 10, // per worker: large windows overflow
			GCThresholdBytes: 128 << 10,
			GCMarkBytesPerMs: 256 << 20,
		},
	}
}

// RunOutcome is one measured (query, backend, options) execution.
type RunOutcome struct {
	Query   string
	Backend statebackend.Kind
	// Parallelism is the per-stage worker count the run executed at.
	Parallelism int
	// Failed marks out-of-memory or other failures (the paper's crossed
	// bars); FailReason explains.
	Failed     bool
	FailReason string
	// ThroughputTPS is source events per second of wall time.
	ThroughputTPS float64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// P95, P50 are sink-side latencies.
	P95, P50 time.Duration
	// Results counts emitted result tuples.
	Results int64
	// Breakdown holds the store CPU-time and I/O accounting.
	Breakdown *metrics.Breakdown
	// FlowKV carries FlowKV-specific stats (hit ratio, compactions).
	FlowKV spe.FlowKVRunStats
	// Backends is the final per-worker store status: health state,
	// degraded-reason, and error counters, as surfaced by the runner.
	Backends []spe.BackendStatus
	// WriteErrors, ReadErrors and Recoveries aggregate the per-backend
	// fail-safe counters across all workers.
	WriteErrors, ReadErrors, Recoveries int64
	// Halt identifies which stage, worker and backend stopped a failed
	// run, and with what error; nil when the run completed.
	Halt *spe.Halt
}

// fillBackends copies the runner's health surface into the outcome.
func (out *RunOutcome) fillBackends(res *spe.RunResult) {
	if res == nil {
		return
	}
	out.Backends = res.Backends
	out.Halt = res.Halted
	for _, bs := range res.Backends {
		out.WriteErrors += bs.WriteErrors
		out.ReadErrors += bs.ReadErrors
		out.Recoveries += bs.Recoveries
	}
}

var runSeq struct {
	mu sync.Mutex
	n  int
}

func nextRunDir(base string) string {
	runSeq.mu.Lock()
	runSeq.n++
	n := runSeq.n
	runSeq.mu.Unlock()
	return filepath.Join(base, fmt.Sprintf("run-%04d", n))
}

// RunQuery executes one query over one backend at the given scale and
// options, returning the measurements. Events are generated fresh
// (deterministic seed) unless pre-generated events are supplied.
func RunQuery(sc Scale, queryName string, backend statebackend.Kind, opts Options, events []nexmark.Event) RunOutcome {
	out := RunOutcome{Query: queryName, Backend: backend, Parallelism: sc.Parallelism, Breakdown: &metrics.Breakdown{}}
	if events == nil {
		events = GenerateEvents(sc.Events)
	}
	cfg := queries.Config{
		Backend:     backend,
		BaseDir:     nextRunDir(sc.BaseDir),
		Parallelism: sc.Parallelism,
		WindowMs:    opts.WindowMs,
		FlowKV:      opts.FlowKV,
		LSM:         opts.LSM,
		Faster:      opts.Faster,
		Mem:         opts.Mem,
		Breakdown:   out.Breakdown,
	}
	q, err := queries.Build(queryName, cfg)
	if err != nil {
		out.Failed, out.FailReason = true, err.Error()
		return out
	}
	src := q.Source(events)
	if opts.RateEPS > 0 {
		src = RateLimit(src, opts.RateEPS)
	}
	res, err := spe.Run(q.Pipeline, src, nil)
	if err != nil {
		out.Failed, out.FailReason = true, err.Error()
		if res != nil {
			out.Elapsed = res.Elapsed
			out.fillBackends(res)
		}
		return out
	}
	out.ThroughputTPS = res.ThroughputTPS
	out.Elapsed = res.Elapsed
	out.P95 = res.Latency.P95()
	out.P50 = res.Latency.P50()
	out.Results = res.Results
	out.FlowKV = res.FlowKV
	out.fillBackends(res)
	return out
}

// GenerateEvents produces the standard deterministic dataset.
func GenerateEvents(n int) []nexmark.Event {
	return nexmark.NewGenerator(nexmark.GeneratorConfig{
		Events:       n,
		InterEventMs: 1,
		Seed:         2023,
	}).All()
}

// RateLimit paces a source at eps tuples per second with a token bucket,
// stamping tuples with their true emission wall time (the latency
// experiments' fixed-tuple-rate broker, §6.2).
func RateLimit(src spe.Source, eps float64) spe.Source {
	return func(emit func(spe.Tuple)) {
		interval := time.Duration(float64(time.Second) / eps)
		next := time.Now()
		src(func(t spe.Tuple) {
			now := time.Now()
			if now.Before(next) {
				time.Sleep(next.Sub(now))
				now = time.Now()
			}
			next = next.Add(interval)
			if next.Before(now.Add(-100 * time.Millisecond)) {
				next = now // don't accumulate unbounded debt
			}
			t.WallNS = time.Now().UnixNano()
			emit(t)
		})
	}
}

// TruncateEvents bounds a run's duration for fixed-rate experiments.
func TruncateEvents(events []nexmark.Event, n int) []nexmark.Event {
	if n < len(events) {
		return events[:n]
	}
	return events
}

// fprintf writes to w, ignoring nil writers.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
