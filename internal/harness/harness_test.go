package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
)

func quickScale(t *testing.T) Scale {
	t.Helper()
	sc := QuickScale(t.TempDir())
	sc.Events = 6_000
	return sc
}

func TestRunQueryProducesMeasurements(t *testing.T) {
	sc := quickScale(t)
	opts := ScaledStoreOptions()
	opts.WindowMs = 2_000
	out := RunQuery(sc, "Q11", statebackend.KindFlowKV, opts, nil)
	if out.Failed {
		t.Fatalf("run failed: %s", out.FailReason)
	}
	if out.ThroughputTPS <= 0 || out.Elapsed <= 0 {
		t.Errorf("throughput=%f elapsed=%v", out.ThroughputTPS, out.Elapsed)
	}
	if out.Results == 0 {
		t.Error("no results emitted")
	}
	if out.Breakdown.StoreTotal() == 0 {
		t.Error("no store CPU time recorded")
	}
}

func TestRunQueryUnknownQuery(t *testing.T) {
	sc := quickScale(t)
	out := RunQuery(sc, "Q99", statebackend.KindInMem, Options{WindowMs: 1000}, nil)
	if !out.Failed {
		t.Error("unknown query should fail")
	}
}

func TestInMemOOMReproducesFailureBars(t *testing.T) {
	// The paper's crossed-out bars: the in-memory store fails on large
	// windows. Our GC/capacity model must reproduce that failure mode.
	sc := quickScale(t)
	sc.Events = 30_000
	opts := ScaledStoreOptions()
	opts.WindowMs = 25_000 // large state
	out := RunQuery(sc, "Q7", statebackend.KindInMem, opts, nil)
	if !out.Failed || !strings.Contains(out.FailReason, "out of memory") {
		t.Errorf("expected OOM on large window, got failed=%v reason=%q", out.Failed, out.FailReason)
	}
	// Small windows must still succeed.
	opts.WindowMs = 500
	out = RunQuery(sc, "Q7", statebackend.KindInMem, opts, nil)
	if out.Failed {
		t.Errorf("small window failed: %s", out.FailReason)
	}
}

func TestRateLimitPacesSource(t *testing.T) {
	var emitted int
	src := RateLimit(func(emit func(spe.Tuple)) {
		for i := 0; i < 200; i++ {
			emit(spe.Tuple{TS: int64(i)})
		}
	}, 2000) // 2000 ev/s -> 200 events take ~100ms
	start := time.Now()
	src(func(t spe.Tuple) { emitted++ })
	elapsed := time.Since(start)
	if emitted != 200 {
		t.Fatalf("emitted %d", emitted)
	}
	if elapsed < 70*time.Millisecond {
		t.Errorf("rate limiter too fast: %v", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("rate limiter too slow: %v", elapsed)
	}
}

func TestFig11DataShape(t *testing.T) {
	sc := quickScale(t)
	pts := Fig11Data(sc)
	if len(pts) != 2*len(Fig11Ratios()) {
		t.Fatalf("%d points", len(pts))
	}
	// Prediction disabled (ratio 0) must not be the best configuration —
	// the Figure 11 shape.
	byQuery := map[string]map[float64]Fig11Point{}
	for _, p := range pts {
		if p.Failed {
			t.Fatalf("point failed: %+v", p)
		}
		if byQuery[p.Query] == nil {
			byQuery[p.Query] = map[float64]Fig11Point{}
		}
		byQuery[p.Query][p.Ratio] = p
	}
	for q, m := range byQuery {
		if m[0].HitRatio != 0 {
			t.Errorf("%s: hit ratio %f with prediction disabled", q, m[0].HitRatio)
		}
		if m[0.02].HitRatio <= 0.3 {
			t.Errorf("%s: hit ratio %f at ratio 0.02, want high", q, m[0.02].HitRatio)
		}
	}
}

func TestFiguresRegistryRunsQuick(t *testing.T) {
	// Smoke-run the cheap figures end to end at tiny scale.
	sc := QuickScale(t.TempDir())
	sc.Events = 3_000
	sc.LatencySeconds = 0.1
	for _, fig := range Figures() {
		switch fig.ID {
		case "fig8", "fig9", "fig13":
			continue // exercised separately / too slow for unit tests
		}
		fig := fig
		t.Run(fig.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := fig.Run(sc, &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Error("figure printed nothing")
			}
		})
	}
}

func TestFig8DataSubset(t *testing.T) {
	sc := quickScale(t)
	rows := Fig8Data(sc, []string{"Q11"}, []int64{2_000})
	if len(rows) != len(statebackend.Kinds()) {
		t.Fatalf("%d rows", len(rows))
	}
	sortRowsByQuery(rows)
	for _, r := range rows {
		if r.Backend == statebackend.KindInMem {
			continue // may fail by design
		}
		if r.Outcome.Failed {
			t.Errorf("%s/%s failed: %s", r.Query, r.Backend, r.Outcome.FailReason)
		}
	}
}

func TestAblations(t *testing.T) {
	sc := quickScale(t)
	var buf bytes.Buffer
	rows, err := Ablations(sc, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	for _, r := range rows {
		if r.Failed {
			t.Errorf("ablation %s failed", r.Name)
		}
	}
	if !strings.Contains(buf.String(), "aur/integrated-compaction") {
		t.Error("report missing rows")
	}
}

func TestTruncateEvents(t *testing.T) {
	ev := GenerateEvents(100)
	if got := TruncateEvents(ev, 10); len(got) != 10 {
		t.Errorf("truncate = %d", len(got))
	}
	if got := TruncateEvents(ev, 1000); len(got) != 100 {
		t.Errorf("over-truncate = %d", len(got))
	}
}
