package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"flowkv/internal/metrics"
	"flowkv/internal/nexmark"
	"flowkv/internal/nexmark/queries"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
)

// MigrateOutcome is one query's live-migration measurement: the same
// job run uninterrupted (golden) and with one key-range handoff
// scheduled mid-stream, compared by committed sink ledger and by
// sink-side latency of the keys that did NOT move.
type MigrateOutcome struct {
	Query   string
	Backend statebackend.Kind
	// Pattern is the store access pattern the query exercises.
	Pattern string
	// Events is the dataset size.
	Events int
	// Parallelism is the per-stage worker count.
	Parallelism int
	// Stage, Bucket and To identify the scheduled handoff: hash bucket
	// Bucket of pipeline stage Stage moves to worker To.
	Stage, Bucket, To int
	// Committed and Aborted count journaled migration attempts by final
	// state; the demo schedules one handoff and expects one commit.
	Committed, Aborted int
	// Results counts committed sink records in the migrated job's ledger.
	Results int
	// ExactlyOnce reports the migrated job's committed ledger was
	// byte-identical to the golden run's.
	ExactlyOnce bool
	// MovedP99 is the sink-side p99 latency of results whose key lives
	// in the migrated bucket — these pay the handoff pause.
	MovedP99 time.Duration
	// OtherP50/OtherP99 are the same for every untouched bucket, and
	// GoldenOtherP99 is the untouched buckets' p99 in the golden run.
	// BoundedP99 is the demo's claim: migrating one bucket must not
	// collapse the latency of keys that did not move.
	OtherP50, OtherP99 time.Duration
	GoldenOtherP99     time.Duration
	BoundedP99         bool
	// Failed marks a demo leg that could not complete; FailReason says
	// why (a diverged ledger or an unbounded p99 also sets Failed).
	Failed     bool
	FailReason string
}

// latTap is a stateless pipeline stage appended after the query's last
// stateful stage: it timestamps every sink-bound result and buckets the
// latency by whether the result's key lives in the migrating hash
// bucket. Being a Map stage it carries no state, so it is invisible to
// the job's checkpoints and to the ledger oracle.
type latTap struct {
	par, bucket  int
	moved, other *metrics.Histogram
}

func newLatTap(par, bucket int) *latTap {
	return &latTap{par: par, bucket: bucket,
		moved: metrics.NewHistogram(), other: metrics.NewHistogram()}
}

func (lt *latTap) stage() spe.Stage {
	return spe.Stage{
		Name:        "mig-tap",
		Parallelism: 1,
		Map: func(t spe.Tuple, emit func(spe.Tuple)) {
			if t.WallNS > 0 {
				d := time.Duration(time.Now().UnixNano() - t.WallNS)
				if spe.WorkerForKey(t.Key, lt.par) == lt.bucket {
					lt.moved.Observe(d)
				} else {
					lt.other.Observe(d)
				}
			}
			emit(t)
		},
	}
}

// boundedP99 is the demo's smoke bound on untouched-range latency: the
// migrated run's p99 may pay the shared checkpoint barrier the handoff
// rides on, but not a stall proportional to total state. The bound is
// deliberately generous — it catches a collapse (seconds of stall),
// not a regression in the noise.
func boundedP99(other, golden time.Duration) bool {
	limit := 20*golden + 500*time.Millisecond
	return other <= limit
}

// MigrateDemo demonstrates live key-range migration over FlowKV: for
// each pattern-covering query it runs an uninterrupted golden job, then
// the same job with one hash bucket of the stateful stage handed off to
// another worker mid-stream, and checks (a) the committed ledgers are
// byte-identical — the handoff lost and duplicated nothing — and
// (b) the sink-side p99 of keys in untouched buckets stayed bounded —
// the rest of the job kept ingesting while one range moved.
func MigrateDemo(sc Scale, w io.Writer) ([]MigrateOutcome, error) {
	fprintf(w, "%-11s %-8s %5s %12s %9s %10s %10s %12s  %s\n",
		"query", "pattern", "par", "handoff", "results", "moved-p99", "other-p99", "golden-p99", "exactly-once")
	var outs []MigrateOutcome
	var failed int
	for _, name := range RecoveryQueries() {
		out := migrateOne(sc, name)
		outs = append(outs, out)
		if out.Failed {
			failed++
			fprintf(w, "%-11s %-8s FAILED: %s\n", out.Query, out.Pattern, out.FailReason)
			continue
		}
		fprintf(w, "%-11s %-8s %5d %12s %9d %10v %10v %12v  %v\n",
			out.Query, out.Pattern, out.Parallelism,
			fmt.Sprintf("s%d b%d->w%d", out.Stage, out.Bucket, out.To),
			out.Results, out.MovedP99.Round(time.Microsecond),
			out.OtherP99.Round(time.Microsecond),
			out.GoldenOtherP99.Round(time.Microsecond), out.ExactlyOnce)
	}
	if failed > 0 {
		return outs, fmt.Errorf("harness: %d of %d migration legs failed", failed, len(outs))
	}
	return outs, nil
}

func migrateOne(sc Scale, name string) MigrateOutcome {
	out := MigrateOutcome{
		Query:       name,
		Backend:     statebackend.KindFlowKV,
		Pattern:     queries.PatternOf(name),
		Events:      sc.Events,
		Parallelism: sc.Parallelism,
	}
	fail := func(err error) MigrateOutcome {
		out.Failed, out.FailReason = true, err.Error()
		return out
	}
	if sc.Parallelism < 2 {
		return fail(errors.New("migration demo needs at least 2 workers"))
	}
	// Move bucket 0 of the query's (single) stateful stage off its
	// hash-default owner (worker 0) to worker 1.
	out.Stage, out.Bucket, out.To = 0, 0, 1

	gencfg := nexmark.GeneratorConfig{Events: sc.Events, InterEventMs: 1, Seed: 2023}
	flowkv := ScaledStoreOptions().FlowKV
	every := sc.Events / 5
	if every < 100 {
		every = 100
	}
	build := func(stateDir string, tap *latTap) (*queries.Query, error) {
		q, err := queries.Build(name, queries.Config{
			Backend:     statebackend.KindFlowKV,
			BaseDir:     stateDir,
			Parallelism: sc.Parallelism,
			WindowMs:    1000,
			FlowKV:      flowkv,
		})
		if err != nil {
			return nil, err
		}
		q.Pipeline.Stages = append(q.Pipeline.Stages, tap.stage())
		return q, nil
	}

	// Golden: the same job and tap, no migration.
	goldenBase := nextRunDir(sc.BaseDir)
	goldenTap := newLatTap(sc.Parallelism, out.Bucket)
	gq, err := build(filepath.Join(goldenBase, "state"), goldenTap)
	if err != nil {
		return fail(err)
	}
	gjob := &spe.Job{
		Pipeline:        gq.Pipeline,
		Source:          gq.ReplaySource(gencfg),
		Dir:             filepath.Join(goldenBase, "job"),
		CheckpointEvery: every,
	}
	gres, err := gjob.Run()
	if err != nil {
		return fail(fmt.Errorf("golden run: %w", err))
	}
	if !gres.Final {
		return fail(errors.New("golden run did not reach its final commit"))
	}
	golden, err := spe.ReadLedgerBytes(nil, gjob.Dir)
	if err != nil {
		return fail(err)
	}
	if len(golden) == 0 {
		return fail(errors.New("golden run produced an empty ledger"))
	}
	out.GoldenOtherP99 = goldenTap.other.P99()

	// Migrated: one handoff scheduled after ~40% of the stream, so the
	// bucket moves while both it and its neighbors are still ingesting.
	migBase := nextRunDir(sc.BaseDir)
	migTap := newLatTap(sc.Parallelism, out.Bucket)
	mq, err := build(filepath.Join(migBase, "state"), migTap)
	if err != nil {
		return fail(err)
	}
	mjob := &spe.Job{
		Pipeline:        mq.Pipeline,
		Source:          mq.ReplaySource(gencfg),
		Dir:             filepath.Join(migBase, "job"),
		CheckpointEvery: every,
		Migrations: []spe.Migration{{
			Stage:       out.Stage,
			Bucket:      out.Bucket,
			To:          out.To,
			AfterOffset: int64(sc.Events) * 2 / 5,
		}},
	}
	mres, err := mjob.Run()
	if err != nil {
		return fail(fmt.Errorf("migrated run: %w", err))
	}
	if !mres.Final {
		return fail(errors.New("migrated run did not reach its final commit"))
	}

	recs, err := spe.ReadMigrationJournal(nil, mjob.Dir)
	if err != nil {
		return fail(err)
	}
	for _, r := range recs {
		switch r.State {
		case spe.MigStateCommitted:
			out.Committed++
		case spe.MigStateAborted:
			out.Aborted++
		}
	}
	if out.Committed == 0 {
		return fail(fmt.Errorf("handoff never committed (%d journal records, %d aborted)",
			len(recs), out.Aborted))
	}
	meta, err := spe.ReadJobMeta(nil, mjob.Dir)
	if err != nil {
		return fail(err)
	}
	if out.Stage >= len(meta.Routing) || out.Bucket >= len(meta.Routing[out.Stage]) ||
		int(meta.Routing[out.Stage][out.Bucket]) != out.To {
		return fail(fmt.Errorf("committed routing table does not place bucket %d on worker %d",
			out.Bucket, out.To))
	}

	migrated, err := spe.ReadLedgerBytes(nil, mjob.Dir)
	if err != nil {
		return fail(err)
	}
	lrecs, err := spe.ReadLedger(nil, mjob.Dir)
	if err != nil {
		return fail(err)
	}
	out.Results = len(lrecs)
	out.ExactlyOnce = bytes.Equal(golden, migrated)
	if !out.ExactlyOnce {
		return fail(fmt.Errorf("sink ledger diverged from golden run (%d vs %d bytes)",
			len(migrated), len(golden)))
	}

	out.MovedP99 = migTap.moved.P99()
	out.OtherP50 = migTap.other.P50()
	out.OtherP99 = migTap.other.P99()
	if migTap.other.Count() == 0 {
		return fail(errors.New("no results observed outside the migrated bucket"))
	}
	out.BoundedP99 = boundedP99(out.OtherP99, out.GoldenOtherP99)
	if !out.BoundedP99 {
		return fail(fmt.Errorf("untouched-range p99 collapsed: %v (golden %v)",
			out.OtherP99, out.GoldenOtherP99))
	}
	return out
}
