package harness

import (
	"strings"
	"testing"
)

// TestMigrateDemo runs the live-migration demo at test scale: every
// pattern-covering query must commit its scheduled handoff, keep the
// ledger byte-identical to an unmigrated run, and keep the untouched
// buckets' sink latency bounded while the range moves.
func TestMigrateDemo(t *testing.T) {
	sc := quickScale(t)
	var buf strings.Builder
	outs, err := MigrateDemo(sc, &buf)
	if err != nil {
		t.Fatalf("MigrateDemo: %v\n%s", err, buf.String())
	}
	if len(outs) != len(RecoveryQueries()) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(RecoveryQueries()))
	}
	for _, out := range outs {
		if out.Failed {
			t.Errorf("%s: failed: %s", out.Query, out.FailReason)
			continue
		}
		if !out.ExactlyOnce {
			t.Errorf("%s: migrated ledger not exactly-once", out.Query)
		}
		if out.Committed == 0 {
			t.Errorf("%s: handoff never committed", out.Query)
		}
		if !out.BoundedP99 {
			t.Errorf("%s: untouched-range p99 unbounded: %v (golden %v)",
				out.Query, out.OtherP99, out.GoldenOtherP99)
		}
		if out.Results == 0 {
			t.Errorf("%s: empty ledger", out.Query)
		}
	}
	if !strings.Contains(buf.String(), "exactly-once") {
		t.Errorf("missing table header in output:\n%s", buf.String())
	}
}
