package harness

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"flowkv/internal/core"
	"flowkv/internal/nexmark"
	"flowkv/internal/nexmark/queries"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
)

// RecoveryQueries lists the queries the recovery demo exercises — one
// per FlowKV store pattern, so every checkpoint/restore path is covered:
// Q7 (AAR, fixed windows), Q7-Session (AUR, session windows) and Q12
// (RMW, global window).
func RecoveryQueries() []string { return []string{"Q7", "Q7-Session", "Q12"} }

// RecoveryOutcome is one query's crash-restart measurement: a golden
// uninterrupted job and a killed-then-resumed job over the same stream,
// compared by committed sink ledger.
type RecoveryOutcome struct {
	Query   string
	Backend statebackend.Kind
	// Pattern is the store access pattern the query exercises.
	Pattern string
	// Events is the dataset size.
	Events int
	// Parallelism is the golden run's (and the crashed run's initial)
	// per-stage worker count; ResumeParallelism is the worker count the
	// crashed job was resumed at. When they differ, the resume split or
	// merged the committed key ranges, and the ledger oracle proves the
	// rescale preserved exactly-once output.
	Parallelism       int
	ResumeParallelism int
	// KilledAfter is the tuple count at which the first run's simulated
	// crash fired.
	KilledAfter int64
	// Resumes counts the restarts needed to reach the final commit.
	Resumes int
	// Checkpoints is the total number of commits across the killed run
	// and all resumes (including the final commit).
	Checkpoints int64
	// Results counts committed sink records in the resumed job's ledger.
	Results int
	// Recoveries aggregates self-healer recoveries observed across runs.
	Recoveries int64
	// ExactlyOnce reports the resumed job's committed ledger was
	// byte-identical to the golden run's — no lost or duplicated result.
	ExactlyOnce bool
	// Failed marks a demo leg that could not complete; FailReason says
	// why (a diverged ledger also sets Failed).
	Failed     bool
	FailReason string
}

// RecoveryDemo demonstrates pipeline-level crash-restart recovery over
// FlowKV: for each pattern-covering query it runs an uninterrupted
// golden job, then the same job killed mid-stream and resumed from its
// last committed checkpoint (source seeked back, segment replayed,
// uncommitted ledger suffix discarded), and checks the two committed
// ledgers are byte-identical. Self-healing is enabled on the
// crashed-job path, as a production restart would run it.
func RecoveryDemo(sc Scale, w io.Writer) ([]RecoveryOutcome, error) {
	fprintf(w, "%-11s %-8s %7s %9s %8s %6s %8s %6s  %s\n",
		"query", "pattern", "par", "killed@", "resumes", "ckpts", "results", "heals", "exactly-once")
	var outs []RecoveryOutcome
	var failed int
	for _, name := range RecoveryQueries() {
		out := recoverOne(sc, name)
		outs = append(outs, out)
		if out.Failed {
			failed++
			fprintf(w, "%-11s %-8s FAILED: %s\n", out.Query, out.Pattern, out.FailReason)
			continue
		}
		par := fmt.Sprintf("%d", out.Parallelism)
		if out.ResumeParallelism != out.Parallelism {
			par = fmt.Sprintf("%d->%d", out.Parallelism, out.ResumeParallelism)
		}
		fprintf(w, "%-11s %-8s %7s %9d %8d %6d %8d %6d  %v\n",
			out.Query, out.Pattern, par, out.KilledAfter, out.Resumes,
			out.Checkpoints, out.Results, out.Recoveries, out.ExactlyOnce)
	}
	if failed > 0 {
		return outs, fmt.Errorf("harness: %d of %d recovery legs failed", failed, len(outs))
	}
	return outs, nil
}

func recoverOne(sc Scale, name string) RecoveryOutcome {
	out := RecoveryOutcome{
		Query:   name,
		Backend: statebackend.KindFlowKV,
		Pattern: queries.PatternOf(name),
		Events:  sc.Events,
	}
	fail := func(err error) RecoveryOutcome {
		out.Failed, out.FailReason = true, err.Error()
		return out
	}
	out.Parallelism = sc.Parallelism
	out.ResumeParallelism = sc.ResumeParallelism
	if out.ResumeParallelism <= 0 {
		out.ResumeParallelism = sc.Parallelism
	}
	gencfg := nexmark.GeneratorConfig{Events: sc.Events, InterEventMs: 1, Seed: 2023}
	flowkv := ScaledStoreOptions().FlowKV
	every := sc.Events / 5
	if every < 100 {
		every = 100
	}
	// build takes the parallelism explicitly: the golden run and the
	// initial crashed run use sc.Parallelism, but resumes use the
	// (possibly different) resume parallelism — the run being rebuilt,
	// not the one that committed, decides the worker count.
	build := func(stateDir string, par int) (*queries.Query, error) {
		return queries.Build(name, queries.Config{
			Backend:     statebackend.KindFlowKV,
			BaseDir:     stateDir,
			Parallelism: par,
			WindowMs:    1000,
			FlowKV:      flowkv,
		})
	}
	account := func(res *spe.JobResult) {
		if res == nil || res.RunResult == nil {
			return
		}
		out.Checkpoints += res.Checkpoints
		for _, bs := range res.Backends {
			out.Recoveries += bs.Recoveries
		}
	}

	// Golden: the same job, never interrupted.
	goldenBase := nextRunDir(sc.BaseDir)
	gq, err := build(filepath.Join(goldenBase, "state"), sc.Parallelism)
	if err != nil {
		return fail(err)
	}
	gjob := &spe.Job{
		Pipeline:        gq.Pipeline,
		Source:          gq.ReplaySource(gencfg),
		Dir:             filepath.Join(goldenBase, "job"),
		CheckpointEvery: every,
	}
	gres, err := gjob.Run()
	if err != nil {
		return fail(fmt.Errorf("golden run: %w", err))
	}
	if !gres.Final {
		return fail(errors.New("golden run did not reach its final commit"))
	}
	golden, err := spe.ReadLedgerBytes(nil, gjob.Dir)
	if err != nil {
		return fail(err)
	}
	if len(golden) == 0 {
		return fail(errors.New("golden run produced an empty ledger"))
	}

	// Crashed: killed ~40% into the stream, then restarted until final.
	crashBase := nextRunDir(sc.BaseDir)
	stateDir := filepath.Join(crashBase, "state")
	jobDir := filepath.Join(crashBase, "job")
	mk := func(kill int64, par int) (*spe.Job, error) {
		q, err := build(stateDir, par)
		if err != nil {
			return nil, err
		}
		return &spe.Job{
			Pipeline:        q.Pipeline,
			Source:          q.ReplaySource(gencfg),
			Dir:             jobDir,
			CheckpointEvery: every,
			KillAfterTuples: kill,
			SelfHeal:        &core.SelfHealOptions{},
		}, nil
	}
	out.KilledAfter = int64(sc.Events) * 2 / 5
	job, err := mk(out.KilledAfter, sc.Parallelism)
	if err != nil {
		return fail(err)
	}
	res, err := job.Run()
	account(res)
	if err == nil {
		return fail(errors.New("kill knob did not fire"))
	}
	if !errors.Is(err, spe.ErrJobKilled) {
		return fail(fmt.Errorf("killed run: %w", err))
	}
	for res == nil || !res.Final {
		if out.Resumes >= 10 {
			return fail(errors.New("job did not reach its final commit within 10 resumes"))
		}
		out.Resumes++
		if job, err = mk(0, out.ResumeParallelism); err != nil {
			return fail(err)
		}
		if _, err := spe.ReadJobMeta(nil, jobDir); err == nil {
			res, err = job.Resume()
		} else {
			// Killed before the first commit: start over.
			res, err = job.Run()
		}
		account(res)
		if err != nil {
			return fail(fmt.Errorf("resume %d: %w", out.Resumes, err))
		}
	}
	crashed, err := spe.ReadLedgerBytes(nil, jobDir)
	if err != nil {
		return fail(err)
	}
	recs, err := spe.ReadLedger(nil, jobDir)
	if err != nil {
		return fail(err)
	}
	out.Results = len(recs)
	out.ExactlyOnce = bytes.Equal(golden, crashed)
	if !out.ExactlyOnce {
		return fail(fmt.Errorf("sink ledger diverged from golden run (%d vs %d bytes)",
			len(crashed), len(golden)))
	}
	return out
}
