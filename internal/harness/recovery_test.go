package harness

import (
	"strings"
	"testing"
)

// TestRecoveryDemo runs the crash-restart demo at test scale: every
// pattern-covering query must survive a mid-stream kill and resume to a
// ledger byte-identical to an uninterrupted run.
func TestRecoveryDemo(t *testing.T) {
	sc := quickScale(t)
	var buf strings.Builder
	outs, err := RecoveryDemo(sc, &buf)
	if err != nil {
		t.Fatalf("RecoveryDemo: %v\n%s", err, buf.String())
	}
	if len(outs) != len(RecoveryQueries()) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(RecoveryQueries()))
	}
	for _, out := range outs {
		if out.Failed {
			t.Errorf("%s: failed: %s", out.Query, out.FailReason)
			continue
		}
		if !out.ExactlyOnce {
			t.Errorf("%s: ledger not exactly-once", out.Query)
		}
		if out.Resumes == 0 {
			t.Errorf("%s: job was never resumed", out.Query)
		}
		if out.Checkpoints == 0 {
			t.Errorf("%s: no checkpoints committed", out.Query)
		}
		if out.Results == 0 {
			t.Errorf("%s: empty ledger", out.Query)
		}
	}
	if !strings.Contains(buf.String(), "exactly-once") {
		t.Errorf("missing table header in output:\n%s", buf.String())
	}
}

// TestRecoveryDemoRescale is the demo's rescale leg: crashed jobs resume
// at a different parallelism, so the restart splits the committed key
// ranges, and the ledger oracle must still hold exactly.
func TestRecoveryDemoRescale(t *testing.T) {
	sc := quickScale(t)
	sc.ResumeParallelism = sc.Parallelism + 1
	var buf strings.Builder
	outs, err := RecoveryDemo(sc, &buf)
	if err != nil {
		t.Fatalf("RecoveryDemo (rescale): %v\n%s", err, buf.String())
	}
	for _, out := range outs {
		if out.Failed {
			t.Errorf("%s: failed: %s", out.Query, out.FailReason)
			continue
		}
		if !out.ExactlyOnce {
			t.Errorf("%s: rescaled ledger not exactly-once", out.Query)
		}
		if out.ResumeParallelism != sc.Parallelism+1 {
			t.Errorf("%s: ResumeParallelism = %d, want %d", out.Query, out.ResumeParallelism, sc.Parallelism+1)
		}
	}
}
