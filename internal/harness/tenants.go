package harness

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/jobmanager"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// TenantDemoOutcome is the multi-tenant demo's result: the persisted
// per-tenant stats and pool status (what `flowkvctl tenants` renders),
// plus the demo's own verdicts.
type TenantDemoOutcome struct {
	// Dir is the manager directory holding TENANTS.json and the
	// per-tenant job state; point `flowkvctl tenants` at it.
	Dir     string                  `json:"dir"`
	Tenants []jobmanager.Stats      `json:"tenants"`
	Slots   []jobmanager.SlotStatus `json:"slots"`
	// VictimExactlyOnce reports the well-behaved tenant's ledger matched
	// a standalone golden run byte for byte despite the contention and
	// the injected slot failure.
	VictimExactlyOnce bool `json:"victim_exactly_once"`
	// Failovers is the total number of tenant moves off the faulted
	// slot.
	Failovers int64 `json:"failovers"`
	// Failed/FailReason flag a demo that did not meet its own SLOs.
	Failed     bool   `json:"failed,omitempty"`
	FailReason string `json:"fail_reason,omitempty"`
}

// demoTuples synthesizes the demo's deterministic keyed stream.
func demoTuples(n int) []spe.Tuple {
	tuples := make([]spe.Tuple, 0, n)
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(1 + i%3)
		if i%97 == 0 {
			ts += 300
		}
		tuples = append(tuples, spe.Tuple{
			Key:   []byte(fmt.Sprintf("k%02d", i%11)),
			Value: []byte(strconv.Itoa(i % 13)),
			TS:    ts,
		})
	}
	return tuples
}

// demoPipeline is the tenants' shared two-stage template; backends are
// filled in by the job manager.
func demoPipeline() *spe.Pipeline {
	sum := spe.HolisticFunc(func(key []byte, values [][]byte) []byte {
		s := 0
		for _, v := range values {
			n, _ := strconv.Atoi(string(v))
			s += n
		}
		return []byte(fmt.Sprintf("n=%d sum=%d", len(values), s))
	})
	return &spe.Pipeline{
		WatermarkEvery: 25,
		Stages: []spe.Stage{
			{
				Name: "tag", Parallelism: 2,
				Map: func(t spe.Tuple, emit func(spe.Tuple)) { emit(t) },
			},
			{
				Name: "win", Parallelism: 2,
				Window: &spe.OperatorSpec{
					Assigner: window.FixedAssigner{Size: 64},
					Holistic: sum,
				},
			},
		},
	}
}

func demoBackend(tenantID string) func(jobmanager.Slot, int, int) (statebackend.Backend, error) {
	return jobmanager.FlowKVBackend(tenantID, core.AggHolistic, window.Fixed,
		window.FixedAssigner{Size: 64}, core.Options{Instances: 2, WriteBufferBytes: 1 << 14})
}

// demoGolden runs the victim's workload standalone — no manager, no
// quota, no faults — and returns its committed ledger bytes.
func demoGolden(base string, tuples []spe.Tuple, every int) ([]byte, error) {
	p := demoPipeline()
	mk := demoBackend("golden")
	slot := jobmanager.Slot{ID: "golden", Dir: filepath.Join(base, "state")}
	for i := range p.Stages {
		if p.Stages[i].Window == nil {
			continue
		}
		si := i
		p.Stages[i].NewBackend = func(w int) (statebackend.Backend, error) {
			return mk(slot, si, w)
		}
	}
	job := &spe.Job{
		Pipeline:        p,
		Source:          spe.NewSliceSource(tuples),
		Dir:             filepath.Join(base, "job"),
		CheckpointEvery: every,
	}
	res, err := job.Run()
	if err != nil {
		return nil, err
	}
	if !res.Final {
		return nil, fmt.Errorf("harness: golden tenant run did not finish")
	}
	return os.ReadFile(filepath.Join(base, "job", "SINK.log"))
}

// armOnceSource arms a fault injector after the stream passes trigger.
type armOnceSource struct {
	*spe.SliceSource
	trigger int64
	armed   bool
	arm     func()
}

func (a *armOnceSource) Next() (spe.Tuple, bool) {
	t, ok := a.SliceSource.Next()
	if ok && !a.armed && a.SliceSource.Offset() > a.trigger {
		a.armed = true
		a.arm()
	}
	return t, ok
}

// TenantDemo runs the multi-tenant noisy-neighbor demo behind
// `flowbench -tenants N`: one well-behaved victim tenant under its
// quota shares a three-slot store pool with N tenants over-submitting
// roughly 10x their quota, while one slot's stores are forced into
// Failed mid-run by fault injection. The demo proves the victim's
// admission SLO held, its ledger stayed byte-identical exactly-once,
// every tenant completed, and the faulted slot's tenants failed over.
func TenantDemo(sc Scale, noisy int, w io.Writer) (TenantDemoOutcome, error) {
	if noisy < 1 {
		noisy = 1
	}
	every := 100
	victimTuples := demoTuples(max(sc.Events/10, 1_000))
	noisyCount := max(sc.Events/10, 1_000)

	out := TenantDemoOutcome{Dir: filepath.Join(sc.BaseDir, "tenants", "mgr")}
	golden, err := demoGolden(filepath.Join(sc.BaseDir, "tenants", "golden"), victimTuples, every)
	if err != nil {
		return out, err
	}

	injs := map[string]*faultfs.Injector{}
	var slots []jobmanager.Slot
	for _, id := range []string{"slot0", "slot1", "slot2"} {
		inj := faultfs.NewInjector(faultfs.OS)
		injs[id] = inj
		slots = append(slots, jobmanager.Slot{
			ID: id, Dir: filepath.Join(sc.BaseDir, "tenants", id), FS: inj,
		})
	}
	m, err := jobmanager.New(jobmanager.Options{
		Dir:                       out.Dir,
		Slots:                     slots,
		DegradedCheckpointTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		return out, err
	}

	// The victim's source doubles as the fault trigger: a third of the
	// way into its stream, the disk under whichever slot is hosting the
	// victim starts failing every write. The rule is scoped to that
	// slot's directory: store I/O fails (degrading, then retiring the
	// slot), while checkpoint files in the manager-side job directory
	// stay writable — that distinction is what lets the halted tenant
	// leave its committed state intact and resume elsewhere.
	arm := func() {
		stats, _ := m.Snapshot()
		for _, s := range stats {
			if s.Tenant != "victim" || s.Slot == "" {
				continue
			}
			injs[s.Slot].SetRule(faultfs.Rule{
				Op:           faultfs.OpWrite,
				Class:        faultfs.ClassPersistent,
				Err:          faultfs.ErrDiskIO,
				PathContains: s.Slot,
			})
		}
	}
	victimSrc := &armOnceSource{
		SliceSource: spe.NewSliceSource(victimTuples),
		trigger:     int64(len(victimTuples) / 3),
		arm:         arm,
	}
	err = m.Submit(jobmanager.Tenant{
		ID:              "victim",
		Quota:           jobmanager.Quota{IngestEPS: 1_000_000, WriteBPS: 64 << 20},
		Source:          victimSrc,
		Pipeline:        demoPipeline(),
		MakeBackend:     demoBackend("victim"),
		CheckpointEvery: every,
	})
	if err != nil {
		return out, err
	}
	for i := 0; i < noisy; i++ {
		id := fmt.Sprintf("noisy%d", i)
		strategy := "token_bucket"
		if i%2 == 1 {
			strategy = "gcra"
		}
		// Quota sized so draining the full stream would take ~10x longer
		// than the tenant is willing to wait: the burst admits, the tail
		// sheds.
		rate := float64(noisyCount) / 10
		err = m.Submit(jobmanager.Tenant{
			ID: id,
			Quota: jobmanager.Quota{
				Strategy:       strategy,
				IngestEPS:      rate,
				IngestBurst:    rate / 2,
				MaxIngestDelay: 2 * time.Millisecond,
				WriteBPS:       256 << 10,
				WriteBurst:     4 << 10,
			},
			Source:          spe.NewSliceSource(demoTuples(noisyCount)),
			Pipeline:        demoPipeline(),
			MakeBackend:     demoBackend(id),
			CheckpointEvery: every,
		})
		if err != nil {
			return out, err
		}
	}

	results := m.Wait()
	out.Tenants, out.Slots = m.Snapshot()

	fprintf(w, "%-8s %-12s %-7s %-6s %9s %9s %8s %10s %7s %9s %6s\n",
		"tenant", "strategy", "state", "slot", "admitted", "throttled", "shed", "admit-p99", "stalls", "failover", "ckpts")
	for _, s := range out.Tenants {
		fprintf(w, "%-8s %-12s %-7s %-6s %9d %9d %8d %10v %7d %9d %6d\n",
			s.Tenant, s.Strategy, s.State, s.Slot, s.Admitted, s.Throttled, s.Shed,
			s.AdmitP99.Round(time.Microsecond), s.WriteStalls, s.Failovers, s.Checkpoints)
	}
	for _, s := range out.Slots {
		health := "healthy"
		if !s.Healthy {
			health = "FAILED"
		}
		fprintf(w, "slot %-6s %-8s tenants=%v failovers=%d %s\n", s.ID, health, s.Tenants, s.Failovers, s.Err)
		out.Failovers += s.Failovers
	}

	fail := func(format string, args ...any) {
		if !out.Failed {
			out.Failed = true
			out.FailReason = fmt.Sprintf(format, args...)
		}
	}
	for id, r := range results {
		if r.Err != nil {
			fail("tenant %s: %v", id, r.Err)
		} else if !r.Result.Final {
			fail("tenant %s did not reach final commit", id)
		}
	}
	if v := results["victim"]; v != nil && v.Err == nil {
		if v.Stats.Shed != 0 {
			fail("victim shed %d tuples", v.Stats.Shed)
		}
		if slo := 100 * time.Millisecond; v.Stats.AdmitP99 > slo {
			fail("victim admit p99 %v exceeds SLO %v", v.Stats.AdmitP99, slo)
		}
		ledger, err := os.ReadFile(filepath.Join(m.TenantDir("victim"), "job", "SINK.log"))
		if err != nil {
			fail("victim ledger: %v", err)
		} else {
			out.VictimExactlyOnce = bytes.Equal(ledger, golden)
			if !out.VictimExactlyOnce {
				fail("victim ledger diverged from the golden run (%d vs %d bytes)", len(ledger), len(golden))
			}
		}
	}
	if out.Failovers == 0 {
		fail("no tenant failed over off the faulted slot")
	}
	fprintf(w, "victim exactly-once across slot failure: %v\n", out.VictimExactlyOnce)
	if out.Failed {
		return out, fmt.Errorf("harness: tenant demo failed: %s", out.FailReason)
	}
	return out, nil
}
