package jobmanager

import (
	"sort"
	"time"

	"flowkv/internal/clock"
	"flowkv/internal/core"
)

// AutoRebalanceOptions configures the latency-driven rebalancer.
type AutoRebalanceOptions struct {
	// Interval is the scoring cadence. Default 5s.
	Interval time.Duration
	// SlowFactor is the relative cut: a slot whose probe-latency EWMA
	// exceeds SlowFactor times the pool median is slow. Default 4.
	SlowFactor float64
	// MinLatency is the absolute floor under which a slot is never
	// called slow, whatever the ratios say — on fast media, nanosecond
	// noise produces huge factors over a tiny median. Default 20ms.
	MinLatency time.Duration
	// MaxMovesPerTick bounds how many tenants move per tick, so one bad
	// scoring round cannot stampede the whole pool onto one slot.
	// Default 1.
	MaxMovesPerTick int
	// Clock paces the ticks; nil uses the system clock.
	Clock clock.Clock
}

// StartAutoRebalance runs the latency-driven rebalancer: the gray-slot
// counterpart of the failure prober. Each tick it scores every healthy
// slot's probe-latency EWMA (fed by the prober's MeasureHealthy probes)
// against the pool median, marks the outliers slow, and drains tenants
// off slow slots — including those flagged slow by a store-level
// ReasonLatency degrade — through the ordinary clean-stop Rebalance
// path, bounded by MaxMovesPerTick. A slot is only drained when a fast
// healthy destination exists; with nowhere better to go, tenants stay
// put. The returned stop function halts the rebalancer and waits for it
// to exit.
func (m *Manager) StartAutoRebalance(opts AutoRebalanceOptions) (stop func()) {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.SlowFactor <= 1 {
		opts.SlowFactor = 4
	}
	if opts.MinLatency <= 0 {
		opts.MinLatency = 20 * time.Millisecond
	}
	if opts.MaxMovesPerTick <= 0 {
		opts.MaxMovesPerTick = 1
	}
	clk := clock.Or(opts.Clock)
	done := make(chan struct{})
	finished := make(chan struct{})
	// The ticker is created before the goroutine starts so a test
	// advancing a fake clock right after StartAutoRebalance returns
	// cannot race the registration.
	tick := clk.NewTicker(opts.Interval)
	go func() {
		defer close(finished)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C():
			}
			m.rebalanceTick(opts)
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// rebalanceTick runs one scoring-and-draining round and returns how
// many tenants it moved.
func (m *Manager) rebalanceTick(opts AutoRebalanceOptions) int {
	sts := m.pool.Status()

	// Median probe latency across healthy slots with a sample. The
	// median (not the mean) keeps one pathological slot from dragging
	// the baseline up toward itself; the lower middle is taken so that
	// in a two-slot pool the baseline is the fast slot, not the suspect.
	var lats []time.Duration
	for _, st := range sts {
		if st.Healthy && st.ProbeLatency > 0 {
			lats = append(lats, st.ProbeLatency)
		}
	}
	var median time.Duration
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		median = lats[(len(lats)-1)/2]
	}

	for i, st := range sts {
		if !st.Healthy || st.ProbeLatency == 0 {
			continue
		}
		cut := opts.MinLatency
		if median > 0 {
			if rel := time.Duration(float64(median) * opts.SlowFactor); rel > cut {
				cut = rel
			}
		}
		switch {
		case st.ProbeLatency > cut:
			m.pool.markSlow(st.ID, true)
			sts[i].Slow = true
		case st.Slow && st.Reason != core.ReasonLatency:
			// Probes came back fast and the stores on the slot are not
			// currently latency-degraded: the gray episode is over.
			m.pool.markSlow(st.ID, false)
			sts[i].Slow = false
		}
	}

	// Draining a slow slot only helps if a fast slot can take the load.
	fast := 0
	for _, st := range sts {
		if st.Healthy && !st.Slow {
			fast++
		}
	}
	if fast == 0 {
		return 0
	}

	moves := 0
	for _, st := range sts {
		if !st.Healthy || !st.Slow {
			continue
		}
		for _, tenant := range st.Tenants {
			if moves >= opts.MaxMovesPerTick {
				return moves
			}
			// Rebalance fails for tenants that already finished or are
			// mid-move; those are simply not drained this tick.
			if err := m.Rebalance(tenant); err == nil {
				m.pool.noteRebalance(st.ID)
				moves++
			}
		}
	}
	return moves
}
