package jobmanager

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"flowkv/internal/clock"
	"flowkv/internal/core"
)

// TestPoolAcquireAvoidsSlowSlots: a slot flagged slow by a store-level
// latency degrade is the placement of last resort — Acquire prefers any
// fast healthy slot even when the slow one is emptier, and falls back
// to the slow slot only when nothing else remains.
func TestPoolAcquireAvoidsSlowSlots(t *testing.T) {
	p, err := NewPool([]Slot{{ID: "slow", Dir: t.TempDir()}, {ID: "fast", Dir: t.TempDir()}})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	p.Observe("slow", core.Degraded, core.ReasonLatency, errors.New("slow media"))

	// Load the fast slot heavier than the slow one; Acquire must still
	// avoid the slow slot.
	if s, err := p.Acquire("t1", nil); err != nil || s.ID != "fast" {
		t.Fatalf("t1 placed on %q (%v), want fast", s.ID, err)
	}
	if s, err := p.Acquire("t2", nil); err != nil || s.ID != "fast" {
		t.Fatalf("t2 placed on %q (%v), want fast despite load", s.ID, err)
	}
	// Last resort: with the fast slot excluded, the slow slot still
	// serves — gray media works, it is just slow.
	if s, err := p.Acquire("t3", map[string]bool{"fast": true}); err != nil || s.ID != "slow" {
		t.Fatalf("t3 placed on %q (%v), want slow as last resort", s.ID, err)
	}
	for _, st := range p.Status() {
		if st.ID == "slow" {
			if !st.Slow || st.Reason != core.ReasonLatency {
				t.Fatalf("slow slot status = %+v, want Slow with ReasonLatency", st)
			}
			if !st.Healthy {
				t.Fatal("latency degrade retired the slot; slow slots must stay in rotation")
			}
		}
	}
}

// TestPoolAcquirePrefersLowerProbeLatency: among equally loaded fast
// slots, placement drifts toward the lower probe-latency EWMA.
func TestPoolAcquirePrefersLowerProbeLatency(t *testing.T) {
	p, err := NewPool([]Slot{{ID: "a", Dir: t.TempDir()}, {ID: "b", Dir: t.TempDir()}})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	p.noteLatency("a", 10*time.Millisecond)
	p.noteLatency("b", 1*time.Millisecond)
	if s, err := p.Acquire("t1", nil); err != nil || s.ID != "b" {
		t.Fatalf("t1 placed on %q (%v), want b (lower probe EWMA)", s.ID, err)
	}
}

// TestPoolAwaitStatus: the event-driven wait wakes on a registry
// mutation rather than polling, and reports a timeout when the
// predicate never holds.
func TestPoolAwaitStatus(t *testing.T) {
	p, err := NewPool([]Slot{{ID: "a", Dir: t.TempDir()}})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	done := make(chan bool, 1)
	go func() {
		done <- p.AwaitStatus("a", func(s SlotStatus) bool { return !s.Healthy }, 10*time.Second)
	}()
	p.MarkFailed("a", errors.New("boom"))
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("AwaitStatus timed out despite a matching mutation")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("AwaitStatus never woke on the mutation")
	}
	if p.AwaitStatus("a", func(s SlotStatus) bool { return s.Heals > 0 }, 10*time.Millisecond) {
		t.Fatal("AwaitStatus reported success for a predicate that never held")
	}
	if p.AwaitStatus("nope", func(SlotStatus) bool { return true }, 10*time.Millisecond) {
		t.Fatal("AwaitStatus reported success for an unknown slot")
	}
}

// TestRebalanceTickScoring drives the scoring half of the rebalancer on
// a bare pool: a slot probing far over the pool median is marked slow;
// once its probes come back down (and no store still reports a latency
// degrade), the mark clears.
func TestRebalanceTickScoring(t *testing.T) {
	m := newBatteryManager(t, 3, nil, 0)
	p := m.Pool()
	p.noteLatency("slot0", 200*time.Millisecond)
	p.noteLatency("slot1", 1*time.Millisecond)
	p.noteLatency("slot2", 2*time.Millisecond)

	opts := AutoRebalanceOptions{SlowFactor: 4, MinLatency: 20 * time.Millisecond, MaxMovesPerTick: 1}
	if moves := m.rebalanceTick(opts); moves != 0 {
		t.Fatalf("tick moved %d tenants with none submitted", moves)
	}
	status := func(id string) SlotStatus {
		for _, st := range p.Status() {
			if st.ID == id {
				return st
			}
		}
		t.Fatalf("no slot %s", id)
		return SlotStatus{}
	}
	if !status("slot0").Slow {
		t.Fatal("slot probing 100x over the median not marked slow")
	}
	if status("slot1").Slow || status("slot2").Slow {
		t.Fatal("fast slots marked slow")
	}

	// The episode ends: fresh probes pull the EWMA back under the cut.
	for i := 0; i < 16; i++ {
		p.noteLatency("slot0", time.Millisecond)
	}
	m.rebalanceTick(opts)
	if st := status("slot0"); st.Slow {
		t.Fatalf("slow mark did not clear after probes recovered: %+v", st)
	}
}

// TestAutoRebalanceDrainsSlowSlot is the latency-driven rebalancing
// acceptance case: a tenant runs on a slot whose probes then degrade
// 100x (the disk still works — a pure gray failure). One rebalancer
// tick must mark the slot slow and move the tenant to the fast slot
// through the planned stop-and-resume path, and the tenant must finish
// with a ledger byte-identical to the unmanaged golden run.
func TestAutoRebalanceDrainsSlowSlot(t *testing.T) {
	tuples := batteryTuples(600)
	const every = 100
	golden := goldenLedger(t, tuples, every)

	m := newBatteryManager(t, 2, nil, 0)
	src := newGatedSource(tuples, 350)
	if err := m.Submit(Tenant{
		ID:              "gray",
		Source:          src,
		Pipeline:        batteryPipeline(),
		MakeBackend:     batteryBackend("gray"),
		CheckpointEvery: every,
	}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-src.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("tenant never reached the gate")
	}
	stats, _ := m.Snapshot()
	victim := stats[0].Slot
	if victim == "" {
		t.Fatal("tenant has no slot at the gate")
	}
	other := "slot0"
	if victim == "slot0" {
		other = "slot1"
	}

	// The tenant's slot goes gray: probes 100x the other slot's.
	m.Pool().noteLatency(victim, 100*time.Millisecond)
	m.Pool().noteLatency(other, 1*time.Millisecond)

	// Drive the rebalancer with a fake clock: one tick, one move.
	clk := clock.NewFake()
	stop := m.StartAutoRebalance(AutoRebalanceOptions{
		Interval:   time.Second,
		SlowFactor: 4,
		MinLatency: 20 * time.Millisecond,
		Clock:      clk,
	})
	defer stop()
	clk.Advance(time.Second)
	if !m.Pool().AwaitStatus(victim, func(s SlotStatus) bool { return s.Slow && s.Rebalances == 1 }, 10*time.Second) {
		t.Fatalf("rebalancer never drained the slow slot: %+v", m.Pool().Status())
	}
	close(src.release)

	results := m.Wait()
	res := results["gray"]
	if res.Err != nil {
		t.Fatalf("tenant failed: %v", res.Err)
	}
	if !res.Result.Final {
		t.Fatal("tenant did not reach final state")
	}
	if res.Stats.Rebalances != 1 {
		t.Fatalf("tenant rebalances = %d, want 1", res.Stats.Rebalances)
	}
	if res.Stats.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0 — a gray slot is not a failed slot", res.Stats.Failovers)
	}
	if res.Stats.Slot != other {
		t.Fatalf("tenant finished on %q, want the fast slot %q", res.Stats.Slot, other)
	}
	if got := tenantLedger(t, m, "gray"); !bytes.Equal(got, golden) {
		t.Fatalf("ledger diverges from golden: %d bytes vs %d", len(got), len(golden))
	}
	for _, s := range m.Pool().Status() {
		if !s.Healthy {
			t.Fatalf("slot %s unhealthy after a latency-driven rebalance", s.ID)
		}
	}
}
