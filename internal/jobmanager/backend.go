package jobmanager

import (
	"time"

	"flowkv/internal/jobmanager/limit"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// limitedBackend applies a tenant's write-bandwidth quota (bytes/sec)
// at the store choke point: every state-mutating write charges its
// payload size against the limiter and serves the returned delay before
// hitting the store. The stall propagates backwards naturally — a
// delayed worker drains its input channel slower, the bounded channels
// fill, and the source-side admission point feels the pressure — so a
// tenant that over-writes is slowed end to end rather than ballooning
// memory. Reads are never charged: state already admitted may always be
// drained (the same asymmetry as Degraded mode, which stays readable).
//
// The wrapper implements Unwrap, so capability probes (Checkpointer,
// FlowKVHealth, PartitionedWindowReader) reach the store underneath,
// and checkpoint I/O itself is NOT metered — a checkpoint is the
// manager's durability obligation, not tenant traffic.
type limitedBackend struct {
	statebackend.Backend
	lim   limit.Limiter
	stats *tenantStats
	sleep func(time.Duration)
}

// newLimitedBackend wraps b; lim may not be nil.
func newLimitedBackend(b statebackend.Backend, lim limit.Limiter, stats *tenantStats, sleep func(time.Duration)) *limitedBackend {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &limitedBackend{Backend: b, lim: lim, stats: stats, sleep: sleep}
}

// Unwrap lets capability probes reach the wrapped backend.
func (lb *limitedBackend) Unwrap() statebackend.Backend { return lb.Backend }

// charge meters n payload bytes, sleeping out the limiter's delay.
// Write bandwidth is pure backpressure — never shed: a tuple already
// admitted at the ingest point must have its state update applied, or
// exactly-once replay would diverge. A write larger than the burst
// capacity is admitted in shrinking slices, each metered at the
// sustained rate.
func (lb *limitedBackend) charge(n int) {
	if n <= 0 {
		return
	}
	remaining := float64(n)
	chunk := remaining
	for remaining > 0 {
		wait, ok := lb.lim.Reserve(time.Now(), chunk, -1)
		if !ok {
			// Chunk exceeds the burst capacity: halve and retry.
			chunk /= 2
			if chunk < 1 {
				break // burst < 1 unit: nothing meterable, don't spin
			}
			continue
		}
		if wait > 0 {
			lb.stats.bytesSlow.Inc()
			lb.sleep(wait)
		}
		remaining -= chunk
		if chunk > remaining {
			chunk = remaining
		}
	}
	lb.stats.bytesIn.Add(int64(n))
}

func (lb *limitedBackend) Append(key, value []byte, w window.Window, ts int64) error {
	lb.charge(len(key) + len(value))
	return lb.Backend.Append(key, value, w, ts)
}

func (lb *limitedBackend) PutAgg(key []byte, w window.Window, agg []byte) error {
	lb.charge(len(key) + len(agg))
	return lb.Backend.PutAgg(key, w, agg)
}

var (
	_ statebackend.Backend   = (*limitedBackend)(nil)
	_ statebackend.Unwrapper = (*limitedBackend)(nil)
)

// admittedSource is the ingest choke point: a SeekableSource whose Next
// passes each tuple through the tenant's ingest limiter. Admission has
// three outcomes:
//
//   - immediate: the quota has room; the tuple passes untouched.
//   - throttled: the quota is exhausted but the delay fits MaxIngestDelay
//     (or the tenant never sheds); Next sleeps the delay — upstream
//     backpressure — and then passes the tuple.
//   - shed: the delay would exceed MaxIngestDelay; the tuple is dropped
//     (counted, never fed) and Next moves to the following one.
//
// Offset/SeekTo delegate to the wrapped source, so job checkpoints
// commit positions in the underlying stream. Note that shedding is a
// wall-clock decision: a tenant that sheds trades replay determinism
// for bounded delay, which is why SLO-bearing tenants run with
// MaxIngestDelay=0 (pure backpressure, deterministic ledger) and only
// over-quota best-effort tenants shed.
type admittedSource struct {
	src     spe.SeekableSource
	lim     limit.Limiter
	maxWait time.Duration // <0: never shed
	stats   *tenantStats
	sleep   func(time.Duration)
}

func newAdmittedSource(src spe.SeekableSource, lim limit.Limiter, maxWait time.Duration, stats *tenantStats, sleep func(time.Duration)) *admittedSource {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &admittedSource{src: src, lim: lim, maxWait: maxWait, stats: stats, sleep: sleep}
}

// Next implements spe.SeekableSource.
func (a *admittedSource) Next() (spe.Tuple, bool) {
	for {
		t, ok := a.src.Next()
		if !ok {
			return spe.Tuple{}, false
		}
		if a.lim == nil {
			a.stats.admitted.Inc()
			return t, true
		}
		wait, ok := a.lim.Reserve(time.Now(), 1, a.maxWait)
		if !ok {
			a.stats.shed.Inc()
			continue // drop this tuple, try the next
		}
		if wait > 0 {
			a.stats.throttled.Inc()
			a.stats.queueDepth.Add(1)
			a.sleep(wait)
			a.stats.queueDepth.Add(-1)
		}
		a.stats.admitLat.Observe(wait)
		a.stats.admitted.Inc()
		return t, true
	}
}

// Offset implements spe.SeekableSource.
func (a *admittedSource) Offset() int64 { return a.src.Offset() }

// SeekTo implements spe.SeekableSource.
func (a *admittedSource) SeekTo(off int64) error { return a.src.SeekTo(off) }

var _ spe.SeekableSource = (*admittedSource)(nil)
