package jobmanager

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/spe"
	"flowkv/internal/window"
)

// The gray-failure battery: a slot whose disk hangs (fsync never
// returns) without ever erroring must not wedge its tenant forever. The
// store-level op deadline turns the hang into a typed stall, the store
// degrades, the job halts with a backend-named Halt, and the manager
// fails the tenant over to a clean slot — with the final ledger still
// byte-identical to an unfaulted golden run, and a healthy co-tenant's
// admission SLO intact.

// grayIters returns the battery iteration count. FLOWKV_GRAY_ITERS
// overrides (the CI schedule runs more).
func grayIters(t *testing.T) int {
	if s := os.Getenv("FLOWKV_GRAY_ITERS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad FLOWKV_GRAY_ITERS %q", s)
		}
		return n
	}
	return 1
}

func TestGrayFailureHungSyncFailover(t *testing.T) {
	iters := grayIters(t)
	tuples := batteryTuples(600)
	const every = 100
	golden := goldenLedger(t, tuples, every)

	// Baseline admission SLO: the co-tenant running alone, same quota,
	// no faults anywhere. The gray run must not blow this up.
	baseP99 := func() time.Duration {
		m := newBatteryManager(t, 1, nil, 0)
		if err := m.Submit(Tenant{
			ID:              "bystander",
			Quota:           Quota{IngestEPS: 20000},
			Source:          spe.NewSliceSource(tuples),
			Pipeline:        batteryPipeline(),
			MakeBackend:     batteryBackend("bystander"),
			CheckpointEvery: every,
		}); err != nil {
			t.Fatalf("baseline submit: %v", err)
		}
		res := m.Wait()["bystander"]
		if res.Err != nil || !res.Result.Final {
			t.Fatalf("baseline run: final=%v err=%v", res.Result != nil && res.Result.Final, res.Err)
		}
		return res.Stats.AdmitP99
	}()

	for i := 0; i < iters; i++ {
		t.Run(fmt.Sprintf("iter%02d", i), func(t *testing.T) {
			runGrayHungSync(t, tuples, every, golden, baseP99)
		})
	}
}

func runGrayHungSync(t *testing.T, tuples []spe.Tuple, every int, golden []byte, baseP99 time.Duration) {
	inj := faultfs.NewInjector(faultfs.OS)
	base := t.TempDir()
	slots := make([]Slot, 0, 3)
	for i := 0; i < 3; i++ {
		s := Slot{ID: fmt.Sprintf("slot%d", i), Dir: filepath.Join(base, fmt.Sprintf("slot%d", i))}
		if i == 0 {
			s.FS = inj
		}
		slots = append(slots, s)
	}
	// ProgressDeadline is the load-bearing option: checkpoint-file syncs
	// are not logfile-guarded, so only the job-level watchdog bounds a
	// checkpoint wedged on the hung disk.
	m, err := New(Options{
		Dir:                       filepath.Join(base, "mgr"),
		Slots:                     slots,
		DegradedCheckpointTimeout: 500 * time.Millisecond,
		ProgressDeadline:          2 * time.Second,
	})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}

	// The victim's stores run with an op deadline: the sentinel that
	// converts an indefinitely hung fsync into a typed ErrStalled.
	victimBackend := FlowKVBackend("victim", core.AggHolistic, window.Fixed, window.FixedAssigner{Size: 64},
		core.Options{Instances: 2, WriteBufferBytes: 1 << 10, OpDeadline: 250 * time.Millisecond})
	if err := m.Submit(Tenant{
		ID:              "victim",
		Source:          spe.NewSliceSource(tuples),
		Pipeline:        batteryPipeline(),
		MakeBackend:     victimBackend,
		CheckpointEvery: every,
	}); err != nil {
		t.Fatalf("submit victim: %v", err)
	}
	// Deterministic placement: the victim lands on slot0 (the faulted
	// disk) before the bystander is submitted.
	if !m.Pool().AwaitStatus("slot0", func(s SlotStatus) bool {
		return len(s.Tenants) == 1 && s.Tenants[0] == "victim"
	}, 10*time.Second) {
		t.Fatalf("victim never placed on slot0: %+v", m.Pool().Status())
	}
	// Every fsync under the victim's state directory hangs forever; the
	// disk returns no error — the defining gray failure.
	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Class: faultfs.ClassPersistent, Hang: true, PathContains: "victim"})
	defer inj.Release()

	if err := m.Submit(Tenant{
		ID:              "bystander",
		Quota:           Quota{IngestEPS: 20000},
		Source:          spe.NewSliceSource(tuples),
		Pipeline:        batteryPipeline(),
		MakeBackend:     batteryBackend("bystander"),
		CheckpointEvery: every,
	}); err != nil {
		t.Fatalf("submit bystander: %v", err)
	}

	results := m.Wait()

	victim := results["victim"]
	if victim.Err != nil {
		t.Fatalf("victim failed terminally: %v", victim.Err)
	}
	if !victim.Result.Final {
		t.Fatal("victim did not reach final state")
	}
	if victim.Stats.Failovers == 0 {
		t.Fatal("victim finished without failing over — the hung disk was never detected")
	}
	if victim.Stats.Slot == "slot0" {
		t.Fatal("victim finished on the hung slot")
	}
	if got := tenantLedger(t, m, "victim"); !bytes.Equal(got, golden) {
		t.Fatalf("victim ledger diverges from golden after stall failover: %d bytes vs %d", len(got), len(golden))
	}

	bystander := results["bystander"]
	if bystander.Err != nil {
		t.Fatalf("bystander failed: %v", bystander.Err)
	}
	if !bystander.Result.Final {
		t.Fatal("bystander did not reach final state")
	}
	if bystander.Stats.Failovers != 0 {
		t.Fatalf("bystander failovers = %d, want 0", bystander.Stats.Failovers)
	}
	if got := tenantLedger(t, m, "bystander"); !bytes.Equal(got, golden) {
		t.Fatalf("bystander ledger diverges from golden: %d bytes vs %d", len(got), len(golden))
	}
	// The co-tenant's admission SLO must hold through the neighbor's
	// gray failure: within 2x the uncontended baseline, floored so
	// scheduler noise on tiny baselines cannot flake the assertion.
	bound := 2 * baseP99
	if floor := 20 * time.Millisecond; bound < floor {
		bound = floor
	}
	if p99 := bystander.Stats.AdmitP99; p99 > bound {
		t.Fatalf("bystander admit p99 = %v, want ≤ %v (2x baseline %v)", p99, bound, baseP99)
	}

	// The hung slot is out of rotation, with the typed stall reason on
	// record.
	for _, s := range m.Pool().Status() {
		if s.ID != "slot0" {
			continue
		}
		if s.Healthy {
			t.Fatal("hung slot still in rotation")
		}
		if s.Reason != core.ReasonStall {
			t.Fatalf("slot0 reason = %v, want stall", s.Reason)
		}
	}
}
