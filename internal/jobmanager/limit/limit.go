// Package limit implements the admission-control strategies the job
// manager applies at its two choke points: source ingest (events/sec per
// tenant) and store write bandwidth (bytes/sec per tenant). Strategies
// register themselves in a small registry — token bucket, GCRA, leaky
// bucket and sliding window ship by default — so tenant quotas name a
// strategy the way backends name a Kind, and limiters compose into
// multi-tier quotas (e.g. a burst-tight per-second tier under a
// sustained per-minute tier) where admission requires every tier to
// agree.
//
// All limiters share one contract: Reserve(now, n, maxWait) either
// charges n units and returns the delay the caller must serve before
// proceeding (backpressure), or refuses without charging anything
// (shed). Time is passed in explicitly, which keeps tests deterministic
// and lets a caller amortize clock reads across choke points.
package limit

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Limiter is one admission-control strategy instance. Implementations
// are safe for concurrent use.
type Limiter interface {
	// Name identifies the strategy (registry key) in stats and reports.
	Name() string
	// Reserve requests admission of n units at time now. When ok, the n
	// units are charged and the caller must wait `wait` (possibly zero)
	// before proceeding — the backpressure path. When !ok, nothing was
	// charged: admitting n units would require delaying beyond maxWait
	// (or n exceeds what the limiter can ever admit at once) — the shed
	// path. maxWait < 0 means the caller will wait however long it
	// takes; only an n larger than the burst capacity is ever refused.
	Reserve(now time.Time, n float64, maxWait time.Duration) (wait time.Duration, ok bool)
}

// Canceler is implemented by limiters that can return a charge — used
// by MultiTier to un-charge admitted tiers when a later tier refuses,
// so a shed request consumes no quota anywhere.
type Canceler interface {
	Cancel(now time.Time, n float64)
}

// Config parameterizes one limiter instance.
type Config struct {
	// Rate is the sustained admission rate in units per second.
	Rate float64
	// Burst is the instantaneous capacity in units: how far admission
	// may run ahead of the sustained rate. Defaults to max(Rate, 1).
	Burst float64
}

func (c Config) fill() (Config, error) {
	if c.Rate <= 0 || math.IsInf(c.Rate, 0) || math.IsNaN(c.Rate) {
		return c, fmt.Errorf("limit: rate must be positive and finite, got %v", c.Rate)
	}
	if c.Burst < 0 || math.IsInf(c.Burst, 0) || math.IsNaN(c.Burst) {
		return c, fmt.Errorf("limit: burst must be non-negative and finite, got %v", c.Burst)
	}
	if c.Burst == 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c, nil
}

// Factory constructs a limiter from a config (registry entry).
type Factory func(Config) (Limiter, error)

var (
	regMu    sync.RWMutex
	registry = make(map[string]Factory)
)

// Register adds a strategy to the registry. It panics on a duplicate
// name — strategies register from init, and a silent overwrite would
// make quota behavior depend on package-init order.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("limit: strategy %q registered twice", name))
	}
	registry[name] = f
}

// New constructs a limiter by strategy name. Unknown names report the
// registered alternatives.
func New(name string, cfg Config) (Limiter, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("limit: unknown strategy %q (have %v)", name, Strategies())
	}
	return f(cfg)
}

// Strategies lists the registered strategy names, sorted.
func Strategies() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("token_bucket", func(c Config) (Limiter, error) { return NewTokenBucket(c) })
	Register("gcra", func(c Config) (Limiter, error) { return NewGCRA(c) })
	Register("leaky_bucket", func(c Config) (Limiter, error) { return NewLeakyBucket(c) })
	Register("sliding_window", func(c Config) (Limiter, error) { return NewSlidingWindow(c) })
}

// TokenBucket is the classic leaky-bucket-as-meter: tokens refill at
// Rate per second up to Burst, each admitted unit spends one token, and
// a reservation may drive the balance negative — the debt divided by
// the rate is exactly the wait the caller is told to serve, so a
// saturated bucket turns into smooth backpressure rather than a hard
// edge.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a full bucket.
func NewTokenBucket(cfg Config) (*TokenBucket, error) {
	c, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	return &TokenBucket{rate: c.Rate, burst: c.Burst, tokens: c.Burst}, nil
}

// Name implements Limiter.
func (tb *TokenBucket) Name() string { return "token_bucket" }

func (tb *TokenBucket) refillLocked(now time.Time) {
	if tb.last.IsZero() {
		tb.last = now
		return
	}
	if dt := now.Sub(tb.last); dt > 0 {
		tb.tokens += dt.Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
}

// Reserve implements Limiter.
func (tb *TokenBucket) Reserve(now time.Time, n float64, maxWait time.Duration) (time.Duration, bool) {
	if n <= 0 {
		return 0, true
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refillLocked(now)
	if n > tb.burst {
		// Larger than the bucket: no amount of waiting admits it whole.
		return 0, false
	}
	after := tb.tokens - n
	if after >= 0 {
		tb.tokens = after
		return 0, true
	}
	wait := time.Duration(-after / tb.rate * float64(time.Second))
	if maxWait >= 0 && wait > maxWait {
		return 0, false
	}
	tb.tokens = after
	return wait, true
}

// Cancel implements Canceler: returns n unspent tokens.
func (tb *TokenBucket) Cancel(now time.Time, n float64) {
	if n <= 0 {
		return
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refillLocked(now)
	tb.tokens += n
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
}

// Tokens reports the current balance at time now (tests, stats).
func (tb *TokenBucket) Tokens(now time.Time) float64 {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refillLocked(now)
	return tb.tokens
}

// GCRA is the generic cell rate algorithm (virtual scheduling form):
// instead of a token balance it tracks one timestamp, the theoretical
// arrival time (TAT) of the next conforming unit. A request of n units
// conforms if now >= TAT - τ, where τ = Burst/Rate is the tolerance;
// admission advances TAT by n·T with T = 1/Rate. The wait returned for
// an early-but-tolerable request is TAT - τ - now. GCRA meters exactly
// like a token bucket at steady state but needs O(1) state with no
// refill arithmetic, and its TAT subtraction makes Cancel exact.
type GCRA struct {
	mu  sync.Mutex
	t   time.Duration // emission interval per unit: 1/rate
	tau time.Duration // tolerance: burst * t
	tat time.Time     // theoretical arrival time of the next unit
}

// NewGCRA builds a GCRA limiter.
func NewGCRA(cfg Config) (*GCRA, error) {
	c, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	t := time.Duration(float64(time.Second) / c.Rate)
	if t <= 0 {
		t = 1
	}
	return &GCRA{t: t, tau: time.Duration(c.Burst * float64(t))}, nil
}

// Name implements Limiter.
func (g *GCRA) Name() string { return "gcra" }

// Reserve implements Limiter.
func (g *GCRA) Reserve(now time.Time, n float64, maxWait time.Duration) (time.Duration, bool) {
	if n <= 0 {
		return 0, true
	}
	inc := time.Duration(n * float64(g.t))
	if inc > g.tau {
		// n exceeds the burst tolerance: never admissible at once.
		return 0, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	tat := g.tat
	if tat.Before(now) {
		tat = now
	}
	newTAT := tat.Add(inc)
	wait := newTAT.Sub(now) - g.tau
	if wait < 0 {
		wait = 0
	}
	if maxWait >= 0 && wait > maxWait {
		return 0, false
	}
	g.tat = newTAT
	return wait, true
}

// Cancel implements Canceler: rolls TAT back by n emission intervals.
func (g *GCRA) Cancel(now time.Time, n float64) {
	if n <= 0 {
		return
	}
	inc := time.Duration(n * float64(g.t))
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tat = g.tat.Add(-inc)
}

// LeakyBucket meters admission as water in a bucket that drains at Rate
// units per second with capacity Burst: each admitted unit pours one
// unit in, a request that would overflow is held back exactly as long
// as the overflow takes to drain. It is the token bucket's dual (water
// level = Burst - tokens) and paces identically at every point, but the
// state it carries — outstanding work, not remaining allowance — is the
// shape operators reason about when the choke point guards a queue.
type LeakyBucket struct {
	mu    sync.Mutex
	rate  float64 // drain rate, units per second
	cap   float64 // bucket capacity (burst)
	level float64 // current water
	last  time.Time
}

// NewLeakyBucket builds an empty bucket.
func NewLeakyBucket(cfg Config) (*LeakyBucket, error) {
	c, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	return &LeakyBucket{rate: c.Rate, cap: c.Burst}, nil
}

// Name implements Limiter.
func (lb *LeakyBucket) Name() string { return "leaky_bucket" }

func (lb *LeakyBucket) drainLocked(now time.Time) {
	if lb.last.IsZero() {
		lb.last = now
		return
	}
	if dt := now.Sub(lb.last); dt > 0 {
		lb.level -= dt.Seconds() * lb.rate
		if lb.level < 0 {
			lb.level = 0
		}
		lb.last = now
	}
}

// Reserve implements Limiter.
func (lb *LeakyBucket) Reserve(now time.Time, n float64, maxWait time.Duration) (time.Duration, bool) {
	if n <= 0 {
		return 0, true
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.drainLocked(now)
	if n > lb.cap {
		// Larger than the bucket: no amount of draining admits it whole.
		return 0, false
	}
	after := lb.level + n
	if after <= lb.cap {
		lb.level = after
		return 0, true
	}
	wait := time.Duration((after - lb.cap) / lb.rate * float64(time.Second))
	if maxWait >= 0 && wait > maxWait {
		return 0, false
	}
	lb.level = after
	return wait, true
}

// Cancel implements Canceler: scoops n units back out.
func (lb *LeakyBucket) Cancel(now time.Time, n float64) {
	if n <= 0 {
		return
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.drainLocked(now)
	lb.level -= n
	if lb.level < 0 {
		lb.level = 0
	}
}

// Level reports the current water level at time now (tests, stats).
func (lb *LeakyBucket) Level(now time.Time) float64 {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	lb.drainLocked(now)
	return lb.level
}

// SlidingWindow admits at most Burst units inside any trailing window
// of Burst/Rate seconds, tracked as an exact admission log (no
// fixed-boundary approximation). Unlike the meters above it does not
// smooth: a full burst admits at once and the window must actually
// slide past old admissions before new ones fit, so recovery after a
// burst is a cliff at window age rather than a gradual refill. Delayed
// admissions are logged at their scheduled time, which keeps the
// invariant exact across queued waits; Cancel pops the newest charges
// off the log.
type SlidingWindow struct {
	mu   sync.Mutex
	win  time.Duration
	cap  float64
	used float64   // sum of log entries
	log  []swEntry // admissions, ascending by ts
}

type swEntry struct {
	ts time.Time
	n  float64
}

// NewSlidingWindow builds an empty window.
func NewSlidingWindow(cfg Config) (*SlidingWindow, error) {
	c, err := cfg.fill()
	if err != nil {
		return nil, err
	}
	win := time.Duration(c.Burst / c.Rate * float64(time.Second))
	if win <= 0 {
		win = 1
	}
	return &SlidingWindow{win: win, cap: c.Burst}, nil
}

// Name implements Limiter.
func (sw *SlidingWindow) Name() string { return "sliding_window" }

// evictLocked drops admissions that have aged out of the window ending
// at now.
func (sw *SlidingWindow) evictLocked(now time.Time) {
	i := 0
	for i < len(sw.log) && !sw.log[i].ts.Add(sw.win).After(now) {
		sw.used -= sw.log[i].n
		i++
	}
	if i > 0 {
		sw.log = append(sw.log[:0], sw.log[i:]...)
		if sw.used < 0 {
			sw.used = 0
		}
	}
}

// Reserve implements Limiter.
func (sw *SlidingWindow) Reserve(now time.Time, n float64, maxWait time.Duration) (time.Duration, bool) {
	if n <= 0 {
		return 0, true
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if n > sw.cap {
		// Larger than the window capacity: never admissible at once.
		return 0, false
	}
	sw.evictLocked(now)
	if sw.used+n <= sw.cap {
		sw.log = append(sw.log, swEntry{ts: now, n: n})
		sw.used += n
		return 0, true
	}
	// Walk the log oldest-first until enough admissions will have aged
	// out; the last one's exit time is the earliest admissible instant.
	need := sw.used + n - sw.cap
	var freed float64
	admitAt := now
	for _, e := range sw.log {
		freed += e.n
		if freed >= need {
			admitAt = e.ts.Add(sw.win)
			break
		}
	}
	wait := admitAt.Sub(now)
	if wait < 0 {
		wait = 0
	}
	if maxWait >= 0 && wait > maxWait {
		return 0, false
	}
	// Log at the scheduled time: successive queued waits walk ever
	// deeper into the log, so appends stay sorted.
	sw.log = append(sw.log, swEntry{ts: admitAt, n: n})
	sw.used += n
	return wait, true
}

// Cancel implements Canceler: removes the newest n units from the log.
func (sw *SlidingWindow) Cancel(now time.Time, n float64) {
	if n <= 0 {
		return
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for n > 0 && len(sw.log) > 0 {
		last := &sw.log[len(sw.log)-1]
		if last.n > n {
			last.n -= n
			sw.used -= n
			return
		}
		n -= last.n
		sw.used -= last.n
		sw.log = sw.log[:len(sw.log)-1]
	}
	if sw.used < 0 {
		sw.used = 0
	}
}

// InWindow reports the units currently charged inside the trailing
// window at time now (tests, stats).
func (sw *SlidingWindow) InWindow(now time.Time) float64 {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.evictLocked(now)
	return sw.used
}

// MultiTier composes limiters into one quota where every tier must
// admit: the returned wait is the maximum across tiers (each tier's
// constraint is satisfied by waiting the longest one), and a refusal by
// any tier cancels the charges already made on earlier tiers, so a shed
// request consumes no quota. A typical two-tier quota pairs a tight
// per-second limiter (smoothing) with a larger per-minute one (sustained
// cap).
type MultiTier struct {
	tiers []Limiter
}

// NewMultiTier composes tiers; at least one is required.
func NewMultiTier(tiers ...Limiter) (*MultiTier, error) {
	if len(tiers) == 0 {
		return nil, fmt.Errorf("limit: multi-tier quota needs at least one tier")
	}
	return &MultiTier{tiers: append([]Limiter(nil), tiers...)}, nil
}

// Name implements Limiter.
func (m *MultiTier) Name() string {
	name := "multi("
	for i, l := range m.tiers {
		if i > 0 {
			name += "+"
		}
		name += l.Name()
	}
	return name + ")"
}

// Reserve implements Limiter.
func (m *MultiTier) Reserve(now time.Time, n float64, maxWait time.Duration) (time.Duration, bool) {
	var wait time.Duration
	for i, l := range m.tiers {
		w, ok := l.Reserve(now, n, maxWait)
		if !ok {
			for _, prev := range m.tiers[:i] {
				if c, can := prev.(Canceler); can {
					c.Cancel(now, n)
				}
			}
			return 0, false
		}
		if w > wait {
			wait = w
		}
	}
	return wait, true
}

// Cancel implements Canceler across every tier.
func (m *MultiTier) Cancel(now time.Time, n float64) {
	for _, l := range m.tiers {
		if c, ok := l.(Canceler); ok {
			c.Cancel(now, n)
		}
	}
}

var (
	_ Limiter  = (*TokenBucket)(nil)
	_ Limiter  = (*GCRA)(nil)
	_ Limiter  = (*LeakyBucket)(nil)
	_ Limiter  = (*SlidingWindow)(nil)
	_ Limiter  = (*MultiTier)(nil)
	_ Canceler = (*TokenBucket)(nil)
	_ Canceler = (*GCRA)(nil)
	_ Canceler = (*LeakyBucket)(nil)
	_ Canceler = (*SlidingWindow)(nil)
	_ Canceler = (*MultiTier)(nil)
)
