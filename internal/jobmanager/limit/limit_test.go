package limit

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0)

func at(d time.Duration) time.Time { return t0.Add(d) }

func TestRegistryStrategies(t *testing.T) {
	names := Strategies()
	want := map[string]bool{"token_bucket": false, "gcra": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("strategy %q not registered (have %v)", n, names)
		}
	}
	if _, err := New("nope", Config{Rate: 1}); err == nil {
		t.Fatal("unknown strategy must error")
	}
	for _, n := range []string{"token_bucket", "gcra"} {
		l, err := New(n, Config{Rate: 10, Burst: 5})
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if l.Name() != n {
			t.Fatalf("Name() = %q, want %q", l.Name(), n)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{{Rate: 0}, {Rate: -1}, {Rate: math.Inf(1)}, {Rate: math.NaN()}, {Rate: 1, Burst: -2}} {
		if _, err := NewTokenBucket(bad); err == nil {
			t.Fatalf("token bucket accepted bad config %+v", bad)
		}
		if _, err := NewGCRA(bad); err == nil {
			t.Fatalf("gcra accepted bad config %+v", bad)
		}
	}
}

// Both strategies must satisfy the same admission contract; run the
// shared battery over each.
func eachStrategy(t *testing.T, cfg Config, fn func(t *testing.T, l Limiter)) {
	t.Helper()
	for _, name := range []string{"token_bucket", "gcra"} {
		l, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { fn(t, l) })
	}
}

func TestBurstThenThrottle(t *testing.T) {
	eachStrategy(t, Config{Rate: 10, Burst: 5}, func(t *testing.T, l Limiter) {
		// The first Burst units admit immediately.
		for i := 0; i < 5; i++ {
			w, ok := l.Reserve(t0, 1, -1)
			if !ok || w != 0 {
				t.Fatalf("burst unit %d: wait=%v ok=%v, want immediate", i, w, ok)
			}
		}
		// The next unit must wait about one emission interval (100ms).
		w, ok := l.Reserve(t0, 1, -1)
		if !ok {
			t.Fatal("unbounded-wait reserve refused")
		}
		if w < 50*time.Millisecond || w > 150*time.Millisecond {
			t.Fatalf("post-burst wait = %v, want ~100ms", w)
		}
	})
}

func TestShedDoesNotCharge(t *testing.T) {
	eachStrategy(t, Config{Rate: 10, Burst: 2}, func(t *testing.T, l Limiter) {
		if _, ok := l.Reserve(t0, 2, 0); !ok {
			t.Fatal("within-burst reserve refused")
		}
		// Bucket empty: zero-wait admission must now refuse...
		if _, ok := l.Reserve(t0, 1, 0); ok {
			t.Fatal("empty limiter admitted with maxWait=0")
		}
		// ...and refusal must not have charged: after one emission
		// interval a single unit admits immediately again.
		if w, ok := l.Reserve(at(100*time.Millisecond), 1, 0); !ok || w != 0 {
			t.Fatalf("recovered unit: wait=%v ok=%v, want immediate", w, ok)
		}
	})
}

func TestOversizeRequestRefused(t *testing.T) {
	eachStrategy(t, Config{Rate: 10, Burst: 4}, func(t *testing.T, l Limiter) {
		if _, ok := l.Reserve(t0, 100, -1); ok {
			t.Fatal("request larger than burst admitted")
		}
		// The refusal charged nothing.
		if w, ok := l.Reserve(t0, 4, 0); !ok || w != 0 {
			t.Fatalf("burst after oversize refusal: wait=%v ok=%v", w, ok)
		}
	})
}

func TestSteadyRateConverges(t *testing.T) {
	// Admitting with unbounded wait, the cumulative admitted count over
	// a simulated second must approach Rate + Burst (both strategies
	// meter the same sustained rate).
	eachStrategy(t, Config{Rate: 100, Burst: 10}, func(t *testing.T, l Limiter) {
		admitted := 0
		now := t0
		for i := 0; i < 2000; i++ {
			w, ok := l.Reserve(now, 1, 0)
			if ok && w == 0 {
				admitted++
			}
			now = now.Add(time.Millisecond) // 1ms per attempt: 2 simulated seconds
		}
		// 2s at 100/s plus the initial burst of 10 = 210 (±5 tolerance
		// for boundary rounding).
		if admitted < 200 || admitted > 215 {
			t.Fatalf("admitted %d over 2s at rate 100 burst 10, want ~210", admitted)
		}
	})
}

func TestCancelReturnsCharge(t *testing.T) {
	eachStrategy(t, Config{Rate: 10, Burst: 4}, func(t *testing.T, l Limiter) {
		if _, ok := l.Reserve(t0, 4, 0); !ok {
			t.Fatal("burst refused")
		}
		if _, ok := l.Reserve(t0, 1, 0); ok {
			t.Fatal("empty limiter admitted")
		}
		l.(Canceler).Cancel(t0, 4)
		if w, ok := l.Reserve(t0, 4, 0); !ok || w != 0 {
			t.Fatalf("post-cancel burst: wait=%v ok=%v, want immediate", w, ok)
		}
	})
}

func TestTokenBucketNeverExceedsBurstOnCancel(t *testing.T) {
	tb, err := NewTokenBucket(Config{Rate: 10, Burst: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb.Cancel(t0, 1000)
	if got := tb.Tokens(t0); got > 4 {
		t.Fatalf("cancel overfilled bucket: %v tokens, burst 4", got)
	}
}

func TestMultiTierAllMustAdmit(t *testing.T) {
	tight, err := New("token_bucket", Config{Rate: 5, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := New("gcra", Config{Rate: 100, Burst: 50})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMultiTier(tight, loose)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mt.Name(), "multi(token_bucket+gcra)"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	// The tight tier dominates: 2 immediate units, then refusal at
	// maxWait=0 even though the loose tier has plenty.
	for i := 0; i < 2; i++ {
		if w, ok := mt.Reserve(t0, 1, 0); !ok || w != 0 {
			t.Fatalf("unit %d: wait=%v ok=%v", i, w, ok)
		}
	}
	if _, ok := mt.Reserve(t0, 1, 0); ok {
		t.Fatal("multi-tier admitted past the tight tier")
	}
}

func TestMultiTierRefusalCancelsEarlierTiers(t *testing.T) {
	first, err := NewTokenBucket(Config{Rate: 10, Burst: 10})
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewTokenBucket(Config{Rate: 10, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMultiTier(first, second)
	if err != nil {
		t.Fatal(err)
	}
	// 5 units: the first tier would admit, the second refuses; the
	// first tier's balance must be restored.
	if _, ok := mt.Reserve(t0, 5, 0); ok {
		t.Fatal("expected second-tier refusal")
	}
	if got := first.Tokens(t0); got != 10 {
		t.Fatalf("refused reserve leaked charge on first tier: %v tokens, want 10", got)
	}
	if _, err := NewMultiTier(); err == nil {
		t.Fatal("empty multi-tier must error")
	}
}

func TestMultiTierWaitIsMax(t *testing.T) {
	slow, err := NewTokenBucket(Config{Rate: 1, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewTokenBucket(Config{Rate: 1000, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMultiTier(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mt.Reserve(t0, 1, -1); !ok {
		t.Fatal("first unit refused")
	}
	w, ok := mt.Reserve(t0, 1, -1)
	if !ok {
		t.Fatal("second unit refused at unbounded wait")
	}
	// The slow tier needs ~1s; the fast one ~1ms. Max must win.
	if w < 900*time.Millisecond {
		t.Fatalf("multi-tier wait = %v, want ~1s (max across tiers)", w)
	}
}

func TestReserveConcurrentTotal(t *testing.T) {
	// Under concurrency the admitted total must respect rate*time+burst.
	eachStrategy(t, Config{Rate: 1000, Burst: 100}, func(t *testing.T, l Limiter) {
		const goroutines = 8
		done := make(chan int, goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				n := 0
				now := t0
				for i := 0; i < 500; i++ {
					if w, ok := l.Reserve(now, 1, 0); ok && w == 0 {
						n++
					}
					now = now.Add(250 * time.Microsecond)
				}
				done <- n
			}()
		}
		total := 0
		for g := 0; g < goroutines; g++ {
			total += <-done
		}
		// 125ms of simulated time per goroutine, wall-clock interleaved;
		// the loosest upper bound is burst + rate * max-simulated-span.
		if total > 100+1000/4+50 {
			t.Fatalf("admitted %d, exceeds quota envelope", total)
		}
		if total < 100 {
			t.Fatalf("admitted %d, less than burst 100", total)
		}
	})
}
