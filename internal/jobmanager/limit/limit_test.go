package limit

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Unix(1_700_000_000, 0)

func at(d time.Duration) time.Time { return t0.Add(d) }

// allStrategies is every registered strategy; meterStrategies are the
// ones that pace like a refilling meter (burst then per-unit waits of
// 1/Rate) — the sliding window instead recovers on a cliff when old
// admissions age out, so wait-magnitude tests run only over the meters.
var (
	allStrategies   = []string{"token_bucket", "gcra", "leaky_bucket", "sliding_window"}
	meterStrategies = []string{"token_bucket", "gcra", "leaky_bucket"}
)

func TestRegistryStrategies(t *testing.T) {
	names := Strategies()
	want := make(map[string]bool, len(allStrategies))
	for _, n := range allStrategies {
		want[n] = false
	}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("strategy %q not registered (have %v)", n, names)
		}
	}
	if _, err := New("nope", Config{Rate: 1}); err == nil {
		t.Fatal("unknown strategy must error")
	}
	for _, n := range allStrategies {
		l, err := New(n, Config{Rate: 10, Burst: 5})
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if l.Name() != n {
			t.Fatalf("Name() = %q, want %q", l.Name(), n)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{{Rate: 0}, {Rate: -1}, {Rate: math.Inf(1)}, {Rate: math.NaN()}, {Rate: 1, Burst: -2}} {
		for _, name := range allStrategies {
			if _, err := New(name, bad); err == nil {
				t.Fatalf("%s accepted bad config %+v", name, bad)
			}
		}
	}
}

// Every strategy must satisfy the same admission contract; run the
// shared battery over each of names.
func strategies(t *testing.T, names []string, cfg Config, fn func(t *testing.T, l Limiter)) {
	t.Helper()
	for _, name := range names {
		l, err := New(name, cfg)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { fn(t, l) })
	}
}

func eachStrategy(t *testing.T, cfg Config, fn func(t *testing.T, l Limiter)) {
	t.Helper()
	strategies(t, meterStrategies, cfg, fn)
}

func TestBurstThenThrottle(t *testing.T) {
	eachStrategy(t, Config{Rate: 10, Burst: 5}, func(t *testing.T, l Limiter) {
		// The first Burst units admit immediately.
		for i := 0; i < 5; i++ {
			w, ok := l.Reserve(t0, 1, -1)
			if !ok || w != 0 {
				t.Fatalf("burst unit %d: wait=%v ok=%v, want immediate", i, w, ok)
			}
		}
		// The next unit must wait about one emission interval (100ms).
		w, ok := l.Reserve(t0, 1, -1)
		if !ok {
			t.Fatal("unbounded-wait reserve refused")
		}
		if w < 50*time.Millisecond || w > 150*time.Millisecond {
			t.Fatalf("post-burst wait = %v, want ~100ms", w)
		}
	})
}

func TestShedDoesNotCharge(t *testing.T) {
	eachStrategy(t, Config{Rate: 10, Burst: 2}, func(t *testing.T, l Limiter) {
		if _, ok := l.Reserve(t0, 2, 0); !ok {
			t.Fatal("within-burst reserve refused")
		}
		// Bucket empty: zero-wait admission must now refuse...
		if _, ok := l.Reserve(t0, 1, 0); ok {
			t.Fatal("empty limiter admitted with maxWait=0")
		}
		// ...and refusal must not have charged: after one emission
		// interval a single unit admits immediately again.
		if w, ok := l.Reserve(at(100*time.Millisecond), 1, 0); !ok || w != 0 {
			t.Fatalf("recovered unit: wait=%v ok=%v, want immediate", w, ok)
		}
	})
}

func TestOversizeRequestRefused(t *testing.T) {
	strategies(t, allStrategies, Config{Rate: 10, Burst: 4}, func(t *testing.T, l Limiter) {
		if _, ok := l.Reserve(t0, 100, -1); ok {
			t.Fatal("request larger than burst admitted")
		}
		// The refusal charged nothing.
		if w, ok := l.Reserve(t0, 4, 0); !ok || w != 0 {
			t.Fatalf("burst after oversize refusal: wait=%v ok=%v", w, ok)
		}
	})
}

func TestSteadyRateConverges(t *testing.T) {
	// Admitting with unbounded wait, the cumulative admitted count over
	// a simulated second must approach Rate + Burst (every strategy
	// meters the same sustained rate).
	strategies(t, allStrategies, Config{Rate: 100, Burst: 10}, func(t *testing.T, l Limiter) {
		admitted := 0
		now := t0
		for i := 0; i < 2000; i++ {
			w, ok := l.Reserve(now, 1, 0)
			if ok && w == 0 {
				admitted++
			}
			now = now.Add(time.Millisecond) // 1ms per attempt: 2 simulated seconds
		}
		// 2s at 100/s plus the initial burst of 10 = 210 (±5 tolerance
		// for boundary rounding).
		if admitted < 200 || admitted > 215 {
			t.Fatalf("admitted %d over 2s at rate 100 burst 10, want ~210", admitted)
		}
	})
}

func TestCancelReturnsCharge(t *testing.T) {
	strategies(t, allStrategies, Config{Rate: 10, Burst: 4}, func(t *testing.T, l Limiter) {
		if _, ok := l.Reserve(t0, 4, 0); !ok {
			t.Fatal("burst refused")
		}
		if _, ok := l.Reserve(t0, 1, 0); ok {
			t.Fatal("empty limiter admitted")
		}
		l.(Canceler).Cancel(t0, 4)
		if w, ok := l.Reserve(t0, 4, 0); !ok || w != 0 {
			t.Fatalf("post-cancel burst: wait=%v ok=%v, want immediate", w, ok)
		}
	})
}

func TestTokenBucketNeverExceedsBurstOnCancel(t *testing.T) {
	tb, err := NewTokenBucket(Config{Rate: 10, Burst: 4})
	if err != nil {
		t.Fatal(err)
	}
	tb.Cancel(t0, 1000)
	if got := tb.Tokens(t0); got > 4 {
		t.Fatalf("cancel overfilled bucket: %v tokens, burst 4", got)
	}
}

func TestMultiTierAllMustAdmit(t *testing.T) {
	tight, err := New("token_bucket", Config{Rate: 5, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := New("gcra", Config{Rate: 100, Burst: 50})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMultiTier(tight, loose)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mt.Name(), "multi(token_bucket+gcra)"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	// The tight tier dominates: 2 immediate units, then refusal at
	// maxWait=0 even though the loose tier has plenty.
	for i := 0; i < 2; i++ {
		if w, ok := mt.Reserve(t0, 1, 0); !ok || w != 0 {
			t.Fatalf("unit %d: wait=%v ok=%v", i, w, ok)
		}
	}
	if _, ok := mt.Reserve(t0, 1, 0); ok {
		t.Fatal("multi-tier admitted past the tight tier")
	}
}

func TestMultiTierRefusalCancelsEarlierTiers(t *testing.T) {
	first, err := NewTokenBucket(Config{Rate: 10, Burst: 10})
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewTokenBucket(Config{Rate: 10, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMultiTier(first, second)
	if err != nil {
		t.Fatal(err)
	}
	// 5 units: the first tier would admit, the second refuses; the
	// first tier's balance must be restored.
	if _, ok := mt.Reserve(t0, 5, 0); ok {
		t.Fatal("expected second-tier refusal")
	}
	if got := first.Tokens(t0); got != 10 {
		t.Fatalf("refused reserve leaked charge on first tier: %v tokens, want 10", got)
	}
	if _, err := NewMultiTier(); err == nil {
		t.Fatal("empty multi-tier must error")
	}
}

func TestMultiTierWaitIsMax(t *testing.T) {
	slow, err := NewTokenBucket(Config{Rate: 1, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewTokenBucket(Config{Rate: 1000, Burst: 1})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMultiTier(slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mt.Reserve(t0, 1, -1); !ok {
		t.Fatal("first unit refused")
	}
	w, ok := mt.Reserve(t0, 1, -1)
	if !ok {
		t.Fatal("second unit refused at unbounded wait")
	}
	// The slow tier needs ~1s; the fast one ~1ms. Max must win.
	if w < 900*time.Millisecond {
		t.Fatalf("multi-tier wait = %v, want ~1s (max across tiers)", w)
	}
}

func TestLeakyBucketDrainsAndClamps(t *testing.T) {
	lb, err := NewLeakyBucket(Config{Rate: 10, Burst: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lb.Reserve(t0, 4, 0); !ok {
		t.Fatal("burst refused")
	}
	if got := lb.Level(t0); got != 4 {
		t.Fatalf("level = %v after 4 units, want 4", got)
	}
	// Half the bucket drains in 200ms at rate 10.
	if got := lb.Level(at(200 * time.Millisecond)); math.Abs(got-2) > 1e-9 {
		t.Fatalf("level = %v after 200ms, want 2", got)
	}
	// Over-cancel clamps to empty rather than banking credit.
	lb.Cancel(at(200*time.Millisecond), 1000)
	if got := lb.Level(at(200 * time.Millisecond)); got != 0 {
		t.Fatalf("level = %v after over-cancel, want 0", got)
	}
	// An over-capacity reserve queues: wait is exactly the overflow
	// divided by the drain rate.
	if _, ok := lb.Reserve(at(200*time.Millisecond), 4, 0); !ok {
		t.Fatal("refill refused")
	}
	w, ok := lb.Reserve(at(200*time.Millisecond), 2, -1)
	if !ok {
		t.Fatal("queued reserve refused at unbounded wait")
	}
	if w != 200*time.Millisecond {
		t.Fatalf("queued wait = %v, want 200ms (2 units at rate 10)", w)
	}
}

func TestSlidingWindowPacing(t *testing.T) {
	// Rate 10, burst 5 → at most 5 units in any trailing 500ms window.
	sw, err := NewSlidingWindow(Config{Rate: 10, Burst: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if w, ok := sw.Reserve(t0, 1, -1); !ok || w != 0 {
			t.Fatalf("burst unit %d: wait=%v ok=%v, want immediate", i, w, ok)
		}
	}
	// The 6th unit must wait for the full window, not one emission
	// interval: nothing ages out before t0+500ms.
	w, ok := sw.Reserve(t0, 1, -1)
	if !ok || w != 500*time.Millisecond {
		t.Fatalf("6th unit: wait=%v ok=%v, want exactly 500ms", w, ok)
	}
	// Queued admissions log at their scheduled time: a 7th unit shares
	// the same admit instant (two t0 entries age out together).
	if w, ok := sw.Reserve(t0, 1, -1); !ok || w != 500*time.Millisecond {
		t.Fatalf("7th unit: wait=%v ok=%v, want 500ms", w, ok)
	}
	// Queued units are charged the moment they reserve.
	if got := sw.InWindow(t0); got != 7 {
		t.Fatalf("charged at t0 = %v, want 7 (5 admitted + 2 queued)", got)
	}
	// By the queued units' admit instant the t0 burst has aged out and
	// only they remain charged.
	if got := sw.InWindow(at(500 * time.Millisecond)); got != 2 {
		t.Fatalf("charged at +500ms = %v, want 2", got)
	}
}

func TestSlidingWindowCliffRecovery(t *testing.T) {
	sw, err := NewSlidingWindow(Config{Rate: 10, Burst: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Reserve(t0, 5, 0); !ok {
		t.Fatal("burst refused")
	}
	// One instant before the window edge the burst still counts...
	if _, ok := sw.Reserve(at(500*time.Millisecond-time.Nanosecond), 1, 0); ok {
		t.Fatal("admitted inside a full window")
	}
	// ...and at the edge the whole burst ages out at once.
	if w, ok := sw.Reserve(at(500*time.Millisecond), 5, 0); !ok || w != 0 {
		t.Fatalf("post-window burst: wait=%v ok=%v, want immediate", w, ok)
	}
}

func TestSlidingWindowCancelPartial(t *testing.T) {
	sw, err := NewSlidingWindow(Config{Rate: 10, Burst: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sw.Reserve(t0, 3, 0); !ok {
		t.Fatal("reserve refused")
	}
	sw.Cancel(t0, 2)
	if got := sw.InWindow(t0); got != 1 {
		t.Fatalf("in-window after partial cancel = %v, want 1", got)
	}
	if w, ok := sw.Reserve(t0, 4, 0); !ok || w != 0 {
		t.Fatalf("reserve after cancel: wait=%v ok=%v, want immediate", w, ok)
	}
	// Over-cancel empties the log and stays at zero.
	sw.Cancel(t0, 1000)
	if got := sw.InWindow(t0); got != 0 {
		t.Fatalf("in-window after over-cancel = %v, want 0", got)
	}
}

func TestMultiTierMixedNewStrategies(t *testing.T) {
	// A tight sliding window under a loose leaky bucket: a refusal by
	// the window tier must return the bucket tier's charge.
	loose, err := NewLeakyBucket(Config{Rate: 100, Burst: 50})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := NewSlidingWindow(Config{Rate: 5, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	mt, err := NewMultiTier(loose, tight)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mt.Name(), "multi(leaky_bucket+sliding_window)"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	if _, ok := mt.Reserve(t0, 2, 0); !ok {
		t.Fatal("within both tiers refused")
	}
	if _, ok := mt.Reserve(t0, 1, 0); ok {
		t.Fatal("admitted past the full window tier")
	}
	if got := loose.Level(t0); got != 2 {
		t.Fatalf("refusal leaked charge on the bucket tier: level %v, want 2", got)
	}
}

func TestReserveConcurrentTotal(t *testing.T) {
	// Under concurrency the admitted total must respect rate*time+burst.
	strategies(t, allStrategies, Config{Rate: 1000, Burst: 100}, func(t *testing.T, l Limiter) {
		const goroutines = 8
		done := make(chan int, goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				n := 0
				now := t0
				for i := 0; i < 500; i++ {
					if w, ok := l.Reserve(now, 1, 0); ok && w == 0 {
						n++
					}
					now = now.Add(250 * time.Microsecond)
				}
				done <- n
			}()
		}
		total := 0
		for g := 0; g < goroutines; g++ {
			total += <-done
		}
		// 125ms of simulated time per goroutine, wall-clock interleaved;
		// the loosest upper bound is burst + rate * max-simulated-span.
		if total > 100+1000/4+50 {
			t.Fatalf("admitted %d, exceeds quota envelope", total)
		}
		if total < 100 {
			t.Fatalf("admitted %d, less than burst 100", total)
		}
	})
}
