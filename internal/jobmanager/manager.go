// Package jobmanager runs many concurrent checkpointed spe.Job
// pipelines — tenants — over a shared pool of store slots, with
// per-tenant admission control and health-aware failover:
//
//   - Admission: each tenant's quota (internal/jobmanager/limit) is
//     applied at two choke points. The ingest point meters events/sec in
//     front of the source — over-quota tuples wait (backpressure) or,
//     past MaxIngestDelay, are shed. The write point meters bytes/sec on
//     every state write — always backpressure, never shed, so admitted
//     tuples keep exactly-once semantics.
//   - Failover: every FlowKV backend's health is subscribed at build
//     time, so a store reaching Failed retires its pool slot the moment
//     the transition happens. The halted tenant is then re-placed on a
//     healthy slot and resumed from its last committed checkpoint — the
//     existing checkpoint/restore path re-drains the committed state
//     into backends on the new slot — instead of staying halted.
//   - Stats: admission decisions, queue depth, admit-latency quantiles,
//     failovers and checkpoints per tenant, persisted as TENANTS.json in
//     the manager directory for `flowkvctl tenants`.
package jobmanager

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/jobmanager/limit"
	"flowkv/internal/logfile"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// TenantsFileName is the manager's persisted stats snapshot, under the
// manager directory.
const TenantsFileName = "TENANTS.json"

// Quota is one tenant's admission-control configuration.
type Quota struct {
	// Strategy names the rate-limit strategy (limit registry key) used
	// for both choke points. Default "token_bucket".
	Strategy string
	// IngestEPS is the sustained source admission rate in events/sec;
	// 0 leaves ingest unmetered. IngestBurst is the instantaneous
	// allowance (default: one second's worth).
	IngestEPS   float64
	IngestBurst float64
	// IngestTiers composes extra limiter tiers (same strategy) over the
	// base ingest quota — e.g. a per-minute sustained cap over a
	// per-second smoothing tier. Every tier must admit.
	IngestTiers []limit.Config
	// WriteBPS is the sustained store-write bandwidth in bytes/sec; 0
	// leaves writes unmetered. WriteBurst is the burst allowance in
	// bytes (default: one second's worth).
	WriteBPS   float64
	WriteBurst float64
	// MaxIngestDelay bounds how long one tuple may wait at the ingest
	// point: a tuple whose admission delay would exceed it is shed
	// (dropped, counted). 0 never sheds — pure backpressure, which is
	// what keeps an SLO-bearing tenant's ledger deterministic.
	MaxIngestDelay time.Duration
}

func (q Quota) strategy() string {
	if q.Strategy == "" {
		return "token_bucket"
	}
	return q.Strategy
}

// ingestLimiter builds the tenant's ingest-side limiter (nil when
// unmetered), composing extra tiers when configured.
func (q Quota) ingestLimiter() (limit.Limiter, error) {
	if q.IngestEPS <= 0 {
		return nil, nil
	}
	base, err := limit.New(q.strategy(), limit.Config{Rate: q.IngestEPS, Burst: q.IngestBurst})
	if err != nil {
		return nil, err
	}
	if len(q.IngestTiers) == 0 {
		return base, nil
	}
	tiers := []limit.Limiter{base}
	for _, cfg := range q.IngestTiers {
		l, err := limit.New(q.strategy(), cfg)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, l)
	}
	return limit.NewMultiTier(tiers...)
}

// writeLimiter builds the tenant's write-bandwidth limiter (nil when
// unmetered).
func (q Quota) writeLimiter() (limit.Limiter, error) {
	if q.WriteBPS <= 0 {
		return nil, nil
	}
	return limit.New(q.strategy(), limit.Config{Rate: q.WriteBPS, Burst: q.WriteBurst})
}

// Tenant is one submitted pipeline job.
type Tenant struct {
	// ID names the tenant (job directory, stats, placement).
	ID string
	// Quota is the tenant's admission-control configuration.
	Quota Quota
	// Source is the tenant's replayable input stream.
	Source spe.SeekableSource
	// Pipeline is the dataflow template. Stateful stages leave
	// NewBackend nil: the manager fills it from MakeBackend with the
	// tenant's current pool slot, wrapping each store with the write
	// limiter and the health subscription.
	Pipeline *spe.Pipeline
	// MakeBackend constructs one worker's store on a slot. Required
	// when the pipeline has stateful stages; see FlowKVBackend for the
	// standard implementation.
	MakeBackend func(slot Slot, stage, worker int) (statebackend.Backend, error)
	// CheckpointEvery is the tenant job's barrier cadence (source
	// tuples per checkpoint). Default 1000.
	CheckpointEvery int
	// Migrations schedules live key-range handoffs inside the tenant's
	// job (spe.Job.Migrations): hash buckets of stateful stages move
	// between workers while the tenant runs, without a restart.
	Migrations []spe.Migration
	// SelfHeal, when set, runs a background healer on the tenant's
	// stores (degraded stores recover in place instead of failing
	// over).
	SelfHeal *core.SelfHealOptions
	// DegradedCheckpointTimeout overrides the manager default for this
	// tenant.
	DegradedCheckpointTimeout time.Duration
	// ProgressDeadline overrides the manager default for this tenant
	// (see Options.ProgressDeadline). Negative disables the watchdog for
	// this tenant even when the manager sets a default.
	ProgressDeadline time.Duration
}

// Options configures a Manager.
type Options struct {
	// Dir is the manager root: per-tenant job directories and
	// TENANTS.json live here.
	Dir string
	// Slots is the shared store pool.
	Slots []Slot
	// MaxFailovers bounds how many times one tenant may move to a
	// replacement slot. Default: one less than the pool size.
	MaxFailovers int
	// DegradedCheckpointTimeout is the default degraded-wait deadline
	// applied to every tenant job (see spe.Job). Default 2s.
	DegradedCheckpointTimeout time.Duration
	// ProgressDeadline is the default progress-watchdog deadline applied
	// to every tenant job (see spe.Job.ProgressDeadline): a barrier or
	// checkpoint that makes no progress for this long halts the job with
	// a typed stall Halt, which rides the ordinary failover path onto a
	// replacement slot. 0 leaves the watchdog off.
	ProgressDeadline time.Duration
}

// TenantResult is one tenant's terminal outcome.
type TenantResult struct {
	// Stats is the final counter snapshot.
	Stats Stats
	// Result is the last run's job result (nil if the job never built).
	Result *spe.JobResult
	// Err is the terminal error; nil means the tenant ran to Final.
	Err error
}

// tenantRun is the manager-side state of one submitted tenant.
type tenantRun struct {
	t        Tenant
	stats    *tenantStats
	strategy string

	mu     sync.Mutex
	state  string // "running", "done", "failed"
	slotID string
	err    error
	result *spe.JobResult

	// job is the currently running spe.Job (nil between runs);
	// rebalance marks that the next clean stop is a planned move, not a
	// terminal outcome.
	job       *spe.Job
	rebalance bool

	// backends are the current run's stateful-stage backends, polled at
	// each checkpoint for incremental-checkpoint byte accounting. A
	// failover rebuilds them on the new slot, so the previous run's
	// totals are folded into the stats gauges' base first (see buildJob).
	backends []statebackend.Backend
	// linkedBase/copiedBase/stallsBase are the gauge bases frozen by
	// buildJob for the current run, kept here so the end-of-run poll in
	// runTenant can fold in counters from a run whose last checkpoint
	// never committed (a stall detected mid-checkpoint would otherwise
	// vanish with the run's backends).
	linkedBase, copiedBase, stallsBase int64
}

// pollStoreStats folds the current backends' counters into the
// tenant's stats gauges: linked/copied checkpoint bytes and abandoned-
// op stall counts accumulate on top of base values carried over from
// earlier runs; the per-op latency gauges take the worst store's
// current value (a tenant is as slow as its slowest shard).
func (tr *tenantRun) pollStoreStats(linkedBase, copiedBase, stallsBase int64) {
	var linked, copied, stalls int64
	var wp99, sp99, ewma time.Duration
	tr.mu.Lock()
	for _, b := range tr.backends {
		if st, ok := statebackend.FlowKVStats(b); ok {
			linked += st.CkptLinkedBytes
			copied += st.CkptCopiedBytes
			stalls += st.Stalls
			if st.WriteP99 > wp99 {
				wp99 = st.WriteP99
			}
			if st.SyncP99 > sp99 {
				sp99 = st.SyncP99
			}
			if st.LatencyEWMA > ewma {
				ewma = st.LatencyEWMA
			}
		}
	}
	tr.mu.Unlock()
	tr.stats.ckptLinked.Set(linkedBase + linked)
	tr.stats.ckptCopied.Set(copiedBase + copied)
	tr.stats.storeStalls.Set(stallsBase + stalls)
	tr.stats.storeWriteP99.Set(int64(wp99))
	tr.stats.storeSyncP99.Set(int64(sp99))
	tr.stats.storeEWMA.Set(int64(ewma))
}

func (tr *tenantRun) setSlot(id string) {
	tr.mu.Lock()
	tr.slotID = id
	tr.mu.Unlock()
}

func (tr *tenantRun) finish(res *spe.JobResult, err error) {
	tr.mu.Lock()
	tr.result = res
	tr.err = err
	if err != nil {
		tr.state = "failed"
	} else {
		tr.state = "done"
	}
	tr.mu.Unlock()
}

// snapshot freezes this tenant's externally visible stats.
func (tr *tenantRun) snapshot() Stats {
	s := tr.stats.snapshot()
	s.Tenant = tr.t.ID
	s.Strategy = tr.strategy
	tr.mu.Lock()
	s.State = tr.state
	s.Slot = tr.slotID
	if tr.err != nil {
		s.Err = tr.err.Error()
	}
	tr.mu.Unlock()
	return s
}

// Manager runs submitted tenants concurrently over the slot pool.
type Manager struct {
	opts Options
	pool *Pool

	mu      sync.Mutex
	tenants map[string]*tenantRun
	order   []string
	wg      sync.WaitGroup
}

// New builds a manager over a fresh pool.
func New(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("jobmanager: manager needs a directory")
	}
	pool, err := NewPool(opts.Slots)
	if err != nil {
		return nil, err
	}
	if opts.MaxFailovers <= 0 {
		opts.MaxFailovers = len(opts.Slots) - 1
	}
	if opts.DegradedCheckpointTimeout <= 0 {
		opts.DegradedCheckpointTimeout = 2 * time.Second
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobmanager: %w", err)
	}
	return &Manager{opts: opts, pool: pool, tenants: make(map[string]*tenantRun)}, nil
}

// Pool exposes the backend registry (status, manual marks).
func (m *Manager) Pool() *Pool { return m.pool }

// TenantDir returns the job directory a tenant's checkpoints and ledger
// live in.
func (m *Manager) TenantDir(id string) string {
	return filepath.Join(m.opts.Dir, "tenants", id)
}

// Submit validates a tenant and starts running it. Tenants run
// concurrently; collect outcomes with Wait.
func (m *Manager) Submit(t Tenant) error {
	if t.ID == "" {
		return fmt.Errorf("jobmanager: tenant needs an ID")
	}
	if t.Source == nil {
		return fmt.Errorf("jobmanager: tenant %s needs a source", t.ID)
	}
	if t.Pipeline == nil || len(t.Pipeline.Stages) == 0 {
		return fmt.Errorf("jobmanager: tenant %s needs a pipeline", t.ID)
	}
	stateful := false
	for _, st := range t.Pipeline.Stages {
		if st.Window != nil || st.Join != nil {
			stateful = true
			if st.NewBackend != nil {
				return fmt.Errorf("jobmanager: tenant %s stage %s sets NewBackend; pooled tenants use MakeBackend", t.ID, st.Name)
			}
		}
	}
	if stateful && t.MakeBackend == nil {
		return fmt.Errorf("jobmanager: tenant %s has stateful stages but no MakeBackend", t.ID)
	}
	ingest, err := t.Quota.ingestLimiter()
	if err != nil {
		return fmt.Errorf("jobmanager: tenant %s: %w", t.ID, err)
	}
	writeLim, err := t.Quota.writeLimiter()
	if err != nil {
		return fmt.Errorf("jobmanager: tenant %s: %w", t.ID, err)
	}

	tr := &tenantRun{t: t, stats: newTenantStats(), state: "running"}
	if ingest != nil {
		tr.strategy = ingest.Name()
	} else {
		tr.strategy = "none"
	}
	m.mu.Lock()
	if _, dup := m.tenants[t.ID]; dup {
		m.mu.Unlock()
		return fmt.Errorf("jobmanager: duplicate tenant ID %q", t.ID)
	}
	m.tenants[t.ID] = tr
	m.order = append(m.order, t.ID)
	m.mu.Unlock()

	m.wg.Add(1)
	go m.runTenant(tr, ingest, writeLim)
	return nil
}

// runTenant drives one tenant to a terminal state: place, run, and on a
// backend-failure halt, fail over to a replacement slot and resume from
// the committed checkpoint.
func (m *Manager) runTenant(tr *tenantRun, ingest, writeLim limit.Limiter) {
	defer m.wg.Done()
	t := tr.t
	maxWait := time.Duration(-1) // never shed
	if t.Quota.MaxIngestDelay > 0 {
		maxWait = t.Quota.MaxIngestDelay
	}
	src := newAdmittedSource(t.Source, ingest, maxWait, tr.stats, nil)
	exclude := make(map[string]bool)
	leaving := "" // slot a planned rebalance is moving off of
	for attempt := 0; ; attempt++ {
		avoid := exclude
		if leaving != "" {
			// A rebalance only avoids the slot it is leaving; the failover
			// history still applies, but the slot is not burned for good.
			avoid = make(map[string]bool, len(exclude)+1)
			for id := range exclude {
				avoid[id] = true
			}
			avoid[leaving] = true
		}
		slot, err := m.pool.Acquire(t.ID, avoid)
		if err != nil {
			tr.finish(nil, err)
			return
		}
		tr.setSlot(slot.ID)
		job := m.buildJob(tr, slot, src, writeLim)
		tr.mu.Lock()
		tr.job = job
		tr.mu.Unlock()
		res, err := runOrResume(job)
		tr.mu.Lock()
		tr.job = nil
		reb := tr.rebalance
		tr.rebalance = false
		linkedBase, copiedBase, stallsBase := tr.linkedBase, tr.copiedBase, tr.stallsBase
		tr.mu.Unlock()
		// End-of-run poll: a stall counted during a checkpoint that never
		// committed would otherwise vanish with the run's backends.
		// Abandoned runtimes are skipped — their wedged instances could
		// block a stats read forever.
		if !errors.Is(err, spe.ErrProgressStalled) {
			tr.pollStoreStats(linkedBase, copiedBase, stallsBase)
		}
		m.pool.Release(t.ID, slot.ID)
		leaving = ""
		if err == nil && res.Final {
			tr.finish(res, nil)
			return
		}
		if err == nil && res.Stopped && reb {
			// Planned rebalance: resume on a different slot. The committed
			// checkpoint re-drains onto the new slot's stores; no failover
			// is counted and the old slot stays in rotation.
			leaving = slot.ID
			tr.stats.rebalances.Inc()
			continue
		}
		if err == nil {
			tr.finish(res, fmt.Errorf("jobmanager: tenant %s run ended without final commit", t.ID))
			return
		}
		// A typed halt names the backend that took the run down: that is
		// a slot failure, and the tenant fails over. Anything else (bad
		// pipeline, job-dir I/O) is the tenant's own problem.
		if halt := haltOf(res, err); halt != nil && attempt < m.opts.MaxFailovers {
			// Observe (rather than MarkFailed directly) records WHY the
			// slot was retired: a stall-flavored halt leaves ReasonStall
			// in the registry for operators to distinguish hung media
			// from erroring media.
			m.pool.Observe(slot.ID, core.Failed, haltReason(halt.Err), halt)
			m.pool.noteFailover(slot.ID)
			exclude[slot.ID] = true
			tr.stats.failovers.Inc()
			continue
		}
		tr.finish(res, err)
		return
	}
}

// Rebalance asks a running tenant to move to a different pool slot: its
// job stops cleanly at the next tuple boundary, the slot is released,
// and the tenant resumes from its committed checkpoint on the
// least-loaded healthy slot other than the one it left. Unlike a
// failover, the old slot stays in rotation and no failover is counted.
// Returns an error if the tenant is unknown or not currently running.
func (m *Manager) Rebalance(tenantID string) error {
	m.mu.Lock()
	tr := m.tenants[tenantID]
	m.mu.Unlock()
	if tr == nil {
		return fmt.Errorf("jobmanager: unknown tenant %q", tenantID)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.state != "running" || tr.job == nil {
		return fmt.Errorf("jobmanager: tenant %s is not running (state %s)", tenantID, tr.state)
	}
	tr.rebalance = true
	tr.job.RequestStop()
	return nil
}

// haltReason classifies a halt's error into the typed health-reason
// taxonomy: progress-watchdog expiries and deadline-abandoned I/O are
// stalls (the disk hung), everything else is an ordinary error.
func haltReason(err error) core.HealthReason {
	if errors.Is(err, spe.ErrProgressStalled) || errors.Is(err, logfile.ErrStalled) {
		return core.ReasonStall
	}
	return core.ReasonError
}

// haltOf extracts the backend-failure halt from a run outcome, nil when
// the failure was not tied to a state backend.
func haltOf(res *spe.JobResult, err error) *spe.Halt {
	var halt *spe.Halt
	if errors.As(err, &halt) && halt.Backend != "" {
		return halt
	}
	if res != nil && res.RunResult != nil && res.Halted != nil && res.Halted.Backend != "" {
		return res.Halted
	}
	return nil
}

// buildJob instantiates the tenant's pipeline template against a slot:
// every stateful stage's backend is built by MakeBackend on the slot,
// subscribed to the pool's health registry, and wrapped with the
// write-bandwidth limiter.
func (m *Manager) buildJob(tr *tenantRun, slot Slot, src spe.SeekableSource, writeLim limit.Limiter) *spe.Job {
	t := tr.t
	p := *t.Pipeline
	p.Stages = append([]spe.Stage(nil), t.Pipeline.Stages...)
	// A rebuilt job means fresh stores whose checkpoint byte counters
	// restart at zero: freeze what the previous run accumulated as the
	// new base and start collecting the new run's backends.
	linkedBase := tr.stats.ckptLinked.Load()
	copiedBase := tr.stats.ckptCopied.Load()
	stallsBase := tr.stats.storeStalls.Load()
	tr.mu.Lock()
	tr.backends = nil
	tr.linkedBase, tr.copiedBase, tr.stallsBase = linkedBase, copiedBase, stallsBase
	tr.mu.Unlock()
	for i := range p.Stages {
		st := &p.Stages[i]
		if st.Window == nil && st.Join == nil {
			continue
		}
		si := i
		st.NewBackend = func(w int) (statebackend.Backend, error) {
			b, err := t.MakeBackend(slot, si, w)
			if err != nil {
				return nil, err
			}
			statebackend.SubscribeHealth(b, func(h core.Health, reason core.HealthReason, herr error) {
				m.pool.Observe(slot.ID, h, reason, herr)
			})
			tr.mu.Lock()
			tr.backends = append(tr.backends, b)
			tr.mu.Unlock()
			if writeLim != nil {
				return newLimitedBackend(b, writeLim, tr.stats, nil), nil
			}
			return b, nil
		}
	}
	dct := t.DegradedCheckpointTimeout
	if dct <= 0 {
		dct = m.opts.DegradedCheckpointTimeout
	}
	pd := t.ProgressDeadline
	if pd == 0 {
		pd = m.opts.ProgressDeadline
	}
	if pd < 0 {
		pd = 0
	}
	return &spe.Job{
		Pipeline:                  &p,
		Source:                    src,
		Dir:                       filepath.Join(m.TenantDir(t.ID), "job"),
		CheckpointEvery:           t.CheckpointEvery,
		Migrations:                t.Migrations,
		SelfHeal:                  t.SelfHeal,
		DegradedCheckpointTimeout: dct,
		ProgressDeadline:          pd,
		OnCheckpoint: func(int64, bool) {
			tr.stats.ckpts.Inc()
			tr.pollStoreStats(linkedBase, copiedBase, stallsBase)
		},
	}
}

// runOrResume starts or continues a tenant job depending on committed
// progress (mirrors the spe test helper; a resumed tenant after
// failover lands in the Resume arm).
func runOrResume(j *spe.Job) (*spe.JobResult, error) {
	if _, err := spe.ReadJobMeta(j.FS, j.Dir); err == nil {
		return j.Resume()
	}
	return j.Run()
}

// Wait blocks until every submitted tenant reaches a terminal state,
// persists TENANTS.json, and returns the outcomes by tenant ID.
func (m *Manager) Wait() map[string]*TenantResult {
	m.wg.Wait()
	out := make(map[string]*TenantResult)
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, tr := range m.tenants {
		tr.mu.Lock()
		res, err := tr.result, tr.err
		tr.mu.Unlock()
		out[id] = &TenantResult{Stats: tr.snapshot(), Result: res, Err: err}
	}
	if err := m.writeTenantsFileLocked(); err != nil {
		for _, r := range out {
			if r.Err == nil {
				r.Err = err
			}
		}
	}
	return out
}

// Snapshot returns the live per-tenant stats (submission order) and the
// pool status.
func (m *Manager) Snapshot() ([]Stats, []SlotStatus) {
	m.mu.Lock()
	defer m.mu.Unlock()
	stats := make([]Stats, 0, len(m.order))
	for _, id := range m.order {
		stats = append(stats, m.tenants[id].snapshot())
	}
	return stats, m.pool.Status()
}

// TenantsFile is the persisted TENANTS.json document.
type TenantsFile struct {
	Tenants []Stats      `json:"tenants"`
	Slots   []SlotStatus `json:"slots"`
}

// WriteTenantsFile persists the current stats snapshot atomically.
func (m *Manager) WriteTenantsFile() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeTenantsFileLocked()
}

func (m *Manager) writeTenantsFileLocked() error {
	doc := TenantsFile{Slots: m.pool.Status()}
	for _, id := range m.order {
		doc.Tenants = append(doc.Tenants, m.tenants[id].snapshot())
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("jobmanager: encode %s: %w", TenantsFileName, err)
	}
	path := filepath.Join(m.opts.Dir, TenantsFileName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobmanager: write %s: %w", TenantsFileName, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobmanager: commit %s: %w", TenantsFileName, err)
	}
	return nil
}

// ReadTenantsFile loads a manager directory's persisted snapshot (the
// flowkvctl side).
func ReadTenantsFile(dir string) (TenantsFile, error) {
	var doc TenantsFile
	b, err := os.ReadFile(filepath.Join(dir, TenantsFileName))
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return doc, fmt.Errorf("jobmanager: parse %s: %w", TenantsFileName, err)
	}
	return doc, nil
}

// FlowKVBackend is the standard MakeBackend: one FlowKV store per
// (tenant, stage, worker) under the slot directory, on the slot's
// filesystem seam.
func FlowKVBackend(tenantID string, agg core.AggKind, wk window.Kind, assigner window.Assigner, opts core.Options) func(Slot, int, int) (statebackend.Backend, error) {
	return func(slot Slot, stage, worker int) (statebackend.Backend, error) {
		o := opts
		o.FS = slot.FS
		return statebackend.Open(statebackend.Config{
			Kind:       statebackend.KindFlowKV,
			Dir:        filepath.Join(slot.Dir, tenantID, fmt.Sprintf("s%02d-w%02d", stage, worker)),
			Agg:        agg,
			WindowKind: wk,
			Assigner:   assigner,
			FlowKV:     o,
		})
	}
}
