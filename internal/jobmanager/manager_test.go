package jobmanager

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"flowkv/internal/core"
	"flowkv/internal/faultfs"
	"flowkv/internal/jobmanager/limit"
	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
	"flowkv/internal/window"
)

// noisyTenants returns the misbehaving-tenant count for the battery:
// 4 by default (the PR gate), FLOWKV_TENANT_NOISY raises it for the
// nightly run.
func noisyTenants(t *testing.T) int {
	t.Helper()
	n := 4
	if v := os.Getenv("FLOWKV_TENANT_NOISY"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			t.Fatalf("bad FLOWKV_TENANT_NOISY=%q", v)
		}
		n = parsed
	}
	return n
}

// batteryTuples builds a deterministic keyed stream with watermark
// jumps, mirroring the spe crash battery's shape.
func batteryTuples(n int) []spe.Tuple {
	tuples := make([]spe.Tuple, 0, n)
	ts := int64(0)
	for i := 0; i < n; i++ {
		ts += int64(1 + i%3)
		if i%97 == 0 {
			ts += 300
		}
		tuples = append(tuples, spe.Tuple{
			Key:   []byte(fmt.Sprintf("k%02d", i%11)),
			Value: []byte(strconv.Itoa(i % 13)),
			TS:    ts,
		})
	}
	return tuples
}

// batterySum is order-independent (count + sum), so ledger bytes do not
// depend on store value ordering.
var batterySum = spe.HolisticFunc(func(key []byte, values [][]byte) []byte {
	sum := 0
	for _, v := range values {
		n, _ := strconv.Atoi(string(v))
		sum += n
	}
	return []byte(fmt.Sprintf("n=%d sum=%d", len(values), sum))
})

// batteryPipeline is the tenants' two-stage template: a stateless map
// feeding a parallelism-2 FlowKV fixed-window aggregation. Backends are
// left nil — the manager fills them from MakeBackend.
func batteryPipeline() *spe.Pipeline {
	return &spe.Pipeline{
		WatermarkEvery: 25,
		Stages: []spe.Stage{
			{
				Name: "tag", Parallelism: 2,
				Map: func(t spe.Tuple, emit func(spe.Tuple)) { emit(t) },
			},
			{
				Name: "win", Parallelism: 2,
				Window: &spe.OperatorSpec{
					Assigner: window.FixedAssigner{Size: 64},
					Holistic: batterySum,
				},
			},
		},
	}
}

// batteryBackend is the battery's MakeBackend for one tenant.
func batteryBackend(tenantID string) func(Slot, int, int) (statebackend.Backend, error) {
	return FlowKVBackend(tenantID, core.AggHolistic, window.Fixed, window.FixedAssigner{Size: 64},
		core.Options{Instances: 2, WriteBufferBytes: 1 << 10})
}

// goldenLedger runs the battery pipeline standalone (no manager, no
// quotas) over tuples and returns the committed SINK.log bytes — the
// exactly-once reference a managed tenant must match byte for byte.
func goldenLedger(t *testing.T, tuples []spe.Tuple, every int) []byte {
	t.Helper()
	base := t.TempDir()
	p := batteryPipeline()
	mk := batteryBackend("golden")
	slot := Slot{ID: "golden", Dir: filepath.Join(base, "state"), FS: faultfs.OS}
	for i := range p.Stages {
		if p.Stages[i].Window == nil {
			continue
		}
		si := i
		p.Stages[i].NewBackend = func(w int) (statebackend.Backend, error) {
			return mk(slot, si, w)
		}
	}
	job := &spe.Job{
		Pipeline:        p,
		Source:          spe.NewSliceSource(tuples),
		Dir:             filepath.Join(base, "job"),
		CheckpointEvery: every,
	}
	res, err := job.Run()
	if err != nil || !res.Final {
		t.Fatalf("golden run: final=%v err=%v", res != nil && res.Final, err)
	}
	b, err := os.ReadFile(filepath.Join(base, "job", "SINK.log"))
	if err != nil || len(b) == 0 {
		t.Fatalf("golden ledger: len=%d err=%v", len(b), err)
	}
	return b
}

// tenantLedger reads a managed tenant's committed ledger bytes.
func tenantLedger(t *testing.T, m *Manager, id string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(m.TenantDir(id), "job", "SINK.log"))
	if err != nil {
		t.Fatalf("tenant %s ledger: %v", id, err)
	}
	return b
}

func newBatteryManager(t *testing.T, nSlots int, fs map[int]faultfs.FS, dct time.Duration) *Manager {
	t.Helper()
	base := t.TempDir()
	slots := make([]Slot, 0, nSlots)
	for i := 0; i < nSlots; i++ {
		s := Slot{ID: fmt.Sprintf("slot%d", i), Dir: filepath.Join(base, fmt.Sprintf("slot%d", i))}
		if fs != nil {
			s.FS = fs[i]
		}
		slots = append(slots, s)
	}
	m, err := New(Options{
		Dir:                       filepath.Join(base, "mgr"),
		Slots:                     slots,
		DegradedCheckpointTimeout: dct,
	})
	if err != nil {
		t.Fatalf("manager: %v", err)
	}
	return m
}

// TestNoisyNeighborBattery is the acceptance battery: N tenants
// over-submit their ingest quota 10x while one well-behaved victim runs
// under quota on the same slot pool. The victim must finish with an
// exactly-once, byte-identical ledger and its admission-latency SLO
// intact; the noisy tenants must be the ones throttled and shed.
func TestNoisyNeighborBattery(t *testing.T) {
	noisy := noisyTenants(t)
	every := 100
	victimTuples := batteryTuples(600)
	golden := goldenLedger(t, victimTuples, every)

	m := newBatteryManager(t, 3, nil, 0)

	// Victim: quota far above its own offered load, pure backpressure
	// (never sheds) so its ledger stays deterministic.
	victim := Tenant{
		ID:              "victim",
		Quota:           Quota{IngestEPS: 50_000, WriteBPS: 8 << 20},
		Source:          spe.NewSliceSource(victimTuples),
		Pipeline:        batteryPipeline(),
		MakeBackend:     batteryBackend("victim"),
		CheckpointEvery: every,
	}
	if err := m.Submit(victim); err != nil {
		t.Fatalf("submit victim: %v", err)
	}

	// Noisy tenants: each offers its whole stream instantly against a
	// quota sized so draining it within MaxIngestDelay would take 10x
	// longer — over-quota tuples past the burst are shed.
	noisyCount := 1000
	for i := 0; i < noisy; i++ {
		id := fmt.Sprintf("noisy%d", i)
		// At 100 eps a post-burst tuple waits ~10ms for its token —
		// past MaxIngestDelay, so the over-submitted tail sheds.
		q := Quota{
			Strategy:       "token_bucket",
			IngestEPS:      100,
			IngestBurst:    50,
			MaxIngestDelay: 2 * time.Millisecond,
			// Tight enough that the burst-admitted tuples' writes (which
			// cluster at the front of the run) overrun the burst and stall.
			WriteBPS:   2000,
			WriteBurst: 32,
		}
		if i%2 == 1 {
			q.Strategy = "gcra"
		}
		if err := m.Submit(Tenant{
			ID:              id,
			Quota:           q,
			Source:          spe.NewSliceSource(batteryTuples(noisyCount)),
			Pipeline:        batteryPipeline(),
			MakeBackend:     batteryBackend(id),
			CheckpointEvery: every,
		}); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}

	results := m.Wait()
	if len(results) != noisy+1 {
		t.Fatalf("got %d results, want %d", len(results), noisy+1)
	}

	v := results["victim"]
	if v.Err != nil {
		t.Fatalf("victim failed: %v", v.Err)
	}
	if !v.Result.Final {
		t.Fatal("victim did not reach final commit")
	}
	if v.Stats.Shed != 0 {
		t.Fatalf("victim shed %d tuples; SLO tenants never shed", v.Stats.Shed)
	}
	if v.Stats.Admitted != int64(len(victimTuples)) {
		t.Fatalf("victim admitted %d of %d tuples", v.Stats.Admitted, len(victimTuples))
	}
	// The victim's admission SLO: under its own quota, p99 admit latency
	// stays (far) below 50ms no matter how hard the neighbors push.
	if slo := 50 * time.Millisecond; v.Stats.AdmitP99 > slo {
		t.Fatalf("victim admit p99 %v exceeds SLO %v", v.Stats.AdmitP99, slo)
	}
	if got := tenantLedger(t, m, "victim"); !bytes.Equal(got, golden) {
		t.Fatalf("victim ledger diverged under contention: got %d bytes, want %d", len(got), len(golden))
	}

	for i := 0; i < noisy; i++ {
		id := fmt.Sprintf("noisy%d", i)
		r := results[id]
		if r.Err != nil {
			t.Fatalf("%s failed: %v", id, r.Err)
		}
		if !r.Result.Final {
			t.Fatalf("%s did not reach final commit", id)
		}
		s := r.Stats
		if s.Admitted+s.Shed != int64(noisyCount) {
			t.Fatalf("%s admitted %d + shed %d != offered %d", id, s.Admitted, s.Shed, noisyCount)
		}
		if s.Shed == 0 {
			t.Fatalf("%s over-submitted 10x its quota but shed nothing (admitted %d)", id, s.Admitted)
		}
		if s.Admitted == 0 {
			t.Fatalf("%s burst allowance admitted nothing", id)
		}
		if s.WriteBytes == 0 {
			t.Fatalf("%s store writes were not metered", id)
		}
		if s.WriteStalls == 0 {
			t.Fatalf("%s wrote %d bytes against a 32-byte burst without a stall", id, s.WriteBytes)
		}
	}

	// The persisted snapshot (flowkvctl tenants' input) reflects it all.
	doc, err := ReadTenantsFile(filepath.Join(m.opts.Dir))
	if err != nil {
		t.Fatalf("TENANTS.json: %v", err)
	}
	if len(doc.Tenants) != noisy+1 || len(doc.Slots) != 3 {
		t.Fatalf("TENANTS.json holds %d tenants / %d slots", len(doc.Tenants), len(doc.Slots))
	}
	if doc.Tenants[0].Tenant != "victim" || doc.Tenants[0].State != "done" {
		t.Fatalf("TENANTS.json[0] = %+v, want victim done", doc.Tenants[0])
	}
	for _, s := range doc.Slots {
		if !s.Healthy {
			t.Fatalf("slot %s unhealthy in a fault-free battery: %s", s.ID, s.Err)
		}
	}
}

// armAtSource wraps a SliceSource and arms a fault rule once the stream
// passes the trigger offset — after several checkpoint generations have
// committed, so the failover leg exercises a real restore.
type armAtSource struct {
	*spe.SliceSource
	trigger int64
	arm     func()
	once    sync.Once
}

func (a *armAtSource) Next() (spe.Tuple, bool) {
	t, ok := a.SliceSource.Next()
	if ok && a.SliceSource.Offset() > a.trigger {
		a.once.Do(a.arm)
	}
	return t, ok
}

// TestFailoverOnBackendFailure forces one pool slot's stores into
// Failed via persistent fault injection mid-run: the tenant placed
// there must halt with a typed backend halt, fail over to the healthy
// slot, resume from its committed checkpoint, and finish with the
// byte-identical exactly-once ledger. The co-tenant on the healthy slot
// must be untouched.
func TestFailoverOnBackendFailure(t *testing.T) {
	every := 50
	tuples := batteryTuples(600)
	golden := goldenLedger(t, tuples, every)

	inj := faultfs.NewInjector(faultfs.OS)
	m := newBatteryManager(t, 2, map[int]faultfs.FS{0: inj}, 100*time.Millisecond)

	// Scoped to the slot's directory: store I/O fails while the job
	// directory (checkpoints, ledger) stays writable, mirroring a bad
	// disk under one pooled store rather than total filesystem loss.
	arm := func() {
		inj.SetRule(faultfs.Rule{
			Op:           faultfs.OpWrite,
			Class:        faultfs.ClassPersistent,
			Err:          faultfs.ErrDiskIO,
			PathContains: "slot0",
		})
	}
	for _, id := range []string{"tenant-a", "tenant-b"} {
		src := &armAtSource{SliceSource: spe.NewSliceSource(tuples), trigger: 200, arm: arm}
		if err := m.Submit(Tenant{
			ID:              id,
			Source:          src,
			Pipeline:        batteryPipeline(),
			MakeBackend:     batteryBackend(id),
			CheckpointEvery: every,
		}); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}

	results := m.Wait()
	var failedOver []string
	for id, r := range results {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", id, r.Err)
		}
		if !r.Result.Final {
			t.Fatalf("%s did not reach final commit", id)
		}
		if got := tenantLedger(t, m, id); !bytes.Equal(got, golden) {
			t.Fatalf("%s ledger diverged across failover: got %d bytes, want %d", id, len(got), len(golden))
		}
		if r.Stats.Failovers > 0 {
			failedOver = append(failedOver, id)
			if r.Stats.Slot != "slot1" {
				t.Fatalf("%s failed over to %q, want slot1", id, r.Stats.Slot)
			}
		}
	}
	// Exactly the tenant placed on the faulted slot moved.
	if len(failedOver) != 1 {
		t.Fatalf("tenants that failed over: %v, want exactly one", failedOver)
	}

	status := m.Pool().Status()
	byID := map[string]SlotStatus{}
	for _, s := range status {
		byID[s.ID] = s
	}
	if byID["slot0"].Healthy {
		t.Fatal("slot0 still marked healthy after persistent write faults")
	}
	if byID["slot0"].Err == "" {
		t.Fatal("slot0 retired without a recorded cause")
	}
	if byID["slot0"].Failovers != 1 {
		t.Fatalf("slot0 failovers = %d, want 1", byID["slot0"].Failovers)
	}
	if !byID["slot1"].Healthy {
		t.Fatal("slot1 should have stayed healthy")
	}
}

// TestPoolPlacement covers the registry: least-loaded placement,
// exclusion, failed-slot avoidance, and exhaustion.
func TestPoolPlacement(t *testing.T) {
	p, err := NewPool([]Slot{{ID: "a", Dir: "a"}, {ID: "b", Dir: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := p.Acquire("t1", nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Acquire("t2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.ID == s2.ID {
		t.Fatalf("both tenants on %s; want least-loaded spread", s1.ID)
	}
	// Excluding the emptier slot forces the other.
	p.Release("t2", s2.ID)
	s3, err := p.Acquire("t3", map[string]bool{s2.ID: true})
	if err != nil || s3.ID != s1.ID {
		t.Fatalf("exclusion ignored: got %q err=%v", s3.ID, err)
	}
	p.MarkFailed(s1.ID, fmt.Errorf("boom"))
	s4, err := p.Acquire("t4", nil)
	if err != nil || s4.ID != s2.ID {
		t.Fatalf("failed slot not avoided: got %q err=%v", s4.ID, err)
	}
	if _, err := p.Acquire("t5", map[string]bool{s2.ID: true}); err == nil {
		t.Fatal("acquire succeeded with every slot failed or excluded")
	}
	// Observe(Failed) retires; Observe(Degraded) does not.
	p.MarkHealthy(s1.ID)
	p.Observe(s1.ID, core.Degraded, core.ReasonError, fmt.Errorf("soft"))
	if _, err := p.Acquire("t6", map[string]bool{s2.ID: true}); err != nil {
		t.Fatalf("degraded slot should still place: %v", err)
	}
	p.Observe(s1.ID, core.Failed, core.ReasonError, fmt.Errorf("hard"))
	if _, err := p.Acquire("t7", map[string]bool{s2.ID: true}); err == nil {
		t.Fatal("failed slot placed a tenant")
	}
}

// TestAdmittedSourceDecisions pins the three admission outcomes
// (immediate, throttled, shed) and their accounting, with sleeps
// captured instead of served.
func TestAdmittedSourceDecisions(t *testing.T) {
	mkSrc := func(n int) *spe.SliceSource { return spe.NewSliceSource(batteryTuples(n)) }

	t.Run("shed beyond max delay", func(t *testing.T) {
		lim, err := limit.New("token_bucket", limit.Config{Rate: 1, Burst: 1})
		if err != nil {
			t.Fatal(err)
		}
		stats := newTenantStats()
		var slept []time.Duration
		src := newAdmittedSource(mkSrc(5), lim, 50*time.Millisecond, stats, func(d time.Duration) { slept = append(slept, d) })
		n := 0
		for {
			_, ok := src.Next()
			if !ok {
				break
			}
			n++
		}
		if n != 1 || stats.admitted.Load() != 1 {
			t.Fatalf("admitted %d tuples, want 1 (burst)", n)
		}
		if stats.shed.Load() != 4 {
			t.Fatalf("shed %d, want 4", stats.shed.Load())
		}
		if len(slept) != 0 {
			t.Fatalf("shed path slept: %v", slept)
		}
	})

	t.Run("backpressure never sheds", func(t *testing.T) {
		lim, err := limit.New("token_bucket", limit.Config{Rate: 1000, Burst: 1})
		if err != nil {
			t.Fatal(err)
		}
		stats := newTenantStats()
		var slept []time.Duration
		src := newAdmittedSource(mkSrc(5), lim, -1, stats, func(d time.Duration) { slept = append(slept, d) })
		n := 0
		for {
			_, ok := src.Next()
			if !ok {
				break
			}
			n++
		}
		if n != 5 || stats.admitted.Load() != 5 || stats.shed.Load() != 0 {
			t.Fatalf("admitted=%d shed=%d, want 5/0", stats.admitted.Load(), stats.shed.Load())
		}
		if stats.throttled.Load() == 0 || len(slept) == 0 {
			t.Fatalf("over-quota stream admitted without waits (throttled=%d)", stats.throttled.Load())
		}
		if p99 := stats.admitLat.P99(); p99 <= 0 {
			t.Fatalf("admit latency histogram empty (p99=%v)", p99)
		}
	})
}

// TestLimitedBackendMetersWrites pins the write choke point: payload
// bytes are charged, oversize writes are admitted in shrinking chunks,
// and stalls are counted — never shed.
func TestLimitedBackendMetersWrites(t *testing.T) {
	b, err := statebackend.Open(statebackend.Config{
		Kind:       statebackend.KindFlowKV,
		Dir:        t.TempDir(),
		Agg:        core.AggHolistic,
		WindowKind: window.Fixed,
		Assigner:   window.FixedAssigner{Size: 64},
		FlowKV:     core.Options{Instances: 1, WriteBufferBytes: 1 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	lim, err := limit.New("token_bucket", limit.Config{Rate: 1000, Burst: 32})
	if err != nil {
		t.Fatal(err)
	}
	stats := newTenantStats()
	var slept time.Duration
	lb := newLimitedBackend(b, lim, stats, func(d time.Duration) { slept += d })

	w := window.Window{Start: 0, End: 64}
	// 3-byte key + 61-byte value = 64 bytes: double the 32-byte burst,
	// admitted in shrinking chunks with stalls.
	if err := lb.Append([]byte("key"), bytes.Repeat([]byte("v"), 61), w, 1); err != nil {
		t.Fatalf("append: %v", err)
	}
	if got := stats.bytesIn.Load(); got != 64 {
		t.Fatalf("charged %d bytes, want 64", got)
	}
	if stats.bytesSlow.Load() == 0 || slept == 0 {
		t.Fatalf("oversize write admitted with no stall (stalls=%d slept=%v)", stats.bytesSlow.Load(), slept)
	}
	// Capability probes reach through the wrapper.
	if _, ok := statebackend.AsCheckpointer(lb); !ok {
		t.Fatal("limitedBackend hides the Checkpointer capability")
	}
}
