package jobmanager

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/core"
	"flowkv/internal/faultfs"
)

// Slot is one pooled store location: a directory (and filesystem seam)
// that a tenant's backends are built over. The pool hands slots to
// tenants and tracks each slot's health so a failing backend moves its
// tenants to a replacement instead of halting them.
type Slot struct {
	// ID names the slot in stats and failover records.
	ID string
	// Dir is the slot's state root; each tenant gets a subdirectory.
	Dir string
	// FS is the filesystem seam backends on this slot use (fault
	// injection); nil means the real filesystem.
	FS faultfs.FS
}

// SlotStatus is one slot's registry snapshot.
type SlotStatus struct {
	ID string `json:"id"`
	// Healthy reports the slot accepts new tenants.
	Healthy bool `json:"healthy"`
	// Err is the failure that marked the slot unhealthy ("" if none).
	Err string `json:"err,omitempty"`
	// Tenants currently placed on the slot, sorted.
	Tenants []string `json:"tenants,omitempty"`
	// Failovers counts tenants that were moved OFF this slot after it
	// failed.
	Failovers int64 `json:"failovers"`
	// Heals counts how many times the prober returned this slot to
	// rotation after it had failed.
	Heals int64 `json:"heals"`
	// Scrubs counts completed idle-slot scrub passes; ScrubCorrupt counts
	// the passes that found corruption (each of which also failed the
	// slot).
	Scrubs       int64 `json:"scrubs"`
	ScrubCorrupt int64 `json:"scrubCorrupt"`
}

type slotState struct {
	slot      Slot
	healthy   bool
	err       error
	tenants   map[string]struct{}
	failovers int64
	heals     int64
	// probeOK counts consecutive successful probes since the slot
	// failed; the prober heals the slot once it reaches the
	// confirmation threshold.
	probeOK int
	// scrubs / scrubCorrupt count idle-slot scrub passes and the ones
	// that found corruption.
	scrubs       int64
	scrubCorrupt int64
}

// Pool is the backend registry: the fixed slot set, each slot's health,
// and the tenant placement. Health flips come from two directions —
// synchronously from store health subscriptions (SubscribeHealth →
// Observe) the moment a store transitions, and from the manager when a
// job halts on a backend error — so Acquire never places a tenant on a
// slot already known bad.
type Pool struct {
	mu    sync.Mutex
	order []string
	state map[string]*slotState
}

// NewPool builds a registry over the slot set; every slot starts
// healthy.
func NewPool(slots []Slot) (*Pool, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("jobmanager: pool needs at least one slot")
	}
	p := &Pool{state: make(map[string]*slotState, len(slots))}
	for _, s := range slots {
		if s.ID == "" {
			return nil, fmt.Errorf("jobmanager: slot with empty ID")
		}
		if _, dup := p.state[s.ID]; dup {
			return nil, fmt.Errorf("jobmanager: duplicate slot ID %q", s.ID)
		}
		if s.FS == nil {
			s.FS = faultfs.OS
		}
		p.state[s.ID] = &slotState{slot: s, healthy: true, tenants: make(map[string]struct{})}
		p.order = append(p.order, s.ID)
	}
	return p, nil
}

// Acquire places tenant on the least-loaded healthy slot not in
// exclude (the tenant's own failover history) and returns it.
func (p *Pool) Acquire(tenant string, exclude map[string]bool) (Slot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *slotState
	for _, id := range p.order {
		st := p.state[id]
		if !st.healthy || exclude[id] {
			continue
		}
		if best == nil || len(st.tenants) < len(best.tenants) {
			best = st
		}
	}
	if best == nil {
		return Slot{}, fmt.Errorf("jobmanager: no healthy slot available for tenant %s (pool %d, excluded %d)",
			tenant, len(p.order), len(exclude))
	}
	best.tenants[tenant] = struct{}{}
	return best.slot, nil
}

// Release removes tenant from a slot's placement (job finished or moved
// away).
func (p *Pool) Release(tenant, slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		delete(st.tenants, tenant)
	}
}

// MarkFailed flips a slot unhealthy and counts one failover per tenant
// still placed on it. Idempotent: repeat marks (every tenant of the
// slot reports the same failure) keep the first error.
func (p *Pool) MarkFailed(slotID string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[slotID]
	if !ok {
		return
	}
	if st.healthy {
		st.healthy = false
		st.err = err
	}
	st.probeOK = 0
}

// MarkHealthy returns a repaired slot to rotation.
func (p *Pool) MarkHealthy(slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		st.healthy = true
		st.err = nil
	}
}

// Observe is the health-subscription sink: a store on slotID
// transitioned to h. Failed retires the slot immediately — before the
// job even halts — so concurrent Acquires already steer clear.
// Degraded does not retire the slot: degraded stores heal in place
// (self-heal, checkpoint retry) and the job layer decides when degraded
// becomes fatal.
func (p *Pool) Observe(slotID string, h core.Health, err error) {
	if h == core.Failed {
		p.MarkFailed(slotID, err)
	}
}

// noteFailover counts one completed tenant move off slotID.
func (p *Pool) noteFailover(slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		st.failovers++
	}
}

// ProberOptions configures the background slot prober.
type ProberOptions struct {
	// Interval is the probe cadence for failed slots. Default 5s.
	Interval time.Duration
	// Confirmations is how many consecutive probes must succeed before
	// a failed slot returns to rotation — one lucky I/O must not route
	// tenants back onto flapping media. Default 3.
	Confirmations int
	// Probe checks one slot's media; nil uses a write/read/remove probe
	// file under the slot directory.
	Probe func(Slot) error
	// ScrubIdle makes each tick also scrub the IDLE healthy slots — the
	// ones with no tenants placed, so nothing is appending while the
	// scrub reads. Corruption fails the slot (and counts in SlotStatus),
	// keeping new tenants off rotten media before a restore trips over
	// it. With ScrubIdle set, healing a failed slot additionally
	// requires a clean scrub: a media probe alone would return a slot to
	// rotation while its data still carries the rot that failed it.
	ScrubIdle bool
	// Scrub checks one slot's at-rest data; nil uses scrubSlotFiles,
	// which frame-verifies every log file and checks every checkpoint
	// directory against its MANIFEST. Only consulted when ScrubIdle is
	// set.
	Scrub func(Slot) error
}

// StartProber watches failed slots and returns them to rotation once
// they answer Confirmations consecutive probes — closing the loop that
// MarkFailed opens: without it a transiently failed slot (remounted
// disk, freed quota) stays out of the pool until an operator calls
// MarkHealthy by hand. Healthy slots are not probed. The returned stop
// function halts the prober and waits for it to exit.
func (p *Pool) StartProber(opts ProberOptions) (stop func()) {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.Confirmations <= 0 {
		opts.Confirmations = 3
	}
	probe := opts.Probe
	if probe == nil {
		probe = probeSlotMedia
	}
	var scrub func(Slot) error
	if opts.ScrubIdle {
		scrub = opts.Scrub
		if scrub == nil {
			scrub = scrubSlotFiles
		}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(opts.Interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			for _, slot := range p.failedSlots() {
				err := probe(slot)
				if err == nil && scrub != nil {
					// Rot does not heal with the media: a failed slot
					// re-enters rotation only when its data scrubs clean.
					err = scrub(slot)
				}
				p.noteProbe(slot.ID, err, opts.Confirmations)
			}
			if scrub == nil {
				continue
			}
			for _, slot := range p.idleSlots() {
				p.noteScrub(slot.ID, scrub(slot))
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// failedSlots snapshots the currently unhealthy slots.
func (p *Pool) failedSlots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Slot
	for _, id := range p.order {
		if st := p.state[id]; !st.healthy {
			out = append(out, st.slot)
		}
	}
	return out
}

// idleSlots snapshots the healthy slots with no tenants placed — the
// only slots the prober scrubs, so a scrub never races a live appender.
func (p *Pool) idleSlots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Slot
	for _, id := range p.order {
		if st := p.state[id]; st.healthy && len(st.tenants) == 0 {
			out = append(out, st.slot)
		}
	}
	return out
}

// noteScrub records one idle-slot scrub outcome; corruption fails the
// slot.
func (p *Pool) noteScrub(slotID string, err error) {
	p.mu.Lock()
	st, ok := p.state[slotID]
	if ok {
		st.scrubs++
		if err != nil {
			st.scrubCorrupt++
		}
	}
	p.mu.Unlock()
	if ok && err != nil {
		p.MarkFailed(slotID, fmt.Errorf("jobmanager: slot scrub: %w", err))
	}
}

// noteProbe records one probe outcome; the need'th consecutive success
// heals the slot.
func (p *Pool) noteProbe(slotID string, err error, need int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[slotID]
	if !ok || st.healthy {
		return
	}
	if err != nil {
		st.probeOK = 0
		return
	}
	st.probeOK++
	if st.probeOK >= need {
		st.healthy = true
		st.err = nil
		st.probeOK = 0
		st.heals++
	}
}

// probeSlotMedia is the default probe: a full write/sync/read/remove
// round trip of a scratch file under the slot directory, on the slot's
// own filesystem seam — the same I/O surface tenant stores use.
func probeSlotMedia(s Slot) error {
	fsys := s.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(s.Dir, ".probe")
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("flowkv slot probe\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if _, err := fsys.ReadFile(path); err != nil {
		return err
	}
	return fsys.Remove(path)
}

// scrubSlotFiles is the default idle-slot scrub: it walks the slot
// directory, frame-verifies every ".log" file (frame version sniffed per
// file) and verifies every checkpoint directory against its MANIFEST. A
// torn log tail is a crash artifact, not corruption. Quarantined
// checkpoint directories were already detected and handled upstream, so
// they are skipped rather than re-reported forever.
func scrubSlotFiles(s Slot) error {
	fsys := s.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	return scrubTree(fsys, s.Dir)
}

func scrubTree(fsys faultfs.FS, dir string) error {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	// A directory holding a MANIFEST is a checkpoint: verify it as a
	// unit (the manifest's CRCs cover every file, log or not).
	for _, e := range ents {
		if !e.IsDir() && e.Name() == "MANIFEST" {
			_, _, verr := core.VerifyCheckpointDir(fsys, dir)
			return verr
		}
	}
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		if e.IsDir() {
			if core.IsQuarantined(fsys, path) {
				continue
			}
			if err := scrubTree(fsys, path); err != nil {
				return err
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), ".log") {
			continue
		}
		if err := scrubLogFile(fsys, path); err != nil {
			return err
		}
	}
	return nil
}

// scrubLogFile frame-scans one log file end to end. A sniffed v1 scan
// that hits corruption retries as legacy v0 before declaring rot — the
// 1/256 marker collision where a v0 record's first CRC byte happens to
// equal the v1 frame marker.
func scrubLogFile(fsys faultfs.FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := binio.NewRecordScannerSniff(f, 0)
	for sc.Scan() {
	}
	err = sc.Err()
	if err != nil && sc.Version() == binio.FrameV1 {
		if _, serr := f.Seek(0, io.SeekStart); serr == nil {
			sc0 := binio.NewRecordScanner(f, 0)
			for sc0.Scan() {
			}
			if sc0.Err() == nil {
				return nil
			}
		}
	}
	if err != nil {
		return fmt.Errorf("scrub %s: %w", path, err)
	}
	return nil
}

// Slots returns the slot set in registration order.
func (p *Pool) Slots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Slot, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.state[id].slot)
	}
	return out
}

// Status snapshots the registry in registration order.
func (p *Pool) Status() []SlotStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SlotStatus, 0, len(p.order))
	for _, id := range p.order {
		st := p.state[id]
		s := SlotStatus{ID: id, Healthy: st.healthy, Failovers: st.failovers, Heals: st.heals,
			Scrubs: st.scrubs, ScrubCorrupt: st.scrubCorrupt}
		if st.err != nil {
			s.Err = st.err.Error()
		}
		for t := range st.tenants {
			s.Tenants = append(s.Tenants, t)
		}
		sort.Strings(s.Tenants)
		out = append(out, s)
	}
	return out
}
