package jobmanager

import (
	"fmt"
	"sort"
	"sync"

	"flowkv/internal/core"
	"flowkv/internal/faultfs"
)

// Slot is one pooled store location: a directory (and filesystem seam)
// that a tenant's backends are built over. The pool hands slots to
// tenants and tracks each slot's health so a failing backend moves its
// tenants to a replacement instead of halting them.
type Slot struct {
	// ID names the slot in stats and failover records.
	ID string
	// Dir is the slot's state root; each tenant gets a subdirectory.
	Dir string
	// FS is the filesystem seam backends on this slot use (fault
	// injection); nil means the real filesystem.
	FS faultfs.FS
}

// SlotStatus is one slot's registry snapshot.
type SlotStatus struct {
	ID string `json:"id"`
	// Healthy reports the slot accepts new tenants.
	Healthy bool `json:"healthy"`
	// Err is the failure that marked the slot unhealthy ("" if none).
	Err string `json:"err,omitempty"`
	// Tenants currently placed on the slot, sorted.
	Tenants []string `json:"tenants,omitempty"`
	// Failovers counts tenants that were moved OFF this slot after it
	// failed.
	Failovers int64 `json:"failovers"`
}

type slotState struct {
	slot      Slot
	healthy   bool
	err       error
	tenants   map[string]struct{}
	failovers int64
}

// Pool is the backend registry: the fixed slot set, each slot's health,
// and the tenant placement. Health flips come from two directions —
// synchronously from store health subscriptions (SubscribeHealth →
// Observe) the moment a store transitions, and from the manager when a
// job halts on a backend error — so Acquire never places a tenant on a
// slot already known bad.
type Pool struct {
	mu    sync.Mutex
	order []string
	state map[string]*slotState
}

// NewPool builds a registry over the slot set; every slot starts
// healthy.
func NewPool(slots []Slot) (*Pool, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("jobmanager: pool needs at least one slot")
	}
	p := &Pool{state: make(map[string]*slotState, len(slots))}
	for _, s := range slots {
		if s.ID == "" {
			return nil, fmt.Errorf("jobmanager: slot with empty ID")
		}
		if _, dup := p.state[s.ID]; dup {
			return nil, fmt.Errorf("jobmanager: duplicate slot ID %q", s.ID)
		}
		if s.FS == nil {
			s.FS = faultfs.OS
		}
		p.state[s.ID] = &slotState{slot: s, healthy: true, tenants: make(map[string]struct{})}
		p.order = append(p.order, s.ID)
	}
	return p, nil
}

// Acquire places tenant on the least-loaded healthy slot not in
// exclude (the tenant's own failover history) and returns it.
func (p *Pool) Acquire(tenant string, exclude map[string]bool) (Slot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *slotState
	for _, id := range p.order {
		st := p.state[id]
		if !st.healthy || exclude[id] {
			continue
		}
		if best == nil || len(st.tenants) < len(best.tenants) {
			best = st
		}
	}
	if best == nil {
		return Slot{}, fmt.Errorf("jobmanager: no healthy slot available for tenant %s (pool %d, excluded %d)",
			tenant, len(p.order), len(exclude))
	}
	best.tenants[tenant] = struct{}{}
	return best.slot, nil
}

// Release removes tenant from a slot's placement (job finished or moved
// away).
func (p *Pool) Release(tenant, slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		delete(st.tenants, tenant)
	}
}

// MarkFailed flips a slot unhealthy and counts one failover per tenant
// still placed on it. Idempotent: repeat marks (every tenant of the
// slot reports the same failure) keep the first error.
func (p *Pool) MarkFailed(slotID string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[slotID]
	if !ok {
		return
	}
	if st.healthy {
		st.healthy = false
		st.err = err
	}
}

// MarkHealthy returns a repaired slot to rotation.
func (p *Pool) MarkHealthy(slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		st.healthy = true
		st.err = nil
	}
}

// Observe is the health-subscription sink: a store on slotID
// transitioned to h. Failed retires the slot immediately — before the
// job even halts — so concurrent Acquires already steer clear.
// Degraded does not retire the slot: degraded stores heal in place
// (self-heal, checkpoint retry) and the job layer decides when degraded
// becomes fatal.
func (p *Pool) Observe(slotID string, h core.Health, err error) {
	if h == core.Failed {
		p.MarkFailed(slotID, err)
	}
}

// noteFailover counts one completed tenant move off slotID.
func (p *Pool) noteFailover(slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		st.failovers++
	}
}

// Slots returns the slot set in registration order.
func (p *Pool) Slots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Slot, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.state[id].slot)
	}
	return out
}

// Status snapshots the registry in registration order.
func (p *Pool) Status() []SlotStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SlotStatus, 0, len(p.order))
	for _, id := range p.order {
		st := p.state[id]
		s := SlotStatus{ID: id, Healthy: st.healthy, Failovers: st.failovers}
		if st.err != nil {
			s.Err = st.err.Error()
		}
		for t := range st.tenants {
			s.Tenants = append(s.Tenants, t)
		}
		sort.Strings(s.Tenants)
		out = append(out, s)
	}
	return out
}
