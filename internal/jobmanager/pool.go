package jobmanager

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/clock"
	"flowkv/internal/core"
	"flowkv/internal/faultfs"
)

// Slot is one pooled store location: a directory (and filesystem seam)
// that a tenant's backends are built over. The pool hands slots to
// tenants and tracks each slot's health so a failing backend moves its
// tenants to a replacement instead of halting them.
type Slot struct {
	// ID names the slot in stats and failover records.
	ID string
	// Dir is the slot's state root; each tenant gets a subdirectory.
	Dir string
	// FS is the filesystem seam backends on this slot use (fault
	// injection); nil means the real filesystem.
	FS faultfs.FS
}

// SlotStatus is one slot's registry snapshot.
type SlotStatus struct {
	ID string `json:"id"`
	// Healthy reports the slot accepts new tenants.
	Healthy bool `json:"healthy"`
	// Err is the failure that marked the slot unhealthy ("" if none).
	Err string `json:"err,omitempty"`
	// Tenants currently placed on the slot, sorted.
	Tenants []string `json:"tenants,omitempty"`
	// Failovers counts tenants that were moved OFF this slot after it
	// failed.
	Failovers int64 `json:"failovers"`
	// Heals counts how many times the prober returned this slot to
	// rotation after it had failed.
	Heals int64 `json:"heals"`
	// Scrubs counts completed idle-slot scrub passes; ScrubCorrupt counts
	// the passes that found corruption (each of which also failed the
	// slot).
	Scrubs       int64 `json:"scrubs"`
	ScrubCorrupt int64 `json:"scrubCorrupt"`
	// Reason is the typed health reason from the slot's most recent store
	// health transition ("none" if never observed unhealthy).
	Reason core.HealthReason `json:"reason"`
	// Slow reports the slot is healthy but serving I/O slowly — a gray
	// failure. Slow slots stay in rotation (they work) but Acquire avoids
	// them when a faster slot exists, and the auto-rebalancer drains them.
	Slow bool `json:"slow,omitempty"`
	// ProbeLatency is the EWMA of recent media-probe round trips (0 until
	// a latency probe has run).
	ProbeLatency time.Duration `json:"probeLatency,omitempty"`
	// Rebalances counts tenants moved OFF this slot by latency-driven
	// rebalancing (distinct from Failovers, which count moves off a
	// failed slot).
	Rebalances int64 `json:"rebalances,omitempty"`
}

type slotState struct {
	slot      Slot
	healthy   bool
	err       error
	tenants   map[string]struct{}
	failovers int64
	heals     int64
	// probeOK counts consecutive successful probes since the slot
	// failed; the prober heals the slot once it reaches the
	// confirmation threshold.
	probeOK int
	// scrubs / scrubCorrupt count idle-slot scrub passes and the ones
	// that found corruption.
	scrubs       int64
	scrubCorrupt int64
	// lastReason is the typed reason from the most recent health
	// observation (ReasonNone until a store on the slot leaves Healthy).
	lastReason core.HealthReason
	// slow marks a gray slot: healthy, but its stores degraded on the
	// latency signal or its probes run far above the pool median.
	slow bool
	// probeEWMA smooths media-probe round-trip latency (0 = no sample).
	probeEWMA time.Duration
	// rebalances counts tenants moved off by the auto-rebalancer.
	rebalances int64
}

// Pool is the backend registry: the fixed slot set, each slot's health,
// and the tenant placement. Health flips come from two directions —
// synchronously from store health subscriptions (SubscribeHealth →
// Observe) the moment a store transitions, and from the manager when a
// job halts on a backend error — so Acquire never places a tenant on a
// slot already known bad.
type Pool struct {
	mu    sync.Mutex
	order []string
	state map[string]*slotState
	// wait is closed and replaced on every registry mutation; AwaitStatus
	// blocks on it instead of polling.
	wait chan struct{}
}

// NewPool builds a registry over the slot set; every slot starts
// healthy.
func NewPool(slots []Slot) (*Pool, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("jobmanager: pool needs at least one slot")
	}
	p := &Pool{state: make(map[string]*slotState, len(slots)), wait: make(chan struct{})}
	for _, s := range slots {
		if s.ID == "" {
			return nil, fmt.Errorf("jobmanager: slot with empty ID")
		}
		if _, dup := p.state[s.ID]; dup {
			return nil, fmt.Errorf("jobmanager: duplicate slot ID %q", s.ID)
		}
		if s.FS == nil {
			s.FS = faultfs.OS
		}
		p.state[s.ID] = &slotState{slot: s, healthy: true, tenants: make(map[string]struct{})}
		p.order = append(p.order, s.ID)
	}
	return p, nil
}

// changed broadcasts a registry mutation to AwaitStatus waiters. Must
// be called with p.mu held.
func (p *Pool) changed() {
	close(p.wait)
	p.wait = make(chan struct{})
}

// AwaitStatus blocks until pred is true of slotID's status (checked
// immediately and after every registry mutation) or the timeout
// expires, and reports which. Event-driven: waiters wake on mutation
// broadcasts rather than polling a snapshot in a sleep loop.
func (p *Pool) AwaitStatus(slotID string, pred func(SlotStatus) bool, timeout time.Duration) bool {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		p.mu.Lock()
		st, ok := p.state[slotID]
		var snap SlotStatus
		if ok {
			snap = p.statusLocked(slotID, st)
		}
		wait := p.wait
		p.mu.Unlock()
		if ok && pred(snap) {
			return true
		}
		select {
		case <-wait:
		case <-deadline.C:
			return false
		}
	}
}

// Acquire places tenant on the least-loaded healthy slot not in
// exclude (the tenant's own failover history) and returns it. Slow
// (gray) slots are used only when every fast slot is excluded or
// unhealthy; among equally loaded candidates the lower probe-latency
// EWMA wins, so placement drifts toward the fastest media.
func (p *Pool) Acquire(tenant string, exclude map[string]bool) (Slot, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	better := func(a, b *slotState) bool {
		if b == nil {
			return true
		}
		if a.slow != b.slow {
			return !a.slow
		}
		if len(a.tenants) != len(b.tenants) {
			return len(a.tenants) < len(b.tenants)
		}
		return a.probeEWMA < b.probeEWMA
	}
	var best *slotState
	for _, id := range p.order {
		st := p.state[id]
		if !st.healthy || exclude[id] {
			continue
		}
		if better(st, best) {
			best = st
		}
	}
	if best == nil {
		return Slot{}, fmt.Errorf("jobmanager: no healthy slot available for tenant %s (pool %d, excluded %d)",
			tenant, len(p.order), len(exclude))
	}
	best.tenants[tenant] = struct{}{}
	p.changed()
	return best.slot, nil
}

// Release removes tenant from a slot's placement (job finished or moved
// away).
func (p *Pool) Release(tenant, slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		delete(st.tenants, tenant)
		p.changed()
	}
}

// MarkFailed flips a slot unhealthy and counts one failover per tenant
// still placed on it. Idempotent: repeat marks (every tenant of the
// slot reports the same failure) keep the first error.
func (p *Pool) MarkFailed(slotID string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[slotID]
	if !ok {
		return
	}
	if st.healthy {
		st.healthy = false
		st.err = err
	}
	st.probeOK = 0
	p.changed()
}

// MarkHealthy returns a repaired slot to rotation.
func (p *Pool) MarkHealthy(slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		st.healthy = true
		st.err = nil
		st.lastReason = core.ReasonNone
		st.slow = false
		p.changed()
	}
}

// Observe is the health-subscription sink: a store on slotID
// transitioned to h for the given typed reason. Failed retires the
// slot immediately — before the job even halts — so concurrent
// Acquires already steer clear. Degraded does not retire the slot:
// degraded stores heal in place (self-heal, checkpoint retry) and the
// job layer decides when degraded becomes fatal. A ReasonLatency
// degrade, though, is direct evidence of gray media: the slot is
// marked slow so Acquire avoids it and the auto-rebalancer drains it,
// even though the slot itself stays in rotation.
func (p *Pool) Observe(slotID string, h core.Health, reason core.HealthReason, err error) {
	p.mu.Lock()
	if st, ok := p.state[slotID]; ok {
		st.lastReason = reason
		if h != core.Healthy && reason == core.ReasonLatency {
			st.slow = true
		}
		p.changed()
	}
	p.mu.Unlock()
	if h == core.Failed {
		p.MarkFailed(slotID, err)
	}
}

// noteLatency folds one probe round trip into the slot's latency EWMA
// (alpha 1/4 — probes are sparse, so weight new samples heavily).
func (p *Pool) noteLatency(slotID string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[slotID]
	if !ok {
		return
	}
	if st.probeEWMA == 0 {
		st.probeEWMA = d
	} else {
		st.probeEWMA += (d - st.probeEWMA) / 4
	}
	p.changed()
}

// markSlow flips the slot's gray flag (the auto-rebalancer's verdict
// from comparing probe EWMAs across the pool).
func (p *Pool) markSlow(slotID string, slow bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok && st.slow != slow {
		st.slow = slow
		p.changed()
	}
}

// noteRebalance counts one tenant drained off slotID by the
// auto-rebalancer.
func (p *Pool) noteRebalance(slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		st.rebalances++
		p.changed()
	}
}

// noteFailover counts one completed tenant move off slotID.
func (p *Pool) noteFailover(slotID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.state[slotID]; ok {
		st.failovers++
		p.changed()
	}
}

// ProberOptions configures the background slot prober.
type ProberOptions struct {
	// Interval is the probe cadence for failed slots. Default 5s.
	Interval time.Duration
	// Confirmations is how many consecutive probes must succeed before
	// a failed slot returns to rotation — one lucky I/O must not route
	// tenants back onto flapping media. Default 3.
	Confirmations int
	// Probe checks one slot's media; nil uses a write/read/remove probe
	// file under the slot directory.
	Probe func(Slot) error
	// ScrubIdle makes each tick also scrub the IDLE healthy slots — the
	// ones with no tenants placed, so nothing is appending while the
	// scrub reads. Corruption fails the slot (and counts in SlotStatus),
	// keeping new tenants off rotten media before a restore trips over
	// it. With ScrubIdle set, healing a failed slot additionally
	// requires a clean scrub: a media probe alone would return a slot to
	// rotation while its data still carries the rot that failed it.
	ScrubIdle bool
	// Scrub checks one slot's at-rest data; nil uses scrubSlotFiles,
	// which frame-verifies every log file and checks every checkpoint
	// directory against its MANIFEST. Only consulted when ScrubIdle is
	// set.
	Scrub func(Slot) error
	// MeasureHealthy makes each tick also probe the HEALTHY slots,
	// timing the round trip into the slot's latency EWMA (SlotStatus.
	// ProbeLatency) — the signal latency-driven rebalancing scores
	// against. Off by default: probing healthy media is extra I/O that
	// only pays off when an auto-rebalancer consumes the scores.
	MeasureHealthy bool
	// Clock paces the prober; nil uses the system clock. Tests inject a
	// fake to step ticks without real sleeps.
	Clock clock.Clock
}

// StartProber watches failed slots and returns them to rotation once
// they answer Confirmations consecutive probes — closing the loop that
// MarkFailed opens: without it a transiently failed slot (remounted
// disk, freed quota) stays out of the pool until an operator calls
// MarkHealthy by hand. Healthy slots are not probed. The returned stop
// function halts the prober and waits for it to exit.
func (p *Pool) StartProber(opts ProberOptions) (stop func()) {
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.Confirmations <= 0 {
		opts.Confirmations = 3
	}
	probe := opts.Probe
	if probe == nil {
		probe = probeSlotMedia
	}
	var scrub func(Slot) error
	if opts.ScrubIdle {
		scrub = opts.Scrub
		if scrub == nil {
			scrub = scrubSlotFiles
		}
	}
	clk := clock.Or(opts.Clock)
	done := make(chan struct{})
	finished := make(chan struct{})
	// Ticker registration happens before the goroutine starts so tests
	// advancing a fake clock immediately after StartProber cannot race
	// it.
	tick := clk.NewTicker(opts.Interval)
	go func() {
		defer close(finished)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C():
			}
			for _, slot := range p.failedSlots() {
				err := probe(slot)
				if err == nil && scrub != nil {
					// Rot does not heal with the media: a failed slot
					// re-enters rotation only when its data scrubs clean.
					err = scrub(slot)
				}
				p.noteProbe(slot.ID, err, opts.Confirmations)
			}
			if opts.MeasureHealthy {
				for _, slot := range p.healthySlots() {
					start := time.Now()
					if probe(slot) == nil {
						p.noteLatency(slot.ID, time.Since(start))
					}
				}
			}
			if scrub == nil {
				continue
			}
			for _, slot := range p.idleSlots() {
				p.noteScrub(slot.ID, scrub(slot))
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// failedSlots snapshots the currently unhealthy slots.
func (p *Pool) failedSlots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Slot
	for _, id := range p.order {
		if st := p.state[id]; !st.healthy {
			out = append(out, st.slot)
		}
	}
	return out
}

// healthySlots snapshots the currently healthy slots.
func (p *Pool) healthySlots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Slot
	for _, id := range p.order {
		if st := p.state[id]; st.healthy {
			out = append(out, st.slot)
		}
	}
	return out
}

// idleSlots snapshots the healthy slots with no tenants placed — the
// only slots the prober scrubs, so a scrub never races a live appender.
func (p *Pool) idleSlots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Slot
	for _, id := range p.order {
		if st := p.state[id]; st.healthy && len(st.tenants) == 0 {
			out = append(out, st.slot)
		}
	}
	return out
}

// noteScrub records one idle-slot scrub outcome; corruption fails the
// slot.
func (p *Pool) noteScrub(slotID string, err error) {
	p.mu.Lock()
	st, ok := p.state[slotID]
	if ok {
		st.scrubs++
		if err != nil {
			st.scrubCorrupt++
		}
		p.changed()
	}
	p.mu.Unlock()
	if ok && err != nil {
		p.MarkFailed(slotID, fmt.Errorf("jobmanager: slot scrub: %w", err))
	}
}

// noteProbe records one probe outcome; the need'th consecutive success
// heals the slot.
func (p *Pool) noteProbe(slotID string, err error, need int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.state[slotID]
	if !ok || st.healthy {
		return
	}
	if err != nil {
		st.probeOK = 0
		return
	}
	st.probeOK++
	if st.probeOK >= need {
		st.healthy = true
		st.err = nil
		st.lastReason = core.ReasonNone
		st.slow = false
		st.probeOK = 0
		st.heals++
		p.changed()
	}
}

// probeSlotMedia is the default probe: a full write/sync/read/remove
// round trip of a scratch file under the slot directory, on the slot's
// own filesystem seam — the same I/O surface tenant stores use.
func probeSlotMedia(s Slot) error {
	fsys := s.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(s.Dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(s.Dir, ".probe")
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("flowkv slot probe\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if _, err := fsys.ReadFile(path); err != nil {
		return err
	}
	return fsys.Remove(path)
}

// scrubSlotFiles is the default idle-slot scrub: it walks the slot
// directory, frame-verifies every ".log" file (frame version sniffed per
// file) and verifies every checkpoint directory against its MANIFEST. A
// torn log tail is a crash artifact, not corruption. Quarantined
// checkpoint directories were already detected and handled upstream, so
// they are skipped rather than re-reported forever.
func scrubSlotFiles(s Slot) error {
	fsys := s.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	return scrubTree(fsys, s.Dir)
}

func scrubTree(fsys faultfs.FS, dir string) error {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	// A directory holding a MANIFEST is a checkpoint: verify it as a
	// unit (the manifest's CRCs cover every file, log or not).
	for _, e := range ents {
		if !e.IsDir() && e.Name() == "MANIFEST" {
			_, _, verr := core.VerifyCheckpointDir(fsys, dir)
			return verr
		}
	}
	for _, e := range ents {
		path := filepath.Join(dir, e.Name())
		if e.IsDir() {
			if core.IsQuarantined(fsys, path) {
				continue
			}
			if err := scrubTree(fsys, path); err != nil {
				return err
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), ".log") {
			continue
		}
		if err := scrubLogFile(fsys, path); err != nil {
			return err
		}
	}
	return nil
}

// scrubLogFile frame-scans one log file end to end. A sniffed v1 scan
// that hits corruption retries as legacy v0 before declaring rot — the
// 1/256 marker collision where a v0 record's first CRC byte happens to
// equal the v1 frame marker.
func scrubLogFile(fsys faultfs.FS, path string) error {
	f, err := fsys.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := binio.NewRecordScannerSniff(f, 0)
	for sc.Scan() {
	}
	err = sc.Err()
	if err != nil && sc.Version() == binio.FrameV1 {
		if _, serr := f.Seek(0, io.SeekStart); serr == nil {
			sc0 := binio.NewRecordScanner(f, 0)
			for sc0.Scan() {
			}
			if sc0.Err() == nil {
				return nil
			}
		}
	}
	if err != nil {
		return fmt.Errorf("scrub %s: %w", path, err)
	}
	return nil
}

// Slots returns the slot set in registration order.
func (p *Pool) Slots() []Slot {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Slot, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.state[id].slot)
	}
	return out
}

// Status snapshots the registry in registration order.
func (p *Pool) Status() []SlotStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SlotStatus, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.statusLocked(id, p.state[id]))
	}
	return out
}

// statusLocked builds one slot's snapshot. Must be called with p.mu
// held.
func (p *Pool) statusLocked(id string, st *slotState) SlotStatus {
	s := SlotStatus{ID: id, Healthy: st.healthy, Failovers: st.failovers, Heals: st.heals,
		Scrubs: st.scrubs, ScrubCorrupt: st.scrubCorrupt,
		Reason: st.lastReason, Slow: st.slow, ProbeLatency: st.probeEWMA, Rebalances: st.rebalances}
	if st.err != nil {
		s.Err = st.err.Error()
	}
	for t := range st.tenants {
		s.Tenants = append(s.Tenants, t)
	}
	sort.Strings(s.Tenants)
	return s
}
