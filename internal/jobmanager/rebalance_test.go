package jobmanager

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowkv/internal/spe"
	"flowkv/internal/statebackend"
)

// gatedSource parks the stream once at gateAt so the test can act while
// the tenant is provably mid-run, then releases it.
type gatedSource struct {
	*spe.SliceSource
	gateAt  int64
	reached chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedSource(tuples []spe.Tuple, gateAt int64) *gatedSource {
	return &gatedSource{
		SliceSource: spe.NewSliceSource(tuples),
		gateAt:      gateAt,
		reached:     make(chan struct{}),
		release:     make(chan struct{}),
	}
}

func (g *gatedSource) Next() (spe.Tuple, bool) {
	if g.Offset() == g.gateAt {
		g.once.Do(func() { close(g.reached) })
		<-g.release
	}
	return g.SliceSource.Next()
}

// TestManagerRebalance moves a running tenant to another slot with a
// planned stop-and-resume — no failover counted, old slot kept in
// rotation — while the tenant's own live key-range migration runs
// inside the job. The final ledger must match the unmanaged golden run
// byte for byte and the migration must be committed in the resumed
// job's routing table.
func TestManagerRebalance(t *testing.T) {
	tuples := batteryTuples(600)
	const every = 100
	golden := goldenLedger(t, tuples, every)

	m := newBatteryManager(t, 2, nil, 0)
	src := newGatedSource(tuples, 350)
	tenant := Tenant{
		ID:              "mover",
		Source:          src,
		Pipeline:        batteryPipeline(),
		MakeBackend:     batteryBackend("mover"),
		CheckpointEvery: every,
		Migrations:      []spe.Migration{{Stage: 1, Bucket: 0, To: 1}},
	}
	if err := m.Submit(tenant); err != nil {
		t.Fatalf("submit: %v", err)
	}

	select {
	case <-src.reached:
	case <-time.After(30 * time.Second):
		t.Fatal("tenant never reached the gate")
	}
	stats, _ := m.Snapshot()
	firstSlot := stats[0].Slot
	if firstSlot == "" {
		t.Fatal("tenant has no slot at the gate")
	}
	if err := m.Rebalance("mover"); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if err := m.Rebalance("nobody"); err == nil {
		t.Fatal("rebalancing an unknown tenant succeeded")
	}
	close(src.release)

	results := m.Wait()
	res := results["mover"]
	if res.Err != nil {
		t.Fatalf("tenant failed: %v", res.Err)
	}
	if !res.Result.Final {
		t.Fatal("tenant did not reach final state")
	}
	if res.Stats.Rebalances != 1 {
		t.Fatalf("rebalances = %d, want 1", res.Stats.Rebalances)
	}
	if res.Stats.Failovers != 0 {
		t.Fatalf("failovers = %d, want 0 (planned move must not count)", res.Stats.Failovers)
	}
	if res.Stats.Slot == firstSlot {
		t.Fatalf("tenant still on slot %s after rebalance", firstSlot)
	}
	if got := tenantLedger(t, m, "mover"); !bytes.Equal(got, golden) {
		t.Fatalf("ledger diverges from golden: %d bytes vs %d", len(got), len(golden))
	}
	for _, s := range m.Pool().Status() {
		if !s.Healthy {
			t.Fatalf("slot %s unhealthy after a planned rebalance", s.ID)
		}
	}

	// The in-job live migration must have committed and survived the
	// cross-slot resume.
	jobDir := filepath.Join(m.TenantDir("mover"), "job")
	meta, err := spe.ReadJobMeta(nil, jobDir)
	if err != nil {
		t.Fatalf("read tenant job meta: %v", err)
	}
	if len(meta.Routing) != 2 || len(meta.Routing[1]) != 2 || meta.Routing[1][0] != 1 {
		t.Fatalf("routing %v does not show bucket 0 on worker 1", meta.Routing)
	}
	recs, err := spe.ReadMigrationJournal(nil, jobDir)
	if err != nil {
		t.Fatalf("read migration journal: %v", err)
	}
	committed := false
	for _, r := range recs {
		if r.State == spe.MigStateCommitted {
			committed = true
		}
	}
	if !committed {
		t.Fatalf("no committed migration in journal: %+v", recs)
	}
}

// TestJobRequestStopResumes covers the spe-level contract directly: a
// stopped run returns nil error with Stopped set, commits nothing past
// the stop, and a plain Resume finishes with a golden-identical ledger.
func TestJobRequestStopResumes(t *testing.T) {
	tuples := batteryTuples(600)
	const every = 100
	golden := goldenLedger(t, tuples, every)

	base := t.TempDir()
	mkJob := func(src spe.SeekableSource) *spe.Job {
		p := batteryPipeline()
		mk := batteryBackend("stopper")
		slot := Slot{ID: "s", Dir: filepath.Join(base, "state")}
		for i := range p.Stages {
			if p.Stages[i].Window == nil {
				continue
			}
			si := i
			p.Stages[i].NewBackend = func(w int) (statebackend.Backend, error) {
				return mk(slot, si, w)
			}
		}
		return &spe.Job{
			Pipeline:        p,
			Source:          src,
			Dir:             filepath.Join(base, "job"),
			CheckpointEvery: every,
		}
	}

	src := newGatedSource(tuples, 250)
	job := mkJob(src)
	done := make(chan struct{})
	var res *spe.JobResult
	var runErr error
	go func() {
		defer close(done)
		res, runErr = job.Run()
	}()
	<-src.reached
	job.RequestStop()
	close(src.release)
	<-done
	if runErr != nil {
		t.Fatalf("stopped run errored: %v", runErr)
	}
	if !res.Stopped || res.Final {
		t.Fatalf("stopped=%v final=%v, want stopped, not final", res.Stopped, res.Final)
	}
	res2, err := mkJob(src).Resume()
	if err != nil {
		t.Fatalf("resume after stop: %v", err)
	}
	if !res2.Final || res2.Stopped {
		t.Fatalf("resume: stopped=%v final=%v, want final", res2.Stopped, res2.Final)
	}
	got, err := os.ReadFile(filepath.Join(base, "job", "SINK.log"))
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	if !bytes.Equal(got, golden) {
		t.Fatalf("ledger diverges from golden: %d bytes vs %d", len(got), len(golden))
	}
}

// TestPoolProberHealsSlot drives the healed-slot return path: a failed
// slot must answer the configured number of consecutive probes before
// re-entering rotation, and a flapping probe must reset the count.
func TestPoolProberHealsSlot(t *testing.T) {
	p, err := NewPool([]Slot{{ID: "a", Dir: t.TempDir()}, {ID: "b", Dir: t.TempDir()}})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	p.MarkFailed("a", errors.New("disk on fire"))

	var calls atomic.Int64
	probe := func(s Slot) error {
		if s.ID != "a" {
			t.Errorf("probed healthy slot %s", s.ID)
		}
		// Fail, succeed, fail (resetting the streak), then succeed
		// forever: healing needs two consecutive successes, so the slot
		// returns on the 5th call at the earliest.
		switch calls.Add(1) {
		case 1, 3:
			return errors.New("still broken")
		default:
			return nil
		}
	}
	stop := p.StartProber(ProberOptions{Interval: time.Millisecond, Confirmations: 2, Probe: probe})
	defer stop()

	if !p.AwaitStatus("a", func(s SlotStatus) bool { return s.Healthy }, 10*time.Second) {
		t.Fatalf("slot never healed (%d probes)", calls.Load())
	}
	var a SlotStatus
	for _, s := range p.Status() {
		if s.ID == "a" {
			a = s
		}
	}
	if a.Heals != 1 {
		t.Fatalf("heals = %d, want 1", a.Heals)
	}
	if n := calls.Load(); n < 5 {
		t.Fatalf("slot healed after only %d probes (flap must reset the streak)", n)
	}
	if a.Err != "" {
		t.Fatalf("healed slot still carries error %q", a.Err)
	}
}

// TestPoolProberDefaultProbe heals a failed slot whose directory is
// writable using the built-in media probe.
func TestPoolProberDefaultProbe(t *testing.T) {
	p, err := NewPool([]Slot{{ID: "a", Dir: t.TempDir()}})
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	p.MarkFailed("a", errors.New("transient"))
	stop := p.StartProber(ProberOptions{Interval: time.Millisecond, Confirmations: 1})
	defer stop()
	if !p.AwaitStatus("a", func(s SlotStatus) bool { return s.Healthy }, 10*time.Second) {
		t.Fatal("writable slot never healed under the default probe")
	}
}
