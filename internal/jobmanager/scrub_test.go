package jobmanager

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flowkv/internal/faultfs"
	"flowkv/internal/logfile"
	"flowkv/internal/metrics"
)

func writeSlotLog(t *testing.T, dir, name string, n int) string {
	t.Helper()
	var bd metrics.Breakdown
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	l, err := logfile.Create(path, &bd)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, _, err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func waitStatus(t *testing.T, p *Pool, id string, want func(SlotStatus) bool, what string) SlotStatus {
	t.Helper()
	if !p.AwaitStatus(id, want, 10*time.Second) {
		t.Fatalf("timeout waiting for %s on slot %s: %+v", what, id, p.Status())
	}
	for _, st := range p.Status() {
		if st.ID == id {
			return st
		}
	}
	t.Fatalf("slot %s vanished from the pool", id)
	return SlotStatus{}
}

// The prober's idle-slot scrub: at-rest rot in a log file on a healthy,
// empty slot fails the slot (keeping new tenants off it), and — because
// the media probe alone would pass — the slot only heals once the data
// scrubs clean again.
func TestProberScrubsIdleSlots(t *testing.T) {
	base := t.TempDir()
	dirA, dirB := filepath.Join(base, "a"), filepath.Join(base, "b")
	rotted := writeSlotLog(t, dirA, "seg.log", 200)
	writeSlotLog(t, dirB, "seg.log", 200)
	if err := faultfs.CorruptAtRest(nil, rotted, faultfs.CorruptBitFlip, -1); err != nil {
		t.Fatal(err)
	}

	p, err := NewPool([]Slot{{ID: "a", Dir: dirA}, {ID: "b", Dir: dirB}})
	if err != nil {
		t.Fatal(err)
	}
	stop := p.StartProber(ProberOptions{
		Interval:      2 * time.Millisecond,
		Confirmations: 1,
		ScrubIdle:     true,
	})
	defer stop()

	st := waitStatus(t, p, "a", func(s SlotStatus) bool { return !s.Healthy }, "scrub failure")
	if !strings.Contains(st.Err, "scrub") {
		t.Fatalf("failure not attributed to scrub: %q", st.Err)
	}
	if st.ScrubCorrupt == 0 {
		t.Fatalf("scrub corruption not counted: %+v", st)
	}

	// The clean slot keeps scrubbing and stays in rotation.
	st = waitStatus(t, p, "b", func(s SlotStatus) bool { return s.Scrubs > 0 }, "clean scrub")
	if !st.Healthy || st.ScrubCorrupt != 0 {
		t.Fatalf("clean slot: %+v", st)
	}

	// Media probes succeed on the rotten slot, but with ScrubIdle set
	// the heal path demands a clean scrub too: the slot stays failed
	// until the rot is actually gone.
	time.Sleep(20 * time.Millisecond)
	st = waitStatus(t, p, "a", func(s SlotStatus) bool { return !s.Healthy }, "slot staying failed")

	// Replace the rotten file; the prober heals the slot.
	writeSlotLog(t, dirA, "seg.log", 200)
	st = waitStatus(t, p, "a", func(s SlotStatus) bool { return s.Healthy }, "heal after repair")
	if st.Heals == 0 {
		t.Fatalf("heal not counted: %+v", st)
	}
}

// Slots with tenants placed are never scrubbed: a live appender may
// legitimately be mid-write, and the prober must not race it.
func TestProberSkipsBusySlots(t *testing.T) {
	base := t.TempDir()
	dirA := filepath.Join(base, "a")
	rotted := writeSlotLog(t, dirA, "seg.log", 100)
	if err := faultfs.CorruptAtRest(nil, rotted, faultfs.CorruptBitFlip, -1); err != nil {
		t.Fatal(err)
	}
	p, err := NewPool([]Slot{{ID: "a", Dir: dirA}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Acquire("tenant-1", nil); err != nil {
		t.Fatal(err)
	}
	stop := p.StartProber(ProberOptions{Interval: 2 * time.Millisecond, ScrubIdle: true})
	defer stop()
	time.Sleep(30 * time.Millisecond)
	st := p.Status()[0]
	if st.Scrubs != 0 || !st.Healthy {
		t.Fatalf("busy slot was scrubbed: %+v", st)
	}

	// Releasing the tenant makes the slot idle; the rot is then found.
	p.Release("tenant-1", "a")
	waitStatus(t, p, "a", func(s SlotStatus) bool { return !s.Healthy }, "scrub after release")
}
