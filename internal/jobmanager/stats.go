package jobmanager

import (
	"time"

	"flowkv/internal/metrics"
)

// tenantStats is the live per-tenant accounting: lock-free counters the
// admission path bumps on every decision, an admit-latency histogram,
// and a queue-depth gauge (tuples currently delayed inside Reserve
// waits).
type tenantStats struct {
	admitted   metrics.Counter // tuples admitted at the ingest choke point
	throttled  metrics.Counter // tuples admitted after a rate-limit delay
	shed       metrics.Counter // tuples refused (dropped) at the ingest choke point
	bytesIn    metrics.Counter // store-write bytes admitted
	bytesSlow  metrics.Counter // store-write calls delayed by the bandwidth limiter
	queueDepth metrics.Gauge   // tuples currently held in an admission wait
	admitLat   *metrics.Histogram
	failovers  metrics.Counter
	rebalances metrics.Counter
	ckpts      metrics.Counter
	// ckptLinked/ckptCopied mirror the FlowKV stores' incremental
	// checkpoint byte counters (gauges: refreshed from the backends at
	// every committed checkpoint, on a base carried across failovers).
	ckptLinked metrics.Gauge
	ckptCopied metrics.Gauge
	// storeStalls mirrors the stores' deadline-abandoned-op counters
	// (base carried across failovers, like the checkpoint bytes);
	// storeWriteP99/storeSyncP99/storeEWMA are the worst per-op latency
	// quantiles across the tenant's current backends, in nanoseconds.
	storeStalls   metrics.Gauge
	storeWriteP99 metrics.Gauge
	storeSyncP99  metrics.Gauge
	storeEWMA     metrics.Gauge
}

func newTenantStats() *tenantStats {
	return &tenantStats{admitLat: metrics.NewHistogram()}
}

// Stats is one tenant's externally visible snapshot — what
// `flowkvctl tenants` prints and the noisy-neighbor battery asserts on.
type Stats struct {
	Tenant   string `json:"tenant"`
	Strategy string `json:"strategy"`
	// State is "running", "done" or "failed".
	State string `json:"state"`
	// Slot is the pool slot currently (or last) hosting the tenant.
	Slot string `json:"slot"`
	// Admitted/Throttled/Shed count ingest admission decisions:
	// admitted tuples entered the pipeline (Throttled counts the subset
	// that waited), shed tuples were refused and dropped.
	Admitted  int64 `json:"admitted"`
	Throttled int64 `json:"throttled"`
	Shed      int64 `json:"shed"`
	// WriteBytes counts store-write bytes through the bandwidth choke
	// point; WriteStalls counts writes the bandwidth limiter delayed.
	WriteBytes  int64 `json:"write_bytes"`
	WriteStalls int64 `json:"write_stalls"`
	// QueueDepth is the number of tuples currently parked in admission
	// waits.
	QueueDepth int64 `json:"queue_depth"`
	// AdmitP50/P99 are admission-latency quantiles (the delay Reserve
	// imposed before a tuple entered the pipeline).
	AdmitP50 time.Duration `json:"admit_p50_ns"`
	AdmitP99 time.Duration `json:"admit_p99_ns"`
	// Failovers counts completed moves to a replacement slot.
	Failovers int64 `json:"failovers"`
	// Rebalances counts planned moves (Manager.Rebalance): clean stops
	// resumed on another slot, as opposed to failure-driven moves.
	Rebalances int64 `json:"rebalances"`
	// Checkpoints counts committed generations across runs.
	Checkpoints int64 `json:"checkpoints"`
	// CkptLinkedBytes/CkptCopiedBytes price the tenant's durability:
	// bytes its incremental checkpoints carried forward by hard link vs
	// bytes physically rewritten since the tenant started.
	CkptLinkedBytes int64 `json:"ckpt_linked_bytes"`
	CkptCopiedBytes int64 `json:"ckpt_copied_bytes"`
	// StoreStalls counts store operations abandoned at the op deadline
	// (hung I/O) across the tenant's stores, cumulative over failovers.
	StoreStalls int64 `json:"store_stalls"`
	// StoreWriteP99/StoreSyncP99 are the worst per-op write/fsync p99
	// across the tenant's current stores; StoreLatencyEWMA is the worst
	// rolling write+fsync average — the signal that drives a
	// ReasonLatency degrade.
	StoreWriteP99    time.Duration `json:"store_write_p99_ns"`
	StoreSyncP99     time.Duration `json:"store_sync_p99_ns"`
	StoreLatencyEWMA time.Duration `json:"store_latency_ewma_ns"`
	// Err is the terminal error for State=="failed".
	Err string `json:"err,omitempty"`
}

// snapshot freezes the live counters into a Stats.
func (ts *tenantStats) snapshot() Stats {
	return Stats{
		Admitted:         ts.admitted.Load(),
		Throttled:        ts.throttled.Load(),
		Shed:             ts.shed.Load(),
		WriteBytes:       ts.bytesIn.Load(),
		WriteStalls:      ts.bytesSlow.Load(),
		QueueDepth:       ts.queueDepth.Load(),
		AdmitP50:         ts.admitLat.P50(),
		AdmitP99:         ts.admitLat.P99(),
		Failovers:        ts.failovers.Load(),
		Rebalances:       ts.rebalances.Load(),
		Checkpoints:      ts.ckpts.Load(),
		CkptLinkedBytes:  ts.ckptLinked.Load(),
		CkptCopiedBytes:  ts.ckptCopied.Load(),
		StoreStalls:      ts.storeStalls.Load(),
		StoreWriteP99:    time.Duration(ts.storeWriteP99.Load()),
		StoreSyncP99:     time.Duration(ts.storeSyncP99.Load()),
		StoreLatencyEWMA: time.Duration(ts.storeEWMA.Load()),
	}
}
