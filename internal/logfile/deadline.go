package logfile

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"flowkv/internal/clock"
	"flowkv/internal/faultfs"
)

// ErrStalled reports a write or fsync that did not complete within the
// policy deadline — the gray-failure mode of a disk that hangs instead
// of erroring. A stalled operation poisons the log through the same
// path as a failed sync: the hung syscall may still complete (or fail)
// at any point in the future, so the descriptor is abandoned — never
// fsynced, written, or even closed again — and recovery goes through
// ReopenAtDurable on a fresh descriptor.
var ErrStalled = errors.New("logfile: I/O stalled past deadline")

// MonKind classifies a latency observation by operation type.
type MonKind int

const (
	// MonWrite is a data write (bufio flush of appended frames).
	MonWrite MonKind = iota
	// MonRead is a positional read.
	MonRead
	// MonSync is an fsync.
	MonSync
)

// String returns the kind name.
func (k MonKind) String() string {
	switch k {
	case MonWrite:
		return "write"
	case MonRead:
		return "read"
	case MonSync:
		return "sync"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Monitor observes the latency of every file operation a Log performs,
// plus stall events (operations abandoned at the deadline). Raw reads
// run concurrently with writes, so implementations must be safe for
// concurrent use.
type Monitor interface {
	// ObserveOp records one completed operation's latency.
	ObserveOp(kind MonKind, d time.Duration)
	// ObserveStall records an operation abandoned after running past
	// the deadline. The operation's caller sees ErrStalled.
	ObserveStall(kind MonKind, deadline time.Duration)
}

// Policy bounds and observes a log's I/O. The zero policy (or a nil
// policy) is a passthrough. Policies are attached with Log.SetPolicy or
// Dir.SetPolicy and may be swapped at any time; logs read them through
// an atomic pointer on every operation.
type Policy struct {
	// Deadline bounds each write and fsync. An operation still running
	// at the deadline returns ErrStalled, latches the descriptor as
	// abandoned, and poisons the log; 0 disables the sentinel. Reads
	// are observed but not bounded — a degraded (poisoned) log keeps
	// serving reads from the durable prefix, and wedging those on a
	// latched stall would turn a slow disk into unavailable data.
	Deadline time.Duration
	// Monitor receives per-op latencies and stall events; nil disables
	// observation.
	Monitor Monitor
	// Clock drives the deadline timer and latency measurement; nil
	// means the system clock.
	Clock clock.Clock
}

func (p *Policy) monitor() Monitor {
	if p == nil {
		return nil
	}
	return p.Monitor
}

// guard wraps a log's file descriptor with the policy sentinel. It is
// installed by newLog, so l.f is always the guard and the fd-identity
// checks the split-sync protocol relies on (l.f == tok.f) keep working
// across the wrap. A guard whose operation once ran past the deadline
// is "stalled": the in-flight syscall owns the descriptor forever, so
// every later mutation fails fast with ErrStalled (the never-refsync
// rule extended to never-touch) and Close leaks the fd deliberately —
// closing it under a hung syscall invites the kernel to reuse the
// number while the syscall still references it.
type guard struct {
	lg      *Log
	f       faultfs.File
	stalled atomic.Bool
}

func (g *guard) policy() *Policy { return g.lg.pol.Load() }

func (g *guard) abandonedErr(what string) error {
	return fmt.Errorf("logfile: %s on descriptor abandoned after stall: %w", what, ErrStalled)
}

// timedErr runs fn under the policy's deadline. Used for Sync/Truncate
// (no byte count).
func (g *guard) timedErr(kind MonKind, fn func() error) error {
	_, err := g.timed(kind, func() (int, error) { return 0, fn() })
	return err
}

// timed runs fn, observing its latency and abandoning it at the policy
// deadline. The late result of an abandoned operation is discarded: the
// goroutine running it drains into a buffered channel and exits.
func (g *guard) timed(kind MonKind, fn func() (int, error)) (int, error) {
	if g.stalled.Load() {
		return 0, g.abandonedErr(kind.String())
	}
	p := g.policy()
	mon := p.monitor()
	if p == nil || (p.Deadline <= 0 && mon == nil) {
		return fn()
	}
	clk := clock.Or(p.Clock)
	start := clk.Now()
	if p.Deadline <= 0 {
		n, err := fn()
		mon.ObserveOp(kind, clk.Now().Sub(start))
		return n, err
	}
	type result struct {
		n   int
		err error
	}
	done := make(chan result, 1)
	go func() {
		n, err := fn()
		done <- result{n, err}
	}()
	select {
	case r := <-done:
		if mon != nil {
			mon.ObserveOp(kind, clk.Now().Sub(start))
		}
		return r.n, r.err
	case <-clk.After(p.Deadline):
		select {
		case r := <-done: // completed in the race window; take it
			if mon != nil {
				mon.ObserveOp(kind, clk.Now().Sub(start))
			}
			return r.n, r.err
		default:
		}
		g.stalled.Store(true)
		if mon != nil {
			mon.ObserveStall(kind, p.Deadline)
		}
		return 0, fmt.Errorf("logfile: %s exceeded %v deadline: %w", kind, p.Deadline, ErrStalled)
	}
}

func (g *guard) Write(p []byte) (int, error) {
	return g.timed(MonWrite, func() (int, error) { return g.f.Write(p) })
}

func (g *guard) Sync() error {
	return g.timedErr(MonSync, g.f.Sync)
}

func (g *guard) Truncate(size int64) error {
	if g.stalled.Load() {
		return g.abandonedErr("truncate")
	}
	return g.f.Truncate(size)
}

// ReadAt observes latency but is never bounded or stall-gated: poisoned
// logs serve degraded reads from this descriptor's durable prefix.
func (g *guard) ReadAt(p []byte, off int64) (int, error) {
	pol := g.policy()
	mon := pol.monitor()
	if mon == nil {
		return g.f.ReadAt(p, off)
	}
	clk := clock.Or(pol.Clock)
	start := clk.Now()
	n, err := g.f.ReadAt(p, off)
	mon.ObserveOp(MonRead, clk.Now().Sub(start))
	return n, err
}

func (g *guard) Read(p []byte) (int, error) { return g.f.Read(p) }

func (g *guard) Seek(offset int64, whence int) (int64, error) {
	if g.stalled.Load() {
		return 0, g.abandonedErr("seek")
	}
	return g.f.Seek(offset, whence)
}

func (g *guard) Close() error {
	if g.stalled.Load() {
		return nil // fd deliberately leaked; see the type comment
	}
	return g.f.Close()
}

func (g *guard) Name() string { return g.f.Name() }

// ReadFrom preserves the kernel copy path (copy_file_range) TransferTo
// relies on when the underlying file supports it; otherwise it copies
// through guard.Write so the deadline still applies.
func (g *guard) ReadFrom(r io.Reader) (int64, error) {
	if g.stalled.Load() {
		return 0, g.abandonedErr("write")
	}
	if rf, ok := g.f.(io.ReaderFrom); ok {
		return rf.ReadFrom(r)
	}
	return io.Copy(writerOnly{g}, r)
}

// writerOnly hides guard's ReadFrom from io.Copy so the fallback copy
// does not recurse.
type writerOnly struct{ w io.Writer }

func (w writerOnly) Write(p []byte) (int, error) { return w.w.Write(p) }

// SetPolicy installs (or replaces, or with nil removes) the I/O policy
// on this log. Takes effect on the next operation.
func (l *Log) SetPolicy(p *Policy) { l.pol.Store(p) }

// SetPolicy installs the I/O policy applied to every log this directory
// opens from now on. Logs already open keep their policy.
func (d *Dir) SetPolicy(p *Policy) { d.pol.Store(p) }
