package logfile

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flowkv/internal/faultfs"
)

// recordingMonitor counts latency observations and stall events.
type recordingMonitor struct {
	mu     sync.Mutex
	ops    map[MonKind]int
	stalls map[MonKind]int
}

func newRecordingMonitor() *recordingMonitor {
	return &recordingMonitor{ops: map[MonKind]int{}, stalls: map[MonKind]int{}}
}

func (m *recordingMonitor) ObserveOp(kind MonKind, d time.Duration) {
	m.mu.Lock()
	m.ops[kind]++
	m.mu.Unlock()
}

func (m *recordingMonitor) ObserveStall(kind MonKind, deadline time.Duration) {
	m.mu.Lock()
	m.stalls[kind]++
	m.mu.Unlock()
}

func (m *recordingMonitor) counts() (ops, stalls map[MonKind]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ops, stalls = map[MonKind]int{}, map[MonKind]int{}
	for k, v := range m.ops {
		ops[k] = v
	}
	for k, v := range m.stalls {
		stalls[k] = v
	}
	return ops, stalls
}

// deadlineLog builds a log over an injector with n synced records and m
// unsynced tail records.
func deadlineLog(t *testing.T, synced, unsynced int) (*Log, *faultfs.Injector, []string) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS)
	l, err := CreateFS(inj, filepath.Join(t.TempDir(), "d.log"), nil)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	var want []string
	for i := 0; i < synced; i++ {
		rec := fmt.Sprintf("synced-%03d", i)
		if _, _, err := l.Append([]byte(rec)); err != nil {
			t.Fatalf("append: %v", err)
		}
		want = append(want, rec)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("baseline sync: %v", err)
	}
	for i := 0; i < unsynced; i++ {
		rec := fmt.Sprintf("tail-%03d", i)
		if _, _, err := l.Append([]byte(rec)); err != nil {
			t.Fatalf("append tail: %v", err)
		}
		want = append(want, rec)
	}
	return l, inj, want
}

func scanAll(t *testing.T, l *Log) []string {
	t.Helper()
	sc, err := l.Scanner(0)
	if err != nil {
		t.Fatalf("scanner: %v", err)
	}
	var got []string
	for sc.Scan() {
		got = append(got, string(sc.Record()))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return got
}

func waitParked(t *testing.T, inj *faultfs.Injector) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for inj.Stalled() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("operation never parked in the injector")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestDeadlineHungSyncPoisonsAndRecovers(t *testing.T) {
	l, inj, want := deadlineLog(t, 5, 3)
	mon := newRecordingMonitor()
	l.SetPolicy(&Policy{Deadline: 20 * time.Millisecond, Monitor: mon})
	defer inj.Release()

	durableBefore := l.DurableOffset()
	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Hang: true, Class: faultfs.ClassPersistent})

	err := l.Sync()
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("sync over hung fsync = %v, want ErrStalled", err)
	}
	if l.Poisoned() == nil || !errors.Is(l.Poisoned(), ErrStalled) {
		t.Fatalf("log not poisoned by the stall: %v", l.Poisoned())
	}
	if got := l.DurableOffset(); got != durableBefore {
		t.Fatalf("stalled sync moved the durable offset: %d -> %d", durableBefore, got)
	}
	_, stalls := mon.counts()
	if stalls[MonSync] != 1 {
		t.Fatalf("monitor saw %d sync stalls, want 1", stalls[MonSync])
	}

	// Degraded reads keep serving every acked record (durable prefix
	// stitched with the retained tail).
	if got := scanAll(t, l); len(got) != len(want) {
		t.Fatalf("degraded scan returned %d records, want %d", len(got), len(want))
	}

	// Recovery: fresh descriptor, truncate to durable, rewrite tail.
	// The hang is still armed, so clear it first (ReopenAtDurable does
	// not fsync, but future syncs must pass).
	inj.Reset()
	if err := l.ReopenAtDurable(); err != nil {
		t.Fatalf("reopen at durable: %v", err)
	}
	if _, _, err := l.Append([]byte("post-reopen")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	want = append(want, "post-reopen")
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after reopen: %v", err)
	}
	got := scanAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("post-recovery scan returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDeadlineTimedOutSyncNeverRefsyncs(t *testing.T) {
	// The never-refsync rule: after a timed-out fsync the descriptor is
	// abandoned — later Syncs fail fast without issuing another fsync
	// on it, exactly like an error-failed sync.
	l, inj, _ := deadlineLog(t, 2, 2)
	l.SetPolicy(&Policy{Deadline: 20 * time.Millisecond})
	defer inj.Release()
	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Hang: true, Class: faultfs.ClassPersistent})
	if err := l.Sync(); !errors.Is(err, ErrStalled) {
		t.Fatalf("sync = %v, want ErrStalled", err)
	}
	opsAfterStall := inj.Ops()
	for i := 0; i < 3; i++ {
		if err := l.Sync(); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("sync %d on poisoned log = %v, want ErrPoisoned", i, err)
		}
	}
	if got := inj.Ops(); got != opsAfterStall {
		t.Fatalf("poisoned log touched the filesystem: %d ops -> %d", opsAfterStall, got)
	}
}

func TestDeadlineHangReleasedAfterPoisonKeepsDurable(t *testing.T) {
	// The hung fsync is released only AFTER the log has been poisoned,
	// reopened and written to again — the late completion lands on the
	// abandoned descriptor and must not corrupt the durable prefix.
	l, inj, want := deadlineLog(t, 4, 2)
	l.SetPolicy(&Policy{Deadline: 20 * time.Millisecond})
	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Hang: true, Class: faultfs.ClassOnce})
	if err := l.Sync(); !errors.Is(err, ErrStalled) {
		t.Fatalf("sync = %v, want ErrStalled", err)
	}
	waitParked(t, inj)
	if err := l.ReopenAtDurable(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, _, err := l.Append([]byte("after-stall")); err != nil {
		t.Fatalf("append: %v", err)
	}
	want = append(want, "after-stall")
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after reopen: %v", err)
	}
	durable := l.DurableOffset()

	// Now release the hung fsync and let it complete on the abandoned fd.
	inj.Release()
	deadline := time.Now().Add(10 * time.Second)
	for inj.Stalled() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("released fsync never completed")
		}
		time.Sleep(100 * time.Microsecond)
	}

	if got := l.DurableOffset(); got != durable {
		t.Fatalf("late fsync completion moved the durable offset: %d -> %d", durable, got)
	}
	got := scanAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("scan returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// A cold reopen of the same file sees the identical committed set.
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, err := OpenFS(inj, l.Path(), nil)
	if err != nil {
		t.Fatalf("cold open: %v", err)
	}
	defer l2.Close()
	got2 := scanAll(t, l2)
	if len(got2) != len(want) {
		t.Fatalf("cold scan returned %d records, want %d", len(got2), len(want))
	}
	for i := range want {
		if got2[i] != want[i] {
			t.Fatalf("cold record %d = %q, want %q", i, got2[i], want[i])
		}
	}
}

func TestDeadlineHungWriteStallsFlush(t *testing.T) {
	l, inj, want := deadlineLog(t, 3, 0)
	l.SetPolicy(&Policy{Deadline: 20 * time.Millisecond})
	defer inj.Release()
	if _, _, err := l.Append([]byte("buffered")); err != nil {
		t.Fatalf("append: %v", err)
	}
	want = append(want, "buffered")
	inj.SetRule(faultfs.Rule{Op: faultfs.OpWrite, Hang: true, Class: faultfs.ClassOnce})
	if err := l.Flush(); !errors.Is(err, ErrStalled) {
		t.Fatalf("flush over hung write = %v, want ErrStalled", err)
	}
	if l.Poisoned() == nil {
		t.Fatalf("hung write did not poison the log")
	}
	if err := l.ReopenAtDurable(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	inj.Release()
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after reopen: %v", err)
	}
	got := scanAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("scan returned %d records, want %d", len(got), len(want))
	}
}

func TestDeadlineSplitSyncStallPoisonsViaFinish(t *testing.T) {
	// The split-sync path: commit runs the fsync outside the I/O lock;
	// a timed-out commit must poison through FinishSync exactly like a
	// failed one.
	l, inj, _ := deadlineLog(t, 2, 1)
	l.SetPolicy(&Policy{Deadline: 20 * time.Millisecond})
	defer inj.Release()
	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Hang: true, Class: faultfs.ClassPersistent})
	tok, commit, err := l.BeginSync()
	if err != nil {
		t.Fatalf("begin sync: %v", err)
	}
	serr := commit()
	if !errors.Is(serr, ErrStalled) {
		t.Fatalf("commit = %v, want ErrStalled", serr)
	}
	if err := l.FinishSync(tok, serr); !errors.Is(err, ErrStalled) {
		t.Fatalf("finish sync = %v, want the stall error back", err)
	}
	if l.Poisoned() == nil {
		t.Fatalf("stalled split sync did not poison the log")
	}
}

func TestDeadlineMonitorObservesWithoutDeadline(t *testing.T) {
	// A policy with only a Monitor (no deadline) observes latency
	// without spawning sentinel goroutines or ever stalling.
	l, _, _ := deadlineLog(t, 0, 0)
	mon := newRecordingMonitor()
	l.SetPolicy(&Policy{Monitor: mon})
	if _, _, err := l.Append([]byte("x")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if _, err := l.ReadRecordAt(0, 1); err == nil {
		_ = err // best-effort: a short read is fine, we only want latency samples
	}
	ops, stalls := mon.counts()
	if ops[MonWrite] == 0 || ops[MonSync] == 0 {
		t.Fatalf("monitor missed ops: %v", ops)
	}
	if len(stalls) != 0 {
		t.Fatalf("monitor saw stalls on a healthy log: %v", stalls)
	}
}

func TestDeadlineDirPolicyInheritance(t *testing.T) {
	inj := faultfs.NewInjector(faultfs.OS)
	d, err := OpenDirFS(inj, t.TempDir(), nil)
	if err != nil {
		t.Fatalf("open dir: %v", err)
	}
	d.SetPolicy(&Policy{Deadline: 20 * time.Millisecond})
	defer inj.Release()
	l, err := d.Create("inherit.log")
	if err != nil {
		t.Fatalf("dir create: %v", err)
	}
	defer l.Close()
	if _, _, err := l.Append([]byte("x")); err != nil {
		t.Fatalf("append: %v", err)
	}
	inj.SetRule(faultfs.Rule{Op: faultfs.OpSync, Hang: true, Class: faultfs.ClassPersistent})
	if err := l.Sync(); !errors.Is(err, ErrStalled) {
		t.Fatalf("sync on dir-created log = %v, want ErrStalled (policy not inherited?)", err)
	}
}
