// Package logfile implements the on-disk substrate shared by all stores in
// this repository: append-only log files with buffered writes, framed
// record scanning, positional reads, and zero-copy byte transfer between
// logs (used by the AUR store's integrated compaction, §5 of the paper).
//
// Every byte of I/O performed through this package is charged to a
// metrics.Breakdown so that experiment harnesses can reproduce the
// paper's I/O accounting without external tooling.
package logfile

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
	"flowkv/internal/metrics"
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("logfile: closed")

// ErrPoisoned reports an operation on a log whose write path failed. A
// failed fsync may have dropped dirty pages without telling us which
// (the "fsyncgate" failure mode), so the log never retries fsync on the
// same file descriptor: mutations are rejected until ReopenAtDurable
// rebuilds the file from the last durable offset. Reads keep working,
// served from the durable prefix plus the in-memory unsynced tail.
var ErrPoisoned = errors.New("logfile: poisoned by earlier write failure")

// MaxTailBytes caps the in-memory copy of unsynced appends a Log keeps
// for rewrite-after-reopen. Beyond the cap the log stops retaining the
// tail; a subsequent write failure then makes unsynced data
// unrecoverable and ReopenAtDurable refuses, forcing the store to report
// Failed instead of silently losing acked writes.
var MaxTailBytes = 8 << 20

// ErrCorruptRecord reports a record whose bytes came back from the disk
// successfully but failed verification: a checksum mismatch, a mangled
// frame, or a record whose decoded length disagrees with the index. It is
// the typed face of silent corruption — distinct from ErrPoisoned (the
// write path failed) and from I/O errors (the read itself failed).
var ErrCorruptRecord = errors.New("logfile: corrupt record")

// CorruptError carries the forensics of a corrupt record: which file, at
// what offset, and the underlying frame failure (a *binio.FrameError with
// the expected-vs-got checksums when the CRC mismatched). It matches both
// ErrCorruptRecord and binio.ErrCorrupt under errors.Is.
type CorruptError struct {
	// Path is the log file containing the bad frame.
	Path string
	// Off is the file offset at which the bad frame starts.
	Off int64
	// Err is the underlying verification failure.
	Err error
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("logfile: %s: corrupt record at offset %d: %v", e.Path, e.Off, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// Is reports a match for the ErrCorruptRecord sentinel (the wrapped error
// chain additionally matches binio.ErrCorrupt).
func (e *CorruptError) Is(target error) bool { return target == ErrCorruptRecord }

// corruptErr builds a CorruptError, normalizing a bare cause.
func corruptErr(path string, off int64, cause error) error {
	if cause == nil {
		cause = binio.ErrCorrupt
	}
	return &CorruptError{Path: path, Off: off, Err: cause}
}

// Log is a single append-only file of framed records. A Log performs no
// locking: it is owned by whichever goroutine holds its store instance's
// I/O lock, and the only methods safe to call outside that ownership are
// ReadRangeAtRaw and ReadRecordAtRaw (positional reads that touch no
// mutable state).
//
// A Log tracks its durable offset — the size covered by the last
// successful Sync — and retains the framed bytes appended past it (the
// tail, capped at MaxTailBytes). When a write or sync fails the log is
// poisoned: see ErrPoisoned.
type Log struct {
	fs     faultfs.FS
	path   string
	f      faultfs.File
	w      *bufio.Writer
	rw     *binio.RecordWriter
	bd     *metrics.Breakdown
	ver    binio.FrameVersion
	closed bool

	durable int64  // offset covered by the last successful Sync
	tail    []byte // framed bytes appended past durable, if tailOK
	tailOK  bool
	perr    error // first write-path error; non-nil means poisoned

	pol atomic.Pointer[Policy] // I/O deadline + latency observation; nil = passthrough
}

// Create creates (or truncates) an append-only log at path. The breakdown
// may be nil, in which case I/O is not accounted.
func Create(path string, bd *metrics.Breakdown) (*Log, error) {
	return CreateFS(faultfs.OS, path, bd)
}

// CreateFS is Create against an explicit filesystem, the seam used by
// fault-injection tests. New logs always use the current (v1) record
// frame.
func CreateFS(fsys faultfs.FS, path string, bd *metrics.Breakdown) (*Log, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("logfile: create: %w", err)
	}
	return newLog(fsys, path, f, 0, binio.FrameV1, bd), nil
}

// Open opens an existing log for appending; new records go after any valid
// prefix. Torn trailing records from a crash are truncated away.
func Open(path string, bd *metrics.Breakdown) (*Log, error) {
	return OpenFS(faultfs.OS, path, bd)
}

// OpenFS is Open against an explicit filesystem. The file's frame version
// is sniffed from its first byte — new and current files use the v1 frame,
// files written before the version bump keep the legacy v0 frame for both
// reads and appends (per-file homogeneity: a file never mixes frames).
func OpenFS(fsys faultfs.FS, path string, bd *metrics.Breakdown) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logfile: open: %w", err)
	}
	end, ver, err := recoverEnd(path, f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("logfile: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("logfile: seek: %w", err)
	}
	return newLog(fsys, path, f, end, ver, bd), nil
}

// recoverEnd scans f and returns the offset one past its last valid
// record plus the file's sniffed frame version. Corruption before the
// final record (a torn tail is fine; mid-file rot is not) fails the open
// with a typed CorruptError, so a store never resumes over bytes it
// cannot vouch for.
func recoverEnd(path string, f faultfs.File) (int64, binio.FrameVersion, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	sc := binio.NewRecordScannerSniff(bufio.NewReaderSize(f, 256*1024), 0)
	records := 0
	for sc.Scan() {
		records++
	}
	ver := sc.Version()
	if err := sc.Err(); err != nil {
		// A legacy v0 file can begin with the v1 marker byte when the low
		// byte of its first record's CRC happens to equal it (~1/256 of
		// legacy files). If the sniffed v1 scan found nothing valid, retry
		// the whole file as v0 before declaring it corrupt.
		if ver == binio.FrameV1 && records == 0 {
			if _, serr := f.Seek(0, io.SeekStart); serr == nil {
				sc0 := binio.NewRecordScanner(bufio.NewReaderSize(f, 256*1024), 0)
				n0 := 0
				for sc0.Scan() {
					n0++
				}
				if sc0.Err() == nil && n0 > 0 {
					return sc0.Offset(), binio.FrameV0, nil
				}
			}
		}
		return 0, 0, fmt.Errorf("logfile: recover: %w", corruptErr(path, sc.Offset(), err))
	}
	return sc.Offset(), ver, nil
}

func newLog(fsys faultfs.FS, path string, f faultfs.File, off int64, ver binio.FrameVersion, bd *metrics.Breakdown) *Log {
	// Bytes present at open are on disk already; treat them as the
	// durable baseline a reopen may truncate back to.
	l := &Log{fs: fsys, path: path, bd: bd, ver: ver, durable: off, tailOK: true}
	// Every descriptor is wrapped in the policy guard so deadlines and
	// latency observation apply uniformly; with no policy installed the
	// guard is a passthrough.
	l.f = &guard{lg: l, f: f}
	l.w = bufio.NewWriterSize(l.f, 256*1024)
	l.rw = binio.NewRecordWriterV(l.w, off, ver)
	return l
}

// Version returns the log's frame version. Callers that decode raw byte
// ranges themselves (ReadRangeAt / ReadRangeAtRaw) must decode with it.
func (l *Log) Version() binio.FrameVersion { return l.ver }

// Path returns the file path of the log.
func (l *Log) Path() string { return l.path }

// Size returns the logical size of the log: the offset one byte past the
// last appended record, including any bytes still in the write buffer.
func (l *Log) Size() int64 { return l.rw.Offset() }

// DurableOffset returns the offset covered by the last successful Sync.
// Records below it survive a reopen; records above it exist only in the
// write path (buffer, page cache, and the retained tail).
func (l *Log) DurableOffset() int64 { return l.durable }

// Poisoned returns the first write-path error if the log is poisoned,
// nil otherwise.
func (l *Log) Poisoned() error { return l.perr }

// poison records the first write-path failure. From here on mutations
// are rejected (never fsync the same fd again after a failure) until
// ReopenAtDurable.
func (l *Log) poison(err error) {
	if l.perr == nil {
		l.perr = err
	}
}

func (l *Log) poisonedErr() error {
	return fmt.Errorf("%w (%v)", ErrPoisoned, l.perr)
}

// flush pushes buffered appends to the OS, poisoning the log on failure
// (bufio errors are sticky: once a flush fails the buffer contents are
// in an unknown partial state on disk).
func (l *Log) flush() error {
	if l.perr != nil {
		return l.poisonedErr()
	}
	if err := l.w.Flush(); err != nil {
		l.poison(err)
		return err
	}
	return nil
}

// Append writes one framed record and returns its offset and on-disk
// length (frame included).
func (l *Log) Append(payload []byte) (off int64, n int, err error) {
	if l.closed {
		return 0, 0, ErrClosed
	}
	if l.perr != nil {
		return 0, 0, l.poisonedErr()
	}
	off, n, err = l.rw.Write(payload)
	if err != nil {
		l.poison(err)
		return 0, 0, err
	}
	if l.tailOK {
		l.tail = binio.AppendRecordV(l.tail, payload, l.ver)
		if len(l.tail) > MaxTailBytes {
			l.tail = nil
			l.tailOK = false
		}
	}
	if l.bd != nil {
		l.bd.AddBytesWritten(int64(n))
	}
	return off, n, nil
}

// Flush pushes buffered appends to the operating system.
func (l *Log) Flush() error {
	if l.closed {
		return ErrClosed
	}
	return l.flush()
}

// Sync flushes and fsyncs the log. SPEs typically disable per-write
// durability (paper §8: persistency features are disabled and recovery
// replays from the source), so stores call Sync only at checkpoints. A
// failed sync poisons the log — the kernel may have dropped the dirty
// pages it could not write, so retrying fsync on this fd would falsely
// succeed; recovery goes through ReopenAtDurable instead.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.flush(); err != nil {
		return err
	}
	start := time.Now()
	err := l.f.Sync()
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
	}
	if err != nil {
		l.poison(err)
		return err
	}
	l.durable = l.rw.Offset()
	l.tail = l.tail[:0]
	l.tailOK = true
	return nil
}

// ErrSyncSuperseded reports that the file descriptor a split sync
// targeted was replaced (the log was reopened) between BeginSync and
// FinishSync: the fsync outcome says nothing about the current fd, and
// the caller must redo the sync against current state.
var ErrSyncSuperseded = errors.New("logfile: sync superseded by reopen")

// SyncToken carries a split sync's target state from BeginSync to
// FinishSync.
type SyncToken struct {
	f      faultfs.File
	target int64
}

// BeginSync starts a split sync: it drains buffered appends to the fd
// and returns a commit closure performing the fsync, plus a token for
// FinishSync. The caller holds its I/O lock across BeginSync, releases
// it while running commit — so point reads and flushes of later batches
// overlap the fsync — then re-acquires it and passes the outcome to
// FinishSync. commit touches no mutable Log state; the caller must keep
// at most one split sync in flight per log.
func (l *Log) BeginSync() (SyncToken, func() error, error) {
	if l.closed {
		return SyncToken{}, nil, ErrClosed
	}
	if err := l.flush(); err != nil {
		return SyncToken{}, nil, err
	}
	f, bd := l.f, l.bd
	tok := SyncToken{f: f, target: l.rw.Offset()}
	return tok, func() error {
		start := time.Now()
		err := f.Sync()
		if bd != nil {
			bd.Observe(metrics.OpIOWait, time.Since(start))
		}
		return err
	}, nil
}

// FinishSync completes a split sync under the caller's I/O lock, given
// commit's outcome. On success it advances the durable offset to the
// token's target and drops the covered tail prefix — appends that ran
// during the fsync keep their tail bytes and stay pending for the next
// sync. A failed fsync poisons the log exactly as Sync does, unless the
// fd was already replaced (the failure belongs to a dead descriptor).
func (l *Log) FinishSync(tok SyncToken, serr error) error {
	if serr != nil {
		if !l.closed && l.f == tok.f {
			l.poison(serr)
		}
		return serr
	}
	if l.closed {
		return ErrClosed
	}
	if l.f != tok.f {
		return ErrSyncSuperseded
	}
	if l.perr != nil {
		return l.poisonedErr()
	}
	if tok.target > l.durable {
		drop := tok.target - l.durable
		switch {
		case l.tailOK && drop >= int64(len(l.tail)):
			l.tail = l.tail[:0]
		case l.tailOK:
			l.tail = append(l.tail[:0], l.tail[drop:]...)
		case l.rw.Offset() <= tok.target:
			// The tail had overflowed, but everything it failed to
			// retain is now fsynced: retention can restart.
			l.tail = l.tail[:0]
			l.tailOK = true
		}
		l.durable = tok.target
	}
	return nil
}

// ReopenAtDurable recovers a poisoned log: it discards the suspect file
// descriptor, truncates the file back to the durable offset, and
// rewrites the retained tail so every previously returned record offset
// stays valid. It is a no-op on a healthy log. If the tail was not
// retained (MaxTailBytes exceeded) and unsynced records exist, it
// refuses: those records are unrecoverable and the caller must report
// the loss rather than mask it.
func (l *Log) ReopenAtDurable() error {
	if l.closed {
		return ErrClosed
	}
	if l.perr == nil {
		return nil
	}
	if !l.tailOK && l.rw.Offset() > l.durable {
		return fmt.Errorf("logfile: reopen %s: %d unsynced bytes exceed the retained tail: %w",
			l.path, l.rw.Offset()-l.durable, l.perr)
	}
	l.f.Close() // fd is suspect; close errors carry no extra information
	// (a guard stalled past its deadline skips the close entirely)
	f, err := l.fs.OpenFile(l.path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("logfile: reopen: %w", err)
	}
	if err := f.Truncate(l.durable); err != nil {
		f.Close()
		return fmt.Errorf("logfile: reopen truncate: %w", err)
	}
	if _, err := f.Seek(l.durable, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("logfile: reopen seek: %w", err)
	}
	g := &guard{lg: l, f: f}
	w := bufio.NewWriterSize(g, 256*1024)
	if len(l.tail) > 0 {
		if _, err := w.Write(l.tail); err != nil {
			f.Close()
			return fmt.Errorf("logfile: reopen rewrite tail: %w", err)
		}
	}
	l.f = g
	l.w = w
	l.rw = binio.NewRecordWriterV(w, l.durable+int64(len(l.tail)), l.ver)
	l.perr = nil
	return nil
}

// readAt fills buf from offset off, flushing first on a healthy log. On
// a poisoned log (or when the flush itself fails and poisons it) the
// read is served from the durable file prefix stitched with the retained
// in-memory tail, so degraded stores keep serving acked data.
func (l *Log) readAt(buf []byte, off int64) error {
	if l.perr == nil {
		if err := l.flush(); err == nil {
			start := time.Now()
			if _, err := l.f.ReadAt(buf, off); err != nil {
				return fmt.Errorf("logfile: read at %d: %w", off, err)
			}
			if l.bd != nil {
				l.bd.Observe(metrics.OpIOWait, time.Since(start))
			}
			return nil
		}
		// The flush failed and poisoned the log; fall through to the
		// stitched view rather than failing the read.
	}
	return l.preadStitched(buf, off)
}

// preadStitched serves [off, off+len(buf)) of a poisoned log: bytes
// below the durable offset from the file, the rest from the retained
// tail (the file's content past durable is suspect after a failed
// flush/sync).
func (l *Log) preadStitched(buf []byte, off int64) error {
	end := off + int64(len(buf))
	if off < l.durable {
		fn := len(buf)
		if end > l.durable {
			fn = int(l.durable - off)
		}
		start := time.Now()
		if _, err := l.f.ReadAt(buf[:fn], off); err != nil {
			return fmt.Errorf("logfile: read at %d: %w", off, err)
		}
		if l.bd != nil {
			l.bd.Observe(metrics.OpIOWait, time.Since(start))
		}
		buf = buf[fn:]
		off += int64(fn)
	}
	if len(buf) == 0 {
		return nil
	}
	if !l.tailOK {
		return fmt.Errorf("%w: unsynced range [%d,%d) not retained (%v)", ErrPoisoned, off, end, l.perr)
	}
	toff := off - l.durable
	if toff < 0 || toff+int64(len(buf)) > int64(len(l.tail)) {
		return fmt.Errorf("logfile: read at %d: %w", off, io.ErrUnexpectedEOF)
	}
	copy(buf, l.tail[toff:])
	return nil
}

// decodeRecord verifies and decodes the single framed record occupying
// exactly buf (read from offset off). Beyond the checksum it checks that
// the frame consumes the whole buffer: an index entry said n bytes, so a
// valid-looking shorter frame at that offset means the read was stale or
// misdirected, which is corruption, not a decode quirk.
func (l *Log) decodeRecord(buf []byte, off int64) ([]byte, error) {
	payload, used, err := binio.ReadRecordV(buf, l.ver)
	if err != nil {
		return nil, corruptErr(l.path, off, err)
	}
	if used != len(buf) {
		return nil, corruptErr(l.path, off,
			fmt.Errorf("frame spans %d of %d indexed bytes (stale or misdirected read)", used, len(buf)))
	}
	return payload, nil
}

// ReadRecordAt reads the framed record at offset off, whose total on-disk
// length is n, and returns its payload. The payload is a fresh allocation.
// Bytes that read back mangled (bit rot, zeroed pages) fail verification
// with a CorruptError (errors.Is ErrCorruptRecord).
func (l *Log) ReadRecordAt(off int64, n int) ([]byte, error) {
	if l.closed {
		return nil, ErrClosed
	}
	buf := make([]byte, n)
	if err := l.readAt(buf, off); err != nil {
		return nil, err
	}
	if l.bd != nil {
		l.bd.AddBytesRead(int64(n))
	}
	return l.decodeRecord(buf, off)
}

// ReadRangeAt reads n raw bytes starting at off. Used by batch reads that
// cover several adjacent records with one I/O.
func (l *Log) ReadRangeAt(off int64, n int) ([]byte, error) {
	if l.closed {
		return nil, ErrClosed
	}
	buf := make([]byte, n)
	if err := l.readAt(buf, off); err != nil {
		return nil, err
	}
	if l.bd != nil {
		l.bd.AddBytesRead(int64(n))
	}
	return buf, nil
}

// ReadRangeAtRaw reads n raw bytes starting at off without touching the
// write buffer. Unlike ReadRangeAt it is safe to call from several
// goroutines at once — it lowers to a positional pread and mutates no Log
// state — provided the caller has flushed the log once beforehand and no
// append, flush, or close runs concurrently. The AUR store uses it to fan
// one batch read's coalesced ranges across worker goroutines.
func (l *Log) ReadRangeAtRaw(off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	start := time.Now()
	if _, err := l.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("logfile: read range at %d: %w", off, err)
	}
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
		l.bd.AddBytesRead(int64(n))
	}
	return buf, nil
}

// ReadRecordAtRaw reads the framed record at offset off (total on-disk
// length n) without touching the write buffer or any mutable Log state.
// Like ReadRangeAtRaw it is safe to call concurrently with other reads,
// provided the record's bytes were flushed beforehand and no append,
// flush, or close runs concurrently. The RMW store uses it to pread
// outside its I/O lock so point reads overlap fsyncs.
func (l *Log) ReadRecordAtRaw(off int64, n int) ([]byte, error) {
	buf, err := l.ReadRangeAtRaw(off, n)
	if err != nil {
		return nil, err
	}
	return l.decodeRecord(buf, off)
}

// Scanner returns a sequential scanner over the log's records from offset
// base. The log's buffered writes are flushed first; on a poisoned log
// the scan covers the durable prefix stitched with the retained tail.
func (l *Log) Scanner(base int64) (*Scanner, error) {
	if l.closed {
		return nil, ErrClosed
	}
	if l.perr == nil && l.flush() == nil {
		sr := io.NewSectionReader(l.f, base, l.Size()-base)
		return &Scanner{
			sc:   binio.NewRecordScannerV(bufio.NewReaderSize(sr, 256*1024), base, l.ver),
			path: l.path,
			bd:   l.bd,
		}, nil
	}
	// Poisoned (possibly by the flush just above): stitch durable file
	// bytes with the retained tail.
	if !l.tailOK && l.Size() > l.durable {
		return nil, fmt.Errorf("%w: unsynced range [%d,%d) not retained (%v)",
			ErrPoisoned, l.durable, l.Size(), l.perr)
	}
	var parts []io.Reader
	if base < l.durable {
		parts = append(parts, io.NewSectionReader(l.f, base, l.durable-base))
	}
	tstart := base - l.durable
	if tstart < 0 {
		tstart = 0
	}
	if tstart < int64(len(l.tail)) {
		parts = append(parts, bytes.NewReader(l.tail[tstart:]))
	}
	return &Scanner{
		sc:   binio.NewRecordScannerV(bufio.NewReaderSize(io.MultiReader(parts...), 256*1024), base, l.ver),
		path: l.path,
		bd:   l.bd,
	}, nil
}

// TransferTo copies n raw bytes at offset off into dst using the
// kernel-assisted copy path (io.Copy over *os.File lowers to
// copy_file_range on Linux), reproducing the paper's zero-copy byte
// transfer between old and new data logs during AUR compaction.
func (l *Log) TransferTo(dst *Log, off int64, n int64) error {
	if l.closed || dst.closed {
		return ErrClosed
	}
	// The frames are copied verbatim, so the destination must speak the
	// source's frame version. A fresh (empty) destination simply adopts
	// it; a non-empty one with a different version would become a mixed
	// file no reader could verify.
	if dst.ver != l.ver {
		if dst.rw.Offset() != 0 {
			return fmt.Errorf("logfile: transfer: frame version mismatch (src v%d, dst v%d)", l.ver, dst.ver)
		}
		dst.ver = l.ver
		dst.rw = binio.NewRecordWriterV(dst.w, 0, l.ver)
	}
	if err := l.flush(); err != nil {
		return err
	}
	if err := dst.flush(); err != nil {
		return err
	}
	start := time.Now()
	sr := io.NewSectionReader(l.f, off, n)
	copied, err := io.Copy(dst.f, sr)
	if err != nil {
		return fmt.Errorf("logfile: transfer: %w", err)
	}
	if copied != n {
		return fmt.Errorf("logfile: transfer copied %d of %d bytes", copied, n)
	}
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
		l.bd.AddBytesRead(n)
		l.bd.AddBytesWritten(n)
	}
	// The destination file position advanced by the kernel copy; keep the
	// record writer's logical offset in step. The transferred bytes are
	// not captured in dst's tail, so dst stops retaining one until its
	// next successful Sync re-establishes a durable baseline.
	dst.rw = binio.NewRecordWriterV(dst.w, dst.rw.Offset()+n, dst.ver)
	if n > 0 {
		dst.tail = nil
		dst.tailOK = false
	}
	return nil
}

// ScrubSummary aggregates ScrubResults across the logs of one store
// instance.
type ScrubSummary struct {
	// Files is the number of logs scrubbed.
	Files int
	// Records and Bytes total the verified frames across those logs.
	Records int
	Bytes   int64
	// Healed counts logs whose unsynced tail was repaired in place.
	Healed int
}

// Add folds one log's scrub result into the summary.
func (s *ScrubSummary) Add(r ScrubResult) {
	s.Files++
	s.Records += r.Records
	s.Bytes += r.Bytes
	if r.Healed {
		s.Healed++
	}
}

// Merge folds another summary into s.
func (s *ScrubSummary) Merge(o ScrubSummary) {
	s.Files += o.Files
	s.Records += o.Records
	s.Bytes += o.Bytes
	s.Healed += o.Healed
}

// ScrubResult reports one log's scrub outcome.
type ScrubResult struct {
	// Records is the number of frames that verified cleanly.
	Records int
	// Bytes is the number of bytes covered by verified frames.
	Bytes int64
	// Healed reports that corruption was found past the durable offset
	// and repaired in place by rewriting the retained tail (the
	// durable-offset truncate path). The log is healthy afterwards.
	Healed bool
}

// Scrub verifies every record frame currently in the log against its
// checksum, reading the file itself (not the in-memory tail), so at-rest
// rot is detected even for bytes a degraded read would serve from memory.
// The caller must hold the store's I/O lock, like any other mutating
// method.
//
// Corruption strictly below the durable offset is unrepairable from this
// log alone and is returned as a CorruptError. Corruption at or past the
// durable offset sits in the unsynced suffix, which the log still holds
// in its retained tail: Scrub heals it by the same poison + reopen path a
// failed sync uses (truncate to durable, rewrite the tail) and re-verifies.
// A poisoned log is scrubbed over its stitched durable+tail view without
// attempting repair — ReopenAtDurable already owns that transition.
func (l *Log) Scrub() (ScrubResult, error) {
	var res ScrubResult
	if l.closed {
		return res, ErrClosed
	}
	healed := false
	for attempt := 0; ; attempt++ {
		records, bytes, err := l.scrubPass()
		if err == nil {
			res.Records, res.Bytes, res.Healed = records, bytes, healed
			return res, nil
		}
		var ce *CorruptError
		if !errors.As(err, &ce) || ce.Off < l.durable || l.perr != nil || attempt > 0 {
			return res, err
		}
		// Unsynced suffix is rotten on disk but intact in the retained
		// tail: poison and reopen rewrites it, then one re-verify pass
		// confirms the heal took.
		l.poison(fmt.Errorf("scrub: %w", err))
		if rerr := l.ReopenAtDurable(); rerr != nil {
			return res, fmt.Errorf("logfile: scrub repair: %w (corruption: %v)", rerr, err)
		}
		if ferr := l.flush(); ferr != nil {
			return res, ferr
		}
		healed = true
	}
}

// scrubPass verifies the log's frames once. On a healthy log it scans the
// file bytes; on a poisoned one, the stitched durable+tail view.
func (l *Log) scrubPass() (int, int64, error) {
	if l.perr == nil {
		if err := l.flush(); err != nil {
			return 0, 0, err
		}
	}
	sc, err := l.Scanner(0)
	if err != nil {
		return 0, 0, err
	}
	records := 0
	for sc.Scan() {
		records++
	}
	if err := sc.Err(); err != nil {
		return records, sc.Offset(), err
	}
	// A live log never legitimately ends mid-frame (appends are whole
	// frames; torn tails exist only in files recovered after a crash,
	// and open-time recovery truncates those). A trailing partial frame
	// here is rot that zeroed or shortened the suffix.
	if sc.Offset() != l.Size() {
		return records, sc.Offset(), corruptErr(l.path, sc.Offset(),
			fmt.Errorf("trailing %d bytes are not a whole frame", l.Size()-sc.Offset()))
	}
	return records, sc.Offset(), nil
}

// Close flushes and closes the log file. The file remains on disk. A
// second Close returns ErrClosed, consistent with every other method on a
// closed log, so latent double-close bugs surface instead of passing
// silently.
func (l *Log) Close() error {
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if l.perr != nil {
		// The buffer contents are already suspect; flushing them into
		// the file would only smear more unverifiable bytes after the
		// durable offset.
		l.f.Close()
		return l.poisonedErr()
	}
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Remove closes the log (if still open) and unlinks its file (the AAR
// store's "clean the per-window log after the read" step). Unlike Close,
// Remove on an already-closed log is not an error: the unlink still
// happens, so cleanup paths that run after an error-path Close converge.
func (l *Log) Remove() error {
	var err error
	if !l.closed {
		err = l.Close()
	}
	if rerr := l.fs.Remove(l.path); rerr != nil && !errors.Is(rerr, os.ErrNotExist) && err == nil {
		err = rerr
	}
	return err
}

// Scanner iterates a log's framed records sequentially.
type Scanner struct {
	sc   *binio.RecordScanner
	path string
	bd   *metrics.Breakdown
	n    int64
}

// Scan advances to the next record, reporting false at end of log.
func (s *Scanner) Scan() bool {
	prev := s.sc.Offset()
	ok := s.sc.Scan()
	if ok {
		s.n += s.sc.Offset() - prev
	}
	return ok
}

// Record returns the current record payload; valid until the next Scan.
func (s *Scanner) Record() []byte { return s.sc.Record() }

// Offset returns the offset one byte past the current record.
func (s *Scanner) Offset() int64 { return s.sc.Offset() }

// Err returns the first non-EOF error encountered. Corrupt frames are
// wrapped in a CorruptError naming the file and the offset of the last
// valid record before the rot.
func (s *Scanner) Err() error {
	if s.bd != nil && s.n > 0 {
		s.bd.AddBytesRead(s.n)
		s.n = 0
	}
	err := s.sc.Err()
	if err != nil && errors.Is(err, binio.ErrCorrupt) {
		return corruptErr(s.path, s.sc.Offset(), err)
	}
	return err
}

// Dir manages a directory of named log files for one store instance: file
// naming, creation, listing, and space accounting. It is the substrate for
// the AAR store's per-window files and the AUR/RMW stores' numbered
// generations of data and index logs.
type Dir struct {
	mu   sync.Mutex
	fs   faultfs.FS
	root string
	bd   *metrics.Breakdown
	seq  int64

	pol atomic.Pointer[Policy] // inherited by every log this Dir opens
}

// OpenDir creates (if needed) and opens a log directory rooted at root.
func OpenDir(root string, bd *metrics.Breakdown) (*Dir, error) {
	return OpenDirFS(faultfs.OS, root, bd)
}

// OpenDirFS is OpenDir against an explicit filesystem; every log created
// or opened through the Dir inherits it.
func OpenDirFS(fsys faultfs.FS, root string, bd *metrics.Breakdown) (*Dir, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("logfile: open dir: %w", err)
	}
	return &Dir{fs: fsys, root: root, bd: bd}, nil
}

// Root returns the directory path.
func (d *Dir) Root() string { return d.root }

// FS returns the filesystem the directory operates against.
func (d *Dir) FS() faultfs.FS { return d.fs }

// Breakdown returns the directory's metrics sink (may be nil).
func (d *Dir) Breakdown() *metrics.Breakdown { return d.bd }

// Create creates a log with the exact name within the directory. The
// new log inherits the directory's I/O policy.
func (d *Dir) Create(name string) (*Log, error) {
	l, err := CreateFS(d.fs, filepath.Join(d.root, name), d.bd)
	if err != nil {
		return nil, err
	}
	l.pol.Store(d.pol.Load())
	return l, nil
}

// Open opens an existing named log, recovering its tail. The log
// inherits the directory's I/O policy.
func (d *Dir) Open(name string) (*Log, error) {
	l, err := OpenFS(d.fs, filepath.Join(d.root, name), d.bd)
	if err != nil {
		return nil, err
	}
	l.pol.Store(d.pol.Load())
	return l, nil
}

// NextName returns a fresh "<prefix>-<seq>.log" name, unique within this
// Dir for the life of the process.
func (d *Dir) NextName(prefix string) string {
	d.mu.Lock()
	d.seq++
	n := d.seq
	d.mu.Unlock()
	return fmt.Sprintf("%s-%06d.log", prefix, n)
}

// List returns the names of logs in the directory with the given prefix,
// sorted by sequence number.
func (d *Dir) List(prefix string) ([]string, error) {
	ents, err := d.fs.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("logfile: list: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, prefix+"-") && strings.HasSuffix(name, ".log") {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool { return seqOf(names[i]) < seqOf(names[j]) })
	return names, nil
}

func seqOf(name string) int64 {
	base := strings.TrimSuffix(name, ".log")
	if i := strings.LastIndexByte(base, '-'); i >= 0 {
		if n, err := strconv.ParseInt(base[i+1:], 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// Remove unlinks the named log file.
func (d *Dir) Remove(name string) error {
	err := d.fs.Remove(filepath.Join(d.root, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// DiskUsage returns the total size in bytes of all files in the directory,
// used for space-amplification accounting in the MSA experiments.
func (d *Dir) DiskUsage() (int64, error) {
	ents, err := d.fs.ReadDir(d.root)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			continue
		}
		total += info.Size()
	}
	return total, nil
}

// RemoveAll deletes the directory and everything under it.
func (d *Dir) RemoveAll() error { return d.fs.RemoveAll(d.root) }
