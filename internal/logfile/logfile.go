// Package logfile implements the on-disk substrate shared by all stores in
// this repository: append-only log files with buffered writes, framed
// record scanning, positional reads, and zero-copy byte transfer between
// logs (used by the AUR store's integrated compaction, §5 of the paper).
//
// Every byte of I/O performed through this package is charged to a
// metrics.Breakdown so that experiment harnesses can reproduce the
// paper's I/O accounting without external tooling.
package logfile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flowkv/internal/binio"
	"flowkv/internal/faultfs"
	"flowkv/internal/metrics"
)

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("logfile: closed")

// Log is a single append-only file of framed records. A Log performs no
// locking: it is owned by whichever goroutine holds its store instance's
// I/O lock, and the only method safe to call outside that ownership is
// ReadRangeAtRaw (a positional read that touches no mutable state).
type Log struct {
	fs     faultfs.FS
	path   string
	f      faultfs.File
	w      *bufio.Writer
	rw     *binio.RecordWriter
	bd     *metrics.Breakdown
	closed bool
}

// Create creates (or truncates) an append-only log at path. The breakdown
// may be nil, in which case I/O is not accounted.
func Create(path string, bd *metrics.Breakdown) (*Log, error) {
	return CreateFS(faultfs.OS, path, bd)
}

// CreateFS is Create against an explicit filesystem, the seam used by
// fault-injection tests.
func CreateFS(fsys faultfs.FS, path string, bd *metrics.Breakdown) (*Log, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("logfile: create: %w", err)
	}
	return newLog(fsys, path, f, 0, bd), nil
}

// Open opens an existing log for appending; new records go after any valid
// prefix. Torn trailing records from a crash are truncated away.
func Open(path string, bd *metrics.Breakdown) (*Log, error) {
	return OpenFS(faultfs.OS, path, bd)
}

// OpenFS is Open against an explicit filesystem.
func OpenFS(fsys faultfs.FS, path string, bd *metrics.Breakdown) (*Log, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logfile: open: %w", err)
	}
	end, err := recoverEnd(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, fmt.Errorf("logfile: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("logfile: seek: %w", err)
	}
	return newLog(fsys, path, f, end, bd), nil
}

// recoverEnd scans f and returns the offset one past its last valid record.
func recoverEnd(f faultfs.File) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	sc := binio.NewRecordScanner(bufio.NewReaderSize(f, 256*1024), 0)
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("logfile: recover: %w", err)
	}
	return sc.Offset(), nil
}

func newLog(fsys faultfs.FS, path string, f faultfs.File, off int64, bd *metrics.Breakdown) *Log {
	w := bufio.NewWriterSize(f, 256*1024)
	return &Log{fs: fsys, path: path, f: f, w: w, rw: binio.NewRecordWriter(w, off), bd: bd}
}

// Path returns the file path of the log.
func (l *Log) Path() string { return l.path }

// Size returns the logical size of the log: the offset one byte past the
// last appended record, including any bytes still in the write buffer.
func (l *Log) Size() int64 { return l.rw.Offset() }

// Append writes one framed record and returns its offset and on-disk
// length (frame included).
func (l *Log) Append(payload []byte) (off int64, n int, err error) {
	if l.closed {
		return 0, 0, ErrClosed
	}
	off, n, err = l.rw.Write(payload)
	if err == nil && l.bd != nil {
		l.bd.AddBytesWritten(int64(n))
	}
	return off, n, err
}

// Flush pushes buffered appends to the operating system.
func (l *Log) Flush() error {
	if l.closed {
		return ErrClosed
	}
	return l.w.Flush()
}

// Sync flushes and fsyncs the log. SPEs typically disable per-write
// durability (paper §8: persistency features are disabled and recovery
// replays from the source), so stores call Sync only at checkpoints.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.Flush(); err != nil {
		return err
	}
	start := time.Now()
	err := l.f.Sync()
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
	}
	return err
}

// ReadRecordAt reads the framed record at offset off, whose total on-disk
// length is n, and returns its payload. The payload is a fresh allocation.
func (l *Log) ReadRecordAt(off int64, n int) ([]byte, error) {
	if l.closed {
		return nil, ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	start := time.Now()
	if _, err := l.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("logfile: read at %d: %w", off, err)
	}
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
		l.bd.AddBytesRead(int64(n))
	}
	payload, _, err := binio.ReadRecord(buf)
	if err != nil {
		return nil, fmt.Errorf("logfile: record at %d: %w", off, err)
	}
	return payload, nil
}

// ReadRangeAt reads n raw bytes starting at off. Used by batch reads that
// cover several adjacent records with one I/O.
func (l *Log) ReadRangeAt(off int64, n int) ([]byte, error) {
	if l.closed {
		return nil, ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	start := time.Now()
	if _, err := l.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("logfile: read range at %d: %w", off, err)
	}
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
		l.bd.AddBytesRead(int64(n))
	}
	return buf, nil
}

// ReadRangeAtRaw reads n raw bytes starting at off without touching the
// write buffer. Unlike ReadRangeAt it is safe to call from several
// goroutines at once — it lowers to a positional pread and mutates no Log
// state — provided the caller has flushed the log once beforehand and no
// append, flush, or close runs concurrently. The AUR store uses it to fan
// one batch read's coalesced ranges across worker goroutines.
func (l *Log) ReadRangeAtRaw(off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	start := time.Now()
	if _, err := l.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("logfile: read range at %d: %w", off, err)
	}
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
		l.bd.AddBytesRead(int64(n))
	}
	return buf, nil
}

// Scanner returns a sequential scanner over the log's records from offset
// base. The log's buffered writes are flushed first.
func (l *Log) Scanner(base int64) (*Scanner, error) {
	if l.closed {
		return nil, ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return nil, err
	}
	sr := io.NewSectionReader(l.f, base, l.Size()-base)
	return &Scanner{
		sc: binio.NewRecordScanner(bufio.NewReaderSize(sr, 256*1024), base),
		bd: l.bd,
	}, nil
}

// TransferTo copies n raw bytes at offset off into dst using the
// kernel-assisted copy path (io.Copy over *os.File lowers to
// copy_file_range on Linux), reproducing the paper's zero-copy byte
// transfer between old and new data logs during AUR compaction.
func (l *Log) TransferTo(dst *Log, off int64, n int64) error {
	if l.closed || dst.closed {
		return ErrClosed
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := dst.w.Flush(); err != nil {
		return err
	}
	start := time.Now()
	sr := io.NewSectionReader(l.f, off, n)
	copied, err := io.Copy(dst.f, sr)
	if err != nil {
		return fmt.Errorf("logfile: transfer: %w", err)
	}
	if copied != n {
		return fmt.Errorf("logfile: transfer copied %d of %d bytes", copied, n)
	}
	if l.bd != nil {
		l.bd.Observe(metrics.OpIOWait, time.Since(start))
		l.bd.AddBytesRead(n)
		l.bd.AddBytesWritten(n)
	}
	// The destination file position advanced by the kernel copy; keep the
	// record writer's logical offset in step.
	dst.rw = binio.NewRecordWriter(dst.w, dst.rw.Offset()+n)
	return nil
}

// Close flushes and closes the log file. The file remains on disk. A
// second Close returns ErrClosed, consistent with every other method on a
// closed log, so latent double-close bugs surface instead of passing
// silently.
func (l *Log) Close() error {
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// Remove closes the log (if still open) and unlinks its file (the AAR
// store's "clean the per-window log after the read" step). Unlike Close,
// Remove on an already-closed log is not an error: the unlink still
// happens, so cleanup paths that run after an error-path Close converge.
func (l *Log) Remove() error {
	var err error
	if !l.closed {
		err = l.Close()
	}
	if rerr := l.fs.Remove(l.path); rerr != nil && !errors.Is(rerr, os.ErrNotExist) && err == nil {
		err = rerr
	}
	return err
}

// Scanner iterates a log's framed records sequentially.
type Scanner struct {
	sc *binio.RecordScanner
	bd *metrics.Breakdown
	n  int64
}

// Scan advances to the next record, reporting false at end of log.
func (s *Scanner) Scan() bool {
	prev := s.sc.Offset()
	ok := s.sc.Scan()
	if ok {
		s.n += s.sc.Offset() - prev
	}
	return ok
}

// Record returns the current record payload; valid until the next Scan.
func (s *Scanner) Record() []byte { return s.sc.Record() }

// Offset returns the offset one byte past the current record.
func (s *Scanner) Offset() int64 { return s.sc.Offset() }

// Err returns the first non-EOF error encountered.
func (s *Scanner) Err() error {
	if s.bd != nil && s.n > 0 {
		s.bd.AddBytesRead(s.n)
		s.n = 0
	}
	return s.sc.Err()
}

// Dir manages a directory of named log files for one store instance: file
// naming, creation, listing, and space accounting. It is the substrate for
// the AAR store's per-window files and the AUR/RMW stores' numbered
// generations of data and index logs.
type Dir struct {
	mu   sync.Mutex
	fs   faultfs.FS
	root string
	bd   *metrics.Breakdown
	seq  int64
}

// OpenDir creates (if needed) and opens a log directory rooted at root.
func OpenDir(root string, bd *metrics.Breakdown) (*Dir, error) {
	return OpenDirFS(faultfs.OS, root, bd)
}

// OpenDirFS is OpenDir against an explicit filesystem; every log created
// or opened through the Dir inherits it.
func OpenDirFS(fsys faultfs.FS, root string, bd *metrics.Breakdown) (*Dir, error) {
	if fsys == nil {
		fsys = faultfs.OS
	}
	if err := fsys.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("logfile: open dir: %w", err)
	}
	return &Dir{fs: fsys, root: root, bd: bd}, nil
}

// Root returns the directory path.
func (d *Dir) Root() string { return d.root }

// FS returns the filesystem the directory operates against.
func (d *Dir) FS() faultfs.FS { return d.fs }

// Breakdown returns the directory's metrics sink (may be nil).
func (d *Dir) Breakdown() *metrics.Breakdown { return d.bd }

// Create creates a log with the exact name within the directory.
func (d *Dir) Create(name string) (*Log, error) {
	return CreateFS(d.fs, filepath.Join(d.root, name), d.bd)
}

// Open opens an existing named log, recovering its tail.
func (d *Dir) Open(name string) (*Log, error) {
	return OpenFS(d.fs, filepath.Join(d.root, name), d.bd)
}

// NextName returns a fresh "<prefix>-<seq>.log" name, unique within this
// Dir for the life of the process.
func (d *Dir) NextName(prefix string) string {
	d.mu.Lock()
	d.seq++
	n := d.seq
	d.mu.Unlock()
	return fmt.Sprintf("%s-%06d.log", prefix, n)
}

// List returns the names of logs in the directory with the given prefix,
// sorted by sequence number.
func (d *Dir) List(prefix string) ([]string, error) {
	ents, err := d.fs.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("logfile: list: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, prefix+"-") && strings.HasSuffix(name, ".log") {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool { return seqOf(names[i]) < seqOf(names[j]) })
	return names, nil
}

func seqOf(name string) int64 {
	base := strings.TrimSuffix(name, ".log")
	if i := strings.LastIndexByte(base, '-'); i >= 0 {
		if n, err := strconv.ParseInt(base[i+1:], 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// Remove unlinks the named log file.
func (d *Dir) Remove(name string) error {
	err := d.fs.Remove(filepath.Join(d.root, name))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// DiskUsage returns the total size in bytes of all files in the directory,
// used for space-amplification accounting in the MSA experiments.
func (d *Dir) DiskUsage() (int64, error) {
	ents, err := d.fs.ReadDir(d.root)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			continue
		}
		total += info.Size()
	}
	return total, nil
}

// RemoveAll deletes the directory and everything under it.
func (d *Dir) RemoveAll() error { return d.fs.RemoveAll(d.root) }
