package logfile

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"flowkv/internal/faultfs"
	"flowkv/internal/metrics"
)

func scrubLog(t *testing.T, n int) *Log {
	t.Helper()
	var bd metrics.Breakdown
	l, err := Create(filepath.Join(t.TempDir(), "s.log"), &bd)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for i := 0; i < n; i++ {
		if _, _, err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

func TestScrubCleanLog(t *testing.T) {
	l := scrubLog(t, 200)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	res, err := l.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 200 || res.Bytes != l.Size() || res.Healed {
		t.Fatalf("clean scrub: %+v (size %d)", res, l.Size())
	}
}

// Rot past the durable offset sits in the unsynced suffix, which the log
// still retains in memory: Scrub must repair it in place and leave a log
// that verifies cleanly and still serves every record.
func TestScrubHealsUnsyncedTailRot(t *testing.T) {
	l := scrubLog(t, 50)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := l.DurableOffset()
	for i := 0; i < 20; i++ {
		if _, _, err := l.Append([]byte(fmt.Sprintf("tail-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Force the unsynced frames onto disk (without moving the durable
	// offset), then rot a byte in the suffix.
	if _, err := l.Scrub(); err != nil {
		t.Fatal(err)
	}
	if l.DurableOffset() != durable {
		t.Fatalf("scrub moved durable offset: %d -> %d", durable, l.DurableOffset())
	}
	if err := faultfs.CorruptAtRest(nil, l.Path(), faultfs.CorruptBitFlip, durable+10); err != nil {
		t.Fatal(err)
	}
	res, err := l.Scrub()
	if err != nil {
		t.Fatalf("scrub should heal tail rot, got %v", err)
	}
	if !res.Healed || res.Records != 70 {
		t.Fatalf("heal result: %+v", res)
	}
	// The healed log verifies cleanly and serves all 70 records.
	res, err = l.Scrub()
	if err != nil || res.Healed {
		t.Fatalf("post-heal scrub: %+v, %v", res, err)
	}
	sc, err := l.Scanner(0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sc.Scan() {
		n++
	}
	if sc.Err() != nil || n != 70 {
		t.Fatalf("post-heal scan: %d records, err %v", n, sc.Err())
	}
}

// Rot below the durable offset has no intact copy anywhere in this log:
// Scrub must report it as a typed corruption naming the file and offset,
// not heal it and not serve the bytes.
func TestScrubReportsDurableRot(t *testing.T) {
	l := scrubLog(t, 100)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.CorruptAtRest(nil, l.Path(), faultfs.CorruptBitFlip, l.Size()/2); err != nil {
		t.Fatal(err)
	}
	_, err := l.Scrub()
	if err == nil {
		t.Fatal("scrub accepted durable rot")
	}
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("want ErrCorruptRecord, got %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %T: %v", err, err)
	}
	if ce.Path != l.Path() || ce.Off < 0 || ce.Off > l.Size() {
		t.Fatalf("corrupt error coordinates: %+v", ce)
	}
	// A second sweep reports the same verdict; nothing was "repaired".
	if _, err2 := l.Scrub(); err2 == nil {
		t.Fatal("second scrub accepted durable rot")
	}
}

// A zeroed suffix (lost-write rot at rest) is not a whole frame; the
// scrub must flag it rather than mistake it for a torn tail, because a
// live log's size already reflects every append.
func TestScrubFlagsZeroedSuffix(t *testing.T) {
	l := scrubLog(t, 100)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := faultfs.CorruptAtRest(nil, l.Path(), faultfs.CorruptZeroPage, l.Size()-1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Scrub(); err == nil {
		t.Fatal("scrub accepted zero-page rot")
	} else if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("want ErrCorruptRecord, got %v", err)
	}
}
