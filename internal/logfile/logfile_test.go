package logfile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flowkv/internal/binio"
	"flowkv/internal/metrics"
)

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var bd metrics.Breakdown
	l, err := Create(filepath.Join(dir, "a.log"), &bd)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var want [][]byte
	for i := 0; i < 500; i++ {
		p := []byte(fmt.Sprintf("record-%04d", i))
		if _, _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	sc, err := l.Scanner(0)
	if err != nil {
		t.Fatal(err)
	}
	var i int
	for sc.Scan() {
		if !bytes.Equal(sc.Record(), want[i]) {
			t.Fatalf("record %d mismatch: %q", i, sc.Record())
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("scanned %d records, want %d", i, len(want))
	}
	if bd.BytesWritten() == 0 || bd.BytesRead() == 0 {
		t.Error("I/O accounting missing")
	}
}

func TestReadRecordAt(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(filepath.Join(dir, "a.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type loc struct {
		off int64
		n   int
	}
	var locs []loc
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := bytes.Repeat([]byte{byte(i)}, 10+i)
		off, n, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc{off, n})
		want = append(want, p)
	}
	// Random-order positional reads.
	for i := len(locs) - 1; i >= 0; i-- {
		got, err := l.ReadRecordAt(locs[i].off, locs[i].n)
		if err != nil {
			t.Fatalf("ReadRecordAt(%d): %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadRangeAtCoversAdjacentRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(filepath.Join(dir, "a.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	off0, n0, _ := l.Append([]byte("first"))
	_, n1, _ := l.Append([]byte("second"))
	raw, err := l.ReadRangeAt(off0, n0+n1)
	if err != nil {
		t.Fatal(err)
	}
	p0, used, err := binio.ReadRecordV(raw, l.Version())
	if err != nil || string(p0) != "first" {
		t.Fatalf("first record: %q %v", p0, err)
	}
	p1, _, err := binio.ReadRecordV(raw[used:], l.Version())
	if err != nil || string(p1) != "second" {
		t.Fatalf("second record: %q %v", p1, err)
	}
}

func TestOpenRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.log")
	l, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]byte("keep-me")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append the prefix of a real frame, simulating a torn write (a crash
	// cuts the stream mid-frame, so the tail is a valid-frame prefix).
	full := binio.AppendRecordV(nil, []byte("torn-away-record"), binio.FrameV1)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, _, err := l2.Append([]byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	sc, err := l2.Scanner(0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for sc.Scan() {
		got = append(got, string(sc.Record()))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "keep-me" || got[1] != "after-recovery" {
		t.Fatalf("recovered records = %v", got)
	}
}

func TestScannerFromOffset(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(filepath.Join(dir, "a.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("one"))
	off, _, _ := l.Append([]byte("two"))
	l.Append([]byte("three"))
	sc, err := l.Scanner(off)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for sc.Scan() {
		got = append(got, string(sc.Record()))
	}
	if len(got) != 2 || got[0] != "two" {
		t.Fatalf("got %v, want [two three]", got)
	}
}

func TestTransferTo(t *testing.T) {
	dir := t.TempDir()
	var bd metrics.Breakdown
	src, err := Create(filepath.Join(dir, "src.log"), &bd)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Create(filepath.Join(dir, "dst.log"), &bd)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	var offs []int64
	var lens []int
	for i := 0; i < 10; i++ {
		off, n, err := src.Append(bytes.Repeat([]byte{byte('a' + i)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
		lens = append(lens, n)
	}
	// Transfer records 3..6 (a contiguous "valid" region).
	start := offs[3]
	length := offs[7] - offs[3]
	if err := src.TransferTo(dst, start, length); err != nil {
		t.Fatal(err)
	}
	if dst.Size() != length {
		t.Fatalf("dst size = %d, want %d", dst.Size(), length)
	}
	// Appends after a transfer must land after the transferred bytes.
	if _, _, err := dst.Append([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	sc, err := dst.Scanner(0)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for sc.Scan() {
		got = append(got, string(sc.Record()[:1]))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"d", "e", "f", "g", "t"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestClosedOperations(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(filepath.Join(dir, "a.log"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != ErrClosed {
		t.Errorf("double close: %v, want ErrClosed", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Errorf("Sync on closed: %v, want ErrClosed", err)
	}
	if err := l.Flush(); err != ErrClosed {
		t.Errorf("Flush on closed: %v, want ErrClosed", err)
	}
	if _, _, err := l.Append(nil); err != ErrClosed {
		t.Errorf("Append on closed: %v", err)
	}
	if _, err := l.ReadRecordAt(0, 0); err != ErrClosed {
		t.Errorf("ReadRecordAt on closed: %v", err)
	}
	if _, err := l.Scanner(0); err != ErrClosed {
		t.Errorf("Scanner on closed: %v", err)
	}
}

func TestRemoveOnClosedLogStillUnlinks(t *testing.T) {
	// The AAR unlink-after-read path may race an error-path Close with the
	// final Remove; Remove must stay effective (and non-erroring) on an
	// already-closed log even though Close itself reports ErrClosed.
	dir := t.TempDir()
	path := filepath.Join(dir, "a.log")
	l, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("x"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(); err != nil {
		t.Errorf("Remove on closed log: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("file still exists after Remove on closed log")
	}
}

func TestRemove(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.log")
	l, err := Create(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]byte("x"))
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("file still exists after Remove")
	}
}

func TestSync(t *testing.T) {
	dir := t.TempDir()
	var bd metrics.Breakdown
	l, err := Create(filepath.Join(dir, "a.log"), &bd)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append([]byte("durable"))
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(l.Path())
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != l.Size() {
		t.Errorf("on-disk size %d != logical size %d after Sync", info.Size(), l.Size())
	}
}

func TestDirNamingAndListing(t *testing.T) {
	root := filepath.Join(t.TempDir(), "store")
	d, err := OpenDir(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for i := 0; i < 12; i++ {
		name := d.NextName("data")
		names = append(names, name)
		l, err := d.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		l.Append([]byte("x"))
		l.Close()
	}
	// A different prefix must not show up in the listing.
	idx, err := d.Create(d.NextName("index"))
	if err != nil {
		t.Fatal(err)
	}
	idx.Close()

	got, err := d.List("data")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(names) {
		t.Fatalf("List = %d names, want %d", len(got), len(names))
	}
	for i := range names {
		if got[i] != names[i] {
			t.Fatalf("List[%d] = %q, want %q (sequence order)", i, got[i], names[i])
		}
	}
}

func TestDirDiskUsageAndRemove(t *testing.T) {
	d, err := OpenDir(filepath.Join(t.TempDir(), "s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	name := d.NextName("data")
	l, err := d.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(bytes.Repeat([]byte("z"), 1000))
	l.Close()
	usage, err := d.DiskUsage()
	if err != nil {
		t.Fatal(err)
	}
	if usage < 1000 {
		t.Errorf("DiskUsage = %d, want >= 1000", usage)
	}
	if err := d.Remove(name); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(name); err != nil {
		t.Errorf("removing a missing file should be a no-op, got %v", err)
	}
	usage, _ = d.DiskUsage()
	if usage != 0 {
		t.Errorf("DiskUsage after remove = %d", usage)
	}
	if err := d.RemoveAll(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l, err := Create(filepath.Join(b.TempDir(), "bench.log"), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("v"), 84)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialScan(b *testing.B) {
	l, err := Create(filepath.Join(b.TempDir(), "bench.log"), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("v"), 84)
	for i := 0; i < 100000; i++ {
		l.Append(payload)
	}
	b.SetBytes(l.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := l.Scanner(0)
		if err != nil {
			b.Fatal(err)
		}
		for sc.Scan() {
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
