package lsm

import (
	"container/list"

	"flowkv/internal/metrics"
)

// blockCache is an LRU cache of SSTable data blocks keyed by
// (file number, block offset), the analogue of RocksDB's block cache.
type blockCache struct {
	capacity int64
	used     int64
	ll       *list.List
	items    map[cacheKey]*list.Element
	ratio    metrics.Ratio
}

type cacheKey struct {
	file uint64
	off  int64
}

type cacheEntry struct {
	key   cacheKey
	block []byte
}

func newBlockCache(capacity int64) *blockCache {
	if capacity <= 0 {
		return nil
	}
	return &blockCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

func (c *blockCache) get(file uint64, off int64) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	el, ok := c.items[cacheKey{file, off}]
	if !ok {
		c.ratio.Miss()
		return nil, false
	}
	c.ratio.Hit()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).block, true
}

func (c *blockCache) put(file uint64, off int64, block []byte) {
	if c == nil {
		return
	}
	k := cacheKey{file, off}
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: k, block: block})
	c.items[k] = el
	c.used += int64(len(block))
	for c.used > c.capacity && c.ll.Len() > 0 {
		oldest := c.ll.Back()
		e := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.used -= int64(len(e.block))
	}
}

// dropFile evicts all cached blocks of a deleted SSTable.
func (c *blockCache) dropFile(file uint64) {
	if c == nil {
		return
	}
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.file == file {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.used -= int64(len(e.block))
		}
		el = next
	}
}

// hitRatio returns the cache hit ratio observed so far.
func (c *blockCache) hitRatio() float64 {
	if c == nil {
		return 0
	}
	return c.ratio.Value()
}
