package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"flowkv/internal/binio"
)

// corruptFirstSST flips a byte in the middle of the store's first SSTable
// data region, simulating media corruption.
func corruptFirstSST(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".sst" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/4] ^= 0xff // inside the data blocks, away from the footer
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no sstable found to corrupt")
}

func TestBlockCorruptionDetectedOnGet(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lsm")
	db, err := Open(Options{Dir: dir, MemtableBytes: 1024, BlockCacheBytes: -1, MergeOperator: AppendListOperator{}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Destroy()
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%04d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptFirstSST(t, dir)

	var sawCorrupt bool
	for i := 0; i < 300; i++ {
		_, _, err := db.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if errors.Is(err, binio.ErrCorrupt) {
			sawCorrupt = true
			break
		}
	}
	if !sawCorrupt {
		t.Error("corrupted block served without a checksum error")
	}
}

func TestBlockCorruptionDetectedOnScan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lsm")
	db, err := Open(Options{Dir: dir, MemtableBytes: 1024, BlockCacheBytes: -1, MergeOperator: AppendListOperator{}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Destroy()
	for i := 0; i < 300; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%04d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	corruptFirstSST(t, dir)

	it, err := db.Scan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for it.Valid() {
		it.Next()
	}
	if !errors.Is(it.Err(), binio.ErrCorrupt) {
		t.Errorf("scan over corrupted block: err = %v, want ErrCorrupt", it.Err())
	}
}

func TestFooterCorruptionDetectedOnOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "lsm")
	db, err := Open(Options{Dir: dir, MemtableBytes: 512, MergeOperator: AppendListOperator{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Find an sstable and trash its footer magic.
	ents, _ := os.ReadDir(dir)
	var path string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".sst" {
			path = filepath.Join(dir, e.Name())
			break
		}
	}
	if path == "" {
		t.Fatal("no sstable")
	}
	info, _ := os.Stat(path)
	meta := &tableMeta{path: path, size: info.Size()}
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if _, err := openSST(meta, nil, nil); err == nil {
		t.Error("bad footer magic accepted")
	}
	db.Destroy()
}
