// Package lsm implements a from-scratch log-structured merge tree, the
// repository's stand-in for RocksDB as an SPE state backend. It has the
// structural properties the paper's RocksDB results rest on:
//
//   - a sorted skiplist memtable flushed to sorted SSTables (blocks +
//     block index + Bloom filter + block cache);
//   - point reads that search the memtable, then level-0 files newest
//     first, then one binary-searched file per deeper level — the
//     key-sorted search overhead of §2.2;
//   - a merge operator with *lazy merging* (§2.2): Merge() appends an
//     operand without reading existing values, and operands are folded
//     together later, during reads and compactions — which is exactly why
//     RocksDB is the competitive baseline for Append workloads and why it
//     burns CPU on background merging;
//   - leveled compaction driven by a level-0 file-count trigger and
//     per-level size targets.
//
// Durability: SPEs disable per-write durability and recover from the
// source (paper §8), so there is no write-ahead log; Flush() persists the
// memtable for checkpoints.
package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"flowkv/internal/binio"
	"flowkv/internal/metrics"
)

// ErrClosed reports an operation on a closed DB.
var ErrClosed = errors.New("lsm: closed")

// MergeOperator combines a base value with merge operands, RocksDB-style.
type MergeOperator interface {
	// FullMerge folds operands (oldest first) into base; base is nil when
	// no base value exists.
	FullMerge(base []byte, operands [][]byte) []byte
}

// AppendListOperator is the merge operator used for streaming Append
// state: values are length-prefixed lists and each operand appends one
// element, so Merge(k, v) implements list-append with lazy merging.
type AppendListOperator struct{}

// FullMerge concatenates base (already a list) with one list element per
// operand.
func (AppendListOperator) FullMerge(base []byte, operands [][]byte) []byte {
	out := append([]byte(nil), base...)
	for _, op := range operands {
		out = binio.PutBytes(out, op)
	}
	return out
}

// DecodeList splits a value produced by AppendListOperator into elements.
func DecodeList(v []byte) ([][]byte, error) {
	var out [][]byte
	for len(v) > 0 {
		e, n, err := binio.Bytes(v)
		if err != nil {
			return nil, err
		}
		out = append(out, append([]byte(nil), e...))
		v = v[n:]
	}
	return out, nil
}

// EncodeListElem appends one element to a list-encoded value, for callers
// building list values directly.
func EncodeListElem(dst, elem []byte) []byte { return binio.PutBytes(dst, elem) }

// Options configures a DB.
type Options struct {
	// Dir is the database directory (created if missing).
	Dir string
	// MemtableBytes caps the memtable before it is flushed. Default 8 MiB.
	MemtableBytes int64
	// L0CompactionTrigger is the level-0 file count that triggers
	// compaction into level 1. Default 4.
	L0CompactionTrigger int
	// BaseLevelBytes is the target size of level 1; deeper levels grow by
	// LevelSizeMultiplier. Default 32 MiB.
	BaseLevelBytes int64
	// LevelSizeMultiplier is the per-level growth factor. Default 10.
	LevelSizeMultiplier int
	// TargetFileBytes bounds individual SSTable size during compaction.
	// Default 4 MiB.
	TargetFileBytes int64
	// BlockCacheBytes sizes the block cache. 0 selects the 32 MiB
	// default; a negative value disables the cache.
	BlockCacheBytes int64
	// MergeOperator resolves Merge() operands; required to call Merge.
	MergeOperator MergeOperator
	// MaxLevels bounds the level count. Default 5.
	MaxLevels int
	// Breakdown receives per-operation CPU time and I/O accounting.
	Breakdown *metrics.Breakdown
}

func (o *Options) fill() {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 8 << 20
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = 32 << 20
	}
	if o.LevelSizeMultiplier <= 0 {
		o.LevelSizeMultiplier = 10
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = 4 << 20
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 32 << 20
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 5
	}
}

// DB is a single-threaded LSM tree instance. Like every store in this
// repository it is owned by one worker goroutine; flushes and compactions
// run synchronously on the writing goroutine so their CPU cost lands in
// the breakdown exactly where the paper measures it.
type DB struct {
	opts    Options
	bd      *metrics.Breakdown
	mem     *skiplist
	seq     uint64
	fileSeq uint64
	levels  [][]*sstReader // levels[0]: newest first; deeper: key-ordered
	cache   *blockCache
	closed  bool

	flushCount   metrics.Counter
	compactCount metrics.Counter
}

// Open creates (or reuses the directory of) an LSM DB. Existing files in
// the directory are ignored: SPE state is rebuilt from the source on
// recovery (§8), so the DB always starts empty.
func Open(opts Options) (*DB, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: open: %w", err)
	}
	db := &DB{
		opts:   opts,
		bd:     opts.Breakdown,
		mem:    newSkiplist(),
		levels: make([][]*sstReader, opts.MaxLevels),
	}
	if opts.BlockCacheBytes > 0 {
		db.cache = newBlockCache(opts.BlockCacheBytes)
	}
	return db, nil
}

func (db *DB) nextSeq() uint64 { db.seq++; return db.seq }

// Put sets key to value.
func (db *DB) Put(key, value []byte) error {
	return db.write(key, value, kindPut)
}

// Merge appends a merge operand for key without reading existing state
// (lazy merging).
func (db *DB) Merge(key, value []byte) error {
	if db.opts.MergeOperator == nil {
		return errors.New("lsm: Merge requires a MergeOperator")
	}
	return db.write(key, value, kindMerge)
}

// Delete removes key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(key, nil, kindDelete)
}

func (db *DB) write(key, value []byte, kind entryKind) error {
	if db.closed {
		return ErrClosed
	}
	var stop func()
	if db.bd != nil {
		stop = db.bd.Start(metrics.OpWrite)
	}
	kc := append([]byte(nil), key...)
	vc := append([]byte(nil), value...)
	db.mem.insert(kc, db.nextSeq(), kind, vc)
	var err error
	if db.mem.approximateSize() >= db.opts.MemtableBytes {
		err = db.flushMemtable()
	}
	if stop != nil {
		stop()
	}
	if err != nil {
		return err
	}
	return db.maybeCompact()
}

// Get returns the resolved value for key; ok is false when the key does
// not exist (or is tombstoned).
func (db *DB) Get(key []byte) (value []byte, ok bool, err error) {
	if db.closed {
		return nil, false, ErrClosed
	}
	var stop func()
	if db.bd != nil {
		stop = db.bd.Start(metrics.OpRead)
	}
	value, ok, err = db.get(key)
	if stop != nil {
		stop()
	}
	return value, ok, err
}

func (db *DB) get(key []byte) ([]byte, bool, error) {
	var operands [][]byte // newest first

	// Memtable: the newest source.
	for n := db.mem.seekGE(key, ^uint64(0)); n != nil && bytes.Equal(n.key, key); n = n.next[0] {
		switch n.kind {
		case kindPut:
			return db.resolve(n.value, false, operands), true, nil
		case kindDelete:
			return db.resolveDeleted(operands)
		case kindMerge:
			operands = append(operands, n.value)
		}
	}

	// Level 0: files overlap; search newest first.
	for _, t := range db.levels[0] {
		base, found, deleted, ops, err := t.get(key, operands)
		operands = ops
		if err != nil {
			return nil, false, err
		}
		if found {
			if deleted {
				return db.resolveDeleted(operands)
			}
			return db.resolve(base, false, operands), true, nil
		}
	}

	// Deeper levels: at most one file per level can contain the key.
	for level := 1; level < len(db.levels); level++ {
		t := db.findFile(level, key)
		if t == nil {
			continue
		}
		base, found, deleted, ops, err := t.get(key, operands)
		operands = ops
		if err != nil {
			return nil, false, err
		}
		if found {
			if deleted {
				return db.resolveDeleted(operands)
			}
			return db.resolve(base, false, operands), true, nil
		}
	}
	if len(operands) > 0 {
		return db.resolve(nil, false, operands), true, nil
	}
	return nil, false, nil
}

func (db *DB) resolve(base []byte, _ bool, operands [][]byte) []byte {
	if len(operands) == 0 {
		return base
	}
	reverse(operands)
	return db.opts.MergeOperator.FullMerge(base, operands)
}

func (db *DB) resolveDeleted(operands [][]byte) ([]byte, bool, error) {
	if len(operands) == 0 {
		return nil, false, nil
	}
	reverse(operands)
	return db.opts.MergeOperator.FullMerge(nil, operands), true, nil
}

// findFile binary-searches a sorted, non-overlapping level for the file
// whose range contains key.
func (db *DB) findFile(level int, key []byte) *sstReader {
	files := db.levels[level]
	lo, hi := 0, len(files)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(files[mid].meta.largest, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(files) && bytes.Compare(files[lo].meta.smallest, key) <= 0 {
		return files[lo]
	}
	return nil
}

// Scan returns an iterator over resolved entries with start <= key < end;
// a nil end is unbounded. The iterator reflects the DB state at call time
// plus the current memtable, and must be consumed before further writes.
func (db *DB) Scan(start, end []byte) (*Iterator, error) {
	if db.closed {
		return nil, ErrClosed
	}
	var iters []internalIterator
	iters = append(iters, seekIterator(memIterAdapter{db.mem.iterator()}, start))
	for _, t := range db.levels[0] {
		iters = append(iters, seekIterator(t.iterator(), start))
	}
	for level := 1; level < len(db.levels); level++ {
		for _, t := range db.levels[level] {
			if bytes.Compare(t.meta.largest, start) < 0 {
				continue
			}
			if end != nil && bytes.Compare(t.meta.smallest, end) >= 0 {
				continue
			}
			iters = append(iters, seekIterator(t.iterator(), start))
		}
	}
	it := &Iterator{
		m:   newMergingIterator(iters),
		mo:  db.opts.MergeOperator,
		end: end,
	}
	it.advance()
	return it, nil
}

// flushMemtable writes the memtable to a new level-0 SSTable.
func (db *DB) flushMemtable() error {
	if db.mem.len() == 0 {
		return nil
	}
	meta, err := db.writeTable(memIterAdapter{db.mem.iterator()}, db.mem.len(), nil)
	if err != nil {
		return err
	}
	if len(meta) > 0 {
		r, err := openSST(meta[0], db.cache, db.bd)
		if err != nil {
			return err
		}
		db.levels[0] = append([]*sstReader{r}, db.levels[0]...)
	}
	db.mem = newSkiplist()
	db.flushCount.Inc()
	return nil
}

// writeTable drains it into one or more SSTables bounded by
// TargetFileBytes when split is non-nil (compaction); a nil split writes
// a single table (memtable flush).
func (db *DB) writeTable(it internalIterator, expectKeys int, split *int64) ([]*tableMeta, error) {
	var metas []*tableMeta
	var sw *sstWriter
	var swNum uint64
	var written int64
	open := func() error {
		db.fileSeq++
		swNum = db.fileSeq
		var err error
		sw, err = newSSTWriter(filepath.Join(db.opts.Dir, fmt.Sprintf("%06d.sst", swNum)), expectKeys, db.bd)
		return err
	}
	closeCur := func() error {
		if sw == nil {
			return nil
		}
		meta, err := sw.finish()
		if err != nil {
			return err
		}
		meta.num = swNum
		if meta.count > 0 {
			metas = append(metas, meta)
		} else {
			os.Remove(meta.path)
		}
		sw = nil
		written = 0
		return nil
	}
	for it.Valid() {
		key, seq, kind, value := it.Entry()
		if sw == nil {
			if err := open(); err != nil {
				return nil, err
			}
		}
		if err := sw.add(key, seq, kind, value); err != nil {
			sw.abort()
			return nil, err
		}
		written += int64(len(key) + len(value) + 8)
		if split != nil && written >= *split {
			if err := closeCur(); err != nil {
				return nil, err
			}
		}
		it.Next()
	}
	if err := it.Err(); err != nil {
		if sw != nil {
			sw.abort()
		}
		return nil, err
	}
	if err := closeCur(); err != nil {
		return nil, err
	}
	return metas, nil
}

// maybeCompact runs level compactions until all triggers are satisfied.
func (db *DB) maybeCompact() error {
	for {
		level := db.pickCompaction()
		if level < 0 {
			return nil
		}
		var stop func()
		if db.bd != nil {
			stop = db.bd.Start(metrics.OpCompact)
		}
		err := db.compactLevel(level)
		if stop != nil {
			stop()
		}
		if err != nil {
			return err
		}
		db.compactCount.Inc()
	}
}

func (db *DB) pickCompaction() int {
	if len(db.levels[0]) >= db.opts.L0CompactionTrigger {
		return 0
	}
	target := db.opts.BaseLevelBytes
	for level := 1; level < len(db.levels)-1; level++ {
		var size int64
		for _, t := range db.levels[level] {
			size += t.meta.size
		}
		if size > target {
			return level
		}
		target *= int64(db.opts.LevelSizeMultiplier)
	}
	return -1
}

// compactLevel merges level and level+1 into a fresh level+1. Version
// chains are collapsed; merge operands and tombstones are fully resolved
// when no deeper level holds data for any key (whole-level compaction
// makes this check a per-DB property).
func (db *DB) compactLevel(level int) error {
	inputs := append([]*sstReader{}, db.levels[level]...)
	inputs = append(inputs, db.levels[level+1]...)
	if len(inputs) == 0 {
		return nil
	}
	bottom := true
	for l := level + 2; l < len(db.levels); l++ {
		if len(db.levels[l]) > 0 {
			bottom = false
			break
		}
	}
	var iters []internalIterator
	var expect int
	for _, t := range inputs {
		iters = append(iters, t.iterator())
		expect += int(t.meta.count)
	}
	src := newMergingIterator(iters)
	out := &compactionIterator{src: src, mo: db.opts.MergeOperator, bottom: bottom}
	out.advance()
	metas, err := db.writeTable(out, expect, &db.opts.TargetFileBytes)
	if err != nil {
		return err
	}
	readers := make([]*sstReader, 0, len(metas))
	for _, m := range metas {
		r, err := openSST(m, db.cache, db.bd)
		if err != nil {
			return err
		}
		readers = append(readers, r)
	}
	// Install the new level and delete the inputs.
	db.levels[level] = nil
	db.levels[level+1] = readers
	for _, t := range inputs {
		t.close()
		db.cache.dropFile(t.meta.num)
		os.Remove(t.meta.path)
	}
	return nil
}

// compactionIterator rewrites version chains during compaction: shadowed
// versions are dropped; at the bottom level merge chains are folded into
// a single Put and tombstones vanish.
type compactionIterator struct {
	src    *mergingIterator
	mo     MergeOperator
	bottom bool

	queue []compactionEntry
	err   error
}

type compactionEntry struct {
	key   []byte
	seq   uint64
	kind  entryKind
	value []byte
}

func (c *compactionIterator) Valid() bool { return c.err == nil && len(c.queue) > 0 }
func (c *compactionIterator) Err() error {
	if c.err != nil {
		return c.err
	}
	return c.src.Err()
}
func (c *compactionIterator) Entry() (key []byte, seq uint64, kind entryKind, value []byte) {
	e := c.queue[0]
	return e.key, e.seq, e.kind, e.value
}
func (c *compactionIterator) Next() {
	c.queue = c.queue[1:]
	if len(c.queue) == 0 {
		c.advance()
	}
}

func (c *compactionIterator) advance() {
	for c.src.Valid() && len(c.queue) == 0 {
		// Gather one user key's version chain (newest first).
		key0, _, _, _ := c.src.Entry()
		userKey := append([]byte(nil), key0...)
		var chain []compactionEntry
		for c.src.Valid() {
			k, seq, kind, v := c.src.Entry()
			if !bytes.Equal(k, userKey) {
				break
			}
			chain = append(chain, compactionEntry{
				key: userKey, seq: seq, kind: kind, value: append([]byte(nil), v...),
			})
			c.src.Next()
		}
		if err := c.src.Err(); err != nil {
			c.err = err
			return
		}
		// Keep merges newer than the first base, plus the base itself.
		var kept []compactionEntry
		var base *compactionEntry
		for i := range chain {
			e := chain[i]
			if e.kind == kindMerge {
				kept = append(kept, e)
				continue
			}
			base = &chain[i]
			break
		}
		if c.bottom {
			// Fold everything into one Put (lazy merging resolves here).
			var operands [][]byte
			for i := len(kept) - 1; i >= 0; i-- {
				operands = append(operands, kept[i].value)
			}
			var bv []byte
			deleted := base == nil || base.kind == kindDelete
			if base != nil && base.kind == kindPut {
				bv = base.value
			}
			if deleted && len(operands) == 0 {
				continue // key disappears
			}
			val := bv
			if len(operands) > 0 {
				val = c.mo.FullMerge(bv, operands)
			}
			seq := chain[0].seq
			c.queue = append(c.queue, compactionEntry{key: userKey, seq: seq, kind: kindPut, value: val})
		} else {
			if base != nil {
				kept = append(kept, *base)
			}
			c.queue = append(c.queue, kept...)
		}
	}
}

// Flush persists the memtable to level 0 (checkpoint support).
func (db *DB) Flush() error {
	if db.closed {
		return ErrClosed
	}
	if err := db.flushMemtable(); err != nil {
		return err
	}
	return db.maybeCompact()
}

// Stats describes the DB shape for experiment reports.
type Stats struct {
	// MemtableBytes is the current memtable footprint.
	MemtableBytes int64
	// FilesPerLevel lists the SSTable count of each level.
	FilesPerLevel []int
	// DiskBytes is the total SSTable footprint.
	DiskBytes int64
	// Flushes and Compactions count maintenance operations.
	Flushes, Compactions int64
	// BlockCacheHitRatio is the block cache hit ratio.
	BlockCacheHitRatio float64
}

// Stats returns current DB statistics.
func (db *DB) Stats() Stats {
	st := Stats{
		MemtableBytes: db.mem.approximateSize(),
		Flushes:       db.flushCount.Load(),
		Compactions:   db.compactCount.Load(),
	}
	for _, files := range db.levels {
		st.FilesPerLevel = append(st.FilesPerLevel, len(files))
		for _, t := range files {
			st.DiskBytes += t.meta.size
		}
	}
	st.BlockCacheHitRatio = db.cache.hitRatio()
	return st
}

// Close closes all SSTable readers, leaving files on disk.
func (db *DB) Close() error {
	if db.closed {
		return nil
	}
	db.closed = true
	var first error
	for _, files := range db.levels {
		for _, t := range files {
			if err := t.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Destroy closes the DB and removes its directory.
func (db *DB) Destroy() error {
	err := db.Close()
	if derr := os.RemoveAll(db.opts.Dir); derr != nil && err == nil {
		err = derr
	}
	return err
}
