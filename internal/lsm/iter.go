package lsm

import (
	"bytes"
	"container/heap"
)

// internalIterator walks entries in internal-key order (user key
// ascending, sequence descending). Both memtable and SSTable iterators
// satisfy it.
type internalIterator interface {
	Valid() bool
	Entry() (key []byte, seq uint64, kind entryKind, value []byte)
	Next()
	Err() error
}

// memIterAdapter exposes a skiplist iterator as an internalIterator.
type memIterAdapter struct {
	it *memIterator
}

func (a memIterAdapter) Valid() bool { return a.it.valid() }
func (a memIterAdapter) Entry() (key []byte, seq uint64, kind entryKind, value []byte) {
	return a.it.entry()
}
func (a memIterAdapter) Next()    { a.it.next() }
func (memIterAdapter) Err() error { return nil }

// mergingIterator merges several internalIterators into one global
// internal-key order using a min-heap.
type mergingIterator struct {
	h   iterHeap
	err error
}

type iterHeap []internalIterator

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	ki, si, _, _ := h[i].Entry()
	kj, sj, _, _ := h[j].Entry()
	return internalCompare(ki, si, kj, sj) < 0
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(internalIterator)) }
func (h *iterHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

func newMergingIterator(iters []internalIterator) *mergingIterator {
	m := &mergingIterator{}
	for _, it := range iters {
		if it.Valid() {
			m.h = append(m.h, it)
		} else if err := it.Err(); err != nil {
			m.err = err
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *mergingIterator) Valid() bool { return m.err == nil && len(m.h) > 0 }

func (m *mergingIterator) Entry() (key []byte, seq uint64, kind entryKind, value []byte) {
	return m.h[0].Entry()
}

func (m *mergingIterator) Next() {
	top := m.h[0]
	top.Next()
	if top.Valid() {
		heap.Fix(&m.h, 0)
		return
	}
	if err := top.Err(); err != nil {
		m.err = err
	}
	heap.Pop(&m.h)
}

func (m *mergingIterator) Err() error { return m.err }

// Iterator yields resolved user-visible (key, value) pairs in key order:
// version chains collapsed, merge operands combined via the DB's merge
// operator, and tombstoned keys skipped. This is the public scan cursor.
type Iterator struct {
	m     *mergingIterator
	mo    MergeOperator
	end   []byte // exclusive bound, nil = unbounded
	key   []byte
	value []byte
	valid bool
	err   error
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Key returns the current user key; valid until Next.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current resolved value; valid until Next.
func (it *Iterator) Value() []byte { return it.value }

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Next advances to the next resolved entry.
func (it *Iterator) Next() { it.advance() }

func (it *Iterator) advance() {
	it.valid = false
	for it.m.Valid() {
		key, _, kind, value := it.m.Entry()
		if it.end != nil && bytes.Compare(key, it.end) >= 0 {
			return
		}
		userKey := append([]byte(nil), key...)
		var operands [][]byte // newest first
		var base []byte
		haveBase := false
		deleted := false
		switch kind {
		case kindPut:
			base = append([]byte(nil), value...)
			haveBase = true
		case kindDelete:
			haveBase = true
			deleted = true
		case kindMerge:
			operands = append(operands, append([]byte(nil), value...))
		}
		// Consume the rest of this key's version chain.
		it.m.Next()
		for it.m.Valid() {
			k2, _, kind2, v2 := it.m.Entry()
			if !bytes.Equal(k2, userKey) {
				break
			}
			if !haveBase {
				switch kind2 {
				case kindPut:
					base = append([]byte(nil), v2...)
					haveBase = true
				case kindDelete:
					haveBase = true
					deleted = true
				case kindMerge:
					operands = append(operands, append([]byte(nil), v2...))
				}
			}
			it.m.Next()
		}
		if err := it.m.Err(); err != nil {
			it.err = err
			return
		}
		if deleted && len(operands) == 0 {
			continue // tombstoned key
		}
		if !haveBase && len(operands) == 0 {
			continue
		}
		reverse(operands) // FullMerge wants oldest first
		if deleted {
			base = nil
		}
		if len(operands) > 0 && it.mo != nil {
			it.value = it.mo.FullMerge(base, operands)
		} else if len(operands) > 0 {
			it.value = operands[len(operands)-1]
		} else {
			it.value = base
		}
		it.key = userKey
		it.valid = true
		return
	}
	if err := it.m.Err(); err != nil {
		it.err = err
	}
}

func reverse(b [][]byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// boundedIterator wraps an internalIterator skipping to a start key.
func seekIterator(it internalIterator, start []byte) internalIterator {
	for it.Valid() {
		k, _, _, _ := it.Entry()
		if bytes.Compare(k, start) >= 0 {
			break
		}
		it.Next()
	}
	return it
}
