package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = filepath.Join(t.TempDir(), "lsm")
	}
	if opts.MergeOperator == nil {
		opts.MergeOperator = AppendListOperator{}
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Destroy() })
	return db
}

func TestSkiplistOrdering(t *testing.T) {
	s := newSkiplist()
	rng := rand.New(rand.NewSource(1))
	var seq uint64
	for i := 0; i < 2000; i++ {
		k := []byte(fmt.Sprintf("key-%04d", rng.Intn(500)))
		seq++
		s.insert(k, seq, kindPut, []byte("v"))
	}
	if s.len() != 2000 {
		t.Fatalf("len = %d", s.len())
	}
	var prevKey []byte
	var prevSeq uint64
	n := 0
	for it := s.iterator(); it.valid(); it.next() {
		k, sq, _, _ := it.entry()
		if prevKey != nil {
			if c := internalCompare(prevKey, prevSeq, k, sq); c >= 0 {
				t.Fatalf("order violated at %d: (%s,%d) !< (%s,%d)", n, prevKey, prevSeq, k, sq)
			}
		}
		prevKey = append(prevKey[:0], k...)
		prevSeq = sq
		n++
	}
	if n != 2000 {
		t.Fatalf("iterated %d entries", n)
	}
}

func TestSkiplistSeekGE(t *testing.T) {
	s := newSkiplist()
	for i := 0; i < 100; i += 2 {
		s.insert([]byte(fmt.Sprintf("k%03d", i)), uint64(i+1), kindPut, nil)
	}
	n := s.seekGE([]byte("k051"), ^uint64(0))
	if n == nil || string(n.key) != "k052" {
		t.Fatalf("seekGE(k051) = %v", n)
	}
	if n := s.seekGE([]byte("k999"), ^uint64(0)); n != nil {
		t.Fatalf("seekGE past end = %v", n)
	}
}

func TestBloomFilter(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain([]byte(fmt.Sprintf("other-%d", i))) {
			fp++
		}
	}
	if fp > 500 { // ~1% expected at 10 bits/key; allow 5%
		t.Errorf("false positive rate too high: %d/10000", fp)
	}
}

func TestPutGetBasic(t *testing.T) {
	db := openTest(t, Options{})
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("b")); ok {
		t.Error("missing key found")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	db := openTest(t, Options{})
	db.Put([]byte("k"), []byte("v1"))
	db.Put([]byte("k"), []byte("v2"))
	if v, _, _ := db.Get([]byte("k")); string(v) != "v2" {
		t.Errorf("overwrite: %q", v)
	}
	db.Delete([]byte("k"))
	if _, ok, _ := db.Get([]byte("k")); ok {
		t.Error("deleted key still found")
	}
	// Resurrect after delete.
	db.Put([]byte("k"), []byte("v3"))
	if v, ok, _ := db.Get([]byte("k")); !ok || string(v) != "v3" {
		t.Errorf("resurrect: %q,%v", v, ok)
	}
}

func TestGetAcrossFlush(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 1024})
	const n = 500
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("val-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Flushes == 0 {
		t.Fatal("no flush happened")
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%04d", i) {
			t.Fatalf("key-%04d: %q,%v,%v", i, v, ok, err)
		}
	}
}

func TestCompactionTriggersAndPreservesData(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 2048, L0CompactionTrigger: 2, BaseLevelBytes: 8 << 10})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%05d", i%300)), []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatal("no compaction happened")
	}
	if st.FilesPerLevel[0] >= db.opts.L0CompactionTrigger {
		t.Errorf("L0 files %d not reduced by compaction", st.FilesPerLevel[0])
	}
	// Latest version of every key must win.
	for i := n - 300; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i%300)
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("%s: %v %v", k, ok, err)
		}
		if string(v) != fmt.Sprintf("val-%05d", i) {
			t.Fatalf("%s = %q, want val-%05d", k, v, i)
		}
	}
}

func TestMergeLazyAppend(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 512})
	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Merge([]byte("list"), []byte(fmt.Sprintf("elem-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := db.Get([]byte("list"))
	if err != nil || !ok {
		t.Fatal(err)
	}
	elems, err := DecodeList(v)
	if err != nil {
		t.Fatal(err)
	}
	if len(elems) != n {
		t.Fatalf("decoded %d elements, want %d", len(elems), n)
	}
	for i, e := range elems {
		if string(e) != fmt.Sprintf("elem-%03d", i) {
			t.Fatalf("element %d = %q: merge order violated", i, e)
		}
	}
}

func TestMergeWithBaseAndDelete(t *testing.T) {
	db := openTest(t, Options{})
	base := EncodeListElem(nil, []byte("base"))
	db.Put([]byte("k"), base)
	db.Merge([]byte("k"), []byte("m1"))
	db.Merge([]byte("k"), []byte("m2"))
	v, ok, _ := db.Get([]byte("k"))
	if !ok {
		t.Fatal("missing")
	}
	elems, _ := DecodeList(v)
	if len(elems) != 3 || string(elems[0]) != "base" || string(elems[2]) != "m2" {
		t.Fatalf("elems = %q", elems)
	}
	// Delete cuts the chain: merges after the delete start fresh.
	db.Delete([]byte("k"))
	db.Merge([]byte("k"), []byte("fresh"))
	v, ok, _ = db.Get([]byte("k"))
	if !ok {
		t.Fatal("merge after delete should exist")
	}
	elems, _ = DecodeList(v)
	if len(elems) != 1 || string(elems[0]) != "fresh" {
		t.Fatalf("after delete: %q", elems)
	}
}

func TestMergeAcrossCompaction(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 512, L0CompactionTrigger: 2, BaseLevelBytes: 4 << 10})
	const keys = 20
	const per = 50
	for i := 0; i < keys*per; i++ {
		k := []byte(fmt.Sprintf("key-%02d", i%keys))
		if err := db.Merge(k, []byte(fmt.Sprintf("v-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Compactions == 0 {
		t.Fatal("test needs compactions")
	}
	for j := 0; j < keys; j++ {
		v, ok, err := db.Get([]byte(fmt.Sprintf("key-%02d", j)))
		if err != nil || !ok {
			t.Fatal(err)
		}
		elems, err := DecodeList(v)
		if err != nil {
			t.Fatal(err)
		}
		if len(elems) != per {
			t.Fatalf("key-%02d: %d elements, want %d", j, len(elems), per)
		}
		// Order must survive compaction folding.
		prev := -1
		for _, e := range elems {
			var x int
			fmt.Sscanf(string(e), "v-%d", &x)
			if x <= prev {
				t.Fatalf("key-%02d: order violated: %q", j, elems)
			}
			prev = x
		}
	}
}

func TestScanRange(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 1024})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	it, err := db.Scan([]byte("key-020"), []byte("key-030"))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for ; it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "key-020" || got[9] != "key-029" {
		t.Fatalf("scan = %v", got)
	}
	// Sorted order is the LSM's defining property.
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("scan out of order")
		}
	}
}

func TestScanSeesNewestVersionsAndSkipsTombstones(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 256})
	for i := 0; i < 50; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("old"))
	}
	for i := 0; i < 50; i += 2 {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("new"))
	}
	for i := 1; i < 50; i += 4 {
		db.Delete([]byte(fmt.Sprintf("k%02d", i)))
	}
	it, err := db.Scan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for ; it.Valid(); it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, ok := got[k]
		switch {
		case i%4 == 1:
			if ok {
				t.Errorf("%s: tombstoned key visible", k)
			}
		case i%2 == 0:
			if v != "new" {
				t.Errorf("%s = %q, want new", k, v)
			}
		default:
			if v != "old" {
				t.Errorf("%s = %q, want old", k, v)
			}
		}
	}
}

func TestScanMergedLists(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 512})
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("k%d", i%3))
		db.Merge(k, []byte(fmt.Sprintf("%02d", i)))
	}
	it, err := db.Scan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for ; it.Valid(); it.Next() {
		elems, err := DecodeList(it.Value())
		if err != nil {
			t.Fatal(err)
		}
		if len(elems) != 10 {
			t.Fatalf("%s: %d elems", it.Key(), len(elems))
		}
		n++
	}
	if n != 3 {
		t.Fatalf("scanned %d keys", n)
	}
}

func TestBlockCache(t *testing.T) {
	c := newBlockCache(1000)
	c.put(1, 0, make([]byte, 400))
	c.put(1, 400, make([]byte, 400))
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("miss on cached block")
	}
	c.put(2, 0, make([]byte, 400)) // evicts LRU (file 1 off 400)
	if _, ok := c.get(1, 400); ok {
		t.Error("evicted block still cached")
	}
	c.dropFile(1)
	if _, ok := c.get(1, 0); ok {
		t.Error("dropped file's block still cached")
	}
	if c.hitRatio() <= 0 {
		t.Error("hit ratio not tracked")
	}
	var nilCache *blockCache
	if _, ok := nilCache.get(0, 0); ok {
		t.Error("nil cache returned a block")
	}
	nilCache.put(0, 0, nil) // must not panic
	nilCache.dropFile(0)
}

func TestDBStats(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 512})
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte("x"), 32))
	}
	st := db.Stats()
	if st.Flushes == 0 || st.DiskBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.FilesPerLevel) != db.opts.MaxLevels {
		t.Errorf("levels = %d", len(st.FilesPerLevel))
	}
}

func TestClosedErrors(t *testing.T) {
	db := openTest(t, Options{})
	db.Close()
	if err := db.Put(nil, nil); err != ErrClosed {
		t.Errorf("Put: %v", err)
	}
	if _, _, err := db.Get(nil); err != ErrClosed {
		t.Errorf("Get: %v", err)
	}
	if _, err := db.Scan(nil, nil); err != ErrClosed {
		t.Errorf("Scan: %v", err)
	}
	if err := db.Flush(); err != ErrClosed {
		t.Errorf("Flush: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestMergeWithoutOperatorFails(t *testing.T) {
	db, err := Open(Options{Dir: filepath.Join(t.TempDir(), "x")})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Destroy()
	if err := db.Merge([]byte("k"), []byte("v")); err == nil {
		t.Error("Merge without operator should fail")
	}
}

func TestQuickPutGetConsistency(t *testing.T) {
	db := openTest(t, Options{MemtableBytes: 4096, L0CompactionTrigger: 2, BaseLevelBytes: 16 << 10})
	model := make(map[string]string)
	f := func(op uint8, kRaw uint8, v string) bool {
		k := fmt.Sprintf("key-%03d", kRaw)
		switch op % 3 {
		case 0:
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				return false
			}
			model[k] = v
		case 1:
			if err := db.Delete([]byte(k)); err != nil {
				return false
			}
			delete(model, k)
		case 2:
			got, ok, err := db.Get([]byte(k))
			if err != nil {
				return false
			}
			want, exists := model[k]
			if ok != exists {
				return false
			}
			if ok && string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	// Final full verification via scan.
	it, err := db.Scan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for ; it.Valid(); it.Next() {
		got[string(it.Key())] = string(it.Value())
	}
	if len(got) != len(model) {
		t.Fatalf("scan has %d keys, model has %d", len(got), len(model))
	}
	for k, v := range model {
		if got[k] != v {
			t.Fatalf("%s = %q, want %q", k, got[k], v)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	db, err := Open(Options{Dir: filepath.Join(b.TempDir(), "lsm"), MergeOperator: AppendListOperator{}})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Destroy()
	val := bytes.Repeat([]byte("v"), 84)
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%08d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	db, err := Open(Options{Dir: filepath.Join(b.TempDir(), "lsm"), MergeOperator: AppendListOperator{}})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Destroy()
	val := bytes.Repeat([]byte("v"), 84)
	const n = 100000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("key-%08d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := db.Get([]byte(fmt.Sprintf("key-%08d", i%n))); err != nil || !ok {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeAppend(b *testing.B) {
	db, err := Open(Options{Dir: filepath.Join(b.TempDir(), "lsm"), MergeOperator: AppendListOperator{}})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Destroy()
	val := bytes.Repeat([]byte("v"), 84)
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Merge([]byte(fmt.Sprintf("key-%05d", i%1000)), val); err != nil {
			b.Fatal(err)
		}
	}
}
